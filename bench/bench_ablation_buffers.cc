/**
 * @file
 * Ablation: I/O-aware buffering depth. DESIGN.md calls out the OBuf
 * sizing decision of Sec. V-C; this sweep shows where deeper output
 * buffers stop paying off under DCS, and that the GBuf streaming
 * block size matters less once entry-level dependencies are tracked.
 */

#include "bench_util.hh"
#include "kernels/kernel_sim.hh"

using namespace pimphony;

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Ablation: sequencer buffer sizing");
    bench::JsonRows json("bench_ablation_buffers");
    printBanner(std::cout,
                "Ablation: OBuf depth under DCS (QKT/SV, 16K tokens, "
                "g=4, row-reuse)");

    AttentionSpec spec;
    spec.tokens = 16384;
    spec.headDim = 128;
    spec.gqaGroup = 4;
    spec.rowReuse = true;

    bench::MirroredTable t(

        {"OBuf entries", "QKT cycles", "SV cycles",
                    "QKT util", "SV util"},

        args.json ? &json : nullptr);
    double sv1 = 0.0;
    for (unsigned obuf : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        AimTimingParams params = AimTimingParams::aimxWithObuf(obuf);
        auto qkt = simulateKernel(
            KernelRequest::makeQkt(spec, SchedulerKind::Dcs), params);
        auto sv = simulateKernel(
            KernelRequest::makeSv(spec, SchedulerKind::Dcs), params);
        if (sv1 == 0.0)
            sv1 = static_cast<double>(sv.makespan);
        t.addRow({TablePrinter::fmtInt(obuf),
                  TablePrinter::fmtInt(qkt.makespan),
                  TablePrinter::fmtInt(sv.makespan),
                  TablePrinter::fmtPercent(qkt.macUtilization),
                  TablePrinter::fmtPercent(sv.macUtilization)});
    }
    t.print(std::cout);
    std::cout << "  (area cost grows linearly with depth; the paper "
                 "settles at a multi-entry OBuf worth 0.47% of the MAC "
                 "area)\n";
    bench::writeJsonIfRequested(json, args);
    return 0;
}
