/**
 * @file
 * Ablation: I/O-aware buffering depth. DESIGN.md calls out the OBuf
 * sizing decision of Sec. V-C; this sweep shows where deeper output
 * buffers stop paying off under DCS, and that the GBuf streaming
 * block size matters less once entry-level dependencies are tracked.
 */

#include "bench_util.hh"
#include "kernels/kernel_sim.hh"

using namespace pimphony;

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Ablation: sequencer buffer sizing");
    bench::JsonRows json("bench_ablation_buffers");
    printBanner(std::cout,
                "Ablation: OBuf depth under DCS (QKT/SV, 16K tokens, "
                "g=4, row-reuse)");

    AttentionSpec spec;
    spec.tokens = 16384;
    spec.headDim = 128;
    spec.gqaGroup = 4;
    spec.rowReuse = true;

    bench::MirroredTable t(

        {"OBuf entries", "QKT cycles", "SV cycles",
                    "QKT util", "SV util"},

        args.json ? &json : nullptr);
    const std::vector<unsigned> obufs = {1u, 2u, 4u, 8u,
                                         16u, 32u, 64u};
    struct QktSv
    {
        ScheduleResult qkt;
        ScheduleResult sv;
    };
    auto outs = bench::runSweep(args, obufs.size(), [&](std::size_t i) {
        AimTimingParams params = AimTimingParams::aimxWithObuf(obufs[i]);
        return QktSv{
            simulateKernel(
                KernelRequest::makeQkt(spec, SchedulerKind::Dcs),
                params),
            simulateKernel(
                KernelRequest::makeSv(spec, SchedulerKind::Dcs),
                params)};
    });
    for (std::size_t i = 0; i < obufs.size(); ++i) {
        const auto &qkt = outs[i].value.qkt;
        const auto &sv = outs[i].value.sv;
        t.addRow({TablePrinter::fmtInt(obufs[i]),
                  TablePrinter::fmtInt(qkt.makespan),
                  TablePrinter::fmtInt(sv.makespan),
                  TablePrinter::fmtPercent(qkt.macUtilization),
                  TablePrinter::fmtPercent(sv.macUtilization)},
                 args.threads, outs[i].wallSeconds);
    }
    t.print(std::cout);
    std::cout << "  (area cost grows linearly with depth; the paper "
                 "settles at a multi-entry OBuf worth 0.47% of the MAC "
                 "area)\n";
    bench::writeJsonIfRequested(json, args);
    return 0;
}
