/**
 * @file
 * Ablation: DPA chunk size. Smaller chunks reduce last-chunk
 * fragmentation but inflate the VA2PA table and the host mapping
 * traffic; the paper's 1 MB default balances both.
 */

#include "bench_util.hh"
#include "alloc/kv_allocator.hh"
#include "workload/trace.hh"

using namespace pimphony;

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Ablation: DPA chunk size");
    bench::JsonRows json("bench_ablation_chunk");
    printBanner(std::cout,
                "Ablation: DPA chunk size (LLM-7B-128K-GQA, "
                "multifieldqa trace, 114 GiB usable)");

    auto model = LlmConfig::llm7b(true);
    TraceGenerator gen(TraceTask::MultifieldQa, 77);
    auto requests = gen.generate(64, 128);

    bench::MirroredTable t(

        {"chunk", "admitted", "capacity util", "VA2PA bytes",
                    "host msgs"},

        args.json ? &json : nullptr);
    const std::vector<Bytes> chunks = {256_KiB, 1_MiB, 4_MiB, 16_MiB,
                                       64_MiB};
    struct AdmitStats
    {
        std::size_t admitted;
        double capacityUtil;
        Bytes va2paBytes;
        std::uint64_t hostMsgs;
    };
    auto outs = bench::runSweep(args, chunks.size(), [&](std::size_t i) {
        LazyChunkAllocator alloc(114_GiB, model.kvBytesPerToken(),
                                 model.contextWindow, chunks[i]);
        std::size_t admitted = 0;
        for (const auto &r : requests) {
            if (alloc.tryAdmit(r.id, r.contextTokens))
                ++admitted;
            else
                break;
        }
        return AdmitStats{admitted, alloc.capacityUtilization(),
                          alloc.va2paBytes(), alloc.hostInterventions()};
    });
    for (std::size_t i = 0; i < chunks.size(); ++i) {
        const auto &r = outs[i].value;
        t.addRow({TablePrinter::fmtInt(chunks[i] >> 10) + " KiB",
                  TablePrinter::fmtInt(r.admitted),
                  TablePrinter::fmtPercent(r.capacityUtil),
                  TablePrinter::fmtInt(r.va2paBytes),
                  TablePrinter::fmtInt(r.hostMsgs)},
                 args.threads, outs[i].wallSeconds);
    }
    t.print(std::cout);
    bench::writeJsonIfRequested(json, args);
    return 0;
}
