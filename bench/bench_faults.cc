/**
 * @file
 * Fault-tolerance benchmark: goodput degradation of the fleet under
 * the seeded MTBF/MTTR fault model (system/fault), swept over
 * MTBF x replicas x routing policy.
 *
 * Each grid cell builds one fleet over its own trace (work per
 * replica held constant, like bench_fleet) and a generative fault
 * schedule from buildFaultSchedule(spec, seed). Because schedules
 * with the same seed share the same uniform-draw sequence, shrinking
 * the MTBF compresses the identical failure pattern in time: the
 * number of outages inside the horizon grows monotonically as MTBF
 * falls, so the goodput fraction (delivered decode tokens over
 * requested decode tokens) must be nonincreasing along each
 * (replicas, policy) row. The bench enforces that curve — a
 * non-monotone row is a routing/failover bug, not noise — and also
 * replays one cell on the thread pool to check that fault runs stay
 * bit-identical to serial.
 *
 * A scripted crash-mid-decode scenario closes the accounting books:
 * completed + lost + rejected must equal the requests generated, and
 * generated tokens must split exactly into goodput plus tokens
 * discarded by the kill.
 *
 * Reading BENCH_faults.json: deterministic fields (fault_events,
 * goodput_tokens, goodput_fraction, lost_requests, retried_requests,
 * availability_mean, generated_tokens) must be bit-stable run to run
 * and across --threads values — the CI determinism job diffs them.
 * Timing fields (wall_ms) vary with the host.
 *
 * usage: bench_faults [--smoke] [--json[=PATH]] [--threads N]
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "system/fault.hh"
#include "system/fleet.hh"
#include "workload/arrival.hh"

using namespace pimphony;

namespace {

struct FaultConfig
{
    unsigned replicas;
    RoutePolicy policy;
    /** Mean seconds between failures per replica; 0 = no faults. */
    double mtbfSeconds;
};

std::string
mtbfName(double mtbf)
{
    if (mtbf <= 0.0)
        return "inf";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", mtbf);
    return buf;
}

std::string
configName(const FaultConfig &cfg)
{
    return "faults.r" + std::to_string(cfg.replicas) + "." +
           routePolicyName(cfg.policy) + ".mtbf" +
           mtbfName(cfg.mtbfSeconds);
}

struct CellResult
{
    FleetResult fleet;
    std::size_t requests = 0;
    std::uint64_t decodeTokens = 0;
    std::size_t faultEvents = 0;
    double wall = 0.0;
};

CellResult
runCell(const FaultConfig &cfg, unsigned threads)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    cluster.plan = ParallelPlan{cluster.nModules / 4, 4};
    applyOptions(cluster, PimphonyOptions::all());

    // Work per replica and the offered rate per replica are held
    // constant, so the fault-free makespan (~1.3 s) is the same in
    // every cell and one MTBF axis serves all replica counts.
    CellResult cell;
    cell.requests = static_cast<std::size_t>(cfg.replicas) * 32;
    std::vector<Request> reqs;
    for (RequestId i = 0; i < cell.requests; ++i) {
        reqs.push_back({i, (i % 4 == 0) ? Tokens(30000) : Tokens(2000),
                        32});
        cell.decodeTokens += 32;
    }
    auto trace =
        poissonArrivals(reqs, 24.0 * cfg.replicas, 17);

    FaultSpec spec;
    spec.replicas = cfg.replicas;
    spec.horizonSeconds = cfg.mtbfSeconds > 0.0 ? 3.0 : 0.0;
    spec.mtbfSeconds = cfg.mtbfSeconds;
    spec.mttrSeconds = 0.25;
    spec.modelReloadSeconds = 0.1;
    spec.degradeProbability = 0.25;
    spec.slowdownFactor = 2.0;

    FleetOptions fopts;
    fopts.replicas = cfg.replicas;
    fopts.policy = cfg.policy;
    fopts.dispatchLatencySeconds = 0.002;
    fopts.threads = std::min(threads, cfg.replicas);
    fopts.retryBackoffSeconds = 0.05;
    fopts.engine.allocator = AllocatorKind::LazyChunk;
    fopts.engine.stepModel = StepModel::EventDriven;
    fopts.engine.prefillChunkTokens = 2048;
    fopts.faults = buildFaultSchedule(spec, 29);
    cell.faultEvents = fopts.faults.eventCount();

    auto t0 = std::chrono::steady_clock::now();
    cell.fleet = FleetEngine(cluster, model, trace, fopts).run();
    cell.wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    return cell;
}

double
meanAvailability(const FleetResult &fleet)
{
    if (fleet.availability.empty())
        return 1.0;
    return std::accumulate(fleet.availability.begin(),
                           fleet.availability.end(), 0.0) /
           static_cast<double>(fleet.availability.size());
}

/**
 * Scripted crash mid-decode on a two-replica fleet: the books must
 * balance exactly — every generated request is completed, lost, or
 * rejected, and every generated token is goodput or was discarded by
 * the kill. fatal() on any imbalance.
 */
void
runAccountingScenario()
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    cluster.plan = ParallelPlan{cluster.nModules / 4, 4};
    applyOptions(cluster, PimphonyOptions::all());

    std::vector<Request> reqs;
    for (RequestId i = 0; i < 24; ++i)
        reqs.push_back({i, (i % 4 == 0) ? Tokens(20000) : Tokens(2000),
                        256});
    auto trace = poissonArrivals(reqs, 64.0, 24);

    FleetOptions fopts;
    fopts.replicas = 2;
    fopts.policy = RoutePolicy::RoundRobin;
    fopts.dispatchLatencySeconds = 0.002;
    fopts.engine.allocator = AllocatorKind::LazyChunk;
    fopts.engine.stepModel = StepModel::EventDriven;
    fopts.engine.prefillChunkTokens = 2048;
    fopts.faults.replicas.resize(2);
    fopts.faults.replicas[1].push_back(crashAt(0.5));
    auto fleet = FleetEngine(cluster, model, trace, fopts).run();

    const EngineResult &agg = fleet.aggregate;
    std::uint64_t accounted = agg.completedRequests +
                              fleet.lostRequests +
                              agg.rejectedRequests;
    if (accounted != trace.size())
        fatal("bench_faults: crash-mid-decode accounting broke: "
              "%llu completed + %llu lost + %llu rejected != %zu "
              "generated",
              static_cast<unsigned long long>(agg.completedRequests),
              static_cast<unsigned long long>(fleet.lostRequests),
              static_cast<unsigned long long>(agg.rejectedRequests),
              trace.size());
    if (agg.generatedTokens != fleet.goodputTokens + fleet.lostTokens)
        fatal("bench_faults: token books do not balance: "
              "%llu generated != %llu goodput + %llu lost",
              static_cast<unsigned long long>(agg.generatedTokens),
              static_cast<unsigned long long>(fleet.goodputTokens),
              static_cast<unsigned long long>(fleet.lostTokens));
    std::cout << "[faults] crash-mid-decode accounting: "
              << agg.completedRequests << " completed + "
              << fleet.lostRequests << " lost + "
              << agg.rejectedRequests << " rejected == " << trace.size()
              << " generated; " << fleet.lostTokens
              << " decode tokens discarded by the kill\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv,
        "fleet goodput degradation under the seeded MTBF/MTTR fault "
        "model: MTBF x replicas x routing policy");

    // MTBF axis, most reliable first; 0 is the fault-free baseline.
    std::vector<double> mtbfs;
    std::vector<FaultConfig> configs;
    if (args.smoke) {
        mtbfs = {0.0, 1.0, 0.25};
        for (double mtbf : mtbfs)
            configs.push_back({2, RoutePolicy::RoundRobin, mtbf});
    } else {
        mtbfs = {0.0, 4.0, 1.0, 0.25};
        for (unsigned replicas : {2u, 4u, 8u})
            for (RoutePolicy policy :
                 {RoutePolicy::RoundRobin, RoutePolicy::LeastLoaded})
                for (double mtbf : mtbfs)
                    configs.push_back({replicas, policy, mtbf});
    }

    printBanner(std::cout,
                "Fleet goodput under faults (MTBF x replicas x "
                "policy), xPU+PIM, LLM-7B-128K-GQA");
    bench::JsonRows json("bench_faults");
    TablePrinter t({"config", "events", "avail", "goodput tok",
                    "goodput frac", "goodput tok/s", "evac", "retried",
                    "lost", "wall (ms)"});

    // Warm-up (first-touch kernel simulation, pool growth).
    (void)runCell({1, RoutePolicy::RoundRobin, 0.0}, 1);

    double prev_fraction = 0.0;
    double prev_mtbf = 0.0;
    bool have_prev = false;
    for (const auto &cfg : configs) {
        auto cell = runCell(cfg, args.threads);
        double fraction =
            cell.decodeTokens > 0
                ? static_cast<double>(cell.fleet.goodputTokens) /
                      static_cast<double>(cell.decodeTokens)
                : 0.0;

        // The degradation curve must be monotone along each
        // (replicas, policy) row: rows are emitted MTBF-descending
        // (baseline first), so each cell may not beat its
        // more-reliable predecessor. mtbf 0 restarts the row.
        if (cfg.mtbfSeconds == 0.0)
            have_prev = false;
        if (have_prev && fraction > prev_fraction + 1e-9)
            fatal("bench_faults: goodput curve is not monotone on "
                  "%s: fraction %.6f at mtbf %s beats %.6f at "
                  "mtbf %s",
                  configName(cfg).c_str(), fraction,
                  mtbfName(cfg.mtbfSeconds).c_str(), prev_fraction,
                  mtbfName(prev_mtbf).c_str());
        prev_fraction = fraction;
        prev_mtbf = cfg.mtbfSeconds;
        have_prev = true;

        t.addRow({configName(cfg), std::to_string(cell.faultEvents),
                  TablePrinter::fmt(meanAvailability(cell.fleet), 4),
                  std::to_string(cell.fleet.goodputTokens),
                  TablePrinter::fmt(fraction, 4),
                  TablePrinter::fmt(cell.fleet.goodputTokensPerSecond,
                                    1),
                  std::to_string(cell.fleet.evacuatedRequests),
                  std::to_string(cell.fleet.retriedRequests),
                  std::to_string(cell.fleet.lostRequests),
                  TablePrinter::fmt(cell.wall * 1e3, 2)});
        if (args.json) {
            json.beginRow();
            json.field("config", configName(cfg));
            json.field("replicas", cfg.replicas);
            json.field("policy", routePolicyName(cfg.policy));
            json.field("mtbf_s", cfg.mtbfSeconds);
            json.field("requests",
                       static_cast<std::uint64_t>(cell.requests));
            // Deterministic fields (diffed by the CI determinism
            // job across runs and --threads values)...
            json.field("fault_events",
                       static_cast<std::uint64_t>(cell.faultEvents));
            json.field("availability_mean",
                       meanAvailability(cell.fleet));
            json.field("goodput_tokens", cell.fleet.goodputTokens);
            json.field("goodput_fraction", fraction);
            json.field("generated_tokens",
                       cell.fleet.aggregate.generatedTokens);
            json.field("evacuated_requests",
                       cell.fleet.evacuatedRequests);
            json.field("retried_requests", cell.fleet.retriedRequests);
            json.field("lost_requests", cell.fleet.lostRequests);
            json.field("lost_tokens", cell.fleet.lostTokens);
            json.field("reload_seconds", cell.fleet.reloadSeconds);
            // ...and host-dependent timing fields (excluded there).
            json.field("wall_ms", cell.wall * 1e3);
            json.field("threads", args.threads);
        }
    }
    t.print(std::cout);

    // Fault runs must be bit-identical serial vs pooled, exactly
    // like fault-free fleets (fault_test pins the full surface; the
    // bench spot-checks the headline fields on one faulty cell).
    if (args.threads > 1) {
        FaultConfig probe{4, RoutePolicy::LeastLoaded,
                          args.smoke ? 1.0 : 0.25};
        auto serial = runCell(probe, 1);
        auto pooled = runCell(probe, args.threads);
        if (serial.fleet.goodputTokens != pooled.fleet.goodputTokens ||
            serial.fleet.lostRequests != pooled.fleet.lostRequests ||
            serial.fleet.retriedRequests !=
                pooled.fleet.retriedRequests ||
            serial.fleet.aggregate.simEvents !=
                pooled.fleet.aggregate.simEvents)
            fatal("bench_faults: pooled fault run diverged from "
                  "serial on %s",
                  configName(probe).c_str());
        std::cout << "[faults] pooled fault run bit-identical to "
                     "serial on "
                  << configName(probe) << " at --threads "
                  << args.threads << "\n";
    }

    runAccountingScenario();

    bench::writeJsonIfRequested(json, args);
    return 0;
}
