/**
 * @file
 * Fig. 10: static memory management and instruction footprint.
 * (b/c): fully unrolled static programs grow linearly with the
 * context length and overflow the sequencer's instruction buffer,
 * while the DPA encoding stays constant.
 */

#include "bench_util.hh"
#include "compiler/ir.hh"
#include "compiler/passes.hh"
#include "hub/sequencer.hh"

using namespace pimphony;

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Fig. 10: static vs DPA instruction footprint");
    bench::JsonRows json("bench_fig10_inst_size");
    auto model = LlmConfig::llm7b(true);
    auto graph = buildDecoderLayer(model);
    AimTimingParams params = AimTimingParams::aimxWithObuf(16);

    MatchedKernel qkt, sv;
    for (const auto &k : matchPimKernels(graph)) {
        if (k.kernelClass == PimKernelClass::Qkt)
            qkt = k;
        if (k.kernelClass == PimKernelClass::Sv)
            sv = k;
    }

    printBanner(std::cout,
                "Fig. 10(c): per-kernel instruction footprint vs context "
                "length (one attention head)");
    InstructionSequencer seq;
    bench::MirroredTable t(
        {"context", "QKT static", "QKT DPA", "SV static",
                    "SV DPA", "static fits 256KB buf?"},
        args.json ? &json : nullptr);
    const std::vector<Tokens> t_maxes = {4096u, 16384u, 65536u,
                                         262144u, 1048576u};
    struct Lowered
    {
        LoweredKernel lq;
        LoweredKernel ls;
    };
    auto outs =
        bench::runSweep(args, t_maxes.size(), [&](std::size_t i) {
            return Lowered{lowerKernel(qkt, params, t_maxes[i]),
                           lowerKernel(sv, params, t_maxes[i])};
        });
    for (std::size_t i = 0; i < t_maxes.size(); ++i) {
        const auto &lq = outs[i].value.lq;
        const auto &ls = outs[i].value.ls;
        Bytes static_total =
            staticProgramBytes(lq) + staticProgramBytes(ls);
        t.addRow({TablePrinter::fmtInt(t_maxes[i]),
                  TablePrinter::fmtInt(staticProgramBytes(lq)) + " B",
                  TablePrinter::fmtInt(dpaProgramBytes(lq)) + " B",
                  TablePrinter::fmtInt(staticProgramBytes(ls)) + " B",
                  TablePrinter::fmtInt(dpaProgramBytes(ls)) + " B",
                  static_total <= seq.params().bufferBytes ? "yes"
                                                           : "NO"},
                 args.threads, outs[i].wallSeconds);
    }
    t.print(std::cout);

    printBanner(std::cout,
                "Fig. 10(b): the DPA instruction forms");
    std::cout
        << "  Dyn-Loop  : loop bound resolved from T_cur at decode "
           "time (not T_max)\n"
        << "  Dyn-Modi  : strides an operand field per iteration; "
           "rows are virtual,\n"
        << "              translated through the on-module VA2PA "
           "table\n";

    auto lq = lowerKernel(qkt, params, model.contextWindow);
    std::cout << "  QKT DPA program: " << lq.dpaProgram.ops().size()
              << " ops, " << dpaProgramBytes(lq)
              << " B encoded; expands to "
              << lq.dpaProgram.expand(65536).size()
              << " instructions at T=64K and "
              << lq.dpaProgram.expand(1048576).size() << " at T=1M\n";
    bench::writeJsonIfRequested(json, args);
    return 0;
}
