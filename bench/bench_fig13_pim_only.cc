/**
 * @file
 * Fig. 13: throughput of PIM-only (CENT-like) systems with TCP, DCS
 * and DPA applied cumulatively, using the best (TP,PP) plan per
 * configuration. (a) non-GQA models on LongBench; (b) GQA models on
 * LV-Eval. The paper reports 2.1-4.5x for (a) and up to 11.3x for
 * (b).
 */

#include "bench_util.hh"

using namespace pimphony;

namespace {

void
grid(const char *title, const std::vector<LlmConfig> &models,
     const std::vector<TraceTask> &tasks, bench::JsonRows *json,
     const bench::BenchArgs &args)
{
    printBanner(std::cout, title);
    bench::MirroredTable t(
        {"model", "task", "config", "plan", "tokens/s",
                    "speedup"},
        json);

    // Flattened (model, task, option stack) grid for the sweep
    // runner; the cumulative-speedup base (the first stack of each
    // (model, task) group) is recovered during serial emission.
    struct Cell
    {
        LlmConfig model;
        TraceTask task;
        PimphonyOptions opt;
        bool groupStart;
    };
    std::vector<Cell> cells;
    for (const auto &model : models)
        for (TraceTask task : tasks) {
            bool first = true;
            for (const auto &opt : bench::cumulativeOptions()) {
                cells.push_back({model, task, opt, first});
                first = false;
            }
        }

    auto outs = bench::runSweep(args, cells.size(), [&](std::size_t i) {
        const Cell &c = cells[i];
        OrchestratorConfig cfg;
        cfg.system = SystemKind::PimOnly;
        cfg.model = c.model;
        cfg.options = c.opt;
        cfg.plan = ParallelPlan{0, 0}; // search best
        cfg.nRequests = 24;
        cfg.decodeTokens = 32;
        PimphonyOrchestrator orch(cfg);
        return orch.evaluate(c.task);
    });

    double base = 0.0;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        const auto &r = outs[i].value;
        if (c.groupStart)
            base = r.engine.tokensPerSecond;
        t.addRow({c.model.name, traceTaskName(c.task), c.opt.label(),
                  r.plan.toString(),
                  TablePrinter::fmt(r.engine.tokensPerSecond, 1),
                  bench::fmtSpeedup(r.engine.tokensPerSecond / base)},
                 args.threads, outs[i].wallSeconds);
    }
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Fig. 13: PIM-only throughput, cumulative techniques");
    bench::JsonRows json("bench_fig13_pim_only");
    grid("Fig. 13(a): PIM-only, non-GQA LLMs on LongBench "
         "(paper: 2.1-4.5x)",
         args.smoke
             ? std::vector<LlmConfig>{LlmConfig::llm7b(false)}
             : std::vector<LlmConfig>{LlmConfig::llm7b(false),
                                      LlmConfig::llm72b(false)},
         args.smoke
             ? std::vector<TraceTask>{TraceTask::QMSum}
             : std::vector<TraceTask>{TraceTask::QMSum,
                                      TraceTask::Musique},
         args.json ? &json : nullptr, args);
    grid("Fig. 13(b): PIM-only, GQA LLMs on LV-Eval "
         "(paper: up to 11.3x)",
         args.smoke
             ? std::vector<LlmConfig>{LlmConfig::llm7b(true)}
             : std::vector<LlmConfig>{LlmConfig::llm7b(true),
                                      LlmConfig::llm72b(true)},
         args.smoke
             ? std::vector<TraceTask>{TraceTask::MultifieldQa}
             : std::vector<TraceTask>{TraceTask::MultifieldQa,
                                      TraceTask::LoogleSd},
         args.json ? &json : nullptr, args);
    bench::writeJsonIfRequested(json, args);
    return 0;
}
