/**
 * @file
 * Fig. 14: throughput of xPU+PIM (NeuPIMs-like) systems with TCP,
 * DCS and DPA applied cumulatively, best (TP,PP) per configuration.
 * The paper reports up to 8.4x.
 */

#include "bench_util.hh"

using namespace pimphony;

namespace {

void
grid(const char *title, const std::vector<LlmConfig> &models,
     const std::vector<TraceTask> &tasks, bench::JsonRows *json)
{
    printBanner(std::cout, title);
    bench::MirroredTable t(
        {"model", "task", "config", "plan", "tokens/s",
                    "speedup"},
        json);
    for (const auto &model : models) {
        for (TraceTask task : tasks) {
            double base = 0.0;
            for (const auto &opt : bench::cumulativeOptions()) {
                OrchestratorConfig cfg;
                cfg.system = SystemKind::XpuPim;
                cfg.model = model;
                cfg.options = opt;
                cfg.plan = ParallelPlan{0, 0};
                cfg.nRequests = 24;
                cfg.decodeTokens = 32;
                PimphonyOrchestrator orch(cfg);
                auto r = orch.evaluate(task);
                if (base == 0.0)
                    base = r.engine.tokensPerSecond;
                t.addRow({model.name, traceTaskName(task), opt.label(),
                          r.plan.toString(),
                          TablePrinter::fmt(r.engine.tokensPerSecond, 1),
                          bench::fmtSpeedup(r.engine.tokensPerSecond /
                                            base)});
            }
        }
    }
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Fig. 14: xPU+PIM throughput, cumulative techniques");
    bench::JsonRows json("bench_fig14_xpu_pim");
    grid("Fig. 14(a): xPU+PIM, non-GQA LLMs on LongBench",
         args.smoke
             ? std::vector<LlmConfig>{LlmConfig::llm7b(false)}
             : std::vector<LlmConfig>{LlmConfig::llm7b(false),
                                      LlmConfig::llm72b(false)},
         args.smoke
             ? std::vector<TraceTask>{TraceTask::QMSum}
             : std::vector<TraceTask>{TraceTask::QMSum,
                                      TraceTask::Musique},
         args.json ? &json : nullptr);
    grid("Fig. 14(b): xPU+PIM, GQA LLMs on LV-Eval "
         "(paper: up to 8.4x)",
         args.smoke
             ? std::vector<LlmConfig>{LlmConfig::llm7b(true)}
             : std::vector<LlmConfig>{LlmConfig::llm7b(true),
                                      LlmConfig::llm72b(true)},
         args.smoke
             ? std::vector<TraceTask>{TraceTask::MultifieldQa}
             : std::vector<TraceTask>{TraceTask::MultifieldQa,
                                      TraceTask::LoogleSd},
         args.json ? &json : nullptr);
    bench::writeJsonIfRequested(json, args);
    return 0;
}
