/**
 * @file
 * Fig. 14: throughput of xPU+PIM (NeuPIMs-like) systems with TCP,
 * DCS and DPA applied cumulatively, best (TP,PP) per configuration.
 * The paper reports up to 8.4x.
 */

#include "bench_util.hh"

using namespace pimphony;

namespace {

void
grid(const char *title, const std::vector<LlmConfig> &models,
     const std::vector<TraceTask> &tasks)
{
    printBanner(std::cout, title);
    TablePrinter t({"model", "task", "config", "plan", "tokens/s",
                    "speedup"});
    for (const auto &model : models) {
        for (TraceTask task : tasks) {
            double base = 0.0;
            for (const auto &opt : bench::cumulativeOptions()) {
                OrchestratorConfig cfg;
                cfg.system = SystemKind::XpuPim;
                cfg.model = model;
                cfg.options = opt;
                cfg.plan = ParallelPlan{0, 0};
                cfg.nRequests = 24;
                cfg.decodeTokens = 32;
                PimphonyOrchestrator orch(cfg);
                auto r = orch.evaluate(task);
                if (base == 0.0)
                    base = r.engine.tokensPerSecond;
                t.addRow({model.name, traceTaskName(task), opt.label(),
                          r.plan.toString(),
                          TablePrinter::fmt(r.engine.tokensPerSecond, 1),
                          bench::fmtSpeedup(r.engine.tokensPerSecond /
                                            base)});
            }
        }
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    bench::QuietLogs quiet;
    grid("Fig. 14(a): xPU+PIM, non-GQA LLMs on LongBench",
         {LlmConfig::llm7b(false), LlmConfig::llm72b(false)},
         {TraceTask::QMSum, TraceTask::Musique});
    grid("Fig. 14(b): xPU+PIM, GQA LLMs on LV-Eval "
         "(paper: up to 8.4x)",
         {LlmConfig::llm7b(true), LlmConfig::llm72b(true)},
         {TraceTask::MultifieldQa, TraceTask::LoogleSd});
    return 0;
}
