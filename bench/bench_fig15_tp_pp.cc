/**
 * @file
 * Fig. 15: throughput across (TP,PP) organizations on the CENT-like
 * system, with PIMphony techniques applied cumulatively.
 * (a) LLM-7B-32K on LongBench QMSum; (b) LLM-7B-128K-GQA on LV-Eval
 * multifieldqa.
 */

#include "bench_util.hh"

using namespace pimphony;

namespace {

void
sweep(const char *title, const LlmConfig &model, TraceTask task,
      bench::JsonRows *json, const bench::BenchArgs &args)
{
    printBanner(std::cout, title);
    OrchestratorConfig probe;
    probe.system = SystemKind::PimOnly;
    probe.model = model;
    PimphonyOrchestrator plans_orch(probe);
    auto plans = plans_orch.candidatePlans();

    std::vector<std::string> headers = {"config"};
    for (const auto &p : plans)
        headers.push_back(p.toString());
    bench::MirroredTable t(headers, json, title);

    // Flattened (option stack, plan) grid; one table row spans all
    // plans of a stack, so emission reassembles rows from the
    // submission-ordered cell vector (cell o*P+p = stack o, plan p).
    auto opts = bench::cumulativeOptions();
    std::size_t n_plans = plans.size();
    auto outs = bench::runSweep(
        args, opts.size() * n_plans, [&](std::size_t i) {
            OrchestratorConfig cfg;
            cfg.system = SystemKind::PimOnly;
            cfg.model = model;
            cfg.options = opts[i / n_plans];
            cfg.plan = plans[i % n_plans];
            cfg.nRequests = 24;
            cfg.decodeTokens = 32;
            PimphonyOrchestrator orch(cfg);
            return orch.evaluate(task).engine.tokensPerSecond;
        });

    for (std::size_t o = 0; o < opts.size(); ++o) {
        std::vector<std::string> row = {opts[o].label()};
        double row_wall = 0.0;
        for (std::size_t p = 0; p < n_plans; ++p) {
            row.push_back(
                TablePrinter::fmt(outs[o * n_plans + p].value, 1));
            row_wall += outs[o * n_plans + p].wallSeconds;
        }
        t.addRow(row, args.threads, row_wall);
    }
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Fig. 15: throughput across fixed (TP,PP) plans");
    bench::JsonRows json("bench_fig15_tp_pp");
    sweep("Fig. 15(a): LLM-7B-32K on QMSum, tokens/s across (TP,PP)",
          LlmConfig::llm7b(false), TraceTask::QMSum,
          args.json ? &json : nullptr, args);
    sweep("Fig. 15(b): LLM-7B-128K-GQA on multifieldqa, tokens/s "
          "across (TP,PP)",
          LlmConfig::llm7b(true), TraceTask::MultifieldQa,
          args.json ? &json : nullptr, args);
    bench::writeJsonIfRequested(json, args);
    return 0;
}
