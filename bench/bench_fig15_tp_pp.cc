/**
 * @file
 * Fig. 15: throughput across (TP,PP) organizations on the CENT-like
 * system, with PIMphony techniques applied cumulatively.
 * (a) LLM-7B-32K on LongBench QMSum; (b) LLM-7B-128K-GQA on LV-Eval
 * multifieldqa.
 */

#include "bench_util.hh"

using namespace pimphony;

namespace {

void
sweep(const char *title, const LlmConfig &model, TraceTask task,
      bench::JsonRows *json)
{
    printBanner(std::cout, title);
    OrchestratorConfig probe;
    probe.system = SystemKind::PimOnly;
    probe.model = model;
    PimphonyOrchestrator plans_orch(probe);
    auto plans = plans_orch.candidatePlans();

    std::vector<std::string> headers = {"config"};
    for (const auto &p : plans)
        headers.push_back(p.toString());
    bench::MirroredTable t(headers, json, title);

    for (const auto &opt : bench::cumulativeOptions()) {
        std::vector<std::string> row = {opt.label()};
        for (const auto &plan : plans) {
            OrchestratorConfig cfg;
            cfg.system = SystemKind::PimOnly;
            cfg.model = model;
            cfg.options = opt;
            cfg.plan = plan;
            cfg.nRequests = 24;
            cfg.decodeTokens = 32;
            PimphonyOrchestrator orch(cfg);
            auto r = orch.evaluate(task);
            row.push_back(TablePrinter::fmt(r.engine.tokensPerSecond, 1));
        }
        t.addRow(row);
    }
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Fig. 15: throughput across fixed (TP,PP) plans");
    bench::JsonRows json("bench_fig15_tp_pp");
    sweep("Fig. 15(a): LLM-7B-32K on QMSum, tokens/s across (TP,PP)",
          LlmConfig::llm7b(false), TraceTask::QMSum,
          args.json ? &json : nullptr);
    sweep("Fig. 15(b): LLM-7B-128K-GQA on multifieldqa, tokens/s "
          "across (TP,PP)",
          LlmConfig::llm7b(true), TraceTask::MultifieldQa,
          args.json ? &json : nullptr);
    bench::writeJsonIfRequested(json, args);
    return 0;
}
