/**
 * @file
 * Fig. 16: energy breakdowns of CENT vs CENT+PIMphony. Top: FC vs
 * Attention share; bottom: MAC / I/O / Background / Else. The paper
 * reports the baseline's attention background at 71.5% of attention
 * energy, collapsing to 13.0% with PIMphony (up to 3.46x attention
 * energy reduction).
 */

#include "bench_util.hh"
#include "workload/trace.hh"

using namespace pimphony;

namespace {

void
energyCase(const char *title, const LlmConfig &model, TraceTask task,
           bench::JsonRows *json, const bench::BenchArgs &args)
{
    printBanner(std::cout, title);
    TraceGenerator gen(task, 33);
    auto requests = gen.generate(16, 32);

    bench::MirroredTable top(

        {"config", "total (J)", "FC share", "Attn share",
                      "Attn energy reduction"},

        json, "top");
    bench::MirroredTable bottom(
        {"config", "Attn MAC", "Attn I/O",
                         "Attn background", "Attn ACT/PRE+REF+else"},
        json, "bottom");

    // Two sweep cells (baseline, all); the attention-energy
    // reduction is relative to the baseline row, computed during
    // serial emission.
    const std::vector<PimphonyOptions> opts = {
        PimphonyOptions::baseline(), PimphonyOptions::all()};
    auto outs = bench::runSweep(args, opts.size(), [&](std::size_t i) {
        auto cluster = ClusterConfig::centLike(model);
        return runServing(cluster, model, requests, opts[i]);
    });

    double base_attn = 0.0;
    for (std::size_t i = 0; i < opts.size(); ++i) {
        const auto &r = outs[i].value;
        double fc = r.fcEnergy.total();
        double at = r.attentionEnergy.total();
        double tot = fc + at;
        if (base_attn == 0.0)
            base_attn = at;
        top.addRow({opts[i].label(), TablePrinter::fmt(tot * 1e-12, 2),
                    TablePrinter::fmtPercent(fc / tot),
                    TablePrinter::fmtPercent(at / tot),
                    bench::fmtSpeedup(base_attn / at)},
                   args.threads, outs[i].wallSeconds);
        const auto &e = r.attentionEnergy;
        double rest = e.actPre + e.refreshE + e.elseE;
        bottom.addRow({opts[i].label(),
                       TablePrinter::fmtPercent(e.mac / at),
                       TablePrinter::fmtPercent(e.io / at),
                       TablePrinter::fmtPercent(e.background / at),
                       TablePrinter::fmtPercent(rest / at)});
    }
    top.print(std::cout);
    bottom.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Fig. 16: energy breakdown per technique stack");
    bench::JsonRows json("bench_fig16_energy");
    energyCase("Fig. 16(a): LLM-7B-32K on LongBench QMSum (32K class)",
               LlmConfig::llm7b(false), TraceTask::QMSum,
         args.json ? &json : nullptr, args);
    energyCase("Fig. 16(a): LLM-72B-32K on LongBench Musique",
               LlmConfig::llm72b(false), TraceTask::Musique,
         args.json ? &json : nullptr, args);
    energyCase("Fig. 16(b): LLM-7B-128K-GQA on LV-Eval multifieldqa "
               "(paper: background 71.5% -> 13.0%)",
               LlmConfig::llm7b(true), TraceTask::MultifieldQa,
         args.json ? &json : nullptr, args);
    energyCase("Fig. 16(b): LLM-72B-128K-GQA on LV-Eval Loogle-SD",
               LlmConfig::llm72b(true), TraceTask::LoogleSd,
         args.json ? &json : nullptr, args);
    bench::writeJsonIfRequested(json, args);
    return 0;
}
