/**
 * @file
 * Fig. 17: scalability of PIMphony on LLM-7B-128K-GQA-class models
 * with 3-sigma context variation. (a) throughput vs capacity at 64K
 * mean context; (b) speedup over the baseline as mean context scales
 * 4K -> 1M on a fixed 512 GB system (paper: 1.3/2.3/4.8/12.7/46.6x
 * on CENT, 2.0/2.3/2.6/3.4/5.0x on NeuPIMs); (c) attention vs FC
 * time shares explaining the trend.
 *
 * Each sweep point compiles the model for T_max = 2.5x the mean
 * context, covering the trace's 3-sigma tail; compiling every length
 * for a 2M worst case would cripple the static baseline everywhere
 * and is not what either system would deploy.
 */

#include "bench_util.hh"
#include "workload/trace.hh"

using namespace pimphony;

namespace {

std::vector<Request>
scaledTrace(Tokens mean, std::size_t n, Tokens decode)
{
    TraceGenerator gen(TraceTask::MultifieldQa, 99);
    return gen.generateScaled(n, mean, decode);
}

LlmConfig
modelFor(Tokens mean_context)
{
    auto model = LlmConfig::llm7b(true);
    model.contextWindow = mean_context * 5 / 2;
    return model;
}

EvaluationResult
evaluate(SystemKind system, const LlmConfig &model, unsigned modules,
         const std::vector<Request> &requests,
         const PimphonyOptions &options)
{
    OrchestratorConfig cfg;
    cfg.system = system;
    cfg.model = model;
    cfg.options = options;
    cfg.plan = ParallelPlan{0, 0}; // best plan per configuration
    cfg.modulesOverride = modules;
    PimphonyOrchestrator orch(cfg);
    return orch.evaluateRequests(requests);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Fig. 17: scaling with context length and modules");
    bench::JsonRows json("bench_fig17_scaling");

    printBanner(std::cout,
                "Fig. 17(a): throughput vs capacity at 64K mean context "
                "(CENT-like, PIMphony, best plan)");
    {
        auto model = modelFor(65536);
        bench::MirroredTable t(
            {"capacity", "modules", "plan", "tokens/s",
                        "effective batch"},
            args.json ? &json : nullptr, "17a");
        std::vector<unsigned> module_counts =
            args.smoke ? std::vector<unsigned>{8u}
                       : std::vector<unsigned>{8u, 16u, 32u, 64u};
        auto outs = bench::runSweep(
            args, module_counts.size(), [&](std::size_t i) {
                unsigned modules = module_counts[i];
                auto requests = scaledTrace(65536, 4u * modules, 16);
                return evaluate(SystemKind::PimOnly, model, modules,
                                requests, PimphonyOptions::all());
            });
        for (std::size_t i = 0; i < module_counts.size(); ++i) {
            unsigned modules = module_counts[i];
            const auto &r = outs[i].value;
            t.addRow({TablePrinter::fmtInt(modules * 16u) + " GiB",
                      TablePrinter::fmtInt(modules),
                      r.plan.toString(),
                      TablePrinter::fmt(r.engine.tokensPerSecond, 1),
                      TablePrinter::fmt(r.engine.avgEffectiveBatch, 1)},
                     args.threads, outs[i].wallSeconds);
        }
        t.print(std::cout);
    }

    printBanner(std::cout,
                "Fig. 17(b): PIMphony speedup vs context length at 512 "
                "GiB (paper CENT: 1.3/2.3/4.8/12.7/46.6; NeuPIMs: "
                "2.0/2.3/2.6/3.4/5.0)");
    {
        bench::MirroredTable t(
            {"mean context", "CENT base tok/s",
                        "CENT +PIMphony", "speedup", "NeuPIMs base",
                        "NeuPIMs +PIMphony", "speedup"},
            args.json ? &json : nullptr, "17b");
        std::vector<Tokens> contexts =
            args.smoke ? std::vector<Tokens>{4096u, 32768u}
                       : std::vector<Tokens>{4096u, 32768u, 131072u,
                                             524288u, 1048576u};
        // Four system/option variants per context; flatten to
        // contexts.size() * 4 cells (cell 4c+v = context c, variant
        // v in {CENT base, CENT +PIMphony, NeuPIMs base, NeuPIMs
        // +PIMphony}) and reassemble the rows during emission.
        auto outs = bench::runSweep(
            args, contexts.size() * 4, [&](std::size_t i) {
                Tokens ctx = contexts[i / 4];
                std::size_t v = i % 4;
                auto model = modelFor(ctx);
                std::size_t n = ctx >= 524288 ? 12 : 32;
                auto requests = scaledTrace(ctx, n, 16);
                SystemKind sys = v < 2 ? SystemKind::PimOnly
                                       : SystemKind::XpuPim;
                unsigned modules = v < 2 ? 32 : 16;
                auto opt = (v % 2) == 0 ? PimphonyOptions::baseline()
                                        : PimphonyOptions::all();
                return evaluate(sys, model, modules, requests, opt);
            });
        for (std::size_t c = 0; c < contexts.size(); ++c) {
            const auto &cb = outs[4 * c + 0].value;
            const auto &cp = outs[4 * c + 1].value;
            const auto &nb = outs[4 * c + 2].value;
            const auto &np = outs[4 * c + 3].value;
            double row_wall = 0.0;
            for (std::size_t v = 0; v < 4; ++v)
                row_wall += outs[4 * c + v].wallSeconds;
            t.addRow({TablePrinter::fmtInt(contexts[c]),
                      TablePrinter::fmt(cb.engine.tokensPerSecond, 2),
                      TablePrinter::fmt(cp.engine.tokensPerSecond, 2),
                      bench::fmtSpeedup(cp.engine.tokensPerSecond /
                                        cb.engine.tokensPerSecond),
                      TablePrinter::fmt(nb.engine.tokensPerSecond, 2),
                      TablePrinter::fmt(np.engine.tokensPerSecond, 2),
                      bench::fmtSpeedup(np.engine.tokensPerSecond /
                                        nb.engine.tokensPerSecond)},
                     args.threads, row_wall);
        }
        t.print(std::cout);
    }

    printBanner(std::cout,
                "Fig. 17(c): where the time goes (CENT-like, 512 GiB)");
    {
        bench::MirroredTable t(
            {"mean context", "config", "attention share",
                        "FC share", "MAC util"},
            args.json ? &json : nullptr, "17c");
        std::vector<Tokens> contexts =
            args.smoke ? std::vector<Tokens>{32768u}
                       : std::vector<Tokens>{32768u, 524288u};
        const std::vector<PimphonyOptions> opts = {
            PimphonyOptions::baseline(), PimphonyOptions::all()};
        auto outs = bench::runSweep(
            args, contexts.size() * opts.size(), [&](std::size_t i) {
                Tokens ctx = contexts[i / opts.size()];
                auto model = modelFor(ctx);
                auto requests =
                    scaledTrace(ctx, ctx >= 524288 ? 12 : 32, 16);
                return evaluate(SystemKind::PimOnly, model, 32,
                                requests, opts[i % opts.size()]);
            });
        for (std::size_t i = 0; i < contexts.size() * opts.size();
             ++i) {
            Tokens ctx = contexts[i / opts.size()];
            const auto &opt = opts[i % opts.size()];
            const auto &r = outs[i].value;
            double tot = r.engine.attentionSeconds + r.engine.fcSeconds;
            t.addRow({TablePrinter::fmtInt(ctx), opt.label(),
                      TablePrinter::fmtPercent(
                          r.engine.attentionSeconds / tot),
                      TablePrinter::fmtPercent(r.engine.fcSeconds /
                                               tot),
                      TablePrinter::fmtPercent(
                          r.engine.macUtilization)},
                     args.threads, outs[i].wallSeconds);
        }
        t.print(std::cout);
    }
    bench::writeJsonIfRequested(json, args);
    return 0;
}
