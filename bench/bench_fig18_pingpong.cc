/**
 * @file
 * Fig. 18: compute utilization of DCS vs ping-pong buffering on
 * attention kernels -- MHA and GQA with group size g in {2,4,8},
 * both under the row-reuse mapping and with the same total buffer
 * budget. The paper reports DCS up to 1.4x higher utilization.
 */

#include "bench_util.hh"
#include "kernels/kernel_sim.hh"

using namespace pimphony;

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Fig. 18: ping-pong vs DCS scheduling makespan");
    bench::JsonRows json("bench_fig18_pingpong");
    printBanner(std::cout,
                "Fig. 18: compute utilization, ping-pong vs DCS "
                "(row-reuse mapping, same total buffers)");

    AimTimingParams params = AimTimingParams::aimxWithObuf(16);
    bench::MirroredTable t(
        {"config", "pingpong util", "DCS util", "DCS gain",
                    "pingpong cycles", "DCS cycles"},
        args.json ? &json : nullptr);

    for (unsigned g : {1u, 2u, 4u, 8u}) {
        AttentionSpec spec;
        spec.tokens = 16384;
        spec.headDim = 128;
        spec.gqaGroup = g;
        spec.rowReuse = true;

        // Combined QKT + SV utilization per mapping.
        auto run = [&](SchedulerKind sched, bool pingpong) {
            auto qkt = simulateKernel(
                KernelRequest::makeQkt(spec, sched, pingpong), params);
            auto sv = simulateKernel(
                KernelRequest::makeSv(spec, sched, pingpong), params);
            Cycle cycles = qkt.makespan + sv.makespan;
            double util =
                static_cast<double>(qkt.macBusyCycles +
                                    sv.macBusyCycles) /
                static_cast<double>(cycles);
            return std::make_pair(util, cycles);
        };

        auto [pp_util, pp_cycles] = run(SchedulerKind::PingPong, true);
        auto [dc_util, dc_cycles] = run(SchedulerKind::Dcs, false);

        std::string label = g == 1
            ? std::string("MHA")
            : "GQA g=" + TablePrinter::fmtInt(g);
        t.addRow({label, TablePrinter::fmtPercent(pp_util),
                  TablePrinter::fmtPercent(dc_util),
                  bench::fmtSpeedup(dc_util / pp_util),
                  TablePrinter::fmtInt(pp_cycles),
                  TablePrinter::fmtInt(dc_cycles)});
    }
    t.print(std::cout);
    std::cout << "  (paper: DCS sustains entry-level overlap in one "
                 "buffer; ping-pong stalls at region hand-offs, up to "
                 "1.4x lower utilization)\n";
    bench::writeJsonIfRequested(json, args);
    return 0;
}
