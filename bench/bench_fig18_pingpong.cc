/**
 * @file
 * Fig. 18: compute utilization of DCS vs ping-pong buffering on
 * attention kernels -- MHA and GQA with group size g in {2,4,8},
 * both under the row-reuse mapping and with the same total buffer
 * budget. The paper reports DCS up to 1.4x higher utilization.
 */

#include "bench_util.hh"
#include "kernels/kernel_sim.hh"

using namespace pimphony;

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Fig. 18: ping-pong vs DCS scheduling makespan");
    bench::JsonRows json("bench_fig18_pingpong");
    printBanner(std::cout,
                "Fig. 18: compute utilization, ping-pong vs DCS "
                "(row-reuse mapping, same total buffers)");

    AimTimingParams params = AimTimingParams::aimxWithObuf(16);
    bench::MirroredTable t(
        {"config", "pingpong util", "DCS util", "DCS gain",
                    "pingpong cycles", "DCS cycles"},
        args.json ? &json : nullptr);

    // Flattened (group size, scheduler) grid: cell 2g+s runs the
    // combined QKT+SV pair for group g under ping-pong (s=0) or DCS
    // (s=1); emission reassembles each comparison row.
    const std::vector<unsigned> groups = {1u, 2u, 4u, 8u};
    struct UtilCycles
    {
        double util;
        Cycle cycles;
    };
    auto outs = bench::runSweep(
        args, groups.size() * 2, [&](std::size_t i) {
            AttentionSpec spec;
            spec.tokens = 16384;
            spec.headDim = 128;
            spec.gqaGroup = groups[i / 2];
            spec.rowReuse = true;
            bool pingpong = (i % 2) == 0;
            SchedulerKind sched = pingpong ? SchedulerKind::PingPong
                                           : SchedulerKind::Dcs;
            auto qkt = simulateKernel(
                KernelRequest::makeQkt(spec, sched, pingpong), params);
            auto sv = simulateKernel(
                KernelRequest::makeSv(spec, sched, pingpong), params);
            Cycle cycles = qkt.makespan + sv.makespan;
            double util =
                static_cast<double>(qkt.macBusyCycles +
                                    sv.macBusyCycles) /
                static_cast<double>(cycles);
            return UtilCycles{util, cycles};
        });

    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        const auto &pp = outs[2 * gi].value;
        const auto &dc = outs[2 * gi + 1].value;
        std::string label = groups[gi] == 1
            ? std::string("MHA")
            : "GQA g=" + TablePrinter::fmtInt(groups[gi]);
        t.addRow({label, TablePrinter::fmtPercent(pp.util),
                  TablePrinter::fmtPercent(dc.util),
                  bench::fmtSpeedup(dc.util / pp.util),
                  TablePrinter::fmtInt(pp.cycles),
                  TablePrinter::fmtInt(dc.cycles)},
                 args.threads,
                 outs[2 * gi].wallSeconds +
                     outs[2 * gi + 1].wallSeconds);
    }
    t.print(std::cout);
    std::cout << "  (paper: DCS sustains entry-level overlap in one "
                 "buffer; ping-pong stalls at region hand-offs, up to "
                 "1.4x lower utilization)\n";
    bench::writeJsonIfRequested(json, args);
    return 0;
}
