/**
 * @file
 * Fig. 19: memory capacity utilization with and without DPA across
 * the four workloads. QMSum/Musique run the 7B-32K model,
 * multifieldqa/Loogle-SD the 7B-128K GQA model. The paper reports
 * 31.0-40.5% static and 75.6% average with DPA.
 */

#include "bench_util.hh"
#include "workload/trace.hh"

using namespace pimphony;

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Fig. 19: KV capacity utilization per allocator");
    bench::JsonRows json("bench_fig19_capacity");
    printBanner(std::cout,
                "Fig. 19: capacity utilization, static vs DPA "
                "(paper: 31.0-40.5% -> avg 75.6%)");

    bench::MirroredTable t(

        {"task", "model", "static util", "DPA util",
                    "static batch", "DPA batch"},

        args.json ? &json : nullptr);
    double dpa_sum = 0.0;
    int n = 0;
    for (TraceTask task : allTraceTasks()) {
        bool lveval = task == TraceTask::MultifieldQa ||
                      task == TraceTask::LoogleSd;
        auto model = LlmConfig::llm7b(lveval);
        auto cluster = ClusterConfig::centLike(model);
        TraceGenerator gen(task, 7);
        auto requests = gen.generate(48, 64);

        auto st = runServing(cluster, model, requests,
                             PimphonyOptions{true, true, false});
        auto dp = runServing(cluster, model, requests,
                             PimphonyOptions::all());
        dpa_sum += dp.capacityUtilization;
        ++n;
        t.addRow({traceTaskName(task), model.name,
                  TablePrinter::fmtPercent(st.capacityUtilization),
                  TablePrinter::fmtPercent(dp.capacityUtilization),
                  TablePrinter::fmt(st.avgEffectiveBatch, 1),
                  TablePrinter::fmt(dp.avgEffectiveBatch, 1)});
    }
    t.print(std::cout);
    std::cout << "  DPA average: "
              << TablePrinter::fmtPercent(dpa_sum / n)
              << " (paper: 75.6%)\n";
    bench::writeJsonIfRequested(json, args);
    return 0;
}
