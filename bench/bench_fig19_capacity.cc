/**
 * @file
 * Fig. 19: memory capacity utilization with and without DPA across
 * the four workloads. QMSum/Musique run the 7B-32K model,
 * multifieldqa/Loogle-SD the 7B-128K GQA model. The paper reports
 * 31.0-40.5% static and 75.6% average with DPA.
 */

#include "bench_util.hh"
#include "workload/trace.hh"

using namespace pimphony;

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Fig. 19: KV capacity utilization per allocator");
    bench::JsonRows json("bench_fig19_capacity");
    printBanner(std::cout,
                "Fig. 19: capacity utilization, static vs DPA "
                "(paper: 31.0-40.5% -> avg 75.6%)");

    bench::MirroredTable t(

        {"task", "model", "static util", "DPA util",
                    "static batch", "DPA batch"},

        args.json ? &json : nullptr);
    // Flattened (task, allocator) grid: cell 2t+a runs task t with
    // the static stack (a=0) or the DPA stack (a=1).
    auto tasks = allTraceTasks();
    auto outs = bench::runSweep(
        args, tasks.size() * 2, [&](std::size_t i) {
            TraceTask task = tasks[i / 2];
            bool lveval = task == TraceTask::MultifieldQa ||
                          task == TraceTask::LoogleSd;
            auto model = LlmConfig::llm7b(lveval);
            auto cluster = ClusterConfig::centLike(model);
            TraceGenerator gen(task, 7);
            auto requests = gen.generate(48, 64);
            auto opt = (i % 2) == 0 ? PimphonyOptions{true, true, false}
                                    : PimphonyOptions::all();
            return runServing(cluster, model, requests, opt);
        });

    double dpa_sum = 0.0;
    int n = 0;
    for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
        bool lveval = tasks[ti] == TraceTask::MultifieldQa ||
                      tasks[ti] == TraceTask::LoogleSd;
        auto model = LlmConfig::llm7b(lveval);
        const auto &st = outs[2 * ti].value;
        const auto &dp = outs[2 * ti + 1].value;
        dpa_sum += dp.capacityUtilization;
        ++n;
        t.addRow({traceTaskName(tasks[ti]), model.name,
                  TablePrinter::fmtPercent(st.capacityUtilization),
                  TablePrinter::fmtPercent(dp.capacityUtilization),
                  TablePrinter::fmt(st.avgEffectiveBatch, 1),
                  TablePrinter::fmt(dp.avgEffectiveBatch, 1)},
                 args.threads,
                 outs[2 * ti].wallSeconds +
                     outs[2 * ti + 1].wallSeconds);
    }
    t.print(std::cout);
    std::cout << "  DPA average: "
              << TablePrinter::fmtPercent(dpa_sum / n)
              << " (paper: 75.6%)\n";
    bench::writeJsonIfRequested(json, args);
    return 0;
}
