/**
 * @file
 * Fig. 20: throughput comparison with a memory-matched GPU system
 * (A100s with flash-decoding + paged-attention). (a) non-GQA LLM on
 * QMSum; (b) GQA LLM on multifieldqa. GPU memory is matched: two
 * A100-80GB for LLM-7B, eight for LLM-72B.
 */

#include "bench_util.hh"
#include "system/gpu_system.hh"
#include "workload/trace.hh"

using namespace pimphony;

namespace {

void
compare(const char *title, const LlmConfig &model, TraceTask task,
        unsigned n_gpus, bench::JsonRows *json,
        const bench::BenchArgs &args)
{
    printBanner(std::cout, title);
    TraceGenerator gen(task, 55);
    auto requests = gen.generate(24, 32);

    GpuSystemConfig gpu;
    gpu.nGpus = n_gpus;
    auto g = runGpuServing(gpu, model, requests);

    bench::MirroredTable t(

        {"system", "tokens/s", "vs GPU"},

        json);
    t.addRow({"GPU (A100 x" + TablePrinter::fmtInt(n_gpus) + ", FD+PA)",
              TablePrinter::fmt(g.tokensPerSecond, 1), "1.00x"});

    const std::vector<SystemKind> kinds = {SystemKind::PimOnly,
                                           SystemKind::XpuPim};
    auto outs = bench::runSweep(args, kinds.size(), [&](std::size_t i) {
        OrchestratorConfig cfg;
        cfg.system = kinds[i];
        cfg.model = model;
        cfg.options = PimphonyOptions::all();
        cfg.plan = ParallelPlan{0, 0};
        cfg.nRequests = 24;
        cfg.decodeTokens = 32;
        cfg.seed = 55;
        PimphonyOrchestrator orch(cfg);
        return orch.evaluate(task);
    });
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        const auto &r = outs[i].value;
        t.addRow({systemKindName(kinds[i]) + " + PIMphony",
                  TablePrinter::fmt(r.engine.tokensPerSecond, 1),
                  bench::fmtSpeedup(r.engine.tokensPerSecond /
                                    g.tokensPerSecond)},
                 args.threads, outs[i].wallSeconds);
    }
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Fig. 20: GPU baseline comparison");
    bench::JsonRows json("bench_fig20_gpu");
    compare("Fig. 20(a): LLM-7B-32K (non-GQA) on QMSum, GPU memory "
            "matched (2x A100-80GB)",
            LlmConfig::llm7b(false), TraceTask::QMSum, 2,
         args.json ? &json : nullptr, args);
    compare("Fig. 20(b): LLM-7B-128K-GQA on multifieldqa (2x A100)",
            LlmConfig::llm7b(true), TraceTask::MultifieldQa, 2,
         args.json ? &json : nullptr, args);
    compare("Fig. 20(a): LLM-72B-32K (non-GQA) on QMSum (8x A100)",
            LlmConfig::llm72b(false), TraceTask::QMSum, 8,
         args.json ? &json : nullptr, args);
    compare("Fig. 20(b): LLM-72B-128K-GQA on multifieldqa (8x A100)",
            LlmConfig::llm72b(true), TraceTask::MultifieldQa, 8,
         args.json ? &json : nullptr, args);
    bench::writeJsonIfRequested(json, args);
    return 0;
}
