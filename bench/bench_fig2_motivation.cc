/**
 * @file
 * Fig. 2: characteristics of long-context decoding on LLM-7B (GQA).
 * (a) compute intensity vs context length; (b) memory footprint vs
 * context length and batch, against the A100-80GB line.
 */

#include "bench_util.hh"
#include "model/llm.hh"

using namespace pimphony;

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Fig. 2: long-context decode characteristics");
    bench::JsonRows json("bench_fig2_motivation");
    auto model = LlmConfig::llm7b(true);

    printBanner(std::cout,
                "Fig. 2(a): compute intensity (FLOPs/Byte) vs context "
                "(LLM-7B w/ GQA, batch 16)");
    bench::MirroredTable a(
        {"context", "FLOPs/token", "bytes/token",
                    "intensity"},
        args.json ? &json : nullptr);
    for (Tokens t : {1024u, 4096u, 16384u, 65536u, 262144u, 1048576u}) {
        a.addRow({TablePrinter::fmtInt(t),
                  TablePrinter::fmt(model.decodeFlopsPerToken(t) / 1e9, 2) +
                      " G",
                  TablePrinter::fmt(
                      model.decodeBytesPerToken(t, 16) / 1e9, 2) +
                      " GB",
                  TablePrinter::fmt(model.computeIntensity(t, 16), 2)});
    }
    a.print(std::cout);

    printBanner(std::cout,
                "Fig. 2(b): GPU memory footprint (GiB) vs context x batch "
                "(dashed line: A100 80 GiB)");
    std::vector<std::uint32_t> batches = {1, 2, 4, 8, 16};
    std::vector<std::string> headers = {"context"};
    for (auto b : batches)
        headers.push_back("batch " + TablePrinter::fmtInt(b));
    bench::MirroredTable f(headers, args.json ? &json : nullptr, "f");
    for (Tokens t : {4096u, 16384u, 65536u, 131072u, 262144u, 1048576u}) {
        std::vector<std::string> row = {TablePrinter::fmtInt(t)};
        for (auto b : batches) {
            double gib = static_cast<double>(
                             model.memoryFootprint(t, b)) /
                         (1024.0 * 1024.0 * 1024.0);
            std::string cell = TablePrinter::fmt(gib, 1);
            if (gib > 80.0)
                cell += " *OOM";
            row.push_back(cell);
        }
        f.addRow(row);
    }
    f.print(std::cout);
    std::cout << "  (*OOM: exceeds one A100-80GB)\n";
    bench::writeJsonIfRequested(json, args);
    return 0;
}
