/**
 * @file
 * Fig. 4: PIM utilization under short (4K) and long (32K) contexts on
 * LLM-7B-32K-GQA over the CENT-like system, with TCP/DCS/DPA applied
 * cumulatively. The paper reports a 48% relative utilization drop
 * from 4K to 32K on the baseline, stepwise gains of ~1.4x/1.9x/1.1x
 * at 32K, and an effective batch of 53 with DPA.
 */

#include "bench_util.hh"
#include "workload/trace.hh"

using namespace pimphony;

namespace {

void
contextCase(const char *title, Tokens mean_context, Tokens t_max,
            bench::JsonRows *json, const bench::BenchArgs &args)
{
    printBanner(std::cout, title);
    auto model = LlmConfig::llm7b(true);
    model.contextWindow = t_max; // the compile-time maximum

    TraceGenerator gen(TraceTask::QMSum, 17);
    // Offered load well above what static reservations can admit, so
    // the admission limit (not the trace size) sets the batch.
    auto requests = gen.generateScaled(96, mean_context, 32);

    // One sweep cell per cumulative stack; the util-gain column is a
    // ratio of adjacent rows, so it is computed during the serial
    // emission pass, not inside the cells.
    auto opts = bench::cumulativeOptions();
    auto outs = bench::runSweep(args, opts.size(), [&](std::size_t i) {
        auto cluster = ClusterConfig::centLike(model);
        return runServing(cluster, model, requests, opts[i]);
    });

    bench::MirroredTable t(

        {"config", "MAC util", "util gain", "tokens/s",
                    "effective batch", "capacity util"},

        json);
    double prev_util = 0.0;
    for (std::size_t i = 0; i < opts.size(); ++i) {
        const auto &r = outs[i].value;
        std::string gain = prev_util > 0.0
            ? bench::fmtSpeedup(r.macUtilization / prev_util)
            : std::string("-");
        t.addRow({opts[i].label(),
                  TablePrinter::fmtPercent(r.macUtilization),
                  gain,
                  TablePrinter::fmt(r.tokensPerSecond, 1),
                  TablePrinter::fmt(r.avgEffectiveBatch, 1),
                  TablePrinter::fmtPercent(r.capacityUtilization)},
                 args.threads, outs[i].wallSeconds);
        prev_util = r.macUtilization;
    }
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Fig. 4: effective batch and MAC utilization");
    bench::JsonRows json("bench_fig4_utilization");
    contextCase("Fig. 4(a): short context (~4K, T_max 4K)", 4096, 4096,
         args.json ? &json : nullptr, args);
    contextCase("Fig. 4(b): long context (~32K, T_max 32K; paper: 48% "
                "baseline util drop vs (a), gains 1.4x/1.9x/1.1x, "
                "effective batch 53)",
                28000, 32768,
         args.json ? &json : nullptr, args);
    bench::writeJsonIfRequested(json, args);
    return 0;
}
