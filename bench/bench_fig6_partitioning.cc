/**
 * @file
 * Fig. 6: HFP vs TCP channel activity on the paper's toy workload --
 * two requests (one long, one short), two heads, four channels.
 * Prints the per-channel token loads and the resulting active-channel
 * fraction under both tensor- and pipeline-parallel organizations.
 */

#include "bench_util.hh"
#include "mapping/partition.hh"

using namespace pimphony;

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Fig. 6: attention partitioning strategies");
    bench::JsonRows json("bench_fig6_partitioning");
    const unsigned n_channels = 4;

    // R(1): long context, R(2): short context; 2 heads each.
    std::vector<AttentionJob> jobs = {
        {1, 1, 12000}, {1, 2, 12000}, {2, 1, 4000}, {2, 2, 4000}};

    printBanner(std::cout,
                "Fig. 6(b) vs (d): tensor parallelism, one module of 4 "
                "channels");
    {
        bench::MirroredTable t(
            {"channel", "HFP load (tokens)", "TCP load"},
            args.json ? &json : nullptr, "t");
        auto hfp = assignHfp(jobs, n_channels);
        Tokens tcp_per_channel = 0;
        for (const auto &j : jobs)
            tcp_per_channel += tcpSliceTokens(j, n_channels);
        Tokens max_load = 0;
        for (unsigned c = 0; c < n_channels; ++c) {
            Tokens load = 0;
            for (const auto &j : hfp[c])
                load += j.tokens;
            max_load = std::max(max_load, load);
            t.addRow({"CH" + TablePrinter::fmtInt(c),
                      TablePrinter::fmtInt(load),
                      TablePrinter::fmtInt(tcp_per_channel)});
        }
        t.print(std::cout);
        std::cout << "  HFP makespan " << max_load
                  << " tokens vs TCP " << tcp_per_channel
                  << " tokens (balance gain "
                  << bench::fmtSpeedup(
                         static_cast<double>(max_load) /
                         static_cast<double>(tcp_per_channel))
                  << ")\n";
    }

    printBanner(std::cout,
                "Fig. 6(c) vs (e): pipeline parallelism, stage holds one "
                "request at a time");
    {
        bench::MirroredTable t(
            {"stage occupant", "HFP active channels",
                        "TCP active channels"},
            args.json ? &json : nullptr, "t");
        for (RequestId r = 1; r <= 2; ++r) {
            std::vector<AttentionJob> stage_jobs;
            for (const auto &j : jobs)
                if (j.request == r)
                    stage_jobs.push_back(j);
            auto hfp = assignHfp(stage_jobs, n_channels);
            unsigned active = 0;
            for (const auto &ch : hfp)
                if (!ch.empty())
                    ++active;
            t.addRow({"R(" + TablePrinter::fmtInt(r) + ")",
                      TablePrinter::fmtInt(active) + "/4",
                      "4/4"});
        }
        t.print(std::cout);
    }

    printBanner(std::cout, "TCP full-activation threshold");
    std::cout << "  16-channel module: QK^T fully active beyond "
              << tcpFullActivationTokens(16)
              << " tokens (paper: 256)\n";
    bench::writeJsonIfRequested(json, args);
    return 0;
}
