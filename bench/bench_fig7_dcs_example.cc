/**
 * @file
 * Fig. 7: the DCS worked example. An 11-command GEMV (3 WR-INP, two
 * output groups of 3 accumulating MACs, 2 RD-OUT) is scheduled by the
 * static controller (34 cycles in the paper) and by DCS (22 cycles in
 * the paper), with the full issue timeline printed.
 */

#include <algorithm>

#include "bench_util.hh"
#include "dram/timing.hh"
#include "pim/scheduler.hh"

using namespace pimphony;

namespace {

CommandStream
fig7Stream()
{
    CommandStream s;
    auto push = [&s](PimCommand c, std::int32_t group) {
        c.group = group;
        s.append(c);
    };
    int grp = 0;
    push(PimCommand::wrInp(0), grp);
    push(PimCommand::wrInp(1), grp);
    push(PimCommand::wrInp(2), grp);
    push(PimCommand::mac(0, 0, 0, 0), ++grp);
    push(PimCommand::mac(1, 0, 0, 1), ++grp);
    push(PimCommand::mac(2, 0, 0, 2), ++grp);
    push(PimCommand::rdOut(0), ++grp);
    push(PimCommand::mac(0, 1, 0, 3), ++grp);
    push(PimCommand::mac(1, 1, 0, 4), ++grp);
    push(PimCommand::mac(2, 1, 0, 5), ++grp);
    push(PimCommand::rdOut(1), ++grp);
    return s;
}

void
printTimeline(const ScheduleResult &r)
{
    std::vector<ScheduledCommand> sorted(r.timeline);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  return a.issue < b.issue;
              });
    for (const auto &sc : sorted)
        std::cout << "    cycle " << sc.issue << "-" << sc.complete
                  << ": " << sc.cmd.toString() << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Fig. 7: DCS scheduling example");
    bench::JsonRows json("bench_fig7_dcs_example");
    printBanner(std::cout,
                "Fig. 7: static vs dynamic command scheduling "
                "(illustrative timing: tCCDS=2 tWR-INP=4 tMAC=3 "
                "tRD-OUT=4)");

    auto params = AimTimingParams::illustrative();
    auto stream = fig7Stream();

    auto st = makeScheduler(SchedulerKind::Static, params)
                  ->schedule(stream, true);
    auto dc = makeScheduler(SchedulerKind::Dcs, params)
                  ->schedule(stream, true);

    std::cout << "  static schedule (" << st.makespan
              << " cycles; paper: 34):\n";
    printTimeline(st);
    std::cout << "  DCS schedule (" << dc.makespan
              << " cycles; paper: 22):\n";
    printTimeline(dc);

    bench::MirroredTable t(

        {"scheduler", "cycles", "vs paper", "reduction"},

        args.json ? &json : nullptr);
    t.addRow({"static", TablePrinter::fmtInt(st.makespan), "34", "-"});
    t.addRow({"DCS", TablePrinter::fmtInt(dc.makespan), "22",
              TablePrinter::fmtPercent(
                  1.0 - static_cast<double>(dc.makespan) /
                            static_cast<double>(st.makespan))});
    t.print(std::cout);

    printBanner(std::cout, "Same example under AiMX-calibrated timing");
    auto aimx = AimTimingParams::aimxWithObuf(4);
    auto st2 = makeScheduler(SchedulerKind::Static, aimx)
                   ->schedule(stream);
    auto dc2 = makeScheduler(SchedulerKind::Dcs, aimx)->schedule(stream);
    std::cout << "  static: " << st2.makespan << " cycles, DCS: "
              << dc2.makespan << " cycles ("
              << bench::fmtSpeedup(static_cast<double>(st2.makespan) /
                                   static_cast<double>(dc2.makespan))
              << ")\n";
    bench::writeJsonIfRequested(json, args);
    return 0;
}
