/**
 * @file
 * Fig. 8: latency breakdown across matrix dimensions under the
 * static controller (baseline OutRegs). As (d_in, d_out) shrink
 * toward the attention head dimension (128), I/O transfers and
 * pipeline stalls dominate and MAC utilization collapses (the paper
 * measures 14.7% at 128).
 */

#include "bench_util.hh"
#include "kernels/kernel_sim.hh"

using namespace pimphony;

namespace {

void
sweep(SchedulerKind sched, const char *title, unsigned obuf,
      bench::JsonRows *json, const bench::BenchArgs &args)
{
    printBanner(std::cout, title);
    bench::MirroredTable t(
        {"(din,dout)", "cycles", "MAC", "ACT/PRE", "REF",
                    "DT-GBuf", "DT-OutReg", "PipelinePenalty",
                    "MAC util"},
        json);
    AimTimingParams params = AimTimingParams::aimxWithObuf(obuf);
    if (obuf <= 1)
        params = AimTimingParams::aimx();
    const std::vector<std::uint64_t> dims = {128, 256, 512, 1024, 2048,
                                             4096};
    auto outs = bench::runSweep(args, dims.size(), [&](std::size_t i) {
        auto spec = GemvSpec::fromDims(dims[i], dims[i]);
        return simulateKernel(KernelRequest::makeGemv(spec, sched),
                              params);
    });
    for (std::size_t i = 0; i < dims.size(); ++i) {
        const auto &r = outs[i].value;
        auto pct = [&](Cycle c) {
            return TablePrinter::fmtPercent(
                static_cast<double>(c) /
                static_cast<double>(r.makespan));
        };
        t.addRow({TablePrinter::fmtInt(dims[i]) + "x" +
                      TablePrinter::fmtInt(dims[i]),
                  TablePrinter::fmtInt(r.makespan),
                  pct(r.breakdown.macCycles),
                  pct(r.breakdown.actPreCycles),
                  pct(r.breakdown.refreshCycles),
                  pct(r.breakdown.dtGbufCycles),
                  pct(r.breakdown.dtOutregCycles),
                  pct(r.breakdown.pipelinePenaltyCycles),
                  TablePrinter::fmtPercent(r.macUtilization)},
                 args.threads, outs[i].wallSeconds);
    }
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Fig. 8: latency breakdown per technique");
    bench::JsonRows json("bench_fig8_breakdown");
    sweep(SchedulerKind::Static,
          "Fig. 8: latency breakdown vs matrix dims -- static "
          "scheduler, single OutReg (baseline)",
          1,
         args.json ? &json : nullptr, args);
    sweep(SchedulerKind::Dcs,
          "Reference: same sweep with DCS + I/O-aware buffering "
          "(PIMphony)",
          16,
         args.json ? &json : nullptr, args);
    bench::writeJsonIfRequested(json, args);
    return 0;
}
