/**
 * @file
 * Fig. 9: latency breakdown of PIM command execution for LLM-72B
 * attention, (a) QK^T and (b) SV, each without and with DCS, both
 * under the row-reuse mapping.
 */

#include "bench_util.hh"
#include "kernels/kernel_sim.hh"
#include "model/llm.hh"

using namespace pimphony;

namespace {

void
rows(bench::MirroredTable &t, const char *label, const ScheduleResult &r)
{
    auto pct = [&](Cycle c) {
        return TablePrinter::fmtPercent(static_cast<double>(c) /
                                        static_cast<double>(r.makespan));
    };
    t.addRow({label, TablePrinter::fmtInt(r.makespan),
              pct(r.breakdown.macCycles), pct(r.breakdown.actPreCycles),
              pct(r.breakdown.refreshCycles),
              pct(r.breakdown.dtGbufCycles),
              pct(r.breakdown.dtOutregCycles),
              pct(r.breakdown.pipelinePenaltyCycles),
              TablePrinter::fmtPercent(r.macUtilization)});
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Fig. 9: GQA DCS scheduling behavior");
    bench::JsonRows json("bench_fig9_gqa_dcs");
    auto model = LlmConfig::llm72b(true); // g = 8

    AttentionSpec spec;
    spec.tokens = 16384; // per-channel slice of a long context
    spec.headDim = model.headDim;
    spec.gqaGroup = model.gqaGroup;
    spec.rowReuse = true;

    auto base = AimTimingParams::aimx();
    auto obuf = AimTimingParams::aimxWithObuf(16);

    // The four (a)/(b) kernel sims are independent — run them as one
    // 4-cell sweep: {QK^T, SV} x {static, DCS}.
    auto ab = bench::runSweep(args, 4, [&](std::size_t i) {
        bool sv = i >= 2;
        auto sched = (i % 2) ? SchedulerKind::Dcs : SchedulerKind::Static;
        auto req = sv ? KernelRequest::makeSv(spec, sched)
                      : KernelRequest::makeQkt(spec, sched);
        return simulateKernel(req, (i % 2) ? obuf : base);
    });
    const auto &qkt_st = ab[0].value;
    const auto &qkt_dc = ab[1].value;
    const auto &sv_st = ab[2].value;
    const auto &sv_dc = ab[3].value;

    printBanner(std::cout,
                "Fig. 9(a): LLM-72B QK^T latency breakdown, row-reuse "
                "mapping (16K tokens/channel, g=8)");
    bench::MirroredTable a(
        {"config", "cycles", "MAC", "ACT/PRE", "REF",
                    "DT-GBuf", "DT-OutReg", "Pipeline", "MAC util"},
        args.json ? &json : nullptr, "a");
    rows(a, "static", qkt_st);
    rows(a, "DCS", qkt_dc);
    a.addRow({"speedup",
              bench::fmtSpeedup(static_cast<double>(qkt_st.makespan) /
                                static_cast<double>(qkt_dc.makespan))});
    a.print(std::cout);

    printBanner(std::cout, "Fig. 9(b): LLM-72B SV latency breakdown");
    bench::MirroredTable b(
        {"config", "cycles", "MAC", "ACT/PRE", "REF",
                    "DT-GBuf", "DT-OutReg", "Pipeline", "MAC util"},
        args.json ? &json : nullptr, "b");
    rows(b, "static", sv_st);
    rows(b, "DCS", sv_dc);
    b.addRow({"speedup",
              bench::fmtSpeedup(static_cast<double>(sv_st.makespan) /
                                static_cast<double>(sv_dc.makespan))});
    b.print(std::cout);

    printBanner(std::cout,
                "Row-reuse vs input-reuse (static): the mapping only "
                "pays off once DCS hides the query/score swaps");
    bench::MirroredTable c(
        {"mapping", "scheduler", "QKT cycles", "activates"},
        args.json ? &json : nullptr, "c");
    struct MapCell
    {
        bool rr;
        SchedulerKind sched;
    };
    std::vector<MapCell> map_cells;
    for (bool rr : {false, true})
        for (auto sched : {SchedulerKind::Static, SchedulerKind::Dcs})
            map_cells.push_back({rr, sched});
    auto map_outs =
        bench::runSweep(args, map_cells.size(), [&](std::size_t i) {
            AttentionSpec s2 = spec;
            s2.rowReuse = map_cells[i].rr;
            return simulateKernel(
                KernelRequest::makeQkt(s2, map_cells[i].sched),
                map_cells[i].sched == SchedulerKind::Dcs ? obuf : base);
        });
    for (std::size_t i = 0; i < map_cells.size(); ++i) {
        const auto &r = map_outs[i].value;
        c.addRow({map_cells[i].rr ? "row-reuse" : "input-reuse",
                  schedulerName(map_cells[i].sched),
                  TablePrinter::fmtInt(r.makespan),
                  TablePrinter::fmtInt(r.activates)},
                 args.threads, map_outs[i].wallSeconds);
    }
    c.print(std::cout);
    bench::writeJsonIfRequested(json, args);
    return 0;
}
