/**
 * @file
 * Fig. 9: latency breakdown of PIM command execution for LLM-72B
 * attention, (a) QK^T and (b) SV, each without and with DCS, both
 * under the row-reuse mapping.
 */

#include "bench_util.hh"
#include "kernels/kernel_sim.hh"
#include "model/llm.hh"

using namespace pimphony;

namespace {

void
rows(bench::MirroredTable &t, const char *label, const ScheduleResult &r)
{
    auto pct = [&](Cycle c) {
        return TablePrinter::fmtPercent(static_cast<double>(c) /
                                        static_cast<double>(r.makespan));
    };
    t.addRow({label, TablePrinter::fmtInt(r.makespan),
              pct(r.breakdown.macCycles), pct(r.breakdown.actPreCycles),
              pct(r.breakdown.refreshCycles),
              pct(r.breakdown.dtGbufCycles),
              pct(r.breakdown.dtOutregCycles),
              pct(r.breakdown.pipelinePenaltyCycles),
              TablePrinter::fmtPercent(r.macUtilization)});
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Fig. 9: GQA DCS scheduling behavior");
    bench::JsonRows json("bench_fig9_gqa_dcs");
    auto model = LlmConfig::llm72b(true); // g = 8

    AttentionSpec spec;
    spec.tokens = 16384; // per-channel slice of a long context
    spec.headDim = model.headDim;
    spec.gqaGroup = model.gqaGroup;
    spec.rowReuse = true;

    auto base = AimTimingParams::aimx();
    auto obuf = AimTimingParams::aimxWithObuf(16);

    printBanner(std::cout,
                "Fig. 9(a): LLM-72B QK^T latency breakdown, row-reuse "
                "mapping (16K tokens/channel, g=8)");
    bench::MirroredTable a(
        {"config", "cycles", "MAC", "ACT/PRE", "REF",
                    "DT-GBuf", "DT-OutReg", "Pipeline", "MAC util"},
        args.json ? &json : nullptr, "a");
    auto qkt_st = simulateKernel(
        KernelRequest::makeQkt(spec, SchedulerKind::Static), base);
    auto qkt_dc = simulateKernel(
        KernelRequest::makeQkt(spec, SchedulerKind::Dcs), obuf);
    rows(a, "static", qkt_st);
    rows(a, "DCS", qkt_dc);
    a.addRow({"speedup",
              bench::fmtSpeedup(static_cast<double>(qkt_st.makespan) /
                                static_cast<double>(qkt_dc.makespan))});
    a.print(std::cout);

    printBanner(std::cout, "Fig. 9(b): LLM-72B SV latency breakdown");
    bench::MirroredTable b(
        {"config", "cycles", "MAC", "ACT/PRE", "REF",
                    "DT-GBuf", "DT-OutReg", "Pipeline", "MAC util"},
        args.json ? &json : nullptr, "b");
    auto sv_st = simulateKernel(
        KernelRequest::makeSv(spec, SchedulerKind::Static), base);
    auto sv_dc = simulateKernel(
        KernelRequest::makeSv(spec, SchedulerKind::Dcs), obuf);
    rows(b, "static", sv_st);
    rows(b, "DCS", sv_dc);
    b.addRow({"speedup",
              bench::fmtSpeedup(static_cast<double>(sv_st.makespan) /
                                static_cast<double>(sv_dc.makespan))});
    b.print(std::cout);

    printBanner(std::cout,
                "Row-reuse vs input-reuse (static): the mapping only "
                "pays off once DCS hides the query/score swaps");
    bench::MirroredTable c(
        {"mapping", "scheduler", "QKT cycles", "activates"},
        args.json ? &json : nullptr, "c");
    for (bool rr : {false, true}) {
        for (auto sched :
             {SchedulerKind::Static, SchedulerKind::Dcs}) {
            AttentionSpec s2 = spec;
            s2.rowReuse = rr;
            auto r = simulateKernel(
                KernelRequest::makeQkt(s2, sched),
                sched == SchedulerKind::Dcs ? obuf : base);
            c.addRow({rr ? "row-reuse" : "input-reuse",
                      schedulerName(sched),
                      TablePrinter::fmtInt(r.makespan),
                      TablePrinter::fmtInt(r.activates)});
        }
    }
    c.print(std::cout);
    bench::writeJsonIfRequested(json, args);
    return 0;
}
