/**
 * @file
 * Fleet-simulation benchmark: wall-clock scaling of the conservative
 * time-window replica advance (system/fleet) in replica count and
 * thread count.
 *
 * Each grid cell builds one fleet (replicas x routing policy x
 * arrival rate, fixed router dispatch latency) over its own trace
 * and runs it twice: serially (threads = 1, the exact inline path)
 * and on the requested thread pool. The two runs are bit-identical
 * in every simulated metric by construction — the bench asserts the
 * headline fields match — so the interesting number is the wall
 * ratio: with replicas >> threads >= cores the windowed advance
 * should approach linear scaling, because replicas only synchronize
 * at window barriers and the router's serial work is O(arrivals).
 *
 * The 8-replica speedup row is the headline CI watches. On a
 * single-core host the parallel leg cannot beat the serial one, so
 * the speedup expectation is skipped with a note rather than
 * reported as a regression.
 *
 * Reading BENCH_fleet.json: deterministic fields (sim_events,
 * generated_tokens, tokens_per_second, gap_p95_s, windows) must be
 * bit-stable run to run and across --threads values — the CI
 * determinism job diffs them. Timing fields (serial_wall_ms,
 * parallel_wall_ms, speedup_x, wall_ms, events_per_sec) vary with
 * the host.
 *
 * usage: bench_fleet [--smoke] [--json[=PATH]] [--threads N]
 */

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "system/fleet.hh"
#include "workload/arrival.hh"

using namespace pimphony;

namespace {

struct FleetConfig
{
    unsigned replicas;
    RoutePolicy policy;
    double ratePerSecond;
};

std::string
configName(const FleetConfig &cfg)
{
    return "fleet.r" + std::to_string(cfg.replicas) + "." +
           routePolicyName(cfg.policy) + ".rate" +
           std::to_string(static_cast<int>(cfg.ratePerSecond));
}

FleetResult
runFleetOnce(const FleetConfig &cfg, unsigned threads, double &wall)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    cluster.plan = ParallelPlan{cluster.nModules / 4, 4};
    applyOptions(cluster, PimphonyOptions::all());

    // Work per replica is held constant (requests scale with the
    // fleet), so the serial wall grows ~linearly in replicas and the
    // parallel speedup is read directly from the ratio.
    std::size_t n = static_cast<std::size_t>(cfg.replicas) * 32;
    std::vector<Request> reqs;
    for (RequestId i = 0; i < n; ++i)
        reqs.push_back({i, (i % 4 == 0) ? Tokens(30000) : Tokens(2000),
                        32});
    auto trace = poissonArrivals(reqs, cfg.ratePerSecond, 17);

    FleetOptions fopts;
    fopts.replicas = cfg.replicas;
    fopts.policy = cfg.policy;
    fopts.dispatchLatencySeconds = 0.002;
    fopts.threads = std::min(threads, cfg.replicas);
    fopts.engine.allocator = AllocatorKind::LazyChunk;
    fopts.engine.stepModel = StepModel::EventDriven;
    fopts.engine.prefillChunkTokens = 2048;

    auto t0 = std::chrono::steady_clock::now();
    auto result = FleetEngine(cluster, model, trace, fopts).run();
    wall = std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
               .count();
    return result;
}

/** Best-of-@p reps wall (the most reproducible estimator). */
FleetResult
runFleetBest(const FleetConfig &cfg, unsigned threads, int reps,
             double &best_wall)
{
    FleetResult r;
    best_wall = 0.0;
    for (int i = 0; i < reps; ++i) {
        double wall = 0.0;
        r = runFleetOnce(cfg, threads, wall);
        if (best_wall == 0.0 || wall < best_wall)
            best_wall = wall;
    }
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv,
        "fleet simulation wall-clock scaling: replicas x policy x "
        "arrival rate, serial vs --threads N window advance");

    std::vector<FleetConfig> configs;
    if (args.smoke) {
        configs = {
            {2, RoutePolicy::RoundRobin, 24.0},
            {4, RoutePolicy::LeastLoaded, 24.0},
            {8, RoutePolicy::RoundRobin, 24.0},
        };
    } else {
        for (unsigned replicas : {1u, 2u, 4u, 8u})
            for (RoutePolicy policy :
                 {RoutePolicy::RoundRobin, RoutePolicy::LeastLoaded})
                for (double rate : {16.0, 48.0})
                    configs.push_back({replicas, policy, rate});
    }
    int reps = args.smoke ? 1 : 2;

    printBanner(std::cout,
                "Fleet window-advance scaling (replicas x policy x "
                "rate), xPU+PIM, LLM-7B-128K-GQA");
    bench::JsonRows json("bench_fleet");
    TablePrinter t({"config", "requests", "windows", "events",
                    "sim tok/s", "serial (ms)",
                    "T=" + std::to_string(args.threads) + " (ms)",
                    "speedup"});

    // One warm-up (first-touch kernel simulation, pool growth) so
    // the first cell's serial leg is not penalized.
    {
        double w = 0.0;
        (void)runFleetOnce({1, RoutePolicy::RoundRobin, 24.0}, 1, w);
    }

    double headline_speedup = 0.0;
    for (const auto &cfg : configs) {
        double serial_wall = 0.0;
        auto serial = runFleetBest(cfg, 1, reps, serial_wall);

        // The parallel leg re-runs the identical fleet on the pool;
        // simulated results must not move.
        double parallel_wall = serial_wall;
        if (args.threads > 1) {
            auto parallel =
                runFleetBest(cfg, args.threads, reps, parallel_wall);
            if (parallel.aggregate.simEvents !=
                    serial.aggregate.simEvents ||
                parallel.aggregate.generatedTokens !=
                    serial.aggregate.generatedTokens ||
                parallel.windows != serial.windows)
                fatal("bench_fleet: parallel run diverged from serial "
                      "on %s",
                      configName(cfg).c_str());
        }
        double speedup =
            parallel_wall > 0.0 ? serial_wall / parallel_wall : 0.0;
        if (cfg.replicas == 8 && args.threads > 1)
            headline_speedup = std::max(headline_speedup, speedup);

        const EngineResult &r = serial.aggregate;
        double eps = serial_wall > 0.0
                         ? static_cast<double>(r.simEvents) / serial_wall
                         : 0.0;
        t.addRow({configName(cfg), std::to_string(
                      static_cast<std::size_t>(cfg.replicas) * 32),
                  std::to_string(serial.windows),
                  std::to_string(r.simEvents),
                  TablePrinter::fmt(r.tokensPerSecond, 1),
                  TablePrinter::fmt(serial_wall * 1e3, 2),
                  TablePrinter::fmt(parallel_wall * 1e3, 2),
                  bench::fmtSpeedup(speedup)});
        if (args.json) {
            json.beginRow();
            json.field("config", configName(cfg));
            json.field("replicas", cfg.replicas);
            json.field("policy", routePolicyName(cfg.policy));
            json.field("rate_rps", cfg.ratePerSecond);
            json.field("requests", static_cast<std::uint64_t>(
                                       static_cast<std::size_t>(
                                           cfg.replicas) *
                                       32));
            // Deterministic fields (diffed by the CI determinism
            // job across runs and --threads values)...
            json.field("windows", serial.windows);
            json.field("sim_events", r.simEvents);
            json.field("generated_tokens", r.generatedTokens);
            json.field("tokens_per_second", r.tokensPerSecond);
            json.field("gap_p95_s", r.p95TokenGapSeconds);
            json.field("completed_requests", r.completedRequests);
            // ...and host-dependent timing fields (excluded there).
            json.field("wall_ms", serial_wall * 1e3);
            json.field("events_per_sec", eps);
            json.field("serial_wall_ms", serial_wall * 1e3);
            json.field("parallel_wall_ms", parallel_wall * 1e3);
            json.field("speedup_x", speedup);
            json.field("threads", args.threads);
        }
    }
    t.print(std::cout);

    // Headline: near-linear scaling in replicas. Meaningless on a
    // single-core host (the pool cannot beat the inline path), so
    // skip with a note instead of reporting a regression.
    if (args.threads <= 1) {
        std::cout << "[fleet] serial run (--threads 1): speedup "
                     "headline skipped\n";
    } else if (SweepRunner::hardwareThreads() < 2) {
        std::cout << "[fleet] single-core host: 8-replica speedup "
                     "expectation skipped (measured "
                  << TablePrinter::fmt(headline_speedup, 2) << "x)\n";
    } else {
        std::cout << "[fleet] 8-replica speedup at --threads "
                  << args.threads << ": "
                  << TablePrinter::fmt(headline_speedup, 2) << "x\n";
    }

    bench::writeJsonIfRequested(json, args);
    return 0;
}
