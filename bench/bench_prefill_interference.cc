/**
 * @file
 * Prefill/decode interference sweep: chunk size x arrival rate on
 * the xPU+PIM system under the event-driven engine. Prefill chunks
 * share the per-stage xPU timelines with decode FC work, so coarse
 * chunks stall decode tokens (large p95 token gap) while fine chunks
 * trade a little TTFT for a much smoother decode — the continuous
 * batching tradeoff. chunk = 0 rows charge prefill as an unchunked
 * scalar at admission for reference; by construction every chunking
 * charges the same total prefill seconds.
 *
 * Run with --smoke for a tiny sweep (CI keeps the harness alive).
 */

#include "bench_util.hh"

#include "system/prefill.hh"
#include "workload/arrival.hh"

using namespace pimphony;

namespace {

void
sweep(std::size_t n_requests, Tokens context, Tokens decode,
      const std::vector<double> &rates, const std::vector<Tokens> &chunks,
      const bench::BenchArgs &args)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());

    double scalar = prefillSeconds(model, context, cluster.xpu,
                                   cluster.prefillEngines());
    printBanner(std::cout,
                "Chunked prefill vs decode, xPU+PIM, LLM-7B-128K-GQA");
    std::cout << "context " << context << " tok, scalar prefill "
              << TablePrinter::fmt(scalar * 1e3, 1) << " ms/request\n";

    std::vector<Request> reqs;
    for (RequestId i = 0; i < n_requests; ++i)
        reqs.push_back({i, context, decode});

    bench::JsonRows json("bench_prefill_interference");
    TablePrinter t({"rate (req/s)", "chunk (tok)", "tok/s",
                    "ttft p95 (s)", "gap p95 (ms)", "prefill (s)"});

    // Flattened (rate, chunk) grid for the sweep runner: each cell
    // rebuilds its seeded arrival trace, so any thread count yields
    // the serial rows bit-identically, in submission order.
    struct Cell
    {
        double rate;
        Tokens chunk;
    };
    std::vector<Cell> cells;
    for (double rate : rates)
        for (Tokens chunk : chunks)
            cells.push_back({rate, chunk});

    auto outs = bench::runSweep(args, cells.size(), [&](std::size_t i) {
        const Cell &c = cells[i];
        auto timed = poissonArrivals(reqs, c.rate, 17);
        EngineOptions opts;
        opts.allocator = AllocatorKind::LazyChunk;
        opts.stepModel = StepModel::EventDriven;
        opts.prefillChunkTokens = c.chunk;
        opts.chargePrefill = c.chunk == 0;
        return ServingEngine(cluster, model, timed, opts).run();
    });

    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        const EngineResult &r = outs[i].value;
        t.addRow({TablePrinter::fmt(c.rate, 1),
                  c.chunk == 0 ? "scalar" : std::to_string(c.chunk),
                  TablePrinter::fmt(r.tokensPerSecond, 1),
                  TablePrinter::fmt(r.p95FirstTokenSeconds, 2),
                  TablePrinter::fmt(r.p95TokenGapSeconds * 1e3, 1),
                  TablePrinter::fmt(r.prefillSeconds, 2)});
        if (args.json) {
            json.beginRow();
            json.field("rate_rps", c.rate);
            json.field("chunk_tokens",
                       static_cast<std::uint64_t>(c.chunk));
            json.field("tokens_per_second", r.tokensPerSecond);
            json.field("ttft_p95_s", r.p95FirstTokenSeconds);
            json.field("gap_p95_s", r.p95TokenGapSeconds);
            json.field("prefill_s", r.prefillSeconds);
            json.field("sim_events", r.simEvents);
            json.field("threads", args.threads);
            json.field("config_wall_ms", outs[i].wallSeconds * 1e3);
        }
    }
    t.print(std::cout);
    if (args.json) {
        if (json.writeFile(args.jsonPath))
            std::cout << "wrote " << args.jsonPath << "\n";
        else
            std::cerr << "failed to write " << args.jsonPath << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "chunked prefill vs decode interference sweep");
    if (args.smoke)
        sweep(8, 30000, 16, {1.5}, {0, 30000, 1024}, args);
    else
        sweep(32, 30000, 64, {0.5, 1.0, 1.5},
              {0, 30000, 8192, 2048, 1024, 256}, args);
    return 0;
}
