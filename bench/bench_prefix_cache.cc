/**
 * @file
 * Prefix-cache sweep and the warm-vs-cold TTFT gate.
 *
 * Headline: one 12-request trace sharing a single declared
 * 12288-token prefix (chunk-aligned, so the whole prefix is
 * shareable), run cold (caching off) and warm (caching on). The
 * publisher pays the full prefill once; every follower reuses the
 * cached KV and prefills nothing. The bench ASSERTS that the warm
 * followers' average TTFT is at most half the cold average and
 * exits fatally otherwise — wired into CI the same way as the
 * simperf gate, so a regression that erodes prefix reuse fails the
 * build instead of drifting.
 *
 * Grid: WorkloadSpec-built cells over prefix share x session turns
 * x cache mode (off / LRU / tier-weighted eviction). Every
 * non-timing field is deterministic; the CI prefix gate diffs the
 * smoke --json rows (timing keys stripped) against the committed
 * BENCH_prefix_cache.json, which doubles as the caching-off golden.
 *
 * Run with --smoke for the CI-sized sweep; --json emits
 * machine-readable rows for the gates and nightly artifacts.
 */

#include "bench_util.hh"

#include "workload/spec.hh"

using namespace pimphony;

namespace {

EngineOptions
cacheOptions(bool enabled, PrefixEvictPolicy evict)
{
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::EventDriven;
    opts.prefillChunkTokens = 2048;
    opts.prefixCache.enabled = enabled;
    opts.prefixCache.evict = evict;
    return opts;
}

/**
 * The headline gate. Requests arrive far enough apart that the
 * publisher's chunked prefill completes (and the cache entry turns
 * ready) before the first follower admits, so the warm run's
 * followers skip the entire 12288-token prefill.
 */
void
headline(const ClusterConfig &cluster, const LlmConfig &model,
         bench::JsonRows &json, const bench::BenchArgs &args)
{
    constexpr std::size_t kRequests = 12;
    constexpr Tokens kPrefix = 12288;

    std::vector<TimedRequest> trace;
    trace.reserve(kRequests);
    for (std::size_t i = 0; i < kRequests; ++i) {
        Request r(static_cast<RequestId>(i), kPrefix, 32);
        r.prefixHash = 0xC0FFEE;
        r.prefixTokens = kPrefix;
        trace.push_back({r, static_cast<double>(i) * 6.0});
    }

    auto outs = bench::runSweep(args, 2, [&](std::size_t i) {
        ServingEngine engine(cluster, model, trace,
                             cacheOptions(i == 1, PrefixEvictPolicy::Lru));
        return engine.run();
    });
    const EngineResult &cold = outs[0].value;
    const EngineResult &warm = outs[1].value;

    auto follower_avg_ttft = [](const EngineResult &r) {
        double sum = 0.0;
        std::size_t n = 0;
        for (const auto &kv : r.firstTokenLatency)
            if (kv.first != 0) {
                sum += kv.second;
                ++n;
            }
        return n ? sum / static_cast<double>(n) : 0.0;
    };
    double cold_ttft = follower_avg_ttft(cold);
    double warm_ttft = follower_avg_ttft(warm);
    double ratio = cold_ttft > 0.0 ? warm_ttft / cold_ttft : 1.0;

    printBanner(std::cout, "Warm-vs-cold TTFT gate, 12288-token prefix");
    TablePrinter t({"mode", "ttft avg (s)", "prefill (s)", "saved (s)",
                    "hits", "done"});
    t.addRow({"cold", TablePrinter::fmt(cold_ttft, 3),
              TablePrinter::fmt(cold.prefillSeconds, 3), "-", "0",
              std::to_string(cold.completedRequests)});
    t.addRow({"warm", TablePrinter::fmt(warm_ttft, 3),
              TablePrinter::fmt(warm.prefillSeconds, 3),
              TablePrinter::fmt(warm.savedPrefillSeconds, 3),
              std::to_string(warm.prefixHits),
              std::to_string(warm.completedRequests)});
    t.print(std::cout);
    std::cout << "warm/cold TTFT ratio " << TablePrinter::fmt(ratio, 4)
              << " (gate: <= 0.5)\n";

    if (args.json) {
        json.beginRow();
        json.field("section", "headline");
        json.field("prefix_tokens", static_cast<std::uint64_t>(kPrefix));
        json.field("requests", static_cast<std::uint64_t>(kRequests));
        json.field("cold_ttft_avg_s", cold_ttft);
        json.field("warm_ttft_avg_s", warm_ttft);
        json.field("warm_cold_ratio", ratio);
        json.field("warm_hits", warm.prefixHits);
        json.field("warm_saved_prefill_s", warm.savedPrefillSeconds);
        json.field("cold_prefill_s", cold.prefillSeconds);
        json.field("warm_prefill_s", warm.prefillSeconds);
        json.field("threads", args.threads);
    }

    // The gate proper. A fleet-footed regression in admission or the
    // planner shows up here long before it shows up in throughput.
    if (warm.completedRequests != kRequests ||
        cold.completedRequests != kRequests)
        fatal("prefix gate: expected %zu completions, got warm %llu "
              "cold %llu",
              kRequests,
              static_cast<unsigned long long>(warm.completedRequests),
              static_cast<unsigned long long>(cold.completedRequests));
    if (warm.prefixHits != kRequests - 1)
        fatal("prefix gate: expected %zu warm hits, got %llu",
              kRequests - 1,
              static_cast<unsigned long long>(warm.prefixHits));
    if (!(warm_ttft <= 0.5 * cold_ttft))
        fatal("prefix gate FAILED: warm follower TTFT %.4fs > 0.5 x "
              "cold %.4fs (ratio %.4f)",
              warm_ttft, cold_ttft, ratio);
    std::cout << "prefix gate OK\n";
}

void
sweep(std::size_t n, const std::vector<double> &shares,
      const std::vector<unsigned> &turns_grid, bool full,
      const bench::BenchArgs &args)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    cluster.plan = ParallelPlan{cluster.nModules / 2, 2};
    applyOptions(cluster, PimphonyOptions::all());

    bench::JsonRows json("bench_prefix_cache");

    headline(cluster, model, json, args);

    struct Mode
    {
        bool on;
        PrefixEvictPolicy evict;
        const char *name;
    };
    std::vector<Mode> modes = {{false, PrefixEvictPolicy::Lru, "off"},
                               {true, PrefixEvictPolicy::Lru, "lru"}};
    if (full)
        modes.push_back(
            {true, PrefixEvictPolicy::TierWeighted, "tier"});

    struct Cell
    {
        double share;
        unsigned turns;
        Mode mode;
    };
    std::vector<Cell> cells;
    for (double share : shares)
        for (unsigned turns : turns_grid)
            for (const Mode &m : modes)
                cells.push_back({share, turns, m});

    printBanner(std::cout,
                "Prefix share x turns x cache mode, xPU+PIM, "
                "LLM-7B-128K-GQA");
    std::cout << n << " sessions, 1024-token pooled prefixes, "
              << "Poisson arrivals, PP=2\n";

    TablePrinter t({"share", "turns", "cache", "tok/s", "hit rate",
                    "cached (tok)", "saved (s)", "ttft avg (s)", "done",
                    "events"});

    auto outs = bench::runSweep(args, cells.size(), [&](std::size_t i) {
        const Cell &c = cells[i];
        WorkloadSpec spec;
        spec.count = n;
        spec.length.kind = LengthSourceKind::Pairs;
        spec.length.pairs = {{3000, 32}, {6000, 24}};
        spec.arrival.kind = ArrivalKind::Poisson;
        spec.arrival.ratePerSecond = 1.5;
        spec.prefix.share = c.share;
        spec.prefix.pool = 2;
        spec.prefix.tokens = 1024;
        spec.session.turns = c.turns;
        spec.session.thinkMeanSeconds = 0.5;
        spec.session.carryHistory = true;
        auto built = buildWorkload(spec, 47);

        ServingEngine engine(cluster, model, built.initial,
                             cacheOptions(c.mode.on, c.mode.evict));
        engine.declareSessionTurns(built.sessions);
        return engine.run();
    });

    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        const EngineResult &r = outs[i].value;
        double ttft_sum = 0.0;
        for (const auto &kv : r.firstTokenLatency)
            ttft_sum += kv.second;
        double ttft_avg = r.firstTokenLatency.empty()
            ? 0.0
            : ttft_sum /
                static_cast<double>(r.firstTokenLatency.size());
        t.addRow({TablePrinter::fmt(c.share, 1),
                  std::to_string(c.turns), c.mode.name,
                  TablePrinter::fmt(r.tokensPerSecond, 1),
                  TablePrinter::fmt(r.prefixHitRate, 2),
                  std::to_string(r.prefixCachedTokens),
                  TablePrinter::fmt(r.savedPrefillSeconds, 3),
                  TablePrinter::fmt(ttft_avg, 3),
                  std::to_string(r.completedRequests),
                  std::to_string(r.simEvents)});
        if (args.json) {
            json.beginRow();
            json.field("section", "sweep");
            json.field("prefix_share", c.share);
            json.field("turns", static_cast<std::uint64_t>(c.turns));
            json.field("cache", c.mode.name);
            json.field("tokens_per_second", r.tokensPerSecond);
            json.field("prefix_hits", r.prefixHits);
            json.field("prefix_misses", r.prefixMisses);
            json.field("prefix_evictions", r.prefixEvictions);
            json.field("prefix_hit_rate", r.prefixHitRate);
            json.field("prefix_cached_tokens", r.prefixCachedTokens);
            json.field("saved_prefill_s", r.savedPrefillSeconds);
            json.field("prefill_s", r.prefillSeconds);
            json.field("ttft_avg_s", ttft_avg);
            json.field("ttft_p95_s", r.p95FirstTokenSeconds);
            json.field("shared_kv_peak_bytes", r.sharedKvPeakBytes);
            json.field("completed", r.completedRequests);
            json.field("rejected", r.rejectedRequests);
            json.field("sim_events", r.simEvents);
            json.field("threads", args.threads);
            json.field("config_wall_ms", outs[i].wallSeconds * 1e3);
        }
    }
    t.print(std::cout);
    bench::writeJsonIfRequested(json, args);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv,
        "prefix-cache sweep and the warm-vs-cold TTFT gate");
    if (args.smoke)
        sweep(8, {0.5}, {1, 3}, false, args);
    else
        sweep(24, {0.0, 0.5, 0.9}, {1, 3}, true, args);
    return 0;
}
