/**
 * @file
 * Co-scheduling policy sweep: policy x arrival rate x context length
 * on the xPU+PIM system under the event-driven engine with chunked
 * prefill. Each stage's xPU timeline is shared between prefill
 * chunks and decode FC shares; the policy decides who goes first:
 *
 *   fifo            strict submission order (the baseline)
 *   decode-priority decode FC overtakes queued chunks
 *   chunk-preempt   + in-flight chunks preempted at a quantum
 *   slo-admission   FIFO timeline, prefills deferred while the
 *                   observed p95 token gap exceeds a target
 *
 * The interesting columns: gap p95 (the decode SLO the policies
 * protect), ttft p95 (what SLO protection costs), and max FC wait
 * (the stall bound chunk-preempt enforces). Prefill charge is
 * conserved by every policy — "prefill (s)" must match across the
 * policy rows of one (rate, ctx) cell.
 *
 * Run with --smoke for a tiny sweep (CI keeps the harness alive and
 * archives the output for perf-trajectory tracking).
 */

#include "bench_util.hh"

#include "system/prefill.hh"
#include "system/sched_policy.hh"
#include "workload/arrival.hh"

using namespace pimphony;

namespace {

void
sweep(std::size_t n_requests, Tokens decode, Tokens chunk,
      const std::vector<double> &rates, const std::vector<Tokens> &contexts,
      const bench::BenchArgs &args)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());

    printBanner(std::cout,
                "xPU co-scheduling policies, xPU+PIM, LLM-7B-128K-GQA");
    std::cout << n_requests << " requests, " << decode
              << " decode tokens, chunk " << chunk
              << " tok, bursty (gamma cv=3) arrivals\n";

    bench::JsonRows json("bench_sched_policies");
    TablePrinter t({"ctx (tok)", "rate (req/s)", "policy", "tok/s",
                    "ttft p95 (s)", "gap p95 (ms)", "fc wait max (ms)",
                    "slices", "defers", "prefill (s)"});

    // Flatten the (ctx, rate, policy) grid into independent sweep
    // cells for the runner; every cell rebuilds its request list and
    // seeded arrivals, so results are bit-identical at any thread
    // count and rows come back in submission order.
    struct Cell
    {
        Tokens ctx;
        double rate;
        SchedPolicyKind kind;
    };
    std::vector<Cell> cells;
    for (Tokens ctx : contexts)
        for (double rate : rates)
            for (SchedPolicyKind kind : allSchedPolicies())
                cells.push_back({ctx, rate, kind});

    auto outs = bench::runSweep(args, cells.size(), [&](std::size_t i) {
        const Cell &c = cells[i];
        std::vector<Request> reqs;
        for (RequestId r = 0; r < n_requests; ++r)
            reqs.push_back({r, c.ctx, decode});
        auto timed = gammaArrivals(reqs, c.rate, 3.0, 17);
        EngineOptions opts;
        opts.allocator = AllocatorKind::LazyChunk;
        opts.stepModel = StepModel::EventDriven;
        opts.prefillChunkTokens = chunk;
        opts.sched.kind = c.kind;
        return ServingEngine(cluster, model, timed, opts).run();
    });

    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        const EngineResult &r = outs[i].value;
        t.addRow({std::to_string(c.ctx), TablePrinter::fmt(c.rate, 1),
                  schedPolicyName(c.kind),
                  TablePrinter::fmt(r.tokensPerSecond, 1),
                  TablePrinter::fmt(r.p95FirstTokenSeconds, 2),
                  TablePrinter::fmt(r.p95TokenGapSeconds * 1e3, 1),
                  TablePrinter::fmt(
                      r.maxDecodeXpuWaitSeconds * 1e3, 1),
                  std::to_string(r.chunkSlices),
                  std::to_string(r.sloDeferrals),
                  TablePrinter::fmt(r.prefillSeconds, 2)});
        if (args.json) {
            json.beginRow();
            json.field("context_tokens",
                       static_cast<std::uint64_t>(c.ctx));
            json.field("rate_rps", c.rate);
            json.field("policy", schedPolicyName(c.kind));
            json.field("tokens_per_second", r.tokensPerSecond);
            json.field("ttft_p95_s", r.p95FirstTokenSeconds);
            json.field("gap_p95_s", r.p95TokenGapSeconds);
            json.field("max_decode_xpu_wait_s",
                       r.maxDecodeXpuWaitSeconds);
            json.field("chunk_slices", r.chunkSlices);
            json.field("slo_deferrals", r.sloDeferrals);
            json.field("prefill_s", r.prefillSeconds);
            json.field("sim_events", r.simEvents);
            json.field("threads", args.threads);
            json.field("config_wall_ms", outs[i].wallSeconds * 1e3);
        }
    }
    t.print(std::cout);
    if (args.json) {
        if (json.writeFile(args.jsonPath))
            std::cout << "wrote " << args.jsonPath << "\n";
        else
            std::cerr << "failed to write " << args.jsonPath << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv,
        "co-scheduling policy sweep (policy x rate x context)");
    if (args.smoke)
        sweep(8, 16, 2048, {1.5}, {30000}, args);
    else
        sweep(24, 48, 2048, {0.8, 1.2, 1.6}, {8000, 30000, 60000}, args);
    return 0;
}
