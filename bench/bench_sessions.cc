/**
 * @file
 * Multi-turn session sweep: closed-loop chat sessions under a
 * diurnal (piecewise-constant rate) arrival curve on the xPU+PIM
 * system, swept over scheduling policy x prefill chunk size.
 *
 * The workload is built ONCE per invocation through WorkloadSpec —
 * alternating interactive/batch session classes, Table II (QMSum)
 * lengths with history carried across turns, turn 0 stamped by a
 * PiecewiseRateCurve and later turns released closed-loop
 * (completion + think time) by the engine's session machinery — so
 * a single --save-trace file covers every grid cell, and a --trace
 * replay of that file reproduces each cell's rows bit for bit (the
 * CI replay-identity gate diffs the timing-stripped JSON).
 *
 * Run with --smoke for a tiny sweep (CI keeps the harness alive);
 * --json emits machine-readable rows for the nightly artifacts.
 */

#include "bench_util.hh"

#include "system/sched_policy.hh"
#include "workload/replay.hh"
#include "workload/spec.hh"

using namespace pimphony;

namespace {

void
sweep(std::size_t n_sessions, unsigned turns, Tokens decode,
      const std::vector<Tokens> &chunks, const bench::BenchArgs &args)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    cluster.plan = ParallelPlan{cluster.nModules / 2, 2};
    applyOptions(cluster, PimphonyOptions::all());

    RequestClass interactive;
    interactive.tier = 0;
    interactive.tenant = 0;
    interactive.gapSloSeconds = 0.05;
    RequestClass batch;
    batch.tier = 1;
    batch.tenant = 1;
    batch.gapSloSeconds = 0.5;

    BuiltWorkload built;
    if (!args.tracePath.empty()) {
        built = loadWorkload(args.tracePath);
    } else {
        WorkloadSpec spec;
        spec.count = n_sessions;
        spec.length.kind = LengthSourceKind::TableTask;
        spec.length.task = TraceTask::QMSum;
        spec.length.decodeTokens = decode;
        spec.arrival.kind = ArrivalKind::RateCurve;
        // Default diurnal profile: a quiet-busy-peak-shoulder cycle.
        // --rate-curve=R1,R2,... replaces the shape (req/s per 5 s
        // segment).
        std::vector<double> rates = args.rateCurve.empty()
            ? std::vector<double>{1.5, 0.5, 2.5, 1.0}
            : args.rateCurve;
        spec.arrival.curve = RateCurve::fromRates(rates, 5.0);
        spec.classes = {interactive, batch};
        spec.session.turns = turns;
        spec.session.thinkMeanSeconds = 0.5;
        spec.session.carryHistory = true;
        built = buildWorkload(spec, 33);
        if (!args.saveTracePath.empty()) {
            saveWorkload(args.saveTracePath, built);
            std::cout << "saved workload trace to "
                      << args.saveTracePath << "\n";
        }
    }

    // Turn index per request id (initial + successors), for the
    // turn-0 vs final-turn TTFT split below. Derived from the built
    // workload so a --trace replay reports identically.
    std::unordered_map<RequestId, unsigned> turn_of;
    unsigned last_turn = 0;
    for (const auto &tr : built.initial) {
        turn_of[tr.request.id] = tr.request.turn;
        last_turn = std::max(last_turn, tr.request.turn);
    }
    for (const auto &kv : built.sessions) {
        turn_of[kv.second.request.id] = kv.second.request.turn;
        last_turn = std::max(last_turn, kv.second.request.turn);
    }
    std::size_t session_count = built.initial.size();

    printBanner(std::cout,
                "Multi-turn sessions, xPU+PIM, LLM-7B-128K-GQA");
    std::cout << session_count << " sessions, " << (last_turn + 1)
              << " turns, " << decode << " decode tokens/turn, "
              << (args.tracePath.empty() ? "diurnal rate-curve arrivals"
                                         : "replayed trace arrivals")
              << ", closed-loop turn release, PP=2\n";

    bench::JsonRows json("bench_sessions");
    TablePrinter t({"policy", "chunk (tok)", "tok/s",
                    "t0 ttft avg (s)", "tN ttft avg (s)",
                    "gap p95 (ms)", "done", "rej", "events"});

    struct Cell
    {
        SchedPolicyKind kind;
        Tokens chunk;
    };
    std::vector<Cell> cells;
    for (SchedPolicyKind kind :
         {SchedPolicyKind::Fifo, SchedPolicyKind::TierPriority})
        for (Tokens chunk : chunks)
            cells.push_back({kind, chunk});

    auto outs = bench::runSweep(args, cells.size(), [&](std::size_t i) {
        const Cell &c = cells[i];
        EngineOptions opts;
        opts.allocator = AllocatorKind::LazyChunk;
        opts.stepModel = StepModel::EventDriven;
        opts.prefillChunkTokens = c.chunk;
        opts.sched.kind = c.kind;
        ServingEngine engine(cluster, model, built.initial, opts);
        engine.declareSessionTurns(built.sessions);
        return engine.run();
    });

    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        const EngineResult &r = outs[i].value;
        double t0_sum = 0.0, tn_sum = 0.0;
        std::size_t t0_n = 0, tn_n = 0;
        for (const auto &kv : r.firstTokenLatency) {
            auto it = turn_of.find(kv.first);
            if (it == turn_of.end())
                continue;
            if (it->second == 0) {
                t0_sum += kv.second;
                ++t0_n;
            }
            if (it->second == last_turn) {
                tn_sum += kv.second;
                ++tn_n;
            }
        }
        double t0_avg = t0_n ? t0_sum / static_cast<double>(t0_n) : 0.0;
        double tn_avg = tn_n ? tn_sum / static_cast<double>(tn_n) : 0.0;
        t.addRow({schedPolicyName(c.kind), std::to_string(c.chunk),
                  TablePrinter::fmt(r.tokensPerSecond, 1),
                  TablePrinter::fmt(t0_avg, 2),
                  TablePrinter::fmt(tn_avg, 2),
                  TablePrinter::fmt(r.p95TokenGapSeconds * 1e3, 1),
                  std::to_string(r.completedRequests),
                  std::to_string(r.rejectedRequests),
                  std::to_string(r.simEvents)});
        if (args.json) {
            json.beginRow();
            json.field("policy", schedPolicyName(c.kind));
            json.field("chunk_tokens",
                       static_cast<std::uint64_t>(c.chunk));
            json.field("sessions",
                       static_cast<std::uint64_t>(session_count));
            json.field("turns",
                       static_cast<std::uint64_t>(last_turn + 1));
            json.field("tokens_per_second", r.tokensPerSecond);
            json.field("ttft_turn0_avg_s", t0_avg);
            json.field("ttft_last_turn_avg_s", tn_avg);
            json.field("ttft_p95_s", r.p95FirstTokenSeconds);
            json.field("gap_p95_s", r.p95TokenGapSeconds);
            json.field("completed", r.completedRequests);
            json.field("rejected", r.rejectedRequests);
            json.field("sim_events", r.simEvents);
            json.field("threads", args.threads);
            json.field("config_wall_ms", outs[i].wallSeconds * 1e3);
        }
    }
    t.print(std::cout);
    bench::writeJsonIfRequested(json, args);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv,
        "multi-turn session sweep (closed-loop turns, diurnal arrivals)",
        bench::kTraceFlags | bench::kRateCurveFlag);
    if (args.smoke)
        sweep(6, 2, 16, {2048}, args);
    else
        sweep(24, 3, 48, {2048, 8192}, args);
    return 0;
}
