/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: command
 * scheduling throughput per controller, kernel generation, and the
 * kernel cache. These guard the simulator's own performance, which
 * bounds how large a sweep the figure harnesses can afford.
 */

#include <benchmark/benchmark.h>

#include "kernels/kernel_sim.hh"

using namespace pimphony;

namespace {

AttentionSpec
benchSpec(Tokens tokens)
{
    AttentionSpec spec;
    spec.tokens = tokens;
    spec.headDim = 128;
    spec.gqaGroup = 4;
    spec.rowReuse = true;
    return spec;
}

void
BM_BuildQktStream(benchmark::State &state)
{
    auto params = AimTimingParams::aimxWithObuf(16);
    auto spec = benchSpec(static_cast<Tokens>(state.range(0)));
    for (auto _ : state) {
        auto s = buildQktStream(spec, params);
        benchmark::DoNotOptimize(s.size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildQktStream)->Arg(4096)->Arg(32768);

void
BM_ScheduleStatic(benchmark::State &state)
{
    auto params = AimTimingParams::aimx();
    auto stream = buildQktStream(benchSpec(
        static_cast<Tokens>(state.range(0))), params);
    auto sched = makeScheduler(SchedulerKind::Static, params);
    for (auto _ : state) {
        auto r = sched->schedule(stream);
        benchmark::DoNotOptimize(r.makespan);
    }
    state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_ScheduleStatic)->Arg(4096)->Arg(32768);

void
BM_ScheduleDcs(benchmark::State &state)
{
    auto params = AimTimingParams::aimxWithObuf(16);
    auto stream = buildQktStream(benchSpec(
        static_cast<Tokens>(state.range(0))), params);
    auto sched = makeScheduler(SchedulerKind::Dcs, params);
    for (auto _ : state) {
        auto r = sched->schedule(stream);
        benchmark::DoNotOptimize(r.makespan);
    }
    state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_ScheduleDcs)->Arg(4096)->Arg(32768);

void
BM_SchedulePingPong(benchmark::State &state)
{
    auto params = AimTimingParams::aimxWithObuf(16);
    auto stream = buildQktStream(benchSpec(
        static_cast<Tokens>(state.range(0))), params, true);
    auto sched = makeScheduler(SchedulerKind::PingPong, params);
    for (auto _ : state) {
        auto r = sched->schedule(stream);
        benchmark::DoNotOptimize(r.makespan);
    }
    state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_SchedulePingPong)->Arg(4096);

void
BM_KernelCacheHit(benchmark::State &state)
{
    KernelCache cache(AimTimingParams::aimxWithObuf(16));
    auto req = KernelRequest::makeQkt(benchSpec(16384),
                                      SchedulerKind::Dcs);
    cache.get(req); // warm
    for (auto _ : state) {
        const auto &r = cache.get(req);
        benchmark::DoNotOptimize(r.makespan);
    }
}
BENCHMARK(BM_KernelCacheHit);

} // namespace

BENCHMARK_MAIN();
