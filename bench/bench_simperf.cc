/**
 * @file
 * Benchmarks of the simulator itself — the numbers that bound how
 * large a sweep the figure harnesses can afford.
 *
 * Two sections:
 *
 * 1. Serving-scale (default): wall-clock the full event-driven
 *    ServingEngine across PP x cohorts x policy configurations and
 *    report events/second (EngineResult::simEvents / wall time).
 *    This is the end-to-end trajectory metric CI tracks: the PR 4
 *    hot-path overhaul (allocation-free event core, memoized device
 *    models, streaming SLO percentile) is asserted >= 3x the PR 3
 *    engine on the pp4.c64.fifo row.
 *
 * 2. Microbenchmarks (--micro): google-benchmark kernels for command
 *    scheduling, stream generation, and the kernel cache.
 *
 * Perf notes (what to expect from the hot path):
 *  - EventQueue schedule/dispatch: O(log E) heap sift, no per-event
 *    heap allocation (sim::SimFn small-buffer callbacks, counted
 *    fallback asserted zero in tests/sim_core_test.cc).
 *  - Device submit/complete: O(1) amortized (in-flight ring).
 *  - StagePipeline chain/sequence: pooled state, O(1) per stage
 *    hand-off.
 *  - SLO gate: O(log W) per decode gap (WindowedQuantile), O(1) per
 *    admission check.
 *  - finalizeResult: O(n) per percentile via nth_element.
 *
 * Reading BENCH_simperf.json: rows[] carry the per-config results.
 * Deterministic fields (sim_events, generated_tokens,
 * tokens_per_second, gap_p95_s) must be bit-stable run to run — the
 * CI determinism job diffs them across two runs (and a --threads 4
 * run against the serial rows). Timing fields (wall_ms,
 * events_per_sec) vary with the machine; the CI perf gate compares
 * events_per_sec against the committed baseline BENCH_simperf.json
 * at the repo root to keep the perf trajectory visible per commit.
 *
 * Interpretation note for the sweep runner: wall_ms and
 * events_per_sec are *per-config* timings measured inside the cell —
 * the single-run hot-path numbers the PR 4 baseline tracks — so they
 * are unaffected by how many configs the runner executes at once,
 * except for host core contention when --threads > 1 oversubscribes
 * the machine. The committed baseline and the CI perf gate therefore
 * use serial (--threads 1) runs; threads and config_wall_ms record
 * each row's provenance.
 *
 * usage: bench_simperf [--smoke] [--json[=PATH]] [--threads N] |
 * --micro [gbench flags]
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "kernels/kernel_sim.hh"
#include "system/engine.hh"
#include "system/fleet.hh"
#include "system/sched_policy.hh"
#include "workload/arrival.hh"

using namespace pimphony;

namespace {

// --- Serving-scale section. ------------------------------------------

struct ServingConfig
{
    unsigned pp;
    unsigned cohorts; ///< target cohort count (requests = 4x)
    SchedPolicyKind policy;
};

std::string
configName(const ServingConfig &cfg)
{
    return "pp" + std::to_string(cfg.pp) + ".c" +
           std::to_string(cfg.cohorts) + "." +
           schedPolicyName(cfg.policy);
}

/** One timed engine run; returns (result, best wall seconds). */
EngineResult
runServingConfig(const ServingConfig &cfg, int reps, double &best_wall)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    cluster.plan = ParallelPlan{cluster.nModules / cfg.pp, cfg.pp};
    applyOptions(cluster, PimphonyOptions::all());

    // Bimodal contexts (1/4 long) with bursty open-loop arrivals:
    // the serving shape the policy sweeps use, at a scale where the
    // event core's own cost is visible.
    std::size_t n = static_cast<std::size_t>(cfg.cohorts) * 4;
    std::vector<Request> reqs;
    for (RequestId i = 0; i < n; ++i)
        reqs.push_back({i, (i % 4 == 0) ? Tokens(30000) : Tokens(2000),
                        48});
    auto timed = poissonArrivals(reqs, 8.0, 17);

    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::EventDriven;
    opts.prefillChunkTokens = 2048;
    opts.sched.kind = cfg.policy;

    // One warm-up run (first-touch kernel simulation, pool growth),
    // then the best of @p reps timed runs: the minimum is the most
    // reproducible wall estimator on a noisy host.
    (void)ServingEngine(cluster, model, timed, opts).run();
    EngineResult r;
    best_wall = 0.0;
    for (int i = 0; i < reps; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        r = ServingEngine(cluster, model, timed, opts).run();
        auto t1 = std::chrono::steady_clock::now();
        double wall = std::chrono::duration<double>(t1 - t0).count();
        if (best_wall == 0.0 || wall < best_wall)
            best_wall = wall;
    }
    return r;
}

// --- Fleet rows (multi-replica windowed advance). --------------------

struct FleetRowConfig
{
    unsigned replicas;
    RoutePolicy policy;
};

std::string
fleetConfigName(const FleetRowConfig &cfg)
{
    return "fleet.r" + std::to_string(cfg.replicas) +
           (cfg.policy == RoutePolicy::RoundRobin ? ".rr"
                                                  : ".least-loaded");
}

/**
 * One timed fleet run. The fleet's internal window advance is pinned
 * serial (FleetOptions::threads = 1) so the row tracks the event
 * core + window protocol cost itself, comparable across hosts the
 * way the engine rows are; bench_fleet owns the scaling story.
 */
EngineResult
runFleetConfig(const FleetRowConfig &cfg, int reps, double &best_wall)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    cluster.plan = ParallelPlan{cluster.nModules / 4, 4};
    applyOptions(cluster, PimphonyOptions::all());

    std::size_t n = static_cast<std::size_t>(cfg.replicas) * 32;
    std::vector<Request> reqs;
    for (RequestId i = 0; i < n; ++i)
        reqs.push_back({i, (i % 4 == 0) ? Tokens(30000) : Tokens(2000),
                        32});
    auto trace = poissonArrivals(reqs, 24.0, 17);

    FleetOptions fopts;
    fopts.replicas = cfg.replicas;
    fopts.policy = cfg.policy;
    fopts.dispatchLatencySeconds = 0.002;
    fopts.threads = 1;
    fopts.engine.allocator = AllocatorKind::LazyChunk;
    fopts.engine.stepModel = StepModel::EventDriven;
    fopts.engine.prefillChunkTokens = 2048;

    (void)FleetEngine(cluster, model, trace, fopts).run();
    EngineResult r;
    best_wall = 0.0;
    for (int i = 0; i < reps; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        r = FleetEngine(cluster, model, trace, fopts).run().aggregate;
        auto t1 = std::chrono::steady_clock::now();
        double wall = std::chrono::duration<double>(t1 - t0).count();
        if (best_wall == 0.0 || wall < best_wall)
            best_wall = wall;
    }
    return r;
}

void
servingScale(const bench::BenchArgs &args)
{
    std::vector<ServingConfig> configs;
    if (args.smoke) {
        configs = {
            {1, 16, SchedPolicyKind::Fifo},
            {4, 64, SchedPolicyKind::Fifo},
            {4, 64, SchedPolicyKind::SloAdmission},
        };
    } else {
        for (unsigned pp : {1u, 2u, 4u})
            for (unsigned cohorts : {16u, 64u})
                for (SchedPolicyKind policy :
                     {SchedPolicyKind::Fifo,
                      SchedPolicyKind::SloAdmission})
                    configs.push_back({pp, cohorts, policy});
    }
    int reps = args.smoke ? 3 : 5;

    printBanner(std::cout,
                "Event-core serving throughput (events/sec), xPU+PIM, "
                "LLM-7B-128K-GQA");
    bench::JsonRows json("bench_simperf");
    TablePrinter t({"config", "requests", "events", "tokens", "wall (ms)",
                    "events/s", "sim tok/s", "gap p95 (ms)"});

    // Each config is an independent engine sweep cell; the runner
    // executes them concurrently (--threads) and hands results back
    // in submission order, so rows below are emitted exactly as the
    // serial loop would.
    struct ConfigRun
    {
        EngineResult result;
        double bestWall = 0.0;
    };
    auto cells =
        bench::runSweep(args, configs.size(), [&](std::size_t i) {
            ConfigRun run;
            run.result =
                runServingConfig(configs[i], reps, run.bestWall);
            return run;
        });

    for (std::size_t i = 0; i < configs.size(); ++i) {
        const auto &cfg = configs[i];
        const EngineResult &r = cells[i].value.result;
        double wall = cells[i].value.bestWall;
        double eps = wall > 0.0
                         ? static_cast<double>(r.simEvents) / wall
                         : 0.0;
        t.addRow({configName(cfg),
                  std::to_string(static_cast<std::size_t>(cfg.cohorts) *
                                 4),
                  std::to_string(r.simEvents),
                  std::to_string(r.generatedTokens),
                  TablePrinter::fmt(wall * 1e3, 2),
                  TablePrinter::fmt(eps, 0),
                  TablePrinter::fmt(r.tokensPerSecond, 1),
                  TablePrinter::fmt(r.p95TokenGapSeconds * 1e3, 1)});
        if (args.json) {
            json.beginRow();
            json.field("config", configName(cfg));
            json.field("pp", cfg.pp);
            json.field("cohorts", cfg.cohorts);
            json.field("policy", schedPolicyName(cfg.policy));
            json.field("requests", static_cast<std::uint64_t>(
                                       static_cast<std::size_t>(
                                           cfg.cohorts) *
                                       4));
            // Deterministic fields (diffed by the CI determinism
            // job)...
            json.field("sim_events", r.simEvents);
            json.field("generated_tokens", r.generatedTokens);
            json.field("tokens_per_second", r.tokensPerSecond);
            json.field("gap_p95_s", r.p95TokenGapSeconds);
            // ...and host-dependent timing fields (excluded there,
            // compared warn-only against the committed baseline).
            json.field("wall_ms", wall * 1e3);
            json.field("events_per_sec", eps);
            json.field("threads", args.threads);
            json.field("config_wall_ms",
                       cells[i].wallSeconds * 1e3);
        }
    }
    // Fleet rows ride the same sweep machinery: multi-replica
    // windowed advance, serial inside (see runFleetConfig), so the
    // perf gate tracks the window protocol's own cost per commit.
    std::vector<FleetRowConfig> fleet_configs = {
        {4, RoutePolicy::RoundRobin},
        {8, RoutePolicy::LeastLoaded},
    };
    auto fleet_cells = bench::runSweep(
        args, fleet_configs.size(), [&](std::size_t i) {
            ConfigRun run;
            run.result =
                runFleetConfig(fleet_configs[i], reps, run.bestWall);
            return run;
        });
    for (std::size_t i = 0; i < fleet_configs.size(); ++i) {
        const auto &cfg = fleet_configs[i];
        const EngineResult &r = fleet_cells[i].value.result;
        double wall = fleet_cells[i].value.bestWall;
        double eps = wall > 0.0
                         ? static_cast<double>(r.simEvents) / wall
                         : 0.0;
        t.addRow({fleetConfigName(cfg),
                  std::to_string(static_cast<std::size_t>(cfg.replicas) *
                                 32),
                  std::to_string(r.simEvents),
                  std::to_string(r.generatedTokens),
                  TablePrinter::fmt(wall * 1e3, 2),
                  TablePrinter::fmt(eps, 0),
                  TablePrinter::fmt(r.tokensPerSecond, 1),
                  TablePrinter::fmt(r.p95TokenGapSeconds * 1e3, 1)});
        if (args.json) {
            json.beginRow();
            json.field("config", fleetConfigName(cfg));
            json.field("replicas", cfg.replicas);
            json.field("policy", routePolicyName(cfg.policy));
            json.field("requests", static_cast<std::uint64_t>(
                                       static_cast<std::size_t>(
                                           cfg.replicas) *
                                       32));
            json.field("sim_events", r.simEvents);
            json.field("generated_tokens", r.generatedTokens);
            json.field("tokens_per_second", r.tokensPerSecond);
            json.field("gap_p95_s", r.p95TokenGapSeconds);
            json.field("wall_ms", wall * 1e3);
            json.field("events_per_sec", eps);
            json.field("threads", args.threads);
            json.field("config_wall_ms",
                       fleet_cells[i].wallSeconds * 1e3);
        }
    }

    t.print(std::cout);
    if (args.json) {
        if (json.writeFile(args.jsonPath))
            std::cout << "wrote " << args.jsonPath << "\n";
        else
            std::cerr << "failed to write " << args.jsonPath << "\n";
    }
}

// --- Microbenchmark section (--micro). -------------------------------

AttentionSpec
benchSpec(Tokens tokens)
{
    AttentionSpec spec;
    spec.tokens = tokens;
    spec.headDim = 128;
    spec.gqaGroup = 4;
    spec.rowReuse = true;
    return spec;
}

void
BM_BuildQktStream(benchmark::State &state)
{
    auto params = AimTimingParams::aimxWithObuf(16);
    auto spec = benchSpec(static_cast<Tokens>(state.range(0)));
    for (auto _ : state) {
        auto s = buildQktStream(spec, params);
        benchmark::DoNotOptimize(s.size());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildQktStream)->Arg(4096)->Arg(32768);

void
BM_ScheduleStatic(benchmark::State &state)
{
    auto params = AimTimingParams::aimx();
    auto stream = buildQktStream(benchSpec(
        static_cast<Tokens>(state.range(0))), params);
    auto sched = makeScheduler(SchedulerKind::Static, params);
    for (auto _ : state) {
        auto r = sched->schedule(stream);
        benchmark::DoNotOptimize(r.makespan);
    }
    state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_ScheduleStatic)->Arg(4096)->Arg(32768);

void
BM_ScheduleDcs(benchmark::State &state)
{
    auto params = AimTimingParams::aimxWithObuf(16);
    auto stream = buildQktStream(benchSpec(
        static_cast<Tokens>(state.range(0))), params);
    auto sched = makeScheduler(SchedulerKind::Dcs, params);
    for (auto _ : state) {
        auto r = sched->schedule(stream);
        benchmark::DoNotOptimize(r.makespan);
    }
    state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_ScheduleDcs)->Arg(4096)->Arg(32768);

void
BM_SchedulePingPong(benchmark::State &state)
{
    auto params = AimTimingParams::aimxWithObuf(16);
    auto stream = buildQktStream(benchSpec(
        static_cast<Tokens>(state.range(0))), params, true);
    auto sched = makeScheduler(SchedulerKind::PingPong, params);
    for (auto _ : state) {
        auto r = sched->schedule(stream);
        benchmark::DoNotOptimize(r.makespan);
    }
    state.SetItemsProcessed(state.iterations() * stream.size());
}
BENCHMARK(BM_SchedulePingPong)->Arg(4096);

void
BM_KernelCacheHit(benchmark::State &state)
{
    KernelCache cache(AimTimingParams::aimxWithObuf(16));
    auto req = KernelRequest::makeQkt(benchSpec(16384),
                                      SchedulerKind::Dcs);
    cache.get(req); // warm
    for (auto _ : state) {
        const auto &r = cache.get(req);
        benchmark::DoNotOptimize(r.makespan);
    }
}
BENCHMARK(BM_KernelCacheHit);

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;

    // --micro hands the remaining argv to google-benchmark; the
    // default path is the serving-scale section with the shared
    // --smoke/--json handling.
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--micro") {
            // Drop "--micro" and let gbench parse the rest.
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            benchmark::Initialize(&argc, argv);
            if (benchmark::ReportUnrecognizedArguments(argc, argv))
                return 1;
            benchmark::RunSpecifiedBenchmarks();
            return 0;
        }
    }

    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv,
        "simulator performance: serving-scale events/sec (default) or "
        "--micro kernel benchmarks");
    servingScale(args);
    return 0;
}
