/**
 * @file
 * Request-class sweep: tier mix x arrival rate x context length on
 * the xPU+PIM system under the event-driven engine with chunked
 * prefill and bursty (on/off) arrivals.
 *
 * Each cell runs the same two-tier trace (tier 0 interactive, tier 1
 * batch; tenants tagged by tier so occupancy is reported) under the
 * single-class FIFO baseline and under tier-priority arbitration
 * (strict bands + decode-side preemption). The interesting columns:
 * per-tier gap p95 — tier-priority should pull tier 0's tail below
 * the mixed FIFO tail at tier 1's expense — plus tier-inversion
 * counts and decode preemption splits (the mechanism's receipts).
 *
 * Run with --smoke for a tiny sweep (CI keeps the harness alive);
 * --json emits machine-readable rows for the nightly artifacts.
 */

#include "bench_util.hh"

#include "system/sched_policy.hh"
#include "workload/arrival.hh"
#include "workload/arrival_process.hh"
#include "workload/request_class.hh"

using namespace pimphony;

namespace {

void
sweep(std::size_t n_requests, Tokens decode, Tokens chunk,
      const std::vector<double> &tier0_fracs,
      const std::vector<double> &rates,
      const std::vector<Tokens> &contexts, const bench::BenchArgs &args)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    cluster.plan = ParallelPlan{cluster.nModules / 2, 2};
    applyOptions(cluster, PimphonyOptions::all());

    printBanner(std::cout,
                "Per-request SLO classes, xPU+PIM, LLM-7B-128K-GQA");
    std::cout << n_requests << " requests, " << decode
              << " decode tokens, chunk " << chunk << " tok, "
              << (args.rateCurve.empty()
                      ? "on/off burst arrivals"
                      : "diurnal rate-curve arrivals")
              << ", PP=2\n";

    // --rate-curve: the profile is normalized to mean 1 and scaled
    // by each cell's rate, so the grid's rate axis keeps its meaning
    // (the long-run average) while the shape replays the profile.
    RateCurve profile;
    if (!args.rateCurve.empty()) {
        profile = RateCurve::fromRates(args.rateCurve, 30.0);
        double mean = profile.meanRate();
        if (mean <= 0.0)
            fatal("--rate-curve needs a positive mean rate");
        for (auto &seg : profile.segments)
            seg.ratePerSecond /= mean;
    }

    RequestClass interactive;
    interactive.tier = 0;
    interactive.tenant = 0;
    interactive.gapSloSeconds = 0.05;
    RequestClass batch;
    batch.tier = 1;
    batch.tenant = 1;
    batch.gapSloSeconds = 0.5;

    bench::JsonRows json("bench_slo_classes");
    TablePrinter t({"ctx (tok)", "rate (req/s)", "tier0 %", "policy",
                    "tok/s", "t0 gap p95 (ms)", "t1 gap p95 (ms)",
                    "t0 ttft p95 (s)", "inversions", "dec slices"});
    // Flattened (ctx, rate, frac, policy) grid for the sweep runner:
    // every cell rebuilds its tiered request list and seeded on/off
    // arrivals, keeping an N-thread run bit-identical to serial with
    // rows in submission order.
    struct Cell
    {
        Tokens ctx;
        double rate;
        double frac;
        SchedPolicyKind kind;
    };
    std::vector<Cell> cells;
    for (Tokens ctx : contexts)
        for (double rate : rates)
            for (double frac : tier0_fracs)
                for (SchedPolicyKind kind :
                     {SchedPolicyKind::Fifo,
                      SchedPolicyKind::TierPriority})
                    cells.push_back({ctx, rate, frac, kind});

    auto outs = bench::runSweep(args, cells.size(), [&](std::size_t i) {
        const Cell &c = cells[i];
        std::vector<Request> reqs;
        std::size_t n_tier0 = static_cast<std::size_t>(
            c.frac * static_cast<double>(n_requests) + 0.5);
        for (RequestId id = 0; id < n_requests; ++id) {
            Request r{id, c.ctx, decode};
            r.cls = id < n_tier0 ? interactive : batch;
            reqs.push_back(r);
        }
        std::vector<TimedRequest> timed;
        if (!args.rateCurve.empty()) {
            RateCurve curve = profile;
            for (auto &seg : curve.segments)
                seg.ratePerSecond *= c.rate;
            PiecewiseRateCurve process(curve);
            timed = attachArrivals(reqs, process, 17);
        } else {
            OnOffTraffic traffic;
            traffic.onRate = c.rate * 3.0;
            traffic.offRate = 0.0;
            traffic.meanOnSeconds = 1.0;
            traffic.meanOffSeconds = 2.0;
            timed = onOffArrivals(reqs, traffic, 17);
        }
        EngineOptions opts;
        opts.allocator = AllocatorKind::LazyChunk;
        opts.stepModel = StepModel::EventDriven;
        opts.prefillChunkTokens = chunk;
        opts.sched.kind = c.kind;
        return ServingEngine(cluster, model, timed, opts).run();
    });

    for (std::size_t i = 0; i < cells.size(); ++i) {
        const Cell &c = cells[i];
        const EngineResult &r = outs[i].value;
        double t0_gap = 0.0, t1_gap = 0.0, t0_ttft = 0.0;
        for (const auto &cl : r.classLatencies) {
            if (cl.tier == 0) {
                t0_gap = cl.p95TokenGapSeconds;
                t0_ttft = cl.p95FirstTokenSeconds;
            } else if (cl.tier == 1) {
                t1_gap = cl.p95TokenGapSeconds;
            }
        }
        t.addRow({std::to_string(c.ctx),
                  TablePrinter::fmt(c.rate, 1),
                  TablePrinter::fmt(c.frac * 100.0, 0),
                  schedPolicyName(c.kind),
                  TablePrinter::fmt(r.tokensPerSecond, 1),
                  TablePrinter::fmt(t0_gap * 1e3, 1),
                  TablePrinter::fmt(t1_gap * 1e3, 1),
                  TablePrinter::fmt(t0_ttft, 2),
                  std::to_string(r.tierInversions),
                  std::to_string(r.decodePreemptSlices)});
        if (args.json) {
            json.beginRow();
            json.field("context_tokens",
                       static_cast<std::uint64_t>(c.ctx));
            json.field("rate_rps", c.rate);
            json.field("tier0_frac", c.frac);
            json.field("policy", schedPolicyName(c.kind));
            if (!args.rateCurve.empty())
                json.field("rate_curve_segments",
                           static_cast<std::uint64_t>(
                               args.rateCurve.size()));
            json.field("tokens_per_second", r.tokensPerSecond);
            json.field("tier0_gap_p95_s", t0_gap);
            json.field("tier1_gap_p95_s", t1_gap);
            json.field("tier0_ttft_p95_s", t0_ttft);
            json.field("gap_p95_s", r.p95TokenGapSeconds);
            json.field("tier_inversions", r.tierInversions);
            json.field("decode_preempt_slices",
                       r.decodePreemptSlices);
            json.field("chunk_slices", r.chunkSlices);
            json.field("slo_deferrals", r.sloDeferrals);
            json.field("sim_events", r.simEvents);
            for (const auto &to : r.tenantOccupancy) {
                std::string key = "tenant" +
                                  std::to_string(to.tenant) +
                                  "_avg_share";
                json.field(key.c_str(), to.avgTokenShare);
            }
            json.field("threads", args.threads);
            json.field("config_wall_ms", outs[i].wallSeconds * 1e3);
        }
    }
    t.print(std::cout);
    if (args.json) {
        if (json.writeFile(args.jsonPath))
            std::cout << "wrote " << args.jsonPath << "\n";
        else
            std::cerr << "failed to write " << args.jsonPath << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv,
        "per-request SLO class sweep (tier mix x rate x context)",
        bench::kRateCurveFlag);
    if (args.smoke)
        sweep(8, 16, 2048, {0.5}, {1.5}, {30000}, args);
    else
        sweep(24, 48, 2048, {0.25, 0.5, 0.75}, {0.8, 1.2, 1.6},
              {8000, 30000, 60000}, args);
    return 0;
}
