/**
 * @file
 * Step-model comparison: the event-driven serving core vs the
 * analytic closed form across (TP,PP) organizations and workloads.
 * On PP=1 plans the two must coincide (the pipeline recurrence
 * degenerates to the closed form); on PP>1 plans with heterogeneous
 * context lengths the event-driven core recovers the stage-beat
 * padding the analytic model charges to every micro-batch.
 */

#include "bench_util.hh"

#include "workload/arrival.hh"

using namespace pimphony;

namespace {

void
sweep(const char *title, SystemKind system, const LlmConfig &model,
      TraceTask task, bool smoke)
{
    printBanner(std::cout, title);

    OrchestratorConfig probe;
    probe.system = system;
    probe.model = model;
    PimphonyOrchestrator plans_orch(probe);
    auto plans = plans_orch.candidatePlans();

    TablePrinter t({"plan", "analytic tok/s", "event tok/s", "ratio"});
    for (const auto &plan : plans) {
        double tps[2] = {0.0, 0.0};
        int i = 0;
        for (StepModel sm :
             {StepModel::Analytic, StepModel::EventDriven}) {
            OrchestratorConfig cfg;
            cfg.system = system;
            cfg.model = model;
            cfg.options = PimphonyOptions::all();
            cfg.plan = plan;
            cfg.stepModel = sm;
            cfg.nRequests = smoke ? 8 : 24;
            cfg.decodeTokens = smoke ? 8 : 32;
            PimphonyOrchestrator orch(cfg);
            tps[i++] = orch.evaluate(task).engine.tokensPerSecond;
        }
        t.addRow({plan.toString(), TablePrinter::fmt(tps[0], 1),
                  TablePrinter::fmt(tps[1], 1),
                  bench::fmtSpeedup(tps[1] / tps[0])});
    }
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "event-driven vs analytic step-model comparison");
    sweep("Step models, PIM-only, LLM-7B-128K-GQA on multifieldqa",
          SystemKind::PimOnly, LlmConfig::llm7b(true),
          TraceTask::MultifieldQa, args.smoke);
    sweep("Step models, PIM-only, LLM-7B-32K on QMSum",
          SystemKind::PimOnly, LlmConfig::llm7b(false),
          TraceTask::QMSum, args.smoke);
    return 0;
}
