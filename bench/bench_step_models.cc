/**
 * @file
 * Step-model comparison: the event-driven serving core vs the
 * analytic closed form across (TP,PP) organizations and workloads.
 * On PP=1 plans the two must coincide (the pipeline recurrence
 * degenerates to the closed form); on PP>1 plans with heterogeneous
 * context lengths the event-driven core recovers the stage-beat
 * padding the analytic model charges to every micro-batch.
 */

#include "bench_util.hh"

#include "workload/arrival.hh"

using namespace pimphony;

namespace {

void
sweep(const char *title, SystemKind system, const LlmConfig &model,
      TraceTask task, const bench::BenchArgs &args)
{
    printBanner(std::cout, title);

    OrchestratorConfig probe;
    probe.system = system;
    probe.model = model;
    PimphonyOrchestrator plans_orch(probe);
    auto plans = plans_orch.candidatePlans();

    // Flattened (plan, step model) grid for the sweep runner; each
    // cell builds its own orchestrator, so rows are bit-identical at
    // any thread count. Cells 2p / 2p+1 are plan p's analytic and
    // event-driven runs.
    struct Cell
    {
        ParallelPlan plan;
        StepModel sm;
    };
    std::vector<Cell> cells;
    for (const auto &plan : plans)
        for (StepModel sm :
             {StepModel::Analytic, StepModel::EventDriven})
            cells.push_back({plan, sm});

    auto outs = bench::runSweep(args, cells.size(), [&](std::size_t i) {
        const Cell &c = cells[i];
        OrchestratorConfig cfg;
        cfg.system = system;
        cfg.model = model;
        cfg.options = PimphonyOptions::all();
        cfg.plan = c.plan;
        cfg.stepModel = c.sm;
        cfg.nRequests = args.smoke ? 8 : 24;
        cfg.decodeTokens = args.smoke ? 8 : 32;
        PimphonyOrchestrator orch(cfg);
        return orch.evaluate(task).engine.tokensPerSecond;
    });

    TablePrinter t({"plan", "analytic tok/s", "event tok/s", "ratio"});
    for (std::size_t p = 0; p < plans.size(); ++p) {
        double analytic = outs[2 * p].value;
        double event = outs[2 * p + 1].value;
        t.addRow({plans[p].toString(), TablePrinter::fmt(analytic, 1),
                  TablePrinter::fmt(event, 1),
                  bench::fmtSpeedup(event / analytic)});
    }
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "event-driven vs analytic step-model comparison");
    sweep("Step models, PIM-only, LLM-7B-128K-GQA on multifieldqa",
          SystemKind::PimOnly, LlmConfig::llm7b(true),
          TraceTask::MultifieldQa, args);
    sweep("Step models, PIM-only, LLM-7B-32K on QMSum",
          SystemKind::PimOnly, LlmConfig::llm7b(false),
          TraceTask::QMSum, args);
    return 0;
}
