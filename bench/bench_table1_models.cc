/**
 * @file
 * Table I: LLM specifications and context windows.
 */

#include "bench_util.hh"
#include "model/llm.hh"

using namespace pimphony;

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Table I: LLM specifications");
    bench::JsonRows json("bench_table1_models");
    printBanner(std::cout, "Table I: LLM specification and context window");

    bench::MirroredTable t(

        {"Model", "n_l", "n_h", "d_h", "d_model", "d_ffn", "GQA",
                    "KV heads", "CW", "params", "KV B/token"},

        args.json ? &json : nullptr);
    for (auto model :
         {LlmConfig::llm7b(false), LlmConfig::llm7b(true),
          LlmConfig::llm72b(false), LlmConfig::llm72b(true)}) {
        t.addRow({model.name, TablePrinter::fmtInt(model.nLayers),
                  TablePrinter::fmtInt(model.nHeads),
                  TablePrinter::fmtInt(model.headDim),
                  TablePrinter::fmtInt(model.dModel),
                  TablePrinter::fmtInt(model.dFfn),
                  model.gqaGroup > 1
                      ? "g=" + TablePrinter::fmtInt(model.gqaGroup)
                      : "x",
                  TablePrinter::fmtInt(model.kvHeads()),
                  TablePrinter::fmtInt(model.contextWindow),
                  TablePrinter::fmt(
                      static_cast<double>(model.paramCount()) / 1e9, 2) +
                      "B",
                  TablePrinter::fmtInt(model.kvBytesPerToken())});
    }
    t.print(std::cout);
    bench::writeJsonIfRequested(json, args);
    return 0;
}
