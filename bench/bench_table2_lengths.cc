/**
 * @file
 * Table II: statistics of input context length -- published values
 * next to the moments of our synthesized traces.
 */

#include "bench_util.hh"
#include "common/stats.hh"
#include "workload/trace.hh"

using namespace pimphony;

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Table II: context-length statistics");
    bench::JsonRows json("bench_table2_lengths");
    printBanner(std::cout, "Table II: statistics of input context length");

    bench::MirroredTable t(

        {"Task", "Suite", "paper mean", "ours", "paper std",
                    "ours", "paper max", "ours", "paper min", "ours"},

        args.json ? &json : nullptr);
    auto tasks = allTraceTasks();
    auto outs = bench::runSweep(args, tasks.size(), [&](std::size_t i) {
        TraceGenerator gen(tasks[i], 2026);
        StatAccumulator s;
        for (const auto &r : gen.generate(20000))
            s.add(static_cast<double>(r.contextTokens));
        return s;
    });
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const auto &ref = traceTaskStats(tasks[i]);
        const auto &s = outs[i].value;
        t.addRow({ref.name, ref.suite, TablePrinter::fmt(ref.mean, 0),
                  TablePrinter::fmt(s.mean(), 0),
                  TablePrinter::fmt(ref.stddev, 0),
                  TablePrinter::fmt(s.stddev(), 0),
                  TablePrinter::fmt(ref.max, 0),
                  TablePrinter::fmt(s.max(), 0),
                  TablePrinter::fmt(ref.min, 0),
                  TablePrinter::fmt(s.min(), 0)},
                 args.threads, outs[i].wallSeconds);
    }
    t.print(std::cout);
    bench::writeJsonIfRequested(json, args);
    return 0;
}
