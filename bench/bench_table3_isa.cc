/**
 * @file
 * Table III: the PIM instruction set -- arguments and sequencer
 * expansion behaviour, demonstrated on a concrete GEMV program.
 */

#include "bench_util.hh"
#include "hub/sequencer.hh"
#include "isa/pim_instruction.hh"

using namespace pimphony;

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Table III: ISA summary");
    bench::JsonRows json("bench_table3_isa");
    printBanner(std::cout, "Table III: PIM instructions for LLM inference");

    bench::MirroredTable t(

        {"Instruction", "Description", "Arguments"},

        args.json ? &json : nullptr);
    t.addRow({"WR-INP", "copy input from GPR to GBuf",
              "Ch-mask Op-size GPR-addr GBuf-Idx"});
    t.addRow({"MAC", "dot-product on a DRAM row",
              "Ch-mask Op-size GBuf-Idx Row/Col Out-Idx"});
    t.addRow({"RD-OUT", "copy output from OutReg to GPR",
              "Ch-mask Op-size GPR-addr Out-Idx"});
    t.print(std::cout);

    printBanner(std::cout,
                "Sequencer expansion of a (48,32)x(32,1) GEMV program");
    std::vector<PimInstruction> prog = {
        PimInstruction::wrInp(0xFFFF, 2, 0, 0),
        PimInstruction::mac(0xFFFF, 2, 0, 0, 0, 0),
        PimInstruction::rdOut(0xFFFF, 1, 64, 0),
        PimInstruction::mac(0xFFFF, 2, 0, 1, 0, 2),
        PimInstruction::rdOut(0xFFFF, 1, 96, 1),
        PimInstruction::mac(0xFFFF, 2, 0, 2, 0, 4),
        PimInstruction::rdOut(0xFFFF, 1, 128, 2),
    };
    InstructionSequencer seq;
    auto stream = seq.expandProgram(prog);
    std::cout << "  program: " << prog.size() << " instructions ("
              << programBytes(prog) << " B) -> " << stream.size()
              << " channel commands\n";
    for (const auto &c : stream.commands())
        std::cout << "    " << c.toString() << " (group " << c.group
                  << ")\n";
    std::cout << "  validation: "
              << (stream.validate(64, 16).empty() ? "ok" : "FAILED")
              << "\n";
    bench::writeJsonIfRequested(json, args);
    return 0;
}
