/**
 * @file
 * Table IV: PIMphony module configurations for the two host systems,
 * plus the deployment sizes of Sec. VIII-A.
 */

#include "bench_util.hh"
#include "system/cluster.hh"

using namespace pimphony;

int
main(int argc, char **argv)
{
    bench::QuietLogs quiet;
    bench::BenchArgs args = bench::parseBenchArgs(
        argc, argv, "Table IV: evaluated system configurations");
    bench::JsonRows json("bench_table4_configs");
    printBanner(std::cout, "Table IV: PIMphony module configurations");

    bench::MirroredTable t(

        {"System", "Compute", "Channels/module",
                    "Memory/module", "Internal BW/module", "7B deploy",
                    "72B deploy"},

        args.json ? &json : nullptr);
    {
        auto c7 = ClusterConfig::centLike(LlmConfig::llm7b(false));
        auto c72 = ClusterConfig::centLike(LlmConfig::llm72b(false));
        t.addRow({"CENT-like (PIM-only)", "PNM 3 TFLOPS",
                  TablePrinter::fmtInt(c7.module.nChannels),
                  TablePrinter::fmtInt(c7.module.capacityBytes >> 30) +
                      " GiB",
                  TablePrinter::fmt(c7.module.internalBandwidth() / 1e12,
                                    1) +
                      " TB/s",
                  TablePrinter::fmtInt(c7.nModules) + " modules (" +
                      TablePrinter::fmtInt(c7.totalCapacity() >> 30) +
                      " GiB)",
                  TablePrinter::fmtInt(c72.nModules) + " modules (" +
                      TablePrinter::fmtInt(c72.totalCapacity() >> 30) +
                      " GiB)"});
    }
    {
        auto n7 = ClusterConfig::neupimsLike(LlmConfig::llm7b(false));
        auto n72 = ClusterConfig::neupimsLike(LlmConfig::llm72b(false));
        t.addRow({"NeuPIMs-like (xPU+PIM)", "8 MU / 256 TFLOPS",
                  TablePrinter::fmtInt(n7.module.nChannels),
                  TablePrinter::fmtInt(n7.module.capacityBytes >> 30) +
                      " GiB",
                  TablePrinter::fmt(n7.module.internalBandwidth() / 1e12,
                                    1) +
                      " TB/s",
                  TablePrinter::fmtInt(n7.nModules) + " modules (" +
                      TablePrinter::fmtInt(n7.totalCapacity() >> 30) +
                      " GiB)",
                  TablePrinter::fmtInt(n72.nModules) + " modules (" +
                      TablePrinter::fmtInt(n72.totalCapacity() >> 30) +
                      " GiB)"});
    }
    t.print(std::cout);
    bench::writeJsonIfRequested(json, args);
    return 0;
}
