/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 */

#ifndef PIMPHONY_BENCH_BENCH_UTIL_HH
#define PIMPHONY_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/orchestrator.hh"

namespace pimphony {
namespace bench {

/** The four cumulative technique stacks every throughput figure uses. */
inline std::vector<PimphonyOptions>
cumulativeOptions()
{
    return {
        PimphonyOptions::baseline(),
        PimphonyOptions{true, false, false},
        PimphonyOptions{true, true, false},
        PimphonyOptions{true, true, true},
    };
}

inline std::string
fmtSpeedup(double v)
{
    return TablePrinter::fmt(v, 2) + "x";
}

/** Quiet the log for clean figure output. */
struct QuietLogs
{
    QuietLogs() { setLogThreshold(LogLevel::Warn); }
};

} // namespace bench
} // namespace pimphony

#endif // PIMPHONY_BENCH_BENCH_UTIL_HH
