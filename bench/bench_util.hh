/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses:
 * --smoke/--json flag handling, the cumulative technique stacks, and
 * a minimal machine-readable row writer (BENCH_<name>.json) so CI
 * and sweep scripts can track the numbers without scraping tables.
 */

#ifndef PIMPHONY_BENCH_BENCH_UTIL_HH
#define PIMPHONY_BENCH_BENCH_UTIL_HH

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/table.hh"
#include "core/orchestrator.hh"

namespace pimphony {
namespace bench {

struct BenchArgs
{
    /** Tiny sweep for CI liveness. */
    bool smoke = false;

    /** Also emit machine-readable rows to @ref jsonPath. */
    bool json = false;

    /** Output path for --json (default BENCH_<bench name>.json). */
    std::string jsonPath;

    /**
     * Sweep concurrency (--threads N, else PIMPHONY_THREADS, else
     * 1 = the exact serial path). --threads 0 resolves to all
     * hardware threads.
     */
    unsigned threads = 1;

    // --- Workload-realism flags. Only benches that opt in via the
    // --- parseBenchArgs workload_flags mask accept them; everywhere
    // --- else they stay unknown flags (exit 2). -------------------

    /** --trace=PATH: replay a saved workload instead of generating
     *  (kTraceFlags). Empty = generate. */
    std::string tracePath;

    /** --save-trace[=PATH]: save the generated workload for replay
     *  (kTraceFlags). Empty = don't save. */
    std::string saveTracePath;

    /** --rate-curve=R1,R2,...: diurnal arrival-rate profile in
     *  requests/second (kRateCurveFlag). Empty = bench default. */
    std::vector<double> rateCurve;
};

/** Opt-in masks for parseBenchArgs' workload flags. */
enum WorkloadFlag : unsigned {
    kNoWorkloadFlags = 0,

    /** Accept --trace=PATH and --save-trace[=PATH]. */
    kTraceFlags = 1u << 0,

    /** Accept --rate-curve=R1,R2,... */
    kRateCurveFlag = 1u << 1,
};

/**
 * Minimal flag handling for the serving benches: recognizes --smoke
 * (tiny sweep for CI liveness), --json[=PATH] (machine-readable
 * rows; PATH defaults to BENCH_<name>.json in the working
 * directory), --threads N (sweep concurrency; 0 = all hardware
 * threads, default PIMPHONY_THREADS else 1), and --help, and fails
 * loudly — usage on stderr, exit 2 — on anything else, so a typo'd
 * flag cannot silently run the full sweep in CI.
 *
 * @p workload_flags opts the bench into the workload-realism flags
 * (WorkloadFlag mask): kTraceFlags adds --trace=PATH /
 * --save-trace[=PATH] (workload/replay.hh round trip), kRateCurveFlag
 * adds --rate-curve=R1,R2,... (a diurnal PiecewiseRateCurve profile).
 */
inline BenchArgs
parseBenchArgs(int argc, char **argv, const char *description,
               unsigned workload_flags = kNoWorkloadFlags)
{
    BenchArgs out;
    out.threads = SweepRunner::defaultThreads();
    std::string prog = argc > 0 ? argv[0] : "bench";
    std::string name = prog;
    std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    if (name.rfind("bench_", 0) == 0)
        name = name.substr(6);
    out.jsonPath = "BENCH_" + name + ".json";
    std::string default_trace = "TRACE_" + name + ".json";
    auto parse_threads = [&](const std::string &value) {
        char *end = nullptr;
        unsigned long v = std::strtoul(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0') {
            std::cerr << prog << ": bad --threads value '" << value
                      << "'\n";
            std::exit(2);
        }
        out.threads = v == 0 ? SweepRunner::hardwareThreads()
                             : static_cast<unsigned>(v);
    };
    auto parse_rates = [&](const std::string &value) {
        out.rateCurve.clear();
        const char *p = value.c_str();
        for (;;) {
            char *end = nullptr;
            double v = std::strtod(p, &end);
            if (end == p || v < 0.0) {
                std::cerr << prog << ": bad --rate-curve value '"
                          << value << "'\n";
                std::exit(2);
            }
            out.rateCurve.push_back(v);
            if (*end == '\0')
                break;
            if (*end != ',') {
                std::cerr << prog << ": bad --rate-curve value '"
                          << value << "'\n";
                std::exit(2);
            }
            p = end + 1;
        }
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            out.smoke = true;
        } else if ((workload_flags & kTraceFlags) &&
                   arg.rfind("--trace=", 0) == 0) {
            out.tracePath = arg.substr(8);
        } else if ((workload_flags & kTraceFlags) &&
                   arg == "--save-trace") {
            out.saveTracePath = default_trace;
        } else if ((workload_flags & kTraceFlags) &&
                   arg.rfind("--save-trace=", 0) == 0) {
            out.saveTracePath = arg.substr(13);
        } else if ((workload_flags & kRateCurveFlag) &&
                   arg.rfind("--rate-curve=", 0) == 0) {
            parse_rates(arg.substr(13));
        } else if (arg == "--json") {
            out.json = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            out.json = true;
            out.jsonPath = arg.substr(7);
        } else if (arg == "--threads" && i + 1 < argc) {
            parse_threads(argv[++i]);
        } else if (arg.rfind("--threads=", 0) == 0) {
            parse_threads(arg.substr(10));
        } else if (arg == "--help" || arg == "-h") {
            std::cout << prog << " -- " << description << "\n\n"
                      << "usage: " << prog
                      << " [--smoke] [--json[=PATH]] [--threads N]\n"
                      << "  --smoke        tiny sweep (CI keeps the "
                         "harness alive)\n"
                      << "  --json[=PATH]  also write machine-readable "
                         "rows (default "
                      << out.jsonPath << ")\n"
                      << "  --threads N    run sweep configs on N "
                         "threads (0 = all cores;\n"
                         "                 default $PIMPHONY_THREADS, "
                         "else 1 = serial).\n"
                         "                 Rows are emitted in "
                         "submission order and stay\n"
                         "                 bit-identical to a serial "
                         "run.\n";
            if (workload_flags & kTraceFlags)
                std::cout
                    << "  --trace=PATH   replay a saved workload "
                       "instead of generating\n"
                    << "  --save-trace[=PATH]\n"
                       "                 save the generated workload "
                       "(default " << default_trace << ")\n";
            if (workload_flags & kRateCurveFlag)
                std::cout
                    << "  --rate-curve=R1,R2,...\n"
                       "                 diurnal arrival-rate profile "
                       "(req/s per segment)\n";
            std::cout << "  --help         this message\n";
            std::exit(0);
        } else {
            std::cerr << prog << ": unknown flag '" << arg << "'\n"
                      << "usage: " << prog
                      << " [--smoke|--json[=PATH]|--threads N|--help]\n";
            std::exit(2);
        }
    }
    return out;
}

/**
 * Outcome of one sweep cell run through runSweep: the cell's value
 * plus its wall-clock seconds on whichever worker executed it. The
 * wall time is recorded in JSON rows as config_wall_ms; under a
 * parallel run it includes any core contention, so cross-config
 * timing comparisons should use --threads 1 numbers.
 */
template <typename R>
struct SweepCell
{
    R value{};
    double wallSeconds = 0.0;
};

/**
 * Evaluate fn(0..n-1) on the configured sweep concurrency
 * (args.threads; 1 = the exact serial loop) and return the outcomes
 * in submission order. Cells must be independent: each builds its
 * own engine/model instances and derives randomness from explicit
 * per-cell seeds, which is what keeps an N-thread sweep
 * bit-identical to the serial run. Emit table/JSON rows from the
 * returned vector — never from inside fn.
 */
template <typename Fn>
auto
runSweep(const BenchArgs &args, std::size_t n, Fn &&fn)
    -> std::vector<SweepCell<std::decay_t<decltype(fn(std::size_t{0}))>>>
{
    using R = std::decay_t<decltype(fn(std::size_t{0}))>;
    std::vector<SweepCell<R>> out(n);
    SweepRunner runner(args.threads);
    runner.forEach(n, [&](std::size_t i) {
        auto t0 = std::chrono::steady_clock::now();
        out[i].value = fn(i);
        out[i].wallSeconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
    });
    return out;
}

/**
 * Machine-readable bench output: a flat array of row objects under
 * {"bench": ..., "rows": [...]}. Values are written as JSON numbers
 * (%.17g doubles round-trip) or escaped strings; every row carries
 * whatever fields its bench chooses, so downstream tooling (the CI
 * perf compare, sweep plotters) selects by key instead of column
 * position.
 */
class JsonRows
{
  public:
    explicit JsonRows(std::string bench_name)
        : bench_(std::move(bench_name))
    {
    }

    void
    beginRow()
    {
        rows_.emplace_back();
    }

    void
    field(const char *key, const std::string &v)
    {
        addRaw(key, "\"" + escape(v) + "\"");
    }

    void
    field(const char *key, const char *v)
    {
        field(key, std::string(v));
    }

    void
    field(const char *key, double v)
    {
        addRaw(key, formatNumber(v));
    }

    void
    field(const char *key, std::uint64_t v)
    {
        addRaw(key, std::to_string(v));
    }

    void
    field(const char *key, unsigned v)
    {
        addRaw(key, std::to_string(v));
    }

    /** Write {"bench":…,"rows":[…]} to @p path (true on success). */
    bool
    writeFile(const std::string &path) const
    {
        std::ofstream os(path);
        if (!os)
            return false;
        os << "{\n  \"bench\": \"" << escape(bench_)
           << "\",\n  \"rows\": [\n";
        for (std::size_t r = 0; r < rows_.size(); ++r) {
            os << "    {";
            const auto &row = rows_[r];
            for (std::size_t f = 0; f < row.size(); ++f) {
                os << "\"" << row[f].first << "\": " << row[f].second;
                if (f + 1 < row.size())
                    os << ", ";
            }
            os << "}" << (r + 1 < rows_.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
        return static_cast<bool>(os);
    }

  private:
    void
    addRaw(const char *key, std::string value)
    {
        rows_.back().emplace_back(key, std::move(value));
    }

    /**
     * The one double formatter every JSON number goes through:
     * %.17g round-trips any finite double exactly, the decimal
     * point is forced to '.' even under a locale that prints ','
     * (which would corrupt the document), and non-finite values —
     * invalid JSON literals — degrade to null rather than emitting
     * "inf"/"nan" tokens parsers reject.
     */
    static std::string
    formatNumber(double v)
    {
        if (!std::isfinite(v))
            return "null";
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        for (char *p = buf; *p; ++p)
            if (*p == ',')
                *p = '.';
        return buf;
    }

    static std::string
    escape(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            unsigned char u = static_cast<unsigned char>(c);
            switch (c) {
              case '"':
                out += "\\\"";
                break;
              case '\\':
                out += "\\\\";
                break;
              case '\n':
                out += "\\n";
                break;
              case '\t':
                out += "\\t";
                break;
              case '\r':
                out += "\\r";
                break;
              default:
                if (u < 0x20) {
                    // Remaining control characters are illegal raw
                    // inside JSON strings; \u-escape them.
                    char b[8];
                    std::snprintf(b, sizeof(b), "\\u%04x", u);
                    out += b;
                } else {
                    out.push_back(c);
                }
            }
        }
        return out;
    }

    std::string bench_;
    std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

/**
 * A TablePrinter that mirrors every row into a shared JsonRows (when
 * one is attached): cell strings are keyed by a sanitized form of
 * the column header (lowercase, non-alphanumerics collapsed to '_'),
 * plus an optional "section" field when one bench prints several
 * tables. This is how the legacy figure/table harnesses expose
 * machine-readable rows without restructuring their sweep loops —
 * values stay formatted strings; downstream tooling selects by key.
 */
class MirroredTable
{
  public:
    MirroredTable(const std::vector<std::string> &headers, JsonRows *json,
                  std::string section = "")
        : table_(headers), json_(json), section_(std::move(section))
    {
        keys_.reserve(headers.size());
        std::vector<std::string> bases;
        bases.reserve(headers.size());
        for (const auto &h : headers) {
            std::string base = sanitizeKey(h);
            // Repeated headers (e.g. a paper-vs-ours table) get a
            // positional suffix so the JSON object keys stay unique;
            // only exact base-key repeats collide.
            unsigned n = 0;
            for (const auto &b : bases)
                if (b == base)
                    ++n;
            bases.push_back(base);
            if (n > 0)
                base += "_" + std::to_string(n + 1);
            keys_.push_back(std::move(base));
        }
    }

    void
    addRow(const std::vector<std::string> &cells)
    {
        table_.addRow(cells);
        if (!json_)
            return;
        json_->beginRow();
        if (!section_.empty())
            json_->field("section", section_);
        for (std::size_t i = 0; i < cells.size() && i < keys_.size();
             ++i)
            json_->field(keys_[i].c_str(), cells[i]);
    }

    /**
     * addRow for sweep-runner cells: also records the runner
     * provenance (threads, config_wall_ms) in the mirrored JSON row.
     * Timing-stripped comparisons (the CI determinism jobs) drop
     * both keys alongside wall_ms/events_per_sec.
     */
    void
    addRow(const std::vector<std::string> &cells, unsigned threads,
           double wall_seconds)
    {
        addRow(cells);
        if (!json_)
            return;
        json_->field("threads", threads);
        json_->field("config_wall_ms", wall_seconds * 1e3);
    }

    void print(std::ostream &os) { table_.print(os); }

    static std::string
    sanitizeKey(const std::string &header)
    {
        std::string key;
        key.reserve(header.size());
        bool last_us = false;
        for (char c : header) {
            if (std::isalnum(static_cast<unsigned char>(c))) {
                key.push_back(static_cast<char>(
                    std::tolower(static_cast<unsigned char>(c))));
                last_us = false;
            } else if (!key.empty() && !last_us) {
                key.push_back('_');
                last_us = true;
            }
        }
        while (!key.empty() && key.back() == '_')
            key.pop_back();
        return key.empty() ? "col" : key;
    }

  private:
    TablePrinter table_;
    JsonRows *json_;
    std::string section_;
    std::vector<std::string> keys_;
};

/** Write @p json to args.jsonPath when --json was requested. */
inline void
writeJsonIfRequested(const JsonRows &json, const BenchArgs &args)
{
    if (!args.json)
        return;
    if (json.writeFile(args.jsonPath))
        std::cout << "wrote " << args.jsonPath << "\n";
    else
        std::cerr << "failed to write " << args.jsonPath << "\n";
}

/** The four cumulative technique stacks every throughput figure uses. */
inline std::vector<PimphonyOptions>
cumulativeOptions()
{
    return {
        PimphonyOptions::baseline(),
        PimphonyOptions{true, false, false},
        PimphonyOptions{true, true, false},
        PimphonyOptions{true, true, true},
    };
}

inline std::string
fmtSpeedup(double v)
{
    return TablePrinter::fmt(v, 2) + "x";
}

/** Quiet the log for clean figure output. */
struct QuietLogs
{
    QuietLogs() { setLogThreshold(LogLevel::Warn); }
};

} // namespace bench
} // namespace pimphony

#endif // PIMPHONY_BENCH_BENCH_UTIL_HH
