/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses:
 * --smoke/--json flag handling, the cumulative technique stacks, and
 * a minimal machine-readable row writer (BENCH_<name>.json) so CI
 * and sweep scripts can track the numbers without scraping tables.
 */

#ifndef PIMPHONY_BENCH_BENCH_UTIL_HH
#define PIMPHONY_BENCH_BENCH_UTIL_HH

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/orchestrator.hh"

namespace pimphony {
namespace bench {

struct BenchArgs
{
    /** Tiny sweep for CI liveness. */
    bool smoke = false;

    /** Also emit machine-readable rows to @ref jsonPath. */
    bool json = false;

    /** Output path for --json (default BENCH_<bench name>.json). */
    std::string jsonPath;
};

/**
 * Minimal flag handling for the serving benches: recognizes --smoke
 * (tiny sweep for CI liveness), --json[=PATH] (machine-readable
 * rows; PATH defaults to BENCH_<name>.json in the working
 * directory), and --help, and fails loudly — usage on stderr,
 * exit 2 — on anything else, so a typo'd flag cannot silently run
 * the full sweep in CI.
 */
inline BenchArgs
parseBenchArgs(int argc, char **argv, const char *description)
{
    BenchArgs out;
    std::string prog = argc > 0 ? argv[0] : "bench";
    std::string name = prog;
    std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);
    if (name.rfind("bench_", 0) == 0)
        name = name.substr(6);
    out.jsonPath = "BENCH_" + name + ".json";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            out.smoke = true;
        } else if (arg == "--json") {
            out.json = true;
        } else if (arg.rfind("--json=", 0) == 0) {
            out.json = true;
            out.jsonPath = arg.substr(7);
        } else if (arg == "--help" || arg == "-h") {
            std::cout << prog << " -- " << description << "\n\n"
                      << "usage: " << prog
                      << " [--smoke] [--json[=PATH]]\n"
                      << "  --smoke        tiny sweep (CI keeps the "
                         "harness alive)\n"
                      << "  --json[=PATH]  also write machine-readable "
                         "rows (default "
                      << out.jsonPath << ")\n"
                      << "  --help         this message\n";
            std::exit(0);
        } else {
            std::cerr << prog << ": unknown flag '" << arg << "'\n"
                      << "usage: " << prog
                      << " [--smoke|--json[=PATH]|--help]\n";
            std::exit(2);
        }
    }
    return out;
}

/**
 * Machine-readable bench output: a flat array of row objects under
 * {"bench": ..., "rows": [...]}. Values are written as JSON numbers
 * (%.17g doubles round-trip) or escaped strings; every row carries
 * whatever fields its bench chooses, so downstream tooling (the CI
 * perf compare, sweep plotters) selects by key instead of column
 * position.
 */
class JsonRows
{
  public:
    explicit JsonRows(std::string bench_name)
        : bench_(std::move(bench_name))
    {
    }

    void
    beginRow()
    {
        rows_.emplace_back();
    }

    void
    field(const char *key, const std::string &v)
    {
        addRaw(key, "\"" + escape(v) + "\"");
    }

    void
    field(const char *key, const char *v)
    {
        field(key, std::string(v));
    }

    void
    field(const char *key, double v)
    {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", v);
        addRaw(key, buf);
    }

    void
    field(const char *key, std::uint64_t v)
    {
        addRaw(key, std::to_string(v));
    }

    void
    field(const char *key, unsigned v)
    {
        addRaw(key, std::to_string(v));
    }

    /** Write {"bench":…,"rows":[…]} to @p path (true on success). */
    bool
    writeFile(const std::string &path) const
    {
        std::ofstream os(path);
        if (!os)
            return false;
        os << "{\n  \"bench\": \"" << escape(bench_)
           << "\",\n  \"rows\": [\n";
        for (std::size_t r = 0; r < rows_.size(); ++r) {
            os << "    {";
            const auto &row = rows_[r];
            for (std::size_t f = 0; f < row.size(); ++f) {
                os << "\"" << row[f].first << "\": " << row[f].second;
                if (f + 1 < row.size())
                    os << ", ";
            }
            os << "}" << (r + 1 < rows_.size() ? "," : "") << "\n";
        }
        os << "  ]\n}\n";
        return static_cast<bool>(os);
    }

  private:
    void
    addRaw(const char *key, std::string value)
    {
        rows_.back().emplace_back(key, std::move(value));
    }

    static std::string
    escape(const std::string &s)
    {
        std::string out;
        out.reserve(s.size());
        for (char c : s) {
            if (c == '"' || c == '\\')
                out.push_back('\\');
            out.push_back(c);
        }
        return out;
    }

    std::string bench_;
    std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

/**
 * A TablePrinter that mirrors every row into a shared JsonRows (when
 * one is attached): cell strings are keyed by a sanitized form of
 * the column header (lowercase, non-alphanumerics collapsed to '_'),
 * plus an optional "section" field when one bench prints several
 * tables. This is how the legacy figure/table harnesses expose
 * machine-readable rows without restructuring their sweep loops —
 * values stay formatted strings; downstream tooling selects by key.
 */
class MirroredTable
{
  public:
    MirroredTable(const std::vector<std::string> &headers, JsonRows *json,
                  std::string section = "")
        : table_(headers), json_(json), section_(std::move(section))
    {
        keys_.reserve(headers.size());
        std::vector<std::string> bases;
        bases.reserve(headers.size());
        for (const auto &h : headers) {
            std::string base = sanitizeKey(h);
            // Repeated headers (e.g. a paper-vs-ours table) get a
            // positional suffix so the JSON object keys stay unique;
            // only exact base-key repeats collide.
            unsigned n = 0;
            for (const auto &b : bases)
                if (b == base)
                    ++n;
            bases.push_back(base);
            if (n > 0)
                base += "_" + std::to_string(n + 1);
            keys_.push_back(std::move(base));
        }
    }

    void
    addRow(const std::vector<std::string> &cells)
    {
        table_.addRow(cells);
        if (!json_)
            return;
        json_->beginRow();
        if (!section_.empty())
            json_->field("section", section_);
        for (std::size_t i = 0; i < cells.size() && i < keys_.size();
             ++i)
            json_->field(keys_[i].c_str(), cells[i]);
    }

    void print(std::ostream &os) { table_.print(os); }

    static std::string
    sanitizeKey(const std::string &header)
    {
        std::string key;
        key.reserve(header.size());
        bool last_us = false;
        for (char c : header) {
            if (std::isalnum(static_cast<unsigned char>(c))) {
                key.push_back(static_cast<char>(
                    std::tolower(static_cast<unsigned char>(c))));
                last_us = false;
            } else if (!key.empty() && !last_us) {
                key.push_back('_');
                last_us = true;
            }
        }
        while (!key.empty() && key.back() == '_')
            key.pop_back();
        return key.empty() ? "col" : key;
    }

  private:
    TablePrinter table_;
    JsonRows *json_;
    std::string section_;
    std::vector<std::string> keys_;
};

/** Write @p json to args.jsonPath when --json was requested. */
inline void
writeJsonIfRequested(const JsonRows &json, const BenchArgs &args)
{
    if (!args.json)
        return;
    if (json.writeFile(args.jsonPath))
        std::cout << "wrote " << args.jsonPath << "\n";
    else
        std::cerr << "failed to write " << args.jsonPath << "\n";
}

/** The four cumulative technique stacks every throughput figure uses. */
inline std::vector<PimphonyOptions>
cumulativeOptions()
{
    return {
        PimphonyOptions::baseline(),
        PimphonyOptions{true, false, false},
        PimphonyOptions{true, true, false},
        PimphonyOptions{true, true, true},
    };
}

inline std::string
fmtSpeedup(double v)
{
    return TablePrinter::fmt(v, 2) + "x";
}

/** Quiet the log for clean figure output. */
struct QuietLogs
{
    QuietLogs() { setLogThreshold(LogLevel::Warn); }
};

} // namespace bench
} // namespace pimphony

#endif // PIMPHONY_BENCH_BENCH_UTIL_HH
