/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 */

#ifndef PIMPHONY_BENCH_BENCH_UTIL_HH
#define PIMPHONY_BENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "core/orchestrator.hh"

namespace pimphony {
namespace bench {

/**
 * Minimal flag handling for the serving benches: recognizes --smoke
 * (tiny sweep for CI liveness) and --help, and fails loudly — usage
 * on stderr, exit 2 — on anything else, so a typo'd flag cannot
 * silently run the full sweep in CI. @return true when --smoke was
 * given.
 */
inline bool
parseBenchArgs(int argc, char **argv, const char *description)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << argv[0] << " -- " << description << "\n\n"
                      << "usage: " << argv[0] << " [--smoke]\n"
                      << "  --smoke   tiny sweep (CI keeps the harness "
                         "alive)\n"
                      << "  --help    this message\n";
            std::exit(0);
        } else {
            std::cerr << argv[0] << ": unknown flag '" << arg << "'\n"
                      << "usage: " << argv[0] << " [--smoke|--help]\n";
            std::exit(2);
        }
    }
    return smoke;
}

/** The four cumulative technique stacks every throughput figure uses. */
inline std::vector<PimphonyOptions>
cumulativeOptions()
{
    return {
        PimphonyOptions::baseline(),
        PimphonyOptions{true, false, false},
        PimphonyOptions{true, true, false},
        PimphonyOptions{true, true, true},
    };
}

inline std::string
fmtSpeedup(double v)
{
    return TablePrinter::fmt(v, 2) + "x";
}

/** Quiet the log for clean figure output. */
struct QuietLogs
{
    QuietLogs() { setLogThreshold(LogLevel::Warn); }
};

} // namespace bench
} // namespace pimphony

#endif // PIMPHONY_BENCH_BENCH_UTIL_HH
