/**
 * @file
 * Capacity planner: given a model and a context-length distribution,
 * estimate how many PIM modules a deployment needs for a target
 * concurrent batch under static vs DPA memory management -- the
 * operational face of Sec. VI.
 */

#include <cstdio>

#include "alloc/kv_allocator.hh"
#include "common/logging.hh"
#include "system/cluster.hh"
#include "workload/trace.hh"

using namespace pimphony;

namespace {

/** Requests admitted on a given capacity under an allocator kind. */
std::size_t
admissible(AllocatorKind kind, Bytes capacity, const LlmConfig &model,
           const std::vector<Request> &requests)
{
    auto alloc = makeAllocator(kind, capacity, model.kvBytesPerToken(),
                               model.contextWindow);
    std::size_t n = 0;
    for (const auto &r : requests) {
        if (!alloc->tryAdmit(r.id, r.contextTokens + r.decodeTokens))
            break;
        ++n;
    }
    return n;
}

} // namespace

int
main()
{
    setLogThreshold(LogLevel::Warn);

    auto model = LlmConfig::llm7b(true);
    const std::size_t target_batch = 32;

    TraceGenerator gen(TraceTask::MultifieldQa, 4321);
    auto requests = gen.generate(256, 128);

    std::printf("capacity planning for %s, multifieldqa-like contexts, "
                "target batch %zu\n\n",
                model.name.c_str(), target_batch);
    std::printf("%8s %10s %16s %16s\n", "modules", "capacity",
                "static batch", "DPA batch");

    auto base = ClusterConfig::centLike(model);
    for (unsigned modules = 2; modules <= 64; modules *= 2) {
        Bytes capacity =
            static_cast<Bytes>(modules) * base.module.capacityBytes;
        if (capacity <= model.weightBytes()) {
            std::printf("%8u %9llu G %16s %16s\n", modules,
                        static_cast<unsigned long long>(capacity >> 30),
                        "weights!", "weights!");
            continue;
        }
        Bytes kv = capacity - model.weightBytes();
        std::size_t st = admissible(AllocatorKind::Static, kv, model,
                                    requests);
        std::size_t lz = admissible(AllocatorKind::LazyChunk, kv, model,
                                    requests);
        std::printf("%8u %9llu G %16zu %16zu%s\n", modules,
                    static_cast<unsigned long long>(capacity >> 30), st,
                    lz,
                    lz >= target_batch && st < target_batch
                        ? "   <- DPA reaches target first"
                        : "");
    }

    std::printf("\nrule of thumb: static reserves %llu MiB per request "
                "(T_max %llu); DPA reserves the actual footprint in "
                "1 MiB chunks.\n",
                static_cast<unsigned long long>(
                    (model.kvBytesPerToken() * model.contextWindow) >>
                    20),
                static_cast<unsigned long long>(model.contextWindow));
    return 0;
}
