/**
 * @file
 * Fleet serving: a cluster of replica serving engines behind a
 * request router, simulated under conservative time-window
 * synchronization (the router's dispatch latency is the lookahead).
 *
 * Part one scales the replica count at a fixed offered load and
 * shows the fleet absorbing traffic one replica saturates on. Part
 * two compares the routing policies on a skewed trace — round-robin
 * alternates blindly while least-loaded steers long contexts away
 * from busy replicas — and prints the per-replica routing histogram
 * so the difference is visible, not just aggregate. Part three
 * injects a fault — one replica crashes mid-run and recovers after a
 * model reload — and prints the availability and goodput delta
 * against the fault-free run of the same fleet.
 */

#include <cstdio>

#include "system/fault.hh"
#include "system/fleet.hh"
#include "workload/arrival.hh"

using namespace pimphony;

namespace {

std::vector<TimedRequest>
makeTrace(std::size_t n, double ratePerSecond, unsigned seed)
{
    std::vector<Request> reqs;
    for (RequestId i = 0; i < n; ++i) {
        // Bimodal contexts: every fourth request is long-context.
        Tokens context = (i % 4 == 0) ? 30000 : 2000;
        reqs.push_back({i, context, 32});
    }
    return poissonArrivals(reqs, ratePerSecond, seed);
}

FleetResult
runFleet(unsigned replicas, RoutePolicy policy,
         const std::vector<TimedRequest> &trace)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());

    FleetOptions options;
    options.replicas = replicas;
    options.policy = policy;
    options.dispatchLatencySeconds = 0.002; // 2 ms router hop
    options.threads = 0;                    // fleet pool on all cores
    options.engine.allocator = AllocatorKind::LazyChunk;
    options.engine.stepModel = StepModel::EventDriven;
    options.engine.prefillChunkTokens = 2048;

    FleetEngine fleet(cluster, model, trace, options);
    return fleet.run();
}

/** Replica scaling at fixed offered load. */
void
replicaScaling()
{
    auto trace = makeTrace(96, 24.0, 17);

    std::printf("Fleet scaling, 96 requests at 24 req/s, "
                "round-robin, 2 ms dispatch\n\n");
    std::printf("%9s %10s %9s %12s %9s\n", "replicas", "tokens/s",
                "makespan", "gap p95 (ms)", "windows");
    for (unsigned replicas : {1u, 2u, 4u, 8u}) {
        auto r = runFleet(replicas, RoutePolicy::RoundRobin, trace);
        std::printf("%9u %10.1f %8.1fs %12.1f %9llu\n", replicas,
                    r.aggregate.tokensPerSecond,
                    r.aggregate.simulatedSeconds,
                    r.aggregate.p95TokenGapSeconds * 1e3,
                    static_cast<unsigned long long>(r.windows));
    }
    std::printf("\nOne replica queues the whole trace; replicas "
                "split it at the router, so\nthe makespan collapses "
                "toward the arrival span and the decode gap tail\n"
                "relaxes. Each fleet run advances its replicas in "
                "parallel.\n");
}

/** Routing policies on the same skewed trace. */
void
routingPolicies()
{
    auto trace = makeTrace(64, 24.0, 23);

    std::printf("\nRouting policy, 4 replicas, bimodal contexts "
                "(every 4th is 30k tokens)\n\n");
    std::printf("%-14s %10s %12s   %s\n", "policy", "tokens/s",
                "gap p95 (ms)", "routed per replica");
    for (RoutePolicy policy :
         {RoutePolicy::RoundRobin, RoutePolicy::LeastLoaded}) {
        auto r = runFleet(4, policy, trace);
        std::printf("%-14s %10.1f %12.1f   [",
                    routePolicyName(policy).c_str(),
                    r.aggregate.tokensPerSecond,
                    r.aggregate.p95TokenGapSeconds * 1e3);
        for (std::size_t i = 0; i < r.routedRequests.size(); ++i)
            std::printf("%s%llu", i ? " " : "",
                        static_cast<unsigned long long>(
                            r.routedRequests[i]));
        std::printf("]\n");
    }
    std::printf("\nRound-robin sends every 4th (long) request to the "
                "same rotation slot;\nleast-loaded reads queued "
                "tokens at each window barrier and routes around\n"
                "replicas still chewing a 30k-token prefill.\n");
}

/** One crash + recovery against the fault-free baseline. */
void
faultInjection()
{
    std::vector<Request> reqs;
    for (RequestId i = 0; i < 48; ++i)
        reqs.push_back({i, (i % 4 == 0) ? Tokens(20000) : Tokens(2000),
                        256});
    auto trace = poissonArrivals(reqs, 32.0, 29);

    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());

    FleetOptions options;
    options.replicas = 2;
    options.policy = RoutePolicy::RoundRobin;
    options.dispatchLatencySeconds = 0.002;
    options.engine.allocator = AllocatorKind::LazyChunk;
    options.engine.stepModel = StepModel::EventDriven;
    options.engine.prefillChunkTokens = 2048;

    auto clean = FleetEngine(cluster, model, trace, options).run();

    // Replica 1 hard-crashes at t = 1 s (queued work evacuates,
    // in-flight decodes are killed and failed over to replica 0)
    // and recovers at t = 2.5 s after half a second of model reload.
    options.faults.replicas.resize(2);
    options.faults.replicas[1].push_back(crashAt(1.0));
    options.faults.replicas[1].push_back(recoverAt(2.5, 0.5));
    auto faulty = FleetEngine(cluster, model, trace, options).run();

    std::printf("\nFault injection, 2 replicas: replica 1 crashes at "
                "1.0s, recovers at 2.5s\n(+0.5s model reload)\n\n");
    std::printf("%-22s %12s %12s\n", "", "fault-free", "faulty");
    std::printf("%-22s %12.4f %12.4f\n", "replica 1 availability",
                clean.availability[1], faulty.availability[1]);
    std::printf("%-22s %12llu %12llu\n", "goodput tokens",
                static_cast<unsigned long long>(clean.goodputTokens),
                static_cast<unsigned long long>(faulty.goodputTokens));
    std::printf("%-22s %12.1f %12.1f\n", "goodput tokens/s",
                clean.goodputTokensPerSecond,
                faulty.goodputTokensPerSecond);
    std::printf("\nfaulty run: %llu evacuated, %llu retried, "
                "%llu requests lost, %llu decode\ntokens discarded by "
                "the kill\n",
                static_cast<unsigned long long>(
                    faulty.evacuatedRequests),
                static_cast<unsigned long long>(
                    faulty.retriedRequests),
                static_cast<unsigned long long>(faulty.lostRequests),
                static_cast<unsigned long long>(faulty.lostTokens));
    std::printf("\nEvery request still completes — the router fails "
                "work over to replica 0 —\nbut the decode tokens "
                "replica 1 had produced when it died are discarded\n"
                "and re-decoded, so goodput/s drops while "
                "generated == goodput + lost\nstays exact. "
                "Availability charges the outage plus the reload.\n");
}

} // namespace

int
main()
{
    replicaScaling();
    routingPolicies();
    faultInjection();
    return 0;
}
