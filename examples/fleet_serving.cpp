/**
 * @file
 * Fleet serving: a cluster of replica serving engines behind a
 * request router, simulated under conservative time-window
 * synchronization (the router's dispatch latency is the lookahead).
 *
 * Part one scales the replica count at a fixed offered load and
 * shows the fleet absorbing traffic one replica saturates on. Part
 * two compares the routing policies on a skewed trace — round-robin
 * alternates blindly while least-loaded steers long contexts away
 * from busy replicas — and prints the per-replica routing histogram
 * so the difference is visible, not just aggregate.
 */

#include <cstdio>

#include "system/fleet.hh"
#include "workload/arrival.hh"

using namespace pimphony;

namespace {

std::vector<TimedRequest>
makeTrace(std::size_t n, double ratePerSecond, unsigned seed)
{
    std::vector<Request> reqs;
    for (RequestId i = 0; i < n; ++i) {
        // Bimodal contexts: every fourth request is long-context.
        Tokens context = (i % 4 == 0) ? 30000 : 2000;
        reqs.push_back({i, context, 32});
    }
    return poissonArrivals(reqs, ratePerSecond, seed);
}

FleetResult
runFleet(unsigned replicas, RoutePolicy policy,
         const std::vector<TimedRequest> &trace)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());

    FleetOptions options;
    options.replicas = replicas;
    options.policy = policy;
    options.dispatchLatencySeconds = 0.002; // 2 ms router hop
    options.threads = 0;                    // fleet pool on all cores
    options.engine.allocator = AllocatorKind::LazyChunk;
    options.engine.stepModel = StepModel::EventDriven;
    options.engine.prefillChunkTokens = 2048;

    FleetEngine fleet(cluster, model, trace, options);
    return fleet.run();
}

/** Replica scaling at fixed offered load. */
void
replicaScaling()
{
    auto trace = makeTrace(96, 24.0, 17);

    std::printf("Fleet scaling, 96 requests at 24 req/s, "
                "round-robin, 2 ms dispatch\n\n");
    std::printf("%9s %10s %9s %12s %9s\n", "replicas", "tokens/s",
                "makespan", "gap p95 (ms)", "windows");
    for (unsigned replicas : {1u, 2u, 4u, 8u}) {
        auto r = runFleet(replicas, RoutePolicy::RoundRobin, trace);
        std::printf("%9u %10.1f %8.1fs %12.1f %9llu\n", replicas,
                    r.aggregate.tokensPerSecond,
                    r.aggregate.simulatedSeconds,
                    r.aggregate.p95TokenGapSeconds * 1e3,
                    static_cast<unsigned long long>(r.windows));
    }
    std::printf("\nOne replica queues the whole trace; replicas "
                "split it at the router, so\nthe makespan collapses "
                "toward the arrival span and the decode gap tail\n"
                "relaxes. Each fleet run advances its replicas in "
                "parallel.\n");
}

/** Routing policies on the same skewed trace. */
void
routingPolicies()
{
    auto trace = makeTrace(64, 24.0, 23);

    std::printf("\nRouting policy, 4 replicas, bimodal contexts "
                "(every 4th is 30k tokens)\n\n");
    std::printf("%-14s %10s %12s   %s\n", "policy", "tokens/s",
                "gap p95 (ms)", "routed per replica");
    for (RoutePolicy policy :
         {RoutePolicy::RoundRobin, RoutePolicy::LeastLoaded}) {
        auto r = runFleet(4, policy, trace);
        std::printf("%-14s %10.1f %12.1f   [",
                    routePolicyName(policy).c_str(),
                    r.aggregate.tokensPerSecond,
                    r.aggregate.p95TokenGapSeconds * 1e3);
        for (std::size_t i = 0; i < r.routedRequests.size(); ++i)
            std::printf("%s%llu", i ? " " : "",
                        static_cast<unsigned long long>(
                            r.routedRequests[i]));
        std::printf("]\n");
    }
    std::printf("\nRound-robin sends every 4th (long) request to the "
                "same rotation slot;\nleast-loaded reads queued "
                "tokens at each window barrier and routes around\n"
                "replicas still chewing a 30k-token prefill.\n");
}

} // namespace

int
main()
{
    replicaScaling();
    routingPolicies();
    return 0;
}
