/**
 * @file
 * Long-context serving walkthrough: drives the serving engine
 * directly on a mixed LV-Eval trace and reports per-technique
 * behaviour -- admission, preemption, the attention/FC time split,
 * and the energy picture. This is the workload the paper's
 * introduction motivates: repository-scale contexts with widely
 * varying lengths.
 */

#include <cstdio>

#include "common/logging.hh"
#include "system/engine.hh"
#include "workload/trace.hh"

using namespace pimphony;

int
main()
{
    setLogThreshold(LogLevel::Warn);

    auto model = LlmConfig::llm72b(true); // 72B, GQA, 128K contexts
    auto cluster = ClusterConfig::centLike(model);
    std::printf("serving %s on %u modules (%llu GiB total)\n",
                model.name.c_str(), cluster.nModules,
                static_cast<unsigned long long>(
                    cluster.totalCapacity() >> 30));

    TraceGenerator gen(TraceTask::LoogleSd, 1234);
    auto requests = gen.generate(48, 64);

    Tokens max_ctx = 0, min_ctx = ~Tokens{0};
    for (const auto &r : requests) {
        max_ctx = std::max(max_ctx, r.contextTokens);
        min_ctx = std::min(min_ctx, r.contextTokens);
    }
    std::printf("trace: %zu requests, context %llu..%llu tokens, "
                "64 generated tokens each\n\n",
                requests.size(),
                static_cast<unsigned long long>(min_ctx),
                static_cast<unsigned long long>(max_ctx));

    for (auto options :
         {PimphonyOptions::baseline(), PimphonyOptions::all()}) {
        auto result = runServing(cluster, model, requests, options);
        double attn_share =
            result.attentionSeconds /
            (result.attentionSeconds + result.fcSeconds);
        double attn_energy = result.attentionEnergy.total();
        std::printf("[%s]\n", options.label().c_str());
        std::printf("  throughput       %.1f tokens/s\n",
                    result.tokensPerSecond);
        std::printf("  completed        %llu requests "
                    "(%llu preemptions, %llu rejected)\n",
                    static_cast<unsigned long long>(
                        result.completedRequests),
                    static_cast<unsigned long long>(result.preemptions),
                    static_cast<unsigned long long>(
                        result.rejectedRequests));
        std::printf("  effective batch  %.1f\n",
                    result.avgEffectiveBatch);
        std::printf("  MAC utilization  %.1f%%\n",
                    result.macUtilization * 100.0);
        std::printf("  time split       %.1f%% attention / %.1f%% FC\n",
                    attn_share * 100.0, (1.0 - attn_share) * 100.0);
        std::printf("  attention energy %.2f J (%.1f%% background)\n\n",
                    attn_energy * 1e-12,
                    result.attentionEnergy.background / attn_energy *
                        100.0);
    }
    return 0;
}
