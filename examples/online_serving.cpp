/**
 * @file
 * Online (open-loop) serving: requests arrive as a Poisson stream and
 * the system must keep up. Sweeps the arrival rate and reports
 * throughput, average/p95 request latency, and the point where the
 * baseline saturates while PIMphony still tracks the offered load --
 * the operational consequence of the paper's throughput gains.
 */

#include <cstdio>

#include "common/logging.hh"
#include "system/engine.hh"
#include "workload/arrival.hh"

using namespace pimphony;

int
main()
{
    setLogThreshold(LogLevel::Warn);

    auto model = LlmConfig::llm7b(true);
    auto base_cluster = ClusterConfig::centLike(model);

    TraceGenerator gen(TraceTask::MultifieldQa, 2024);
    auto requests = gen.generate(64, 32);

    std::printf("open-loop serving, %s, %zu multifieldqa requests, "
                "32 tokens each\n\n",
                model.name.c_str(), requests.size());
    std::printf("%12s  %-14s %10s %12s %12s\n", "offered rate", "config",
                "tokens/s", "avg lat (s)", "p95 lat (s)");

    for (double rate : {1.0, 4.0, 16.0}) {
        auto timed = poissonArrivals(requests, rate, 5);
        for (auto options :
             {PimphonyOptions::baseline(), PimphonyOptions::all()}) {
            auto cluster = base_cluster;
            applyOptions(cluster, options);
            EngineOptions opts;
            opts.allocator = options.dpa ? AllocatorKind::LazyChunk
                                         : AllocatorKind::Static;
            // Open-loop runs use the event-driven core: admission is
            // driven by arrival events instead of lockstep steps.
            opts.stepModel = StepModel::EventDriven;
            ServingEngine engine(cluster, model, timed, opts);
            auto r = engine.run();
            std::printf("%9.1f/s  %-14s %10.1f %12.2f %12.2f\n", rate,
                        options.label().c_str(), r.tokensPerSecond,
                        r.avgRequestLatency, r.p95RequestLatency);
        }
    }
    std::printf("\nat low offered load both configs meet demand and "
                "latency is flat; as the rate\napproaches the "
                "baseline's decode capacity its queue (and p95) "
                "explodes first.\n");
    return 0;
}
