/**
 * @file
 * Online (open-loop) serving: requests arrive as a Poisson stream and
 * the system must keep up. Sweeps the arrival rate and reports
 * throughput, average/p95 request latency, and the point where the
 * baseline saturates while PIMphony still tracks the offered load --
 * the operational consequence of the paper's throughput gains.
 *
 * Part two shows SLO-aware serving end to end: with chunked prefill
 * sharing the xPU timelines, the co-scheduling policy decides how
 * bursty long-context prefills and the decode token-gap SLO trade
 * off (select one via OrchestratorConfig::sched /
 * EngineOptions::sched).
 */

#include <cstdio>

#include "common/logging.hh"
#include "system/engine.hh"
#include "system/sched_policy.hh"
#include "workload/arrival.hh"

using namespace pimphony;

namespace {

/**
 * SLO-aware policy selection: a bursty on/off arrival process (the
 * hard case for a decode token-gap SLO) under each co-scheduling
 * policy. fifo shows the unmanaged gap tail; decode-priority and
 * chunk-preempt shrink it on the timeline itself; slo-admission
 * instead defers prefills whenever the observed p95 gap exceeds the
 * target, trading first-token latency for the decode SLO.
 */
void
policySelection()
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());

    std::vector<Request> reqs;
    for (RequestId i = 0; i < 32; ++i)
        reqs.push_back({i, 30000, 64});
    OnOffTraffic traffic;
    traffic.onRate = 4.0;           // bursts of ~8 requests...
    traffic.meanOnSeconds = 2.0;
    traffic.meanOffSeconds = 4.0;   // ...then silence
    auto timed = onOffArrivals(reqs, traffic, 17);

    const double target_gap = 0.05; // 50 ms decode token-gap SLO

    std::printf("\nSLO-aware co-scheduling, xPU+PIM, 30k-token "
                "contexts, on/off bursts,\nchunked prefill (2048 tok), "
                "decode token-gap target %.0f ms\n\n", target_gap * 1e3);
    std::printf("%-16s %8s %13s %13s %12s %8s\n", "policy", "tokens/s",
                "gap p95 (ms)", "ttft p95 (s)", "fc max (ms)", "defers");
    for (SchedPolicyKind kind : allSchedPolicies()) {
        EngineOptions opts;
        opts.allocator = AllocatorKind::LazyChunk;
        opts.stepModel = StepModel::EventDriven;
        opts.prefillChunkTokens = 2048;
        opts.sched.kind = kind;
        opts.sched.sloTargetGapSeconds = target_gap;
        ServingEngine engine(cluster, model, timed, opts);
        auto r = engine.run();
        std::printf("%-16s %8.1f %13.1f %13.2f %12.1f %8llu%s\n",
                    schedPolicyName(kind).c_str(), r.tokensPerSecond,
                    r.p95TokenGapSeconds * 1e3, r.p95FirstTokenSeconds,
                    r.maxDecodeXpuWaitSeconds * 1e3,
                    static_cast<unsigned long long>(r.sloDeferrals),
                    r.p95TokenGapSeconds <= target_gap ? "  <- meets SLO"
                                                       : "");
    }
    std::printf("\nfifo lets prefill bursts stall decode; "
                "decode-priority caps the stall at one\nchunk, "
                "chunk-preempt at one quantum; slo-admission defers "
                "prefills until the\nobserved gap recovers, at the "
                "cost of the TTFT tail.\n");
}

} // namespace

int
main()
{
    setLogThreshold(LogLevel::Warn);

    auto model = LlmConfig::llm7b(true);
    auto base_cluster = ClusterConfig::centLike(model);

    TraceGenerator gen(TraceTask::MultifieldQa, 2024);
    auto requests = gen.generate(64, 32);

    std::printf("open-loop serving, %s, %zu multifieldqa requests, "
                "32 tokens each\n\n",
                model.name.c_str(), requests.size());
    std::printf("%12s  %-14s %10s %12s %12s\n", "offered rate", "config",
                "tokens/s", "avg lat (s)", "p95 lat (s)");

    for (double rate : {1.0, 4.0, 16.0}) {
        auto timed = poissonArrivals(requests, rate, 5);
        for (auto options :
             {PimphonyOptions::baseline(), PimphonyOptions::all()}) {
            auto cluster = base_cluster;
            applyOptions(cluster, options);
            EngineOptions opts;
            opts.allocator = options.dpa ? AllocatorKind::LazyChunk
                                         : AllocatorKind::Static;
            // Open-loop runs use the event-driven core: admission is
            // driven by arrival events instead of lockstep steps.
            opts.stepModel = StepModel::EventDriven;
            ServingEngine engine(cluster, model, timed, opts);
            auto r = engine.run();
            std::printf("%9.1f/s  %-14s %10.1f %12.2f %12.2f\n", rate,
                        options.label().c_str(), r.tokensPerSecond,
                        r.avgRequestLatency, r.p95RequestLatency);
        }
    }
    std::printf("\nat low offered load both configs meet demand and "
                "latency is flat; as the rate\napproaches the "
                "baseline's decode capacity its queue (and p95) "
                "explodes first.\n");

    policySelection();
    return 0;
}
