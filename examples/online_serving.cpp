/**
 * @file
 * Online (open-loop) serving: requests arrive as a Poisson stream and
 * the system must keep up. Sweeps the arrival rate and reports
 * throughput, average/p95 request latency, and the point where the
 * baseline saturates while PIMphony still tracks the offered load --
 * the operational consequence of the paper's throughput gains.
 *
 * Part two shows SLO-aware serving end to end: with chunked prefill
 * sharing the xPU timelines, the co-scheduling policy decides how
 * bursty long-context prefills and the decode token-gap SLO trade
 * off (select one via OrchestratorConfig::sched /
 * EngineOptions::sched).
 */

#include <cstdio>
#include <unordered_map>

#include "common/logging.hh"
#include "system/engine.hh"
#include "system/sched_policy.hh"
#include "workload/arrival.hh"
#include "workload/spec.hh"

using namespace pimphony;

namespace {

/**
 * SLO-aware policy selection: a bursty on/off arrival process (the
 * hard case for a decode token-gap SLO) under each co-scheduling
 * policy. fifo shows the unmanaged gap tail; decode-priority and
 * chunk-preempt shrink it on the timeline itself; slo-admission
 * instead defers prefills whenever the observed p95 gap exceeds the
 * target, trading first-token latency for the decode SLO.
 */
void
policySelection()
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());

    std::vector<Request> reqs;
    for (RequestId i = 0; i < 32; ++i)
        reqs.push_back({i, 30000, 64});
    OnOffTraffic traffic;
    traffic.onRate = 4.0;           // bursts of ~8 requests...
    traffic.meanOnSeconds = 2.0;
    traffic.meanOffSeconds = 4.0;   // ...then silence
    auto timed = onOffArrivals(reqs, traffic, 17);

    const double target_gap = 0.05; // 50 ms decode token-gap SLO

    std::printf("\nSLO-aware co-scheduling, xPU+PIM, 30k-token "
                "contexts, on/off bursts,\nchunked prefill (2048 tok), "
                "decode token-gap target %.0f ms\n\n", target_gap * 1e3);
    std::printf("%-16s %8s %13s %13s %12s %8s\n", "policy", "tokens/s",
                "gap p95 (ms)", "ttft p95 (s)", "fc max (ms)", "defers");
    for (SchedPolicyKind kind : allSchedPolicies()) {
        EngineOptions opts;
        opts.allocator = AllocatorKind::LazyChunk;
        opts.stepModel = StepModel::EventDriven;
        opts.prefillChunkTokens = 2048;
        opts.sched.kind = kind;
        opts.sched.sloTargetGapSeconds = target_gap;
        ServingEngine engine(cluster, model, timed, opts);
        auto r = engine.run();
        std::printf("%-16s %8.1f %13.1f %13.2f %12.1f %8llu%s\n",
                    schedPolicyName(kind).c_str(), r.tokensPerSecond,
                    r.p95TokenGapSeconds * 1e3, r.p95FirstTokenSeconds,
                    r.maxDecodeXpuWaitSeconds * 1e3,
                    static_cast<unsigned long long>(r.sloDeferrals),
                    r.p95TokenGapSeconds <= target_gap ? "  <- meets SLO"
                                                       : "");
    }
    std::printf("\nfifo lets prefill bursts stall decode; "
                "decode-priority caps the stall at one\nchunk, "
                "chunk-preempt at one quantum; slo-admission defers "
                "prefills until the\nobserved gap recovers, at the "
                "cost of the TTFT tail.\n");
}

/**
 * Multi-tenant tiers: the same bursty trace split into an
 * interactive tier (tier 0, tight gap SLO) and a batch tier (tier 1)
 * for two tenants with equal admission budgets. tier-priority gives
 * tier 0 strict precedence on the xPU timelines — overtaking queued
 * tier-1 decode work and slicing in-flight tier-1 items at the
 * tier quantum — and the engine reports per-tier percentiles and
 * per-tenant occupancy.
 */
void
requestClasses()
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    cluster.plan = ParallelPlan{cluster.nModules / 2, 2};
    applyOptions(cluster, PimphonyOptions::all());

    RequestClass interactive;           // chat: tier 0, 50 ms gap SLO
    interactive.gapSloSeconds = 0.05;
    RequestClass batch;                 // summarization: tier 1
    batch.tier = 1;
    batch.tenant = 1;
    batch.gapSloSeconds = 0.5;

    std::vector<Request> reqs;
    for (RequestId i = 0; i < 32; ++i)
        reqs.push_back({i, 30000, 64});
    assignRequestClassesRoundRobin(reqs, {interactive, batch});
    OnOffTraffic traffic;
    traffic.onRate = 4.0;
    traffic.meanOnSeconds = 2.0;
    traffic.meanOffSeconds = 4.0;
    auto timed = onOffArrivals(reqs, traffic, 17);

    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::EventDriven;
    opts.prefillChunkTokens = 2048;
    opts.sched.kind = SchedPolicyKind::TierPriority;
    opts.tenantBudgets = {{0, 0.5}, {1, 0.5}};
    auto r = ServingEngine(cluster, model, timed, opts).run();

    std::printf("\nrequest classes under tier-priority (PP=2, equal "
                "tenant budgets):\n\n");
    std::printf("%6s %10s %14s %14s %11s\n", "tier", "requests",
                "gap p95 (ms)", "ttft p95 (s)", "target met");
    for (const auto &cl : r.classLatencies)
        std::printf("%6u %10llu %14.1f %14.2f %11s\n", cl.tier,
                    static_cast<unsigned long long>(cl.requests),
                    cl.p95TokenGapSeconds * 1e3,
                    cl.p95FirstTokenSeconds,
                    cl.p95TokenGapSeconds <= cl.gapSloTargetSeconds
                        ? "yes" : "no");
    std::printf("\n%8s %10s %12s %12s\n", "tenant", "budget",
                "avg share", "peak share");
    for (const auto &to : r.tenantOccupancy)
        std::printf("%8u %9.0f%% %11.1f%% %11.1f%%\n", to.tenant,
                    to.budgetShare * 1e2, to.avgTokenShare * 1e2,
                    to.peakTokenShare * 1e2);
    std::printf("\ndecode-side preemption sliced lower-tier work %llu "
                "times (charge conserved);\ntier inversions observed: "
                "%llu, worst inversion wait %.1f ms\n",
                static_cast<unsigned long long>(r.decodePreemptSlices),
                static_cast<unsigned long long>(r.tierInversions),
                r.maxTierInversionWaitSeconds * 1e3);
}

/**
 * Multi-turn chat sessions through the declarative WorkloadSpec API:
 * turn 0 of each session arrives on a diurnal rate curve, later
 * turns are released closed-loop by the engine (predecessor
 * completion + exponential think time) with the conversation history
 * carried into each turn's context. The per-turn TTFT column shows
 * the cost of that growing history: every turn re-prefills a longer
 * context, so first-token latency climbs turn over turn.
 */
void
multiTurnSessions()
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());

    WorkloadSpec spec;
    spec.count = 8;                        // sessions, not requests
    spec.length.kind = LengthSourceKind::Pairs;
    spec.length.pairs = {{4000, 32}, {8000, 32}};
    spec.arrival.kind = ArrivalKind::RateCurve;
    spec.arrival.curve =
        RateCurve::fromRates({2.0, 0.5, 1.0}, 4.0); // req/s per 4 s
    spec.session.turns = 3;
    spec.session.thinkMeanSeconds = 0.5;
    auto built = buildWorkload(spec, 7);

    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::EventDriven;
    opts.prefillChunkTokens = 2048;
    ServingEngine engine(cluster, model, built.initial, opts);
    engine.declareSessionTurns(built.sessions);
    auto r = engine.run();

    std::unordered_map<RequestId, unsigned> turn_of;
    for (const auto &tr : built.initial)
        turn_of[tr.request.id] = tr.request.turn;
    for (const auto &kv : built.sessions)
        turn_of[kv.second.request.id] = kv.second.request.turn;

    std::printf("\nmulti-turn sessions (%zu sessions x %u turns, "
                "diurnal arrivals, history carried):\n\n",
                built.initial.size(), spec.session.turns);
    std::printf("%6s %10s %15s\n", "turn", "requests", "avg ttft (s)");
    for (unsigned turn = 0; turn < spec.session.turns; ++turn) {
        double sum = 0.0;
        std::size_t n = 0;
        for (const auto &kv : r.firstTokenLatency)
            if (turn_of.at(kv.first) == turn) {
                sum += kv.second;
                ++n;
            }
        std::printf("%6u %10zu %15.2f\n", turn, n,
                    n ? sum / static_cast<double>(n) : 0.0);
    }
    std::printf("\neach turn re-prefills the full session history, so "
                "TTFT grows with the\nconversation; %llu of %llu turns "
                "completed closed-loop.\n",
                static_cast<unsigned long long>(r.completedRequests),
                static_cast<unsigned long long>(
                    built.initial.size() + built.sessions.size()));
}

} // namespace

int
main()
{
    setLogThreshold(LogLevel::Warn);

    auto model = LlmConfig::llm7b(true);
    auto base_cluster = ClusterConfig::centLike(model);

    TraceGenerator gen(TraceTask::MultifieldQa, 2024);
    auto requests = gen.generate(64, 32);

    std::printf("open-loop serving, %s, %zu multifieldqa requests, "
                "32 tokens each\n\n",
                model.name.c_str(), requests.size());
    std::printf("%12s  %-14s %10s %12s %12s\n", "offered rate", "config",
                "tokens/s", "avg lat (s)", "p95 lat (s)");

    for (double rate : {1.0, 4.0, 16.0}) {
        auto timed = poissonArrivals(requests, rate, 5);
        for (auto options :
             {PimphonyOptions::baseline(), PimphonyOptions::all()}) {
            auto cluster = base_cluster;
            applyOptions(cluster, options);
            EngineOptions opts;
            opts.allocator = options.dpa ? AllocatorKind::LazyChunk
                                         : AllocatorKind::Static;
            // Open-loop runs use the event-driven core: admission is
            // driven by arrival events instead of lockstep steps.
            opts.stepModel = StepModel::EventDriven;
            ServingEngine engine(cluster, model, timed, opts);
            auto r = engine.run();
            std::printf("%9.1f/s  %-14s %10.1f %12.2f %12.2f\n", rate,
                        options.label().c_str(), r.tokensPerSecond,
                        r.avgRequestLatency, r.p95RequestLatency);
        }
    }
    std::printf("\nat low offered load both configs meet demand and "
                "latency is flat; as the rate\napproaches the "
                "baseline's decode capacity its queue (and p95) "
                "explodes first.\n");

    policySelection();
    requestClasses();
    multiTurnSessions();
    return 0;
}
