/**
 * @file
 * Quickstart: evaluate PIMphony on a long-context workload in a few
 * lines.
 *
 * Builds a CENT-like PIM-only system for LLM-7B-128K (GQA), runs the
 * LV-Eval multifieldqa trace with and without the PIMphony technique
 * stack, and prints throughput, utilization and capacity metrics.
 */

#include <cstdio>

#include "common/logging.hh"
#include "core/orchestrator.hh"

using namespace pimphony;

int
main()
{
    setLogThreshold(LogLevel::Warn);

    OrchestratorConfig config;
    config.system = SystemKind::PimOnly;            // CENT-like host
    config.model = LlmConfig::llm7b(true);          // LLM-7B, GQA, 128K
    config.plan = ParallelPlan{8, 1};               // 8 modules, TP=8
    config.nRequests = 32;
    config.decodeTokens = 64;

    std::printf("PIMphony quickstart: %s on %s, %s\n",
                config.model.name.c_str(),
                systemKindName(config.system).c_str(),
                config.plan.toString().c_str());
    std::printf("%-14s %10s %10s %10s %10s\n", "config", "tokens/s",
                "MAC util", "cap util", "batch");

    double baseline = 0.0;
    for (auto options :
         {PimphonyOptions::baseline(), PimphonyOptions{true, false, false},
          PimphonyOptions{true, true, false}, PimphonyOptions::all()}) {
        config.options = options;
        PimphonyOrchestrator orchestrator(config);
        auto result = orchestrator.evaluate(TraceTask::MultifieldQa);
        if (baseline == 0.0)
            baseline = result.engine.tokensPerSecond;
        std::printf("%-14s %10.1f %9.1f%% %9.1f%% %10.1f   (%.2fx)\n",
                    options.label().c_str(),
                    result.engine.tokensPerSecond,
                    result.engine.macUtilization * 100.0,
                    result.engine.capacityUtilization * 100.0,
                    result.engine.avgEffectiveBatch,
                    result.engine.tokensPerSecond / baseline);
    }
    return 0;
}
