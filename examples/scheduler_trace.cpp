/**
 * @file
 * Scheduler deep-dive: lower one GQA attention kernel to its PIM
 * command stream, schedule it under all three controllers, and print
 * an ASCII occupancy timeline plus the latency breakdown -- a
 * miniature of the paper's Fig. 7/9 analysis you can edit and rerun.
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "kernels/attention.hh"
#include "pim/scheduler.hh"

using namespace pimphony;

namespace {

void
asciiTimeline(const ScheduleResult &r, Cycle horizon)
{
    // One lane per command kind; '#' marks occupancy.
    const int width = 100;
    std::string lanes[3];
    for (auto &l : lanes)
        l.assign(width, '.');
    for (const auto &sc : r.timeline) {
        if (sc.issue >= horizon)
            continue;
        int lane = sc.cmd.kind == CommandKind::WrInp ? 0
            : sc.cmd.kind == CommandKind::Mac        ? 1
                                                     : 2;
        int lo = static_cast<int>(sc.issue * width / horizon);
        int hi = static_cast<int>(sc.complete * width / horizon);
        hi = std::min(hi, width - 1);
        for (int i = lo; i <= hi; ++i)
            lanes[lane][static_cast<std::size_t>(i)] = '#';
    }
    std::printf("    WR-INP |%s|\n", lanes[0].c_str());
    std::printf("    MAC    |%s|\n", lanes[1].c_str());
    std::printf("    RD-OUT |%s|\n", lanes[2].c_str());
}

} // namespace

int
main()
{
    setLogThreshold(LogLevel::Warn);

    AttentionSpec spec;
    spec.tokens = 512; // small enough to see the pipeline
    spec.headDim = 128;
    spec.gqaGroup = 4;
    spec.rowReuse = true;

    std::printf("QK^T kernel: %llu tokens, d_h=%u, GQA g=%u, "
                "row-reuse mapping\n\n",
                static_cast<unsigned long long>(spec.tokens),
                spec.headDim, spec.gqaGroup);

    Cycle horizon = 0;
    for (auto kind : {SchedulerKind::Static, SchedulerKind::PingPong,
                      SchedulerKind::Dcs}) {
        bool pingpong = kind == SchedulerKind::PingPong;
        AimTimingParams params = kind == SchedulerKind::Static
            ? AimTimingParams::aimx()
            : AimTimingParams::aimxWithObuf(16);
        auto stream = buildQktStream(spec, params, pingpong);
        auto r = makeScheduler(kind, params)->schedule(stream, true);
        if (horizon == 0)
            horizon = r.makespan; // scale all lanes to the static run

        std::printf("[%s] %llu commands, %llu cycles, MAC util %.1f%%\n",
                    schedulerName(kind).c_str(),
                    static_cast<unsigned long long>(stream.size()),
                    static_cast<unsigned long long>(r.makespan),
                    r.macUtilization * 100.0);
        asciiTimeline(r, horizon);
        const auto &b = r.breakdown;
        std::printf("    breakdown: MAC %llu | ACT/PRE %llu | REF %llu "
                    "| DT-GBuf %llu | DT-OutReg %llu | pipeline %llu\n\n",
                    static_cast<unsigned long long>(b.macCycles),
                    static_cast<unsigned long long>(b.actPreCycles),
                    static_cast<unsigned long long>(b.refreshCycles),
                    static_cast<unsigned long long>(b.dtGbufCycles),
                    static_cast<unsigned long long>(b.dtOutregCycles),
                    static_cast<unsigned long long>(
                        b.pipelinePenaltyCycles));
    }
    return 0;
}
