#include "alloc/kv_allocator.hh"

#include "common/logging.hh"

namespace pimphony {

std::string
allocatorName(AllocatorKind kind)
{
    switch (kind) {
      case AllocatorKind::Static:    return "static";
      case AllocatorKind::LazyChunk: return "dpa-lazy";
    }
    return "?";
}

// --- StaticKvAllocator -------------------------------------------------

bool
StaticKvAllocator::tryAdmit(RequestId id, Tokens tokens)
{
    if (tokens_.count(id))
        panic("request %u admitted twice", id);
    if (tokens > tMax_)
        return false; // cannot serve beyond the compiled maximum
    if (reserved_ + reservationBytes() > capacity_)
        return false;
    reserved_ += reservationBytes();
    tokens_[id] = tokens;
    totalTokens_ += tokens;
    ++host_;
    return true;
}

bool
StaticKvAllocator::grow(RequestId id, Tokens tokens)
{
    auto it = tokens_.find(id);
    if (it == tokens_.end())
        panic("grow on unknown request %u", id);
    if (tokens > tMax_)
        return false; // reservation exhausted
    totalTokens_ += tokens - it->second;
    it->second = tokens;
    return true; // space was pre-reserved; no host involvement
}

void
StaticKvAllocator::release(RequestId id)
{
    auto it = tokens_.find(id);
    if (it == tokens_.end())
        panic("release on unknown request %u", id);
    totalTokens_ -= it->second;
    tokens_.erase(it);
    reserved_ -= reservationBytes();
    ++host_;
}

Bytes
StaticKvAllocator::usedBytes() const
{
    // Incremental total: the engine reads this per accounting slice,
    // so the former O(active) walk was a per-cycle cost. Integer
    // arithmetic distributes, so the product of the running token
    // sum is exactly the old per-request sum.
    return bytesPerToken_ * totalTokens_;
}

// --- LazyChunkAllocator ------------------------------------------------

LazyChunkAllocator::LazyChunkAllocator(Bytes capacity, Bytes bytes_per_token,
                                       Tokens t_max, Bytes chunk_bytes)
    : KvAllocator(capacity, bytes_per_token, t_max), chunk_(chunk_bytes),
      totalChunks_(capacity / chunk_bytes)
{
    if (chunk_bytes == 0)
        fatal("chunk size must be positive");
}

std::uint64_t
LazyChunkAllocator::chunksFor(Tokens tokens) const
{
    return ceilDiv<std::uint64_t>(bytesPerToken_ * tokens, chunk_);
}

bool
LazyChunkAllocator::tryAdmit(RequestId id, Tokens tokens)
{
    if (tokens_.count(id))
        panic("request %u admitted twice", id);
    std::uint64_t need = chunksFor(tokens);
    if (chunksInUse_ + need > totalChunks_)
        return false;
    chunksInUse_ += need;
    chunks_[id] = need;
    tokens_[id] = tokens;
    totalTokens_ += tokens;
    ++host_; // host installs the VA2PA mapping for the new request
    return true;
}

bool
LazyChunkAllocator::grow(RequestId id, Tokens tokens)
{
    auto it = tokens_.find(id);
    if (it == tokens_.end())
        panic("grow on unknown request %u", id);
    // One probe for the chunk count: grow runs once per decoded
    // token, so the repeated operator[] probes showed up at sweep
    // scale.
    std::uint64_t &have = chunks_[id];
    std::uint64_t need = chunksFor(tokens);
    if (need > have) {
        if (chunksInUse_ + (need - have) > totalChunks_)
            return false;
        chunksInUse_ += need - have;
        have = need;
        ++host_; // chunk-granular: host touched only on new chunks
    }
    totalTokens_ += tokens - it->second;
    it->second = tokens;
    return true;
}

void
LazyChunkAllocator::release(RequestId id)
{
    auto it = tokens_.find(id);
    if (it == tokens_.end())
        panic("release on unknown request %u", id);
    chunksInUse_ -= chunks_[id];
    chunks_.erase(id);
    totalTokens_ -= it->second;
    tokens_.erase(it);
    ++host_;
}

Bytes
LazyChunkAllocator::usedBytes() const
{
    // Incremental total (see StaticKvAllocator::usedBytes).
    return bytesPerToken_ * totalTokens_;
}

std::unique_ptr<KvAllocator>
makeAllocator(AllocatorKind kind, Bytes capacity, Bytes bytes_per_token,
              Tokens t_max)
{
    switch (kind) {
      case AllocatorKind::Static:
        return std::make_unique<StaticKvAllocator>(capacity,
                                                   bytes_per_token, t_max);
      case AllocatorKind::LazyChunk:
        return std::make_unique<LazyChunkAllocator>(capacity,
                                                    bytes_per_token, t_max);
    }
    panic("unknown allocator kind");
}

} // namespace pimphony
