/**
 * @file
 * KV-cache allocators for a PIM module (Sec. VI / Fig. 19).
 *
 * StaticKvAllocator models conventional PIM memory management:
 * because command streams embed physical addresses at compile time,
 * every admitted request must reserve kvBytesPerToken x T_max up
 * front, regardless of its actual context.
 *
 * LazyChunkAllocator models DPA-backed management: memory is
 * allocated in fixed chunks (1 MiB by default) on demand as the KV
 * cache grows, mapped through the on-module VA2PA table; internal
 * fragmentation is limited to the last chunk of each request.
 */

#ifndef PIMPHONY_ALLOC_KV_ALLOCATOR_HH
#define PIMPHONY_ALLOC_KV_ALLOCATOR_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/stats.hh"
#include "common/types.hh"
#include "common/units.hh"

namespace pimphony {

enum class AllocatorKind {
    Static,
    LazyChunk,
};

std::string allocatorName(AllocatorKind kind);

class KvAllocator
{
  public:
    /**
     * @param capacity usable KV capacity of the module (weights
     *        already subtracted by the caller).
     * @param bytes_per_token model-dependent KV growth rate.
     * @param t_max the compile-time maximum context length.
     */
    KvAllocator(Bytes capacity, Bytes bytes_per_token, Tokens t_max)
        : capacity_(capacity), bytesPerToken_(bytes_per_token),
          tMax_(t_max)
    {
    }

    virtual ~KvAllocator() = default;

    /** Try to admit a request at @p tokens context; reserves memory. */
    virtual bool tryAdmit(RequestId id, Tokens tokens) = 0;

    /** Grow a request to @p tokens (one per decode step). @return
     *  false when the module is out of memory. */
    virtual bool grow(RequestId id, Tokens tokens) = 0;

    /** Release all memory of a completed request. */
    virtual void release(RequestId id) = 0;

    /** Bytes reserved (unusable by other requests). */
    virtual Bytes reservedBytes() const = 0;

    /** Bytes actually holding KV data. */
    virtual Bytes usedBytes() const = 0;

    /** Host<->PIM management interactions so far (admit/grow/release
     *  messages that DPA batches at chunk granularity). */
    virtual std::uint64_t hostInterventions() const = 0;

    Bytes capacity() const { return capacity_; }
    Bytes bytesPerToken() const { return bytesPerToken_; }
    Tokens tMax() const { return tMax_; }

    /** Fraction of capacity holding real KV data (Fig. 19 metric). */
    double
    capacityUtilization() const
    {
        return safeRatio(static_cast<double>(usedBytes()),
                         static_cast<double>(capacity_));
    }

    double
    reservedFraction() const
    {
        return safeRatio(static_cast<double>(reservedBytes()),
                         static_cast<double>(capacity_));
    }

  protected:
    Bytes capacity_;
    Bytes bytesPerToken_;
    Tokens tMax_;
};

class StaticKvAllocator : public KvAllocator
{
  public:
    using KvAllocator::KvAllocator;

    bool tryAdmit(RequestId id, Tokens tokens) override;
    bool grow(RequestId id, Tokens tokens) override;
    void release(RequestId id) override;
    Bytes reservedBytes() const override { return reserved_; }
    Bytes usedBytes() const override;
    std::uint64_t hostInterventions() const override { return host_; }

  private:
    Bytes reservationBytes() const { return bytesPerToken_ * tMax_; }

    std::unordered_map<RequestId, Tokens> tokens_;
    Tokens totalTokens_ = 0; ///< running sum of tokens_ values
    Bytes reserved_ = 0;
    std::uint64_t host_ = 0;
};

class LazyChunkAllocator : public KvAllocator
{
  public:
    LazyChunkAllocator(Bytes capacity, Bytes bytes_per_token, Tokens t_max,
                       Bytes chunk_bytes = 1_MiB);

    bool tryAdmit(RequestId id, Tokens tokens) override;
    bool grow(RequestId id, Tokens tokens) override;
    void release(RequestId id) override;
    Bytes reservedBytes() const override { return chunksInUse_ * chunk_; }
    Bytes usedBytes() const override;
    std::uint64_t hostInterventions() const override { return host_; }

    Bytes chunkBytes() const { return chunk_; }
    std::uint64_t chunksInUse() const { return chunksInUse_; }
    std::uint64_t totalChunks() const { return totalChunks_; }

    /** Chunks needed to back @p tokens of KV (last chunk may be
     *  partially filled). Exposed for the prefix cache, which splits
     *  custody of a request's KV between shared and unique chunks. */
    std::uint64_t chunksFor(Tokens tokens) const;

    /** VA2PA table footprint: one entry (8 B) per mapped chunk. */
    Bytes va2paBytes() const { return chunksInUse_ * 8; }

  private:
    Bytes chunk_;
    std::unordered_map<RequestId, Tokens> tokens_;
    Tokens totalTokens_ = 0; ///< running sum of tokens_ values
    std::unordered_map<RequestId, std::uint64_t> chunks_;
    std::uint64_t chunksInUse_ = 0;
    std::uint64_t totalChunks_;
    std::uint64_t host_ = 0;
};

/** Factory. */
std::unique_ptr<KvAllocator> makeAllocator(AllocatorKind kind,
                                           Bytes capacity,
                                           Bytes bytes_per_token,
                                           Tokens t_max);

} // namespace pimphony

#endif // PIMPHONY_ALLOC_KV_ALLOCATOR_HH
