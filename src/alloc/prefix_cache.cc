#include "alloc/prefix_cache.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pimphony {

namespace {

/** splitmix64 finalizer: well-mixed 64-bit keys from hashes/ids. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::string
prefixEvictPolicyName(PrefixEvictPolicy policy)
{
    switch (policy) {
      case PrefixEvictPolicy::Lru:
        return "lru";
      case PrefixEvictPolicy::TierWeighted:
        return "tier-weighted";
    }
    return "unknown";
}

PrefixCache::PrefixCache(LazyChunkAllocator &allocator,
                         const PrefixCacheOptions &options)
    : alloc_(allocator), options_(options)
{
    if (options_.maxShare < 0.0 || options_.maxShare > 1.0)
        fatal("prefix cache maxShare %.3f outside [0, 1]",
              options_.maxShare);
}

PrefixCache::~PrefixCache() { clear(); }

std::uint64_t
PrefixCache::prefixKey(std::uint64_t prefix_hash)
{
    std::uint64_t k = mix64(prefix_hash ^ 0x5851f42d4c957f2dull);
    return k ? k : 1;
}

std::uint64_t
PrefixCache::sessionKey(SessionId session, std::uint32_t turn)
{
    std::uint64_t k =
        mix64((static_cast<std::uint64_t>(session) << 32) | turn);
    k = mix64(k ^ 0x6a09e667f3bcc909ull);
    return k ? k : 1;
}

Tokens
PrefixCache::floorChunkTokens(Tokens tokens) const
{
    Bytes bpt = alloc_.bytesPerToken();
    Bytes chunk = alloc_.chunkBytes();
    std::uint64_t full_chunks = (bpt * tokens) / chunk;
    return (full_chunks * chunk) / bpt;
}

Tokens
PrefixCache::peek(std::uint64_t key) const
{
    auto it = entries_.find(key);
    if (it == entries_.end() || !it->second.ready)
        return 0;
    return it->second.shareTokens;
}

Tokens
PrefixCache::acquire(std::uint64_t key, double now, unsigned tier)
{
    auto it = entries_.find(key);
    if (it == entries_.end() || !it->second.ready ||
        it->second.shareTokens == 0)
        return 0;
    Entry &e = it->second;
    ++e.refs;
    ++e.consumers;
    e.lastUse = now;
    e.tier = std::min(e.tier, tier);
    return e.shareTokens;
}

void
PrefixCache::release(std::uint64_t key)
{
    dropRef(key, /*consumer=*/false);
}

void
PrefixCache::releaseConsumer(std::uint64_t key)
{
    dropRef(key, /*consumer=*/true);
}

bool
PrefixCache::publish(std::uint64_t key, std::uint64_t parent_key,
                     Tokens parent_share, Tokens total_tokens,
                     Tokens own_tokens, double now, unsigned tier,
                     bool hold, bool ready)
{
    if (entries_.count(key))
        return false;
    std::uint64_t chunks = alloc_.chunksFor(own_tokens);

    // Custody cap: the tree may hold at most maxShare of capacity.
    auto cap = static_cast<std::uint64_t>(
        options_.maxShare * static_cast<double>(alloc_.totalChunks()));
    if (heldChunks_ + chunks > cap &&
        !evictChunks(heldChunks_ + chunks - cap))
        return false;

    RequestId holder = nextHolder_++;
    if (!alloc_.tryAdmit(holder, own_tokens)) {
        if (!evictFor(chunks * alloc_.chunkBytes()) ||
            !alloc_.tryAdmit(holder, own_tokens))
            return false;
    }

    Entry e;
    e.parent = parent_key;
    e.tokens = total_tokens;
    e.shareTokens = parent_share + floorChunkTokens(own_tokens);
    e.ownTokens = own_tokens;
    e.chunks = chunks;
    e.refs = hold ? 1 : 0;
    e.ready = ready;
    e.tier = tier;
    e.lastUse = now;
    e.holder = holder;
    if (parent_key) {
        auto pit = entries_.find(parent_key);
        if (pit == entries_.end())
            panic("prefix cache: publish under unknown parent");
        ++pit->second.refs;
    }
    entries_.emplace(key, e);
    heldChunks_ += chunks;
    ++stats_.publishes;
    return true;
}

void
PrefixCache::markReady(std::uint64_t key, double now)
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        return; // entry evicted/cleared while the prefill ran
    it->second.ready = true;
    it->second.lastUse = now;
}

void
PrefixCache::dropRef(std::uint64_t key, bool consumer)
{
    auto it = entries_.find(key);
    if (it == entries_.end())
        panic("prefix cache: release of unknown entry");
    Entry &e = it->second;
    if (e.refs == 0)
        panic("prefix cache: refcount underflow");
    if (consumer) {
        if (e.consumers == 0)
            panic("prefix cache: consumer refcount underflow");
        --e.consumers;
    } else if (e.refs == e.consumers) {
        panic("prefix cache: structural release of a consumer ref");
    }
    --e.refs;
    // A publisher abandoning a never-readied entry (preemption, kill)
    // leaves it useless: nobody can ever consume it, so drop it now.
    if (e.refs == 0 && !e.ready)
        erase(it, false);
}

void
PrefixCache::erase(EntryMap::iterator it, bool count_eviction)
{
    Entry victim = it->second;
    entries_.erase(it);
    alloc_.release(victim.holder);
    heldChunks_ -= victim.chunks;
    if (count_eviction)
        ++stats_.evictions;
    if (victim.parent)
        dropRef(victim.parent, /*consumer=*/false);
}

PrefixCache::EntryMap::iterator
PrefixCache::pickVictim()
{
    auto best = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.refs != 0)
            continue;
        if (best == entries_.end()) {
            best = it;
            continue;
        }
        const Entry &cand = it->second;
        const Entry &cur = best->second;
        bool better;
        if (options_.evict == PrefixEvictPolicy::TierWeighted &&
            cand.tier != cur.tier) {
            // Higher tier number = less latency-critical consumers:
            // shed those prefixes first.
            better = cand.tier > cur.tier;
        } else {
            better = cand.lastUse < cur.lastUse;
        }
        if (better)
            best = it;
    }
    return best;
}

bool
PrefixCache::evictChunks(std::uint64_t chunks_to_free)
{
    // Invariant: erase() can cascade — dropping the victim's child
    // reference may erase an un-ready parent too — so each iteration
    // re-scans entries_ from scratch (pickVictim) and no iterator is
    // held across an erase(). Keep it that way if optimizing.
    std::uint64_t freed = 0;
    while (freed < chunks_to_free) {
        auto victim = pickVictim();
        if (victim == entries_.end())
            return false;
        freed += victim->second.chunks;
        erase(victim, true);
    }
    return true;
}

bool
PrefixCache::evictFor(Bytes bytes_needed)
{
    // Same re-scan invariant as evictChunks(): erase() may cascade
    // into parents, so never hold an iterator across it.
    while (alloc_.capacity() < alloc_.reservedBytes() + bytes_needed) {
        auto victim = pickVictim();
        if (victim == entries_.end())
            return false;
        erase(victim, true);
    }
    return true;
}

void
PrefixCache::clear()
{
    for (auto &kv : entries_)
        alloc_.release(kv.second.holder);
    entries_.clear();
    heldChunks_ = 0;
}

} // namespace pimphony
