/**
 * @file
 * Copy-on-write prefix sharing over the paged KV allocator.
 *
 * PIMphony's DPA already pages KV state in fixed chunks
 * (LazyChunkAllocator); this layer adds a refcounted prefix tree on
 * top of it so that requests opening with an identical token prefix
 * — a shared system prompt, or the retained history of a multi-turn
 * session — map the prefix's chunks instead of recomputing them.
 *
 * Tree semantics
 *  - Each entry caches an absolute prefix of `tokens` tokens; a
 *    child entry extends its parent by `ownTokens` and holds chunk
 *    custody only for that delta (session turn k+1 chains onto the
 *    entry retained at turn k).
 *  - Sharing is chunk-granular and copy-on-write: a consumer reuses
 *    only the tokens fully contained in whole chunks
 *    (`shareTokens`); the partially filled tail chunk belongs to the
 *    writer and is re-prefilled by the consumer — that re-prefill IS
 *    the modelled CoW copy.
 *  - Entries are refcounted: every admitted consumer and every child
 *    entry holds a reference, so eviction can only take idle leaves
 *    and the tree never dangles.
 *
 * Custody is real, not virtual: every entry reserves its chunks
 * through the underlying LazyChunkAllocator under a synthetic
 * RequestId, so `allocator.reservedBytes() == shared + unique` holds
 * structurally and capacity pressure (admission headroom, Fig. 19
 * utilization) automatically includes the cache.
 */

#ifndef PIMPHONY_ALLOC_PREFIX_CACHE_HH
#define PIMPHONY_ALLOC_PREFIX_CACHE_HH

#include <cstdint>
#include <map>
#include <string>

#include "alloc/kv_allocator.hh"
#include "common/types.hh"

namespace pimphony {

/** Victim order when the cache must shed idle entries. */
enum class PrefixEvictPolicy {
    Lru,          ///< least-recently-used entry first
    TierWeighted, ///< highest (least critical) consumer tier first,
                  ///< LRU within a tier
};

std::string prefixEvictPolicyName(PrefixEvictPolicy policy);

/** Knobs for the prefix-sharing subsystem (ServingOptions member). */
struct PrefixCacheOptions
{
    /** Master switch; off reproduces the cache-less engine bit for
     *  bit. Requires the LazyChunk allocator. */
    bool enabled = false;

    PrefixEvictPolicy evict = PrefixEvictPolicy::Lru;

    /** Cap on cache chunk custody as a fraction of KV capacity;
     *  publishes beyond it evict idle entries or are skipped. */
    double maxShare = 0.5;

    /** Retain a completed turn's KV for the declared next turn. */
    bool sessionReuse = true;
};

struct PrefixCacheStats
{
    std::uint64_t hits = 0;      ///< admissions served from the tree
    std::uint64_t misses = 0;    ///< reusable keys that found nothing
    std::uint64_t publishes = 0; ///< entries ever inserted
    std::uint64_t evictions = 0; ///< entries evicted under pressure
};

class PrefixCache
{
  public:
    PrefixCache(LazyChunkAllocator &allocator,
                const PrefixCacheOptions &options);
    ~PrefixCache();

    /** Key for a workload-declared prefix hash. */
    static std::uint64_t prefixKey(std::uint64_t prefix_hash);

    /** Key for the KV retained at (session, turn). */
    static std::uint64_t sessionKey(SessionId session, std::uint32_t turn);

    /** Shareable (whole-chunk) tokens under @p key; 0 on miss or
     *  while the publisher's prefill is still in flight. Read-only:
     *  no stats, no LRU touch — safe for routing probes. */
    Tokens peek(std::uint64_t key) const;

    /** Take a consumer reference on a ready entry. @return its
     *  shareable tokens (0 and no reference on miss). Does not count
     *  stats: an admission may pin, get blocked, and release several
     *  times before it commits — call noteHit() once at commit. */
    Tokens acquire(std::uint64_t key, double now, unsigned tier);

    /** Count a committed admission served from the tree. */
    void noteHit() { ++stats_.hits; }

    /** Count an admission that had a reusable key but found nothing. */
    void noteMiss() { ++stats_.misses; }

    /** Drop a structural reference (publisher's hold, or child entry
     *  evicted). A never-readied entry whose publisher lets go is
     *  erased. */
    void release(std::uint64_t key);

    /** Drop a consumer reference taken by acquire(). */
    void releaseConsumer(std::uint64_t key);

    /**
     * Insert an entry caching @p total_tokens under @p key, holding
     * chunk custody for the last @p own_tokens of it (the rest is
     * covered by @p parent_key, of which @p parent_share tokens are
     * shareable). Evicts idle entries if needed to fit under the
     * maxShare cap and the allocator's capacity.
     *
     * @param hold  the caller keeps a reference (a live publisher
     *              whose own KV uses these chunks); released later.
     * @param ready entry is immediately consumable; pass false while
     *              the publisher's chunked prefill is in flight and
     *              markReady() afterwards.
     * @return false (and no entry) if @p key exists or memory could
     *         not be found — the caller simply forgoes caching.
     */
    bool publish(std::uint64_t key, std::uint64_t parent_key,
                 Tokens parent_share, Tokens total_tokens,
                 Tokens own_tokens, double now, unsigned tier, bool hold,
                 bool ready);

    /** Publisher's prefill finished: open the entry for sharing. */
    void markReady(std::uint64_t key, double now);

    /** Entry exists under @p key (ready or not). */
    bool knows(std::uint64_t key) const { return entries_.count(key) != 0; }

    /** Current reference count under @p key (0 if absent): admitted
     *  consumers plus structural holds (publisher, child entries). */
    std::uint32_t refsOf(std::uint64_t key) const
    {
        auto it = entries_.find(key);
        return it == entries_.end() ? 0 : it->second.refs;
    }

    /** Admitted consumer references under @p key (0 if absent) — the
     *  divisor base for fractional tenant charging. Structural refs
     *  (publisher hold, session-chained children) are excluded so
     *  they never dilute a consumer's charge. */
    std::uint32_t consumersOf(std::uint64_t key) const
    {
        auto it = entries_.find(key);
        return it == entries_.end() ? 0 : it->second.consumers;
    }

    /** Evict idle entries (policy order) until the allocator has
     *  @p bytes_needed of headroom. @return true if it does. */
    bool evictFor(Bytes bytes_needed);

    /** Drop every entry and all chunk custody (engine evacuation). */
    void clear();

    /** Chunk custody held by the tree — the "shared" bytes. */
    Bytes heldBytes() const { return heldChunks_ * alloc_.chunkBytes(); }
    std::uint64_t heldChunks() const { return heldChunks_; }
    std::size_t entryCount() const { return entries_.size(); }
    const PrefixCacheStats &stats() const { return stats_; }

    /** Tokens fully contained in whole chunks — the shareable part
     *  of a @p tokens -long prefix under CoW. */
    Tokens floorChunkTokens(Tokens tokens) const;

  private:
    struct Entry
    {
        std::uint64_t parent = 0; ///< parent key (0 = tree root)
        Tokens tokens = 0;        ///< absolute cached prefix length
        Tokens shareTokens = 0;   ///< whole-chunk tokens consumers reuse
        Tokens ownTokens = 0;     ///< delta tokens this entry backs
        std::uint64_t chunks = 0; ///< chunk custody for ownTokens
        std::uint32_t refs = 0;   ///< consumers + structural holds
        std::uint32_t consumers = 0; ///< admitted consumers only
        bool ready = false;
        unsigned tier = ~0u;      ///< most critical consumer tier seen
        double lastUse = 0.0;
        RequestId holder = 0;     ///< synthetic allocator id
    };

    using EntryMap = std::map<std::uint64_t, Entry>; // ordered: deterministic

    void dropRef(std::uint64_t key, bool consumer);
    void erase(EntryMap::iterator it, bool count_eviction);
    EntryMap::iterator pickVictim();
    bool evictChunks(std::uint64_t chunks_needed_free);

    LazyChunkAllocator &alloc_;
    PrefixCacheOptions options_;
    EntryMap entries_;
    std::uint64_t heldChunks_ = 0;
    RequestId nextHolder_ = 0x80000000u;
    PrefixCacheStats stats_;
};

} // namespace pimphony

#endif // PIMPHONY_ALLOC_PREFIX_CACHE_HH
