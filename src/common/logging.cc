#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace pimphony {

namespace {

// The threshold is read on every log call, possibly from sweep-runner
// worker threads while a bench's main thread adjusts it; the sink
// mutex serializes whole lines so concurrent messages never
// interleave mid-line.
std::atomic<LogLevel> g_threshold{LogLevel::Inform};
std::mutex g_sink_mutex;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn:   return "warn";
      case LogLevel::Fatal:  return "fatal";
      case LogLevel::Panic:  return "panic";
    }
    return "?";
}

void
vlogMessage(LogLevel level, const char *fmt, va_list args)
{
    if (static_cast<int>(level) <
        static_cast<int>(g_threshold.load(std::memory_order_relaxed)))
        return;

    // Format the whole line before touching the sink so the lock is
    // held only for one write, and a line is emitted atomically with
    // respect to other threads.
    char stack_buf[512];
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt,
                                args_copy);
    va_end(args_copy);
    if (needed < 0)
        return;

    const char *msg = stack_buf;
    std::vector<char> heap_buf;
    if (static_cast<std::size_t>(needed) >= sizeof(stack_buf)) {
        heap_buf.resize(static_cast<std::size_t>(needed) + 1);
        std::vsnprintf(heap_buf.data(), heap_buf.size(), fmt, args);
        msg = heap_buf.data();
    }

    std::lock_guard<std::mutex> lock(g_sink_mutex);
    std::fprintf(stderr, "[%s] %s\n", levelTag(level), msg);
}

} // namespace

void
setLogThreshold(LogLevel level)
{
    g_threshold.store(level, std::memory_order_relaxed);
}

LogLevel
logThreshold()
{
    return g_threshold.load(std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(level, fmt, args);
    va_end(args);
}

void
panic(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Panic, fmt, args);
    va_end(args);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Fatal, fmt, args);
    va_end(args);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Warn, fmt, args);
    va_end(args);
}

void
inform(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    vlogMessage(LogLevel::Inform, fmt, args);
    va_end(args);
}

} // namespace pimphony
