/**
 * @file
 * Logging and error-reporting primitives in the gem5 tradition.
 *
 * panic()  -- an internal invariant was violated; this is a simulator
 *             bug, never the user's fault. Aborts.
 * fatal()  -- the simulation cannot continue because of a user-visible
 *             problem (bad configuration, impossible workload). Exits.
 * warn()   -- something is modelled approximately; results may be
 *             affected but execution continues.
 * inform() -- plain status output.
 *
 * The sink is thread-safe: the threshold is an atomic and every
 * message is formatted off-lock and emitted as one serialized write,
 * so concurrent sweep-runner workers (common/parallel) never
 * interleave partial lines (regression-tested in
 * tests/logging_test.cc).
 */

#ifndef PIMPHONY_COMMON_LOGGING_HH
#define PIMPHONY_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace pimphony {

/** Severity levels understood by the log sink. */
enum class LogLevel {
    Inform,
    Warn,
    Fatal,
    Panic,
};

/**
 * Install a minimum level below which messages are suppressed.
 * Benches raise this to keep figure output clean.
 */
void setLogThreshold(LogLevel level);

/** Current threshold (default LogLevel::Inform). */
LogLevel logThreshold();

/** printf-style message at the given level; does not terminate. */
void logMessage(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Internal invariant violation: print and abort(). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** User/config error: print and exit(1). */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Possible modelling shortcut or suspicious condition. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Status message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace pimphony

#endif // PIMPHONY_COMMON_LOGGING_HH
