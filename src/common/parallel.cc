#include "common/parallel.hh"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.hh"

namespace pimphony {

/**
 * One job at a time: forEach publishes (fn, n) under the mutex and
 * bumps the generation; workers race on an atomic next-index counter
 * until the range drains, then report in. The calling thread pulls
 * indices too, so a SweepRunner with T threads runs T cells
 * concurrently on T - 1 workers plus the caller.
 */
struct SweepRunner::Pool
{
    std::mutex m;
    std::condition_variable wake;
    std::condition_variable done;

    const std::function<void(std::size_t)> *fn = nullptr;
    std::size_t n = 0;
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> *excs = nullptr;

    std::uint64_t generation = 0;
    unsigned busyWorkers = 0;
    bool stopping = false;

    std::vector<std::thread> workers;

    void
    drainRange()
    {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                (*fn)(i);
            } catch (...) {
                (*excs)[i] = std::current_exception();
            }
        }
    }

    void
    workerLoop()
    {
        std::uint64_t seen = 0;
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(m);
                wake.wait(lock, [&] {
                    return stopping || generation != seen;
                });
                if (stopping)
                    return;
                seen = generation;
            }
            drainRange();
            {
                std::lock_guard<std::mutex> lock(m);
                if (--busyWorkers == 0)
                    done.notify_all();
            }
        }
    }
};

SweepRunner::SweepRunner(unsigned threads)
    : threads_(threads == 0 ? hardwareThreads() : threads)
{
    if (threads_ <= 1)
        return;
    pool_ = std::make_unique<Pool>();
    pool_->workers.reserve(threads_ - 1);
    for (unsigned t = 0; t + 1 < threads_; ++t)
        pool_->workers.emplace_back([p = pool_.get()] {
            p->workerLoop();
        });
}

SweepRunner::~SweepRunner()
{
    if (!pool_)
        return;
    {
        std::lock_guard<std::mutex> lock(pool_->m);
        pool_->stopping = true;
    }
    pool_->wake.notify_all();
    for (auto &w : pool_->workers)
        w.join();
}

void
SweepRunner::forEach(std::size_t n,
                     const std::function<void(std::size_t)> &fn)
{
    if (!pool_) {
        // The exact serial path: inline, in submission order, with
        // exceptions propagating directly from the offending cell.
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    std::vector<std::exception_ptr> excs(n);
    {
        std::lock_guard<std::mutex> lock(pool_->m);
        pool_->fn = &fn;
        pool_->n = n;
        pool_->next.store(0, std::memory_order_relaxed);
        pool_->excs = &excs;
        pool_->busyWorkers =
            static_cast<unsigned>(pool_->workers.size());
        ++pool_->generation;
    }
    pool_->wake.notify_all();

    // The caller is a worker too.
    pool_->drainRange();

    {
        std::unique_lock<std::mutex> lock(pool_->m);
        pool_->done.wait(lock, [&] { return pool_->busyWorkers == 0; });
        pool_->fn = nullptr;
        pool_->excs = nullptr;
    }

    // Rethrow the first failure in submission order, matching what a
    // serial run would have surfaced first.
    for (auto &e : excs)
        if (e)
            std::rethrow_exception(e);
}

unsigned
SweepRunner::defaultThreads()
{
    const char *env = std::getenv("PIMPHONY_THREADS");
    if (!env || *env == '\0')
        return 1;
    char *end = nullptr;
    unsigned long v = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0') {
        warn("PIMPHONY_THREADS='%s' is not a number; running serial",
             env);
        return 1;
    }
    if (v == 0)
        return hardwareThreads();
    return static_cast<unsigned>(v);
}

unsigned
SweepRunner::hardwareThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace pimphony
