/**
 * @file
 * SweepRunner: a fixed-size thread pool for embarrassingly parallel
 * configuration sweeps.
 *
 * The figure/table harnesses and the serving benches evaluate grids
 * of independent configurations — each cell builds its own engine,
 * allocator, and model instances and shares nothing mutable with its
 * neighbours — so sweep wall-clock should scale with host cores, not
 * grid size. SweepRunner executes fn(0..n-1) across a fixed set of
 * worker threads and guarantees:
 *
 *  - Deterministic results: cell i's result lands in slot i, so the
 *    caller emits rows in submission order regardless of completion
 *    order. Simulated values are bit-identical to a serial run
 *    because every cell derives its randomness from its own explicit
 *    seed (pass the cell index into the seed when configs would
 *    otherwise collide).
 *  - An exact serial path: threads() == 1 runs every cell inline on
 *    the calling thread, in submission order, with no pool threads
 *    created and no exception wrapping — byte-for-byte the behavior
 *    of the pre-runner loop.
 *  - Per-cell exception capture: under a pool, a throwing cell does
 *    not tear down the process or skip its siblings; after the sweep
 *    drains, the first exception in *submission* order is rethrown.
 *
 * Thread count selection (see defaultThreads): an explicit
 * constructor argument wins; 0 asks for one thread per hardware
 * core; benches default to the PIMPHONY_THREADS environment
 * variable and fall back to 1, so every existing invocation stays
 * serial unless parallelism is requested.
 */

#ifndef PIMPHONY_COMMON_PARALLEL_HH
#define PIMPHONY_COMMON_PARALLEL_HH

#include <cstddef>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

namespace pimphony {

class SweepRunner
{
  public:
    /**
     * @p threads concurrent cells; 0 resolves to hardwareThreads().
     * Worker threads are started once (threads - 1 of them: the
     * calling thread participates in every forEach) and reused
     * across calls.
     */
    explicit SweepRunner(unsigned threads = 0);
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /** Resolved concurrency (>= 1). */
    unsigned threads() const { return threads_; }

    /**
     * Run fn(i) for every i in [0, n). Blocks until all cells have
     * completed. With threads() == 1 this is exactly the serial
     * loop. Not reentrant: fn must not call back into the same
     * runner.
     */
    void forEach(std::size_t n,
                 const std::function<void(std::size_t)> &fn);

    /**
     * forEach that collects fn's return values into a vector in
     * submission order (slot i = fn(i)); the result type must be
     * default-constructible and movable.
     */
    template <typename Fn>
    auto
    map(std::size_t n, Fn &&fn)
        -> std::vector<std::decay_t<decltype(fn(std::size_t{0}))>>
    {
        using R = std::decay_t<decltype(fn(std::size_t{0}))>;
        std::vector<R> out(n);
        forEach(n, [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /**
     * Sweep concurrency when none is given explicitly: the
     * PIMPHONY_THREADS environment variable (0 = all hardware
     * threads), else 1 — serial, the historical behavior.
     */
    static unsigned defaultThreads();

    /** std::thread::hardware_concurrency(), clamped to >= 1. */
    static unsigned hardwareThreads();

  private:
    struct Pool;

    unsigned threads_ = 1;
    std::unique_ptr<Pool> pool_; ///< null when threads_ == 1
};

} // namespace pimphony

#endif // PIMPHONY_COMMON_PARALLEL_HH
