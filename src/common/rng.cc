#include "common/rng.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pimphony {

double
Rng::uniform()
{
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

std::uint64_t
Rng::uniformInt(std::uint64_t lo, std::uint64_t hi)
{
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
}

double
Rng::normal()
{
    return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

TruncatedNormal::TruncatedNormal(double mean, double stddev, double lo,
                                 double hi)
    : mean_(mean), stddev_(stddev), lo_(lo), hi_(hi)
{
    if (hi <= lo)
        panic("TruncatedNormal requires hi > lo");
    if (stddev < 0.0)
        panic("TruncatedNormal requires stddev >= 0");
}

double
TruncatedNormal::sample(Rng &rng) const
{
    if (stddev_ == 0.0)
        return std::clamp(mean_, lo_, hi_);
    // Rejection sampling; the Table II windows keep acceptance high.
    for (int i = 0; i < 1024; ++i) {
        double v = mean_ + stddev_ * rng.normal();
        if (v >= lo_ && v <= hi_)
            return v;
    }
    // Pathological parameters: fall back to clamping.
    return std::clamp(mean_ + stddev_ * rng.normal(), lo_, hi_);
}

namespace {

/**
 * Mean and stddev of a lognormal(mu, sigma) truncated to [lo, hi],
 * by Simpson integration over log space.
 */
void
truncatedLognormalMoments(double mu, double sigma, double lo, double hi,
                          double &mean_out, double &std_out)
{
    const int n = 400; // even
    double a = std::log(lo), b = std::log(hi);
    double h = (b - a) / n;
    double w0 = 0.0, w1 = 0.0, w2 = 0.0;
    for (int i = 0; i <= n; ++i) {
        double y = a + h * i;
        double z = (y - mu) / sigma;
        double pdf = std::exp(-0.5 * z * z);
        double x = std::exp(y);
        double coeff = (i == 0 || i == n) ? 1.0 : (i % 2 ? 4.0 : 2.0);
        w0 += coeff * pdf;
        w1 += coeff * pdf * x;
        w2 += coeff * pdf * x * x;
    }
    double m1 = w1 / w0;
    double m2 = w2 / w0;
    mean_out = m1;
    double var = m2 - m1 * m1;
    std_out = var > 0 ? std::sqrt(var) : 0.0;
}

} // namespace

TruncatedLognormal::TruncatedLognormal(double mean, double stddev, double lo,
                                       double hi)
    : lo_(lo), hi_(hi)
{
    if (mean <= 0.0 || hi <= lo || lo <= 0.0)
        panic("TruncatedLognormal requires mean > 0 and hi > lo > 0");
    double cv2 = (stddev / mean) * (stddev / mean);
    sigma_ = std::sqrt(std::log1p(cv2));
    mu_ = std::log(mean) - 0.5 * sigma_ * sigma_;
    if (stddev <= 0.0)
        return;
    // Truncation shrinks both moments; fit (mu, sigma) so the
    // *truncated* distribution matches the published statistics.
    for (int it = 0; it < 60; ++it) {
        double m, s;
        truncatedLognormalMoments(mu_, sigma_, lo_, hi_, m, s);
        if (m <= 0 || s <= 0)
            break;
        double dm = std::log(mean / m);
        double ds = stddev / s;
        mu_ += 0.8 * dm;
        sigma_ *= std::min(1.5, std::max(0.67, std::pow(ds, 0.8)));
        if (std::abs(dm) < 1e-4 && std::abs(ds - 1.0) < 1e-3)
            break;
    }
}

double
TruncatedLognormal::sample(Rng &rng) const
{
    for (int i = 0; i < 1024; ++i) {
        double v = std::exp(mu_ + sigma_ * rng.normal());
        if (v >= lo_ && v <= hi_)
            return v;
    }
    return std::clamp(std::exp(mu_), lo_, hi_);
}

} // namespace pimphony
