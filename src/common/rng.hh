/**
 * @file
 * Deterministic random number generation and the truncated
 * distributions used to synthesize Table II context-length traces.
 */

#ifndef PIMPHONY_COMMON_RNG_HH
#define PIMPHONY_COMMON_RNG_HH

#include <cstdint>
#include <random>

namespace pimphony {

/**
 * Thin wrapper over a 64-bit Mersenne Twister with convenience draws.
 * All simulator randomness flows through explicit Rng instances so
 * every experiment is reproducible from its seed.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : engine_(seed) {}

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi);

    /** Standard normal draw. */
    double normal();

    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

/**
 * Normal distribution truncated to [lo, hi] by rejection, with the
 * underlying (pre-truncation) parameters chosen directly.
 *
 * Table II reports mean/std/min/max of real benchmark traces; a
 * truncated normal with those parameters reproduces the reported
 * moments to within a few percent, which is all the system reacts to.
 */
class TruncatedNormal
{
  public:
    TruncatedNormal(double mean, double stddev, double lo, double hi);

    double sample(Rng &rng) const;

    double lo() const { return lo_; }
    double hi() const { return hi_; }

  private:
    double mean_;
    double stddev_;
    double lo_;
    double hi_;
};

/**
 * Lognormal truncated to [lo, hi]; better tail shape for the long
 * LV-Eval traces whose std is comparable to the mean.
 */
class TruncatedLognormal
{
  public:
    /** Parameters are the target arithmetic mean/std (moment-matched). */
    TruncatedLognormal(double mean, double stddev, double lo, double hi);

    double sample(Rng &rng) const;

  private:
    double mu_;
    double sigma_;
    double lo_;
    double hi_;
};

} // namespace pimphony

#endif // PIMPHONY_COMMON_RNG_HH
