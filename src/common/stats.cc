#include "common/stats.hh"

#include <cmath>

#include "common/logging.hh"

namespace pimphony {

double
StatAccumulator::stddev() const
{
    return std::sqrt(variance());
}

void
StatAccumulator::reset()
{
    *this = StatAccumulator{};
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    if (bins == 0 || hi <= lo)
        panic("Histogram requires bins > 0 and hi > lo");
}

void
Histogram::add(double v)
{
    std::size_t bin;
    if (v < lo_) {
        bin = 0;
    } else if (v >= hi_) {
        bin = counts_.size() - 1;
    } else {
        bin = static_cast<std::size_t>((v - lo_) / width_);
        if (bin >= counts_.size())
            bin = counts_.size() - 1;
    }
    ++counts_[bin];
    ++total_;
}

std::size_t
Histogram::binSamples(std::size_t bin) const
{
    if (bin >= counts_.size())
        panic("Histogram bin %zu out of range", bin);
    return counts_[bin];
}

double
Histogram::binLow(std::size_t bin) const
{
    return lo_ + width_ * static_cast<double>(bin);
}

double
Histogram::binHigh(std::size_t bin) const
{
    return binLow(bin) + width_;
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return lo_;
    double target = q * static_cast<double>(total_);
    double running = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        running += static_cast<double>(counts_[i]);
        if (running >= target)
            return 0.5 * (binLow(i) + binHigh(i));
    }
    return hi_;
}

double
nearestRankPercentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    double n = static_cast<double>(sorted.size());
    std::size_t rank =
        static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    if (rank < 1)
        rank = 1;
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

} // namespace pimphony
