#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pimphony {

double
StatAccumulator::stddev() const
{
    return std::sqrt(variance());
}

void
StatAccumulator::reset()
{
    *this = StatAccumulator{};
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    if (bins == 0 || hi <= lo)
        panic("Histogram requires bins > 0 and hi > lo");
}

void
Histogram::add(double v)
{
    std::size_t bin;
    if (v < lo_) {
        bin = 0;
    } else if (v >= hi_) {
        bin = counts_.size() - 1;
    } else {
        bin = static_cast<std::size_t>((v - lo_) / width_);
        if (bin >= counts_.size())
            bin = counts_.size() - 1;
    }
    ++counts_[bin];
    ++total_;
}

std::size_t
Histogram::binSamples(std::size_t bin) const
{
    if (bin >= counts_.size())
        panic("Histogram bin %zu out of range", bin);
    return counts_[bin];
}

double
Histogram::binLow(std::size_t bin) const
{
    return lo_ + width_ * static_cast<double>(bin);
}

double
Histogram::binHigh(std::size_t bin) const
{
    return binLow(bin) + width_;
}

double
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return lo_;
    double target = q * static_cast<double>(total_);
    double running = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        running += static_cast<double>(counts_[i]);
        if (running >= target)
            return 0.5 * (binLow(i) + binHigh(i));
    }
    return hi_;
}

namespace {

/** Shared nearest-rank rule: ceil(p/100 * n), clamped to [1, n]. */
std::size_t
nearestRank(std::size_t n, double p)
{
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(n)));
    if (rank < 1)
        rank = 1;
    if (rank > n)
        rank = n;
    return rank;
}

} // namespace

double
nearestRankPercentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    return sorted[nearestRank(sorted.size(), p) - 1];
}

double
nearestRankPercentileInPlace(std::vector<double> &samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::size_t rank = nearestRank(samples.size(), p);
    std::nth_element(samples.begin(),
                     samples.begin() +
                         static_cast<std::ptrdiff_t>(rank - 1),
                     samples.end());
    return samples[rank - 1];
}

WindowedQuantile::WindowedQuantile(std::size_t window, double percentile)
    : window_(window), percentile_(percentile)
{
    if (window_ == 0 || percentile_ <= 0.0 || percentile_ > 100.0)
        panic("WindowedQuantile needs window >= 1 and percentile in "
              "(0, 100], got %zu / %g",
              window_, percentile_);
    ring_.reserve(window_);
}

void
WindowedQuantile::add(double v)
{
    if (ring_.size() == window_) {
        double oldest = ring_[head_];
        ring_[head_] = v;
        head_ = (head_ + 1) % window_;
        // max(low_) <= min(high_), so any value strictly below
        // max(low_) can only live in low_; a value equal to the
        // boundary may have duplicates in both sets, and evicting
        // either instance leaves the same multiset of values. The
        // evicted tree node is recycled to carry the new value
        // (C++17 node handles), so the steady-state update never
        // allocates.
        auto &src = (!low_.empty() && oldest <= *low_.rbegin()) ? low_
                                                                : high_;
        auto node = src.extract(src.find(oldest));
        node.value() = v;
        if (low_.empty() || v <= *low_.rbegin())
            low_.insert(std::move(node));
        else
            high_.insert(std::move(node));
    } else {
        // Warm-up: the window grows to capacity, allocating each
        // node exactly once.
        ring_.push_back(v);
        if (low_.empty() || v <= *low_.rbegin())
            low_.insert(v);
        else
            high_.insert(v);
    }
    rebalance();
}

void
WindowedQuantile::rebalance()
{
    std::size_t rank = nearestRank(ring_.size(), percentile_);
    while (low_.size() > rank)
        high_.insert(low_.extract(std::prev(low_.end())));
    while (low_.size() < rank)
        low_.insert(high_.extract(high_.begin()));
}

double
WindowedQuantile::value() const
{
    if (low_.empty())
        return 0.0;
    return *low_.rbegin();
}

void
WindowedQuantile::reset()
{
    ring_.clear();
    head_ = 0;
    low_.clear();
    high_.clear();
}

} // namespace pimphony
