/**
 * @file
 * Small statistics toolkit: accumulators and fixed-bin histograms.
 *
 * Used both by the simulator (utilization, latency breakdowns) and by
 * the workload generator tests that check Table II moments.
 */

#ifndef PIMPHONY_COMMON_STATS_HH
#define PIMPHONY_COMMON_STATS_HH

#include <cstddef>
#include <limits>
#include <set>
#include <string>
#include <vector>

namespace pimphony {

/**
 * Streaming accumulator for mean / variance / extrema (Welford).
 */
class StatAccumulator
{
  public:
    void
    add(double v)
    {
        ++count_;
        double delta = v - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (v - mean_);
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
        sum_ += v;
    }

    std::size_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance. */
    double
    variance() const
    {
        return count_ ? m2_ / static_cast<double>(count_) : 0.0;
    }

    double stddev() const;

    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void reset();

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Histogram over [lo, hi) with uniformly sized bins; out-of-range
 * samples land in the boundary bins.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double v);

    std::size_t binCount() const { return counts_.size(); }
    std::size_t binSamples(std::size_t bin) const;
    double binLow(std::size_t bin) const;
    double binHigh(std::size_t bin) const;
    std::size_t totalSamples() const { return total_; }

    /** Value below which @p q of the mass lies (bin midpoint). */
    double quantile(double q) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

/**
 * Utility: ratio with a guard against zero denominators.
 */
inline double
safeRatio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

/**
 * Nearest-rank percentile of an ascending-sorted sample: the
 * ceil(p/100 * n)-th smallest value (1-indexed), so a 1-element
 * sample returns its only value and a 20-element sample's p95 is the
 * 19th. Returns 0 for an empty sample.
 */
double nearestRankPercentile(const std::vector<double> &sorted, double p);

/**
 * Nearest-rank percentile of an *unsorted* sample via
 * std::nth_element: same rank rule and same result value as
 * nearestRankPercentile on the sorted sample, at O(n) instead of
 * O(n log n). @p samples is partially reordered in place. Returns 0
 * for an empty sample.
 */
double nearestRankPercentileInPlace(std::vector<double> &samples,
                                    double p);

/**
 * Streaming nearest-rank percentile over a sliding window of the
 * most recent @p window samples.
 *
 * This replaces the serving engine's per-cycle copy+sort of the SLO
 * token-gap window (O(W log W) per decode cycle) with an O(log W)
 * update: a ring buffer remembers insertion order for eviction, and
 * two multisets split the window so that @c low_ always holds
 * exactly the rank smallest values — the tracked percentile is then
 * max(low_) in O(1). Values are interchangeable across duplicates,
 * so evicting "the oldest 5.0" from whichever multiset holds a 5.0
 * preserves the window as a multiset of values exactly.
 *
 * value() matches nearestRankPercentile over a sorted copy of the
 * last min(window, n) samples bit for bit, including warm-up
 * (asserted property-style in tests/common_test.cc).
 */
class WindowedQuantile
{
  public:
    /** @p percentile in (0, 100]; @p window >= 1. */
    WindowedQuantile(std::size_t window, double percentile);

    /** Insert @p v, evicting the oldest sample at capacity. */
    void add(double v);

    /** Samples currently in the window (<= window). */
    std::size_t size() const { return ring_.size(); }

    /** Nearest-rank percentile of the window; 0 when empty. */
    double value() const;

    void reset();

  private:
    /** Move values across the low/high split until |low| == rank. */
    void rebalance();

    std::size_t window_;
    double percentile_;
    std::vector<double> ring_; ///< insertion order, grows to window_
    std::size_t head_ = 0;     ///< oldest sample's ring slot
    std::multiset<double> low_;  ///< the rank smallest values
    std::multiset<double> high_; ///< the rest
};

} // namespace pimphony

#endif // PIMPHONY_COMMON_STATS_HH
