/**
 * @file
 * Small statistics toolkit: accumulators and fixed-bin histograms.
 *
 * Used both by the simulator (utilization, latency breakdowns) and by
 * the workload generator tests that check Table II moments.
 */

#ifndef PIMPHONY_COMMON_STATS_HH
#define PIMPHONY_COMMON_STATS_HH

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace pimphony {

/**
 * Streaming accumulator for mean / variance / extrema (Welford).
 */
class StatAccumulator
{
  public:
    void
    add(double v)
    {
        ++count_;
        double delta = v - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (v - mean_);
        if (v < min_) min_ = v;
        if (v > max_) max_ = v;
        sum_ += v;
    }

    std::size_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance. */
    double
    variance() const
    {
        return count_ ? m2_ / static_cast<double>(count_) : 0.0;
    }

    double stddev() const;

    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    void reset();

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Histogram over [lo, hi) with uniformly sized bins; out-of-range
 * samples land in the boundary bins.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double v);

    std::size_t binCount() const { return counts_.size(); }
    std::size_t binSamples(std::size_t bin) const;
    double binLow(std::size_t bin) const;
    double binHigh(std::size_t bin) const;
    std::size_t totalSamples() const { return total_; }

    /** Value below which @p q of the mass lies (bin midpoint). */
    double quantile(double q) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

/**
 * Utility: ratio with a guard against zero denominators.
 */
inline double
safeRatio(double num, double den)
{
    return den == 0.0 ? 0.0 : num / den;
}

/**
 * Nearest-rank percentile of an ascending-sorted sample: the
 * ceil(p/100 * n)-th smallest value (1-indexed), so a 1-element
 * sample returns its only value and a 20-element sample's p95 is the
 * 19th. Returns 0 for an empty sample.
 */
double nearestRankPercentile(const std::vector<double> &sorted, double p);

} // namespace pimphony

#endif // PIMPHONY_COMMON_STATS_HH
