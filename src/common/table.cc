#include "common/table.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iomanip>

namespace pimphony {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell = c < row.size() ? row[c] : std::string();
            os << "  " << std::left << std::setw(static_cast<int>(widths[c]))
               << cell;
        }
        os << "\n";
    };

    print_row(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

std::string
TablePrinter::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TablePrinter::fmtInt(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
TablePrinter::fmtPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << "\n=== " << title << " ===\n";
}

} // namespace pimphony
