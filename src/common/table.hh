/**
 * @file
 * ASCII table printer used by the benchmark harness to reproduce the
 * rows/series the paper's tables and figures report.
 */

#ifndef PIMPHONY_COMMON_TABLE_HH
#define PIMPHONY_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace pimphony {

/**
 * Collects rows of string cells and renders them with aligned columns.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; it may have fewer cells than there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Render to @p os with a separator under the header. */
    void print(std::ostream &os) const;

    /** Format helpers for numeric cells. */
    static std::string fmt(double v, int precision = 2);
    static std::string fmtInt(std::uint64_t v);
    static std::string fmtPercent(double fraction, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a figure/table banner ("=== Fig. 13 ... ==="). */
void printBanner(std::ostream &os, const std::string &title);

} // namespace pimphony

#endif // PIMPHONY_COMMON_TABLE_HH
