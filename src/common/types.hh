/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef PIMPHONY_COMMON_TYPES_HH
#define PIMPHONY_COMMON_TYPES_HH

#include <cstdint>

namespace pimphony {

/** Simulated cycle count on the PIM command clock. */
using Cycle = std::uint64_t;

/** Simulated wall-clock time in nanoseconds. */
using NanoSeconds = double;

/** Byte counts (capacities, footprints, transfer sizes). */
using Bytes = std::uint64_t;

/** Identifier for a serving request. */
using RequestId = std::uint32_t;

/** Identifier for a multi-turn serving session. */
using SessionId = std::uint32_t;

/** Sentinel meaning "not part of a session" (Request::session). */
inline constexpr SessionId kNoSession = 0;

/** Identifier for a PIM channel within a module. */
using ChannelId = std::uint32_t;

/** Identifier for a PIM module within a node/cluster. */
using ModuleId = std::uint32_t;

/** Identifier for a PIM command within a stream. */
using CommandId = std::uint64_t;

/** Sentinel meaning "no command" in dependency tables. */
inline constexpr CommandId kNoCommand = ~CommandId{0};

/** Token counts (context lengths, KV-cache sizes in tokens). */
using Tokens = std::uint64_t;

/** Energy in picojoules. */
using PicoJoules = double;

} // namespace pimphony

#endif // PIMPHONY_COMMON_TYPES_HH
