/**
 * @file
 * Unit helpers: capacities, bandwidths, rates.
 */

#ifndef PIMPHONY_COMMON_UNITS_HH
#define PIMPHONY_COMMON_UNITS_HH

#include <cstdint>

#include "common/types.hh"

namespace pimphony {

inline constexpr Bytes operator""_KiB(unsigned long long v)
{
    return Bytes{v} << 10;
}

inline constexpr Bytes operator""_MiB(unsigned long long v)
{
    return Bytes{v} << 20;
}

inline constexpr Bytes operator""_GiB(unsigned long long v)
{
    return Bytes{v} << 30;
}

/** Bandwidth expressed in bytes per second. */
using BytesPerSecond = double;

inline constexpr BytesPerSecond gbPerSec(double v)
{
    return v * 1e9;
}

inline constexpr BytesPerSecond tbPerSec(double v)
{
    return v * 1e12;
}

/** Compute rates in floating-point operations per second. */
using FlopsPerSecond = double;

inline constexpr FlopsPerSecond tflops(double v)
{
    return v * 1e12;
}

/** Integer ceiling division for tiling computations. */
template <typename T>
constexpr T
ceilDiv(T num, T den)
{
    return (num + den - 1) / den;
}

/** Round @p v up to a multiple of @p align. */
template <typename T>
constexpr T
roundUp(T v, T align)
{
    return ceilDiv(v, align) * align;
}

} // namespace pimphony

#endif // PIMPHONY_COMMON_UNITS_HH
