#include "compiler/ir.hh"

#include <sstream>

#include "common/logging.hh"

namespace pimphony {

std::string
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Input:    return "input";
      case OpKind::Weight:   return "weight";
      case OpKind::KvCache:  return "kv_cache";
      case OpKind::MatMul:   return "matmul";
      case OpKind::Softmax:  return "softmax";
      case OpKind::RmsNorm:  return "rmsnorm";
      case OpKind::SiLU:     return "silu";
      case OpKind::Mul:      return "mul";
      case OpKind::Add:      return "add";
      case OpKind::KvAppend: return "kv_append";
    }
    return "?";
}

NodeId
IrGraph::addNode(OpKind kind, std::string name, TensorShape shape,
                 std::vector<NodeId> inputs, bool transpose_b)
{
    for (NodeId in : inputs)
        if (in < 0 || static_cast<std::size_t>(in) >= nodes_.size())
            panic("node '%s' references unknown input %d", name.c_str(),
                  in);
    IrNode n;
    n.id = static_cast<NodeId>(nodes_.size());
    n.kind = kind;
    n.name = std::move(name);
    n.shape = std::move(shape);
    n.inputs = std::move(inputs);
    n.transposeB = transpose_b;
    nodes_.push_back(n);
    return nodes_.back().id;
}

const IrNode &
IrGraph::node(NodeId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size())
        panic("unknown node id %d", id);
    return nodes_[static_cast<std::size_t>(id)];
}

std::vector<NodeId>
IrGraph::usersOf(NodeId id) const
{
    std::vector<NodeId> out;
    for (const auto &n : nodes_)
        for (NodeId in : n.inputs)
            if (in == id)
                out.push_back(n.id);
    return out;
}

std::string
IrGraph::dump() const
{
    std::ostringstream os;
    for (const auto &n : nodes_) {
        os << "%" << n.id << " = " << opKindName(n.kind) << " '" << n.name
           << "' [";
        for (std::size_t i = 0; i < n.shape.dims.size(); ++i) {
            if (i)
                os << "x";
            if (n.shape.dims[i] == kTokenDim)
                os << "T";
            else
                os << n.shape.dims[i];
        }
        os << "](";
        for (std::size_t i = 0; i < n.inputs.size(); ++i) {
            if (i)
                os << ", ";
            os << "%" << n.inputs[i];
        }
        os << ")\n";
    }
    return os.str();
}

IrGraph
buildDecoderLayer(const LlmConfig &model)
{
    IrGraph g;
    std::int64_t d = model.dModel;
    std::int64_t dh = model.headDim;
    std::int64_t kv_dim =
        static_cast<std::int64_t>(model.kvHeads()) * model.headDim;

    NodeId x = g.addNode(OpKind::Input, "hidden", {{1, d}});
    NodeId norm1 = g.addNode(OpKind::RmsNorm, "attn_norm", {{1, d}}, {x});

    NodeId wq = g.addNode(OpKind::Weight, "w_q", {{d, d}});
    NodeId wk = g.addNode(OpKind::Weight, "w_k", {{kv_dim, d}});
    NodeId wv = g.addNode(OpKind::Weight, "w_v", {{kv_dim, d}});
    NodeId q = g.addNode(OpKind::MatMul, "q_proj", {{1, d}}, {norm1, wq},
                         true);
    NodeId k = g.addNode(OpKind::MatMul, "k_proj", {{1, kv_dim}},
                         {norm1, wk}, true);
    NodeId v = g.addNode(OpKind::MatMul, "v_proj", {{1, kv_dim}},
                         {norm1, wv}, true);

    NodeId kcache = g.addNode(OpKind::KvCache, "k_cache",
                              {{kTokenDim, dh}});
    NodeId vcache = g.addNode(OpKind::KvCache, "v_cache",
                              {{kTokenDim, dh}});
    g.addNode(OpKind::KvAppend, "k_append", {{kTokenDim, dh}},
              {kcache, k});
    g.addNode(OpKind::KvAppend, "v_append", {{kTokenDim, dh}},
              {vcache, v});

    // Per-head attention over the cache: scores = K x q^T.
    NodeId scores = g.addNode(OpKind::MatMul, "qkt", {{1, kTokenDim}},
                              {q, kcache}, true);
    NodeId probs =
        g.addNode(OpKind::Softmax, "softmax", {{1, kTokenDim}}, {scores});
    NodeId ctx = g.addNode(OpKind::MatMul, "sv", {{1, dh}},
                           {probs, vcache}, false);

    NodeId wo = g.addNode(OpKind::Weight, "w_o", {{d, d}});
    NodeId attn_out =
        g.addNode(OpKind::MatMul, "o_proj", {{1, d}}, {ctx, wo}, true);
    NodeId resid1 =
        g.addNode(OpKind::Add, "residual1", {{1, d}}, {x, attn_out});

    NodeId norm2 =
        g.addNode(OpKind::RmsNorm, "ffn_norm", {{1, d}}, {resid1});
    NodeId wg = g.addNode(OpKind::Weight, "w_gate",
                          {{static_cast<std::int64_t>(model.dFfn), d}});
    NodeId wu = g.addNode(OpKind::Weight, "w_up",
                          {{static_cast<std::int64_t>(model.dFfn), d}});
    NodeId wd = g.addNode(OpKind::Weight, "w_down",
                          {{d, static_cast<std::int64_t>(model.dFfn)}});
    NodeId gate = g.addNode(OpKind::MatMul, "gate_proj",
                            {{1, static_cast<std::int64_t>(model.dFfn)}},
                            {norm2, wg}, true);
    NodeId up = g.addNode(OpKind::MatMul, "up_proj",
                          {{1, static_cast<std::int64_t>(model.dFfn)}},
                          {norm2, wu}, true);
    NodeId act = g.addNode(OpKind::SiLU, "silu",
                           {{1, static_cast<std::int64_t>(model.dFfn)}},
                           {gate});
    NodeId fused = g.addNode(OpKind::Mul, "gated",
                             {{1, static_cast<std::int64_t>(model.dFfn)}},
                             {act, up});
    NodeId down = g.addNode(OpKind::MatMul, "down_proj", {{1, d}},
                            {fused, wd}, true);
    g.addNode(OpKind::Add, "residual2", {{1, d}}, {resid1, down});
    return g;
}

} // namespace pimphony
