/**
 * @file
 * A small tensor-operation IR standing in for the paper's MLIR
 * frontend. The compiler's job in PIMphony is (1) recognize the
 * PIM-amenable subgraphs of a Transformer decoder layer (QK^T, SV,
 * the FC stack), and (2) lower them to PIM instruction programs in
 * either the fully unrolled static form or the compact DPA form.
 * Both products are exercised here; parsing real model files is not,
 * because the evaluated workloads are the fixed Table I decoders.
 */

#ifndef PIMPHONY_COMPILER_IR_HH
#define PIMPHONY_COMPILER_IR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "model/llm.hh"

namespace pimphony {

enum class OpKind : std::uint8_t {
    Input,     ///< layer input activation
    Weight,    ///< model parameter tensor
    KvCache,   ///< K or V cache (token-major, grows at runtime)
    MatMul,    ///< C = A x B (B possibly transposed)
    Softmax,
    RmsNorm,
    SiLU,
    Mul,       ///< elementwise
    Add,       ///< elementwise / residual
    KvAppend,  ///< append current K/V vector to the cache
};

std::string opKindName(OpKind kind);

/** Symbolic tensor shape; kTokenDim marks the runtime token axis. */
inline constexpr std::int64_t kTokenDim = -1;

struct TensorShape
{
    std::vector<std::int64_t> dims;

    bool
    hasTokenDim() const
    {
        for (auto d : dims)
            if (d == kTokenDim)
                return true;
        return false;
    }
};

using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

struct IrNode
{
    NodeId id = kNoNode;
    OpKind kind = OpKind::Input;
    std::string name;
    TensorShape shape;
    std::vector<NodeId> inputs;

    /** MatMul: right operand is transposed. */
    bool transposeB = false;
};

class IrGraph
{
  public:
    NodeId addNode(OpKind kind, std::string name, TensorShape shape,
                   std::vector<NodeId> inputs = {},
                   bool transpose_b = false);

    const IrNode &node(NodeId id) const;
    const std::vector<IrNode> &nodes() const { return nodes_; }
    std::size_t size() const { return nodes_.size(); }

    /** Users of @p id (nodes listing it as an input). */
    std::vector<NodeId> usersOf(NodeId id) const;

    std::string dump() const;

  private:
    std::vector<IrNode> nodes_;
};

/**
 * Build one Transformer decoder layer for @p model in decode mode
 * (one new token attending over the KV cache), mirroring Fig. 1.
 */
IrGraph buildDecoderLayer(const LlmConfig &model);

} // namespace pimphony

#endif // PIMPHONY_COMPILER_IR_HH
