#include "compiler/passes.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"

namespace pimphony {

std::string
pimKernelClassName(PimKernelClass c)
{
    switch (c) {
      case PimKernelClass::Qkt: return "qkt";
      case PimKernelClass::Sv:  return "sv";
      case PimKernelClass::Fc:  return "fc";
    }
    return "?";
}

std::vector<MatchedKernel>
matchPimKernels(const IrGraph &graph)
{
    std::vector<MatchedKernel> out;
    for (const auto &n : graph.nodes()) {
        if (n.kind != OpKind::MatMul || n.inputs.size() != 2)
            continue;
        const IrNode &rhs = graph.node(n.inputs[1]);
        MatchedKernel m;
        m.node = n.id;

        if (rhs.kind == OpKind::KvCache) {
            if (n.transposeB) {
                // scores = q x K^T; must feed a softmax.
                bool feeds_softmax = false;
                for (NodeId u : graph.usersOf(n.id))
                    if (graph.node(u).kind == OpKind::Softmax)
                        feeds_softmax = true;
                if (!feeds_softmax)
                    continue;
                m.kernelClass = PimKernelClass::Qkt;
                m.tokenDout = true;
                m.din = static_cast<std::uint64_t>(rhs.shape.dims[1]);
            } else {
                // ctx = probs x V; probs must come from a softmax.
                if (graph.node(n.inputs[0]).kind != OpKind::Softmax)
                    continue;
                m.kernelClass = PimKernelClass::Sv;
                m.tokenDin = true;
                m.dout = static_cast<std::uint64_t>(rhs.shape.dims[1]);
            }
            out.push_back(m);
        } else if (rhs.kind == OpKind::Weight) {
            m.kernelClass = PimKernelClass::Fc;
            // Weight stored [dout, din]; MatMul uses B^T.
            m.dout = static_cast<std::uint64_t>(rhs.shape.dims[0]);
            m.din = static_cast<std::uint64_t>(rhs.shape.dims[1]);
            out.push_back(m);
        }
    }
    return out;
}

namespace {

/**
 * Static lowering of a token-dependent attention kernel: the
 * compiler must unroll the token loop to the compiled maximum, so
 * the program grows with t_max.
 */
std::vector<PimInstruction>
lowerAttentionStatic(const MatchedKernel &match,
                     const AimTimingParams &params, Tokens t_max)
{
    std::vector<PimInstruction> prog;
    std::uint64_t token_groups = ceilDiv<Tokens>(t_max, 16);
    unsigned tiles = static_cast<unsigned>(
        ceilDiv<std::uint64_t>(
            match.kernelClass == PimKernelClass::Qkt ? match.din
                                                     : match.dout,
            16));
    unsigned ocap = std::max(1u, params.outputEntries);

    if (match.kernelClass == PimKernelClass::Qkt) {
        prog.push_back(PimInstruction::wrInp(0xFFFF, tiles, 0, 0));
        for (std::uint64_t tg = 0; tg < token_groups; ++tg) {
            prog.push_back(PimInstruction::mac(
                0xFFFF, tiles, 0,
                static_cast<std::int32_t>(tg % ocap),
                static_cast<RowIndex>(tg * tiles /
                                      std::max<std::uint64_t>(
                                          1, params.rowBytesPerChannel() /
                                                 params
                                                     .macBytesPerCommand())),
                0));
            if ((tg + 1) % ocap == 0 || tg + 1 == token_groups)
                prog.push_back(PimInstruction::rdOut(
                    0xFFFF,
                    static_cast<std::uint32_t>(tg % ocap + 1), 0, 0));
        }
        return prog;
    }

    // SV: stream score blocks; one WR-INP + per-j MACs per block.
    unsigned block = std::max(1u, params.gbufEntries / 2);
    std::uint64_t n_blocks = ceilDiv(token_groups,
                                     static_cast<std::uint64_t>(block));
    for (std::uint64_t blk = 0; blk < n_blocks; ++blk) {
        prog.push_back(PimInstruction::wrInp(0xFFFF, block, 0, 0));
        for (unsigned j = 0; j < tiles; ++j)
            prog.push_back(PimInstruction::mac(
                0xFFFF, block, 0, static_cast<std::int32_t>(j % ocap),
                static_cast<RowIndex>(blk), 0));
        prog.push_back(PimInstruction::rdOut(
            0xFFFF, std::min(tiles, ocap), 0, 0));
    }
    return prog;
}

DpaProgram
lowerAttentionDpa(const MatchedKernel &match, const AimTimingParams &params)
{
    DpaProgram p;
    unsigned tiles = static_cast<unsigned>(
        ceilDiv<std::uint64_t>(
            match.kernelClass == PimKernelClass::Qkt ? match.din
                                                     : match.dout,
            16));
    if (match.kernelClass == PimKernelClass::Qkt) {
        // for tg in ceil(T/16): MAC(tiles); drain
        p.pushInstr(PimInstruction::wrInp(0xFFFF, tiles, 0, 0));
        p.pushDynLoop(LoopBound::TokensDiv, 0, 16);
        p.pushInstr(PimInstruction::mac(0xFFFF, tiles, 0, 0, 0, 0));
        p.pushDynModi(ModiField::Row, 1);
        p.pushInstr(PimInstruction::rdOut(0xFFFF, 1, 0, 0));
        p.pushEndLoop();
        return p;
    }
    unsigned block = std::max(1u, params.gbufEntries / 2);
    p.pushDynLoop(LoopBound::TokensDiv, 0,
                  static_cast<std::uint64_t>(block) * 16);
    p.pushInstr(PimInstruction::wrInp(0xFFFF, block, 0, 0));
    for (unsigned j = 0; j < tiles; ++j)
        p.pushInstr(PimInstruction::mac(0xFFFF, block, 0,
                                        static_cast<std::int32_t>(j), 0,
                                        0));
    p.pushDynModi(ModiField::Row, 1);
    p.pushInstr(PimInstruction::rdOut(0xFFFF, tiles, 0, 0));
    p.pushEndLoop();
    return p;
}

std::vector<PimInstruction>
lowerFcStatic(const MatchedKernel &match, const AimTimingParams &params)
{
    // Weight-stationary GEMV; token independent, so the static form
    // is already compact.
    std::vector<PimInstruction> prog;
    unsigned din_tiles = static_cast<unsigned>(
        ceilDiv<std::uint64_t>(match.din, 16));
    unsigned dout_groups = static_cast<unsigned>(
        ceilDiv<std::uint64_t>(match.dout, 16));
    unsigned block = std::min(din_tiles,
                              std::max(1u, params.gbufEntries / 2));
    unsigned n_blocks = ceilDiv(din_tiles, block);
    unsigned ocap = std::max(1u, params.outputEntries);
    for (unsigned blk = 0; blk < n_blocks; ++blk) {
        prog.push_back(PimInstruction::wrInp(0xFFFF, block, 0, 0));
        for (unsigned g0 = 0; g0 < dout_groups; g0 += ocap) {
            unsigned batch = std::min(ocap, dout_groups - g0);
            for (unsigned b = 0; b < batch; ++b)
                prog.push_back(PimInstruction::mac(
                    0xFFFF, block, 0, static_cast<std::int32_t>(b),
                    static_cast<RowIndex>(blk), 0));
            prog.push_back(PimInstruction::rdOut(0xFFFF, batch, 0, 0));
        }
    }
    return prog;
}

DpaProgram
lowerFcDpa(const MatchedKernel &match, const AimTimingParams &params)
{
    // FC has constant trip counts; DPA wraps the same structure in
    // constant loops (no token dependence, near-identical size).
    DpaProgram p;
    unsigned din_tiles = static_cast<unsigned>(
        ceilDiv<std::uint64_t>(match.din, 16));
    unsigned dout_groups = static_cast<unsigned>(
        ceilDiv<std::uint64_t>(match.dout, 16));
    unsigned block = std::min(din_tiles,
                              std::max(1u, params.gbufEntries / 2));
    unsigned n_blocks = ceilDiv(din_tiles, block);
    p.pushDynLoop(LoopBound::Constant, n_blocks);
    p.pushInstr(PimInstruction::wrInp(0xFFFF, block, 0, 0));
    p.pushDynLoop(LoopBound::Constant, dout_groups);
    p.pushInstr(PimInstruction::mac(0xFFFF, block, 0, 0, 0, 0));
    p.pushDynModi(ModiField::Row, 1);
    p.pushInstr(PimInstruction::rdOut(0xFFFF, 1, 0, 0));
    p.pushEndLoop();
    p.pushEndLoop();
    return p;
}

} // namespace

LoweredKernel
lowerKernel(const MatchedKernel &match, const AimTimingParams &params,
            Tokens t_max)
{
    LoweredKernel out;
    out.match = match;
    switch (match.kernelClass) {
      case PimKernelClass::Qkt:
      case PimKernelClass::Sv:
        out.staticProgram = lowerAttentionStatic(match, params, t_max);
        out.dpaProgram = lowerAttentionDpa(match, params);
        break;
      case PimKernelClass::Fc:
        out.staticProgram = lowerFcStatic(match, params);
        out.dpaProgram = lowerFcDpa(match, params);
        break;
    }
    return out;
}

Bytes
staticProgramBytes(const LoweredKernel &kernel)
{
    return programBytes(kernel.staticProgram);
}

Bytes
dpaProgramBytes(const LoweredKernel &kernel)
{
    return kernel.dpaProgram.encodedBytes();
}

} // namespace pimphony
