/**
 * @file
 * Compiler passes: pattern matching of PIM-amenable kernels in the
 * decoder graph and lowering to PIM instruction programs (static
 * fully unrolled form vs. compact DPA form).
 */

#ifndef PIMPHONY_COMPILER_PASSES_HH
#define PIMPHONY_COMPILER_PASSES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/ir.hh"
#include "isa/dpa.hh"
#include "kernels/kernel_sim.hh"

namespace pimphony {

enum class PimKernelClass : std::uint8_t {
    Qkt,  ///< MatMul(query, K-cache^T): token-parallel score GEMV
    Sv,   ///< MatMul(probs, V-cache): token-reduction GEMV
    Fc,   ///< MatMul(activation, weight): weight-stationary GEMV
};

std::string pimKernelClassName(PimKernelClass c);

/** One matched PIM-amenable kernel. */
struct MatchedKernel
{
    PimKernelClass kernelClass = PimKernelClass::Fc;
    NodeId node = kNoNode;

    /** Static dimensions (token axis symbolic for Qkt/Sv). */
    std::uint64_t dout = 0;
    std::uint64_t din = 0;
    bool tokenDout = false; ///< dout is the runtime token count
    bool tokenDin = false;  ///< din is the runtime token count
};

/**
 * Pattern-match @p graph: every MatMul is classified by inspecting
 * its operands (KvCache input + softmax producer/consumer structure).
 */
std::vector<MatchedKernel> matchPimKernels(const IrGraph &graph);

/**
 * Lowered program pair for one kernel: a statically unrolled
 * instruction list sized for @p t_max, and the context-independent
 * DPA form (Fig. 10).
 */
struct LoweredKernel
{
    MatchedKernel match;
    std::vector<PimInstruction> staticProgram;
    DpaProgram dpaProgram;
};

/**
 * Lower a matched kernel for one channel of the given geometry.
 * Static lowering must assume @p t_max tokens; the DPA form scales
 * with the runtime token length instead.
 */
LoweredKernel lowerKernel(const MatchedKernel &match,
                          const AimTimingParams &params, Tokens t_max);

/** Fully-unrolled instruction bytes at @p t_max (Fig. 10c). */
Bytes staticProgramBytes(const LoweredKernel &kernel);

/** DPA-encoded bytes (context independent). */
Bytes dpaProgramBytes(const LoweredKernel &kernel);

} // namespace pimphony

#endif // PIMPHONY_COMPILER_PASSES_HH
