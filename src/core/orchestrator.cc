#include "core/orchestrator.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pimphony {

PimphonyOrchestrator::PimphonyOrchestrator(OrchestratorConfig config)
    : config_(std::move(config))
{
}

ClusterConfig
PimphonyOrchestrator::cluster() const
{
    ClusterConfig c = config_.system == SystemKind::PimOnly
        ? ClusterConfig::centLike(config_.model)
        : ClusterConfig::neupimsLike(config_.model);
    if (config_.modulesOverride != 0) {
        c.nModules = config_.modulesOverride;
        c.plan = ParallelPlan{c.nModules, 1};
    }
    applyOptions(c, config_.options);
    return c;
}

std::vector<ParallelPlan>
PimphonyOrchestrator::candidatePlans() const
{
    ClusterConfig c = cluster();
    std::vector<ParallelPlan> plans;
    for (unsigned tp = 1; tp <= c.nModules; tp *= 2) {
        unsigned pp = c.nModules / tp;
        if (tp * pp != c.nModules)
            continue;
        // PP cannot exceed the layer count.
        if (pp > config_.model.nLayers)
            continue;
        plans.push_back(ParallelPlan{tp, pp});
    }
    return plans;
}

EvaluationResult
PimphonyOrchestrator::runPlan(const std::vector<Request> &requests,
                              const ParallelPlan &plan) const
{
    ClusterConfig c = cluster();
    c.plan = plan;
    EngineOptions opts;
    // The shared serving knobs travel as one block (the
    // ServingOptions base both structs embed).
    static_cast<ServingOptions &>(opts) = config_;
    opts.allocator = config_.options.dpa ? AllocatorKind::LazyChunk
                                         : AllocatorKind::Static;
    opts.maxSteps = config_.maxSteps;
    ServingEngine engine(c, config_.model, requests, opts);
    EvaluationResult out;
    out.engine = engine.run();
    out.plan = plan;
    out.label = config_.options.label();
    return out;
}

EvaluationResult
PimphonyOrchestrator::evaluateRequests(
    const std::vector<Request> &requests) const
{
    if (config_.plan.tp != 0)
        return runPlan(requests, config_.plan);

    // Auto-search: best throughput over the candidate plans.
    EvaluationResult best;
    bool have = false;
    for (const auto &plan : candidatePlans()) {
        EvaluationResult r = runPlan(requests, plan);
        if (!have ||
            r.engine.tokensPerSecond > best.engine.tokensPerSecond) {
            best = r;
            have = true;
        }
    }
    if (!have)
        fatal("no feasible (TP,PP) plan");
    return best;
}

EvaluationResult
PimphonyOrchestrator::evaluate(TraceTask task) const
{
    TraceGenerator gen(task, config_.seed);
    auto requests = gen.generate(config_.nRequests, config_.decodeTokens);
    return evaluateRequests(requests);
}

} // namespace pimphony
