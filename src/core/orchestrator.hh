/**
 * @file
 * PIMphony orchestrator: the library's top-level API.
 *
 * A PimphonyOrchestrator owns a system configuration (CENT-like
 * PIM-only or NeuPIMs-like xPU+PIM), a model, and the technique set
 * {TCP, DCS, DPA}; it evaluates serving workloads and exposes the
 * metrics the paper's evaluation reports. The (TP, PP) plan can be
 * fixed or auto-searched ("optimal TP/PP settings", Figs. 13-15).
 */

#ifndef PIMPHONY_CORE_ORCHESTRATOR_HH
#define PIMPHONY_CORE_ORCHESTRATOR_HH

#include <cstdint>
#include <vector>

#include "system/engine.hh"
#include "workload/trace.hh"

namespace pimphony {

/**
 * Top-level evaluation configuration. The serving knobs shared with
 * the engine (stepModel, prefillChunkTokens, chargePrefill, sched,
 * tenantBudgets) live in the ServingOptions base —
 * system/serving_options.hh documents them — and are forwarded to
 * EngineOptions wholesale at runPlan time, so a new serving knob is
 * added in exactly one place.
 */
struct OrchestratorConfig : ServingOptions
{
    SystemKind system = SystemKind::PimOnly;
    LlmConfig model = LlmConfig::llm7b(false);
    PimphonyOptions options;

    /** Fixed plan; tp = 0 requests an automatic TP/PP search. */
    ParallelPlan plan{0, 0};

    /** Module-count override (0 = the preset's deployment size). */
    unsigned modulesOverride = 0;

    /** Requests per evaluation and decode length. */
    std::size_t nRequests = 48;
    Tokens decodeTokens = 128;
    std::uint64_t seed = 42;

    /** Engine safety cap. */
    std::uint64_t maxSteps = 200000;
};

struct EvaluationResult
{
    EngineResult engine;
    ParallelPlan plan;
    std::string label;
};

class PimphonyOrchestrator
{
  public:
    explicit PimphonyOrchestrator(OrchestratorConfig config);

    /** Evaluate one trace task end to end. */
    EvaluationResult evaluate(TraceTask task) const;

    /** Evaluate a pre-built request list. */
    EvaluationResult evaluateRequests(
        const std::vector<Request> &requests) const;

    /** Candidate (TP, PP) plans for the configured module count. */
    std::vector<ParallelPlan> candidatePlans() const;

    /** The cluster this orchestrator drives (post-options). */
    ClusterConfig cluster() const;

    const OrchestratorConfig &config() const { return config_; }

  private:
    EvaluationResult runPlan(const std::vector<Request> &requests,
                             const ParallelPlan &plan) const;

    OrchestratorConfig config_;
};

} // namespace pimphony

#endif // PIMPHONY_CORE_ORCHESTRATOR_HH
