/**
 * @file
 * All-bank refresh model.
 *
 * The channel must pause command issue for tRFC every tREFI on
 * average. The tracker tells the channel simulator, for a given issue
 * time, how far the issue must be pushed back to account for any
 * refresh windows that have become due.
 */

#ifndef PIMPHONY_DRAM_REFRESH_HH
#define PIMPHONY_DRAM_REFRESH_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/timing.hh"

namespace pimphony {

class RefreshModel
{
  public:
    explicit RefreshModel(const AimTimingParams &params)
        : params_(params), nextDue_(params.tRefi)
    {
    }

    /**
     * Adjust a tentative issue time for refresh interference.
     *
     * Any refresh whose due time precedes @p tentative stalls the bus
     * for tRFC; dues accumulate while a long command burst runs.
     *
     * @return the adjusted issue time (>= @p tentative).
     */
    Cycle
    adjust(Cycle tentative)
    {
        Cycle t = tentative;
        while (params_.tRefi > 0 && nextDue_ <= t) {
            t = nextDue_ + params_.tRfc > t ? nextDue_ + params_.tRfc : t;
            nextDue_ += params_.tRefi;
            ++refreshes_;
            stallCycles_ += params_.tRfc;
        }
        return t;
    }

    std::uint64_t refreshes() const { return refreshes_; }
    Cycle stallCycles() const { return stallCycles_; }

  private:
    const AimTimingParams &params_;
    Cycle nextDue_;
    std::uint64_t refreshes_ = 0;
    Cycle stallCycles_ = 0;
};

} // namespace pimphony

#endif // PIMPHONY_DRAM_REFRESH_HH
