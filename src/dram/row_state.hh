/**
 * @file
 * Lock-step row state for an AiM channel.
 *
 * All-bank MAC commands activate the same row index in every bank of
 * the channel simultaneously, so the channel behaves as one wide bank
 * with respect to row open/close dynamics. This tracker accounts for
 * the activate/precharge latency incurred when a command stream moves
 * between rows, and counts row switches for the energy model.
 */

#ifndef PIMPHONY_DRAM_ROW_STATE_HH
#define PIMPHONY_DRAM_ROW_STATE_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/timing.hh"

namespace pimphony {

/** Logical row index within a channel's weight/KV layout. */
using RowIndex = std::int64_t;

/** Sentinel meaning "no row open". */
inline constexpr RowIndex kNoRow = -1;

class RowStateTracker
{
  public:
    explicit RowStateTracker(const AimTimingParams &params)
        : params_(params)
    {
    }

    /**
     * Prepare @p row for access.
     *
     * @return the extra cycles (precharge + activate) the access must
     * wait before the row buffer holds @p row; 0 when it is already
     * open.
     */
    Cycle
    prepare(RowIndex row)
    {
        if (row == openRow_)
            return 0;
        Cycle penalty = 0;
        if (openRow_ != kNoRow) {
            penalty += params_.tRp;
            ++precharges_;
        }
        penalty += params_.tRcdRd;
        ++activates_;
        openRow_ = row;
        return penalty;
    }

    /** Close the open row (end-of-kernel or refresh). */
    void
    close()
    {
        if (openRow_ != kNoRow) {
            ++precharges_;
            openRow_ = kNoRow;
        }
    }

    RowIndex openRow() const { return openRow_; }
    std::uint64_t activates() const { return activates_; }
    std::uint64_t precharges() const { return precharges_; }

    void
    resetStats()
    {
        activates_ = 0;
        precharges_ = 0;
    }

  private:
    const AimTimingParams &params_;
    RowIndex openRow_ = kNoRow;
    std::uint64_t activates_ = 0;
    std::uint64_t precharges_ = 0;
};

} // namespace pimphony

#endif // PIMPHONY_DRAM_ROW_STATE_HH
