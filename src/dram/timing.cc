#include "dram/timing.hh"

namespace pimphony {

AimTimingParams
AimTimingParams::aimx()
{
    return AimTimingParams{};
}

AimTimingParams
AimTimingParams::aimxWithObuf(unsigned obuf_entries)
{
    AimTimingParams p;
    p.outputEntries = obuf_entries;
    return p;
}

AimTimingParams
AimTimingParams::illustrative()
{
    AimTimingParams p;
    p.tCcds = 2;
    p.tWrInp = 4;
    p.tMac = 3;
    p.tRdOut = 4;
    p.tRcdRd = 0;
    p.tRp = 0;
    p.tRefi = 0; // disable refresh for the worked example
    p.tRfc = 0;
    p.outputEntries = 4;
    return p;
}

} // namespace pimphony
