/**
 * @file
 * GDDR6-AiM timing and geometry parameters.
 *
 * The values model an AiMX-class PIM channel: 16 banks, a 2 KB shared
 * Global Buffer (64 x 32 B tiles), per-bank output registers, and a
 * command bus with a minimum command-to-command spacing (tCCDS).
 * Absolute values are calibrated so that the worked example of the
 * paper's Fig. 7 (static = 34 cycles) is reproduced; everything the
 * evaluation reports is a ratio, so only relative magnitudes matter.
 */

#ifndef PIMPHONY_DRAM_TIMING_HH
#define PIMPHONY_DRAM_TIMING_HH

#include "common/types.hh"
#include "common/units.hh"

namespace pimphony {

/**
 * Timing (command-clock cycles) and geometry of one PIM channel.
 */
struct AimTimingParams
{
    /** Command clock frequency, used to convert cycles to seconds. */
    double clockGhz = 1.0;

    /** Minimum issue-to-issue spacing on the shared command/data bus. */
    Cycle tCcds = 2;

    /**
     * WR-INP: one 32 B tile transferred from GPR into a GBuf entry.
     * The value reflects the effective per-tile landing latency over
     * the module-internal bus the PIM HUB shares across channels.
     */
    Cycle tWrInp = 24;

    /** MAC: one GBuf tile against one 32 B tile per bank, all banks. */
    Cycle tMac = 12;

    /** RD-OUT: drain 2 B from every bank (32 B total) into the GPR. */
    Cycle tRdOut = 24;

    /**
     * Row activate (closed -> open) latency; effective value, with
     * AiM's bank-parallel activation already folded in.
     */
    Cycle tRcdRd = 16;

    /** Row precharge (open -> closed) latency (effective). */
    Cycle tRp = 16;

    /** Average refresh interval. */
    Cycle tRefi = 3900;

    /** Refresh cycle time: channel stalls this long per refresh. */
    Cycle tRfc = 280;

    /** Banks operated in lock-step by each MAC command. */
    unsigned banksPerChannel = 16;

    /** GBuf capacity in 32 B entries (2 KB total). */
    unsigned gbufEntries = 64;

    /**
     * Output staging entries per channel.
     * Baseline hardware exposes a single accumulator set (OutRegs,
     * 4 B per bank); PIMphony's I/O-aware buffering widens this into
     * a multi-entry, dual-port Output Buffer (OBuf).
     */
    unsigned outputEntries = 1;

    /** Tile granularity moved by WR-INP / consumed by MAC. */
    Bytes tileBytes = 32;

    /** Row-buffer bytes per bank (one open row worth of weights). */
    Bytes rowBytesPerBank = 2048;

    /** Seconds per command-clock cycle. */
    double
    secondsPerCycle() const
    {
        return 1e-9 / clockGhz;
    }

    /** Bytes of weight data covered by one all-bank open row. */
    Bytes
    rowBytesPerChannel() const
    {
        return rowBytesPerBank * banksPerChannel;
    }

    /** Bytes consumed from DRAM by a single all-bank MAC command. */
    Bytes
    macBytesPerCommand() const
    {
        return tileBytes * banksPerChannel;
    }

    /** Baseline AiMX-calibrated preset (static OutRegs). */
    static AimTimingParams aimx();

    /** AiMX preset with PIMphony's I/O-aware buffering (OBuf). */
    static AimTimingParams aimxWithObuf(unsigned obuf_entries = 16);

    /**
     * Pedagogical parameters of the paper's Fig. 7 worked example
     * (tCCDS=2, tWR-INP=4, tMAC=3, tRD-OUT=4, no refresh), chosen so
     * the 11-command GEMV schedules in exactly 34 cycles statically.
     */
    static AimTimingParams illustrative();
};

} // namespace pimphony

#endif // PIMPHONY_DRAM_TIMING_HH
