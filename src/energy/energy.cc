#include "energy/energy.hh"

namespace pimphony {

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &o)
{
    mac += o.mac;
    io += o.io;
    background += o.background;
    actPre += o.actPre;
    refreshE += o.refreshE;
    elseE += o.elseE;
    return *this;
}

EnergyBreakdown
EnergyBreakdown::scaled(double f) const
{
    EnergyBreakdown e = *this;
    e.mac *= f;
    e.io *= f;
    e.background *= f;
    e.actPre *= f;
    e.refreshE *= f;
    e.elseE *= f;
    return e;
}

EnergyBreakdown
kernelEnergy(const ScheduleResult &result, const EnergyParams &params)
{
    EnergyBreakdown e;
    e.mac = params.macPerCommand * static_cast<double>(result.macCount);
    e.io = params.ioPerCommand *
           static_cast<double>(result.wrInpCount + result.rdOutCount);
    e.actPre = params.actPrePair * static_cast<double>(result.activates);
    e.refreshE = params.refresh * static_cast<double>(result.refreshes);
    e.background = params.backgroundPerCycle *
                   static_cast<double>(result.makespan);
    e.elseE = params.elsePerMac * static_cast<double>(result.macCount);
    return e;
}

EnergyBreakdown
backgroundEnergy(Cycle cycles, unsigned channels, const EnergyParams &params)
{
    EnergyBreakdown e;
    e.background = params.backgroundPerCycle * static_cast<double>(cycles) *
                   channels;
    return e;
}

} // namespace pimphony
