/**
 * @file
 * Energy model (Fig. 16).
 *
 * Per-event energies for the PIM channel operations plus a
 * background (standby/peripheral) power term. The paper's central
 * energy observation is that low MAC utilization makes runtime-
 * proportional background energy dominate (71.5% of baseline
 * attention energy) and that PIMphony's speedups collapse it.
 */

#ifndef PIMPHONY_ENERGY_ENERGY_HH
#define PIMPHONY_ENERGY_ENERGY_HH

#include "common/types.hh"
#include "dram/timing.hh"
#include "pim/schedule_result.hh"

namespace pimphony {

struct EnergyParams
{
    /** MAC command across all banks (pJ). */
    PicoJoules macPerCommand = 350.0;

    /** WR-INP / RD-OUT transfer (pJ per command, 32 B moved). */
    PicoJoules ioPerCommand = 220.0;

    /** Row activate + precharge pair (pJ). */
    PicoJoules actPrePair = 900.0;

    /** One all-bank refresh (pJ). */
    PicoJoules refresh = 4500.0;

    /** Background power per channel (pJ per cycle = mW at 1 GHz). */
    PicoJoules backgroundPerCycle = 45.0;

    /** EPU / GPR / interconnect ("else") pJ per MAC command. */
    PicoJoules elsePerMac = 40.0;
};

/** Energy split used by the Fig. 16 bars. */
struct EnergyBreakdown
{
    PicoJoules mac = 0;
    PicoJoules io = 0;
    PicoJoules background = 0;
    PicoJoules actPre = 0;
    PicoJoules refreshE = 0;
    PicoJoules elseE = 0;

    PicoJoules
    total() const
    {
        return mac + io + background + actPre + refreshE + elseE;
    }

    EnergyBreakdown &operator+=(const EnergyBreakdown &o);

    /** Scale all components (e.g. replicate across channels). */
    EnergyBreakdown scaled(double f) const;
};

/**
 * Energy of one scheduled kernel on one channel.
 */
EnergyBreakdown kernelEnergy(const ScheduleResult &result,
                             const EnergyParams &params);

/** Background-only energy for @p cycles of (idle or busy) runtime. */
EnergyBreakdown backgroundEnergy(Cycle cycles, unsigned channels,
                                 const EnergyParams &params);

} // namespace pimphony

#endif // PIMPHONY_ENERGY_ENERGY_HH
