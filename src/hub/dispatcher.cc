#include "hub/dispatcher.hh"

#include "common/logging.hh"

namespace pimphony {

void
OnModuleDispatcher::registerRequest(RequestId id, Tokens tokens)
{
    if (state_.count(id))
        panic("request %u registered twice", id);
    RequestState st;
    st.tokens = tokens;
    state_.emplace(id, std::move(st));
    ++hostMessages_;
}

void
OnModuleDispatcher::mapChunk(RequestId id, std::uint64_t physical_chunk)
{
    auto it = state_.find(id);
    if (it == state_.end())
        panic("mapChunk on unknown request %u", id);
    it->second.chunks.push_back(physical_chunk);
    ++hostMessages_;
}

void
OnModuleDispatcher::advanceToken(RequestId id)
{
    auto it = state_.find(id);
    if (it == state_.end())
        panic("advanceToken on unknown request %u", id);
    ++it->second.tokens; // local update; no host round-trip
}

void
OnModuleDispatcher::release(RequestId id)
{
    if (state_.erase(id) == 0)
        panic("release on unknown request %u", id);
    ++hostMessages_;
}

const OnModuleDispatcher::RequestState &
OnModuleDispatcher::stateOf(RequestId id) const
{
    auto it = state_.find(id);
    if (it == state_.end())
        panic("unknown request %u", id);
    return it->second;
}

Tokens
OnModuleDispatcher::tokens(RequestId id) const
{
    return stateOf(id).tokens;
}

RowIndex
OnModuleDispatcher::translate(RequestId id, RowIndex virtual_row) const
{
    const RequestState &st = stateOf(id);
    if (virtual_row < 0)
        panic("negative virtual row %lld",
              static_cast<long long>(virtual_row));
    std::uint64_t vchunk =
        static_cast<std::uint64_t>(virtual_row) / params_.rowsPerChunk;
    std::uint64_t offset =
        static_cast<std::uint64_t>(virtual_row) % params_.rowsPerChunk;
    if (vchunk >= st.chunks.size())
        panic("virtual row %lld beyond mapped chunks of request %u",
              static_cast<long long>(virtual_row), id);
    return static_cast<RowIndex>(st.chunks[vchunk] * params_.rowsPerChunk +
                                 offset);
}

std::vector<PimInstruction>
OnModuleDispatcher::expand(const DpaProgram &program, RequestId id) const
{
    const RequestState &st = stateOf(id);
    return program.expand(st.tokens, [this, id](RowIndex v) {
        return translate(id, v);
    });
}

Bytes
OnModuleDispatcher::stateBytes() const
{
    Bytes bytes = 0;
    for (const auto &[id, st] : state_) {
        bytes += 16;                    // config entry (id, T_cur, flags)
        bytes += st.chunks.size() * 8;  // VA2PA entries
    }
    return bytes;
}

bool
OnModuleDispatcher::fitsHardware() const
{
    Bytes config = 0, va2pa = 0;
    for (const auto &[id, st] : state_) {
        config += 16;
        va2pa += st.chunks.size() * 8;
    }
    return config <= params_.configBufferBytes &&
           va2pa <= params_.va2paBufferBytes;
}

} // namespace pimphony
