/**
 * @file
 * On-module PIM instruction dispatcher for DPA (Sec. VI-C).
 *
 * The dispatcher lives in the PIM HUB and holds, per active request:
 * a configuration entry (request id, current token length T_cur) and
 * a VA2PA table mapping virtual KV-cache chunks to physical chunks.
 * At decode time it expands the compact DPA-encoded program against
 * the request's T_cur and resolves virtual MAC rows to physical rows.
 * Decoding is pipelined with execution, so it adds no latency on the
 * critical path; the host is involved only when a request is
 * registered, needs a new chunk, or completes.
 */

#ifndef PIMPHONY_HUB_DISPATCHER_HH
#define PIMPHONY_HUB_DISPATCHER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "isa/dpa.hh"

namespace pimphony {

struct DispatcherParams
{
    /** Rows covered by one physical chunk (1 MiB / row bytes). */
    std::uint64_t rowsPerChunk = 64;

    /** Instruction buffer capacity (compact DPA programs). */
    Bytes instructionBufferBytes = 64 * 1024;

    /** Configuration buffer capacity. */
    Bytes configBufferBytes = 4 * 1024;

    /** VA2PA table capacity. */
    Bytes va2paBufferBytes = 128 * 1024;
};

class OnModuleDispatcher
{
  public:
    explicit OnModuleDispatcher(const DispatcherParams &params = {})
        : params_(params)
    {
    }

    /** Host installs a new request with its initial token length. */
    void registerRequest(RequestId id, Tokens tokens);

    /** Host maps one more physical chunk to the request's next
     *  virtual chunk. */
    void mapChunk(RequestId id, std::uint64_t physical_chunk);

    /** Dispatcher-local token increment after each generated token
     *  (no host involvement). */
    void advanceToken(RequestId id);

    /** Host releases a completed request. */
    void release(RequestId id);

    Tokens tokens(RequestId id) const;

    /** Virtual row -> physical row for @p id. Rows beyond the mapped
     *  chunks are a fatal programming error. */
    RowIndex translate(RequestId id, RowIndex virtual_row) const;

    /**
     * Expand a DPA program for @p id: Dyn-Loop bounds resolve against
     * the request's T_cur and MAC rows translate through VA2PA.
     */
    std::vector<PimInstruction> expand(const DpaProgram &program,
                                       RequestId id) const;

    /** Host<->module messages so far (register/map/release only). */
    std::uint64_t hostMessages() const { return hostMessages_; }

    /** Bytes of dispatcher state currently in use. */
    Bytes stateBytes() const;

    /** True when all per-request state fits the hardware buffers. */
    bool fitsHardware() const;

    std::size_t activeRequests() const { return state_.size(); }

    const DispatcherParams &params() const { return params_; }

  private:
    struct RequestState
    {
        Tokens tokens = 0;
        std::vector<std::uint64_t> chunks; // VA chunk -> PA chunk
    };

    const RequestState &stateOf(RequestId id) const;

    DispatcherParams params_;
    std::unordered_map<RequestId, RequestState> state_;
    std::uint64_t hostMessages_ = 0;
};

} // namespace pimphony

#endif // PIMPHONY_HUB_DISPATCHER_HH
