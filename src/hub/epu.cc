#include "hub/epu.hh"

#include "common/units.hh"

namespace pimphony {

Cycle
EpuModel::softmaxCycles(std::uint64_t elements) const
{
    if (elements == 0)
        return 0;
    Cycle per_pass = ceilDiv<std::uint64_t>(elements, params_.lanes);
    return params_.fixedCycles + params_.softmaxPasses * per_pass;
}

Cycle
EpuModel::reduceCycles(std::uint64_t partials, std::uint64_t elements) const
{
    if (partials <= 1 || elements == 0)
        return 0;
    // (partials - 1) pairwise adds over vectors of `elements`.
    Cycle adds = (partials - 1) *
                 ceilDiv<std::uint64_t>(elements, params_.lanes);
    return params_.fixedCycles + adds;
}

} // namespace pimphony
