/**
 * @file
 * Extra Processing Unit (EPU) latency model.
 *
 * The EPU in the PIM HUB performs the auxiliary vector work of
 * attention: softmax over the QK^T scores (gathered from all
 * channels' output registers through the GPR) and the inter-channel
 * partial-sum reductions TCP and the partial-drain GEMV dataflow
 * produce.
 */

#ifndef PIMPHONY_HUB_EPU_HH
#define PIMPHONY_HUB_EPU_HH

#include <cstdint>

#include "common/types.hh"

namespace pimphony {

struct EpuParams
{
    /** SIMD lanes (elements processed per cycle). */
    unsigned lanes = 16;

    /** Fixed cost per invocation (pipeline fill, LUT setup). */
    Cycle fixedCycles = 32;

    /** Passes over the data for a softmax (max, exp/sum, scale). */
    unsigned softmaxPasses = 3;
};

class EpuModel
{
  public:
    explicit EpuModel(const EpuParams &params = {}) : params_(params) {}

    /** Softmax over @p elements scores. */
    Cycle softmaxCycles(std::uint64_t elements) const;

    /**
     * Reduce @p partials vectors of @p elements each into one
     * (tree reduction, one add pass per level).
     */
    Cycle reduceCycles(std::uint64_t partials,
                       std::uint64_t elements) const;

    const EpuParams &params() const { return params_; }

  private:
    EpuParams params_;
};

} // namespace pimphony

#endif // PIMPHONY_HUB_EPU_HH
