#include "hub/sequencer.hh"

#include "common/units.hh"

namespace pimphony {

bool
InstructionSequencer::fits(const std::vector<PimInstruction> &program) const
{
    return programBytes(program) <= params_.bufferBytes;
}

std::uint64_t
InstructionSequencer::refills(
    const std::vector<PimInstruction> &program) const
{
    Bytes total = programBytes(program);
    if (total <= params_.bufferBytes)
        return 0;
    return ceilDiv<Bytes>(total, params_.bufferBytes) - 1;
}

CommandStream
InstructionSequencer::expandProgram(
    const std::vector<PimInstruction> &program) const
{
    CommandStream stream;
    std::int32_t group = 0;
    for (const auto &instr : program) {
        for (auto cmd : expandInstruction(instr)) {
            cmd.group = group;
            stream.append(cmd);
        }
        ++group;
    }
    return stream;
}

} // namespace pimphony
