/**
 * @file
 * PIM HUB Instruction Sequencer model.
 *
 * The sequencer holds the (static or dispatcher-decoded) instruction
 * program in its instruction buffer and unrolls each instruction's
 * Op-size repetitions into the channel command stream. Its buffer
 * capacity is the scalability bottleneck Fig. 10(c) highlights:
 * fully unrolled static programs grow linearly with context length
 * and overflow it, while DPA-encoded programs stay constant.
 */

#ifndef PIMPHONY_HUB_SEQUENCER_HH
#define PIMPHONY_HUB_SEQUENCER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/pim_instruction.hh"

namespace pimphony {

struct SequencerParams
{
    /** Instruction buffer capacity. */
    Bytes bufferBytes = 256 * 1024;

    /** Instructions decoded per cycle (pipelined with execution). */
    unsigned decodeRate = 1;
};

class InstructionSequencer
{
  public:
    explicit InstructionSequencer(const SequencerParams &params = {})
        : params_(params)
    {
    }

    /** Whether @p program fits in the instruction buffer. */
    bool fits(const std::vector<PimInstruction> &program) const;

    /**
     * Number of host refills needed to stream @p program through the
     * buffer when it does not fit at once.
     */
    std::uint64_t refills(const std::vector<PimInstruction> &program) const;

    /** Expand a whole program into one per-channel command stream. */
    CommandStream expandProgram(
        const std::vector<PimInstruction> &program) const;

    const SequencerParams &params() const { return params_; }

  private:
    SequencerParams params_;
};

} // namespace pimphony

#endif // PIMPHONY_HUB_SEQUENCER_HH
