#include "isa/dpa.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace pimphony {

void
DpaProgram::pushInstr(const PimInstruction &instr)
{
    DpaOp op;
    op.kind = DpaOpKind::Instr;
    op.instr = instr;
    ops_.push_back(op);
}

void
DpaProgram::pushDynLoop(LoopBound bound, std::uint64_t const_bound,
                        std::uint64_t tokens_divisor)
{
    if (bound == LoopBound::TokensDiv && tokens_divisor == 0)
        panic("Dyn-Loop with zero tokens divisor");
    DpaOp op;
    op.kind = DpaOpKind::DynLoop;
    op.bound = bound;
    op.constBound = const_bound;
    op.tokensDivisor = tokens_divisor;
    ops_.push_back(op);
}

void
DpaProgram::pushDynModi(ModiField field, std::int64_t stride)
{
    DpaOp op;
    op.kind = DpaOpKind::DynModi;
    op.field = field;
    op.stride = stride;
    ops_.push_back(op);
}

void
DpaProgram::pushEndLoop()
{
    DpaOp op;
    op.kind = DpaOpKind::EndLoop;
    ops_.push_back(op);
}

Bytes
DpaProgram::encodedBytes() const
{
    return static_cast<Bytes>(ops_.size()) * kInstructionBytes;
}

namespace {

/** Per-iteration operand offsets accumulated by Dyn-Modi ops. */
struct ModiState
{
    std::int64_t row = 0;
    std::int64_t col = 0;
    std::int64_t gbuf = 0;
    std::int64_t out = 0;
    std::int64_t gpr = 0;

    void
    apply(ModiField field, std::int64_t delta)
    {
        switch (field) {
          case ModiField::Row:     row += delta; break;
          case ModiField::Col:     col += delta; break;
          case ModiField::GbufIdx: gbuf += delta; break;
          case ModiField::OutIdx:  out += delta; break;
          case ModiField::GprAddr: gpr += delta; break;
        }
    }
};

PimInstruction
offsetInstruction(const PimInstruction &base, const ModiState &m,
                  const std::function<RowIndex(RowIndex)> &translate)
{
    PimInstruction i = base;
    if (i.row != kNoRow)
        i.row += m.row;
    if (i.col >= 0)
        i.col += static_cast<std::int32_t>(m.col);
    if (i.gbufIdx >= 0)
        i.gbufIdx += static_cast<std::int32_t>(m.gbuf);
    if (i.outIdx >= 0)
        i.outIdx += static_cast<std::int32_t>(m.out);
    i.gprAddr += static_cast<std::uint64_t>(m.gpr);
    if (translate && i.kind == CommandKind::Mac && i.row != kNoRow)
        i.row = translate(i.row);
    return i;
}

} // namespace

std::vector<PimInstruction>
DpaProgram::expand(Tokens tokens,
                   const std::function<RowIndex(RowIndex)> &translate) const
{
    std::vector<PimInstruction> out;

    // Recursive-descent interpretation over the op list.
    std::function<std::size_t(std::size_t, ModiState)> run =
        [&](std::size_t pc, ModiState outer) -> std::size_t {
        // Per-loop-body Dyn-Modi strides, applied cumulatively per
        // iteration on top of the enclosing scope's offsets.
        std::size_t start = pc;
        (void)start;
        while (pc < ops_.size()) {
            const DpaOp &op = ops_[pc];
            switch (op.kind) {
              case DpaOpKind::Instr:
                out.push_back(offsetInstruction(op.instr, outer, translate));
                ++pc;
                break;
              case DpaOpKind::DynModi:
                // Strides are advanced once per enclosing Dyn-Loop
                // iteration (see the re-scan below); iteration i sees
                // an accumulated offset of i * stride. A Dyn-Modi
                // outside any loop is a no-op by construction.
                ++pc;
                break;
              case DpaOpKind::DynLoop: {
                std::uint64_t trip = op.bound == LoopBound::Constant
                    ? op.constBound
                    : ceilDiv<std::uint64_t>(tokens, op.tokensDivisor);
                // Gather the body's per-iteration strides: Dyn-Modi
                // ops directly inside the body advance the offsets on
                // every iteration.
                std::size_t body = pc + 1;
                std::size_t after = body;
                ModiState iter = outer;
                for (std::uint64_t it = 0; it < trip; ++it) {
                    after = run(body, iter);
                    // Re-scan the body's top-level Dyn-Modi strides to
                    // advance the iteration state.
                    std::size_t scan = body;
                    int depth = 0;
                    while (scan < ops_.size()) {
                        const DpaOp &b = ops_[scan];
                        if (b.kind == DpaOpKind::DynLoop) {
                            ++depth;
                        } else if (b.kind == DpaOpKind::EndLoop) {
                            if (depth == 0)
                                break;
                            --depth;
                        } else if (b.kind == DpaOpKind::DynModi &&
                                   depth == 0) {
                            iter.apply(b.field, b.stride);
                        }
                        ++scan;
                    }
                }
                if (trip == 0) {
                    // Skip the body entirely.
                    std::size_t scan = pc + 1;
                    int depth = 0;
                    while (scan < ops_.size()) {
                        if (ops_[scan].kind == DpaOpKind::DynLoop)
                            ++depth;
                        else if (ops_[scan].kind == DpaOpKind::EndLoop) {
                            if (depth == 0)
                                break;
                            --depth;
                        }
                        ++scan;
                    }
                    after = scan;
                }
                pc = after + 1;
                break;
              }
              case DpaOpKind::EndLoop:
                return pc;
            }
        }
        return pc;
    };

    ModiState root;
    run(0, root);
    return out;
}

} // namespace pimphony
