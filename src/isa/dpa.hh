/**
 * @file
 * Dynamic PIM Access (DPA) instructions (Sec. VI-B).
 *
 * DPA escapes the static execution model with two control constructs:
 *
 *  - @c Dyn-Loop: a loop whose bound is resolved at runtime from the
 *    request's current token length (T_cur), not a compile-time
 *    maximum.
 *  - @c Dyn-Modi: modifies a target operand field of the following
 *    instruction(s) by a stride each iteration, producing *virtual*
 *    addresses that the on-module dispatcher translates through the
 *    VA2PA table.
 *
 * A DPA program is therefore compact: its encoded size is independent
 * of the context length, unlike a fully unrolled static program whose
 * size grows linearly with tokens (Fig. 10).
 */

#ifndef PIMPHONY_ISA_DPA_HH
#define PIMPHONY_ISA_DPA_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hh"
#include "isa/pim_instruction.hh"

namespace pimphony {

/** Where a Dyn-Loop obtains its bound at decode time. */
enum class LoopBound : std::uint8_t {
    /** Constant baked at compile time (layers, heads, dims). */
    Constant,
    /** ceil(T_cur / divisor): token-dependent trip count. */
    TokensDiv,
};

/** Which operand field a Dyn-Modi strides. */
enum class ModiField : std::uint8_t {
    Row,
    Col,
    GbufIdx,
    OutIdx,
    GprAddr,
};

enum class DpaOpKind : std::uint8_t {
    Instr,     ///< plain Table III instruction
    DynLoop,   ///< loop header
    DynModi,   ///< per-iteration operand stride
    EndLoop,   ///< loop trailer
};

struct DpaOp
{
    DpaOpKind kind = DpaOpKind::Instr;

    /** Valid when kind == Instr. */
    PimInstruction instr;

    /** Valid when kind == DynLoop. */
    LoopBound bound = LoopBound::Constant;
    std::uint64_t constBound = 1;
    std::uint64_t tokensDivisor = 1;

    /** Valid when kind == DynModi: applies to the next Instr op. */
    ModiField field = ModiField::Row;
    std::int64_t stride = 0;
};

/**
 * A compact, runtime-expandable PIM program.
 */
class DpaProgram
{
  public:
    void pushInstr(const PimInstruction &instr);
    void pushDynLoop(LoopBound bound, std::uint64_t const_bound,
                     std::uint64_t tokens_divisor = 1);
    void pushDynModi(ModiField field, std::int64_t stride);
    void pushEndLoop();

    const std::vector<DpaOp> &ops() const { return ops_; }

    /** Encoded size: every DPA op occupies one instruction word. */
    Bytes encodedBytes() const;

    /**
     * Reference expansion semantics, shared with the on-module
     * dispatcher: resolve Dyn-Loop bounds against @p tokens, apply
     * Dyn-Modi strides per iteration, and map each produced
     * instruction's virtual row through @p translate (identity when
     * null). Single-level loops cover the paper's attention kernels;
     * nesting is supported for layer/head loops.
     */
    std::vector<PimInstruction>
    expand(Tokens tokens,
           const std::function<RowIndex(RowIndex)> &translate = {}) const;

  private:
    std::vector<DpaOp> ops_;
};

} // namespace pimphony

#endif // PIMPHONY_ISA_DPA_HH
