#include "isa/pim_command.hh"

#include <cstdio>
#include <vector>

namespace pimphony {

PimCommand
PimCommand::wrInp(std::int32_t gbuf_idx)
{
    PimCommand c;
    c.kind = CommandKind::WrInp;
    c.gbufIdx = gbuf_idx;
    return c;
}

PimCommand
PimCommand::mac(std::int32_t gbuf_idx, std::int32_t out_idx, RowIndex row,
                std::int32_t col)
{
    PimCommand c;
    c.kind = CommandKind::Mac;
    c.gbufIdx = gbuf_idx;
    c.outIdx = out_idx;
    c.row = row;
    c.col = col;
    return c;
}

PimCommand
PimCommand::rdOut(std::int32_t out_idx)
{
    PimCommand c;
    c.kind = CommandKind::RdOut;
    c.outIdx = out_idx;
    return c;
}

std::string
PimCommand::toString() const
{
    char buf[96];
    switch (kind) {
      case CommandKind::WrInp:
        std::snprintf(buf, sizeof(buf), "W%llu(g%d)",
                      static_cast<unsigned long long>(id), gbufIdx);
        break;
      case CommandKind::Mac:
        std::snprintf(buf, sizeof(buf), "M%llu(g%d,o%d,r%lld,c%d)",
                      static_cast<unsigned long long>(id), gbufIdx, outIdx,
                      static_cast<long long>(row), col);
        break;
      case CommandKind::RdOut:
        std::snprintf(buf, sizeof(buf), "R%llu(o%d)",
                      static_cast<unsigned long long>(id), outIdx);
        break;
    }
    return buf;
}

void
CommandStream::append(PimCommand cmd)
{
    cmd.id = commands_.size();
    commands_.push_back(cmd);
}

std::size_t
CommandStream::countKind(CommandKind kind) const
{
    std::size_t n = 0;
    for (const auto &c : commands_)
        if (c.kind == kind)
            ++n;
    return n;
}

std::string
CommandStream::validate(unsigned gbuf_entries, unsigned output_entries) const
{
    std::vector<bool> gbuf_written(gbuf_entries, false);
    std::vector<bool> out_written(output_entries, false);
    char buf[128];

    for (const auto &c : commands_) {
        switch (c.kind) {
          case CommandKind::WrInp:
            if (c.gbufIdx < 0 ||
                c.gbufIdx >= static_cast<std::int32_t>(gbuf_entries)) {
                std::snprintf(buf, sizeof(buf),
                              "WR-INP %llu: gbuf index %d out of range",
                              static_cast<unsigned long long>(c.id),
                              c.gbufIdx);
                return buf;
            }
            gbuf_written[static_cast<std::size_t>(c.gbufIdx)] = true;
            break;
          case CommandKind::Mac:
            if (c.gbufIdx < 0 ||
                c.gbufIdx >= static_cast<std::int32_t>(gbuf_entries)) {
                std::snprintf(buf, sizeof(buf),
                              "MAC %llu: gbuf index %d out of range",
                              static_cast<unsigned long long>(c.id),
                              c.gbufIdx);
                return buf;
            }
            if (!gbuf_written[static_cast<std::size_t>(c.gbufIdx)]) {
                std::snprintf(buf, sizeof(buf),
                              "MAC %llu reads unwritten gbuf entry %d",
                              static_cast<unsigned long long>(c.id),
                              c.gbufIdx);
                return buf;
            }
            if (c.outIdx < 0 ||
                c.outIdx >= static_cast<std::int32_t>(output_entries)) {
                std::snprintf(buf, sizeof(buf),
                              "MAC %llu: out index %d out of range",
                              static_cast<unsigned long long>(c.id),
                              c.outIdx);
                return buf;
            }
            if (c.row == kNoRow) {
                std::snprintf(buf, sizeof(buf), "MAC %llu has no row",
                              static_cast<unsigned long long>(c.id));
                return buf;
            }
            out_written[static_cast<std::size_t>(c.outIdx)] = true;
            break;
          case CommandKind::RdOut:
            if (c.outIdx < 0 ||
                c.outIdx >= static_cast<std::int32_t>(output_entries)) {
                std::snprintf(buf, sizeof(buf),
                              "RD-OUT %llu: out index %d out of range",
                              static_cast<unsigned long long>(c.id),
                              c.outIdx);
                return buf;
            }
            if (!out_written[static_cast<std::size_t>(c.outIdx)]) {
                std::snprintf(buf, sizeof(buf),
                              "RD-OUT %llu drains idle out entry %d",
                              static_cast<unsigned long long>(c.id),
                              c.outIdx);
                return buf;
            }
            // Draining frees the accumulator for a new output group.
            out_written[static_cast<std::size_t>(c.outIdx)] = false;
            break;
        }
    }
    return {};
}

} // namespace pimphony
