/**
 * @file
 * Channel-level PIM command primitives.
 *
 * A command is the unit the PIM controller schedules (Sec. V of the
 * paper): WR-INP moves one 32 B tile from the GPR into a Global
 * Buffer entry, MAC consumes one GBuf entry against one weight tile
 * per bank (all banks in lock-step) accumulating into an output
 * entry, and RD-OUT drains one output entry (2 B per bank) back to
 * the GPR.
 */

#ifndef PIMPHONY_ISA_PIM_COMMAND_HH
#define PIMPHONY_ISA_PIM_COMMAND_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "dram/row_state.hh"

namespace pimphony {

enum class CommandKind : std::uint8_t {
    WrInp,
    Mac,
    RdOut,
};

/** True for the commands that move data over the channel I/O path. */
inline bool
isIoCommand(CommandKind kind)
{
    return kind == CommandKind::WrInp || kind == CommandKind::RdOut;
}

struct PimCommand
{
    CommandKind kind = CommandKind::Mac;

    /** Position in the stream; doubles as the D-Table command ID. */
    CommandId id = 0;

    /** GBuf entry written (WR-INP) or read (MAC); -1 when unused. */
    std::int32_t gbufIdx = -1;

    /** Output entry accumulated (MAC) or drained (RD-OUT); -1 unused. */
    std::int32_t outIdx = -1;

    /** DRAM row holding the weight tiles (MAC only). */
    RowIndex row = kNoRow;

    /** Tile column within the row (MAC only). */
    std::int32_t col = -1;

    /**
     * Instruction group: commands unrolled from the same hub
     * instruction (same kind, consecutive addresses). A static
     * controller streams commands of one group at tCCDS and applies
     * its conservative timing gap only at group boundaries.
     */
    std::int32_t group = -1;

    /**
     * Ping-pong region tag (0/1) when the stream was generated for a
     * split-buffer controller; -1 otherwise.
     */
    std::int8_t region = -1;

    /**
     * Logical source-tile id carried by WR-INP commands (which input
     * tile of the kernel lands in the GBuf entry). Timing-neutral;
     * consumed by the dataflow checker to validate that kernels
     * compute exactly the right products.
     */
    std::int32_t src = -1;

    static PimCommand wrInp(std::int32_t gbuf_idx);
    static PimCommand mac(std::int32_t gbuf_idx, std::int32_t out_idx,
                          RowIndex row, std::int32_t col);
    static PimCommand rdOut(std::int32_t out_idx);

    std::string toString() const;
};

/**
 * An ordered command stream for one channel, with IDs assigned in
 * program order.
 */
class CommandStream
{
  public:
    void append(PimCommand cmd);

    const std::vector<PimCommand> &commands() const { return commands_; }
    std::size_t size() const { return commands_.size(); }
    bool empty() const { return commands_.empty(); }
    const PimCommand &operator[](std::size_t i) const { return commands_[i]; }

    std::size_t countKind(CommandKind kind) const;

    /**
     * Structural validation: every MAC reads a GBuf entry that some
     * earlier WR-INP produced, every RD-OUT drains an output entry
     * some earlier MAC accumulated into, and indices stay within the
     * given buffer geometries.
     *
     * @return empty string when valid, else a diagnostic.
     */
    std::string validate(unsigned gbuf_entries,
                         unsigned output_entries) const;

  private:
    std::vector<PimCommand> commands_;
};

} // namespace pimphony

#endif // PIMPHONY_ISA_PIM_COMMAND_HH
