#include "isa/pim_instruction.hh"

#include "common/logging.hh"

namespace pimphony {

PimInstruction
PimInstruction::wrInp(std::uint32_t ch_mask, std::uint32_t op_size,
                      std::uint64_t gpr_addr, std::int32_t gbuf_idx)
{
    PimInstruction i;
    i.kind = CommandKind::WrInp;
    i.chMask = ch_mask;
    i.opSize = op_size;
    i.gprAddr = gpr_addr;
    i.gbufIdx = gbuf_idx;
    return i;
}

PimInstruction
PimInstruction::mac(std::uint32_t ch_mask, std::uint32_t op_size,
                    std::int32_t gbuf_idx, std::int32_t out_idx, RowIndex row,
                    std::int32_t col, std::int32_t cols_per_row)
{
    PimInstruction i;
    i.kind = CommandKind::Mac;
    i.chMask = ch_mask;
    i.opSize = op_size;
    i.gbufIdx = gbuf_idx;
    i.outIdx = out_idx;
    i.row = row;
    i.col = col;
    i.colsPerRow = cols_per_row;
    return i;
}

PimInstruction
PimInstruction::rdOut(std::uint32_t ch_mask, std::uint32_t op_size,
                      std::uint64_t gpr_addr, std::int32_t out_idx)
{
    PimInstruction i;
    i.kind = CommandKind::RdOut;
    i.chMask = ch_mask;
    i.opSize = op_size;
    i.gprAddr = gpr_addr;
    i.outIdx = out_idx;
    return i;
}

std::vector<PimCommand>
expandInstruction(const PimInstruction &instr)
{
    if (instr.opSize == 0)
        panic("instruction with Op-size 0");

    std::vector<PimCommand> out;
    out.reserve(instr.opSize);
    for (std::uint32_t rep = 0; rep < instr.opSize; ++rep) {
        switch (instr.kind) {
          case CommandKind::WrInp:
            out.push_back(PimCommand::wrInp(
                instr.gbufIdx + static_cast<std::int32_t>(rep)));
            break;
          case CommandKind::Mac: {
            if (instr.colsPerRow <= 0)
                panic("MAC instruction with colsPerRow <= 0");
            std::int64_t flat = instr.col + static_cast<std::int64_t>(rep);
            RowIndex row = instr.row + flat / instr.colsPerRow;
            std::int32_t col =
                static_cast<std::int32_t>(flat % instr.colsPerRow);
            // Consecutive MACs of one unrolled instruction advance the
            // GBuf entry and the weight column together (one dot
            // product accumulating into the shared output entry).
            out.push_back(PimCommand::mac(
                instr.gbufIdx + static_cast<std::int32_t>(rep),
                instr.outIdx, row, col));
            break;
          }
          case CommandKind::RdOut:
            out.push_back(PimCommand::rdOut(
                instr.outIdx + static_cast<std::int32_t>(rep)));
            break;
        }
    }
    return out;
}

std::uint64_t
expandedCommandCount(const std::vector<PimInstruction> &program)
{
    std::uint64_t n = 0;
    for (const auto &i : program)
        n += i.opSize;
    return n;
}

Bytes
programBytes(const std::vector<PimInstruction> &program)
{
    return static_cast<Bytes>(program.size()) * kInstructionBytes;
}

} // namespace pimphony
