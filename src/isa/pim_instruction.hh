/**
 * @file
 * Hub-level PIM instructions (the paper's Table III).
 *
 * Instructions are what the compiler emits and the PIM HUB's
 * Instruction Sequencer consumes. Each instruction carries a channel
 * mask (Ch-mask), a repetition count (Op-size) that the sequencer
 * unrolls into consecutive-address commands, a GPR base address for
 * I/O instructions, and buffer/row/column operands.
 */

#ifndef PIMPHONY_ISA_PIM_INSTRUCTION_HH
#define PIMPHONY_ISA_PIM_INSTRUCTION_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "isa/pim_command.hh"

namespace pimphony {

/** Encoded size of one fixed-format PIM instruction word. */
inline constexpr Bytes kInstructionBytes = 16;

struct PimInstruction
{
    CommandKind kind = CommandKind::Mac;

    /** Bit i set => dispatch to channel i (Multicast Interconnect). */
    std::uint32_t chMask = 0x1;

    /** Repetition count unrolled by the Instruction Sequencer. */
    std::uint32_t opSize = 1;

    /** GPR base address for WR-INP / RD-OUT data movement. */
    std::uint64_t gprAddr = 0;

    /** Base GBuf entry (WR-INP destination, MAC source). */
    std::int32_t gbufIdx = -1;

    /** Base output entry (MAC destination, RD-OUT source). */
    std::int32_t outIdx = -1;

    /** Base DRAM row / tile column for MAC. */
    RowIndex row = kNoRow;
    std::int32_t col = -1;

    /** Columns per row used when unrolling wraps to the next row. */
    std::int32_t colsPerRow = 32;

    static PimInstruction wrInp(std::uint32_t ch_mask, std::uint32_t op_size,
                                std::uint64_t gpr_addr,
                                std::int32_t gbuf_idx);
    static PimInstruction mac(std::uint32_t ch_mask, std::uint32_t op_size,
                              std::int32_t gbuf_idx, std::int32_t out_idx,
                              RowIndex row, std::int32_t col,
                              std::int32_t cols_per_row = 32);
    static PimInstruction rdOut(std::uint32_t ch_mask, std::uint32_t op_size,
                                std::uint64_t gpr_addr,
                                std::int32_t out_idx);
};

/**
 * Reference semantics of the Instruction Sequencer's unrolling: one
 * instruction expands into @c opSize commands at consecutive
 * addresses. WR-INP walks GBuf entries, MAC walks tile columns
 * (wrapping to the next row after @c colsPerRow), RD-OUT walks output
 * entries.
 *
 * The expansion is the per-channel view; the Multicast Interconnect
 * replicates it to every channel selected by the mask.
 */
std::vector<PimCommand> expandInstruction(const PimInstruction &instr);

/** Total commands a program expands to on one selected channel. */
std::uint64_t
expandedCommandCount(const std::vector<PimInstruction> &program);

/** Encoded program footprint in bytes (Fig. 10 model). */
Bytes programBytes(const std::vector<PimInstruction> &program);

} // namespace pimphony

#endif // PIMPHONY_ISA_PIM_INSTRUCTION_HH
