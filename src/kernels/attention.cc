#include "kernels/attention.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"
#include "common/units.hh"

namespace pimphony {

namespace {

/** Attention-specific emitter with explicit row placement. */
struct AttEmitter
{
    CommandStream stream;
    const AimTimingParams &params;
    bool pingpong;
    std::int32_t nextGroup = 0;
    std::vector<std::int32_t> pendingDrains;
    int pendingRegion = 0;

    AttEmitter(const AimTimingParams &p, bool pp) : params(p), pingpong(pp) {}

    /** Half of the GBuf: the streaming/double-buffer granule. */
    unsigned
    halfGbuf() const
    {
        return std::max(1u, params.gbufEntries / 2);
    }

    /** Output entries usable per region (full set when not split). */
    unsigned
    outCap() const
    {
        unsigned cap =
            pingpong ? params.outputEntries / 2 : params.outputEntries;
        return cap == 0 ? 1 : cap;
    }

    std::uint64_t
    macsPerRow() const
    {
        std::uint64_t per =
            params.rowBytesPerChannel() / params.macBytesPerCommand();
        return per == 0 ? 1 : per;
    }

    /** Concrete output entry for an abstract slot in a region. */
    std::int32_t
    outEntry(std::uint64_t slot, int region) const
    {
        unsigned cap = outCap();
        if (!pingpong || params.outputEntries < 2)
            return static_cast<std::int32_t>(slot % cap);
        return static_cast<std::int32_t>((region & 1) * cap + slot % cap);
    }

    void
    push(PimCommand cmd, std::int32_t group, int region)
    {
        cmd.group = group;
        cmd.region = pingpong ? static_cast<std::int8_t>(region & 1) : -1;
        stream.append(cmd);
    }

    /** The i-th write carries logical source tile src_base + i. */
    void
    writeInputs(unsigned base, unsigned count, int region,
                std::int64_t src_base = 0)
    {
        std::int32_t grp = nextGroup++;
        for (unsigned i = 0; i < count; ++i) {
            auto cmd =
                PimCommand::wrInp(static_cast<std::int32_t>(base + i));
            cmd.src = static_cast<std::int32_t>(src_base + i);
            push(cmd, grp, region);
        }
    }

    /**
     * One accumulation run of @p count MACs into @p out; MAC i reads
     * GBuf entry gbuf_base + i * gbuf_stride and covers DRAM tile
     * dram_base + i.
     */
    void
    macRun(unsigned gbuf_base, int gbuf_stride, unsigned count,
           std::int32_t out, std::uint64_t dram_base, int region)
    {
        std::int32_t grp = nextGroup++;
        std::uint64_t per_row = macsPerRow();
        for (unsigned i = 0; i < count; ++i) {
            std::uint64_t pos = dram_base + i;
            RowIndex row = static_cast<RowIndex>(pos / per_row);
            std::int32_t col = static_cast<std::int32_t>(pos % per_row);
            push(PimCommand::mac(
                     static_cast<std::int32_t>(
                         gbuf_base + static_cast<unsigned>(gbuf_stride) * i),
                     out, row, col),
                 grp, region);
        }
    }

    /** Queue a drain; flushes carry the region of their batch. */
    void
    queueDrain(std::int32_t out, int region)
    {
        if (!pendingDrains.empty() && region != pendingRegion)
            flushDrains();
        pendingRegion = region;
        pendingDrains.push_back(out);
    }

    void
    flushDrains()
    {
        if (pendingDrains.empty())
            return;
        std::int32_t grp = nextGroup++;
        for (std::int32_t out : pendingDrains)
            push(PimCommand::rdOut(out), grp, pendingRegion);
        pendingDrains.clear();
    }
};

} // namespace

CommandStream
buildQktStream(const AttentionSpec &spec, const AimTimingParams &params,
               bool pingpong)
{
    if (spec.tokens == 0 || spec.headDim == 0 || spec.headDim % 16 != 0)
        panic("bad attention spec (tokens=%llu headDim=%u)",
              static_cast<unsigned long long>(spec.tokens), spec.headDim);

    AttEmitter em(params, pingpong);
    const unsigned q_tiles = spec.headDim / 16;
    const std::uint64_t token_groups = ceilDiv<Tokens>(spec.tokens, 16);
    const unsigned g = std::max(1u, spec.gqaGroup);
    const unsigned half_g = em.halfGbuf();
    const unsigned ocap = em.outCap();
    const std::uint64_t per_row = em.macsPerRow();

    // Queries stay resident when they fit in half the GBuf (the other
    // half is streaming headroom); otherwise row-reuse swaps them in
    // per row chunk -- the WR-INP pressure Fig. 9 attributes to GQA.
    const bool resident = g * q_tiles <= half_g;

    if (!spec.rowReuse) {
        // Input-reuse mapping: one pass over the whole KV range per
        // query; every row is re-activated g times.
        for (unsigned q = 0; q < g; ++q) {
            int region = static_cast<int>(q % 2);
            unsigned base = (q % 2) * half_g;
            em.writeInputs(base, q_tiles, region,
                           static_cast<std::int64_t>(q) * q_tiles);
            std::uint64_t slot = 0;
            for (std::uint64_t tg = 0; tg < token_groups; ++tg) {
                std::int32_t out = em.outEntry(slot, region);
                em.macRun(base, 1, q_tiles, out, tg * q_tiles, region);
                em.queueDrain(out, region);
                ++slot;
                if (slot % ocap == 0)
                    em.flushDrains();
            }
            em.flushDrains();
        }
        return std::move(em.stream);
    }

    // Row-reuse mapping.
    const std::uint64_t tg_per_chunk = std::max<std::uint64_t>(
        1, per_row / q_tiles);
    const std::uint64_t chunks = ceilDiv(token_groups, tg_per_chunk);

    if (resident) {
        for (unsigned q = 0; q < g; ++q)
            em.writeInputs(q * q_tiles, q_tiles, 0,
                           static_cast<std::int64_t>(q) * q_tiles);
    }

    std::uint64_t slot = 0;
    const unsigned swap_slots = std::max(1u, half_g / q_tiles);
    std::uint64_t swap_counter = 0;
    for (std::uint64_t c = 0; c < chunks; ++c) {
        int region = static_cast<int>(c % 2);
        std::uint64_t tg_lo = c * tg_per_chunk;
        std::uint64_t tg_hi =
            std::min<std::uint64_t>(tg_lo + tg_per_chunk, token_groups);
        for (unsigned q = 0; q < g; ++q) {
            unsigned base;
            int run_region;
            if (resident) {
                base = q * q_tiles;
                // Output-side double buffering: regions alternate
                // with the drain batches.
                run_region = static_cast<int>((slot / ocap) % 2);
            } else {
                run_region = region;
                base = (pingpong ? (c % 2) * half_g : 0u) +
                       static_cast<unsigned>(swap_counter % swap_slots) *
                           q_tiles;
                ++swap_counter;
                em.writeInputs(base, q_tiles, run_region,
                               static_cast<std::int64_t>(q) * q_tiles);
            }
            for (std::uint64_t tg = tg_lo; tg < tg_hi; ++tg) {
                if (resident)
                    run_region = static_cast<int>((slot / ocap) % 2);
                std::int32_t out = em.outEntry(slot, run_region);
                em.macRun(base, 1, q_tiles, out, tg * q_tiles,
                          run_region);
                em.queueDrain(out, run_region);
                ++slot;
                if (slot % ocap == 0)
                    em.flushDrains();
            }
        }
        if (!resident)
            em.flushDrains(); // regions switch at the chunk boundary
    }
    em.flushDrains();
    return std::move(em.stream);
}

CommandStream
buildSvStream(const AttentionSpec &spec, const AimTimingParams &params,
              bool pingpong)
{
    if (spec.tokens == 0 || spec.headDim == 0 || spec.headDim % 16 != 0)
        panic("bad attention spec (tokens=%llu headDim=%u)",
              static_cast<unsigned long long>(spec.tokens), spec.headDim);

    AttEmitter em(params, pingpong);
    const unsigned j_tiles = spec.headDim / 16; // output dim groups
    const std::uint64_t token_groups = ceilDiv<Tokens>(spec.tokens, 16);
    const unsigned g = std::max(1u, spec.gqaGroup);
    const unsigned half_g = em.halfGbuf();
    const unsigned ocap = em.outCap();
    const std::uint64_t per_row = em.macsPerRow();

    if (!spec.rowReuse) {
        // Input-reuse: per query, stream all score tiles in half-GBuf
        // blocks; every V row re-activated per query.
        for (unsigned q = 0; q < g; ++q) {
            std::uint64_t n_blocks = ceilDiv<std::uint64_t>(
                token_groups, half_g);
            for (std::uint64_t blk = 0; blk < n_blocks; ++blk) {
                unsigned tiles = static_cast<unsigned>(
                    std::min<std::uint64_t>(half_g,
                                            token_groups - blk * half_g));
                unsigned base = (blk % 2) * half_g;
                int region = static_cast<int>(blk % 2);
                em.writeInputs(base, tiles, region,
                               static_cast<std::int64_t>(q) *
                                       static_cast<std::int64_t>(
                                           token_groups) +
                                   static_cast<std::int64_t>(blk) *
                                       half_g);
                for (unsigned j = 0; j < j_tiles; ++j) {
                    std::int32_t out = em.outEntry(j, region);
                    std::int32_t grp = em.nextGroup++;
                    for (unsigned i = 0; i < tiles; ++i) {
                        std::uint64_t tg = blk * half_g + i;
                        std::uint64_t pos = tg * j_tiles + j;
                        RowIndex row =
                            static_cast<RowIndex>(pos / per_row);
                        std::int32_t col =
                            static_cast<std::int32_t>(pos % per_row);
                        em.push(PimCommand::mac(
                                    static_cast<std::int32_t>(base + i),
                                    out, row, col),
                                grp, region);
                    }
                    em.queueDrain(out, region);
                    if ((j + 1) % ocap == 0)
                        em.flushDrains();
                }
                em.flushDrains();
            }
        }
        return std::move(em.stream);
    }

    // Row-reuse: per DRAM row chunk, all g queries consume the open V
    // rows; (q, j) partials are drained per chunk and EPU-reduced.
    const std::uint64_t tg_per_chunk = std::max<std::uint64_t>(
        1, per_row / j_tiles);
    const std::uint64_t chunks = ceilDiv(token_groups, tg_per_chunk);
    const unsigned score_slots = std::max(
        1u, half_g / std::max(1u, static_cast<unsigned>(tg_per_chunk)));
    std::uint64_t swap_counter = 0;

    for (std::uint64_t c = 0; c < chunks; ++c) {
        std::uint64_t tg_lo = c * tg_per_chunk;
        std::uint64_t tg_hi =
            std::min<std::uint64_t>(tg_lo + tg_per_chunk, token_groups);
        unsigned tgs = static_cast<unsigned>(tg_hi - tg_lo);
        for (unsigned q = 0; q < g; ++q) {
            int region = static_cast<int>(swap_counter % 2);
            unsigned base =
                (pingpong ? (swap_counter % 2) * half_g : 0u) +
                static_cast<unsigned>((swap_counter / (pingpong ? 2 : 1)) %
                                      score_slots) *
                    static_cast<unsigned>(tg_per_chunk);
            ++swap_counter;
            // Scores of query q for this chunk's tokens.
            em.writeInputs(base, tgs, region,
                           static_cast<std::int64_t>(q) *
                                   static_cast<std::int64_t>(
                                       token_groups) +
                               static_cast<std::int64_t>(tg_lo));
            std::uint64_t slot_base =
                static_cast<std::uint64_t>(q) * j_tiles;
            for (unsigned j = 0; j < j_tiles; ++j) {
                std::int32_t out = em.outEntry(slot_base + j, region);
                std::int32_t grp = em.nextGroup++;
                for (unsigned i = 0; i < tgs; ++i) {
                    std::uint64_t tg = tg_lo + i;
                    std::uint64_t pos = tg * j_tiles + j;
                    RowIndex row = static_cast<RowIndex>(pos / per_row);
                    std::int32_t col =
                        static_cast<std::int32_t>(pos % per_row);
                    em.push(PimCommand::mac(
                                static_cast<std::int32_t>(base + i), out,
                                row, col),
                            grp, region);
                }
                em.queueDrain(out, region);
                if (em.pendingDrains.size() >= ocap)
                    em.flushDrains();
            }
            em.flushDrains();
        }
    }
    em.flushDrains();
    return std::move(em.stream);
}

std::uint64_t
svPartialReductions(const AttentionSpec &spec, const AimTimingParams &params)
{
    const unsigned j_tiles = spec.headDim / 16;
    const std::uint64_t token_groups = ceilDiv<Tokens>(spec.tokens, 16);
    const unsigned g = std::max(1u, spec.gqaGroup);
    std::uint64_t per_row =
        params.rowBytesPerChannel() / params.macBytesPerCommand();
    if (per_row == 0)
        per_row = 1;
    if (!spec.rowReuse) {
        unsigned block = std::max(1u, params.gbufEntries / 2);
        std::uint64_t n_blocks = ceilDiv<std::uint64_t>(token_groups, block);
        return (n_blocks > 1 ? n_blocks - 1 : 0) * j_tiles * g;
    }
    std::uint64_t tg_per_chunk = std::max<std::uint64_t>(1,
                                                         per_row / j_tiles);
    std::uint64_t chunks = ceilDiv(token_groups, tg_per_chunk);
    return (chunks > 1 ? chunks - 1 : 0) * j_tiles * g;
}

} // namespace pimphony
