/**
 * @file
 * Attention command-stream generators: QK^T (score) and SV (context)
 * GEMVs over the KV cache held by one PIM channel.
 *
 * Layout: tokens are grouped 16 at a time across the banks ("token
 * groups"). For QK^T, output group (q, tg) holds the 16 scores of
 * query q against token group tg and accumulates over dh/16 MACs.
 * For SV, output group (q, j) holds 16 context dims of query q and
 * accumulates over the token axis, which exceeds any buffer, so
 * partial sums are drained per DRAM row chunk and reduced by the EPU.
 *
 * GQA (group size g > 1) makes g queries share the row-resident KV
 * tiles. Two mappings are modelled (Sec. V-C, Fig. 9):
 *
 *  - row-reuse: finish all g queries on the open row before moving
 *    on. Minimizes ACT/PRE but swaps query/score tiles through the
 *    GBuf per row chunk — extra WR-INP traffic that only DCS hides.
 *  - input-reuse: keep one query's inputs resident and stream the
 *    whole KV range, re-activating every row g times.
 */

#ifndef PIMPHONY_KERNELS_ATTENTION_HH
#define PIMPHONY_KERNELS_ATTENTION_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/timing.hh"
#include "isa/pim_command.hh"

namespace pimphony {

struct AttentionSpec
{
    /** Tokens of KV cache assigned to this channel. */
    Tokens tokens = 0;

    /** Per-head feature dimension d_h. */
    std::uint32_t headDim = 128;

    /** Queries sharing this KV (GQA group size; 1 = MHA). */
    std::uint32_t gqaGroup = 1;

    /** Row-reuse vs input-reuse mapping. */
    bool rowReuse = true;
};

/** Build the QK^T command stream for one channel. */
CommandStream buildQktStream(const AttentionSpec &spec,
                             const AimTimingParams &params,
                             bool pingpong = false);

/** Build the SV command stream for one channel. */
CommandStream buildSvStream(const AttentionSpec &spec,
                            const AimTimingParams &params,
                            bool pingpong = false);

/** Partial sums the EPU must reduce for SV (per channel). */
std::uint64_t svPartialReductions(const AttentionSpec &spec,
                                  const AimTimingParams &params);

} // namespace pimphony

#endif // PIMPHONY_KERNELS_ATTENTION_HH
