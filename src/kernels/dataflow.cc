#include "kernels/dataflow.hh"

#include "common/logging.hh"

namespace pimphony {

std::vector<DrainRecord>
replayDataflow(const CommandStream &stream, const AimTimingParams &params)
{
    std::uint64_t per_row =
        params.rowBytesPerChannel() / params.macBytesPerCommand();
    if (per_row == 0)
        per_row = 1;

    std::vector<std::int32_t> gbuf(params.gbufEntries, -1);
    unsigned outs = params.outputEntries == 0 ? 1 : params.outputEntries;
    std::vector<std::vector<Product>> acc(outs);
    std::vector<DrainRecord> drains;

    for (const auto &c : stream.commands()) {
        switch (c.kind) {
          case CommandKind::WrInp:
            if (c.src < 0)
                panic("WR-INP %llu carries no source tile id",
                      static_cast<unsigned long long>(c.id));
            gbuf[static_cast<std::size_t>(c.gbufIdx)] = c.src;
            break;
          case CommandKind::Mac: {
            std::int32_t src =
                gbuf[static_cast<std::size_t>(c.gbufIdx)];
            if (src < 0)
                panic("MAC %llu reads GBuf entry %d before any WR-INP",
                      static_cast<unsigned long long>(c.id), c.gbufIdx);
            std::uint64_t pos =
                static_cast<std::uint64_t>(c.row) * per_row +
                static_cast<std::uint64_t>(c.col);
            acc[static_cast<std::size_t>(c.outIdx)].push_back(
                {src, pos});
            break;
          }
          case CommandKind::RdOut: {
            auto &a = acc[static_cast<std::size_t>(c.outIdx)];
            if (a.empty())
                panic("RD-OUT %llu drains empty accumulator %d",
                      static_cast<unsigned long long>(c.id), c.outIdx);
            DrainRecord rec;
            rec.outEntry = c.outIdx;
            rec.products = std::move(a);
            a.clear();
            drains.push_back(std::move(rec));
            break;
          }
        }
    }

    for (std::size_t o = 0; o < acc.size(); ++o)
        if (!acc[o].empty())
            panic("stream ends with un-drained accumulator %zu (%zu "
                  "products)",
                  o, acc[o].size());
    return drains;
}

} // namespace pimphony
