/**
 * @file
 * Functional dataflow replay for command streams.
 *
 * The timing simulator never touches data, mirroring the paper's
 * methodology — but that leaves a class of generator bugs invisible
 * (right command counts, wrong operands). This checker replays a
 * stream's architectural semantics symbolically: WR-INP deposits a
 * logical source-tile id into the GBuf entry, MAC records the
 * (source tile, weight tile) product into its output accumulator,
 * RD-OUT drains the accumulator. Tests then assert that each drained
 * accumulation contains exactly the products the kernel's mathematics
 * requires.
 */

#ifndef PIMPHONY_KERNELS_DATAFLOW_HH
#define PIMPHONY_KERNELS_DATAFLOW_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "dram/timing.hh"
#include "isa/pim_command.hh"

namespace pimphony {

/** One (source tile, weight tile) product recorded by a MAC. */
struct Product
{
    std::int32_t src = -1;   ///< logical input tile id
    std::uint64_t pos = 0;   ///< weight tile position (row-major)

    bool
    operator==(const Product &o) const
    {
        return src == o.src && pos == o.pos;
    }
};

/** One drained accumulation. */
struct DrainRecord
{
    std::int32_t outEntry = -1;
    std::vector<Product> products;
};

/**
 * Replay @p stream and return every drained accumulation in drain
 * order. Panics on architectural misuse: a MAC reading a GBuf entry
 * no WR-INP populated, or a stream ending with un-drained
 * accumulations.
 */
std::vector<DrainRecord> replayDataflow(const CommandStream &stream,
                                        const AimTimingParams &params);

} // namespace pimphony

#endif // PIMPHONY_KERNELS_DATAFLOW_HH
