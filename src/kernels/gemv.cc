#include "kernels/gemv.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"

namespace pimphony {

GemvSpec
GemvSpec::fromDims(std::uint64_t dout, std::uint64_t din)
{
    GemvSpec s;
    s.doutGroups = static_cast<std::uint32_t>(ceilDiv<std::uint64_t>(
        dout, 16));
    s.dinTiles = static_cast<std::uint32_t>(ceilDiv<std::uint64_t>(
        din, 16));
    return s;
}

namespace {

/** Emission context carrying buffer cursors and group numbering. */
struct Emitter
{
    CommandStream stream;
    const AimTimingParams &params;
    bool pingpong;
    std::int32_t nextGroup = 0;
    std::uint64_t macsEmitted = 0;

    explicit Emitter(const AimTimingParams &p, bool pp)
        : params(p), pingpong(pp)
    {
    }

    unsigned
    gbufCap() const
    {
        return pingpong ? params.gbufEntries / 2 : params.gbufEntries;
    }

    unsigned
    outCap() const
    {
        unsigned cap =
            pingpong ? params.outputEntries / 2 : params.outputEntries;
        return cap == 0 ? 1 : cap;
    }

    /** MACs that fit in one open row across the channel. */
    std::uint64_t
    macsPerRow() const
    {
        std::uint64_t per =
            params.rowBytesPerChannel() / params.macBytesPerCommand();
        return per == 0 ? 1 : per;
    }

    void
    push(PimCommand cmd, std::int32_t group, int region)
    {
        cmd.group = group;
        cmd.region = pingpong ? static_cast<std::int8_t>(region & 1) : -1;
        stream.append(cmd);
    }

    /**
     * Map an abstract output slot to a concrete entry. In ping-pong
     * mode each region owns one half of the output entries, so the
     * slot also determines the region of the commands touching it.
     */
    std::int32_t
    outEntry(std::uint64_t slot, int region) const
    {
        unsigned half = outCap();
        if (!pingpong || params.outputEntries < 2)
            return static_cast<std::int32_t>(slot % half);
        return static_cast<std::int32_t>((region & 1) * half +
                                         slot % half);
    }

    /** Write @p count tiles into GBuf starting at @p base; the i-th
     *  command carries logical source tile @p src_base + i. */
    void
    writeInputs(unsigned base, unsigned count, int region,
                std::int64_t src_base = 0)
    {
        std::int32_t grp = nextGroup++;
        for (unsigned i = 0; i < count; ++i) {
            auto cmd =
                PimCommand::wrInp(static_cast<std::int32_t>(base + i));
            cmd.src = static_cast<std::int32_t>(src_base + i);
            push(cmd, grp, region);
        }
    }

    /**
     * One accumulation run: @p count MACs into output entry @p out,
     * reading GBuf entries base..base+count-1, rows advancing
     * sequentially (row-reuse layout).
     */
    void
    macRun(unsigned gbuf_base, unsigned count, std::int32_t out, int region)
    {
        std::int32_t grp = nextGroup++;
        std::uint64_t per_row = macsPerRow();
        for (unsigned i = 0; i < count; ++i) {
            RowIndex row = static_cast<RowIndex>(macsEmitted / per_row);
            std::int32_t col =
                static_cast<std::int32_t>(macsEmitted % per_row);
            push(PimCommand::mac(static_cast<std::int32_t>(gbuf_base + i),
                                 out, row, col),
                 grp, region);
            ++macsEmitted;
        }
    }

    void
    drain(std::int32_t out, int region, std::int32_t grp)
    {
        push(PimCommand::rdOut(out), grp, region);
    }
};

} // namespace

CommandStream
buildGemvStream(const GemvSpec &spec, const AimTimingParams &params,
                bool pingpong)
{
    if (spec.doutGroups == 0 || spec.dinTiles == 0)
        panic("GEMV spec with zero extent");

    Emitter em(params, pingpong);
    unsigned gcap = em.gbufCap();
    unsigned ocap = em.outCap();

    if (spec.dinTiles <= gcap) {
        // Input-resident: one write pass, then batched output groups.
        // The output side ping-pongs by alternating batch regions.
        em.writeInputs(0, spec.dinTiles, 0);
        std::uint32_t batch_idx = 0;
        for (std::uint32_t g0 = 0; g0 < spec.doutGroups;
             g0 += ocap, ++batch_idx) {
            int region = static_cast<int>(batch_idx % 2);
            std::uint32_t batch =
                std::min<std::uint32_t>(ocap, spec.doutGroups - g0);
            for (std::uint32_t b = 0; b < batch; ++b)
                em.macRun(0, spec.dinTiles, em.outEntry(b, region),
                          region);
            std::int32_t grp = em.nextGroup++;
            for (std::uint32_t b = 0; b < batch; ++b)
                em.drain(em.outEntry(b, region), region, grp);
        }
        return std::move(em.stream);
    }

    // Input-streaming: blocks of half the full GBuf, alternating
    // halves (software double buffering; in ping-pong mode each half
    // is one region).
    unsigned block = std::max(1u, params.gbufEntries / 2);
    std::uint32_t n_blocks = ceilDiv<std::uint32_t>(spec.dinTiles, block);

    if (spec.doutGroups <= ocap) {
        // All output groups accumulate in place across blocks.
        for (std::uint32_t blk = 0; blk < n_blocks; ++blk) {
            unsigned tiles = std::min<std::uint32_t>(
                block, spec.dinTiles - blk * block);
            unsigned base = (blk % 2) * block;
            em.writeInputs(base, tiles, blk % 2,
                           static_cast<std::int64_t>(blk) * block);
            for (std::uint32_t g = 0; g < spec.doutGroups; ++g)
                em.macRun(base, tiles, static_cast<std::int32_t>(g),
                          blk % 2);
        }
        std::int32_t grp = em.nextGroup++;
        for (std::uint32_t g = 0; g < spec.doutGroups; ++g)
            em.drain(static_cast<std::int32_t>(g), (n_blocks - 1) % 2, grp);
        return std::move(em.stream);
    }

    // Partial-drain dataflow: per block, every output group produces
    // a partial sum that is drained and reduced by the EPU.
    for (std::uint32_t blk = 0; blk < n_blocks; ++blk) {
        unsigned tiles =
            std::min<std::uint32_t>(block, spec.dinTiles - blk * block);
        unsigned base = (blk % 2) * block;
        int region = blk % 2;
        em.writeInputs(base, tiles, region,
                       static_cast<std::int64_t>(blk) * block);
        for (std::uint32_t g0 = 0; g0 < spec.doutGroups; g0 += ocap) {
            std::uint32_t batch =
                std::min<std::uint32_t>(ocap, spec.doutGroups - g0);
            for (std::uint32_t b = 0; b < batch; ++b)
                em.macRun(base, tiles, em.outEntry(b, region), region);
            std::int32_t grp = em.nextGroup++;
            for (std::uint32_t b = 0; b < batch; ++b)
                em.drain(em.outEntry(b, region), region, grp);
        }
    }
    return std::move(em.stream);
}

std::uint64_t
gemvPartialReductions(const GemvSpec &spec, const AimTimingParams &params)
{
    unsigned gcap = params.gbufEntries;
    unsigned ocap = params.outputEntries == 0 ? 1 : params.outputEntries;
    if (spec.dinTiles <= gcap || spec.doutGroups <= ocap)
        return 0;
    unsigned block = std::max(1u, gcap / 2);
    std::uint32_t n_blocks = ceilDiv<std::uint32_t>(spec.dinTiles, block);
    // One partial per (block, group) beyond the first block.
    return static_cast<std::uint64_t>(n_blocks - 1) * spec.doutGroups;
}

} // namespace pimphony
