/**
 * @file
 * GEMV command-stream generator for one PIM channel.
 *
 * Dataflow (AiM-style): the 16 banks operate in lock-step; one MAC
 * command consumes one 32 B input tile from the GBuf and one 32 B
 * weight tile per bank, accumulating 16 partial outputs (one per
 * bank). Outputs are therefore produced in groups of 16 ("output
 * groups"), each requiring dinTiles accumulating MACs before a
 * RD-OUT drains it.
 *
 * The generator adapts the loop structure to the buffer geometry:
 *
 *  - input-resident (dinTiles <= GBuf): inputs written once, output
 *    groups processed in batches of the available output entries;
 *  - input-streaming (dinTiles > GBuf): inputs streamed in blocks of
 *    half the GBuf (software double-buffering across the entry
 *    space); when the output entries cannot hold every group,
 *    partial sums are drained per block and reduced off-module by
 *    the EPU (partial-drain dataflow), costing extra RD-OUTs.
 *
 * Weight layout is co-designed with the emission order (row-reuse
 * mapping): consecutive MACs read consecutive DRAM locations, so a
 * row switch occurs every rowBytesPerChannel / 512 B MACs.
 */

#ifndef PIMPHONY_KERNELS_GEMV_HH
#define PIMPHONY_KERNELS_GEMV_HH

#include <cstdint>

#include "dram/timing.hh"
#include "isa/pim_command.hh"

namespace pimphony {

struct GemvSpec
{
    /** Output tile-groups (16 fp16 outputs each). */
    std::uint32_t doutGroups = 1;

    /** Input tiles (16 fp16 elements each). */
    std::uint32_t dinTiles = 1;

    /** Derive from element dimensions. */
    static GemvSpec fromDims(std::uint64_t dout, std::uint64_t din);
};

/**
 * Build the per-channel command stream for @p spec.
 *
 * @param pingpong tag commands with alternating region ids and halve
 *        the effective buffer capacities (split-buffer baseline).
 */
CommandStream buildGemvStream(const GemvSpec &spec,
                              const AimTimingParams &params,
                              bool pingpong = false);

/** Number of extra partial-sum reductions the EPU must perform. */
std::uint64_t gemvPartialReductions(const GemvSpec &spec,
                                    const AimTimingParams &params);

} // namespace pimphony

#endif // PIMPHONY_KERNELS_GEMV_HH
