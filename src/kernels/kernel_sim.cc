#include "kernels/kernel_sim.hh"

#include "common/logging.hh"

namespace pimphony {

KernelRequest
KernelRequest::makeGemv(GemvSpec spec, SchedulerKind sched)
{
    KernelRequest r;
    r.kind = KernelKind::Gemv;
    r.gemv = spec;
    r.scheduler = sched;
    return r;
}

KernelRequest
KernelRequest::makeQkt(AttentionSpec spec, SchedulerKind sched,
                       bool pingpong)
{
    KernelRequest r;
    r.kind = KernelKind::Qkt;
    r.att = spec;
    r.scheduler = sched;
    r.pingpong = pingpong;
    return r;
}

KernelRequest
KernelRequest::makeSv(AttentionSpec spec, SchedulerKind sched, bool pingpong)
{
    KernelRequest r;
    r.kind = KernelKind::Sv;
    r.att = spec;
    r.scheduler = sched;
    r.pingpong = pingpong;
    return r;
}

ScheduleResult
simulateKernel(const KernelRequest &req, const AimTimingParams &params)
{
    CommandStream stream;
    switch (req.kind) {
      case KernelKind::Gemv:
        stream = buildGemvStream(req.gemv, params, req.pingpong);
        break;
      case KernelKind::Qkt:
        stream = buildQktStream(req.att, params, req.pingpong);
        break;
      case KernelKind::Sv:
        stream = buildSvStream(req.att, params, req.pingpong);
        break;
    }
    auto scheduler = makeScheduler(req.scheduler, params);
    return scheduler->schedule(stream, false);
}

Tokens
bucketTokens(Tokens t)
{
    if (t <= 64)
        return 64;
    // Round up to 1/32 of the enclosing power of two (~3% buckets).
    Tokens pow2 = 1;
    while (pow2 < t)
        pow2 <<= 1;
    Tokens step = pow2 / 32 ? pow2 / 32 : 1;
    return ((t + step - 1) / step) * step;
}

std::uint64_t
KernelCache::keyOf(const KernelRequest &req) const
{
    // FNV-1a over the descriptor fields.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(static_cast<std::uint64_t>(req.kind));
    mix(static_cast<std::uint64_t>(req.scheduler));
    mix(req.pingpong ? 1 : 0);
    switch (req.kind) {
      case KernelKind::Gemv:
        mix(req.gemv.doutGroups);
        mix(req.gemv.dinTiles);
        break;
      case KernelKind::Qkt:
      case KernelKind::Sv:
        mix(req.att.tokens);
        mix(req.att.headDim);
        mix(req.att.gqaGroup);
        mix(req.att.rowReuse ? 1 : 0);
        break;
    }
    return h;
}

const ScheduleResult &
KernelCache::get(const KernelRequest &req)
{
    std::uint64_t key = keyOf(req);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
        ++hits_;
        return it->second;
    }
    ++misses_;
    auto [ins, ok] = cache_.emplace(key, simulateKernel(req, params_));
    if (!ok)
        panic("kernel cache insertion failed");
    return ins->second;
}

} // namespace pimphony
