/**
 * @file
 * Kernel-level simulation facade: generate a command stream for a
 * kernel descriptor, schedule it on a channel model, and cache the
 * result.
 *
 * End-to-end serving simulations evaluate millions of kernel
 * instances whose latency depends only on (shape, mapping, scheduler,
 * channel geometry); the cache plus token bucketing keeps the system
 * simulator fast without changing any reported trend.
 */

#ifndef PIMPHONY_KERNELS_KERNEL_SIM_HH
#define PIMPHONY_KERNELS_KERNEL_SIM_HH

#include <cstdint>
#include <unordered_map>

#include "dram/timing.hh"
#include "kernels/attention.hh"
#include "kernels/gemv.hh"
#include "pim/scheduler.hh"

namespace pimphony {

enum class KernelKind : std::uint8_t {
    Gemv,
    Qkt,
    Sv,
};

struct KernelRequest
{
    KernelKind kind = KernelKind::Gemv;
    GemvSpec gemv;
    AttentionSpec att;
    SchedulerKind scheduler = SchedulerKind::Static;
    bool pingpong = false;

    static KernelRequest makeGemv(GemvSpec spec, SchedulerKind sched);
    static KernelRequest makeQkt(AttentionSpec spec, SchedulerKind sched,
                                 bool pingpong = false);
    static KernelRequest makeSv(AttentionSpec spec, SchedulerKind sched,
                                bool pingpong = false);
};

/** Generate + schedule a kernel (uncached). */
ScheduleResult simulateKernel(const KernelRequest &req,
                              const AimTimingParams &params);

/**
 * Round a token count up to a simulation bucket (~3% resolution,
 * minimum granularity 64 tokens). Monotone: t <= bucketTokens(t).
 */
Tokens bucketTokens(Tokens t);

/**
 * Memoizing kernel evaluator bound to one channel configuration.
 */
class KernelCache
{
  public:
    explicit KernelCache(const AimTimingParams &params) : params_(params) {}

    /** Simulate (or recall) @p req; attention token counts should be
     *  pre-bucketed by the caller for high hit rates. */
    const ScheduleResult &get(const KernelRequest &req);

    std::size_t entries() const { return cache_.size(); }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    const AimTimingParams &params() const { return params_; }

  private:
    std::uint64_t keyOf(const KernelRequest &req) const;

    AimTimingParams params_;
    std::unordered_map<std::uint64_t, ScheduleResult> cache_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace pimphony

#endif // PIMPHONY_KERNELS_KERNEL_SIM_HH
