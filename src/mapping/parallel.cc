#include "mapping/parallel.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "common/units.hh"

namespace pimphony {

std::string
ParallelPlan::toString() const
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "(TP=%u,PP=%u)", tp, pp);
    return buf;
}

MicroBatching
planMicroBatches(std::uint32_t batch, unsigned pp)
{
    if (pp == 0)
        panic("pipeline with zero stages");
    MicroBatching mb;
    if (batch == 0) {
        mb.stageBeats = pp;
        mb.pipelineFill = 0.0;
        return mb;
    }
    if (batch >= pp) {
        // Enough requests to fill every stage.
        mb.count = pp;
        mb.microBatchSize = ceilDiv(batch, static_cast<std::uint32_t>(pp));
        mb.count = ceilDiv(batch, mb.microBatchSize);
    } else {
        mb.microBatchSize = 1;
        mb.count = batch;
    }
    mb.stageBeats = std::max<std::uint32_t>(mb.count, pp);
    mb.pipelineFill =
        static_cast<double>(mb.count) / static_cast<double>(mb.stageBeats);
    return mb;
}

unsigned
stageLayers(unsigned n_layers, unsigned pp, unsigned stage)
{
    if (pp == 0)
        panic("pipeline with zero stages");
    if (stage >= pp)
        panic("stage %u outside a %u-deep pipeline", stage, pp);
    unsigned base = std::max(1u, n_layers / pp);
    if (stage + 1 < pp)
        return base;
    unsigned assigned = (pp - 1) * base;
    // Oversubscribed pipelines (pp > n_layers) keep one layer per
    // stage; otherwise the last stage absorbs the remainder.
    return n_layers > assigned ? n_layers - assigned : base;
}

unsigned
stageLayersTotal(unsigned n_layers, unsigned pp)
{
    return (pp - 1) * stageLayers(n_layers, pp, 0) +
           stageLayers(n_layers, pp, pp - 1);
}

double
allReduceSeconds(Bytes bytes, unsigned tp, double link_bytes_per_sec,
                 double alpha_seconds)
{
    if (tp <= 1)
        return 0.0;
    // Ring all-reduce: 2(tp-1)/tp of the data crosses each link.
    double volume = 2.0 * (tp - 1) / tp * static_cast<double>(bytes);
    return 2.0 * (tp - 1) * alpha_seconds + volume / link_bytes_per_sec;
}

} // namespace pimphony
