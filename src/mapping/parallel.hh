/**
 * @file
 * Inter-module parallelism plans: tensor parallelism (TP) splits the
 * attention heads and FC columns of every layer across a module
 * group, with an all-reduce per layer; pipeline parallelism (PP)
 * assigns consecutive layers to stages through which micro-batches
 * flow.
 */

#ifndef PIMPHONY_MAPPING_PARALLEL_HH
#define PIMPHONY_MAPPING_PARALLEL_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace pimphony {

struct ParallelPlan
{
    unsigned tp = 1;
    unsigned pp = 1;

    unsigned modules() const { return tp * pp; }

    std::string toString() const;
};

/**
 * Micro-batching decision for PP decode: split @p batch requests
 * into micro-batches so the pipeline is as full as it can be.
 */
struct MicroBatching
{
    /** Requests per micro-batch. */
    std::uint32_t microBatchSize = 1;

    /** Number of micro-batches in flight. */
    std::uint32_t count = 1;

    /** Slots a full step occupies: max(count, pp) stage beats. */
    std::uint32_t stageBeats = 1;

    /** Fraction of stage beats doing useful work. */
    double pipelineFill = 1.0;
};

MicroBatching planMicroBatches(std::uint32_t batch, unsigned pp);

/**
 * Layers assigned to @p stage of a @p pp-deep pipeline over
 * @p n_layers: every stage gets floor(n_layers / pp) (at least 1)
 * and the last stage additionally absorbs the remainder, so layer
 * counts sum to n_layers whenever pp <= n_layers. The serving
 * engine's step models charge the last stage's longer service
 * accordingly.
 */
unsigned stageLayers(unsigned n_layers, unsigned pp, unsigned stage);

/** Sum of stageLayers over all @p pp stages. */
unsigned stageLayersTotal(unsigned n_layers, unsigned pp);

/**
 * Latency of one tensor-parallel all-reduce of @p bytes across
 * @p tp modules over a link of @p link_bytes_per_sec with fixed
 * per-hop latency @p alpha_seconds (ring all-reduce).
 */
double allReduceSeconds(Bytes bytes, unsigned tp,
                        double link_bytes_per_sec, double alpha_seconds);

} // namespace pimphony

#endif // PIMPHONY_MAPPING_PARALLEL_HH
