#include "mapping/partition.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"

namespace pimphony {

std::string
partitioningName(Partitioning p)
{
    switch (p) {
      case Partitioning::Hfp: return "hfp";
      case Partitioning::Tcp: return "tcp";
    }
    return "?";
}

std::vector<std::vector<AttentionJob>>
assignHfp(std::vector<AttentionJob> jobs, unsigned n_channels)
{
    std::vector<std::vector<AttentionJob>> out;
    assignHfp(jobs, n_channels, out);
    return out;
}

void
assignHfp(const std::vector<AttentionJob> &jobs, unsigned n_channels,
          std::vector<std::vector<AttentionJob>> &out)
{
    if (n_channels == 0)
        panic("assignHfp with zero channels");
    out.resize(n_channels);
    for (auto &channel : out)
        channel.clear();

    // Head-first mapping is fixed at compile time: command streams
    // embed physical addresses, so (request, head) pairs land on
    // channels by index, blind to each request's actual context
    // length. This is precisely the imbalance TCP removes; a
    // load-aware assignment would require the dynamic addressing
    // that conventional PIM lacks (Sec. IV-A).
    for (std::size_t i = 0; i < jobs.size(); ++i)
        out[i % n_channels].push_back(jobs[i]);
}

Tokens
tcpSliceTokens(const AttentionJob &job, unsigned n_channels)
{
    if (n_channels == 0)
        panic("tcpSliceTokens with zero channels");
    return ceilDiv<Tokens>(job.tokens, n_channels);
}

Tokens
tcpFullActivationTokens(unsigned n_channels)
{
    return static_cast<Tokens>(n_channels) * 16;
}

} // namespace pimphony
