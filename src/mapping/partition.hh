/**
 * @file
 * Intra-module workload partitioning (Sec. IV).
 *
 * HFP (head/batch-first, prior work): each (request, KV-head)
 * attention job runs wholly on one channel; channels are filled
 * round-robin by cumulative load. Long contexts leave channels idle
 * whenever there are fewer jobs than channels or the jobs are
 * unequal.
 *
 * TCP (token-centric, PIMphony): the token axis of every job is
 * sliced across all channels of the module, so every channel works on
 * every job; per-module imbalance disappears and utilization is
 * decoupled from batch size. QK^T slices concatenate for the EPU
 * softmax; SV slices need one inter-channel reduction through the
 * PIM HUB's GPR.
 */

#ifndef PIMPHONY_MAPPING_PARTITION_HH
#define PIMPHONY_MAPPING_PARTITION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace pimphony {

enum class Partitioning {
    Hfp,
    Tcp,
};

std::string partitioningName(Partitioning p);

/** One attention job: the KV scan of one (request, KV-head) pair. */
struct AttentionJob
{
    RequestId request = 0;
    std::uint32_t kvHead = 0;
    Tokens tokens = 0;
};

/**
 * HFP assignment: jobs to channels, longest-processing-time-first
 * (greedy makespan heuristic, what a reasonable head-first runtime
 * does).
 *
 * @return per-channel job lists, size @p n_channels.
 */
std::vector<std::vector<AttentionJob>>
assignHfp(std::vector<AttentionJob> jobs, unsigned n_channels);

/**
 * Allocation-reusing form: fills @p out (resized to @p n_channels,
 * per-channel lists cleared) with the same assignment. The serving
 * engine calls this once per decode cycle; reusing the nested
 * vectors keeps the cycle path allocation-free once warm.
 */
void assignHfp(const std::vector<AttentionJob> &jobs, unsigned n_channels,
               std::vector<std::vector<AttentionJob>> &out);

/** Tokens a single channel processes for @p job under TCP. */
Tokens tcpSliceTokens(const AttentionJob &job, unsigned n_channels);

/**
 * Minimum total tokens at which TCP activates every channel for a
 * QK^T (one token group of 16 per channel).
 */
Tokens tcpFullActivationTokens(unsigned n_channels);

} // namespace pimphony

#endif // PIMPHONY_MAPPING_PARTITION_HH
