#include "model/llm.hh"

namespace pimphony {

Bytes
LlmConfig::kvBytesPerToken() const
{
    // K and V vectors per KV head per layer, FP16.
    return Bytes{2} * nLayers * kvHeads() * headDim * 2;
}

Bytes
LlmConfig::kvBytes(Tokens tokens) const
{
    return kvBytesPerToken() * tokens;
}

std::uint64_t
LlmConfig::paramCount() const
{
    // Attention: Q and O projections are d x d; K and V shrink with
    // GQA. FFN: gated (up, gate, down).
    std::uint64_t d = dModel;
    std::uint64_t kv_dim = static_cast<std::uint64_t>(kvHeads()) * headDim;
    std::uint64_t attn = 2 * d * d + 2 * d * kv_dim;
    std::uint64_t ffn = 3 * static_cast<std::uint64_t>(dModel) * dFfn;
    return static_cast<std::uint64_t>(nLayers) * (attn + ffn);
}

Bytes
LlmConfig::weightBytes() const
{
    return paramCount() * 2; // FP16
}

double
LlmConfig::decodeFlopsPerToken(Tokens context) const
{
    // 2 FLOPs per weight for every linear layer, plus QK^T and SV
    // over the context for every query head.
    double linear = 2.0 * static_cast<double>(paramCount());
    double attn = 4.0 * nLayers * nHeads * headDim *
                  static_cast<double>(context);
    return linear + attn;
}

double
LlmConfig::decodeBytesPerToken(Tokens context, std::uint32_t batch) const
{
    // Weights are read once per step and shared by the batch; every
    // request scans its own KV cache end to end.
    double b = batch == 0 ? 1.0 : static_cast<double>(batch);
    return static_cast<double>(weightBytes()) / b +
           static_cast<double>(kvBytes(context));
}

double
LlmConfig::computeIntensity(Tokens context, std::uint32_t batch) const
{
    return decodeFlopsPerToken(context) /
           decodeBytesPerToken(context, batch);
}

Bytes
LlmConfig::memoryFootprint(Tokens context, std::uint32_t batch) const
{
    return weightBytes() + kvBytes(context) * batch;
}

LlmConfig
LlmConfig::llm7b(bool gqa)
{
    LlmConfig c;
    c.name = gqa ? "LLM-7B-128K-GQA" : "LLM-7B-32K";
    c.nLayers = 32;
    c.nHeads = 32;
    c.headDim = 128;
    c.dModel = 4096;
    c.dFfn = 12288;
    c.gqaGroup = gqa ? 4 : 1;
    c.contextWindow = gqa ? 131072 : 32768;
    return c;
}

LlmConfig
LlmConfig::llm72b(bool gqa)
{
    LlmConfig c;
    c.name = gqa ? "LLM-72B-128K-GQA" : "LLM-72B-32K";
    c.nLayers = 80;
    c.nHeads = 64;
    c.headDim = 128;
    c.dModel = 8192;
    c.dFfn = 24576;
    c.gqaGroup = gqa ? 8 : 1;
    c.contextWindow = gqa ? 131072 : 32768;
    return c;
}

} // namespace pimphony
