/**
 * @file
 * LLM model configurations (the paper's Table I) and the analytic
 * quantities the motivation figures and the serving simulator need:
 * KV-cache growth, weight footprint, per-token FLOPs and bytes.
 */

#ifndef PIMPHONY_MODEL_LLM_HH
#define PIMPHONY_MODEL_LLM_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace pimphony {

struct LlmConfig
{
    std::string name;

    std::uint32_t nLayers = 32;    ///< n_l
    std::uint32_t nHeads = 32;     ///< n_h (query heads)
    std::uint32_t headDim = 128;   ///< d_h
    std::uint32_t dModel = 4096;   ///< d_in
    std::uint32_t dFfn = 12288;    ///< d_out of the FFN expansion
    std::uint32_t gqaGroup = 1;    ///< query heads per KV head (1 = MHA)
    Tokens contextWindow = 32768;  ///< maximum supported context

    std::uint32_t
    kvHeads() const
    {
        return nHeads / gqaGroup;
    }

    /** K+V bytes appended per decoded token (FP16). */
    Bytes kvBytesPerToken() const;

    /** KV-cache bytes for one request at @p tokens context. */
    Bytes kvBytes(Tokens tokens) const;

    /** Total parameter count of the decoder stack (approximate). */
    std::uint64_t paramCount() const;

    /** FP16 weight footprint. */
    Bytes weightBytes() const;

    /** FLOPs to decode one token at context length @p context. */
    double decodeFlopsPerToken(Tokens context) const;

    /** DRAM bytes touched per decoded token at batch @p batch
     *  (weights stream once per step and amortize over the batch). */
    double decodeBytesPerToken(Tokens context,
                               std::uint32_t batch = 1) const;

    /**
     * Compute intensity (FLOPs/byte) at @p context (Fig. 2a). The
     * batched linear layers start compute-rich; the attention scan
     * pins the asymptote near the GQA group size, so intensity falls
     * as the context grows.
     */
    double computeIntensity(Tokens context,
                            std::uint32_t batch = 16) const;

    /** Total memory footprint: weights + batch x KV (Fig. 2b). */
    Bytes memoryFootprint(Tokens context, std::uint32_t batch) const;

    /** Table I presets. */
    static LlmConfig llm7b(bool gqa);
    static LlmConfig llm72b(bool gqa);
};

} // namespace pimphony

#endif // PIMPHONY_MODEL_LLM_HH
