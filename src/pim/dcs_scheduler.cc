#include "pim/dcs_scheduler.hh"

#include <limits>

#include "common/logging.hh"
#include "dram/refresh.hh"
#include "dram/row_state.hh"

namespace pimphony {

namespace {

constexpr Cycle kNever = std::numeric_limits<Cycle>::max();

/** Dependency of one command on an earlier command's completion. */
struct Dependency
{
    CommandId on = kNoCommand;

    /** True when issue may chain at tCCDS without completion wait
     *  (consecutive MACs on the same OBuf entry, via is-MAC). */
    bool chain = false;

    /** Kind of the dependency target, for stall attribution. */
    CommandKind kind = CommandKind::Mac;
};

struct DepSet
{
    Dependency gbuf;
    Dependency obuf;
};

} // namespace

Bytes
DcsScheduler::metadataBytes() const
{
    // Per entry: D-Table ID (2 B) + S-Table {id 2 B, expire 4 B,
    // flags 1 B}, for every GBuf and output entry, mirroring the
    // paper's 576 B per-controller metadata estimate.
    unsigned entries = params_.gbufEntries + params_.outputEntries;
    return static_cast<Bytes>(entries) * (2 + 2 + 4 + 1);
}

ScheduleResult
DcsScheduler::schedule(const CommandStream &stream, bool keep_timeline)
{
    ScheduleResult result;
    const auto &cmds = stream.commands();
    if (cmds.empty())
        return result;

    // --- D-Table pass: assign dependency IDs in program order. ---
    std::vector<CommandId> gbuf_last(params_.gbufEntries, kNoCommand);
    std::vector<CommandId> obuf_last(params_.outputEntries, kNoCommand);
    std::vector<DepSet> deps(cmds.size());

    auto kind_of = [&](CommandId id) { return cmds[id].kind; };

    for (std::size_t i = 0; i < cmds.size(); ++i) {
        const PimCommand &c = cmds[i];
        DepSet d;
        switch (c.kind) {
          case CommandKind::WrInp: {
            if (c.gbufIdx < 0 ||
                c.gbufIdx >= static_cast<std::int32_t>(params_.gbufEntries))
                panic("WR-INP gbuf index %d out of range", c.gbufIdx);
            CommandId last = gbuf_last[c.gbufIdx];
            if (last != kNoCommand)
                d.gbuf = {last, false, kind_of(last)};
            gbuf_last[c.gbufIdx] = c.id;
            break;
          }
          case CommandKind::Mac: {
            if (c.gbufIdx < 0 ||
                c.gbufIdx >= static_cast<std::int32_t>(params_.gbufEntries))
                panic("MAC gbuf index %d out of range", c.gbufIdx);
            if (c.outIdx < 0 ||
                c.outIdx >= static_cast<std::int32_t>(params_.outputEntries))
                panic("MAC out index %d out of range (outputEntries=%u)",
                      c.outIdx, params_.outputEntries);
            CommandId g = gbuf_last[c.gbufIdx];
            if (g != kNoCommand) {
                // Read-after-read on a GBuf entry carries no hazard:
                // a MAC whose predecessor on the entry was another
                // MAC may issue as soon as the bus allows.
                bool read_chain = kind_of(g) == CommandKind::Mac;
                d.gbuf = {g, read_chain, kind_of(g)};
            }
            CommandId o = obuf_last[c.outIdx];
            if (o != kNoCommand) {
                // is-MAC: consecutive MACs on the same OBuf entry
                // chain at tCCDS; a RD-OUT must fully drain first.
                bool chain = kind_of(o) == CommandKind::Mac;
                d.obuf = {o, chain, kind_of(o)};
            }
            gbuf_last[c.gbufIdx] = c.id;
            obuf_last[c.outIdx] = c.id;
            break;
          }
          case CommandKind::RdOut: {
            if (c.outIdx < 0 ||
                c.outIdx >= static_cast<std::int32_t>(params_.outputEntries))
                panic("RD-OUT out index %d out of range", c.outIdx);
            CommandId o = obuf_last[c.outIdx];
            if (o != kNoCommand)
                d.obuf = {o, false, kind_of(o)};
            obuf_last[c.outIdx] = c.id;
            break;
          }
        }
        deps[i] = d;
    }

    // --- Issue loop: two in-order queues, OoO across them. ---
    std::vector<std::size_t> io_q, comp_q;
    io_q.reserve(cmds.size());
    comp_q.reserve(cmds.size());
    for (std::size_t i = 0; i < cmds.size(); ++i) {
        if (isIoCommand(cmds[i].kind))
            io_q.push_back(i);
        else
            comp_q.push_back(i);
    }

    std::vector<Cycle> complete(cmds.size(), kNever);
    std::vector<bool> issued(cmds.size(), false);
    RowStateTracker rows(params_);
    RefreshModel refresh(params_);

    if (keep_timeline)
        result.timeline.resize(cmds.size());

    Cycle bus_free = 0;
    std::size_t io_head = 0, comp_head = 0;

    // Readiness of one queue head; kNever when a dependency has not
    // been issued yet. Also reports which dependency binds.
    auto readiness = [&](std::size_t idx, CommandKind &cause,
                         bool &bound) -> Cycle {
        const DepSet &d = deps[idx];
        Cycle ready = 0;
        bound = false;
        auto consider = [&](const Dependency &dep) {
            if (dep.on == kNoCommand)
                return;
            if (!issued[dep.on]) {
                ready = kNever;
                return;
            }
            if (dep.chain)
                return; // bus spacing suffices (is-MAC chaining)
            if (ready == kNever)
                return;
            if (complete[dep.on] > ready) {
                ready = complete[dep.on];
                cause = dep.kind;
                bound = true;
            }
        };
        consider(d.gbuf);
        consider(d.obuf);
        return ready;
    };

    std::size_t remaining = cmds.size();
    while (remaining > 0) {
        CommandKind io_cause = CommandKind::Mac;
        CommandKind comp_cause = CommandKind::Mac;
        bool io_bound = false, comp_bound = false;
        Cycle io_ready = io_head < io_q.size()
            ? readiness(io_q[io_head], io_cause, io_bound)
            : kNever;
        Cycle comp_ready = comp_head < comp_q.size()
            ? readiness(comp_q[comp_head], comp_cause, comp_bound)
            : kNever;

        if (io_ready == kNever && comp_ready == kNever)
            panic("DCS deadlock: both queue heads blocked");

        // Candidate issue = max(readiness, bus). Prefer the earlier
        // candidate; on a tie prefer compute to keep the MACs fed.
        Cycle io_cand = io_ready == kNever
            ? kNever
            : (io_ready > bus_free ? io_ready : bus_free);
        Cycle comp_cand = comp_ready == kNever
            ? kNever
            : (comp_ready > bus_free ? comp_ready : bus_free);

        bool pick_compute = comp_cand <= io_cand;
        std::size_t idx =
            pick_compute ? comp_q[comp_head] : io_q[io_head];
        Cycle cand = pick_compute ? comp_cand : io_cand;
        CommandKind cause = pick_compute ? comp_cause : io_cause;
        bool bound = pick_compute ? comp_bound : io_bound;

        const PimCommand &c = cmds[idx];

        // Dependency stall attribution: time the bus sat idle waiting
        // for the binding dependency to complete.
        if (bound && cand > bus_free) {
            Cycle wait = cand - bus_free;
            switch (cause) {
              case CommandKind::WrInp:
                result.breakdown.dtGbufCycles += wait;
                break;
              case CommandKind::RdOut:
                result.breakdown.dtOutregCycles += wait;
                break;
              case CommandKind::Mac:
                result.breakdown.pipelinePenaltyCycles += wait;
                break;
            }
        }

        Cycle act_pre = 0;
        if (c.kind == CommandKind::Mac) {
            act_pre = rows.prepare(c.row);
            result.breakdown.actPreCycles += act_pre;
        }
        Cycle tentative = cand + act_pre;
        Cycle after_refresh = refresh.adjust(tentative);
        result.breakdown.refreshCycles += after_refresh - tentative;

        Cycle issue = after_refresh;
        Cycle done = issue + duration(c.kind);
        complete[idx] = done;
        issued[idx] = true;
        if (keep_timeline)
            result.timeline[idx] = {c, issue, done};
        if (done > result.makespan)
            result.makespan = done;

        bus_free = issue + params_.tCcds;
        if (pick_compute)
            ++comp_head;
        else
            ++io_head;
        --remaining;
    }

    result.activates = rows.activates();
    result.precharges = rows.precharges();
    result.refreshes = refresh.refreshes();
    finalize(result, stream);
    return result;
}

} // namespace pimphony
