/**
 * @file
 * Dynamic PIM Command Scheduling (DCS), Sec. V-C of the paper.
 *
 * The controller splits arriving commands into an I/O transfer queue
 * (WR-INP, RD-OUT) and a compute queue (MAC). Queues are in-order
 * internally but issue out-of-order with respect to each other. A
 * Dependency Table (D-Table) records, per GBuf and per OBuf entry,
 * the most recent command that accessed it; each new command receives
 * that command's ID as its Dependency ID (DID). A Status Table
 * (S-Table) records, per entry, the last accessor and the cycle at
 * which its access completes, plus an is-MAC flag that lets
 * consecutive MACs accumulating into the same OBuf entry chain at the
 * minimum tCCDS interval instead of waiting tMAC.
 */

#ifndef PIMPHONY_PIM_DCS_SCHEDULER_HH
#define PIMPHONY_PIM_DCS_SCHEDULER_HH

#include <cstdint>
#include <vector>

#include "pim/scheduler.hh"

namespace pimphony {

/** One S-Table row: who touched the entry and when they finish. */
struct STableEntry
{
    CommandId id = kNoCommand;
    Cycle expire = 0;
    bool isMac = false;
};

class DcsScheduler : public CommandScheduler
{
  public:
    using CommandScheduler::CommandScheduler;

    ScheduleResult schedule(const CommandStream &stream,
                            bool keep_timeline = false) override;

    /**
     * Hardware cost of the dependency-tracking structures in bytes:
     * one D-Table ID and one S-Table row per GBuf and OBuf entry.
     * The paper reports 576 B of metadata per controller.
     */
    Bytes metadataBytes() const;
};

} // namespace pimphony

#endif // PIMPHONY_PIM_DCS_SCHEDULER_HH
