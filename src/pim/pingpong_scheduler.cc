#include "pim/pingpong_scheduler.hh"

#include <limits>

#include "common/logging.hh"
#include "dram/refresh.hh"
#include "dram/row_state.hh"

namespace pimphony {

namespace {

constexpr Cycle kNever = std::numeric_limits<Cycle>::max();

} // namespace

ScheduleResult
PingPongScheduler::schedule(const CommandStream &stream, bool keep_timeline)
{
    ScheduleResult result;
    const auto &cmds = stream.commands();
    if (cmds.empty())
        return result;

    // --- Region-level ordering pass (program order). ---
    // The split-buffer controller tracks hazards only at region
    // granularity: an I/O command on region r must order after every
    // compute command on r that precedes it, and vice versa. We
    // record the last such command; per-region completion horizons at
    // schedule time cover the rest of the prefix.
    std::vector<CommandId> dep(cmds.size(), kNoCommand);
    CommandId last_io[2] = {kNoCommand, kNoCommand};
    CommandId last_comp[2] = {kNoCommand, kNoCommand};

    for (std::size_t i = 0; i < cmds.size(); ++i) {
        int r = cmds[i].region;
        if (r != 0 && r != 1)
            panic("ping-pong scheduler requires region tags (got %d)", r);
        if (isIoCommand(cmds[i].kind)) {
            dep[i] = last_comp[r];
            last_io[r] = cmds[i].id;
        } else {
            dep[i] = last_io[r];
            last_comp[r] = cmds[i].id;
        }
    }

    std::vector<std::size_t> io_q, comp_q;
    for (std::size_t i = 0; i < cmds.size(); ++i) {
        if (isIoCommand(cmds[i].kind))
            io_q.push_back(i);
        else
            comp_q.push_back(i);
    }

    std::vector<Cycle> complete(cmds.size(), kNever);
    std::vector<bool> issued(cmds.size(), false);
    RowStateTracker rows(params_);
    RefreshModel refresh(params_);
    if (keep_timeline)
        result.timeline.resize(cmds.size());

    Cycle bus_free = 0;
    std::size_t io_head = 0, comp_head = 0;
    int cur_io_region = -1, cur_comp_region = -1;
    // Completion horizons: per region and per type class.
    Cycle io_region_horizon[2] = {0, 0};
    Cycle comp_region_horizon[2] = {0, 0};
    Cycle io_horizon = 0, comp_horizon = 0;
    Cycle prev_io_issue = 0, prev_comp_issue = 0;
    std::int32_t prev_io_group = -2, prev_comp_group = -2;
    CommandKind prev_io_kind = CommandKind::WrInp;
    bool have_io = false, have_comp = false;

    auto readiness = [&](std::size_t idx, bool io) -> Cycle {
        if (dep[idx] != kNoCommand && !issued[dep[idx]])
            return kNever;
        const PimCommand &c = cmds[idx];
        int r = c.region;
        // Region horizon of the opposite class covers every already
        // issued command of that class on this region; the explicit
        // dep guarantees the program-order prefix is issued.
        Cycle ready = io ? comp_region_horizon[r] : io_region_horizon[r];
        if (io) {
            if (have_io) {
                bool streaming = c.kind == prev_io_kind && c.group >= 0 &&
                                 c.group == prev_io_group;
                Cycle gap =
                    streaming ? params_.tCcds : duration(prev_io_kind);
                if (prev_io_issue + gap > ready)
                    ready = prev_io_issue + gap;
            }
            if (c.region != cur_io_region && cur_io_region >= 0) {
                // Hand-off: both regions must drain before the I/O
                // stream swaps sides.
                if (comp_horizon > ready)
                    ready = comp_horizon;
            }
        } else {
            if (have_comp) {
                bool streaming =
                    c.group >= 0 && c.group == prev_comp_group;
                Cycle gap = streaming ? params_.tCcds : params_.tMac;
                if (prev_comp_issue + gap > ready)
                    ready = prev_comp_issue + gap;
            }
            if (c.region != cur_comp_region && cur_comp_region >= 0) {
                if (io_horizon > ready)
                    ready = io_horizon;
            }
        }
        return ready;
    };

    std::size_t remaining = cmds.size();
    while (remaining > 0) {
        Cycle io_ready = io_head < io_q.size()
            ? readiness(io_q[io_head], true)
            : kNever;
        Cycle comp_ready = comp_head < comp_q.size()
            ? readiness(comp_q[comp_head], false)
            : kNever;
        if (io_ready == kNever && comp_ready == kNever)
            panic("ping-pong deadlock: both queue heads blocked");

        Cycle io_cand = io_ready == kNever
            ? kNever
            : (io_ready > bus_free ? io_ready : bus_free);
        Cycle comp_cand = comp_ready == kNever
            ? kNever
            : (comp_ready > bus_free ? comp_ready : bus_free);

        bool pick_compute = comp_cand <= io_cand;
        std::size_t idx = pick_compute ? comp_q[comp_head] : io_q[io_head];
        Cycle cand = pick_compute ? comp_cand : io_cand;
        const PimCommand &c = cmds[idx];

        if (cand > bus_free) {
            // Region hand-offs and cross-class waits are the
            // structural stalls this controller suffers.
            result.breakdown.pipelinePenaltyCycles += cand - bus_free;
        }

        Cycle act_pre = 0;
        if (c.kind == CommandKind::Mac) {
            act_pre = rows.prepare(c.row);
            result.breakdown.actPreCycles += act_pre;
        }
        Cycle tentative = cand + act_pre;
        Cycle after_refresh = refresh.adjust(tentative);
        result.breakdown.refreshCycles += after_refresh - tentative;

        Cycle issue = after_refresh;
        Cycle done = issue + duration(c.kind);
        complete[idx] = done;
        issued[idx] = true;
        if (keep_timeline)
            result.timeline[idx] = {c, issue, done};
        if (done > result.makespan)
            result.makespan = done;

        bus_free = issue + params_.tCcds;
        int r = c.region;
        if (pick_compute) {
            ++comp_head;
            cur_comp_region = r;
            prev_comp_issue = issue;
            prev_comp_group = c.group;
            have_comp = true;
            if (done > comp_horizon)
                comp_horizon = done;
            if (done > comp_region_horizon[r])
                comp_region_horizon[r] = done;
        } else {
            ++io_head;
            cur_io_region = r;
            prev_io_issue = issue;
            prev_io_group = c.group;
            prev_io_kind = c.kind;
            have_io = true;
            if (done > io_horizon)
                io_horizon = done;
            if (done > io_region_horizon[r])
                io_region_horizon[r] = done;
        }
        --remaining;
    }

    result.activates = rows.activates();
    result.precharges = rows.precharges();
    result.refreshes = refresh.refreshes();
    finalize(result, stream);
    return result;
}

} // namespace pimphony
