/**
 * @file
 * Ping-pong (double-buffered) controller, the prior-work baseline of
 * the paper's Fig. 18.
 *
 * The buffers are split into two regions so that I/O transfers on one
 * region can overlap MAC execution on the other. Because the static
 * controller tracks no per-entry dependencies, overlap is restricted
 * to *different* regions, and switching the active region requires
 * both regions to drain first — the hand-off stalls the paper
 * contrasts with DCS's entry-level overlap.
 */

#ifndef PIMPHONY_PIM_PINGPONG_SCHEDULER_HH
#define PIMPHONY_PIM_PINGPONG_SCHEDULER_HH

#include "pim/scheduler.hh"

namespace pimphony {

class PingPongScheduler : public CommandScheduler
{
  public:
    using CommandScheduler::CommandScheduler;

    /**
     * Commands must carry region tags (0/1); generators produce them
     * by blocking work into half-buffer regions (use a KernelConfig
     * with halved gbuf/output entries).
     */
    ScheduleResult schedule(const CommandStream &stream,
                            bool keep_timeline = false) override;
};

} // namespace pimphony

#endif // PIMPHONY_PIM_PINGPONG_SCHEDULER_HH
