#include "pim/schedule_result.hh"

namespace pimphony {

LatencyBreakdown &
LatencyBreakdown::operator+=(const LatencyBreakdown &o)
{
    macCycles += o.macCycles;
    actPreCycles += o.actPreCycles;
    refreshCycles += o.refreshCycles;
    dtGbufCycles += o.dtGbufCycles;
    dtOutregCycles += o.dtOutregCycles;
    pipelinePenaltyCycles += o.pipelinePenaltyCycles;
    return *this;
}

} // namespace pimphony
