/**
 * @file
 * Results produced by scheduling a command stream on one PIM channel.
 *
 * The latency breakdown follows the categories of the paper's Fig. 8:
 * MAC computation, DRAM activate/precharge, refresh, I/O transfer time
 * into the Global Buffer (DT-GBuf) and out of the output registers
 * (DT-OutReg), and a residual pipeline penalty capturing cumulative
 * scheduling stalls. The components always sum to the makespan.
 */

#ifndef PIMPHONY_PIM_SCHEDULE_RESULT_HH
#define PIMPHONY_PIM_SCHEDULE_RESULT_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/pim_command.hh"

namespace pimphony {

struct ScheduledCommand
{
    PimCommand cmd;
    Cycle issue = 0;
    Cycle complete = 0;
};

struct LatencyBreakdown
{
    Cycle macCycles = 0;
    Cycle actPreCycles = 0;
    Cycle refreshCycles = 0;
    Cycle dtGbufCycles = 0;
    Cycle dtOutregCycles = 0;
    Cycle pipelinePenaltyCycles = 0;

    Cycle
    total() const
    {
        return macCycles + actPreCycles + refreshCycles + dtGbufCycles +
               dtOutregCycles + pipelinePenaltyCycles;
    }

    LatencyBreakdown &operator+=(const LatencyBreakdown &o);
};

struct ScheduleResult
{
    /** Completion time of the last command. */
    Cycle makespan = 0;

    LatencyBreakdown breakdown;

    /** Ideal MAC occupancy: #MAC commands x tCCDS. */
    Cycle macBusyCycles = 0;

    /** macBusyCycles / makespan. */
    double macUtilization = 0.0;

    std::uint64_t activates = 0;
    std::uint64_t precharges = 0;
    std::uint64_t refreshes = 0;

    std::uint64_t wrInpCount = 0;
    std::uint64_t macCount = 0;
    std::uint64_t rdOutCount = 0;

    /** Populated only when the caller asked to keep the timeline. */
    std::vector<ScheduledCommand> timeline;
};

} // namespace pimphony

#endif // PIMPHONY_PIM_SCHEDULE_RESULT_HH
