#include "pim/scheduler.hh"

#include "common/logging.hh"
#include "pim/dcs_scheduler.hh"
#include "pim/pingpong_scheduler.hh"
#include "pim/static_scheduler.hh"

namespace pimphony {

std::string
schedulerName(SchedulerKind kind)
{
    switch (kind) {
      case SchedulerKind::Static:   return "static";
      case SchedulerKind::PingPong: return "ping-pong";
      case SchedulerKind::Dcs:      return "dcs";
    }
    return "?";
}

void
CommandScheduler::finalize(ScheduleResult &result,
                           const CommandStream &stream) const
{
    result.wrInpCount = stream.countKind(CommandKind::WrInp);
    result.macCount = stream.countKind(CommandKind::Mac);
    result.rdOutCount = stream.countKind(CommandKind::RdOut);

    result.macBusyCycles = result.macCount * params_.tCcds;
    result.breakdown.macCycles = result.macBusyCycles;

    // Bus occupancy of the I/O commands themselves counts as data
    // transfer time; stall attributions were accumulated by the
    // concrete scheduler. Whatever remains of the makespan is the
    // pipeline penalty (issue slots lost to scheduling, ramp-up and
    // drain).
    result.breakdown.dtGbufCycles += result.wrInpCount * params_.tCcds;
    result.breakdown.dtOutregCycles += result.rdOutCount * params_.tCcds;

    Cycle accounted = result.breakdown.total();
    if (result.makespan > accounted) {
        result.breakdown.pipelinePenaltyCycles += result.makespan - accounted;
    } else if (accounted > result.makespan) {
        // Attribution overlapped (e.g., refresh during a gap); shave
        // the surplus off the pipeline penalty first, then clamp.
        Cycle surplus = accounted - result.makespan;
        Cycle &pp = result.breakdown.pipelinePenaltyCycles;
        pp = pp > surplus ? pp - surplus : 0;
    }

    result.macUtilization =
        safeRatio(static_cast<double>(result.macBusyCycles),
                  static_cast<double>(result.makespan));
}

std::unique_ptr<CommandScheduler>
makeScheduler(SchedulerKind kind, const AimTimingParams &params)
{
    switch (kind) {
      case SchedulerKind::Static:
        return std::make_unique<StaticScheduler>(params);
      case SchedulerKind::PingPong:
        return std::make_unique<PingPongScheduler>(params);
      case SchedulerKind::Dcs:
        return std::make_unique<DcsScheduler>(params);
    }
    panic("unknown scheduler kind");
}

} // namespace pimphony
