/**
 * @file
 * Abstract PIM command scheduler interface and factory.
 *
 * Three controllers are modelled (Sec. V / Fig. 18 of the paper):
 *
 *  - Static: in-order issue with conservative type-based timing gaps
 *    derived from fixed command execution times; commands unrolled
 *    from one instruction stream at tCCDS.
 *  - PingPong: buffers split into two regions; I/O on one region may
 *    overlap compute on the other, with hand-off stalls at region
 *    swaps (the prior-work baseline of Fig. 18).
 *  - Dcs: PIMphony's Dynamic Command Scheduling with a D-Table and
 *    S-Table tracking per-entry dependencies, an I/O queue and a
 *    compute queue issued out-of-order with respect to each other.
 */

#ifndef PIMPHONY_PIM_SCHEDULER_HH
#define PIMPHONY_PIM_SCHEDULER_HH

#include <memory>
#include <string>

#include "dram/timing.hh"
#include "isa/pim_command.hh"
#include "pim/schedule_result.hh"

namespace pimphony {

enum class SchedulerKind {
    Static,
    PingPong,
    Dcs,
};

std::string schedulerName(SchedulerKind kind);

class CommandScheduler
{
  public:
    explicit CommandScheduler(const AimTimingParams &params)
        : params_(params)
    {
    }

    virtual ~CommandScheduler() = default;

    /**
     * Schedule @p stream on one channel starting at cycle 0.
     *
     * @param stream commands in program order.
     * @param keep_timeline retain per-command issue/complete times.
     */
    virtual ScheduleResult schedule(const CommandStream &stream,
                                    bool keep_timeline = false) = 0;

    const AimTimingParams &params() const { return params_; }

  protected:
    /** Execution duration of a command by kind. */
    Cycle
    duration(CommandKind kind) const
    {
        switch (kind) {
          case CommandKind::WrInp: return params_.tWrInp;
          case CommandKind::Mac:   return params_.tMac;
          case CommandKind::RdOut: return params_.tRdOut;
        }
        return 0;
    }

    /** Fill derived fields (utilization, counts) of @p result. */
    void finalize(ScheduleResult &result, const CommandStream &stream) const;

    AimTimingParams params_;
};

/** Create a scheduler of the requested kind. */
std::unique_ptr<CommandScheduler>
makeScheduler(SchedulerKind kind, const AimTimingParams &params);

} // namespace pimphony

#endif // PIMPHONY_PIM_SCHEDULER_HH
