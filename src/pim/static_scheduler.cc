#include "pim/static_scheduler.hh"

#include "dram/refresh.hh"
#include "dram/row_state.hh"

namespace pimphony {

ScheduleResult
StaticScheduler::schedule(const CommandStream &stream, bool keep_timeline)
{
    ScheduleResult result;
    if (stream.empty())
        return result;

    RowStateTracker rows(params_);
    RefreshModel refresh(params_);

    Cycle prev_issue = 0;
    bool have_prev = false;
    CommandKind prev_kind = CommandKind::Mac;
    std::int32_t prev_group = -1;

    for (const auto &cmd : stream.commands()) {
        Cycle tentative = 0;
        Cycle gap_penalty = 0;
        CommandKind gap_cause = CommandKind::Mac;
        if (have_prev) {
            bool streaming =
                cmd.kind == prev_kind && cmd.group >= 0 &&
                cmd.group == prev_group;
            Cycle gap = streaming ? params_.tCcds : duration(prev_kind);
            if (gap < params_.tCcds)
                gap = params_.tCcds;
            tentative = prev_issue + gap;
            if (gap > params_.tCcds) {
                gap_penalty = gap - params_.tCcds;
                gap_cause = prev_kind;
            }
        }

        Cycle act_pre = 0;
        if (cmd.kind == CommandKind::Mac) {
            act_pre = rows.prepare(cmd.row);
            tentative += act_pre;
        }

        Cycle after_refresh = refresh.adjust(tentative);
        Cycle refresh_stall = after_refresh - tentative;

        // Attribute the issue delay.
        result.breakdown.actPreCycles += act_pre;
        result.breakdown.refreshCycles += refresh_stall;
        if (gap_penalty > 0) {
            switch (gap_cause) {
              case CommandKind::WrInp:
                result.breakdown.dtGbufCycles += gap_penalty;
                break;
              case CommandKind::RdOut:
                result.breakdown.dtOutregCycles += gap_penalty;
                break;
              case CommandKind::Mac:
                result.breakdown.pipelinePenaltyCycles += gap_penalty;
                break;
            }
        }

        Cycle issue = after_refresh;
        Cycle complete = issue + duration(cmd.kind);
        if (keep_timeline)
            result.timeline.push_back({cmd, issue, complete});

        if (complete > result.makespan)
            result.makespan = complete;

        prev_issue = issue;
        prev_kind = cmd.kind;
        prev_group = cmd.group;
        have_prev = true;
    }

    result.activates = rows.activates();
    result.precharges = rows.precharges();
    result.refreshes = refresh.refreshes();
    finalize(result, stream);
    return result;
}

} // namespace pimphony
