/**
 * @file
 * Static (baseline) PIM command scheduler.
 *
 * The controller issues commands strictly in program order. Commands
 * belonging to the same unrolled instruction stream at the minimum
 * bus interval tCCDS; at every instruction boundary the controller
 * conservatively waits out the full execution time of the previous
 * command, because it tracks no per-entry dependencies (Sec. V-A).
 */

#ifndef PIMPHONY_PIM_STATIC_SCHEDULER_HH
#define PIMPHONY_PIM_STATIC_SCHEDULER_HH

#include "pim/scheduler.hh"

namespace pimphony {

class StaticScheduler : public CommandScheduler
{
  public:
    using CommandScheduler::CommandScheduler;

    ScheduleResult schedule(const CommandStream &stream,
                            bool keep_timeline = false) override;
};

} // namespace pimphony

#endif // PIMPHONY_PIM_STATIC_SCHEDULER_HH
