#include "sim/device.hh"

#include <algorithm>
#include <utility>

namespace pimphony {
namespace sim {

double
Device::submit(EventQueue &queue, const WorkItem &item, double ready,
               CompletionFn done)
{
    double start = std::max(ready, busyUntil_);
    double completion = start + item.seconds;
    busyUntil_ = completion;
    busySeconds_ += item.seconds;
    queue.schedule(completion,
                   [this, item, done = std::move(done)](double t) {
                       ++completed_;
                       onComplete(item, t);
                       if (done)
                           done(t);
                   });
    return completion;
}

void
Device::onComplete(const WorkItem &, double)
{
}

} // namespace sim
} // namespace pimphony
