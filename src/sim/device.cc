#include "sim/device.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace pimphony {
namespace sim {

double
Device::submit(EventQueue &queue, const WorkItem &item, double ready,
               CompletionFn done)
{
    double start = std::max(ready, busyUntil_);
    double completion = start + item.seconds;
    busyUntil_ = completion;
    busySeconds_ += item.seconds;
    // Completion times on a FIFO timeline are monotone, so the
    // completion events of this device fire in submission order: the
    // event only needs the device pointer, and the item + callback
    // wait in the reusable in-flight ring (no per-event closure
    // state, no allocation).
    inflight_.push(InFlight{item, std::move(done)});
    queue.schedule(completion, [this](double t) { completeFront(t); });
    return completion;
}

void
Device::completeFront(double t)
{
    InFlight f = std::move(inflight_.front());
    inflight_.pop();
    ++completed_;
    onComplete(f.item, t);
    if (f.done)
        f.done(t);
}

void
Device::onComplete(const WorkItem &, double)
{
}

double
QueuedDevice::submit(EventQueue &queue, const WorkItem &item,
                     double ready, CompletionFn done)
{
    if (!arbiter_)
        return Device::submit(queue, item, ready, std::move(done));

    Pending p;
    p.item = item;
    p.ready = ready;
    p.remaining = item.seconds;
    p.done = std::move(done);
    p.seq = nextSeq_++;
    pending_.push_back(std::move(p));

    if (ready > queue.now()) {
        // Not yet eligible: wake the dispatcher when it becomes so.
        queue.schedule(ready, [this, &queue](double) { pump(queue); });
    } else {
        pump(queue);
    }
    // Advisory congestion-free estimate; the completion callback is
    // the authoritative time (arbitration depends on future work).
    return std::max(ready, busyUntil()) + item.seconds;
}

double
QueuedDevice::busyUntil() const
{
    return arbiter_ ? timelineEnd_ : Device::busyUntil();
}

double
QueuedDevice::busySeconds() const
{
    return arbiter_ ? servedSeconds_ : Device::busySeconds();
}

std::uint64_t
QueuedDevice::completedItems() const
{
    return arbiter_ ? completed_ : Device::completedItems();
}

void
QueuedDevice::pump(EventQueue &queue)
{
    if (inService_ || pending_.empty())
        return;
    double now = queue.now();

    std::vector<const WorkItem *> &eligible = eligibleScratch_;
    std::vector<std::size_t> &index = indexScratch_;
    eligible.clear();
    index.clear();
    double earliest = pending_.front().ready;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        earliest = std::min(earliest, pending_[i].ready);
        if (pending_[i].ready <= now) {
            eligible.push_back(&pending_[i].item);
            index.push_back(i);
        }
    }
    if (eligible.empty()) {
        // Everything queued becomes ready in the future; sleep until
        // the earliest (redundant wakes no-op through this guard).
        queue.schedule(earliest, [this, &queue](double) { pump(queue); });
        return;
    }

    std::size_t pick = arbiter_->pickNext(eligible);
    if (pick >= eligible.size())
        pick = 0;
    if (pick != 0)
        ++overtakes_; // jumped at least one earlier-queued item
    Pending &p = pending_[index[pick]];

    double quantum = arbiter_->sliceSeconds(p.item);
    sliceIsFinal_ =
        !(quantum > 0.0 && p.remaining > quantum * (1.0 + 1e-9));
    double serve = sliceIsFinal_ ? p.remaining : quantum;

    if (p.item.kind == WorkItem::Kind::DecodeCycle) {
        // Wait metrics are recorded only on an item's FIRST dispatch:
        // a quantum-sliced decode item's resumes would otherwise
        // count its own earlier service as queueing delay.
        if (p.item.servedSeconds == 0.0) {
            double wait = now - p.ready;
            maxDecodeWait_ = std::max(maxDecodeWait_, wait);
            // A decode item that waited while the previous dispatch
            // was decode work of a worse tier sat in a tier
            // inversion; tier-aware quantum slicing bounds this wait.
            if (wait > 0.0 && lastWasDecode_ &&
                lastDecodeTier_ > p.item.tier) {
                ++tierInversions_;
                maxTierInvWait_ = std::max(maxTierInvWait_, wait);
            }
        }
        lastWasDecode_ = true;
        lastDecodeTier_ = p.item.tier;
    } else {
        lastWasDecode_ = false;
    }

    inService_ = true;
    serviceSeq_ = p.seq;
    sliceSeconds_ = serve;
    timelineEnd_ = now + serve;
    servedSeconds_ += serve;
    queue.schedule(timelineEnd_,
                   [this, &queue](double t) { finishSlice(queue, t); });
}

void
QueuedDevice::finishSlice(EventQueue &queue, double t)
{
    inService_ = false;
    std::size_t idx = pending_.size();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].seq == serviceSeq_) {
            idx = i;
            break;
        }
    }
    if (idx == pending_.size())
        panic("%s: in-service item vanished from the queue",
              name().c_str());
    Pending &p = pending_[idx];
    p.item.servedSeconds += sliceSeconds_;
    if (sliceIsFinal_) {
        WorkItem done_item = p.item;
        CompletionFn done = std::move(p.done);
        pending_.erase(pending_.begin() +
                       static_cast<std::ptrdiff_t>(idx));
        ++completed_;
        onComplete(done_item, t);
        if (done)
            done(t);
    } else {
        // Preempted at the quantum: the remainder keeps its queue
        // position (seq) and re-enters arbitration.
        p.remaining -= sliceSeconds_;
        ++p.item.slices;
        ++slices_;
        if (p.item.kind == WorkItem::Kind::DecodeCycle)
            ++decodeSlices_;
    }
    pump(queue);
}

} // namespace sim
} // namespace pimphony
