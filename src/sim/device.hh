/**
 * @file
 * Device abstraction for the event-driven serving core.
 *
 * A Device is a FIFO-serial timeline: work submitted with a ready
 * time begins at max(ready, busyUntil()) and completes after its
 * service time. Submission is synchronous on the timeline arithmetic
 * (so callers can chain stages deterministically) while completion
 * notifications are delivered through the event queue, keeping all
 * observable ordering in event time.
 */

#ifndef PIMPHONY_SIM_DEVICE_HH
#define PIMPHONY_SIM_DEVICE_HH

#include <cstdint>
#include <functional>
#include <string>

#include "sim/event_queue.hh"
#include "sim/work_item.hh"

namespace pimphony {
namespace sim {

class Device
{
  public:
    using CompletionFn = std::function<void(double /*completion*/)>;

    explicit Device(std::string name) : name_(std::move(name)) {}
    virtual ~Device() = default;

    const std::string &name() const { return name_; }

    /** Time the device frees after everything submitted so far. */
    virtual double busyUntil() const { return busyUntil_; }

    /** Total service seconds accepted (occupancy accounting). */
    virtual double busySeconds() const { return busySeconds_; }

    virtual std::uint64_t completedItems() const { return completed_; }

    /**
     * Submit @p item, eligible to start at @p ready. The item begins
     * at max(ready, busyUntil()) and occupies the device for
     * item.seconds. @p done (optional) is scheduled on @p queue at
     * the completion time, after the device's own onComplete hook.
     *
     * @return the completion time.
     */
    virtual double submit(EventQueue &queue, const WorkItem &item,
                          double ready, CompletionFn done = nullptr);

  protected:
    /** Hook observed at completion time (via the event queue). */
    virtual void onComplete(const WorkItem &item, double completion);

  private:
    std::string name_;
    double busyUntil_ = 0.0;
    double busySeconds_ = 0.0;
    std::uint64_t completed_ = 0;
};

} // namespace sim
} // namespace pimphony

#endif // PIMPHONY_SIM_DEVICE_HH
