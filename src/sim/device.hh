/**
 * @file
 * Device abstractions for the event-driven serving core.
 *
 * A Device is a FIFO-serial timeline: work submitted with a ready
 * time begins at max(ready, busyUntil()) and completes after its
 * service time. Submission is synchronous on the timeline arithmetic
 * (so callers can chain stages deterministically) while completion
 * notifications are delivered through the event queue, keeping all
 * observable ordering in event time.
 *
 * A QueuedDevice generalizes the timeline to queue-based arbitration:
 * items wait in a pending queue and a QueueArbiter picks the next one
 * at every dispatch point (dispatch decisions happen in event time,
 * so later-submitted work can overtake queued work) and may bound a
 * dispatch to a service quantum (preempting an in-flight item at the
 * slice boundary). With no arbiter a QueuedDevice degenerates to the
 * plain Device timeline, bit for bit. Because arbitration depends on
 * future submissions, QueuedDevice completion times are authoritative
 * only through the completion callback; the submit() return value is
 * a congestion-free estimate.
 *
 * Performance contract: completion callbacks are sim::SimFn
 * (small-buffer, no heap), and a device keeps its in-flight items in
 * a reusable FIFO ring instead of capturing them in per-event
 * closures — the FIFO timeline's completion times are monotone, so
 * completion events pop the ring in order. Steady-state submission
 * therefore allocates nothing.
 */

#ifndef PIMPHONY_SIM_DEVICE_HH
#define PIMPHONY_SIM_DEVICE_HH

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/ring_buffer.hh"
#include "sim/small_fn.hh"
#include "sim/work_item.hh"

namespace pimphony {
namespace sim {

class Device
{
  public:
    using CompletionFn = SimFn;

    explicit Device(std::string name) : name_(std::move(name)) {}
    virtual ~Device() = default;

    const std::string &name() const { return name_; }

    /** Time the device frees after everything submitted so far. */
    virtual double busyUntil() const { return busyUntil_; }

    /** Total service seconds accepted (occupancy accounting). */
    virtual double busySeconds() const { return busySeconds_; }

    virtual std::uint64_t completedItems() const { return completed_; }

    /**
     * Submit @p item, eligible to start at @p ready. The item begins
     * at max(ready, busyUntil()) and occupies the device for
     * item.seconds. @p done (optional) is scheduled on @p queue at
     * the completion time, after the device's own onComplete hook.
     *
     * @return the completion time.
     */
    virtual double submit(EventQueue &queue, const WorkItem &item,
                          double ready, CompletionFn done = nullptr);

  protected:
    /** Hook observed at completion time (via the event queue). */
    virtual void onComplete(const WorkItem &item, double completion);

  private:
    struct InFlight
    {
        WorkItem item;
        CompletionFn done;
    };

    /** Completion event handler: pop + notify the oldest item. */
    void completeFront(double t);

    std::string name_;
    double busyUntil_ = 0.0;
    double busySeconds_ = 0.0;
    std::uint64_t completed_ = 0;
    RingQueue<InFlight> inflight_;
};

/**
 * Arbitration hooks for a QueuedDevice. The sim layer defines only
 * the mechanism (pick + slice); the serving policies implementing it
 * live in system/sched_policy.
 */
class QueueArbiter
{
  public:
    virtual ~QueueArbiter() = default;

    /**
     * Pick the next item to dispatch. @p eligible holds the queued
     * items whose ready time has passed, in submission (FIFO) order;
     * it is never empty. @return an index into @p eligible. The
     * default is FIFO (index 0).
     */
    virtual std::size_t
    pickNext(const std::vector<const WorkItem *> &eligible) const
    {
        (void)eligible;
        return 0;
    }

    /**
     * Longest single dispatch of @p item in seconds. A value <= 0
     * serves the item's remaining charge unsliced; a positive
     * quantum preempts the item at the slice boundary and re-queues
     * the remainder (keeping its queue position), so the device
     * re-arbitrates at least every quantum.
     */
    virtual double
    sliceSeconds(const WorkItem &item) const
    {
        (void)item;
        return 0.0;
    }
};

/**
 * A serial device whose dispatch order is delegated to a
 * QueueArbiter. Submitted items wait in a pending queue; whenever
 * the device idles it dispatches the arbiter's pick among the ready
 * items (or sleeps until the earliest ready time). Preempted items
 * conserve their total service charge exactly: the slices of one
 * item sum to its WorkItem::seconds, and busySeconds() accounts
 * every slice as served.
 *
 * With a null arbiter every call forwards to the plain Device
 * timeline arithmetic, preserving the FIFO semantics (including
 * advance reservation of future-ready items) exactly.
 */
class QueuedDevice : public Device
{
  public:
    QueuedDevice(std::string name, const QueueArbiter *arbiter)
        : Device(std::move(name)), arbiter_(arbiter)
    {
    }

    double submit(EventQueue &queue, const WorkItem &item, double ready,
                  CompletionFn done = nullptr) override;

    double busyUntil() const override;
    double busySeconds() const override;
    std::uint64_t completedItems() const override;

    bool arbitrated() const { return arbiter_ != nullptr; }

    // --- Policy observability. --------------------------------------

    /** Preemption splits (dispatches that left a remainder queued). */
    std::uint64_t preemptionSlices() const { return slices_; }

    /** Preemption splits of DecodeCycle-kind items only (tier-aware
     *  policies slice lower-tier in-flight decode work). */
    std::uint64_t decodePreemptionSlices() const { return decodeSlices_; }

    /** Dispatches that overtook earlier-queued eligible work. */
    std::uint64_t overtakes() const { return overtakes_; }

    /**
     * Tier inversions observed at dispatch time: a DecodeCycle item
     * started after waiting, and the dispatch immediately before it
     * was a decode item of a strictly worse (numerically greater)
     * tier — the occupant the waiter was inverted behind.
     * Tier-aware slicing bounds the wait of each such inversion (see
     * maxTierInversionWaitSeconds); a FIFO arbiter lets it grow to a
     * whole service.
     */
    std::uint64_t tierInversions() const { return tierInversions_; }

    /** Worst queueing delay among the tier inversions counted above. */
    double maxTierInversionWaitSeconds() const { return maxTierInvWait_; }

    /**
     * Worst queueing delay (start - ready) of a DecodeCycle-kind
     * item, i.e. the longest a decode share stalled behind other
     * work on this timeline. Arbitrated dispatches record it
     * automatically; reservation-path callers (null arbiter) report
     * theirs through noteDecodeWait() so the metric stays comparable
     * across policies.
     */
    double maxDecodeWaitSeconds() const { return maxDecodeWait_; }

    /** Record a decode queueing delay observed outside pump(). */
    void
    noteDecodeWait(double seconds)
    {
        maxDecodeWait_ = std::max(maxDecodeWait_, seconds);
    }

  private:
    struct Pending
    {
        WorkItem item;
        double ready = 0.0;
        double remaining = 0.0;
        CompletionFn done;
        std::uint64_t seq = 0;
    };

    /** Dispatch the next eligible item when idle. */
    void pump(EventQueue &queue);

    /** Completion of the in-service slice at @p t. */
    void finishSlice(EventQueue &queue, double t);

    const QueueArbiter *arbiter_;
    std::vector<Pending> pending_;
    /** Per-pump scratch (reused; pump is never re-entered). */
    std::vector<const WorkItem *> eligibleScratch_;
    std::vector<std::size_t> indexScratch_;
    bool inService_ = false;
    bool sliceIsFinal_ = false;
    double sliceSeconds_ = 0.0;
    std::uint64_t serviceSeq_ = 0;
    double timelineEnd_ = 0.0;
    double servedSeconds_ = 0.0;
    std::uint64_t completed_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t slices_ = 0;
    std::uint64_t decodeSlices_ = 0;
    std::uint64_t overtakes_ = 0;
    std::uint64_t tierInversions_ = 0;
    double maxDecodeWait_ = 0.0;
    double maxTierInvWait_ = 0.0;
    bool lastWasDecode_ = false;
    std::uint32_t lastDecodeTier_ = 0;
};

} // namespace sim
} // namespace pimphony

#endif // PIMPHONY_SIM_DEVICE_HH
