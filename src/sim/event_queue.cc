#include "sim/event_queue.hh"

#include <utility>

namespace pimphony {
namespace sim {

void
EventQueue::schedule(double time, Callback fn)
{
    if (time < now_)
        time = now_;
    heap_.push(Event{time, seq_++, std::move(fn)});
}

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; moving the callback out before
    // pop avoids copying a std::function per event.
    Event ev = std::move(const_cast<Event &>(heap_.top()));
    heap_.pop();
    now_ = ev.time;
    ev.fn(ev.time);
    return true;
}

void
EventQueue::runAll()
{
    while (runOne()) {
    }
}

} // namespace sim
} // namespace pimphony
