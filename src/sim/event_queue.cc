#include "sim/event_queue.hh"

#include <utility>

namespace pimphony {
namespace sim {

void
EventQueue::schedule(double time, Callback fn)
{
    if (time < now_)
        time = now_;
    heap_.push_back(Event{time, seq_++, std::move(fn)});
    siftUp(heap_.size() - 1);
}

void
EventQueue::siftUp(std::size_t i)
{
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        if (!earlier(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

void
EventQueue::siftDown(std::size_t i)
{
    const std::size_t n = heap_.size();
    for (;;) {
        std::size_t l = 2 * i + 1;
        if (l >= n)
            break;
        std::size_t best = l;
        if (l + 1 < n && earlier(heap_[l + 1], heap_[l]))
            best = l + 1;
        if (!earlier(heap_[best], heap_[i]))
            break;
        std::swap(heap_[i], heap_[best]);
        i = best;
    }
}

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    Event ev = std::move(heap_.front());
    if (heap_.size() > 1) {
        heap_.front() = std::move(heap_.back());
        heap_.pop_back();
        siftDown(0);
    } else {
        heap_.pop_back();
    }
    now_ = ev.time;
    ++dispatched_;
    ev.fn(ev.time);
    return true;
}

void
EventQueue::runAll()
{
    while (runOne()) {
    }
}

void
EventQueue::runUntil(double horizon)
{
    while (!heap_.empty() && heap_.front().time <= horizon)
        runOne();
}

} // namespace sim
} // namespace pimphony
