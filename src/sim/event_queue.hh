/**
 * @file
 * Discrete-event queue keyed by simulated time.
 *
 * The serving engine's event-driven core schedules per-cohort,
 * per-stage work completions and open-loop request arrivals as
 * events; the queue pops them in (time, insertion-order) order so
 * simultaneous events run FIFO.
 *
 * Performance contract (sweep scale): events carry a small-buffer
 * callback (sim::SimFn) stored inline in the heap's backing vector,
 * so scheduling and dispatching an event performs no per-event heap
 * allocation on the common paths — the backing vector reallocates
 * only on high-water growth and is reusable across runs. The heap
 * is hand-rolled (binary, (time, seq)-ordered) so push/pop move
 * events instead of copying their callbacks.
 */

#ifndef PIMPHONY_SIM_EVENT_QUEUE_HH
#define PIMPHONY_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/small_fn.hh"

namespace pimphony {
namespace sim {

class EventQueue
{
  public:
    using Callback = SimFn;

    /** Time of the most recently dispatched event. */
    double now() const { return now_; }

    /**
     * Schedule @p fn at absolute simulated time @p time. Times
     * earlier than now() are clamped to now() (a causally "late"
     * hand-off runs immediately).
     */
    void schedule(double time, Callback fn);

    bool empty() const { return heap_.empty(); }
    std::size_t pending() const { return heap_.size(); }

    /** Events dispatched so far (throughput accounting). */
    std::uint64_t dispatched() const { return dispatched_; }

    /** Earliest scheduled time (undefined when empty). */
    double nextTime() const { return heap_.front().time; }

    /** Pre-size the event heap (sweeps with a known high-water). */
    void reserve(std::size_t events) { heap_.reserve(events); }

    /** Dispatch the earliest event. @return false when empty. */
    bool runOne();

    /** Dispatch events until the queue drains. */
    void runAll();

    /**
     * Dispatch every event scheduled at or before @p horizon
     * (inclusive), in the same (time, seq) order runAll() would use,
     * and stop with later events still pending. Interleaving
     * runUntil() calls with increasing horizons dispatches exactly
     * the runAll() sequence — the property the fleet simulation's
     * conservative time windows rely on. now() stays at the last
     * dispatched event (not @p horizon), so a later schedule()
     * between windows is never clamped forward.
     */
    void runUntil(double horizon);

  private:
    struct Event
    {
        double time;
        std::uint64_t seq;
        Callback fn;
    };

    static bool
    earlier(const Event &a, const Event &b)
    {
        if (a.time != b.time)
            return a.time < b.time;
        return a.seq < b.seq;
    }

    void siftUp(std::size_t i);
    void siftDown(std::size_t i);

    std::vector<Event> heap_;
    double now_ = 0.0;
    std::uint64_t seq_ = 0;
    std::uint64_t dispatched_ = 0;
};

} // namespace sim
} // namespace pimphony

#endif // PIMPHONY_SIM_EVENT_QUEUE_HH
