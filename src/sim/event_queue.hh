/**
 * @file
 * Discrete-event queue keyed by simulated time.
 *
 * The serving engine's event-driven core schedules per-cohort,
 * per-stage work completions and open-loop request arrivals as
 * events; the queue pops them in (time, insertion-order) order so
 * simultaneous events run FIFO.
 */

#ifndef PIMPHONY_SIM_EVENT_QUEUE_HH
#define PIMPHONY_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace pimphony {
namespace sim {

class EventQueue
{
  public:
    using Callback = std::function<void(double /*time*/)>;

    /** Time of the most recently dispatched event. */
    double now() const { return now_; }

    /**
     * Schedule @p fn at absolute simulated time @p time. Times
     * earlier than now() are clamped to now() (a causally "late"
     * hand-off runs immediately).
     */
    void schedule(double time, Callback fn);

    bool empty() const { return heap_.empty(); }
    std::size_t pending() const { return heap_.size(); }

    /** Earliest scheduled time (undefined when empty). */
    double nextTime() const { return heap_.top().time; }

    /** Dispatch the earliest event. @return false when empty. */
    bool runOne();

    /** Dispatch events until the queue drains. */
    void runAll();

  private:
    struct Event
    {
        double time;
        std::uint64_t seq;
        Callback fn;

        bool
        operator>(const Event &o) const
        {
            if (time != o.time)
                return time > o.time;
            return seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        heap_;
    double now_ = 0.0;
    std::uint64_t seq_ = 0;
};

} // namespace sim
} // namespace pimphony

#endif // PIMPHONY_SIM_EVENT_QUEUE_HH
