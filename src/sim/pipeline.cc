#include "sim/pipeline.hh"

#include <utility>

#include "common/logging.hh"

namespace pimphony {
namespace sim {

namespace {

/**
 * Recursive chain: stage s's completion event submits stage s+1.
 * Deferring each submission to the predecessor's completion keeps
 * per-stage FIFO order consistent with event order, so work queues at
 * a busy stage instead of reserving it in advance. @p first_stage_done
 * (optional) fires at stage 0's completion, which is the hand-off
 * point sequence submission uses to launch the next element.
 */
void
chainStages(std::vector<Device *> &stages, EventQueue &queue,
            std::vector<WorkItem> items, double ready,
            std::function<void(double)> first_stage_done,
            std::function<void(double)> done)
{
    using Advance = std::function<void(unsigned, double)>;
    auto advance = std::make_shared<Advance>();
    // The stored function holds only a weak reference to itself; the
    // in-flight completion callbacks hold the strong one, so the
    // chain frees itself after the last stage completes.
    std::weak_ptr<Advance> weak = advance;
    auto held = std::make_shared<std::vector<WorkItem>>(std::move(items));
    *advance = [&stages, &queue, held, first = std::move(first_stage_done),
                done = std::move(done), weak](unsigned s, double at) {
        auto self = weak.lock();
        WorkItem item = (*held)[s];
        item.stage = s;
        bool last = (s + 1 == stages.size());
        stages[s]->submit(queue, item, at,
                          [self, s, last, first, done](double completion) {
                              if (s == 0 && first)
                                  first(completion);
                              if (!last)
                                  (*self)(s + 1, completion);
                              else if (done)
                                  done(completion);
                          });
    };
    (*advance)(0, ready);
}

} // namespace

void
StagePipeline::submitCycle(EventQueue &queue, const WorkItem &base,
                           double ready, std::function<void(double)> done)
{
    std::vector<WorkItem> items(stages_.size(), base);
    submitChain(queue, std::move(items), ready, std::move(done));
}

void
StagePipeline::submitChain(EventQueue &queue,
                           std::vector<WorkItem> stage_items, double ready,
                           std::function<void(double)> done)
{
    if (stage_items.size() != stages_.size())
        panic("submitChain with %zu items for %zu stages",
              stage_items.size(), stages_.size());
    chainStages(stages_, queue, std::move(stage_items), ready, nullptr,
                std::move(done));
}

void
StagePipeline::submitSequence(EventQueue &queue,
                              std::vector<std::vector<WorkItem>> elements,
                              double ready,
                              std::function<void(double)> done)
{
    if (elements.empty()) {
        if (done)
            queue.schedule(ready, std::move(done));
        return;
    }
    struct State
    {
        std::vector<std::vector<WorkItem>> elements;
        std::function<void(double)> done;
    };
    auto st = std::make_shared<State>();
    st->elements = std::move(elements);
    st->done = std::move(done);

    using Launch = std::function<void(std::size_t, double)>;
    auto launch = std::make_shared<Launch>();
    std::weak_ptr<Launch> weak = launch;
    *launch = [this, &queue, st, weak](std::size_t e, double at) {
        auto self = weak.lock();
        if (st->elements[e].size() != stages_.size())
            panic("submitSequence element %zu has %zu items for %zu "
                  "stages",
                  e, st->elements[e].size(), stages_.size());
        bool last = (e + 1 == st->elements.size());
        // Launching element e+1 at e's *stage-0* completion (not the
        // chain end) pipelines elements across stages while leaving a
        // FIFO gap other submitters can slot into between elements.
        chainStages(stages_, queue, std::move(st->elements[e]), at,
                    last ? std::function<void(double)>(nullptr)
                         : [self, e](double t) { (*self)(e + 1, t); },
                    last ? st->done : nullptr);
    };
    (*launch)(0, ready);
}

} // namespace sim
} // namespace pimphony
