#include "sim/pipeline.hh"

#include <utility>

#include "common/logging.hh"

namespace pimphony {
namespace sim {

StagePipeline::Chain *
StagePipeline::acquireChain()
{
    if (freeChains_.empty()) {
        chains_.push_back(std::make_unique<Chain>());
        return chains_.back().get();
    }
    Chain *ch = freeChains_.back();
    freeChains_.pop_back();
    return ch;
}

void
StagePipeline::releaseChain(Chain *ch)
{
    ch->stage = 0;
    ch->firstDone = nullptr;
    ch->done = nullptr;
    // items keeps its capacity for the next traversal.
    freeChains_.push_back(ch);
}

StagePipeline::Sequence *
StagePipeline::acquireSequence()
{
    if (freeSequences_.empty()) {
        sequences_.push_back(std::make_unique<Sequence>());
        return sequences_.back().get();
    }
    Sequence *sq = freeSequences_.back();
    freeSequences_.pop_back();
    return sq;
}

void
StagePipeline::releaseSequence(Sequence *sq)
{
    sq->next = 0;
    sq->done = nullptr;
    freeSequences_.push_back(sq);
}

void
StagePipeline::advanceChain(EventQueue &queue, Chain *ch, double at)
{
    unsigned s = ch->stage;
    WorkItem item = ch->items[s];
    item.stage = s;
    // Deferring each stage's submission to its predecessor's
    // completion keeps per-stage FIFO order consistent with event
    // order, so work queues at a busy stage instead of reserving it
    // in advance.
    stages_[s]->submit(queue, item, at,
                       [this, ch, &queue](double t) {
                           onStageComplete(queue, ch, t);
                       });
}

void
StagePipeline::onStageComplete(EventQueue &queue, Chain *ch, double t)
{
    unsigned s = ch->stage;
    if (s == 0 && ch->firstDone) {
        // The stage-0 hand-off (sequence submission launches the
        // next element here) runs before this chain advances, so
        // the next element's stage-0 submission keeps its FIFO slot.
        CompletionFn first = std::move(ch->firstDone);
        ch->firstDone = nullptr;
        first(t);
    }
    if (s + 1 < stages_.size()) {
        ch->stage = s + 1;
        advanceChain(queue, ch, t);
    } else {
        CompletionFn done = std::move(ch->done);
        releaseChain(ch);
        if (done)
            done(t);
    }
}

void
StagePipeline::submitCycle(EventQueue &queue, const WorkItem &base,
                           double ready, CompletionFn done)
{
    Chain *ch = acquireChain();
    ch->items.assign(stages_.size(), base);
    ch->done = std::move(done);
    advanceChain(queue, ch, ready);
}

void
StagePipeline::submitChain(EventQueue &queue,
                           const std::vector<WorkItem> &stage_items,
                           double ready, CompletionFn done)
{
    if (stage_items.size() != stages_.size())
        panic("submitChain with %zu items for %zu stages",
              stage_items.size(), stages_.size());
    Chain *ch = acquireChain();
    ch->items.assign(stage_items.begin(), stage_items.end());
    ch->done = std::move(done);
    advanceChain(queue, ch, ready);
}

void
StagePipeline::launchElement(EventQueue &queue, Sequence *sq, double at)
{
    std::size_t e = sq->next;
    const std::vector<WorkItem> &element = sq->elements[e];
    if (element.size() != stages_.size())
        panic("submitSequence element %zu has %zu items for %zu "
              "stages",
              e, element.size(), stages_.size());
    bool last = (e + 1 == sq->elements.size());
    Chain *ch = acquireChain();
    ch->items.assign(element.begin(), element.end());
    if (last) {
        // The last element completes the sequence at its last-stage
        // completion.
        ch->done = [this, sq](double t) {
            CompletionFn done = std::move(sq->done);
            releaseSequence(sq);
            if (done)
                done(t);
        };
    } else {
        // Launching element e+1 at e's *stage-0* completion (not the
        // chain end) pipelines elements across stages while leaving a
        // FIFO gap other submitters can slot into between elements.
        sq->next = e + 1;
        ch->firstDone = [this, sq, &queue](double t) {
            launchElement(queue, sq, t);
        };
    }
    advanceChain(queue, ch, at);
}

void
StagePipeline::submitSequence(
    EventQueue &queue, const std::vector<std::vector<WorkItem>> &elements,
    double ready, CompletionFn done)
{
    if (elements.empty()) {
        if (done)
            queue.schedule(ready, std::move(done));
        return;
    }
    Sequence *sq = acquireSequence();
    // Element-wise assign reuses the pooled inner vectors' capacity.
    sq->elements.resize(elements.size());
    for (std::size_t e = 0; e < elements.size(); ++e)
        sq->elements[e].assign(elements[e].begin(), elements[e].end());
    sq->next = 0;
    sq->done = std::move(done);
    launchElement(queue, sq, ready);
}

} // namespace sim
} // namespace pimphony
