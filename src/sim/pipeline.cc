#include "sim/pipeline.hh"

#include <utility>

namespace pimphony {
namespace sim {

void
StagePipeline::submitCycle(EventQueue &queue, const WorkItem &base,
                           double ready, std::function<void(double)> done)
{
    // Recursive chain: stage s's completion event submits stage s+1.
    // Deferring each submission to the predecessor's completion keeps
    // per-stage FIFO order consistent with event order, so cohorts
    // queue at a busy stage instead of reserving it in advance.
    using Advance = std::function<void(unsigned, double)>;
    auto advance = std::make_shared<Advance>();
    // The stored function holds only a weak reference to itself; the
    // in-flight completion callbacks hold the strong one, so the
    // chain frees itself after the last stage completes.
    std::weak_ptr<Advance> weak = advance;
    *advance = [this, &queue, base, done = std::move(done),
                weak](unsigned s, double at) {
        auto self = weak.lock();
        WorkItem item = base;
        item.stage = s;
        bool last = (s + 1 == stages_.size());
        stages_[s]->submit(queue, item, at,
                           [self, s, last, done](double completion) {
                               if (!last)
                                   (*self)(s + 1, completion);
                               else if (done)
                                   done(completion);
                           });
    };
    (*advance)(0, ready);
}

} // namespace sim
} // namespace pimphony
