/**
 * @file
 * Pipeline-parallel stage composition for the event-driven core.
 *
 * A StagePipeline owns an ordered list of stage devices (each the
 * serializing resource of one PP stage). One decode cycle of a
 * cohort traverses every stage in order; the hand-off from stage s
 * to s+1 happens at s's completion event, so cohort m+1 enters stage
 * s while cohort m occupies s+1 — the pipeline overlap the analytic
 * step model flattens into stageBeats * max_stage_sec.
 *
 * Prefill chunks use the same traversal: submitSequence() runs an
 * ordered list of elements (one per chunk) through the stages with
 * chunk k+1 entering stage 0 at chunk k's stage-0 completion, so at
 * most one chunk per request queues at any stage and decode work
 * submitted in between interleaves with the chunk stream.
 *
 * Stage devices need not be plain FIFO timelines: a queue-arbitrated
 * stage (see sim::QueuedDevice and the co-scheduling policies in
 * system/sched_policy) may reorder or slice queued work, so its
 * submit() return value is only an estimate. The pipeline therefore
 * advances chains and sequences exclusively on completion events —
 * the authoritative times under every arbitration policy.
 */

#ifndef PIMPHONY_SIM_PIPELINE_HH
#define PIMPHONY_SIM_PIPELINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "sim/device.hh"
#include "sim/event_queue.hh"
#include "sim/work_item.hh"

namespace pimphony {
namespace sim {

class StagePipeline
{
  public:
    explicit StagePipeline(std::vector<Device *> stages)
        : stages_(std::move(stages))
    {
    }

    unsigned stageCount() const
    {
        return static_cast<unsigned>(stages_.size());
    }

    Device &stage(unsigned s) { return *stages_[s]; }
    const Device &stage(unsigned s) const { return *stages_[s]; }

    /**
     * Submit one full decode cycle for a cohort: @p base describes
     * the cohort/cycle, with base.seconds (and base.fcSeconds) the
     * per-stage service time. The chain enters stage 0 no earlier
     * than @p ready; @p done fires at the last stage's completion.
     */
    void submitCycle(EventQueue &queue, const WorkItem &base,
                     double ready, std::function<void(double)> done);

    /**
     * Submit one traversal with heterogeneous per-stage items:
     * @p stage_items[s] runs on stage s (stage indexes are stamped
     * here). Size must equal stageCount(). Used for uneven layer
     * splits, where the last stage owns the layer remainder.
     */
    void submitChain(EventQueue &queue, std::vector<WorkItem> stage_items,
                     double ready, std::function<void(double)> done);

    /**
     * Submit an ordered sequence of traversals (e.g. one request's
     * prefill chunks): element e+1 enters stage 0 at element e's
     * stage-0 completion, so elements pipeline across stages while
     * later submitters can interleave between them in FIFO order.
     * @p done fires at the last element's last-stage completion.
     * Empty sequences complete immediately at @p ready.
     */
    void submitSequence(EventQueue &queue,
                        std::vector<std::vector<WorkItem>> elements,
                        double ready, std::function<void(double)> done);

  private:
    std::vector<Device *> stages_;
};

} // namespace sim
} // namespace pimphony

#endif // PIMPHONY_SIM_PIPELINE_HH
