/**
 * @file
 * Pipeline-parallel stage composition for the event-driven core.
 *
 * A StagePipeline owns an ordered list of stage devices (each the
 * serializing resource of one PP stage). One decode cycle of a
 * cohort traverses every stage in order; the hand-off from stage s
 * to s+1 happens at s's completion event, so cohort m+1 enters stage
 * s while cohort m occupies s+1 — the pipeline overlap the analytic
 * step model flattens into stageBeats * max_stage_sec.
 *
 * Prefill chunks use the same traversal: submitSequence() runs an
 * ordered list of elements (one per chunk) through the stages with
 * chunk k+1 entering stage 0 at chunk k's stage-0 completion, so at
 * most one chunk per request queues at any stage and decode work
 * submitted in between interleaves with the chunk stream.
 *
 * Stage devices need not be plain FIFO timelines: a queue-arbitrated
 * stage (see sim::QueuedDevice and the co-scheduling policies in
 * system/sched_policy) may reorder or slice queued work, so its
 * submit() return value is only an estimate. The pipeline therefore
 * advances chains and sequences exclusively on completion events —
 * the authoritative times under every arbitration policy.
 *
 * Performance contract: in-flight chain and sequence state lives in
 * free lists owned by the pipeline (item vectors keep their
 * capacity across reuse), and every per-stage completion callback
 * captures only two pointers. Submitting one decode cycle on the
 * steady-state path therefore allocates nothing once the pools are
 * warm — the shared_ptr-per-chain and std::function-per-stage of
 * the previous design are gone.
 */

#ifndef PIMPHONY_SIM_PIPELINE_HH
#define PIMPHONY_SIM_PIPELINE_HH

#include <memory>
#include <vector>

#include "sim/device.hh"
#include "sim/event_queue.hh"
#include "sim/work_item.hh"

namespace pimphony {
namespace sim {

class StagePipeline
{
  public:
    using CompletionFn = Device::CompletionFn;

    explicit StagePipeline(std::vector<Device *> stages)
        : stages_(std::move(stages))
    {
    }

    unsigned stageCount() const
    {
        return static_cast<unsigned>(stages_.size());
    }

    Device &stage(unsigned s) { return *stages_[s]; }
    const Device &stage(unsigned s) const { return *stages_[s]; }

    /**
     * Submit one full decode cycle for a cohort: @p base describes
     * the cohort/cycle, with base.seconds (and base.fcSeconds) the
     * per-stage service time. The chain enters stage 0 no earlier
     * than @p ready; @p done fires at the last stage's completion.
     */
    void submitCycle(EventQueue &queue, const WorkItem &base,
                     double ready, CompletionFn done);

    /**
     * Submit one traversal with heterogeneous per-stage items:
     * @p stage_items[s] runs on stage s (stage indexes are stamped
     * here). Size must equal stageCount(). Used for uneven layer
     * splits, where the last stage owns the layer remainder. The
     * items are copied into pooled chain storage; the caller's
     * vector is reusable scratch.
     */
    void submitChain(EventQueue &queue,
                     const std::vector<WorkItem> &stage_items,
                     double ready, CompletionFn done);

    /**
     * Submit an ordered sequence of traversals (e.g. one request's
     * prefill chunks): element e+1 enters stage 0 at element e's
     * stage-0 completion, so elements pipeline across stages while
     * later submitters can interleave between them in FIFO order.
     * @p done fires at the last element's last-stage completion.
     * Empty sequences complete immediately at @p ready. Elements
     * are copied into pooled sequence storage.
     */
    void submitSequence(EventQueue &queue,
                        const std::vector<std::vector<WorkItem>> &elements,
                        double ready, CompletionFn done);

  private:
    /**
     * One in-flight traversal. A chain occupies exactly one stage at
     * a time (stage s+1 is submitted at s's completion event), so a
     * single cursor tracks progress and the per-stage completion
     * callback carries only {pipeline, chain}.
     */
    struct Chain
    {
        std::vector<WorkItem> items;
        unsigned stage = 0;
        CompletionFn firstDone; ///< fires at stage-0 completion
        CompletionFn done;      ///< fires at last-stage completion
    };

    /** One in-flight sequence of chained elements. */
    struct Sequence
    {
        std::vector<std::vector<WorkItem>> elements;
        std::size_t next = 0;
        CompletionFn done;
    };

    Chain *acquireChain();
    void releaseChain(Chain *ch);
    Sequence *acquireSequence();
    void releaseSequence(Sequence *sq);

    /** Submit chain->items[chain->stage] on its stage device. */
    void advanceChain(EventQueue &queue, Chain *ch, double at);

    /** Stage-completion continuation for @p ch at time @p t. */
    void onStageComplete(EventQueue &queue, Chain *ch, double t);

    /** Launch sequence element sq->next as a chain at @p at. */
    void launchElement(EventQueue &queue, Sequence *sq, double at);

    std::vector<Device *> stages_;
    std::vector<std::unique_ptr<Chain>> chains_;
    std::vector<Chain *> freeChains_;
    std::vector<std::unique_ptr<Sequence>> sequences_;
    std::vector<Sequence *> freeSequences_;
};

} // namespace sim
} // namespace pimphony

#endif // PIMPHONY_SIM_PIPELINE_HH
