/**
 * @file
 * Amortized-allocation-free FIFO ring for the sim core's in-flight
 * bookkeeping (device completions, queued decode items). A deque
 * allocates and frees block nodes as its window slides; this ring
 * reuses one power-of-two buffer and only reallocates on growth, so
 * the steady-state decode path performs no allocation once warm.
 */

#ifndef PIMPHONY_SIM_RING_BUFFER_HH
#define PIMPHONY_SIM_RING_BUFFER_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace pimphony {
namespace sim {

template <typename T>
class RingQueue
{
  public:
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    T &
    front()
    {
        return slots_[head_];
    }

    /** The i-th queued element (0 = front). */
    T &
    at(std::size_t i)
    {
        return slots_[(head_ + i) & (slots_.size() - 1)];
    }

    /**
     * Remove and return the i-th element, preserving the order of
     * the rest. i == 0 is the O(1) pop fast path (the common FIFO
     * pick); interior removal shifts the O(n - i) tail — selection
     * queues stay tiny.
     */
    T
    takeAt(std::size_t i)
    {
        T out = std::move(at(i));
        if (i == 0) {
            slots_[head_] = T{};
            head_ = (head_ + 1) & (slots_.size() - 1);
            --count_;
            return out;
        }
        for (std::size_t j = i; j + 1 < count_; ++j)
            at(j) = std::move(at(j + 1));
        slots_[(head_ + count_ - 1) & (slots_.size() - 1)] = T{};
        --count_;
        return out;
    }

    void
    push(T &&v)
    {
        if (count_ == slots_.size())
            grow();
        slots_[(head_ + count_) & (slots_.size() - 1)] = std::move(v);
        ++count_;
    }

    void
    pop()
    {
        slots_[head_] = T{};
        head_ = (head_ + 1) & (slots_.size() - 1);
        --count_;
    }

  private:
    void
    grow()
    {
        std::size_t cap = slots_.empty() ? 8 : slots_.size() * 2;
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < count_; ++i)
            next[i] = std::move(slots_[(head_ + i) & (slots_.size() - 1)]);
        slots_ = std::move(next);
        head_ = 0;
    }

    std::vector<T> slots_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace sim
} // namespace pimphony

#endif // PIMPHONY_SIM_RING_BUFFER_HH
