/**
 * @file
 * Small-buffer callable for the event-driven core's hot path.
 *
 * The simulation kernel dispatches millions of events per sweep; a
 * std::function per event means a heap allocation per event, which
 * dominates the scheduling cost long before the device models do.
 * SmallFn is a move-only type-erased `void(double)` callable with
 * inline storage sized for the core's callbacks (a device pointer,
 * an event-queue pointer, and a few scalars or one shared_ptr). A
 * callable that does not fit falls back to the heap and bumps a
 * counter, so tests can assert that the steady-state decode path
 * never allocates callback storage (tests/sim_core_test.cc).
 *
 * The fallback counter is thread-local: each engine instance runs on
 * one thread, so a zero-growth assertion around a run stays
 * meaningful while the sweep runner (common/parallel) executes other
 * configs concurrently on sibling threads. smallFnHeapAllocsTotal()
 * aggregates across all threads for process-wide accounting.
 */

#ifndef PIMPHONY_SIM_SMALL_FN_HH
#define PIMPHONY_SIM_SMALL_FN_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace pimphony {
namespace sim {

namespace detail {
inline thread_local std::uint64_t small_fn_heap_allocs = 0;
inline std::atomic<std::uint64_t> small_fn_heap_allocs_total{0};

inline void
countHeapAlloc()
{
    ++small_fn_heap_allocs;
    small_fn_heap_allocs_total.fetch_add(1, std::memory_order_relaxed);
}
} // namespace detail

/**
 * Heap fallbacks taken by SmallFn on the *calling thread* since it
 * started (test hook: the hot-path tests snapshot this around a run
 * and assert zero growth; concurrent engine runs on other threads
 * cannot perturb the delta).
 */
inline std::uint64_t
smallFnHeapAllocs()
{
    return detail::small_fn_heap_allocs;
}

/** Heap fallbacks across all threads since process start. */
inline std::uint64_t
smallFnHeapAllocsTotal()
{
    return detail::small_fn_heap_allocs_total.load(
        std::memory_order_relaxed);
}

/**
 * Move-only `void(double)` callable with @p Capacity bytes of inline
 * storage. Callables that fit inline (size, alignment, and nothrow
 * move) never touch the heap; larger ones are boxed and counted via
 * smallFnHeapAllocs(). Two SmallFns of the same Capacity move into
 * each other without re-erasing, so handing a stored completion
 * callback to the event queue is a relocation, not a wrap.
 */
template <std::size_t Capacity>
class SmallFn
{
  public:
    SmallFn() = default;
    SmallFn(std::nullptr_t) {}

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFn> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
    SmallFn(F &&f)
    {
        construct(std::forward<F>(f));
    }

    SmallFn(SmallFn &&o) noexcept { moveFrom(o); }

    SmallFn &
    operator=(SmallFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            moveFrom(o);
        }
        return *this;
    }

    SmallFn &
    operator=(std::nullptr_t)
    {
        reset();
        return *this;
    }

    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    ~SmallFn() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    void
    operator()(double t)
    {
        ops_->invoke(&buf_, t);
    }

  private:
    struct Ops
    {
        void (*invoke)(void *, double);
        /**
         * Move-construct into @p dst from @p src, then destroy src.
         * Null for trivially-copyable callables: relocation is a
         * memcpy of the buffer and destruction is a no-op, which
         * keeps event-heap sifts free of indirect calls (the hot
         * callbacks capture only raw pointers).
         */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *); ///< null when trivially destructible
    };

    template <typename F>
    void
    construct(F &&f)
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= Capacity &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_trivially_copyable_v<Fn>) {
            ::new (static_cast<void *>(&buf_)) Fn(std::forward<F>(f));
            static const Ops ops = {
                [](void *b, double t) {
                    (*std::launder(static_cast<Fn *>(b)))(t);
                },
                nullptr,
                nullptr,
            };
            ops_ = &ops;
        } else if constexpr (sizeof(Fn) <= Capacity &&
                             alignof(Fn) <= alignof(std::max_align_t) &&
                             std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(&buf_)) Fn(std::forward<F>(f));
            static const Ops ops = {
                [](void *b, double t) {
                    (*std::launder(static_cast<Fn *>(b)))(t);
                },
                [](void *dst, void *src) {
                    Fn *s = std::launder(static_cast<Fn *>(src));
                    ::new (dst) Fn(std::move(*s));
                    s->~Fn();
                },
                [](void *b) {
                    std::launder(static_cast<Fn *>(b))->~Fn();
                },
            };
            ops_ = &ops;
        } else {
            detail::countHeapAlloc();
            ::new (static_cast<void *>(&buf_))
                Fn *(new Fn(std::forward<F>(f)));
            static const Ops ops = {
                [](void *b, double t) {
                    (**std::launder(static_cast<Fn **>(b)))(t);
                },
                [](void *dst, void *src) {
                    Fn **s = std::launder(static_cast<Fn **>(src));
                    ::new (dst) Fn *(*s);
                },
                [](void *b) {
                    delete *std::launder(static_cast<Fn **>(b));
                },
            };
            ops_ = &ops;
        }
    }

    void
    moveFrom(SmallFn &o) noexcept
    {
        ops_ = o.ops_;
        if (ops_) {
            if (ops_->relocate)
                ops_->relocate(&buf_, &o.buf_);
            else
                std::memcpy(&buf_, &o.buf_, Capacity);
            o.ops_ = nullptr;
        }
    }

    void
    reset()
    {
        if (ops_) {
            if (ops_->destroy)
                ops_->destroy(&buf_);
            ops_ = nullptr;
        }
    }

    const Ops *ops_ = nullptr;
    alignas(std::max_align_t) unsigned char buf_[Capacity];
};

/**
 * Callback capacity for the sim core. Sized so every callback on the
 * steady-state decode path fits inline: the largest is the engine's
 * prefill-completion continuation (four captured references plus one
 * shared_ptr = 48 bytes). Event callbacks and device completion
 * callbacks share the type, so stored callbacks relocate into the
 * event queue without re-erasure.
 */
inline constexpr std::size_t kSimFnCapacity = 64;

using SimFn = SmallFn<kSimFnCapacity>;

} // namespace sim
} // namespace pimphony

#endif // PIMPHONY_SIM_SMALL_FN_HH
