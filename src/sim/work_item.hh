/**
 * @file
 * Unit of scheduled work in the event-driven serving core: one
 * cohort's (micro-batch's) occupancy of one pipeline stage for one
 * decode cycle.
 */

#ifndef PIMPHONY_SIM_WORK_ITEM_HH
#define PIMPHONY_SIM_WORK_ITEM_HH

#include <cstdint>

namespace pimphony {
namespace sim {

struct WorkItem
{
    /** Cohort (micro-batch) the work belongs to. */
    std::uint32_t cohort = 0;

    /** Pipeline stage index the item occupies. */
    unsigned stage = 0;

    /** Decode cycle (token index) of the cohort. */
    std::uint64_t cycle = 0;

    /** Service time on the stage's serializing device. */
    double seconds = 0.0;

    /**
     * FC share of the service time, executed on the stage's xPU
     * timeline when one exists (heterogeneous xPU+PIM systems). The
     * xPU share never exceeds @ref seconds, so it shadows the
     * serializing PIM timeline without gating it.
     */
    double fcSeconds = 0.0;
};

} // namespace sim
} // namespace pimphony

#endif // PIMPHONY_SIM_WORK_ITEM_HH
