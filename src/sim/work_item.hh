/**
 * @file
 * Unit of scheduled work in the event-driven serving core. Two kinds
 * of work flow through the same stage devices: one cohort's
 * (micro-batch's) occupancy of one pipeline stage for one decode
 * cycle, and one request's prefill chunk crossing the same stage's
 * compute (xPU) timeline.
 */

#ifndef PIMPHONY_SIM_WORK_ITEM_HH
#define PIMPHONY_SIM_WORK_ITEM_HH

#include <cstdint>

namespace pimphony {
namespace sim {

struct WorkItem
{
    enum class Kind : std::uint8_t {
        /** One cohort decode cycle on the stage's serializing device. */
        DecodeCycle,

        /** One prefill chunk on the stage's compute (xPU) timeline. */
        PrefillChunk,
    };

    Kind kind = Kind::DecodeCycle;

    /** Cohort (micro-batch) the decode work belongs to. */
    std::uint32_t cohort = 0;

    /** Request a prefill chunk belongs to (kind == PrefillChunk). */
    std::uint32_t request = 0;

    /** Chunk index within the request's prefill sequence. */
    std::uint32_t chunk = 0;

    /** Pipeline stage index the item occupies. */
    unsigned stage = 0;

    /** Decode cycle (token index) of the cohort. */
    std::uint64_t cycle = 0;

    /** Service time on the stage's serializing device. */
    double seconds = 0.0;

    /**
     * FC share of the service time, executed on the stage's xPU
     * timeline when one exists (heterogeneous xPU+PIM systems). With
     * an idle xPU the share never exceeds @ref seconds and shadows
     * the serializing PIM timeline; when prefill chunks congest the
     * xPU, the FC share completes late and gates the stage instead.
     */
    double fcSeconds = 0.0;

    // --- Preemption metadata (maintained by QueuedDevice). ----------

    /**
     * Service seconds already delivered by earlier dispatch slices
     * when the item was preempted mid-service (quantum policies).
     * Equals @ref seconds by the time onComplete observes the item.
     */
    double servedSeconds = 0.0;

    /**
     * Dispatch slices the item was served in (1 = never preempted).
     * Slices beyond the first are preemption splits: the remaining
     * charge was re-queued and re-planned after each quantum.
     */
    std::uint32_t slices = 1;

    /**
     * Latency tier of the work (0 = most latency-sensitive, the
     * default). Decode cycles carry the best (lowest) tier of their
     * cohort's members; prefill chunks carry their request's tier.
     * Tier-aware arbiters serve lower values first and may slice a
     * lower-tier in-flight item to bound how long a higher tier is
     * inverted behind it.
     */
    std::uint32_t tier = 0;
};

} // namespace sim
} // namespace pimphony

#endif // PIMPHONY_SIM_WORK_ITEM_HH
