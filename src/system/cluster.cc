#include "system/cluster.hh"

namespace pimphony {

std::string
systemKindName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::PimOnly: return "PIM-only (CENT-like)";
      case SystemKind::XpuPim:  return "xPU+PIM (NeuPIMs-like)";
    }
    return "?";
}

Bytes
ClusterConfig::usableKvBytes(const LlmConfig &model) const
{
    Bytes cap = totalCapacity();
    Bytes weights = model.weightBytes();
    if (weights >= cap)
        return 0;
    return cap - weights;
}

unsigned
ClusterConfig::prefillEngines() const
{
    if (kind == SystemKind::XpuPim)
        return nModules; // one NPU per module, chunk-pipelined
    return plan.tp > 0 ? plan.tp : nModules; // PNMs of one stage
}

ClusterConfig
ClusterConfig::centLike(const LlmConfig &model)
{
    ClusterConfig c;
    c.kind = SystemKind::PimOnly;
    bool big = model.dModel > 4096;
    c.nModules = big ? 32 : 8;
    c.plan = ParallelPlan{c.nModules, 1};
    c.module.nChannels = 32;
    c.module.capacityBytes = 16_GiB;
    c.module.timing = AimTimingParams::aimx();
    c.module.scheduler = SchedulerKind::Static;
    c.module.partitioning = Partitioning::Hfp;
    c.xpu = XpuConfig::centPnm();
    return c;
}

ClusterConfig
ClusterConfig::neupimsLike(const LlmConfig &model)
{
    ClusterConfig c;
    c.kind = SystemKind::XpuPim;
    bool big = model.dModel > 4096;
    c.nModules = big ? 16 : 4;
    c.plan = ParallelPlan{c.nModules, 1};
    c.module.nChannels = 32;
    c.module.capacityBytes = 32_GiB;
    c.module.timing = AimTimingParams::aimx();
    c.module.scheduler = SchedulerKind::Static;
    c.module.partitioning = Partitioning::Hfp;
    c.xpu = XpuConfig::neupimsNpu();
    return c;
}

std::string
PimphonyOptions::label() const
{
    if (!tcp && !dcs && !dpa)
        return "baseline";
    std::string s;
    if (tcp)
        s += "+TCP";
    if (dcs)
        s += "+DCS";
    if (dpa)
        s += "+DPA";
    return s;
}

void
applyOptions(ClusterConfig &config, const PimphonyOptions &options)
{
    config.module.partitioning =
        options.tcp ? Partitioning::Tcp : Partitioning::Hfp;
    config.module.scheduler =
        options.dcs ? SchedulerKind::Dcs : SchedulerKind::Static;
    config.module.timing.outputEntries = options.dcs ? 16 : 1;
    // DPA selects the allocator at the engine level.
}

} // namespace pimphony
