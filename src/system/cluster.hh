/**
 * @file
 * Multi-module system configurations (the paper's Table IV plus the
 * evaluation-section deployments): a CENT-like PIM-only system and a
 * NeuPIMs-like xPU+PIM system, arranged in a TP x PP module grid.
 */

#ifndef PIMPHONY_SYSTEM_CLUSTER_HH
#define PIMPHONY_SYSTEM_CLUSTER_HH

#include <string>

#include "mapping/parallel.hh"
#include "model/llm.hh"
#include "system/pim_module.hh"
#include "system/xpu.hh"

namespace pimphony {

enum class SystemKind {
    PimOnly, ///< CENT-like: FC and attention both on PIM
    XpuPim,  ///< NeuPIMs-like: FC on the NPU, attention on PIM
};

std::string systemKindName(SystemKind kind);

struct ClusterConfig
{
    SystemKind kind = SystemKind::PimOnly;
    unsigned nModules = 8;
    ParallelPlan plan{8, 1};
    PimModuleConfig module;
    XpuConfig xpu = XpuConfig::neupimsNpu();

    /** Inter-module link (CXL-class) for TP all-reduces. */
    double linkBandwidth = 64e9;
    double linkAlpha = 1.5e-6;

    Bytes
    totalCapacity() const
    {
        return static_cast<Bytes>(nModules) * module.capacityBytes;
    }

    /** Capacity left for KV after the weight shards. */
    Bytes usableKvBytes(const LlmConfig &model) const;

    /**
     * Compute engines cooperating on one request's prefill. The
     * NeuPIMs-like system chunk-pipelines prefill across PP stages,
     * so every module's NPU contributes; the CENT-like system's PNMs
     * execute the admitted request layer by layer without chunked
     * prefill, so only the tp PNMs of one stage work at a time (with
     * PP=1 deployments the two coincide at nModules).
     */
    unsigned prefillEngines() const;

    /**
     * Table IV + Sec. VIII-A presets. PIM-only: 16 GB modules, 8
     * for 7B (128 GB) and 32 for 72B (512 GB). xPU+PIM: 32 GB
     * modules, 4 for 7B and 16 for 72B.
     */
    static ClusterConfig centLike(const LlmConfig &model);
    static ClusterConfig neupimsLike(const LlmConfig &model);
};

/** Apply the PIMphony technique set to a configuration. */
struct PimphonyOptions
{
    bool tcp = false;
    bool dcs = false;
    bool dpa = false;

    static PimphonyOptions baseline() { return {}; }
    static PimphonyOptions all() { return {true, true, true}; }

    std::string label() const;
};

void applyOptions(ClusterConfig &config, const PimphonyOptions &options);

} // namespace pimphony

#endif // PIMPHONY_SYSTEM_CLUSTER_HH
