#include "system/engine.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/units.hh"
#include "system/prefill.hh"

namespace pimphony {

ServingEngine::ServingEngine(const ClusterConfig &cluster,
                             const LlmConfig &model,
                             std::vector<Request> requests,
                             const EngineOptions &options)
    : ServingEngine(cluster, model, immediateArrivals(requests), options)
{
}

ServingEngine::ServingEngine(const ClusterConfig &cluster,
                             const LlmConfig &model,
                             std::vector<TimedRequest> requests,
                             const EngineOptions &options)
    : cluster_(cluster), model_(model), options_(options)
{
    if (cluster_.plan.modules() != cluster_.nModules)
        fatal("parallel plan %s does not cover %u modules",
              cluster_.plan.toString().c_str(), cluster_.nModules);
    Bytes kv_capacity = cluster_.usableKvBytes(model_);
    if (kv_capacity == 0)
        fatal("model weights (%llu B) exceed system capacity",
              static_cast<unsigned long long>(model_.weightBytes()));
    allocator_ = makeAllocator(options_.allocator, kv_capacity,
                               model_.kvBytesPerToken(),
                               model_.contextWindow);
    module_ = std::make_unique<PimModuleModel>(cluster_.module);
    xpu_ = std::make_unique<XpuModel>(cluster_.xpu);
    for (auto &r : requests)
        pending_.push_back(r);
}

void
ServingEngine::admit()
{
    while (!pending_.empty()) {
        const TimedRequest &timed = pending_.front();
        if (timed.arrivalSeconds > result_.simulatedSeconds)
            break; // not yet arrived (open loop)
        const Request &front = timed.request;
        Tokens final_tokens = front.contextTokens + front.decodeTokens;
        Bytes need = model_.kvBytesPerToken() * final_tokens;
        if (need > allocator_->capacity() ||
            final_tokens > model_.contextWindow) {
            // Can never be served on this configuration.
            ++result_.rejectedRequests;
            pending_.pop_front();
            continue;
        }
        // Headroom: only admit when the full decode trajectory fits
        // next to the current reservations (avoids preemption storms).
        if (allocator_->reservedBytes() + need > allocator_->capacity())
            break;
        if (!allocator_->tryAdmit(front.id, front.contextTokens))
            break;
        if (options_.chargePrefill) {
            const XpuConfig &compute = cluster_.xpu;
            unsigned engines = cluster_.kind == SystemKind::XpuPim
                ? cluster_.nModules
                : cluster_.nModules; // one PNM per module
            double sec = prefillSeconds(model_, front.contextTokens,
                                        compute, engines);
            result_.prefillSeconds += sec;
            result_.simulatedSeconds += sec;
        }
        active_.push_back({front, 0, timed.arrivalSeconds});
        pending_.pop_front();
    }
}

double
ServingEngine::stepSeconds(std::vector<double> &busy_acc,
                           std::vector<double> &span_acc)
{
    const unsigned tp = cluster_.plan.tp;
    const unsigned pp = cluster_.plan.pp;
    const std::uint32_t batch =
        static_cast<std::uint32_t>(active_.size());

    MicroBatching mb = planMicroBatches(batch, pp);
    const std::uint32_t mbs = mb.microBatchSize;
    const unsigned layers_per_stage = std::max(1u, model_.nLayers / pp);
    const unsigned kvh = model_.kvHeads();
    const unsigned jobs_per_req = std::max(1u, ceilDiv(kvh, tp));
    // When the TP group outnumbers the KV heads, the modules sharing
    // a head split its token range (sequence parallelism); the extra
    // partial reduction folds into the EPU path.
    const unsigned seq_split = tp > kvh ? tp / kvh : 1;

    double max_stage_sec = 0.0;
    double step_att_sec = 0.0, step_fc_sec = 0.0;
    double step_busy = 0.0;
    EnergyBreakdown att_energy, fc_energy;

    for (std::uint32_t m = 0; m < mb.count; ++m) {
        std::uint32_t lo = m * mbs;
        std::uint32_t hi = std::min<std::uint32_t>(lo + mbs, batch);
        if (lo >= hi)
            continue;
        std::vector<AttentionJob> jobs;
        jobs.reserve((hi - lo) * jobs_per_req);
        for (std::uint32_t i = lo; i < hi; ++i) {
            Tokens t = active_[i].request.contextTokens +
                       active_[i].generated;
            Tokens t_mod = seq_split > 1
                ? ceilDiv<Tokens>(t, seq_split)
                : t;
            for (unsigned h = 0; h < jobs_per_req; ++h)
                jobs.push_back({active_[i].request.id, h, t_mod});
        }

        PhaseResult att = module_->attentionLayer(jobs, model_);
        double fc_sec;
        PhaseResult fc;
        if (cluster_.kind == SystemKind::PimOnly) {
            fc = module_->fcLayer(hi - lo, model_, tp);
            fc_sec = fc.seconds;
        } else {
            double layer_params = static_cast<double>(model_.paramCount()) /
                                  model_.nLayers;
            double flops = 2.0 * layer_params / tp *
                           static_cast<double>(hi - lo);
            Bytes w = static_cast<Bytes>(
                static_cast<double>(model_.weightBytes()) /
                model_.nLayers / tp);
            fc_sec = xpu_->gemmSeconds(flops, w, hi - lo);
            // Simple NPU energy: 0.4 pJ/FLOP.
            fc.energy.elseE = flops * 0.4;
        }

        double sync = 2.0 * allReduceSeconds(
            static_cast<Bytes>(hi - lo) * model_.dModel * 2, tp,
            cluster_.linkBandwidth, cluster_.linkAlpha);

        double layer_sec = cluster_.kind == SystemKind::PimOnly
            ? att.seconds + fc_sec + sync
            : std::max(att.seconds, fc_sec) + sync;
        double stage_sec = layers_per_stage * layer_sec;
        max_stage_sec = std::max(max_stage_sec, stage_sec);

        // Per full step this micro-batch crosses all pp stages.
        double layers_total = static_cast<double>(layers_per_stage) * pp;
        step_att_sec += att.seconds * layers_total;
        step_fc_sec += fc_sec * layers_total;
        step_busy += (att.busyChannelCycles + fc.busyChannelCycles) *
                     layers_total * tp;
        att_energy += att.energy.scaled(layers_total * tp);
        fc_energy += fc.energy.scaled(layers_total * tp);
    }

    double step_sec = mb.stageBeats * max_stage_sec;

    // Cluster-wide channel-cycle span and residual idle background.
    double spc = cluster_.module.timing.secondsPerCycle();
    double span = step_sec / spc * cluster_.module.nChannels *
                  cluster_.nModules;
    busy_acc.push_back(step_busy);
    span_acc.push_back(span);

    double busy_span_cycles =
        (step_att_sec + (cluster_.kind == SystemKind::PimOnly
                             ? step_fc_sec
                             : 0.0)) /
        spc * cluster_.module.nChannels * tp;
    double idle = span - busy_span_cycles;
    if (idle > 0) {
        // Attribute idle background proportionally to phase time.
        double tot = step_att_sec + step_fc_sec;
        double att_share = tot > 0 ? step_att_sec / tot : 1.0;
        EnergyBreakdown bg = backgroundEnergy(
            static_cast<Cycle>(idle), 1,
            EnergyParams{});
        att_energy += bg.scaled(att_share);
        fc_energy += bg.scaled(1.0 - att_share);
    }

    result_.attentionSeconds += step_att_sec;
    result_.fcSeconds += step_fc_sec;
    result_.attentionEnergy += att_energy;
    result_.fcEnergy += fc_energy;
    return step_sec;
}

EngineResult
ServingEngine::run()
{
    std::vector<double> busy_acc, span_acc;
    double batch_time = 0.0;   // integral of batch over time
    double capacity_time = 0.0;

    admit();
    std::uint64_t steps = 0;
    while ((!active_.empty() || !pending_.empty()) &&
           steps < options_.maxSteps) {
        ++steps;
        if (active_.empty()) {
            if (pending_.front().arrivalSeconds >
                result_.simulatedSeconds) {
                // Open loop: idle until the next arrival.
                result_.simulatedSeconds =
                    pending_.front().arrivalSeconds;
                admit();
                continue;
            }
            // Nothing admitted although requests pend: the headroom
            // check refuses them only when memory is held, which it
            // cannot be with an empty active set -> reject front.
            ++result_.rejectedRequests;
            pending_.pop_front();
            admit();
            continue;
        }

        double sec = stepSeconds(busy_acc, span_acc);
        result_.simulatedSeconds += sec;
        batch_time += sec * static_cast<double>(active_.size());
        capacity_time += sec * allocator_->capacityUtilization();

        // Advance every active request by one token.
        std::vector<Active> next;
        next.reserve(active_.size());
        for (auto &a : active_) {
            Tokens total = a.request.contextTokens + a.generated + 1;
            if (!allocator_->grow(a.request.id, total)) {
                // Out of memory: preempt (vLLM-style recompute); the
                // request re-queues with its original arrival time.
                allocator_->release(a.request.id);
                ++result_.preemptions;
                pending_.push_back({a.request, a.arrival});
                continue;
            }
            ++a.generated;
            ++result_.generatedTokens;
            if (a.generated >= a.request.decodeTokens) {
                allocator_->release(a.request.id);
                ++result_.completedRequests;
                latencies_.push_back(result_.simulatedSeconds -
                                     a.arrival);
            } else {
                next.push_back(a);
            }
        }
        active_ = std::move(next);
        admit();
    }
    if (steps >= options_.maxSteps)
        warn("engine stopped at the step cap (%llu)",
             static_cast<unsigned long long>(options_.maxSteps));

    if (result_.simulatedSeconds > 0.0) {
        result_.tokensPerSecond =
            static_cast<double>(result_.generatedTokens) /
            result_.simulatedSeconds;
        result_.avgEffectiveBatch =
            batch_time / result_.simulatedSeconds;
        result_.capacityUtilization =
            capacity_time / result_.simulatedSeconds;
    }
    double busy = 0.0, span = 0.0;
    for (double b : busy_acc)
        busy += b;
    for (double s : span_acc)
        span += s;
    result_.macUtilization = safeRatio(busy, span);

    if (!latencies_.empty()) {
        std::sort(latencies_.begin(), latencies_.end());
        double sum = 0.0;
        for (double l : latencies_)
            sum += l;
        result_.avgRequestLatency =
            sum / static_cast<double>(latencies_.size());
        std::size_t p95 = latencies_.size() * 95 / 100;
        if (p95 >= latencies_.size())
            p95 = latencies_.size() - 1;
        result_.p95RequestLatency = latencies_[p95];
    }
    return result_;
}

EngineResult
runServing(ClusterConfig cluster, const LlmConfig &model,
           const std::vector<Request> &requests,
           const PimphonyOptions &pimphony, std::uint64_t max_steps)
{
    applyOptions(cluster, pimphony);
    EngineOptions options;
    options.allocator =
        pimphony.dpa ? AllocatorKind::LazyChunk : AllocatorKind::Static;
    options.maxSteps = max_steps;
    ServingEngine engine(cluster, model, requests, options);
    return engine.run();
}

} // namespace pimphony
