#include "system/engine.hh"

#include <algorithm>
#include <functional>
#include <list>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/units.hh"
#include "sim/event_queue.hh"
#include "sim/pipeline.hh"
#include "sim/work_item.hh"
#include "system/prefill.hh"
#include "system/stage_device.hh"

namespace pimphony {

/** One in-flight decode cohort (micro-batch) of the event core. */
struct ServingEngine::EventCohort
{
    std::uint32_t id = 0;
    std::uint64_t cycle = 0;
    std::vector<Active> members;
};

/**
 * State of one prepared event-driven run: the former runEventDriven
 * locals, hoisted to the heap so the run survives between advanceTo
 * calls. Field names and roles are unchanged from the run-local
 * originals; the ev* member functions are the former lambdas.
 */
struct ServingEngine::EventRun
{
    sim::EventQueue queue;
    std::unique_ptr<SchedPolicy> policy;
    std::unique_ptr<StageDeviceSet> stages;

    unsigned pp = 1;
    unsigned tp = 1;
    double spc = 0.0;
    bool chunked = false;

    ChannelAccum acc;
    double batchTime = 0.0;
    double capacityTime = 0.0;
    double lastAccount = 0.0;
    double endTime = 0.0;

    std::list<EventCohort> cohorts; // list keeps addresses stable
    std::deque<TimedRequest> arrived;
    std::vector<Active> readyPool; // admitted, waiting for a cohort
    std::vector<sim::WorkItem> cycleItems;
    std::vector<std::vector<sim::WorkItem>> seqScratch;
    std::uint64_t prefilling = 0; // admitted, chunks in flight

    /** Context + decode tokens of the prefilling requests (the
     *  queuedTokens share submitSequence holders hide). */
    double prefillingTokens = 0.0;

    /**
     * Requests whose prefill chunks are on the timelines, reachable
     * for evacuation (the submitSequence completion lambdas share
     * ownership). Erased as completions land.
     */
    std::vector<std::shared_ptr<Active>> prefillHolders;

    /**
     * Brown-out stretch applied to device charges at submission
     * (decode cycles, prefill chunks, the scalar prefill clock).
     * Exactly 1.0 is bit-transparent: multiplying a double by 1.0
     * is exact, so the fault-free engine is reproduced bit for bit.
     */
    double serviceRateScale = 1.0;

    /**
     * A killing evacuate() halted the engine: no admissions, no new
     * cohorts, stale prefill completions dropped. Cleared by
     * restoreService().
     */
    bool halted = false;

    /**
     * Evacuation generation. In-flight prefill completions capture
     * the epoch at submission and discard themselves when a killing
     * evacuate() has bumped it since — their request was already
     * rewound and failed over.
     */
    std::uint64_t epoch = 0;

    std::uint32_t nextCohortId = 0;
    std::uint64_t cycles = 0;
    bool capped = false;

    /** Scalar-prefill serialization clock (chargePrefill). */
    double prefillReady = 0.0;

    /** Not-yet-arrived requests, nondecreasing arrival order. */
    std::deque<TimedRequest> future;

    /** An arrival event is scheduled (at arrivalArmedAt). */
    bool arrivalArmed = false;
    double arrivalArmedAt = 0.0;

    /** Hoisted per-admission-scan tier in-flight flags. */
    std::set<unsigned> scanTiersInFlight;

    bool finalized = false;
};

ServingEngine::~ServingEngine() = default;

ServingEngine::ServingEngine(const ClusterConfig &cluster,
                             const LlmConfig &model,
                             std::vector<Request> requests,
                             const EngineOptions &options)
    : ServingEngine(cluster, model, immediateArrivals(requests), options)
{
}

ServingEngine::ServingEngine(const ClusterConfig &cluster,
                             const LlmConfig &model,
                             std::vector<TimedRequest> requests,
                             const EngineOptions &options)
    : cluster_(cluster), model_(model), options_(options)
{
    if (cluster_.plan.modules() != cluster_.nModules)
        fatal("parallel plan %s does not cover %u modules",
              cluster_.plan.toString().c_str(), cluster_.nModules);
    Bytes kv_capacity = cluster_.usableKvBytes(model_);
    if (kv_capacity == 0)
        fatal("model weights (%llu B) exceed system capacity",
              static_cast<unsigned long long>(model_.weightBytes()));
    allocator_ = makeAllocator(options_.allocator, kv_capacity,
                               model_.kvBytesPerToken(),
                               model_.contextWindow);
    prefixActive_ = options_.prefixCache.enabled;
    if (prefixActive_) {
        // The tree shares the allocator's chunks; only the paged
        // allocator has chunks to share, and only the event-driven
        // model has the Prefilling state warm admissions skip.
        if (options_.allocator != AllocatorKind::LazyChunk)
            fatal("prefix caching requires the LazyChunk allocator");
        if (options_.stepModel != StepModel::EventDriven)
            fatal("prefix caching requires the event-driven step "
                  "model");
        prefixCache_ = std::make_unique<PrefixCache>(
            static_cast<LazyChunkAllocator &>(*allocator_),
            options_.prefixCache);
    }
    module_ = std::make_unique<PimModuleModel>(cluster_.module);
    xpu_ = std::make_unique<XpuModel>(cluster_.xpu);
    sortByArrival(requests);
    // Pre-size the sample accumulators from the workload: one
    // latency and TTFT sample per request, and at most one gap per
    // decoded token after the first — the push_back paths then never
    // reallocate mid-run.
    Tokens total_decode = 0;
    for (const auto &r : requests)
        total_decode += r.request.decodeTokens;
    latencies_.reserve(requests.size());
    firstTokenLatencies_.reserve(requests.size());
    tokenGaps_.reserve(total_decode);
    result_.firstTokenLatency.reserve(requests.size());
    result_.completionSeconds.reserve(requests.size());
    for (auto &r : requests)
        pending_.push_back(r);

    // Request-class / tenant-budget activation. Both stay fully
    // inert — no extra bookkeeping on any path — when every request
    // carries the default class and no budgets are configured, so
    // the pre-tier engine is reproduced bit for bit.
    budgetsActive_ = !options_.tenantBudgets.empty();
    capacityTokens_ = static_cast<double>(allocator_->capacity()) /
                      static_cast<double>(model_.kvBytesPerToken());
    for (const auto &timed : pending_) {
        const RequestClass &cls = timed.request.cls;
        if (!cls.isDefault())
            classesActive_ = true;
        if (cls.tenant != 0)
            tenantsActive_ = true;
    }
    tenantsActive_ = tenantsActive_ || budgetsActive_;
    if (classesActive_) {
        std::map<unsigned, Tokens> tier_decode;
        for (const auto &timed : pending_) {
            const RequestClass &cls = timed.request.cls;
            TierState &ts = tiers_[cls.tier];
            ++ts.requests;
            tier_decode[cls.tier] += timed.request.decodeTokens;
            // First explicit per-class target wins; tiers without
            // one are judged against the policy-wide default.
            if (ts.target == 0.0 && cls.gapSloSeconds > 0.0)
                ts.target = cls.gapSloSeconds;
        }
        for (auto &kv : tiers_) {
            if (kv.second.target == 0.0)
                kv.second.target = options_.sched.sloTargetGapSeconds;
            // Pre-size the per-tier samples like the aggregate
            // vectors above, so the decode path never reallocates
            // mid-run.
            kv.second.ttfts.reserve(kv.second.requests);
            kv.second.gaps.reserve(tier_decode[kv.first]);
        }
    }
    if (budgetsActive_) {
        double total_share = 0.0;
        for (const TenantBudget &b : options_.tenantBudgets) {
            TenantState &ts = tenants_[b.tenant];
            ts.budgetTokens = b.share * capacityTokens_;
            total_share += b.share;
        }
        if (total_share > 1.0 + 1e-9)
            warn("tenant budget shares sum to %.3f > 1; guarantees "
                 "cannot all hold under saturation",
                 total_share);
    }
    if (tenantsActive_)
        for (const auto &timed : pending_)
            (void)tenantState(timed.request.cls.tenant);
}

ServingEngine::TenantState &
ServingEngine::tenantState(unsigned tenant)
{
    return tenants_[tenant];
}

bool
ServingEngine::budgetAdmits(unsigned tenant, double need,
                            bool allow_borrow)
{
    TenantState &ts = tenantState(tenant);
    if (ts.reservedTokens + need <= ts.budgetTokens)
        return true; // within the guarantee
    if (allow_borrow)
        return true; // borrowing from idle headroom (work conserving)
    ++ts.deferrals;
    ++result_.budgetDeferrals;
    return false;
}

void
ServingEngine::tenantReserve(const Request &request, double charge_tokens)
{
    if (!tenantsActive_)
        return;
    double tokens = charge_tokens >= 0.0
                        ? charge_tokens
                        : static_cast<double>(request.contextTokens +
                                              request.decodeTokens);
    // Remember an overridden (fractionally shared) charge so the
    // release refunds exactly what was reserved, no matter how the
    // entry's refcount moves in between.
    if (prefixActive_ && charge_tokens >= 0.0)
        prefixTenantCharge_[request.id] = charge_tokens;
    TenantState &ts = tenantState(request.cls.tenant);
    ts.reservedTokens += tokens;
    ++ts.admitted;
    if (capacityTokens_ > 0.0)
        ts.peakShare = std::max(ts.peakShare,
                                ts.reservedTokens / capacityTokens_);
}

void
ServingEngine::tenantRelease(const Request &request)
{
    if (!tenantsActive_)
        return;
    double tokens = static_cast<double>(request.contextTokens +
                                        request.decodeTokens);
    if (prefixActive_) {
        auto it = prefixTenantCharge_.find(request.id);
        if (it != prefixTenantCharge_.end()) {
            tokens = it->second;
            prefixTenantCharge_.erase(it);
        }
    }
    TenantState &ts = tenantState(request.cls.tenant);
    ts.reservedTokens -= tokens;
    if (ts.reservedTokens < 0.0)
        ts.reservedTokens = 0.0;
}

void
ServingEngine::integrateTenantShares(double dt)
{
    if (!tenantsActive_ || dt <= 0.0 || capacityTokens_ <= 0.0)
        return;
    for (auto &kv : tenants_)
        kv.second.shareSeconds +=
            dt * kv.second.reservedTokens / capacityTokens_;
}

std::set<unsigned>
ServingEngine::entitledTenantsWaiting(
    const std::deque<TimedRequest> &queue, double now) const
{
    std::set<unsigned> out;
    if (!budgetsActive_)
        return out;
    for (const auto &timed : queue) {
        // Mostly arrival-sorted, but preempted requests requeue at
        // the back with their original (past) arrival — keep
        // scanning past future traffic rather than stopping at it.
        if (timed.arrivalSeconds > now)
            continue;
        const RequestClass &cls = timed.request.cls;
        if (out.count(cls.tenant))
            continue;
        auto it = tenants_.find(cls.tenant);
        if (it == tenants_.end())
            continue;
        double need = static_cast<double>(timed.request.contextTokens +
                                          timed.request.decodeTokens);
        if (it->second.reservedTokens + need <= it->second.budgetTokens)
            out.insert(cls.tenant);
    }
    return out;
}

bool
ServingEngine::entitledElsewhere(const std::set<unsigned> &entitled,
                                 unsigned tenant)
{
    for (unsigned u : entitled)
        if (u != tenant)
            return true;
    return false;
}

ServingEngine::AdmitOutcome
ServingEngine::tryAdmitOne(const TimedRequest &timed, double &prefill_sec,
                           bool allow_borrow)
{
    prefill_sec = 0.0;
    const Request &front = timed.request;
    Tokens final_tokens = front.contextTokens + front.decodeTokens;
    Bytes need = model_.kvBytesPerToken() * final_tokens;
    if (need > allocator_->capacity() ||
        final_tokens > model_.contextWindow) {
        // Can never be served on this configuration.
        ++result_.rejectedRequests;
        return AdmitOutcome::Rejected;
    }
    // Prefix probe: the best reusable tree entry — retained session
    // history first, then the declared workload prefix. A declared
    // prefix nobody has cached yet makes this request its publisher:
    // it prefills cold, but its prefix chunks go into the tree for
    // everyone behind it. The hit is pinned immediately (consumer
    // reference) so the eviction pass below can never take the entry
    // this admission is counting on; every blocked exit hands the
    // reference back.
    std::uint64_t key = 0;
    std::uint64_t publish_key = 0;
    bool probed = false;
    Tokens custody = 0;
    if (prefixActive_) {
        Tokens share = 0;
        if (options_.prefixCache.sessionReuse &&
            front.session != kNoSession && front.turn > 0) {
            std::uint64_t skey =
                PrefixCache::sessionKey(front.session, front.turn - 1);
            share = prefixCache_->peek(skey);
            if (share > 0)
                key = skey;
            probed = true;
        }
        if (key == 0 && front.prefixHash != 0 &&
            front.prefixTokens > 0 &&
            front.prefixTokens <= front.contextTokens) {
            std::uint64_t pkey =
                PrefixCache::prefixKey(front.prefixHash);
            share = prefixCache_->peek(pkey);
            if (share > 0)
                key = pkey;
            else if (!prefixCache_->knows(pkey))
                publish_key = pkey;
            probed = true;
        }
        if (key != 0) {
            Tokens s =
                prefixCache_->acquire(key, now(), front.cls.tier);
            custody = std::min<Tokens>(s, front.contextTokens);
            if (custody == 0)
                key = 0; // entry vanished since the peek: go cold
        }
    }
    Tokens cached = custody;
    // Tenant budget: within the guarantee always admissible (memory
    // permitting); beyond it only while borrowing is allowed. A warm
    // hit charges its unique tokens in full but the shared prefix
    // only at 1 / consumers — the chunks serve all of them at once,
    // this admission's reference is already counted, and structural
    // refs (publisher hold, session-chained children) never dilute
    // the charge. The PR 5 work-conserving guarantee holds because
    // checks and reservations use the same reduced charge.
    double charge_tokens = static_cast<double>(final_tokens);
    if (cached > 0)
        charge_tokens =
            static_cast<double>(final_tokens - cached) +
            static_cast<double>(cached) /
                static_cast<double>(prefixCache_->consumersOf(key));
    if (budgetsActive_ &&
        !budgetAdmits(front.cls.tenant, charge_tokens, allow_borrow)) {
        if (key != 0)
            prefixCache_->releaseConsumer(key);
        return AdmitOutcome::BudgetBlocked;
    }
    // Headroom: only admit when the full decode trajectory fits
    // next to the current reservations (avoids preemption storms).
    // Warm admissions need headroom only for their unique share;
    // under pressure the cache sheds idle entries first — never the
    // pinned one, which is reference-held.
    Bytes need_unique = model_.kvBytesPerToken() * (final_tokens - cached);
    if (allocator_->reservedBytes() + need_unique >
        allocator_->capacity()) {
        if (!prefixActive_ || !prefixCache_->evictFor(need_unique)) {
            if (key != 0)
                prefixCache_->releaseConsumer(key);
            return AdmitOutcome::Blocked;
        }
    }
    // Commit: count the hit or miss, seed the tree as the prefix's
    // publisher if nobody cached it yet, then reserve the unique
    // share.
    bool publisher = false;
    if (key != 0)
        prefixCache_->noteHit();
    else if (probed)
        prefixCache_->noteMiss();
    if (publish_key != 0 &&
        prefixCache_->publish(publish_key, 0, 0, front.prefixTokens,
                              front.prefixTokens, now(),
                              front.cls.tier, /*hold=*/true,
                              /*ready=*/false)) {
        publisher = true;
        key = publish_key;
        custody = front.prefixTokens;
    }
    if (!allocator_->tryAdmit(front.id,
                              front.contextTokens - custody)) {
        if (key != 0) {
            if (publisher)
                prefixCache_->release(key);
            else
                prefixCache_->releaseConsumer(key);
        }
        return AdmitOutcome::Blocked;
    }
    // Scalar prefill is a serialized time charge, not chunk items:
    // the prefix KV is modelled present once the charge is taken, so
    // the entry opens at admission. The chunked path opens it from
    // the prefill-completion callback instead.
    if (publisher && options_.prefillChunkTokens == 0)
        prefixCache_->markReady(key, now());
    tenantReserve(front, cached > 0 ? charge_tokens : -1.0);
    // Reused tokens are counted whether or not prefill time is
    // charged, so sweeps with charging off still report the hit's
    // substance (savedPrefillSeconds stays zero there: no time
    // charge means nothing to save).
    Tokens warm = publisher ? 0 : custody;
    result_.prefixCachedTokens += warm;
    if (options_.chargePrefill || options_.prefillChunkTokens > 0) {
        if (warm > 0) {
            double cold = prefillSeconds(model_, front.contextTokens,
                                         cluster_.xpu,
                                         cluster_.prefillEngines());
            prefill_sec = prefillSecondsFrom(model_, warm,
                                             front.contextTokens,
                                             cluster_.xpu,
                                             cluster_.prefillEngines());
            result_.savedPrefillSeconds += cold - prefill_sec;
        } else {
            prefill_sec = prefillSeconds(model_, front.contextTokens,
                                         cluster_.xpu,
                                         cluster_.prefillEngines());
        }
        result_.prefillSeconds += prefill_sec;
    }
    if (prefixActive_) {
        pendingCacheKey_ = key;
        pendingCachedTokens_ = custody;
        pendingWarmTokens_ = publisher ? 0 : custody;
        pendingPublisher_ = publisher;
        prefixSampleOccupancy();
    }
    return AdmitOutcome::Admitted;
}

ServingEngine::Active
ServingEngine::takeAdmitted(const TimedRequest &timed)
{
    // Materialize the Active record for the admission tryAdmitOne
    // just committed, consuming the prefix-cache handoff it stashed
    // (all zero when caching is off — the record is then identical
    // to the pre-cache construction).
    Active a{timed.request, 0, timed.arrivalSeconds, -1.0};
    a.cachedTokens = pendingCachedTokens_;
    a.warmTokens = pendingWarmTokens_;
    a.cacheKey = pendingCacheKey_;
    a.cachePublisher = pendingPublisher_;
    pendingCachedTokens_ = 0;
    pendingWarmTokens_ = 0;
    pendingCacheKey_ = 0;
    pendingPublisher_ = false;
    return a;
}

Tokens
ServingEngine::prefixWarmTokens(const Request &r) const
{
    // Routing probe: how many of this request's context tokens this
    // replica's tree could serve right now. Read-only (no stats, no
    // LRU touch) so fleet probes never perturb the replica state.
    if (!prefixActive_)
        return 0;
    Tokens share = 0;
    if (options_.prefixCache.sessionReuse && r.session != kNoSession &&
        r.turn > 0)
        share = prefixCache_->peek(
            PrefixCache::sessionKey(r.session, r.turn - 1));
    if (share == 0 && r.prefixHash != 0 && r.prefixTokens > 0 &&
        r.prefixTokens <= r.contextTokens)
        share = prefixCache_->peek(PrefixCache::prefixKey(r.prefixHash));
    return std::min<Tokens>(share, r.contextTokens);
}

void
ServingEngine::releaseCacheRef(const Active &a)
{
    if (!prefixActive_ || a.cacheKey == 0)
        return;
    if (a.cachePublisher)
        prefixCache_->release(a.cacheKey);
    else
        prefixCache_->releaseConsumer(a.cacheKey);
}

void
ServingEngine::prefixSampleOccupancy()
{
    // Shared (tree custody) vs unique (per-request) split of the
    // allocator's reservation — allocated == shared + unique holds
    // structurally because the tree reserves its chunks through the
    // same allocator.
    Bytes shared = prefixCache_->heldBytes();
    Bytes unique = allocator_->reservedBytes() - shared;
    prefixSharedPeak_ = std::max(prefixSharedPeak_, shared);
    prefixUniquePeak_ = std::max(prefixUniquePeak_, unique);
}

bool
ServingEngine::advanceMember(Active &a, double completion_clock,
                             std::deque<TimedRequest> &requeue)
{
    // The allocator holds this request's KV minus whatever the prefix
    // cache holds on its behalf (cachedTokens == 0 when caching is
    // off, making the subtraction a no-op).
    Tokens total = a.request.contextTokens + a.generated + 1;
    if (!allocator_->grow(a.request.id, total - a.cachedTokens)) {
        // Out of memory: preempt (vLLM-style recompute); the
        // request re-queues with its original arrival time.
        allocator_->release(a.request.id);
        tenantRelease(a.request);
        releaseCacheRef(a);
        ++result_.preemptions;
        requeue.push_back({a.request, a.arrival});
        return false;
    }
    ++a.generated;
    ++result_.generatedTokens;
    if (a.generated == 1) {
        double ttft = completion_clock - a.arrival;
        // First admission wins: a preempted-and-recomputed request
        // keeps the TTFT of its first emitted token.
        if (result_.firstTokenLatency.emplace(a.request.id, ttft).second) {
            firstTokenLatencies_.push_back(ttft);
            if (classesActive_)
                tiers_[a.request.cls.tier].ttfts.push_back(ttft);
        }
    } else if (a.lastTokenAt >= 0.0) {
        double gap = completion_clock - a.lastTokenAt;
        tokenGaps_.push_back(gap);
        if (gapWindow_)
            gapWindow_->add(gap);
        if (classesActive_) {
            TierState &ts = tiers_[a.request.cls.tier];
            ts.gaps.push_back(gap);
            if (ts.window)
                ts.window->add(gap);
        }
    }
    a.lastTokenAt = completion_clock;
    if (a.generated >= a.request.decodeTokens) {
        if (prefixActive_ && options_.prefixCache.sessionReuse &&
            a.request.session != kNoSession &&
            sessions_.count(a.request.id)) {
            // A declared successor exists: hand the full KV (context
            // plus everything generated) to the tree under this
            // turn's session key so turn k+1 prefills only its delta.
            // The consumer chunks are released and the cache
            // re-admits the same count — net-zero occupancy — and a
            // warm turn chains onto its own parent entry.
            Tokens total_kv = a.request.contextTokens + a.generated;
            Tokens own = total_kv - a.cachedTokens;
            Tokens parent_share =
                a.cacheKey != 0
                    ? std::min<Tokens>(prefixCache_->peek(a.cacheKey),
                                       total_kv)
                    : 0;
            allocator_->release(a.request.id);
            prefixCache_->publish(
                PrefixCache::sessionKey(a.request.session,
                                        a.request.turn),
                a.cacheKey, parent_share, total_kv, own,
                completion_clock, a.request.cls.tier, /*hold=*/false,
                /*ready=*/true);
        } else {
            allocator_->release(a.request.id);
        }
        releaseCacheRef(a);
        tenantRelease(a.request);
        ++result_.completedRequests;
        if (classesActive_)
            ++tiers_[a.request.cls.tier].completed;
        latencies_.push_back(completion_clock - a.arrival);
        result_.completionSeconds.emplace(a.request.id,
                                          completion_clock);
        if (sessionsActive_)
            releaseNextTurn(a.request.id, completion_clock);
        return false;
    }
    return true;
}

void
ServingEngine::admit()
{
    if (!budgetsActive_) {
        while (!pending_.empty()) {
            const TimedRequest &timed = pending_.front();
            if (timed.arrivalSeconds > result_.simulatedSeconds)
                break; // not yet arrived (open loop)
            double prefill_sec = 0.0;
            AdmitOutcome outcome = tryAdmitOne(timed, prefill_sec);
            if (outcome == AdmitOutcome::Blocked)
                break;
            if (outcome == AdmitOutcome::Admitted) {
                result_.simulatedSeconds += prefill_sec;
                integrateTenantShares(prefill_sec);
                active_.push_back(
                    {timed.request, 0, timed.arrivalSeconds});
            }
            pending_.pop_front();
        }
        return;
    }
    // Budget-aware admission scans past over-budget tenants so one
    // saturating tenant cannot head-of-line block the others; a
    // memory block still halts the scan (releases are what clear
    // it).
    std::set<unsigned> entitled =
        entitledTenantsWaiting(pending_, result_.simulatedSeconds);
    for (std::size_t i = 0; i < pending_.size();) {
        const TimedRequest &timed = pending_[i];
        if (timed.arrivalSeconds > result_.simulatedSeconds) {
            // Mostly arrival-sorted, but preempted requests requeue
            // at the back with past arrivals — skip future traffic
            // instead of stopping at it.
            ++i;
            continue;
        }
        bool allow_borrow =
            !entitledElsewhere(entitled, timed.request.cls.tenant);
        double prefill_sec = 0.0;
        AdmitOutcome outcome =
            tryAdmitOne(timed, prefill_sec, allow_borrow);
        if (outcome == AdmitOutcome::Blocked)
            break;
        if (outcome == AdmitOutcome::BudgetBlocked) {
            ++i;
            continue;
        }
        if (outcome == AdmitOutcome::Admitted) {
            result_.simulatedSeconds += prefill_sec;
            integrateTenantShares(prefill_sec);
            active_.push_back({timed.request, 0, timed.arrivalSeconds});
        }
        pending_.erase(pending_.begin() +
                       static_cast<std::ptrdiff_t>(i));
    }
}

ServingEngine::CyclePlan
ServingEngine::planCohortCycle(const Active *begin, const Active *end)
{
    const unsigned tp = cluster_.plan.tp;
    const unsigned pp = cluster_.plan.pp;
    const std::uint32_t batch =
        static_cast<std::uint32_t>(end - begin);
    // Uneven layer split: the last stage absorbs the remainder and
    // is the slowest (stageLayers), so it sets the analytic beat.
    const unsigned last_layers = stageLayers(model_.nLayers, pp, pp - 1);
    const unsigned kvh = model_.kvHeads();
    const unsigned jobs_per_req = std::max(1u, ceilDiv(kvh, tp));
    // When the TP group outnumbers the KV heads, the modules sharing
    // a head split its token range (sequence parallelism); the extra
    // partial reduction folds into the EPU path.
    const unsigned seq_split = tp > kvh ? tp / kvh : 1;

    std::vector<AttentionJob> &jobs = jobsScratch_;
    jobs.clear();
    jobs.reserve(batch * jobs_per_req);
    for (const Active *it = begin; it != end; ++it) {
        const Active &a = *it;
        Tokens t = a.request.contextTokens + a.generated;
        Tokens t_mod = seq_split > 1 ? ceilDiv<Tokens>(t, seq_split) : t;
        for (unsigned h = 0; h < jobs_per_req; ++h)
            jobs.push_back({a.request.id, h, t_mod});
    }

    PhaseResult att = module_->attentionLayer(jobs, model_);
    double fc_sec;
    PhaseResult fc;
    if (cluster_.kind == SystemKind::PimOnly) {
        fc = module_->fcLayer(batch, model_, tp);
        fc_sec = fc.seconds;
    } else {
        double layer_params = static_cast<double>(model_.paramCount()) /
                              model_.nLayers;
        double flops = 2.0 * layer_params / tp *
                       static_cast<double>(batch);
        Bytes w = static_cast<Bytes>(
            static_cast<double>(model_.weightBytes()) /
            model_.nLayers / tp);
        fc_sec = xpu_->gemmSeconds(flops, w, batch);
        // Simple NPU energy: 0.4 pJ/FLOP.
        fc.energy.elseE = flops * 0.4;
    }

    double sync = 2.0 * allReduceSeconds(
        static_cast<Bytes>(batch) * model_.dModel * 2, tp,
        cluster_.linkBandwidth, cluster_.linkAlpha);

    double layer_sec = cluster_.kind == SystemKind::PimOnly
        ? att.seconds + fc_sec + sync
        : std::max(att.seconds, fc_sec) + sync;

    CyclePlan plan;
    plan.layerSeconds = layer_sec;
    plan.fcLayerSeconds =
        cluster_.kind == SystemKind::XpuPim ? fc_sec : 0.0;
    plan.maxStageSeconds = last_layers * layer_sec;

    // Per full cycle the cohort crosses all pp stages.
    double layers_total = stageLayersTotal(model_.nLayers, pp);
    plan.layersTotal = layers_total;
    plan.attSeconds = att.seconds * layers_total;
    plan.fcSeconds = fc_sec * layers_total;
    plan.busyChannelCycles =
        (att.busyChannelCycles + fc.busyChannelCycles) * layers_total *
        tp;
    plan.attEnergy = att.energy.scaled(layers_total * tp);
    plan.fcEnergy = fc.energy.scaled(layers_total * tp);
    return plan;
}

void
ServingEngine::accountCycle(const CyclePlan &plan, double span_cycles,
                            ChannelAccum &acc)
{
    acc.busyCycles += plan.busyChannelCycles;
    acc.spanCycles += span_cycles;

    double spc = cluster_.module.timing.secondsPerCycle();
    double busy_span_cycles =
        (plan.attSeconds + (cluster_.kind == SystemKind::PimOnly
                                ? plan.fcSeconds
                                : 0.0)) /
        spc * cluster_.module.nChannels * cluster_.plan.tp;
    double idle = span_cycles - busy_span_cycles;
    EnergyBreakdown att_energy = plan.attEnergy;
    EnergyBreakdown fc_energy = plan.fcEnergy;
    if (idle > 0) {
        // Attribute idle background proportionally to phase time.
        double tot = plan.attSeconds + plan.fcSeconds;
        double att_share = tot > 0 ? plan.attSeconds / tot : 1.0;
        EnergyBreakdown bg = backgroundEnergy(
            static_cast<Cycle>(idle), 1, EnergyParams{});
        att_energy += bg.scaled(att_share);
        fc_energy += bg.scaled(1.0 - att_share);
    }

    result_.attentionSeconds += plan.attSeconds;
    result_.fcSeconds += plan.fcSeconds;
    result_.attentionEnergy += att_energy;
    result_.fcEnergy += fc_energy;
}

double
ServingEngine::stepSeconds(ChannelAccum &acc)
{
    const unsigned pp = cluster_.plan.pp;
    const std::uint32_t batch =
        static_cast<std::uint32_t>(active_.size());

    MicroBatching mb = planMicroBatches(batch, pp);
    const std::uint32_t mbs = mb.microBatchSize;

    double max_stage_sec = 0.0;
    double step_att_sec = 0.0, step_fc_sec = 0.0;
    double step_busy = 0.0;
    EnergyBreakdown att_energy, fc_energy;

    for (std::uint32_t m = 0; m < mb.count; ++m) {
        std::uint32_t lo = m * mbs;
        std::uint32_t hi = std::min<std::uint32_t>(lo + mbs, batch);
        if (lo >= hi)
            continue;
        CyclePlan plan = planCohortCycle(active_.data() + lo,
                                         active_.data() + hi);
        max_stage_sec = std::max(max_stage_sec, plan.maxStageSeconds);
        step_att_sec += plan.attSeconds;
        step_fc_sec += plan.fcSeconds;
        step_busy += plan.busyChannelCycles;
        att_energy += plan.attEnergy;
        fc_energy += plan.fcEnergy;
    }

    double step_sec = mb.stageBeats * max_stage_sec;

    // Cluster-wide channel-cycle span and residual idle background.
    double spc = cluster_.module.timing.secondsPerCycle();
    double span = step_sec / spc * cluster_.module.nChannels *
                  cluster_.nModules;
    acc.busyCycles += step_busy;
    acc.spanCycles += span;

    double busy_span_cycles =
        (step_att_sec + (cluster_.kind == SystemKind::PimOnly
                             ? step_fc_sec
                             : 0.0)) /
        spc * cluster_.module.nChannels * cluster_.plan.tp;
    double idle = span - busy_span_cycles;
    if (idle > 0) {
        // Attribute idle background proportionally to phase time.
        double tot = step_att_sec + step_fc_sec;
        double att_share = tot > 0 ? step_att_sec / tot : 1.0;
        EnergyBreakdown bg = backgroundEnergy(
            static_cast<Cycle>(idle), 1,
            EnergyParams{});
        att_energy += bg.scaled(att_share);
        fc_energy += bg.scaled(1.0 - att_share);
    }

    result_.attentionSeconds += step_att_sec;
    result_.fcSeconds += step_fc_sec;
    result_.attentionEnergy += att_energy;
    result_.fcEnergy += fc_energy;
    return step_sec;
}

EngineResult
ServingEngine::run()
{
    return options_.stepModel == StepModel::Analytic ? runAnalytic()
                                                     : runEventDriven();
}

EngineResult
ServingEngine::runAnalytic()
{
    ChannelAccum acc;
    double batch_time = 0.0;   // integral of batch over time
    double capacity_time = 0.0;

    admit();
    std::uint64_t steps = 0;
    while ((!active_.empty() || !pending_.empty()) &&
           steps < options_.maxSteps) {
        ++steps;
        if (active_.empty()) {
            if (pending_.front().arrivalSeconds >
                result_.simulatedSeconds) {
                // Open loop: idle until the next arrival.
                integrateTenantShares(pending_.front().arrivalSeconds -
                                      result_.simulatedSeconds);
                result_.simulatedSeconds =
                    pending_.front().arrivalSeconds;
                admit();
                continue;
            }
            // Nothing admitted although requests pend: the headroom
            // check refuses them only when memory is held, which it
            // cannot be with an empty active set -> reject front.
            ++result_.rejectedRequests;
            pending_.pop_front();
            admit();
            continue;
        }

        double sec = stepSeconds(acc);
        result_.simulatedSeconds += sec;
        batch_time += sec * static_cast<double>(active_.size());
        capacity_time += sec * allocator_->capacityUtilization();
        integrateTenantShares(sec);

        // Advance every active request by one token, compacting the
        // survivors in place (same order as the former copy into a
        // fresh vector, without the per-step allocation).
        std::size_t keep = 0;
        for (std::size_t i = 0; i < active_.size(); ++i) {
            if (advanceMember(active_[i], result_.simulatedSeconds,
                              pending_)) {
                if (keep != i)
                    active_[keep] = std::move(active_[i]);
                ++keep;
            }
        }
        active_.resize(keep);
        admit();
    }
    if (steps >= options_.maxSteps)
        warn("engine stopped at the step cap (%llu)",
             static_cast<unsigned long long>(options_.maxSteps));

    finalizeResult(acc, batch_time, capacity_time);
    return result_;
}

void
ServingEngine::evAccountTo(double t)
{
    EventRun &ev = *ev_;
    if (t <= ev.lastAccount)
        return;
    double dt = t - ev.lastAccount;
    // Effective batch counts decoding requests only; pooled requests
    // hold memory but are not batched on any device.
    ev.batchTime += dt * static_cast<double>(evInFlightCount());
    ev.capacityTime += dt * allocator_->capacityUtilization();
    integrateTenantShares(dt);
    ev.lastAccount = t;
    ev.endTime = std::max(ev.endTime, t);
}

std::size_t
ServingEngine::evInFlightCount() const
{
    std::size_t n = 0;
    for (const auto &c : ev_->cohorts)
        n += c.members.size();
    return n;
}

void
ServingEngine::evSortReadyPoolByTier()
{
    // Tier-segregated refills: order the pool by tier (stable, so
    // survivors keep precedence inside a tier) and the next take
    // forms the most tier-pure cohort the pool allows — higher
    // tiers decode in cohorts the tier-aware arbiters can favor.
    if (!classesActive_)
        return;
    std::stable_sort(ev_->readyPool.begin(), ev_->readyPool.end(),
                     [](const Active &a, const Active &b) {
                         return a.request.cls.tier < b.request.cls.tier;
                     });
}

double
ServingEngine::evRecentGapP95() const
{
    // SLO feedback: nearest-rank p95 over the most recent window of
    // decode token gaps — the signal the SloAdmission gate steers
    // on, streamed in O(log W) per gap by the windowed quantile.
    return gapWindow_ ? gapWindow_->value() : 0.0;
}

std::size_t
ServingEngine::evGapSamples() const
{
    return gapWindow_ ? gapWindow_->size() : 0;
}

void
ServingEngine::evRefreshTiersInFlight()
{
    ev_->scanTiersInFlight.clear();
    for (const auto &c : ev_->cohorts)
        for (const auto &m : c.members)
            ev_->scanTiersInFlight.insert(m.request.cls.tier);
}

bool
ServingEngine::evClassGateDefers(const RequestClass &cls)
{
    // A prefill of tier T defers while any tier T' <= T (equal or
    // higher priority) exceeds its own target on its own window, so
    // admitting lower-priority work can never break a higher tier's
    // SLO, while a high-priority prefill is not held hostage by a
    // struggling lower tier. A tier's gate may only bind while its
    // own gaps can still be produced (decode in flight), or a stale
    // window would deadlock that tier's admissions.
    EventRun &ev = *ev_;
    if (!ev.policy->needsGapSignal())
        return !ev.policy->admitPrefill(0.0, 0, evInFlightCount() > 0);
    // Budgets configured but every request default-class: there
    // are no per-tier windows, so the gate reads the global one
    // exactly as the single-class path does.
    if (tiers_.empty())
        return !ev.policy->admitPrefill(evRecentGapP95(), evGapSamples(),
                                        evInFlightCount() > 0);
    for (auto &kv : tiers_) {
        if (kv.first > cls.tier)
            break; // ascending map: only tiers <= T guard T
        const TierState &ts = kv.second;
        if (!ts.window)
            continue;
        if (!ev.policy->admitPrefillAt(
                ts.window->value(), ts.window->size(),
                ev.scanTiersInFlight.count(kv.first) > 0, ts.target))
            return true;
    }
    return false;
}

void
ServingEngine::evStartPrefill(Active a, double now)
{
    // Chunked prefill: the admitted request enters a Prefilling
    // state (memory held, not decoding) while its chunks traverse
    // the per-stage xPU timelines; it joins the decode ready pool at
    // the last chunk's last-stage completion. Per-chunk seconds
    // apportion the scalar charge tryAdmitOne already accounted, so
    // chunked and scalar prefill cost the same total device time.
    EventRun &ev = *ev_;
    // A warm prefix skips its cached share: the chunk plan covers
    // only [warmTokens, context), apportioning the reduced scalar
    // charge. warmTokens == 0 takes the cold plan bit for bit.
    auto chunk_secs =
        (prefixActive_ && a.warmTokens > 0)
            ? prefillChunkSecondsFrom(model_, a.warmTokens,
                                      a.request.contextTokens,
                                      options_.prefillChunkTokens,
                                      cluster_.xpu,
                                      cluster_.prefillEngines())
            : prefillChunkSeconds(model_, a.request.contextTokens,
                                  options_.prefillChunkTokens,
                                  cluster_.xpu,
                                  cluster_.prefillEngines());
    if (chunk_secs.empty()) {
        // Fully cached context: nothing left to prefill. A publisher
        // with an empty plan (zero-context request) opens its entry
        // immediately.
        if (prefixActive_ && a.cachePublisher && a.cacheKey != 0)
            prefixCache_->markReady(a.cacheKey, now);
        ev.readyPool.push_back(std::move(a));
        return;
    }
    // prefillSeconds() spreads the work over prefillEngines();
    // a stage owns tp of them for stageLayers/nLayers of the
    // model, so scale per-stage occupancy to keep each request's
    // per-stage total at scalar * engines / (tp * pp-equivalent).
    double engine_scale =
        static_cast<double>(cluster_.prefillEngines()) / ev.tp;
    double layers_total = stageLayersTotal(model_.nLayers, ev.pp);
    ev.seqScratch.resize(chunk_secs.size());
    for (std::size_t k = 0; k < chunk_secs.size(); ++k) {
        std::vector<sim::WorkItem> &row = ev.seqScratch[k];
        row.assign(ev.pp, sim::WorkItem{});
        for (unsigned s = 0; s < ev.pp; ++s) {
            row[s].kind = sim::WorkItem::Kind::PrefillChunk;
            row[s].request = a.request.id;
            row[s].chunk = static_cast<std::uint32_t>(k);
            row[s].tier = a.request.cls.tier;
            row[s].seconds = chunk_secs[k] * engine_scale *
                             stageLayers(model_.nLayers, ev.pp, s) /
                             layers_total * ev.serviceRateScale;
        }
    }
    ++ev.prefilling;
    double holder_tokens = static_cast<double>(
        a.request.contextTokens + a.request.decodeTokens);
    ev.prefillingTokens += holder_tokens;
    auto holder = std::make_shared<Active>(std::move(a));
    ev.prefillHolders.push_back(holder);
    std::uint64_t epoch = ev.epoch;
    ev.stages->pipeline().submitSequence(
        ev.queue, ev.seqScratch, now,
        [this, holder, holder_tokens, epoch](double t) {
            EventRun &run = *ev_;
            if (epoch != run.epoch)
                return; // evacuated mid-prefill; already failed over
            run.prefillHolders.erase(
                std::find(run.prefillHolders.begin(),
                          run.prefillHolders.end(), holder));
            --run.prefilling;
            run.prefillingTokens -= holder_tokens;
            evAccountTo(t);
            // Publisher's prefix KV is now materialized: open the
            // tree entry for the requests queued behind it.
            if (prefixActive_ && holder->cachePublisher &&
                holder->cacheKey != 0)
                prefixCache_->markReady(holder->cacheKey, t);
            run.readyPool.push_back(std::move(*holder));
            evFormNewCohorts(t);
        });
}

void
ServingEngine::evAdmitArrivals(double now)
{
    // Admission under the same per-request rules as the analytic
    // path (tryAdmitOne); admitted requests reach the ready pool
    // once decode-ready (immediately, or after prefill chunks). The
    // policy's admission gate runs first: a deferred prefill blocks
    // the (FIFO) admission queue until the SLO signal recovers,
    // re-checked at every cycle completion.
    EventRun &ev = *ev_;
    if (ev.halted)
        return; // crashed replica: admissions wait for the sweep
    if (!classesActive_ && !budgetsActive_) {
        // Single-class path: plain FIFO admission, bit-identical
        // to the pre-tier engine.
        while (!ev.arrived.empty()) {
            if (ev.chunked &&
                ev.arrived.front().request.contextTokens > 0 &&
                !ev.policy->admitPrefill(
                    ev.policy->needsGapSignal() ? evRecentGapP95() : 0.0,
                    evGapSamples(), evInFlightCount() > 0)) {
                ++result_.sloDeferrals;
                break;
            }
            TimedRequest timed = ev.arrived.front();
            double prefill_sec = 0.0;
            AdmitOutcome outcome = tryAdmitOne(timed, prefill_sec);
            if (outcome == AdmitOutcome::Blocked)
                break;
            ev.arrived.pop_front();
            if (outcome != AdmitOutcome::Admitted)
                continue;
            Active a = takeAdmitted(timed);
            if (ev.chunked) {
                evStartPrefill(std::move(a), now);
            } else {
                ev.prefillReady = std::max(ev.prefillReady, now) +
                                  prefill_sec * ev.serviceRateScale;
                ev.readyPool.push_back(std::move(a));
            }
        }
        return;
    }
    // Class/tenant-aware admission: the queue is scanned rather
    // than strictly FIFO, so a gated tier or an over-budget
    // tenant cannot head-of-line block the other classes. FIFO
    // order is kept inside each (class, tenant) population; a
    // memory block still halts the scan (only releases clear
    // it).
    if (classesActive_ && ev.policy->needsGapSignal())
        evRefreshTiersInFlight();
    std::set<unsigned> entitled = entitledTenantsWaiting(ev.arrived, now);
    bool gate_deferred = false;
    for (std::size_t i = 0; i < ev.arrived.size();) {
        const TimedRequest &timed = ev.arrived[i];
        if (ev.chunked && timed.request.contextTokens > 0 &&
            evClassGateDefers(timed.request.cls)) {
            // Count at most one deferral per admission check, as
            // the single-class path does, so the metric stays
            // comparable across the two paths.
            if (!gate_deferred) {
                ++result_.sloDeferrals;
                gate_deferred = true;
            }
            ++i;
            continue;
        }
        bool allow_borrow =
            !budgetsActive_ ||
            !entitledElsewhere(entitled, timed.request.cls.tenant);
        double prefill_sec = 0.0;
        AdmitOutcome outcome =
            tryAdmitOne(timed, prefill_sec, allow_borrow);
        if (outcome == AdmitOutcome::Blocked)
            break;
        if (outcome == AdmitOutcome::BudgetBlocked) {
            ++i;
            continue;
        }
        TimedRequest taken = timed;
        ev.arrived.erase(ev.arrived.begin() +
                         static_cast<std::ptrdiff_t>(i));
        if (outcome != AdmitOutcome::Admitted)
            continue; // Rejected: already counted
        Active a = takeAdmitted(taken);
        if (ev.chunked) {
            evStartPrefill(std::move(a), now);
        } else {
            ev.prefillReady = std::max(ev.prefillReady, now) +
                              prefill_sec * ev.serviceRateScale;
            ev.readyPool.push_back(std::move(a));
        }
    }
}

void
ServingEngine::evStartCycle(EventCohort &c, double ready)
{
    EventRun &ev = *ev_;
    CyclePlan plan = planCohortCycle(
        c.members.data(), c.members.data() + c.members.size());
    // Brown-out: stretch the cycle's device time (and its channel
    // span, so MAC utilization sees the slowdown) without changing
    // the intrinsic work. scale == 1.0 multiplies exactly.
    double layer_sec = plan.layerSeconds * ev.serviceRateScale;
    double fc_layer_sec = plan.fcLayerSeconds * ev.serviceRateScale;
    double span_cycles = layer_sec * plan.layersTotal / ev.spc *
                         cluster_.module.nChannels * ev.tp;
    accountCycle(plan, span_cycles, ev.acc);

    // A cohort's decode items carry the best (lowest) tier of
    // its members, so a mixed cohort is arbitrated at the
    // priority of its most latency-sensitive member.
    std::uint32_t cohort_tier = 0;
    if (classesActive_ && !c.members.empty()) {
        cohort_tier = c.members.front().request.cls.tier;
        for (const Active &m : c.members)
            cohort_tier = std::min(cohort_tier, m.request.cls.tier);
    }

    ev.cycleItems.assign(ev.pp, sim::WorkItem{});
    for (unsigned s = 0; s < ev.pp; ++s) {
        unsigned layers = stageLayers(model_.nLayers, ev.pp, s);
        ev.cycleItems[s].cohort = c.id;
        ev.cycleItems[s].cycle = c.cycle;
        ev.cycleItems[s].tier = cohort_tier;
        ev.cycleItems[s].seconds = layer_sec * layers;
        ev.cycleItems[s].fcSeconds = fc_layer_sec * layers;
    }
    ++c.cycle;
    EventCohort *cohort = &c;
    ev.stages->pipeline().submitChain(
        ev.queue, ev.cycleItems, ready, [this, cohort](double t) {
            evOnCycleComplete(*cohort, t);
        });
}

void
ServingEngine::evOnCycleComplete(EventCohort &c, double t)
{
    EventRun &ev = *ev_;
    evAccountTo(t);

    // Advance every cohort member by one token, compacting the
    // survivors in place (order preserved, no allocation).
    std::size_t keep = 0;
    for (std::size_t i = 0; i < c.members.size(); ++i) {
        if (advanceMember(c.members[i], t, ev.arrived)) {
            if (keep != i)
                c.members[keep] = std::move(c.members[i]);
            ++keep;
        }
    }
    c.members.resize(keep);

    ++ev.cycles;
    if (ev.cycles >= options_.maxSteps)
        ev.capped = true;

    // Continuous batching with balanced cohorts: survivors and
    // admissible pending requests meet in the ready pool
    // (survivors first, so mid-decode requests keep priority),
    // and the cohort refills up to a fair share of the active
    // set. The cap keeps cohorts balanced the way the analytic
    // model's per-step re-split does, while leaving the other
    // cohorts' in-flight cycles untouched.
    if (!ev.capped) {
        evAdmitArrivals(t);
        ev.readyPool.insert(ev.readyPool.begin(),
                            std::make_move_iterator(c.members.begin()),
                            std::make_move_iterator(c.members.end()));
        c.members.clear();
        evSortReadyPoolByTier();
        std::size_t others = evInFlightCount();
        std::size_t total = others + ev.readyPool.size();
        std::size_t target =
            std::max<std::size_t>(1, ceilDiv<std::size_t>(total, ev.pp));
        std::size_t take =
            std::min<std::size_t>(target, ev.readyPool.size());
        if (take > 0) {
            c.members.assign(
                std::make_move_iterator(ev.readyPool.begin()),
                std::make_move_iterator(ev.readyPool.begin() + take));
            ev.readyPool.erase(ev.readyPool.begin(),
                               ev.readyPool.begin() + take);
        }
    }
    if (!c.members.empty() && !ev.capped) {
        evStartCycle(c, std::max(t, ev.prefillReady));
    } else {
        EventCohort *self = &c;
        ev.cohorts.remove_if(
            [self](const EventCohort &x) { return &x == self; });
    }
    evFormNewCohorts(t);
}

void
ServingEngine::evFormNewCohorts(double t)
{
    EventRun &ev = *ev_;
    for (;;) {
        if (ev.capped || ev.halted)
            return;
        if (ev.cohorts.size() >= ev.pp)
            return; // pipeline slots full; rebalance at cycle ends
        evAdmitArrivals(t);
        if (ev.readyPool.empty()) {
            // Deadlock guard: nothing in flight (decoding or
            // prefilling), nothing admissible, and no event can
            // change that -> the front request can never be
            // served; reject it.
            if (ev.cohorts.empty() && ev.prefilling == 0 &&
                ev.queue.empty() && !ev.arrived.empty()) {
                ++result_.rejectedRequests;
                ev.arrived.pop_front();
                continue;
            }
            return;
        }
        evSortReadyPoolByTier();
        std::size_t total = evInFlightCount() + ev.readyPool.size();
        std::size_t target =
            std::max<std::size_t>(1, ceilDiv<std::size_t>(total, ev.pp));
        std::size_t take =
            std::min<std::size_t>(target, ev.readyPool.size());
        ev.cohorts.push_back(EventCohort{
            ev.nextCohortId++, 0,
            {std::make_move_iterator(ev.readyPool.begin()),
             std::make_move_iterator(ev.readyPool.begin() + take)}});
        ev.readyPool.erase(ev.readyPool.begin(),
                           ev.readyPool.begin() + take);
        evStartCycle(ev.cohorts.back(), std::max(t, ev.prefillReady));
    }
}

void
ServingEngine::evOnArrival(double t)
{
    EventRun &ev = *ev_;
    ev.arrivalArmed = false;
    evAccountTo(t);
    while (!ev.future.empty() && ev.future.front().arrivalSeconds <= t) {
        ev.arrived.push_back(ev.future.front());
        ev.future.pop_front();
    }
    evArmArrivalEvent();
    evFormNewCohorts(t);
}

void
ServingEngine::evArmArrivalEvent()
{
    // Only the head arrival is scheduled — each arrival event chains
    // the next one, so the event heap stays O(1) in the trace
    // length. injectArrivals re-arms when it delivers an arrival
    // earlier than the armed one.
    EventRun &ev = *ev_;
    if (ev.future.empty())
        return;
    double at = ev.future.front().arrivalSeconds;
    if (ev.arrivalArmed && ev.arrivalArmedAt <= at)
        return;
    ev.queue.schedule(at, [this](double t) { evOnArrival(t); });
    ev.arrivalArmed = true;
    ev.arrivalArmedAt = at;
}

void
ServingEngine::prepare()
{
    if (options_.stepModel != StepModel::EventDriven)
        fatal("ServingEngine::prepare(): the resumable interface "
              "requires the event-driven step model");
    if (ev_)
        fatal("ServingEngine::prepare() called twice");
    ev_ = std::make_unique<EventRun>();
    EventRun &ev = *ev_;
    ev.pp = cluster_.plan.pp;
    ev.tp = cluster_.plan.tp;
    ev.spc = cluster_.module.timing.secondsPerCycle();
    ev.chunked = options_.prefillChunkTokens > 0;

    // Co-scheduling policy: arbitration of the xPU timelines (FIFO
    // policies keep the plain reservation arithmetic) plus the
    // SLO admission gate consulted by evAdmitArrivals.
    ev.policy = makeSchedPolicy(options_.sched);
    // Policies steering on the gap signal read a streaming windowed
    // p95 (fed by advanceMember) instead of copying and sorting the
    // window every decode cycle. With request classes attached the
    // gate is per tier: each tier gets its own window, judged
    // against its own target (advanceMember routes gaps by tier).
    if (ev.policy->needsGapSignal() && options_.sched.sloWindow > 0) {
        if (classesActive_) {
            for (auto &kv : tiers_)
                kv.second.window = std::make_unique<WindowedQuantile>(
                    options_.sched.sloWindow, 95.0);
        } else {
            gapWindow_ = std::make_unique<WindowedQuantile>(
                options_.sched.sloWindow, 95.0);
        }
    }
    // Every stage carries an xPU timeline: in XpuPim mode it serves
    // decode FC shares and prefill chunks; in PimOnly mode only the
    // prefill chunks (the PNM compute engines) land there.
    ev.stages = std::make_unique<StageDeviceSet>(
        ev.pp, *module_, xpu_.get(),
        ev.policy->reordersXpu() ? ev.policy.get() : nullptr);
    ev.readyPool.reserve(pending_.size());

    // Open-loop arrivals become events; time-zero requests are
    // available immediately.
    while (!pending_.empty()) {
        TimedRequest timed = pending_.front();
        pending_.pop_front();
        if (timed.arrivalSeconds <= 0.0)
            ev.arrived.push_back(timed);
        else
            ev.future.push_back(timed); // ctor sorted by arrival
    }
    evArmArrivalEvent();
    evFormNewCohorts(0.0);
}

void
ServingEngine::advanceTo(double horizon)
{
    if (!ev_)
        fatal("ServingEngine::advanceTo() before prepare()");
    ev_->queue.runUntil(horizon);
}

bool
ServingEngine::drained() const
{
    return !ev_ || ev_->queue.empty();
}

double
ServingEngine::nextEventTime() const
{
    return drained() ? std::numeric_limits<double>::infinity()
                     : ev_->queue.nextTime();
}

void
ServingEngine::declareWorkload(const std::vector<TimedRequest> &trace)
{
    if (ev_)
        fatal("ServingEngine::declareWorkload() after prepare()");
    requireSortedByArrival(trace, "ServingEngine::declareWorkload");
    // The constructor's activation scan, over a trace whose requests
    // arrive later through injectArrivals: flip the class/tenant
    // machinery on and fix per-tier SLO targets before prepare()
    // allocates the per-tier windows. Per-tier request counts stay
    // zero — registerInjected counts what this engine actually
    // receives.
    for (const auto &timed : trace) {
        const RequestClass &cls = timed.request.cls;
        if (!cls.isDefault())
            classesActive_ = true;
        if (cls.tenant != 0)
            tenantsActive_ = true;
    }
    tenantsActive_ = tenantsActive_ || budgetsActive_;
    if (classesActive_) {
        for (const auto &timed : trace) {
            const RequestClass &cls = timed.request.cls;
            TierState &ts = tiers_[cls.tier];
            // First explicit per-class target wins; tiers without
            // one are judged against the policy-wide default.
            if (ts.target == 0.0 && cls.gapSloSeconds > 0.0)
                ts.target = cls.gapSloSeconds;
        }
        for (auto &kv : tiers_)
            if (kv.second.target == 0.0)
                kv.second.target = options_.sched.sloTargetGapSeconds;
    }
    if (tenantsActive_)
        for (const auto &timed : trace)
            (void)tenantState(timed.request.cls.tenant);
}

void
ServingEngine::declareSessionTurns(const SessionBook &sessions)
{
    if (options_.stepModel != StepModel::EventDriven)
        fatal("ServingEngine::declareSessionTurns(): closed-loop "
              "turn release requires the event-driven step model");
    if (ev_)
        fatal("ServingEngine::declareSessionTurns() after prepare()");
    // Successor turns join the class/tenant declaration exactly as a
    // declared open-loop trace would (tier targets fixed before
    // prepare() allocates the windows). Scan in ascending key order
    // so the first-target-wins rule is independent of the book's
    // bucket layout.
    std::vector<RequestId> keys;
    keys.reserve(sessions.size());
    for (const auto &kv : sessions) {
        if (kv.second.thinkSeconds < 0.0)
            fatal("session think times must be nonnegative");
        keys.push_back(kv.first);
    }
    std::sort(keys.begin(), keys.end());
    std::vector<TimedRequest> decl;
    decl.reserve(keys.size());
    for (RequestId key : keys) {
        const SessionTurn &turn = sessions.at(key);
        decl.push_back({turn.request, 0.0});
        if (!sessions_.emplace(key, turn).second)
            fatal("request %u already has a declared successor",
                  key);
    }
    declareWorkload(decl);
    sessionsActive_ = !sessions_.empty();
}

void
ServingEngine::releaseNextTurn(RequestId completed, double now)
{
    auto it = sessions_.find(completed);
    if (it == sessions_.end())
        return;
    TimedRequest next{it->second.request,
                      now + it->second.thinkSeconds};
    sessions_.erase(it);
    registerInjected(next);
    // The release gets its own event rather than joining the
    // pending-arrival chain: a release often lands earlier than the
    // armed head arrival, and re-arming would leave a stale no-op
    // event behind whose count depends on how much of the trace the
    // caller has delivered — breaking the bare-vs-windowed simEvents
    // parity the fleet contract asserts. One event per release keeps
    // both runs identical. The release time is at or after the
    // current event time, so the conservative-ordering contract
    // holds by construction — including inside a fleet window, where
    // the successor lands on the replica that completed its
    // predecessor (natural session stickiness) without crossing the
    // window barrier protocol.
    EventRun &ev = *ev_;
    ev.queue.schedule(next.arrivalSeconds, [this, next](double t) {
        EventRun &run = *ev_;
        evAccountTo(t);
        run.arrived.push_back(next);
        evFormNewCohorts(t);
    });
}

void
ServingEngine::registerInjected(const TimedRequest &timed)
{
    // The per-request share of the constructor's bookkeeping: count
    // the request into its tier and touch its tenant. Inert on the
    // default-class, no-budget path.
    const RequestClass &cls = timed.request.cls;
    if (classesActive_) {
        TierState &ts = tiers_[cls.tier];
        ++ts.requests;
        if (ts.target == 0.0)
            ts.target = cls.gapSloSeconds > 0.0
                            ? cls.gapSloSeconds
                            : options_.sched.sloTargetGapSeconds;
        // A tier first seen mid-run still gets its SLO window when
        // the policy steers on the gap signal (declared tiers got
        // theirs in prepare).
        if (!ts.window && ev_ && ev_->policy->needsGapSignal() &&
            options_.sched.sloWindow > 0)
            ts.window = std::make_unique<WindowedQuantile>(
                options_.sched.sloWindow, 95.0);
    }
    if (tenantsActive_)
        (void)tenantState(cls.tenant);
}

void
ServingEngine::injectArrivals(const std::vector<TimedRequest> &batch)
{
    if (!ev_)
        fatal("ServingEngine::injectArrivals() before prepare()");
    if (ev_->finalized)
        fatal("ServingEngine::injectArrivals() after finalize()");
    requireSortedByArrival(batch, "ServingEngine::injectArrivals");
    EventRun &ev = *ev_;
    bool immediate = false;
    for (const TimedRequest &timed : batch) {
        registerInjected(timed);
        if (timed.arrivalSeconds <= 0.0) {
            ev.arrived.push_back(timed);
            immediate = true;
        } else {
            // Merge into the nondecreasing pending-arrival stream;
            // upper_bound keeps FIFO order among equal arrival
            // times (later injections queue behind earlier ones).
            auto pos = std::upper_bound(
                ev.future.begin(), ev.future.end(),
                timed.arrivalSeconds,
                [](double t, const TimedRequest &r) {
                    return t < r.arrivalSeconds;
                });
            ev.future.insert(pos, timed);
        }
    }
    evArmArrivalEvent();
    // Time-zero deliveries skip the arrival-event path (exactly as
    // constructor-supplied time-zero requests do), so form cohorts
    // for them now.
    if (immediate)
        evFormNewCohorts(ev.queue.now());
}

double
ServingEngine::queuedTokens() const
{
    auto request_tokens = [](const Request &r) {
        return static_cast<double>(r.contextTokens + r.decodeTokens);
    };
    double sum = 0.0;
    for (const auto &timed : pending_)
        sum += request_tokens(timed.request);
    if (!ev_)
        return sum;
    const EventRun &ev = *ev_;
    for (const auto &timed : ev.future)
        sum += request_tokens(timed.request);
    for (const auto &timed : ev.arrived)
        sum += request_tokens(timed.request);
    for (const auto &a : ev.readyPool)
        sum += request_tokens(a.request) - static_cast<double>(a.generated);
    for (const auto &c : ev.cohorts)
        for (const auto &a : c.members)
            sum += request_tokens(a.request) -
                   static_cast<double>(a.generated);
    return sum + ev.prefillingTokens;
}

double
ServingEngine::now() const
{
    return ev_ ? ev_->queue.now() : 0.0;
}

ServingEngine::Evacuation
ServingEngine::evacuate(bool kill_in_flight)
{
    if (!ev_)
        fatal("ServingEngine::evacuate() before prepare()");
    EventRun &ev = *ev_;
    if (ev.finalized)
        fatal("ServingEngine::evacuate() after finalize()");

    Evacuation out;
    // The undelivered/unadmitted queue migrates as-is. arrived may
    // hold preemption requeues with past arrivals, so the merged
    // batch is re-sorted rather than assumed ordered.
    out.queued.reserve(ev.arrived.size() + ev.future.size());
    for (const TimedRequest &timed : ev.arrived)
        out.queued.push_back(timed);
    ev.arrived.clear();
    for (const TimedRequest &timed : ev.future)
        out.queued.push_back(timed);
    ev.future.clear();
    sortByArrival(out.queued);
    if (!kill_in_flight)
        return out;

    // Hard crash: every admitted request loses its progress. KV
    // reservations are released, partial decode tokens are counted
    // as wasted, and the request is rewound to a fresh arrival for
    // the failover router. Residual timeline events for the killed
    // work drain as no-ops: cycle completions find empty cohorts and
    // prefill completions see a stale epoch.
    ev.halted = true;
    ++ev.epoch;
    auto drop = [&](Active &a) {
        allocator_->release(a.request.id);
        tenantRelease(a.request);
        releaseCacheRef(a);
        out.lostTokens += a.generated;
        out.inFlight.push_back({a.request, a.arrival});
    };
    for (Active &a : ev.readyPool)
        drop(a);
    ev.readyPool.clear();
    for (EventCohort &c : ev.cohorts) {
        for (Active &m : c.members)
            drop(m);
        c.members.clear();
    }
    for (const auto &holder : ev.prefillHolders)
        drop(*holder);
    ev.prefillHolders.clear();
    ev.prefilling = 0;
    ev.prefillingTokens = 0.0;
    // The crash loses the replica's KV wholesale — retained prefixes
    // included. The tree restarts cold after restoreService().
    if (prefixActive_)
        prefixCache_->clear();
    sortByArrival(out.inFlight);
    return out;
}

void
ServingEngine::restoreService()
{
    if (!ev_)
        fatal("ServingEngine::restoreService() before prepare()");
    // Just lift the halt: queues are empty (the evacuation took
    // them), so service resumes with the next injected arrival.
    ev_->halted = false;
}

void
ServingEngine::setServiceRateScale(double factor)
{
    if (!ev_)
        fatal("ServingEngine::setServiceRateScale() before prepare()");
    if (!(factor > 0.0))
        fatal("ServingEngine::setServiceRateScale(%.17g): factor "
              "must be positive",
              factor);
    ev_->serviceRateScale = factor;
}

EngineResult
ServingEngine::finalize()
{
    if (!ev_)
        fatal("ServingEngine::finalize() before prepare()");
    EventRun &ev = *ev_;
    if (ev.finalized)
        fatal("ServingEngine::finalize() called twice");
    ev.finalized = true;

    if (ev.capped)
        warn("engine stopped at the cycle cap (%llu)",
             static_cast<unsigned long long>(options_.maxSteps));

    // Per-policy observability off the stage timelines.
    for (unsigned s = 0; s < ev.stages->count(); ++s) {
        XpuStageDevice *x = ev.stages->stage(s).xpu();
        if (!x)
            continue;
        result_.chunkSlices += x->preemptionSlices() -
                               x->decodePreemptionSlices();
        result_.decodePreemptSlices += x->decodePreemptionSlices();
        result_.decodeOvertakes += x->overtakes();
        result_.tierInversions += x->tierInversions();
        result_.maxTierInversionWaitSeconds =
            std::max(result_.maxTierInversionWaitSeconds,
                     x->maxTierInversionWaitSeconds());
        result_.maxDecodeXpuWaitSeconds =
            std::max(result_.maxDecodeXpuWaitSeconds,
                     x->maxDecodeWaitSeconds());
        result_.xpuPrefillBusySeconds += x->prefillBusySeconds();
    }

    result_.simulatedSeconds = ev.endTime;
    result_.simEvents = ev.queue.dispatched();
    if (prefixActive_) {
        const PrefixCacheStats &pc = prefixCache_->stats();
        result_.prefixHits = pc.hits;
        result_.prefixMisses = pc.misses;
        result_.prefixEvictions = pc.evictions;
        result_.prefixHitRate =
            safeRatio(static_cast<double>(pc.hits),
                      static_cast<double>(pc.hits + pc.misses));
        result_.sharedKvPeakBytes = prefixSharedPeak_;
        result_.uniqueKvPeakBytes = prefixUniquePeak_;
    }
    finalizeResult(ev.acc, ev.batchTime, ev.capacityTime);
    return result_;
}

EngineResult
ServingEngine::runEventDriven()
{
    prepare();
    ev_->queue.runAll();
    return finalize();
}

void
ServingEngine::finalizeResult(const ChannelAccum &acc, double batch_time,
                              double capacity_time)
{
    if (result_.simulatedSeconds > 0.0) {
        result_.tokensPerSecond =
            static_cast<double>(result_.generatedTokens) /
            result_.simulatedSeconds;
        result_.avgEffectiveBatch =
            batch_time / result_.simulatedSeconds;
        result_.capacityUtilization =
            capacity_time / result_.simulatedSeconds;
    }
    result_.macUtilization = safeRatio(acc.busyCycles, acc.spanCycles);

    // O(n) summaries: a running sum for the average (accumulated in
    // sample-production order) and one nth_element for the
    // nearest-rank p95 — the former sort-the-whole-vector pass is
    // the dominant finalize cost at sweep scale. The p95 is the
    // exact order statistic the sorted path produced; the average
    // now rounds in insertion order rather than ascending order
    // (same value to ~1 ulp per thousand samples).
    auto summarize = [](std::vector<double> &samples, double &avg,
                        double &p95) {
        if (samples.empty())
            return;
        double sum = 0.0;
        for (double s : samples)
            sum += s;
        avg = sum / static_cast<double>(samples.size());
        p95 = nearestRankPercentileInPlace(samples, 95.0);
    };
    summarize(latencies_, result_.avgRequestLatency,
              result_.p95RequestLatency);
    summarize(firstTokenLatencies_, result_.avgFirstTokenSeconds,
              result_.p95FirstTokenSeconds);
    summarize(tokenGaps_, result_.avgTokenGapSeconds,
              result_.p95TokenGapSeconds);

    // Per-class and per-tenant summaries (classes / budgets only;
    // both vectors stay empty on the strictly-additive default
    // path).
    if (classesActive_) {
        result_.classLatencies.reserve(tiers_.size());
        for (auto &kv : tiers_) {
            EngineResult::ClassLatency cl;
            cl.tier = kv.first;
            cl.gapSloTargetSeconds = kv.second.target;
            cl.requests = kv.second.requests;
            cl.completedRequests = kv.second.completed;
            summarize(kv.second.ttfts, cl.avgFirstTokenSeconds,
                      cl.p95FirstTokenSeconds);
            summarize(kv.second.gaps, cl.avgTokenGapSeconds,
                      cl.p95TokenGapSeconds);
            result_.classLatencies.push_back(cl);
        }
    }
    if (tenantsActive_) {
        result_.tenantOccupancy.reserve(tenants_.size());
        for (auto &kv : tenants_) {
            EngineResult::TenantOccupancy to;
            to.tenant = kv.first;
            to.budgetShare = capacityTokens_ > 0.0
                                 ? kv.second.budgetTokens /
                                       capacityTokens_
                                 : 0.0;
            to.avgTokenShare = result_.simulatedSeconds > 0.0
                                   ? kv.second.shareSeconds /
                                         result_.simulatedSeconds
                                   : 0.0;
            to.peakTokenShare = kv.second.peakShare;
            to.admittedRequests = kv.second.admitted;
            to.budgetDeferrals = kv.second.deferrals;
            result_.tenantOccupancy.push_back(to);
        }
    }
}

EngineResult
runServing(ClusterConfig cluster, const LlmConfig &model,
           const std::vector<Request> &requests,
           const PimphonyOptions &pimphony, std::uint64_t max_steps)
{
    applyOptions(cluster, pimphony);
    EngineOptions options;
    options.allocator =
        pimphony.dpa ? AllocatorKind::LazyChunk : AllocatorKind::Static;
    options.maxSteps = max_steps;
    ServingEngine engine(cluster, model, requests, options);
    return engine.run();
}

} // namespace pimphony
