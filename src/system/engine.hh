/**
 * @file
 * Decode-serving engine: continuous batching over a multi-module PIM
 * system with TP/PP parallelism, allocator-driven admission, and
 * per-step latency composed from the module models.
 *
 * Scope note: the evaluation targets the decoding phase, where the
 * paper locates the PIM bottlenecks; prefill is charged to memory on
 * admission but not to time (all compared systems would pay the same
 * prefill on their compute engines).
 */

#ifndef PIMPHONY_SYSTEM_ENGINE_HH
#define PIMPHONY_SYSTEM_ENGINE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "alloc/kv_allocator.hh"
#include "system/cluster.hh"
#include "workload/arrival.hh"
#include "workload/trace.hh"

namespace pimphony {

struct EngineOptions
{
    AllocatorKind allocator = AllocatorKind::Static;

    /** Cap on simulated decode steps (safety valve). */
    std::uint64_t maxSteps = 200000;

    /**
     * Charge prefill compute time when a request is admitted
     * (extension; the paper's evaluation, like ours by default,
     * reports decode throughput).
     */
    bool chargePrefill = false;
};

struct EngineResult
{
    double tokensPerSecond = 0.0;
    double simulatedSeconds = 0.0;
    std::uint64_t generatedTokens = 0;
    std::uint64_t completedRequests = 0;
    std::uint64_t rejectedRequests = 0;
    std::uint64_t preemptions = 0;

    /** Time-averaged concurrent batch ("effective batch", Fig. 4). */
    double avgEffectiveBatch = 0.0;

    /** MAC-busy channel-cycles / total channel-cycles (Fig. 4/17). */
    double macUtilization = 0.0;

    /** Time-averaged KV bytes in use / capacity (Fig. 19). */
    double capacityUtilization = 0.0;

    /** Aggregate split for Figs. 16/17(c). */
    double attentionSeconds = 0.0;
    double fcSeconds = 0.0;
    EnergyBreakdown attentionEnergy;
    EnergyBreakdown fcEnergy;

    /** Prefill time charged when EngineOptions::chargePrefill is on. */
    double prefillSeconds = 0.0;

    /** Request latency (completion - arrival), open- or closed-loop. */
    double avgRequestLatency = 0.0;
    double p95RequestLatency = 0.0;
};

class ServingEngine
{
  public:
    /** Closed-loop: every request is available at time zero. */
    ServingEngine(const ClusterConfig &cluster, const LlmConfig &model,
                  std::vector<Request> requests,
                  const EngineOptions &options);

    /** Open-loop: requests become available at their arrival times. */
    ServingEngine(const ClusterConfig &cluster, const LlmConfig &model,
                  std::vector<TimedRequest> requests,
                  const EngineOptions &options);

    EngineResult run();

  private:
    struct Active
    {
        Request request;
        Tokens generated = 0;
        double arrival = 0.0;
    };

    /** Admit arrived pending requests while memory allows. */
    void admit();

    /** Seconds for one decode step of the current active set. */
    double stepSeconds(std::vector<double> &busy_acc,
                       std::vector<double> &span_acc);

    ClusterConfig cluster_;
    LlmConfig model_;
    EngineOptions options_;
    std::deque<TimedRequest> pending_;
    std::vector<Active> active_;
    std::unique_ptr<KvAllocator> allocator_;
    std::unique_ptr<PimModuleModel> module_;
    std::unique_ptr<XpuModel> xpu_;
    std::vector<double> latencies_;
    EngineResult result_;
};

/**
 * Convenience: build, apply options, run.
 */
EngineResult runServing(ClusterConfig cluster, const LlmConfig &model,
                        const std::vector<Request> &requests,
                        const PimphonyOptions &pimphony,
                        std::uint64_t max_steps = 200000);

} // namespace pimphony

#endif // PIMPHONY_SYSTEM_ENGINE_HH
