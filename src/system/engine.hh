/**
 * @file
 * Decode-serving engine: continuous batching over a multi-module PIM
 * system with TP/PP parallelism, allocator-driven admission, and
 * per-step latency composed from the module models.
 *
 * Two step models are available. The event-driven core (default)
 * schedules per-cohort (micro-batch), per-stage work items on the
 * sim subsystem's event queue: cohorts traverse the PP stages as
 * FIFO devices and decode asynchronously, so a fast cohort is not
 * padded to the slowest one and admission is arrival-driven. The
 * analytic model collapses each step into the closed-form
 * stageBeats * max_stage_sec expression; the two agree on PP=1
 * (single-cohort) configurations, where the pipeline recurrence
 * degenerates to the closed form.
 *
 * Scope note: decode remains the focus (the paper locates the PIM
 * bottlenecks there), but prefill is now first-class work rather
 * than a free memory charge. Under the event-driven model with
 * EngineOptions::prefillChunkTokens > 0, an admitted request enters
 * a Prefilling state: its context is split into chunked work items
 * (system/prefill's planner) that traverse the per-stage xPU
 * timelines on the event queue, interleaving FIFO with — and
 * delaying — decode FC work, the way a continuous-batching
 * scheduler shares its compute engines between phases. The request
 * joins the decode ready pool only when its last chunk completes.
 * The analytic model (and chargePrefill without chunking) keeps the
 * scalar prefillSeconds() charge at admission for parity; the
 * chunked per-request total matches that scalar exactly.
 */

#ifndef PIMPHONY_SYSTEM_ENGINE_HH
#define PIMPHONY_SYSTEM_ENGINE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "alloc/kv_allocator.hh"
#include "common/stats.hh"
#include "mapping/partition.hh"
#include "system/cluster.hh"
#include "system/sched_policy.hh"
#include "system/serving_options.hh"
#include "workload/arrival.hh"
#include "workload/request_class.hh"
#include "workload/session.hh"
#include "workload/trace.hh"

namespace pimphony {

/**
 * Engine-level knob set: the shared serving options (step model,
 * prefill chunking, co-scheduling policy, tenant budgets — see
 * system/serving_options.hh) plus the engine's own allocator choice
 * and safety cap.
 */
struct EngineOptions : ServingOptions
{
    AllocatorKind allocator = AllocatorKind::Static;

    /** Cap on simulated decode steps / cohort cycles (safety valve). */
    std::uint64_t maxSteps = 200000;
};

struct EngineResult
{
    double tokensPerSecond = 0.0;
    double simulatedSeconds = 0.0;
    std::uint64_t generatedTokens = 0;
    std::uint64_t completedRequests = 0;
    std::uint64_t rejectedRequests = 0;
    std::uint64_t preemptions = 0;

    /** Time-averaged concurrent batch ("effective batch", Fig. 4). */
    double avgEffectiveBatch = 0.0;

    /** MAC-busy channel-cycles / total channel-cycles (Fig. 4/17). */
    double macUtilization = 0.0;

    /** Time-averaged KV bytes in use / capacity (Fig. 19). */
    double capacityUtilization = 0.0;

    /** Aggregate split for Figs. 16/17(c). */
    double attentionSeconds = 0.0;
    double fcSeconds = 0.0;
    EnergyBreakdown attentionEnergy;
    EnergyBreakdown fcEnergy;

    /** Prefill time charged when EngineOptions::chargePrefill is on. */
    double prefillSeconds = 0.0;

    /** Request latency (completion - arrival), open- or closed-loop. */
    double avgRequestLatency = 0.0;
    double p95RequestLatency = 0.0;

    /** Time to first token (first decode completion - arrival). */
    double avgFirstTokenSeconds = 0.0;
    double p95FirstTokenSeconds = 0.0;

    /**
     * Steady-state decode stall: gaps between consecutive token
     * completions of one request (tokens after its first). Prefill
     * chunks sharing the xPU stretch the tail of this distribution.
     */
    double avgTokenGapSeconds = 0.0;
    double p95TokenGapSeconds = 0.0;

    /** Per-request TTFT, keyed by request id (first admission). */
    std::unordered_map<RequestId, double> firstTokenLatency;

    /**
     * Per-request completion time on the serving clock, keyed by
     * request id. One entry per completed request (rejected requests
     * never complete); the session tests read it to check that turn
     * k+1 is released only after turn k completes.
     */
    std::unordered_map<RequestId, double> completionSeconds;

    // --- Co-scheduling policy metrics (event-driven model). ---------

    /** Admission checks deferred by the SLO gate (SloAdmission). */
    std::uint64_t sloDeferrals = 0;

    /** Preemption splits of in-flight prefill chunks (ChunkPreempt). */
    std::uint64_t chunkSlices = 0;

    /** xPU dispatches where decode overtook earlier-queued prefill. */
    std::uint64_t decodeOvertakes = 0;

    /**
     * Worst xPU queueing delay of one decode FC share (seconds):
     * how long a decode cycle stalled waiting for the compute
     * timeline. ChunkPreempt bounds this by its quantum when one
     * decode share is in flight at a time (PP=1).
     */
    double maxDecodeXpuWaitSeconds = 0.0;

    /**
     * Prefill seconds served to completion on the xPU timelines,
     * summed across stages. Every policy must conserve the planner's
     * apportioned charge: this equals prefillSeconds scaled by
     * prefillEngines / tp regardless of how preemption relocates the
     * work.
     */
    double xpuPrefillBusySeconds = 0.0;

    /**
     * Events dispatched by the event-driven core (0 under the
     * analytic model). Deterministic for a given configuration and
     * seed; bench_simperf divides it by wall time for the
     * events-per-second trajectory metric.
     */
    std::uint64_t simEvents = 0;

    // --- Request-class / multi-tenant metrics. Populated only when
    // --- the workload carries non-default classes or budgets are
    // --- configured; the subsystem is strictly additive otherwise.

    /** Latency summary of one tier (classLatencies). */
    struct ClassLatency
    {
        unsigned tier = 0;

        /** Gap SLO target the tier was judged against (0 = none). */
        double gapSloTargetSeconds = 0.0;

        std::uint64_t requests = 0;
        std::uint64_t completedRequests = 0;

        double avgFirstTokenSeconds = 0.0;
        double p95FirstTokenSeconds = 0.0;
        double avgTokenGapSeconds = 0.0;
        double p95TokenGapSeconds = 0.0;
    };

    /** Per-tier TTFT / decode-gap percentiles, ascending tier.
     *  Empty when every request carries the default class. */
    std::vector<ClassLatency> classLatencies;

    /** Capacity occupancy of one tenant (tenantOccupancy). */
    struct TenantOccupancy
    {
        unsigned tenant = 0;

        /** Configured guarantee (0 for borrow-only tenants). */
        double budgetShare = 0.0;

        /** Time-averaged reserved-token fraction of capacity. */
        double avgTokenShare = 0.0;

        /** Peak reserved-token fraction of capacity. */
        double peakTokenShare = 0.0;

        std::uint64_t admittedRequests = 0;

        /** Admission attempts deferred by the budget (borrow denied). */
        std::uint64_t budgetDeferrals = 0;
    };

    /** Per-tenant admitted-capacity occupancy, ascending tenant id.
     *  Empty unless budgets are configured or tenants are tagged. */
    std::vector<TenantOccupancy> tenantOccupancy;

    /** Admission attempts deferred by tenant budgets (all tenants). */
    std::uint64_t budgetDeferrals = 0;

    /**
     * Tier inversions observed on the xPU timelines: a decode share
     * dispatched after waiting behind a worse-tier decode share (see
     * sim::QueuedDevice::tierInversions). Tier-aware preemption
     * bounds each inversion's wait by its quantum.
     */
    std::uint64_t tierInversions = 0;

    /** Worst tier-inversion wait (seconds) across the timelines. */
    double maxTierInversionWaitSeconds = 0.0;

    /** Decode-side preemption splits (lower-tier in-flight decode
     *  items sliced by a tier-aware policy; charge conserved). */
    std::uint64_t decodePreemptSlices = 0;

    // --- Prefix-sharing metrics (alloc/prefix_cache.hh). All zero
    // --- when caching is off — the subsystem is strictly additive.

    /** Admissions served from the prefix tree / that probed and
     *  found nothing reusable. */
    std::uint64_t prefixHits = 0;
    std::uint64_t prefixMisses = 0;

    /** Cache entries evicted under capacity pressure. */
    std::uint64_t prefixEvictions = 0;

    /** prefixHits / (prefixHits + prefixMisses); 0 with no probes. */
    double prefixHitRate = 0.0;

    /** Prefill tokens skipped because their KV was cached. */
    std::uint64_t prefixCachedTokens = 0;

    /** Prefill seconds the skipped tokens would have cost (each
     *  admission's cold scalar charge minus its warm charge). */
    double savedPrefillSeconds = 0.0;

    /** Peak chunk custody of the prefix tree (shared bytes) and of
     *  per-request KV outside it (unique bytes); the two always sum
     *  to the allocator's reservation at the sampling instant. */
    Bytes sharedKvPeakBytes = 0;
    Bytes uniqueKvPeakBytes = 0;
};

class ServingEngine
{
  public:
    /** Closed-loop: every request is available at time zero. */
    ServingEngine(const ClusterConfig &cluster, const LlmConfig &model,
                  std::vector<Request> requests,
                  const EngineOptions &options);

    /** Open-loop: requests become available at their arrival times. */
    ServingEngine(const ClusterConfig &cluster, const LlmConfig &model,
                  std::vector<TimedRequest> requests,
                  const EngineOptions &options);

    ~ServingEngine();

    EngineResult run();

    // --- Resumable sub-simulation interface (event-driven model
    // --- only). run() is the exact composition prepare() ->
    // --- advanceTo(+inf) -> finalize(), bit for bit, so a windowed
    // --- caller (the fleet simulation) reproduces a monolithic run
    // --- whenever it feeds the same arrivals. --------------------------

    /**
     * Pre-declare the class/tenant shape of a workload whose
     * requests will be delivered later through injectArrivals():
     * activates the request-class and tenant bookkeeping (per-tier
     * SLO targets, tenant states) exactly as the constructor does
     * for an up-front request list. Must run before prepare(); a
     * purely default-class trace leaves the engine bit-identical to
     * an undeclared one.
     */
    void declareWorkload(const std::vector<TimedRequest> &trace);

    /**
     * Declare the closed-loop successor turns of a multi-turn
     * workload (workload/session.hh): when the request keyed in
     * @p sessions completes at time t, its successor turn is
     * released as a fresh arrival at t + thinkSeconds — the
     * dependency an open-loop trace cannot express. Event-driven
     * model only; must run before prepare(). Calls accumulate.
     *
     * Semantics worth knowing: a rejected or never-completing
     * predecessor keeps the rest of its session unreleased (the user
     * never saw turn k's answer, so turn k+1 is never typed), and
     * unreleased turns are invisible to queuedTokens() — the router
     * load signal sees only work that has actually arrived.
     */
    void declareSessionTurns(const SessionBook &sessions);

    /**
     * Build the event-driven run state and schedule the initial
     * events (constructor-supplied arrivals, first cohorts). After
     * prepare() the engine is a resumable sub-simulation: advance it
     * with advanceTo(), feed it with injectArrivals(), and close it
     * with finalize().
     */
    void prepare();

    /**
     * Dispatch every pending event at or before @p horizon
     * (inclusive) in event order; later events stay queued. Windowed
     * advances with increasing horizons replay exactly the event
     * sequence one runAll() would dispatch.
     */
    void advanceTo(double horizon);

    /** No pending events (the sub-simulation is quiescent). */
    bool drained() const;

    /** Earliest pending event time; +infinity when drained. */
    double nextEventTime() const;

    /**
     * Deliver requests mid-run (router dispatch). Arrivals at or
     * before time zero join the admission queue immediately; later
     * ones are merged into the pending-arrival stream and fire as
     * arrival events. Callers must never inject an arrival earlier
     * than events already dispatched — the fleet's conservative
     * window protocol guarantees this by construction.
     */
    void injectArrivals(const std::vector<TimedRequest> &batch);

    /**
     * Outstanding work queued on this engine, in tokens: context +
     * remaining decode summed over waiting, prefilling, and decoding
     * requests. The load signal least-loaded routers balance on;
     * O(queued requests) per call, intended for window barriers.
     */
    double queuedTokens() const;

    /** Current event-queue clock (0 before prepare()). */
    double now() const;

    /** What ServingEngine::evacuate() pulled off the engine. */
    struct Evacuation
    {
        /**
         * Undelivered pending arrivals and queued-but-unadmitted
         * requests, sorted by arrival time — work the engine never
         * started, migratable to another replica as-is.
         */
        std::vector<TimedRequest> queued;

        /**
         * Admitted requests whose in-flight progress (KV
         * reservation, prefill chunks, partial decode) was
         * discarded, each rewound to a fresh TimedRequest at its
         * original arrival. Empty unless kill_in_flight.
         */
        std::vector<TimedRequest> inFlight;

        /** Decode tokens already generated for inFlight, now wasted. */
        std::uint64_t lostTokens = 0;
    };

    /**
     * Pull work off the engine for migration (replica drain or
     * crash). Always extracts the undelivered/unadmitted queue; with
     * @p kill_in_flight additionally discards all admitted work —
     * ready-pool, in-flight prefills, decoding cohort members — by
     * releasing their reservations and returning them rewound (their
     * generated tokens stay counted in generatedTokens as wasted
     * throughput), and halts the engine: no new cohorts form and
     * late prefill completions are dropped until restoreService().
     * Composes with the resumable protocol: call between advanceTo()
     * horizons; a halted engine still drains its residual events.
     */
    Evacuation evacuate(bool kill_in_flight);

    /**
     * Lift the halt a killing evacuate() imposed (the replica's
     * model reload finished): injected arrivals admit and decode
     * again. No-op if not halted.
     */
    void restoreService();

    /**
     * Stretch device charges submitted from now on by @p factor
     * (> 1 is slower — brown-out modeling; 1 restores full speed).
     * Applies to decode cycles, prefill chunks, and the scalar
     * prefill serialization clock; work already on the timelines is
     * unaffected. A factor of exactly 1 is bit-transparent.
     */
    void setServiceRateScale(double factor);

    /**
     * Close a prepared run: collect the per-stage policy metrics,
     * summarize latency samples, and return the result — the tail
     * run() executes after its event loop drains. Call once, after
     * the final advanceTo().
     */
    EngineResult finalize();

    /**
     * Shareable cached tokens the prefix tree could serve @p r right
     * now (retained session history first, then the declared
     * prefix); 0 when caching is off or nothing is warm. Read-only —
     * the prefix-affinity router's per-replica warmth signal.
     */
    Tokens prefixWarmTokens(const Request &r) const;

    /** Read-only prefix-cache view (null when caching is off). */
    const PrefixCache *prefixCache() const { return prefixCache_.get(); }

    /** Read-only allocator view (conservation checks in tests). */
    const KvAllocator &allocatorView() const { return *allocator_; }

  private:
    struct Active
    {
        Request request;
        Tokens generated = 0;
        double arrival = 0.0;

        /** Completion time of the latest token (< 0: none yet). */
        double lastTokenAt = -1.0;

        // --- Prefix-sharing state (all-zero when caching is off). --

        /** Tokens of this request's KV held by the prefix tree
         *  rather than its own allocation (custody offset: the
         *  allocator account covers context + generated minus
         *  this). */
        Tokens cachedTokens = 0;

        /** Warm-hit tokens whose prefill charge was skipped
         *  (== cachedTokens for consumers; 0 for the publisher,
         *  which prefills its prefix cold). */
        Tokens warmTokens = 0;

        /** Tree entry this request references (0 = none). */
        std::uint64_t cacheKey = 0;

        /** This request is prefilling a new entry cold; its prefill
         *  completion marks the entry ready. */
        bool cachePublisher = false;
    };

    /**
     * Device-time plan for one decode cycle of one cohort
     * (micro-batch): the per-stage service time plus the cycle's
     * aggregate phase seconds, occupancy, and energy. Both step
     * models are composed from these plans; they differ only in how
     * plans are laid out in time.
     */
    struct CyclePlan
    {
        /** Service seconds of one model layer. */
        double layerSeconds = 0.0;

        /** xPU share of one layer's service (XpuPim overlap). */
        double fcLayerSeconds = 0.0;

        /**
         * Service seconds of the slowest PP stage (the last stage
         * when the layer count does not divide evenly): the beat
         * length the analytic model charges per stage slot.
         */
        double maxStageSeconds = 0.0;

        /** Layers across all stages (= nLayers when pp <= nLayers). */
        double layersTotal = 0.0;

        /** Whole-cycle (all layers, all stages) phase seconds. */
        double attSeconds = 0.0;
        double fcSeconds = 0.0;

        /** MAC-busy channel-cycles across the tp module group. */
        double busyChannelCycles = 0.0;

        EnergyBreakdown attEnergy;
        EnergyBreakdown fcEnergy;
    };

    /**
     * Running channel-cycle totals for MAC utilization. Both step
     * models add one (busy, span) pair per cycle/step in simulation
     * order, so the scalar sums round exactly as the former
     * per-cycle vectors summed at finalize did — without growing a
     * vector per cycle.
     */
    struct ChannelAccum
    {
        double busyCycles = 0.0;
        double spanCycles = 0.0;
    };

    /** Admit arrived pending requests while memory allows. */
    void admit();

    /**
     * Per-request admission rule shared by both step models:
     * Rejected = can never be served here, Blocked = waits for
     * memory, BudgetBlocked = the request's tenant is over budget
     * and borrowing was denied (@p allow_borrow false; only with
     * tenant budgets configured), Admitted = reserved (with
     * @p prefill_sec the scalar prefill charge when chargePrefill or
     * prefillChunkTokens is set; the chunked event path apportions
     * it over chunk items instead of spending it as a lump).
     */
    enum class AdmitOutcome { Admitted, Rejected, Blocked, BudgetBlocked };
    AdmitOutcome tryAdmitOne(const TimedRequest &timed,
                             double &prefill_sec,
                             bool allow_borrow = true);

    /**
     * Advance @p a by the one token produced at @p completion_clock:
     * grow-or-preempt (re-queueing to @p requeue with the original
     * arrival), then complete-or-continue. Returns false when the
     * request leaves the active set. Shared by both step models.
     */
    bool advanceMember(Active &a, double completion_clock,
                       std::deque<TimedRequest> &requeue);

    /** Device-time plan for one decode cycle of [@p begin, @p end). */
    CyclePlan planCohortCycle(const Active *begin, const Active *end);

    /**
     * Record a cycle's phase seconds, occupancy, and energy
     * (including the idle-background share over @p span_cycles of
     * channel occupancy) into the running result.
     */
    void accountCycle(const CyclePlan &plan, double span_cycles,
                      ChannelAccum &acc);

    /** Seconds for one lockstep decode step of the active set. */
    double stepSeconds(ChannelAccum &acc);

    EngineResult runAnalytic();
    EngineResult runEventDriven();
    void finalizeResult(const ChannelAccum &acc, double batch_time,
                        double capacity_time);

    // --- Event-driven run state (the former runEventDriven locals,
    // --- hoisted so the run is resumable between advanceTo calls).
    // --- Both types live in engine.cc; the ev* methods below are
    // --- the former run-local lambdas, one to one. ------------------

    /** One in-flight decode cohort (micro-batch). */
    struct EventCohort;

    /** Heap-held state of one prepared event-driven run. */
    struct EventRun;

    /** Integrate batch/capacity time-averages up to @p t. */
    void evAccountTo(double t);

    /** Decoding requests across the in-flight cohorts. */
    std::size_t evInFlightCount() const;

    /** Stable tier ordering of the ready pool (classes only). */
    void evSortReadyPoolByTier();

    /** Windowed p95 decode gap (0 without a gap window). */
    double evRecentGapP95() const;
    std::size_t evGapSamples() const;

    /** Hoist the per-scan tier in-flight flags (class gate). */
    void evRefreshTiersInFlight();

    /** Per-class SLO admission gate (see classGateDefers notes). */
    bool evClassGateDefers(const RequestClass &cls);

    /** Admission scan over the arrived queue at event time @p now. */
    void evAdmitArrivals(double now);

    /** Submit an admitted request's chunked prefill sequence. */
    void evStartPrefill(Active a, double now);

    /** Submit one decode cycle of @p c on the stage pipeline. */
    void evStartCycle(EventCohort &c, double ready);

    /** Cycle completion: advance members, rebalance, resubmit. */
    void evOnCycleComplete(EventCohort &c, double t);

    /** Form cohorts from the ready pool while slots are free. */
    void evFormNewCohorts(double t);

    /** Arrival event: drain due arrivals, re-arm, form cohorts. */
    void evOnArrival(double t);

    /**
     * Schedule the arrival event for the earliest pending arrival
     * unless one at or before it is already armed (injectArrivals
     * may re-arm earlier than a drained chain would).
     */
    void evArmArrivalEvent();

    /** Per-request class/tenant bookkeeping of a mid-run arrival. */
    void registerInjected(const TimedRequest &timed);

    /**
     * Release the successor turn of @p completed (if any) as an
     * arrival at @p now + its think time. Called from
     * advanceMember's completion branch; no-op for requests without
     * a declared successor.
     */
    void releaseNextTurn(RequestId completed, double now);

    // --- Request-class / tenant-budget machinery (inactive — and
    // --- bit-transparent — when the workload is single-class and no
    // --- budgets are configured). -----------------------------------

    /** Per-tier sample store and (optional) sliding SLO window. */
    struct TierState
    {
        /** Gap SLO target (class target, else the policy default). */
        double target = 0.0;

        std::uint64_t requests = 0;
        std::uint64_t completed = 0;
        std::vector<double> ttfts;
        std::vector<double> gaps;

        /** Per-tier windowed p95 (gap-steered policies only). */
        std::unique_ptr<WindowedQuantile> window;
    };

    /** Admission-budget accounting of one tenant. */
    struct TenantState
    {
        double budgetTokens = 0.0;
        double reservedTokens = 0.0;

        /** Integral of reservedTokens/capacity over time. */
        double shareSeconds = 0.0;
        double peakShare = 0.0;
        std::uint64_t admitted = 0;
        std::uint64_t deferrals = 0;
    };

    TenantState &tenantState(unsigned tenant);

    /** Budget verdict for @p tenant wanting @p need more tokens. */
    bool budgetAdmits(unsigned tenant, double need, bool allow_borrow);

    /**
     * Reserve / release tenant budget accounting. By default a
     * request is charged context + decode tokens; @p charge_tokens
     * >= 0 overrides it (prefix sharing charges shared chunks
     * fractionally — see tryAdmitOne), and the charged amount is
     * remembered so release refunds exactly what was reserved.
     */
    void tenantReserve(const Request &request,
                       double charge_tokens = -1.0);
    void tenantRelease(const Request &request);

    /** Advance the per-tenant occupancy integrals by @p dt. */
    void integrateTenantShares(double dt);

    /**
     * Tenants with an under-budget ("entitled") request waiting in
     * @p queue, computed once per admission scan. A borrower is
     * denied while any OTHER tenant appears here (see
     * entitledElsewhere), preserving every active tenant's
     * guarantee. Reservations only grow during a scan, so the set
     * can only shrink mid-scan — a stale entry defers a borrower to
     * the next round but never breaks a guarantee.
     */
    std::set<unsigned>
    entitledTenantsWaiting(const std::deque<TimedRequest> &queue,
                           double now) const;

    /** True when @p entitled holds a tenant other than @p tenant. */
    static bool entitledElsewhere(const std::set<unsigned> &entitled,
                                  unsigned tenant);

    ClusterConfig cluster_;
    LlmConfig model_;
    EngineOptions options_;
    std::deque<TimedRequest> pending_;
    std::vector<Active> active_;
    std::unique_ptr<KvAllocator> allocator_;

    // --- Prefix-sharing state (prefixCache.enabled only). -----------

    /** The CoW prefix tree; declared after allocator_ so its chunk
     *  custody is released before the allocator dies. */
    std::unique_ptr<PrefixCache> prefixCache_;

    /** options_.prefixCache.enabled (hot-path guard). */
    bool prefixActive_ = false;

    /** Fractional tenant charges by request id (refunded exactly). */
    std::unordered_map<RequestId, double> prefixTenantCharge_;

    /** tryAdmitOne -> Active handoff of the admitted request's
     *  prefix state (custody offset, warm tokens, key, publisher). */
    Tokens pendingCachedTokens_ = 0;
    Tokens pendingWarmTokens_ = 0;
    std::uint64_t pendingCacheKey_ = 0;
    bool pendingPublisher_ = false;

    /** Peak shared/unique custody samples (EngineResult). */
    Bytes prefixSharedPeak_ = 0;
    Bytes prefixUniquePeak_ = 0;

    /** Stamp an Active from the pending prefix-admission state. */
    Active takeAdmitted(const TimedRequest &timed);

    /** Sample shared/unique custody peaks (prefixActive_ only). */
    void prefixSampleOccupancy();

    /** Drop @p a's prefix-tree reference, if it holds one: the
     *  publisher's hold is structural, a warm hit's is a consumer
     *  ref (the fractional-charge divisor). */
    void releaseCacheRef(const Active &a);

    std::unique_ptr<PimModuleModel> module_;
    std::unique_ptr<XpuModel> xpu_;
    std::vector<double> latencies_;
    std::vector<double> firstTokenLatencies_;
    std::vector<double> tokenGaps_;

    /**
     * Declared-but-unreleased successor turns, keyed by the
     * predecessor request id; entries are erased as they fire.
     */
    SessionBook sessions_;

    /** declareSessionTurns() declared at least one successor. */
    bool sessionsActive_ = false;

    /** Any request carries a non-default class (tiers in play). */
    bool classesActive_ = false;

    /** EngineOptions::tenantBudgets is non-empty. */
    bool budgetsActive_ = false;

    /** Track per-tenant occupancy (budgets or tagged tenants). */
    bool tenantsActive_ = false;

    /** KV capacity in tokens (budget shares are fractions of it). */
    double capacityTokens_ = 0.0;

    /** Per-tier state, keyed ascending (classes active only). */
    std::map<unsigned, TierState> tiers_;

    /** Per-tenant state, keyed ascending (tenants active only). */
    std::map<unsigned, TenantState> tenants_;

    /**
     * Streaming p95 over the sliding SLO window of decode token
     * gaps; allocated in runEventDriven only when the policy steers
     * on the gap signal. advanceMember feeds it as gaps are
     * produced, so the admission gate reads the windowed percentile
     * in O(1) instead of copying and sorting the window per decode
     * cycle.
     */
    std::unique_ptr<WindowedQuantile> gapWindow_;

    /** Per-cycle scratch for planCohortCycle's attention jobs. */
    std::vector<AttentionJob> jobsScratch_;

    /** Live event-driven run (prepare() .. finalize()). */
    std::unique_ptr<EventRun> ev_;

    EngineResult result_;
};

/**
 * Convenience: build, apply options, run.
 */
EngineResult runServing(ClusterConfig cluster, const LlmConfig &model,
                        const std::vector<Request> &requests,
                        const PimphonyOptions &pimphony,
                        std::uint64_t max_steps = 200000);

} // namespace pimphony

#endif // PIMPHONY_SYSTEM_ENGINE_HH
