#include "system/fault.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace pimphony {

FaultEvent
crashAt(double at_seconds, double drain_seconds)
{
    FaultEvent e;
    e.kind = FaultEvent::Kind::Crash;
    e.atSeconds = at_seconds;
    e.drainSeconds = drain_seconds;
    return e;
}

FaultEvent
degradeAt(double at_seconds, double slowdown_factor,
          double duration_seconds)
{
    FaultEvent e;
    e.kind = FaultEvent::Kind::Degrade;
    e.atSeconds = at_seconds;
    e.slowdownFactor = slowdown_factor;
    e.durationSeconds = duration_seconds;
    return e;
}

FaultEvent
recoverAt(double at_seconds, double model_reload_seconds)
{
    FaultEvent e;
    e.kind = FaultEvent::Kind::Recover;
    e.atSeconds = at_seconds;
    e.modelReloadSeconds = model_reload_seconds;
    return e;
}

std::string
faultKindName(FaultEvent::Kind kind)
{
    switch (kind) {
      case FaultEvent::Kind::Crash:   return "crash";
      case FaultEvent::Kind::Degrade: return "degrade";
      case FaultEvent::Kind::Recover: return "recover";
    }
    return "?";
}

bool
FaultSchedule::empty() const
{
    for (const auto &events : replicas)
        if (!events.empty())
            return false;
    return true;
}

std::size_t
FaultSchedule::eventCount() const
{
    std::size_t n = 0;
    for (const auto &events : replicas)
        n += events.size();
    return n;
}

void
FaultSchedule::validate(unsigned fleet_replicas) const
{
    if (replicas.size() > fleet_replicas)
        fatal("FaultSchedule: events scripted for replica %zu of a "
              "%u-replica fleet",
              replicas.size() - 1, fleet_replicas);
    for (std::size_t r = 0; r < replicas.size(); ++r) {
        double last = 0.0;
        bool down = false;
        for (std::size_t i = 0; i < replicas[r].size(); ++i) {
            const FaultEvent &e = replicas[r][i];
            if (!(e.atSeconds >= 0.0))
                fatal("FaultSchedule: replica %zu event %zu (%s) at "
                      "negative time %.17g",
                      r, i, faultKindName(e.kind).c_str(),
                      e.atSeconds);
            if (e.atSeconds < last)
                fatal("FaultSchedule: replica %zu events out of "
                      "order at index %zu (%.17g after %.17g)",
                      r, i, e.atSeconds, last);
            last = e.atSeconds;
            switch (e.kind) {
              case FaultEvent::Kind::Crash:
                if (down)
                    fatal("FaultSchedule: replica %zu crashes again "
                          "at %.17g while still down",
                          r, e.atSeconds);
                if (e.drainSeconds < 0.0)
                    fatal("FaultSchedule: negative drainSeconds");
                down = true;
                break;
              case FaultEvent::Kind::Recover:
                if (!down)
                    fatal("FaultSchedule: replica %zu recovers at "
                          "%.17g without a preceding crash",
                          r, e.atSeconds);
                if (e.modelReloadSeconds < 0.0)
                    fatal("FaultSchedule: negative modelReloadSeconds");
                down = false;
                break;
              case FaultEvent::Kind::Degrade:
                if (!(e.slowdownFactor > 0.0))
                    fatal("FaultSchedule: replica %zu degrade at "
                          "%.17g with nonpositive slowdown %.17g",
                          r, e.atSeconds, e.slowdownFactor);
                if (!(e.durationSeconds > 0.0))
                    fatal("FaultSchedule: replica %zu degrade at "
                          "%.17g with nonpositive duration",
                          r, e.atSeconds);
                break;
            }
        }
    }
}

FaultSchedule
buildFaultSchedule(const FaultSpec &spec, std::uint64_t seed)
{
    FaultSchedule schedule;
    schedule.replicas.resize(spec.replicas);
    if (spec.mtbfSeconds <= 0.0 || spec.horizonSeconds <= 0.0)
        return schedule;

    for (unsigned r = 0; r < spec.replicas; ++r) {
        // Per-replica stream: splitmix64-style mix of (seed, r), so
        // replica i's fault history is independent of the fleet size
        // and of the other replicas' draws.
        std::uint64_t mixed =
            seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(r) + 1);
        mixed ^= mixed >> 30;
        mixed *= 0xbf58476d1ce4e5b9ULL;
        mixed ^= mixed >> 27;
        Rng rng(mixed);
        auto expo = [&rng](double mean) {
            // Inverse-CDF exponential; uniform() < 1 keeps log finite.
            return -mean * std::log(1.0 - rng.uniform());
        };
        std::vector<FaultEvent> &events = schedule.replicas[r];
        double t = 0.0;
        for (;;) {
            t += expo(spec.mtbfSeconds);
            if (t >= spec.horizonSeconds)
                break;
            if (rng.uniform() < spec.degradeProbability) {
                double duration = expo(spec.mttrSeconds);
                events.push_back(
                    degradeAt(t, spec.slowdownFactor, duration));
                t += duration;
            } else {
                double repair = expo(spec.mttrSeconds);
                events.push_back(crashAt(t, spec.drainSeconds));
                events.push_back(recoverAt(
                    t + spec.drainSeconds + repair,
                    spec.modelReloadSeconds));
                t += spec.drainSeconds + repair +
                     spec.modelReloadSeconds;
            }
        }
    }
    schedule.validate(spec.replicas);
    return schedule;
}

} // namespace pimphony
