/**
 * @file
 * Deterministic fault injection for the fleet simulation.
 *
 * A FaultSchedule scripts per-replica availability events — hard or
 * draining crashes, brown-outs (service-rate degradation), and
 * recoveries with a model-reload charge — that the fleet's health
 * state machine consumes at its window barriers. Schedules come from
 * two sources: hand-scripted event lists (scenario tests, the
 * crash-mid-decode accounting bench) and the seeded generative
 * MTBF/MTTR mode, which is a pure function of (spec, seed) exactly
 * like buildWorkload: same spec and seed, same schedule, on every
 * platform.
 *
 * The schedule itself is passive data. All timing semantics — when
 * an event takes effect relative to the fleet's conservative window
 * barriers, what happens to in-flight work — live in the fleet's
 * state machine (system/fleet.hh); an empty schedule leaves the
 * fleet bit-identical to a fault-free run.
 */

#ifndef PIMPHONY_SYSTEM_FAULT_HH
#define PIMPHONY_SYSTEM_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pimphony {

/** One scripted availability event of one replica. */
struct FaultEvent
{
    enum class Kind {
        /**
         * The replica fails at atSeconds. With drainSeconds == 0 it
         * is a hard crash: queued work is evacuated for re-routing
         * and in-flight work (admitted, prefilling, or decoding) is
         * discarded and failed over. With drainSeconds > 0 it is a
         * planned drain: the replica stops accepting traffic and its
         * queued work migrates immediately, but in-flight work gets
         * drainSeconds to finish before whatever remains is killed.
         */
        Crash,

        /**
         * Brown-out: device charges submitted during
         * [atSeconds, atSeconds + durationSeconds) are stretched by
         * slowdownFactor. The replica keeps serving and keeps
         * receiving traffic.
         */
        Degrade,

        /**
         * The replica begins recovery at atSeconds and is routable
         * again once its model reload (weights back into PIM-mapped
         * memory) completes, modelReloadSeconds later. Only
         * meaningful after a Crash.
         */
        Recover,
    };

    Kind kind = Kind::Crash;

    /** Event time on the serving clock (seconds, >= 0). */
    double atSeconds = 0.0;

    /** Crash only: grace period before in-flight work is killed. */
    double drainSeconds = 0.0;

    /** Degrade only: service-time multiplier (> 1 is slower). */
    double slowdownFactor = 1.0;

    /** Degrade only: brown-out duration in seconds. */
    double durationSeconds = 0.0;

    /** Recover only: model reload seconds before traffic resumes. */
    double modelReloadSeconds = 0.0;
};

/** Scripted-event constructors (keep call sites readable). */
FaultEvent crashAt(double at_seconds, double drain_seconds = 0.0);
FaultEvent degradeAt(double at_seconds, double slowdown_factor,
                     double duration_seconds);
FaultEvent recoverAt(double at_seconds, double model_reload_seconds);

std::string faultKindName(FaultEvent::Kind kind);

/**
 * Per-replica fault script: replica[i] holds replica i's events in
 * nondecreasing time order. Replicas beyond the vector's size have
 * no events; an empty schedule injects nothing.
 */
struct FaultSchedule
{
    std::vector<std::vector<FaultEvent>> replicas;

    bool empty() const;

    /** Total events across all replicas. */
    std::size_t eventCount() const;

    /**
     * Validate against a fleet of @p fleet_replicas: events sorted
     * by time per replica, nonnegative times, positive slowdown and
     * durations, crash/recover alternation (a Recover must follow a
     * Crash, a crashed replica must not crash again before
     * recovering), and no events scripted for replicas the fleet
     * does not have. fatal() on the first violation.
     */
    void validate(unsigned fleet_replicas) const;
};

/**
 * Generative MTBF/MTTR fault model. buildFaultSchedule draws each
 * replica's fault process independently: exponential time between
 * failures (mean mtbfSeconds), each failure a brown-out with
 * probability degradeProbability (duration exponential with mean
 * mttrSeconds, slowdown slowdownFactor) and otherwise a crash
 * repaired after an exponential MTTR plus modelReloadSeconds of
 * reload. Events are generated in [0, horizonSeconds).
 */
struct FaultSpec
{
    unsigned replicas = 1;

    /** Generate events in [0, horizonSeconds). 0 = no events. */
    double horizonSeconds = 0.0;

    /** Mean seconds between failures per replica. 0 = no faults. */
    double mtbfSeconds = 0.0;

    /** Mean seconds to repair (crash) / brown-out duration. */
    double mttrSeconds = 1.0;

    /** Model reload charged on every crash recovery. */
    double modelReloadSeconds = 0.0;

    /** Probability a failure is a brown-out instead of a crash. */
    double degradeProbability = 0.0;

    /** Brown-out service-time multiplier (> 1 is slower). */
    double slowdownFactor = 2.0;

    /** Grace period crashes grant in-flight work (planned drains). */
    double drainSeconds = 0.0;
};

/**
 * Expand @p spec into a concrete schedule. A pure function of
 * (spec, seed): replica i's events come from an Rng seeded by a
 * deterministic mix of @p seed and i, so schedules are reproducible
 * and per-replica streams are independent of the replica count.
 */
FaultSchedule buildFaultSchedule(const FaultSpec &spec,
                                 std::uint64_t seed);

} // namespace pimphony

#endif // PIMPHONY_SYSTEM_FAULT_HH
