#include "system/fleet.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace pimphony {

std::string
routePolicyName(RoutePolicy policy)
{
    switch (policy) {
      case RoutePolicy::RoundRobin:  return "round-robin";
      case RoutePolicy::LeastLoaded: return "least-loaded";
    }
    return "?";
}

FleetEngine::FleetEngine(const ClusterConfig &cluster,
                         const LlmConfig &model,
                         std::vector<TimedRequest> trace,
                         const FleetOptions &options)
    : cluster_(cluster), model_(model), trace_(std::move(trace)),
      options_(options)
{
    if (options_.replicas == 0)
        fatal("FleetEngine: at least one replica is required");
    if (options_.engine.stepModel != StepModel::EventDriven)
        fatal("FleetEngine: the fleet simulation requires the "
              "event-driven step model");
    if (options_.dispatchLatencySeconds < 0.0)
        fatal("FleetEngine: negative dispatch latency");
    sortByArrival(trace_);
}

std::size_t
FleetEngine::pickReplica(const TimedRequest &timed)
{
    // Session stickiness precedes policy: a session's later requests
    // follow the replica its first one was routed to, so one
    // conversation's KV history never splits across replicas.
    SessionId session = timed.request.session;
    if (session != kNoSession) {
        auto it = sessionReplica_.find(session);
        if (it != sessionReplica_.end()) {
            // Keep the least-loaded signal honest for the requests
            // the pin bypasses the policy for.
            if (options_.policy == RoutePolicy::LeastLoaded)
                loads_[it->second] += static_cast<double>(
                    timed.request.contextTokens +
                    timed.request.decodeTokens);
            return it->second;
        }
    }
    std::size_t pick;
    if (options_.policy == RoutePolicy::RoundRobin) {
        pick = rrNext_;
        rrNext_ = (rrNext_ + 1) % options_.replicas;
    } else {
        std::size_t best = 0;
        for (std::size_t i = 1; i < loads_.size(); ++i)
            if (loads_[i] < loads_[best])
                best = i;
        loads_[best] +=
            static_cast<double>(timed.request.contextTokens +
                                timed.request.decodeTokens);
        pick = best;
    }
    if (session != kNoSession)
        sessionReplica_.emplace(session, pick);
    return pick;
}

void
FleetEngine::setSessions(SessionBook sessions)
{
    if (ran_)
        fatal("FleetEngine::setSessions() after run()");
    sessions_ = std::move(sessions);
}

FleetResult
FleetEngine::run()
{
    if (ran_)
        fatal("FleetEngine::run() may be called once");
    ran_ = true;

    const std::size_t R = options_.replicas;
    const double d = options_.dispatchLatencySeconds;

    std::vector<std::unique_ptr<ServingEngine>> engines;
    engines.reserve(R);
    for (std::size_t i = 0; i < R; ++i) {
        auto eng = std::make_unique<ServingEngine>(
            cluster_, model_, std::vector<TimedRequest>{},
            options_.engine);
        // Every replica learns the full class/tenant shape of the
        // trace up front, exactly as a bare engine would from its
        // constructor, even though it will receive only a routed
        // subset.
        eng->declareWorkload(trace_);
        // Likewise the full session book: a successor turn fires
        // only on the replica that completes its predecessor, so a
        // session's turns chain wherever its turn 0 was routed.
        if (!sessions_.empty())
            eng->declareSessionTurns(sessions_);
        eng->prepare();
        engines.push_back(std::move(eng));
    }

    FleetResult fleet;
    fleet.routedRequests.assign(R, 0);
    fleet.routedSessions.assign(R, 0);
    loads_.assign(R, 0.0);

    std::vector<std::vector<TimedRequest>> batches(R);
    std::size_t next = 0; // next unrouted trace index

    auto refreshLoads = [&]() {
        if (options_.policy != RoutePolicy::LeastLoaded)
            return;
        for (std::size_t i = 0; i < R; ++i)
            loads_[i] = engines[i]->queuedTokens();
    };
    auto routeDue = [&](double barrier, double delay) {
        for (std::size_t i = 0; i < R; ++i)
            batches[i].clear();
        while (next < trace_.size() &&
               trace_[next].arrivalSeconds <= barrier) {
            TimedRequest timed = trace_[next++];
            std::size_t r = pickReplica(timed);
            timed.arrivalSeconds += delay;
            batches[r].push_back(timed);
            ++fleet.routedRequests[r];
        }
        for (std::size_t i = 0; i < R; ++i)
            if (!batches[i].empty())
                engines[i]->injectArrivals(batches[i]);
    };
    auto allDrained = [&]() {
        for (const auto &eng : engines)
            if (!eng->drained())
                return false;
        return true;
    };

    if (d <= 0.0) {
        // Zero lookahead: serial lockstep. For each distinct arrival
        // time, advance every replica to it (index order), route
        // with replica state at that instant, inject with no delay.
        while (next < trace_.size()) {
            double t = trace_[next].arrivalSeconds;
            for (auto &eng : engines)
                eng->advanceTo(t);
            refreshLoads();
            routeDue(t, 0.0);
            ++fleet.windows;
        }
        for (auto &eng : engines)
            eng->advanceTo(std::numeric_limits<double>::infinity());
        ++fleet.windows; // final drain
    } else {
        // Conservative windows of width W = d. At barrier B_j route
        // everything with t <= B_j (delivery t + d <= B_{j+1}), then
        // advance all replicas to B_{j+1} in parallel: every event
        // inside the window is already known to its replica.
        //
        // Router-idle barriers are skipped: a barrier that routes
        // nothing neither reads nor changes replica state, so
        // advancing straight to the next barrier with a routable
        // arrival dispatches the identical event sequence (runUntil
        // horizons compose) while batching the per-window pool
        // hand-off into usefully large chunks of work.
        SweepRunner runner(options_.threads);
        std::uint64_t j = 0;
        while (next < trace_.size()) {
            double t_next = trace_[next].arrivalSeconds;
            if (t_next > 0.0) {
                // First barrier that can route t_next (t <= j * W).
                auto jump = static_cast<std::uint64_t>(
                    std::ceil(t_next / d));
                // FP rounding may land one barrier short; the loop
                // below routes nothing there and retries at the
                // next, so correctness is unaffected either way.
                j = std::max(j, jump);
            }
            // Advance everyone to the routing barrier first (one
            // batched parallel advance across the skipped idle
            // windows), so the router reads replica state — the
            // least-loaded signal — at exactly the barrier instant,
            // as an unbatched window-by-window loop would.
            double barrier = static_cast<double>(j) * d;
            runner.forEach(R, [&](std::size_t i) {
                engines[i]->advanceTo(barrier);
            });
            refreshLoads();
            // Deliveries land in (B_j, B_{j+1}]: ahead of every
            // replica's advanced horizon, never behind it.
            routeDue(barrier, d);
            ++fleet.windows;
            ++j;
        }
        // Every request is routed and injected, so no cross-replica
        // event can occur again: the remaining work is one
        // independent drain per replica.
        runner.forEach(R, [&](std::size_t i) {
            engines[i]->advanceTo(
                std::numeric_limits<double>::infinity());
        });
        ++fleet.windows;
    }

    fleet.replicas.reserve(R);
    for (auto &eng : engines)
        fleet.replicas.push_back(eng->finalize());
    fleet.aggregate = aggregateResults(fleet.replicas);
    for (const auto &kv : sessionReplica_)
        ++fleet.routedSessions[kv.second];
    return fleet;
}

EngineResult
FleetEngine::aggregateResults(const std::vector<EngineResult> &results)
{
    EngineResult agg;

    // Weighted-average accumulators: (sum of value * weight, sum of
    // weight) pairs folded into the mean at the end.
    double lat_w = 0.0, lat_sum = 0.0;
    double ttft_w = 0.0, ttft_sum = 0.0;
    double gap_w = 0.0, gap_sum = 0.0;
    double batch_sum = 0.0, mac_sum = 0.0, cap_sum = 0.0;
    double sec_sum = 0.0;

    struct ClassAccum
    {
        EngineResult::ClassLatency out;
        double ttft_w = 0.0, ttft_sum = 0.0;
        double gap_w = 0.0, gap_sum = 0.0;
    };
    std::map<unsigned, ClassAccum> classes;

    struct TenantAccum
    {
        EngineResult::TenantOccupancy out;
        double share_sum = 0.0, share_w = 0.0;
    };
    std::map<unsigned, TenantAccum> tenants;

    for (const EngineResult &r : results) {
        agg.generatedTokens += r.generatedTokens;
        agg.completedRequests += r.completedRequests;
        agg.rejectedRequests += r.rejectedRequests;
        agg.preemptions += r.preemptions;
        agg.simEvents += r.simEvents;
        agg.sloDeferrals += r.sloDeferrals;
        agg.chunkSlices += r.chunkSlices;
        agg.decodeOvertakes += r.decodeOvertakes;
        agg.decodePreemptSlices += r.decodePreemptSlices;
        agg.tierInversions += r.tierInversions;
        agg.budgetDeferrals += r.budgetDeferrals;

        agg.attentionSeconds += r.attentionSeconds;
        agg.fcSeconds += r.fcSeconds;
        agg.prefillSeconds += r.prefillSeconds;
        agg.xpuPrefillBusySeconds += r.xpuPrefillBusySeconds;
        agg.attentionEnergy += r.attentionEnergy;
        agg.fcEnergy += r.fcEnergy;

        agg.simulatedSeconds =
            std::max(agg.simulatedSeconds, r.simulatedSeconds);
        agg.maxDecodeXpuWaitSeconds = std::max(
            agg.maxDecodeXpuWaitSeconds, r.maxDecodeXpuWaitSeconds);
        agg.maxTierInversionWaitSeconds =
            std::max(agg.maxTierInversionWaitSeconds,
                     r.maxTierInversionWaitSeconds);
        agg.p95RequestLatency =
            std::max(agg.p95RequestLatency, r.p95RequestLatency);
        agg.p95FirstTokenSeconds =
            std::max(agg.p95FirstTokenSeconds, r.p95FirstTokenSeconds);
        agg.p95TokenGapSeconds =
            std::max(agg.p95TokenGapSeconds, r.p95TokenGapSeconds);

        double w = static_cast<double>(r.completedRequests);
        lat_w += w;
        lat_sum += r.avgRequestLatency * w;
        double fw = static_cast<double>(r.firstTokenLatency.size());
        ttft_w += fw;
        ttft_sum += r.avgFirstTokenSeconds * fw;
        double gw = static_cast<double>(r.generatedTokens) -
                    static_cast<double>(r.firstTokenLatency.size());
        gw = std::max(gw, 0.0);
        gap_w += gw;
        gap_sum += r.avgTokenGapSeconds * gw;

        batch_sum += r.avgEffectiveBatch * r.simulatedSeconds;
        mac_sum += r.macUtilization * r.simulatedSeconds;
        cap_sum += r.capacityUtilization * r.simulatedSeconds;
        sec_sum += r.simulatedSeconds;

        for (const auto &kv : r.firstTokenLatency)
            agg.firstTokenLatency[kv.first] = kv.second;
        for (const auto &kv : r.completionSeconds)
            agg.completionSeconds[kv.first] = kv.second;

        for (const auto &cl : r.classLatencies) {
            ClassAccum &ca = classes[cl.tier];
            ca.out.tier = cl.tier;
            ca.out.gapSloTargetSeconds = std::max(
                ca.out.gapSloTargetSeconds, cl.gapSloTargetSeconds);
            ca.out.requests += cl.requests;
            ca.out.completedRequests += cl.completedRequests;
            double cw = static_cast<double>(cl.completedRequests);
            ca.ttft_w += cw;
            ca.ttft_sum += cl.avgFirstTokenSeconds * cw;
            ca.gap_w += cw;
            ca.gap_sum += cl.avgTokenGapSeconds * cw;
            ca.out.p95FirstTokenSeconds = std::max(
                ca.out.p95FirstTokenSeconds, cl.p95FirstTokenSeconds);
            ca.out.p95TokenGapSeconds = std::max(
                ca.out.p95TokenGapSeconds, cl.p95TokenGapSeconds);
        }

        for (const auto &to : r.tenantOccupancy) {
            TenantAccum &ta = tenants[to.tenant];
            ta.out.tenant = to.tenant;
            ta.out.budgetShare =
                std::max(ta.out.budgetShare, to.budgetShare);
            ta.out.admittedRequests += to.admittedRequests;
            ta.out.budgetDeferrals += to.budgetDeferrals;
            ta.out.peakTokenShare =
                std::max(ta.out.peakTokenShare, to.peakTokenShare);
            ta.share_sum += to.avgTokenShare * r.simulatedSeconds;
            ta.share_w += r.simulatedSeconds;
        }
    }

    if (agg.simulatedSeconds > 0.0)
        agg.tokensPerSecond = static_cast<double>(agg.generatedTokens) /
                              agg.simulatedSeconds;
    if (lat_w > 0.0)
        agg.avgRequestLatency = lat_sum / lat_w;
    if (ttft_w > 0.0)
        agg.avgFirstTokenSeconds = ttft_sum / ttft_w;
    if (gap_w > 0.0)
        agg.avgTokenGapSeconds = gap_sum / gap_w;
    if (agg.simulatedSeconds > 0.0)
        // Sum of per-replica concurrent batches, time-averaged over
        // the fleet makespan.
        agg.avgEffectiveBatch = batch_sum / agg.simulatedSeconds;
    if (sec_sum > 0.0) {
        agg.macUtilization = mac_sum / sec_sum;
        agg.capacityUtilization = cap_sum / sec_sum;
    }

    for (auto &kv : classes) {
        ClassAccum &ca = kv.second;
        if (ca.ttft_w > 0.0)
            ca.out.avgFirstTokenSeconds = ca.ttft_sum / ca.ttft_w;
        if (ca.gap_w > 0.0)
            ca.out.avgTokenGapSeconds = ca.gap_sum / ca.gap_w;
        agg.classLatencies.push_back(ca.out);
    }
    for (auto &kv : tenants) {
        TenantAccum &ta = kv.second;
        if (ta.share_w > 0.0)
            ta.out.avgTokenShare = ta.share_sum / ta.share_w;
        agg.tenantOccupancy.push_back(ta.out);
    }
    return agg;
}

} // namespace pimphony
