#include "system/fleet.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace pimphony {

std::string
routePolicyName(RoutePolicy policy)
{
    switch (policy) {
      case RoutePolicy::RoundRobin:     return "round-robin";
      case RoutePolicy::LeastLoaded:    return "least-loaded";
      case RoutePolicy::PrefixAffinity: return "prefix-affinity";
    }
    return "?";
}

std::string
replicaHealthName(ReplicaHealth health)
{
    switch (health) {
      case ReplicaHealth::Up:        return "up";
      case ReplicaHealth::Degraded:  return "degraded";
      case ReplicaHealth::Draining:  return "draining";
      case ReplicaHealth::Down:      return "down";
      case ReplicaHealth::Reloading: return "reloading";
    }
    return "?";
}

FleetEngine::FleetEngine(const ClusterConfig &cluster,
                         const LlmConfig &model,
                         std::vector<TimedRequest> trace,
                         const FleetOptions &options)
    : cluster_(cluster), model_(model), trace_(std::move(trace)),
      options_(options)
{
    if (options_.replicas == 0)
        fatal("FleetEngine: at least one replica is required");
    if (options_.engine.stepModel != StepModel::EventDriven)
        fatal("FleetEngine: the fleet simulation requires the "
              "event-driven step model");
    if (options_.dispatchLatencySeconds < 0.0)
        fatal("FleetEngine: negative dispatch latency");
    sortByArrival(trace_);
}

std::size_t
FleetEngine::pickReplica(const TimedRequest &timed)
{
    const std::size_t R = options_.replicas;
    // Session stickiness precedes policy: a session's later requests
    // follow the replica its first one was routed to, so one
    // conversation's KV history never splits across replicas. A pin
    // to a replica that stopped accepting traffic is dropped — the
    // session re-pins below and its history re-prefills wherever it
    // lands (the context tokens are charged again, honestly).
    SessionId session = timed.request.session;
    if (session != kNoSession) {
        auto it = sessionReplica_.find(session);
        if (it != sessionReplica_.end()) {
            if (routable_[it->second]) {
                // Keep the load signal honest for the requests the
                // pin bypasses the policy for.
                if (usesLoads())
                    loads_[it->second] += static_cast<double>(
                        timed.request.contextTokens +
                        timed.request.decodeTokens);
                return it->second;
            }
            sessionReplica_.erase(it);
        }
    }
    std::size_t pick;
    if (options_.policy == RoutePolicy::RoundRobin) {
        // Strict cycling over the routable replicas: callers
        // guarantee at least one, so the skip loop terminates.
        pick = rrNext_ % R;
        while (!routable_[pick])
            pick = (pick + 1) % R;
        rrNext_ = (pick + 1) % R;
    } else {
        std::size_t best = R; // sentinel: first routable wins
        if (options_.policy == RoutePolicy::PrefixAffinity) {
            // Warmest cache wins; ties fall to the lighter load,
            // then the lower index. All-cold requests drop through
            // to the exact least-loaded decision, so the policy is
            // decision-identical to LeastLoaded when caching is off.
            if (engines_ == nullptr)
                panic("fleet: prefix-affinity routing outside run()");
            Tokens warmest = 0;
            for (std::size_t i = 0; i < R; ++i) {
                if (!routable_[i])
                    continue;
                Tokens warm =
                    (*engines_)[i]->prefixWarmTokens(timed.request);
                if (warm > warmest ||
                    (warm == warmest && warm > 0 && best != R &&
                     loads_[i] < loads_[best])) {
                    warmest = warm;
                    best = i;
                }
            }
        }
        if (best == R)
            for (std::size_t i = 0; i < R; ++i)
                if (routable_[i] &&
                    (best == R || loads_[i] < loads_[best]))
                    best = i;
        loads_[best] +=
            static_cast<double>(timed.request.contextTokens +
                                timed.request.decodeTokens);
        pick = best;
    }
    if (session != kNoSession)
        sessionReplica_.emplace(session, pick);
    return pick;
}

void
FleetEngine::setSessions(SessionBook sessions)
{
    if (ran_)
        fatal("FleetEngine::setSessions() after run()");
    sessions_ = std::move(sessions);
}

FleetResult
FleetEngine::run()
{
    if (ran_)
        fatal("FleetEngine::run() may be called once");
    ran_ = true;

    const std::size_t R = options_.replicas;
    const double d = options_.dispatchLatencySeconds;

    std::vector<std::unique_ptr<ServingEngine>> engines;
    engines.reserve(R);
    for (std::size_t i = 0; i < R; ++i) {
        auto eng = std::make_unique<ServingEngine>(
            cluster_, model_, std::vector<TimedRequest>{},
            options_.engine);
        // Every replica learns the full class/tenant shape of the
        // trace up front, exactly as a bare engine would from its
        // constructor, even though it will receive only a routed
        // subset.
        eng->declareWorkload(trace_);
        // Likewise the full session book: a successor turn fires
        // only on the replica that completes its predecessor, so a
        // session's turns chain wherever its turn 0 was routed.
        if (!sessions_.empty())
            eng->declareSessionTurns(sessions_);
        eng->prepare();
        engines.push_back(std::move(eng));
    }
    // Warmth probes for PrefixAffinity routing. `engines` is local
    // to run(), so the view must be cleared before returning or the
    // pointer dangles.
    engines_ = &engines;

    FleetResult fleet;
    fleet.routedRequests.assign(R, 0);
    fleet.routedSessions.assign(R, 0);
    loads_.assign(R, 0.0);
    health_.assign(R, ReplicaHealth::Up);
    routable_.assign(R, 1);
    downIntervals_.assign(R, {});

    std::vector<std::vector<TimedRequest>> batches(R);
    std::size_t next = 0; // next unrouted trace index

    auto refreshLoads = [&]() {
        if (!usesLoads())
            return;
        for (std::size_t i = 0; i < R; ++i)
            loads_[i] = engines[i]->queuedTokens();
    };
    auto routeDue = [&](double barrier, double delay) {
        for (std::size_t i = 0; i < R; ++i)
            batches[i].clear();
        while (next < trace_.size() &&
               trace_[next].arrivalSeconds <= barrier) {
            TimedRequest timed = trace_[next++];
            std::size_t r = pickReplica(timed);
            timed.arrivalSeconds += delay;
            batches[r].push_back(timed);
            ++fleet.routedRequests[r];
        }
        for (std::size_t i = 0; i < R; ++i)
            if (!batches[i].empty())
                engines[i]->injectArrivals(batches[i]);
    };
    if (!options_.faults.empty()) {
        // Fault injection takes the state-machine loop; the
        // fault-free paths below stay untouched so an empty schedule
        // is bit-identical to the pre-fault fleet.
        runWithFaults(engines, fleet, next);
    } else if (d <= 0.0) {
        // Zero lookahead: serial lockstep. For each distinct arrival
        // time, advance every replica to it (index order), route
        // with replica state at that instant, inject with no delay.
        while (next < trace_.size()) {
            double t = trace_[next].arrivalSeconds;
            for (auto &eng : engines)
                eng->advanceTo(t);
            refreshLoads();
            routeDue(t, 0.0);
            ++fleet.windows;
        }
        for (auto &eng : engines)
            eng->advanceTo(std::numeric_limits<double>::infinity());
        ++fleet.windows; // final drain
    } else {
        // Conservative windows of width W = d. At barrier B_j route
        // everything with t <= B_j (delivery t + d <= B_{j+1}), then
        // advance all replicas to B_{j+1} in parallel: every event
        // inside the window is already known to its replica.
        //
        // Router-idle barriers are skipped: a barrier that routes
        // nothing neither reads nor changes replica state, so
        // advancing straight to the next barrier with a routable
        // arrival dispatches the identical event sequence (runUntil
        // horizons compose) while batching the per-window pool
        // hand-off into usefully large chunks of work.
        SweepRunner runner(options_.threads);
        std::uint64_t j = 0;
        while (next < trace_.size()) {
            double t_next = trace_[next].arrivalSeconds;
            if (t_next > 0.0) {
                // First barrier that can route t_next (t <= j * W).
                auto jump = static_cast<std::uint64_t>(
                    std::ceil(t_next / d));
                // FP rounding may land one barrier short; the loop
                // below routes nothing there and retries at the
                // next, so correctness is unaffected either way.
                j = std::max(j, jump);
            }
            // Advance everyone to the routing barrier first (one
            // batched parallel advance across the skipped idle
            // windows), so the router reads replica state — the
            // least-loaded signal — at exactly the barrier instant,
            // as an unbatched window-by-window loop would.
            double barrier = static_cast<double>(j) * d;
            runner.forEach(R, [&](std::size_t i) {
                engines[i]->advanceTo(barrier);
            });
            refreshLoads();
            // Deliveries land in (B_j, B_{j+1}]: ahead of every
            // replica's advanced horizon, never behind it.
            routeDue(barrier, d);
            ++fleet.windows;
            ++j;
        }
        // Every request is routed and injected, so no cross-replica
        // event can occur again: the remaining work is one
        // independent drain per replica.
        runner.forEach(R, [&](std::size_t i) {
            engines[i]->advanceTo(
                std::numeric_limits<double>::infinity());
        });
        ++fleet.windows;
    }

    fleet.replicas.reserve(R);
    for (auto &eng : engines)
        fleet.replicas.push_back(eng->finalize());
    fleet.aggregate = aggregateResults(fleet.replicas);
    for (const auto &kv : sessionReplica_)
        ++fleet.routedSessions[kv.second];

    // Goodput: decode tokens of requests that actually completed
    // somewhere (integer sums, so iteration order cannot perturb
    // the result). The throughput basis (generatedTokens) also
    // counts partial decodes a crash discarded.
    std::unordered_map<RequestId, Tokens> decode_of;
    decode_of.reserve(trace_.size() + sessions_.size());
    for (const TimedRequest &timed : trace_)
        decode_of[timed.request.id] = timed.request.decodeTokens;
    for (const auto &kv : sessions_)
        decode_of[kv.second.request.id] =
            kv.second.request.decodeTokens;
    for (const EngineResult &r : fleet.replicas)
        for (const auto &kv : r.completionSeconds) {
            auto it = decode_of.find(kv.first);
            if (it != decode_of.end())
                fleet.goodputTokens += it->second;
        }
    double makespan = fleet.aggregate.simulatedSeconds;
    if (makespan > 0.0)
        fleet.goodputTokensPerSecond =
            static_cast<double>(fleet.goodputTokens) / makespan;

    // Availability: the routable share of the makespan, from the
    // nominal fault-transition times recorded during the run.
    fleet.availability.assign(R, 1.0);
    if (makespan > 0.0) {
        for (std::size_t i = 0; i < R; ++i) {
            double down = 0.0;
            for (const auto &iv : downIntervals_[i]) {
                double lo = std::min(iv.first, makespan);
                double hi = iv.second < 0.0
                                ? makespan
                                : std::min(iv.second, makespan);
                down += std::max(hi - lo, 0.0);
            }
            fleet.availability[i] =
                std::min(std::max(1.0 - down / makespan, 0.0), 1.0);
        }
    }
    engines_ = nullptr; // the probed vector dies with this frame
    return fleet;
}

void
FleetEngine::runWithFaults(
    std::vector<std::unique_ptr<ServingEngine>> &engines,
    FleetResult &fleet, std::size_t &next)
{
    const std::size_t R = options_.replicas;
    const double d = options_.dispatchLatencySeconds;
    const bool windowed = d > 0.0;
    const double inf = std::numeric_limits<double>::infinity();

    options_.faults.validate(options_.replicas);

    // Normalize the schedule into one global transition list: each
    // scripted event expands to its state-machine edges (a draining
    // crash becomes DrainStart + Kill, a degrade becomes its start
    // and end, a recover its reload start and completion), sorted by
    // nominal time with ties broken by replica index (stable sort
    // over the replica-major build order).
    enum Kind {
        kDrainStart,
        kKill,
        kDegradeStart,
        kDegradeEnd,
        kReloadStart,
        kReloadDone
    };
    struct Transition
    {
        double at;
        std::size_t replica;
        Kind kind;
        double value;
    };
    std::vector<Transition> plan;
    for (std::size_t r = 0; r < options_.faults.replicas.size(); ++r) {
        for (const FaultEvent &e : options_.faults.replicas[r]) {
            switch (e.kind) {
              case FaultEvent::Kind::Crash:
                if (e.drainSeconds > 0.0) {
                    plan.push_back({e.atSeconds, r, kDrainStart, 0.0});
                    plan.push_back({e.atSeconds + e.drainSeconds, r,
                                    kKill, 0.0});
                } else {
                    plan.push_back({e.atSeconds, r, kKill, 0.0});
                }
                break;
              case FaultEvent::Kind::Degrade:
                plan.push_back({e.atSeconds, r, kDegradeStart,
                                e.slowdownFactor});
                plan.push_back({e.atSeconds + e.durationSeconds, r,
                                kDegradeEnd, 0.0});
                break;
              case FaultEvent::Kind::Recover:
                plan.push_back({e.atSeconds, r, kReloadStart, 0.0});
                plan.push_back({e.atSeconds + e.modelReloadSeconds, r,
                                kReloadDone, e.modelReloadSeconds});
                break;
            }
        }
    }
    std::stable_sort(plan.begin(), plan.end(),
                     [](const Transition &a, const Transition &b) {
                         return a.at < b.at;
                     });
    std::size_t next_tr = 0;

    std::deque<PendingRetry> retries; // nondecreasing arrival order
    std::unordered_map<RequestId, unsigned> attempts;
    std::vector<std::vector<TimedRequest>> batches(R);

    auto any_routable = [&]() {
        for (std::size_t i = 0; i < R; ++i)
            if (routable_[i])
                return true;
        return false;
    };
    auto set_unroutable = [&](std::size_t r, double at) {
        if (!routable_[r])
            return;
        routable_[r] = 0;
        downIntervals_[r].push_back({at, -1.0});
    };
    auto set_routable = [&](std::size_t r, double at) {
        if (routable_[r])
            return;
        routable_[r] = 1;
        downIntervals_[r].back().second = at;
    };
    auto drop_pins = [&](std::size_t r) {
        // Sessions pinned to a dead replica re-pin on their next
        // turn (pickReplica re-pins once the pin is gone).
        for (auto it = sessionReplica_.begin();
             it != sessionReplica_.end();) {
            if (it->second == r)
                it = sessionReplica_.erase(it);
            else
                ++it;
        }
    };
    auto queue_retry = [&](const TimedRequest &timed, double at) {
        unsigned &k = attempts[timed.request.id];
        ++k;
        if (k > options_.retryBudget) {
            ++fleet.lostRequests;
            return;
        }
        ++fleet.retriedRequests;
        // Deterministic exponential backoff from the displacing
        // fault: retry k is re-offered base * 2^(k-1) later.
        double backoff =
            options_.retryBackoffSeconds *
            std::ldexp(1.0, static_cast<int>(k) - 1);
        PendingRetry again{timed, k};
        again.timed.arrivalSeconds =
            std::max(timed.arrivalSeconds, at) + backoff;
        retries.push_back(again);
    };
    auto sort_retries = [&]() {
        std::stable_sort(retries.begin(), retries.end(),
                         [](const PendingRetry &a,
                            const PendingRetry &b) {
                             return a.timed.arrivalSeconds <
                                    b.timed.arrivalSeconds;
                         });
    };
    auto sweep_strays = [&](double at) {
        // Unroutable replicas may still receive closed-loop session
        // releases (a predecessor completed just before the fault);
        // migrate anything that queued up on them.
        bool swept = false;
        for (std::size_t r = 0; r < R; ++r) {
            if (routable_[r])
                continue;
            auto ev = engines[r]->evacuate(false);
            fleet.evacuatedRequests += ev.queued.size();
            for (const TimedRequest &timed : ev.queued) {
                queue_retry(timed, at);
                swept = true;
            }
        }
        return swept;
    };
    auto apply_transitions = [&](double barrier) {
        while (next_tr < plan.size() && plan[next_tr].at <= barrier) {
            const Transition &tr = plan[next_tr++];
            std::size_t r = tr.replica;
            switch (tr.kind) {
              case kDrainStart: {
                health_[r] = ReplicaHealth::Draining;
                set_unroutable(r, tr.at);
                // Graceful drain: queued work migrates now,
                // in-flight work keeps the grace period.
                auto ev = engines[r]->evacuate(false);
                fleet.evacuatedRequests += ev.queued.size();
                for (const TimedRequest &timed : ev.queued)
                    queue_retry(timed, tr.at);
                drop_pins(r);
                break;
              }
              case kKill: {
                health_[r] = ReplicaHealth::Down;
                set_unroutable(r, tr.at);
                auto ev = engines[r]->evacuate(true);
                fleet.evacuatedRequests += ev.queued.size();
                fleet.lostTokens += ev.lostTokens;
                for (const TimedRequest &timed : ev.queued)
                    queue_retry(timed, tr.at);
                for (const TimedRequest &timed : ev.inFlight)
                    queue_retry(timed, tr.at);
                drop_pins(r);
                break;
              }
              case kDegradeStart:
                if (health_[r] == ReplicaHealth::Up)
                    health_[r] = ReplicaHealth::Degraded;
                engines[r]->setServiceRateScale(tr.value);
                break;
              case kDegradeEnd:
                if (health_[r] == ReplicaHealth::Degraded)
                    health_[r] = ReplicaHealth::Up;
                engines[r]->setServiceRateScale(1.0);
                break;
              case kReloadStart:
                if (health_[r] == ReplicaHealth::Down)
                    health_[r] = ReplicaHealth::Reloading;
                break;
              case kReloadDone:
                // Fresh process: full speed, accepting traffic.
                engines[r]->setServiceRateScale(1.0);
                engines[r]->restoreService();
                health_[r] = ReplicaHealth::Up;
                fleet.reloadSeconds += tr.value;
                set_routable(r, tr.at);
                break;
            }
        }
        sweep_strays(barrier);
        sort_retries();
    };
    auto refresh_loads = [&]() {
        if (!usesLoads())
            return;
        for (std::size_t i = 0; i < R; ++i)
            loads_[i] = engines[i]->queuedTokens();
    };
    auto route_due = [&](double barrier) {
        // Merge the trace and retry streams in arrival order and
        // route everything due. Deliveries keep the fault-free
        // stamp (arrival + d) clamped up to the barrier: a backlog
        // held through an outage may carry arrivals older than the
        // replicas' advanced horizons, and the clamp keeps every
        // injection at or ahead of them — the conservative-ordering
        // contract injectArrivals requires. In-order flow always
        // has arrival + d > barrier, so a schedule whose faults
        // never displace work routes bit-identically to the
        // fault-free loop.
        for (std::size_t i = 0; i < R; ++i)
            batches[i].clear();
        for (;;) {
            bool trace_due = next < trace_.size() &&
                             trace_[next].arrivalSeconds <= barrier;
            bool retry_due =
                !retries.empty() &&
                retries.front().timed.arrivalSeconds <= barrier;
            if (!trace_due && !retry_due)
                break;
            bool take_trace =
                trace_due &&
                (!retry_due ||
                 trace_[next].arrivalSeconds <=
                     retries.front().timed.arrivalSeconds);
            TimedRequest timed;
            if (take_trace) {
                timed = trace_[next++];
            } else {
                timed = retries.front().timed;
                retries.pop_front();
            }
            std::size_t r = pickReplica(timed);
            timed.arrivalSeconds =
                std::max(timed.arrivalSeconds + d, barrier);
            batches[r].push_back(timed);
            ++fleet.routedRequests[r];
        }
        for (std::size_t i = 0; i < R; ++i)
            if (!batches[i].empty())
                engines[i]->injectArrivals(batches[i]);
    };

    // Lockstep (d <= 0) advances serially in index order exactly as
    // the fault-free path does; the pool only exists for windows.
    SweepRunner runner(windowed ? options_.threads : 1);
    auto advance_all = [&](double horizon) {
        if (windowed)
            runner.forEach(R, [&](std::size_t i) {
                engines[i]->advanceTo(horizon);
            });
        else
            for (auto &eng : engines)
                eng->advanceTo(horizon);
    };

    std::uint64_t j = 0;
    while (next < trace_.size() || !retries.empty() ||
           next_tr < plan.size()) {
        // The next instant the router must act on: the next fault
        // transition always; trace arrivals and retries only while
        // someone can take them (during a total outage they queue
        // until a recovery transition).
        double t_next = inf;
        if (next_tr < plan.size())
            t_next = plan[next_tr].at;
        if (any_routable()) {
            if (next < trace_.size())
                t_next = std::min(t_next,
                                  trace_[next].arrivalSeconds);
            if (!retries.empty())
                t_next = std::min(
                    t_next, retries.front().timed.arrivalSeconds);
        }
        if (t_next == inf) {
            // The whole fleet is down with no recovery scripted:
            // every remaining request is lost.
            fleet.lostRequests += trace_.size() - next;
            next = trace_.size();
            fleet.lostRequests += retries.size();
            retries.clear();
            break;
        }
        double barrier;
        if (windowed) {
            if (t_next > 0.0)
                j = std::max(j, static_cast<std::uint64_t>(
                                    std::ceil(t_next / d)));
            barrier = static_cast<double>(j) * d;
        } else {
            barrier = t_next;
        }
        advance_all(barrier);
        apply_transitions(barrier);
        refresh_loads();
        if (any_routable())
            route_due(barrier);
        ++fleet.windows;
        if (windowed)
            ++j;
    }

    // Drain, then sweep stranded session releases off unroutable
    // replicas until quiescent (a successor released during the
    // drain may land on a halted replica and need one more hop).
    for (;;) {
        advance_all(inf);
        ++fleet.windows;
        double at = 0.0;
        for (const auto &eng : engines)
            at = std::max(at, eng->now());
        if (!sweep_strays(at))
            break;
        sort_retries();
        if (retries.empty())
            continue; // swept, but every stray exhausted its budget
        if (!any_routable()) {
            fleet.lostRequests += retries.size();
            retries.clear();
            break;
        }
        refresh_loads();
        route_due(std::max(at, retries.back().timed.arrivalSeconds));
    }

    // Retry histogram over the requests a fault ever displaced:
    // [k] = requests re-routed exactly k times (budget-capped).
    fleet.retryHistogram.assign(options_.retryBudget + 1, 0);
    for (const auto &kv : attempts)
        ++fleet.retryHistogram[std::min<unsigned>(
            kv.second, options_.retryBudget)];
}

EngineResult
FleetEngine::aggregateResults(const std::vector<EngineResult> &results)
{
    EngineResult agg;

    // Weighted-average accumulators: (sum of value * weight, sum of
    // weight) pairs folded into the mean at the end.
    double lat_w = 0.0, lat_sum = 0.0;
    double ttft_w = 0.0, ttft_sum = 0.0;
    double gap_w = 0.0, gap_sum = 0.0;
    double batch_sum = 0.0, mac_sum = 0.0, cap_sum = 0.0;
    double sec_sum = 0.0;

    struct ClassAccum
    {
        EngineResult::ClassLatency out;
        double ttft_w = 0.0, ttft_sum = 0.0;
        double gap_w = 0.0, gap_sum = 0.0;
    };
    std::map<unsigned, ClassAccum> classes;

    struct TenantAccum
    {
        EngineResult::TenantOccupancy out;
        double share_sum = 0.0, share_w = 0.0;
    };
    std::map<unsigned, TenantAccum> tenants;

    for (const EngineResult &r : results) {
        agg.generatedTokens += r.generatedTokens;
        agg.completedRequests += r.completedRequests;
        agg.rejectedRequests += r.rejectedRequests;
        agg.preemptions += r.preemptions;
        agg.simEvents += r.simEvents;
        agg.sloDeferrals += r.sloDeferrals;
        agg.chunkSlices += r.chunkSlices;
        agg.decodeOvertakes += r.decodeOvertakes;
        agg.decodePreemptSlices += r.decodePreemptSlices;
        agg.tierInversions += r.tierInversions;
        agg.budgetDeferrals += r.budgetDeferrals;
        agg.prefixHits += r.prefixHits;
        agg.prefixMisses += r.prefixMisses;
        agg.prefixEvictions += r.prefixEvictions;
        agg.prefixCachedTokens += r.prefixCachedTokens;
        agg.savedPrefillSeconds += r.savedPrefillSeconds;
        agg.sharedKvPeakBytes =
            std::max(agg.sharedKvPeakBytes, r.sharedKvPeakBytes);
        agg.uniqueKvPeakBytes =
            std::max(agg.uniqueKvPeakBytes, r.uniqueKvPeakBytes);

        agg.attentionSeconds += r.attentionSeconds;
        agg.fcSeconds += r.fcSeconds;
        agg.prefillSeconds += r.prefillSeconds;
        agg.xpuPrefillBusySeconds += r.xpuPrefillBusySeconds;
        agg.attentionEnergy += r.attentionEnergy;
        agg.fcEnergy += r.fcEnergy;

        agg.simulatedSeconds =
            std::max(agg.simulatedSeconds, r.simulatedSeconds);
        agg.maxDecodeXpuWaitSeconds = std::max(
            agg.maxDecodeXpuWaitSeconds, r.maxDecodeXpuWaitSeconds);
        agg.maxTierInversionWaitSeconds =
            std::max(agg.maxTierInversionWaitSeconds,
                     r.maxTierInversionWaitSeconds);
        agg.p95RequestLatency =
            std::max(agg.p95RequestLatency, r.p95RequestLatency);
        agg.p95FirstTokenSeconds =
            std::max(agg.p95FirstTokenSeconds, r.p95FirstTokenSeconds);
        agg.p95TokenGapSeconds =
            std::max(agg.p95TokenGapSeconds, r.p95TokenGapSeconds);

        double w = static_cast<double>(r.completedRequests);
        lat_w += w;
        lat_sum += r.avgRequestLatency * w;
        double fw = static_cast<double>(r.firstTokenLatency.size());
        ttft_w += fw;
        ttft_sum += r.avgFirstTokenSeconds * fw;
        double gw = static_cast<double>(r.generatedTokens) -
                    static_cast<double>(r.firstTokenLatency.size());
        gw = std::max(gw, 0.0);
        gap_w += gw;
        gap_sum += r.avgTokenGapSeconds * gw;

        batch_sum += r.avgEffectiveBatch * r.simulatedSeconds;
        mac_sum += r.macUtilization * r.simulatedSeconds;
        cap_sum += r.capacityUtilization * r.simulatedSeconds;
        sec_sum += r.simulatedSeconds;

        for (const auto &kv : r.firstTokenLatency)
            agg.firstTokenLatency[kv.first] = kv.second;
        for (const auto &kv : r.completionSeconds)
            agg.completionSeconds[kv.first] = kv.second;

        for (const auto &cl : r.classLatencies) {
            ClassAccum &ca = classes[cl.tier];
            ca.out.tier = cl.tier;
            ca.out.gapSloTargetSeconds = std::max(
                ca.out.gapSloTargetSeconds, cl.gapSloTargetSeconds);
            ca.out.requests += cl.requests;
            ca.out.completedRequests += cl.completedRequests;
            double cw = static_cast<double>(cl.completedRequests);
            ca.ttft_w += cw;
            ca.ttft_sum += cl.avgFirstTokenSeconds * cw;
            ca.gap_w += cw;
            ca.gap_sum += cl.avgTokenGapSeconds * cw;
            ca.out.p95FirstTokenSeconds = std::max(
                ca.out.p95FirstTokenSeconds, cl.p95FirstTokenSeconds);
            ca.out.p95TokenGapSeconds = std::max(
                ca.out.p95TokenGapSeconds, cl.p95TokenGapSeconds);
        }

        for (const auto &to : r.tenantOccupancy) {
            TenantAccum &ta = tenants[to.tenant];
            ta.out.tenant = to.tenant;
            ta.out.budgetShare =
                std::max(ta.out.budgetShare, to.budgetShare);
            ta.out.admittedRequests += to.admittedRequests;
            ta.out.budgetDeferrals += to.budgetDeferrals;
            ta.out.peakTokenShare =
                std::max(ta.out.peakTokenShare, to.peakTokenShare);
            ta.share_sum += to.avgTokenShare * r.simulatedSeconds;
            ta.share_w += r.simulatedSeconds;
        }
    }

    if (agg.simulatedSeconds > 0.0)
        agg.tokensPerSecond = static_cast<double>(agg.generatedTokens) /
                              agg.simulatedSeconds;
    if (agg.prefixHits + agg.prefixMisses > 0)
        agg.prefixHitRate =
            static_cast<double>(agg.prefixHits) /
            static_cast<double>(agg.prefixHits + agg.prefixMisses);
    if (lat_w > 0.0)
        agg.avgRequestLatency = lat_sum / lat_w;
    if (ttft_w > 0.0)
        agg.avgFirstTokenSeconds = ttft_sum / ttft_w;
    if (gap_w > 0.0)
        agg.avgTokenGapSeconds = gap_sum / gap_w;
    if (agg.simulatedSeconds > 0.0)
        // Sum of per-replica concurrent batches, time-averaged over
        // the fleet makespan.
        agg.avgEffectiveBatch = batch_sum / agg.simulatedSeconds;
    if (sec_sum > 0.0) {
        agg.macUtilization = mac_sum / sec_sum;
        agg.capacityUtilization = cap_sum / sec_sum;
    }

    for (auto &kv : classes) {
        ClassAccum &ca = kv.second;
        if (ca.ttft_w > 0.0)
            ca.out.avgFirstTokenSeconds = ca.ttft_sum / ca.ttft_w;
        if (ca.gap_w > 0.0)
            ca.out.avgTokenGapSeconds = ca.gap_sum / ca.gap_w;
        agg.classLatencies.push_back(ca.out);
    }
    for (auto &kv : tenants) {
        TenantAccum &ta = kv.second;
        if (ta.share_w > 0.0)
            ta.out.avgTokenShare = ta.share_sum / ta.share_w;
        agg.tenantOccupancy.push_back(ta.out);
    }
    return agg;
}

} // namespace pimphony
