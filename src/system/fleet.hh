/**
 * @file
 * Fleet simulation: N replica serving engines behind a request
 * router, advanced under conservative time-window synchronization.
 *
 * The router's dispatch latency d is the fleet's lookahead bound: a
 * request the router sees at time t cannot reach a replica before
 * t + d. The fleet exploits this the way conservative parallel
 * discrete-event simulation does — simulated time is cut into
 * windows of width W = d with barriers B_j = j * W. At barrier B_j
 * every trace arrival with t <= B_j is routed (delivered to its
 * replica at t + d <= B_{j+1}), so when the replicas advance through
 * the window (B_j, B_{j+1}] they already hold every event that can
 * occur inside it: no mid-window injection is possible, and each
 * replica runs its own EventQueue independently. Within a window the
 * replicas execute in parallel on a SweepRunner pool; routing and
 * result merging happen serially between windows in replica index
 * order, so a T-thread fleet is bit-identical to a serial one, and a
 * 1-replica fleet is bit-identical to a bare ServingEngine fed the
 * same (dispatch-shifted) arrivals.
 *
 * Zero lookahead (d = 0) removes the window slack, so the fleet
 * degenerates to serial lockstep: replicas advance to each distinct
 * arrival time in index order, the router reads their state at that
 * instant, and the request is injected with no dispatch delay.
 * Parallel advance would be fruitless there (every barrier is a
 * routing point), so the thread pool is bypassed regardless of the
 * configured thread count.
 */

#ifndef PIMPHONY_SYSTEM_FLEET_HH
#define PIMPHONY_SYSTEM_FLEET_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "system/engine.hh"
#include "system/fault.hh"
#include "workload/arrival.hh"
#include "workload/session.hh"

namespace pimphony {

/** How the fleet router picks a replica for each request. */
enum class RoutePolicy {
    /** Strict cycling over replicas in request order. */
    RoundRobin,

    /**
     * The replica with the fewest outstanding tokens (context +
     * remaining decode over waiting, prefilling, and decoding
     * requests), ties to the lowest index. Loads are refreshed from
     * the replicas at each window barrier and updated locally as the
     * barrier's requests are placed, so routing stays deterministic
     * and identical between serial and parallel runs.
     */
    LeastLoaded,

    /**
     * Prefix-affinity routing: the replica whose prefix cache is
     * warmest for the request (ServingEngine::prefixWarmTokens —
     * retained session KV or a cached workload prefix), ties broken
     * by the least-loaded signal and then the lowest index. A
     * request no replica is warm for falls back to the exact
     * LeastLoaded decision; with prefix caching disabled every
     * warmth reads 0, so routing is decision-identical to
     * LeastLoaded. Session pinning still precedes the policy.
     */
    PrefixAffinity,
};

std::string routePolicyName(RoutePolicy policy);

/**
 * Per-replica health as the fleet's fault state machine sees it.
 * Transitions fire at window barriers (preserving the conservative
 * parallel protocol bit for bit):
 *
 *   Up --degrade--> Degraded --degrade end--> Up
 *   Up --crash(drain > 0)--> Draining --drain end--> Down
 *   Up --crash(drain = 0)--> Down
 *   Down --recover--> Reloading --reload done--> Up
 *
 * The router routes only to Up and Degraded replicas; Draining
 * replicas finish their in-flight work but receive nothing new.
 */
enum class ReplicaHealth { Up, Degraded, Draining, Down, Reloading };

std::string replicaHealthName(ReplicaHealth health);

struct FleetOptions
{
    /** Replica serving engines behind the router. */
    unsigned replicas = 1;

    RoutePolicy policy = RoutePolicy::RoundRobin;

    /**
     * Router dispatch latency in seconds: a request routed at t
     * arrives at its replica at t + d. Doubles as the conservative
     * lookahead window width; 0 falls back to serial lockstep.
     */
    double dispatchLatencySeconds = 0.0;

    /**
     * Worker threads for the within-window replica advances
     * (SweepRunner semantics: 1 = exact inline serial path, 0 = one
     * per hardware core). Results are bit-identical across thread
     * counts by construction.
     */
    unsigned threads = 1;

    /** Per-replica engine configuration (event-driven model only). */
    EngineOptions engine;

    /**
     * Fault injection (system/fault.hh). An empty schedule runs the
     * fault-free fleet code path and is bit-identical, field for
     * field, to a FleetEngine without the fault subsystem.
     */
    FaultSchedule faults;

    /**
     * Re-route attempts a request may consume before it is declared
     * lost: every evacuation (queued work migrated off a draining or
     * crashed replica) and failover (in-flight work killed by a
     * crash) charges one attempt.
     */
    unsigned retryBudget = 3;

    /**
     * Failover backoff base: a request's k-th re-route is re-offered
     * retryBackoffSeconds * 2^(k-1) after the fault that displaced
     * it — deterministic exponential backoff, no jitter, so fault
     * runs stay bit-reproducible.
     */
    double retryBackoffSeconds = 0.5;
};

struct FleetResult
{
    /**
     * Fleet-level roll-up of the per-replica results. Counters
     * (tokens, requests, events, energies, policy metrics) are sums;
     * simulatedSeconds is the fleet makespan (max over replicas) and
     * tokensPerSecond the fleet throughput over it; averages are
     * weighted by each replica's sample count; p95s are the max over
     * replicas — a conservative bound, since exact fleet percentiles
     * would need the merged sample sets the replicas no longer hold.
     * A deterministic function of the per-replica results.
     */
    EngineResult aggregate;

    /** Per-replica results, in replica index order. */
    std::vector<EngineResult> replicas;

    /** Requests routed to each replica, in replica index order. */
    std::vector<std::uint64_t> routedRequests;

    /**
     * Distinct sessions pinned to each replica, in replica index
     * order (all zeros for a session-free trace). A session counts
     * toward the replica its first-routed turn landed on; later
     * turns follow the pin.
     */
    std::vector<std::uint64_t> routedSessions;

    /**
     * Synchronization rounds executed: parallel window advances
     * under positive lookahead, per-arrival-time lockstep barriers
     * under zero lookahead, plus the final drain in both modes.
     * Router-idle barriers (nothing routable at or before them) are
     * skipped — they neither read nor change replica state, so
     * jumping to the next router-active barrier dispatches the
     * identical event sequence — and once the trace is exhausted
     * the remaining work is one independent drain per replica.
     */
    std::uint64_t windows = 0;

    // --- Fault-tolerance metrics. All zeros / trivial (availability
    // --- 1.0, empty histogram) without a fault schedule.

    /**
     * Per-replica up-time fraction of the fleet makespan: the share
     * of time the replica was routable (Up or Degraded). 1.0
     * everywhere without faults.
     */
    std::vector<double> availability;

    /**
     * Decode tokens of requests that actually completed (the tokens
     * a user received). aggregate.generatedTokens also counts
     * partial decodes a crash discarded, so goodputTokens <=
     * generatedTokens measures fault damage.
     */
    std::uint64_t goodputTokens = 0;

    /** goodputTokens over the fleet makespan. */
    double goodputTokensPerSecond = 0.0;

    /** Queued requests migrated off draining/crashed replicas. */
    std::uint64_t evacuatedRequests = 0;

    /** Re-route injections performed (evacuations + failovers). */
    std::uint64_t retriedRequests = 0;

    /** Requests dropped after exhausting the retry budget, plus any
     *  stranded by a fleet that never recovered. */
    std::uint64_t lostRequests = 0;

    /** Decode tokens of in-flight progress discarded by crashes. */
    std::uint64_t lostTokens = 0;

    /**
     * retryHistogram[k] = requests re-routed exactly k times
     * (capped at retryBudget; the k = 0 bucket is used only when
     * retryBudget is 0). Empty without a fault schedule.
     */
    std::vector<std::uint64_t> retryHistogram;

    /** Total model-reload seconds charged across recoveries. */
    double reloadSeconds = 0.0;
};

/**
 * Router + N replica ServingEngines over one open-loop trace.
 * Requires the event-driven step model (the resumable engine
 * interface); run() may be called once.
 */
class FleetEngine
{
  public:
    FleetEngine(const ClusterConfig &cluster, const LlmConfig &model,
                std::vector<TimedRequest> trace,
                const FleetOptions &options);

    /**
     * Declare the closed-loop successor turns of the trace's
     * sessions (workload/session.hh) before run(). Every replica
     * learns the full book; a successor fires only on the replica
     * that completes its predecessor, so a session's turns stay on
     * the replica its turn 0 was routed to. The router additionally
     * pins session identity (Request::session) at first sight: if a
     * session somehow reappears in the open-loop trace, its later
     * requests follow the pin rather than the policy.
     */
    void setSessions(SessionBook sessions);

    FleetResult run();

  private:
    /**
     * Route one request: returns the chosen replica index. Only
     * routable replicas (routable_[i] != 0) are considered; a
     * session pinned to an unroutable replica is un-pinned and
     * re-pinned by policy. Callers guarantee at least one replica
     * is routable. With every replica routable the decisions are
     * identical to the pre-fault router.
     */
    std::size_t pickReplica(const TimedRequest &timed);

    /** A request awaiting re-routing after a fault displaced it. */
    struct PendingRetry
    {
        TimedRequest timed;
        unsigned attempts = 0;
    };

    /** The conservative-window run loop with fault transitions. */
    void runWithFaults(
        std::vector<std::unique_ptr<ServingEngine>> &engines,
        FleetResult &fleet, std::size_t &next);

    /** Fleet-level aggregate of @p results (see FleetResult). */
    static EngineResult
    aggregateResults(const std::vector<EngineResult> &results);

    /** Policies that read and maintain the queued-token signal. */
    bool usesLoads() const
    {
        return options_.policy == RoutePolicy::LeastLoaded ||
               options_.policy == RoutePolicy::PrefixAffinity;
    }

    ClusterConfig cluster_;
    LlmConfig model_;
    std::vector<TimedRequest> trace_;
    FleetOptions options_;

    /** Router load signal: queued tokens per replica (LeastLoaded
     *  and PrefixAffinity). */
    std::vector<double> loads_;

    /** Replica view for warmth probes (PrefixAffinity); set for the
     *  lifetime of run(). */
    const std::vector<std::unique_ptr<ServingEngine>> *engines_ =
        nullptr;

    /** Health state machine, one entry per replica (fault runs). */
    std::vector<ReplicaHealth> health_;

    /** 1 while the replica accepts traffic (Up or Degraded). All 1
     *  without faults, so the router is decision-identical. */
    std::vector<char> routable_;

    /** Unroutable intervals per replica, by nominal fault time; an
     *  open interval carries a negative end until it closes. */
    std::vector<std::vector<std::pair<double, double>>> downIntervals_;

    /** Closed-loop successor turns declared to every replica. */
    SessionBook sessions_;

    /** Session -> replica pin, recorded at first routing. */
    std::unordered_map<SessionId, std::size_t> sessionReplica_;

    std::size_t rrNext_ = 0;
    bool ran_ = false;
};

} // namespace pimphony

#endif // PIMPHONY_SYSTEM_FLEET_HH
