#include "system/gpu_system.hh"

#include <algorithm>
#include <deque>

#include "common/logging.hh"

namespace pimphony {

namespace {

/** One decode step for the active set. */
double
gpuStepSeconds(const GpuSystemConfig &config, const LlmConfig &model,
               const std::vector<std::pair<Request, Tokens>> &active)
{
    const GpuConfig &g = config.gpu;
    double n = config.nGpus;

    // Attention: flash-decoding scans every request's KV cache at
    // HBM bandwidth (tensor-parallel across GPUs).
    Bytes kv_bytes = 0;
    for (const auto &[req, gen] : active)
        kv_bytes += model.kvBytes(req.contextTokens + gen);
    double attn = static_cast<double>(kv_bytes) /
                  (g.hbmBandwidth * g.flashDecodingEfficiency * n);

    // FC: weights stream once per batch; compute scales with batch.
    auto batch = static_cast<std::uint32_t>(active.size());
    double flops = 2.0 * static_cast<double>(model.paramCount()) * batch;
    double compute = flops / (g.peakFlops * g.gemmEfficiency * n);
    double weights = static_cast<double>(model.weightBytes()) /
                     (g.hbmBandwidth * 0.9 * n);
    double fc = std::max(compute, weights);

    return attn + fc;
}

} // namespace

GpuRunResult
runGpuServing(const GpuSystemConfig &config, const LlmConfig &model,
              const std::vector<Request> &requests)
{
    GpuRunResult out;
    Bytes kv_capacity_raw = config.totalMemory();
    if (model.weightBytes() >= kv_capacity_raw)
        fatal("model does not fit the GPU system");
    Bytes kv_capacity = static_cast<Bytes>(
        (kv_capacity_raw - model.weightBytes()) *
        config.gpu.pagedAttentionUtilization);

    std::deque<Request> pending(requests.begin(), requests.end());
    std::vector<std::pair<Request, Tokens>> active;
    Bytes used = 0;
    double seconds = 0.0;
    double batch_time = 0.0;

    auto admit = [&]() {
        while (!pending.empty()) {
            const Request &front = pending.front();
            Bytes need = model.kvBytes(front.contextTokens +
                                       front.decodeTokens);
            if (need > kv_capacity) {
                pending.pop_front(); // unservable
                continue;
            }
            if (used + need > kv_capacity)
                break;
            used += need;
            active.emplace_back(front, 0);
            pending.pop_front();
        }
    };

    admit();
    std::uint64_t guard = 0;
    while (!active.empty() && guard++ < 1000000) {
        double sec = gpuStepSeconds(config, model, active);
        seconds += sec;
        batch_time += sec * static_cast<double>(active.size());

        std::vector<std::pair<Request, Tokens>> next;
        next.reserve(active.size());
        for (auto &[req, gen] : active) {
            ++gen;
            ++out.generatedTokens;
            if (gen >= req.decodeTokens)
                used -= model.kvBytes(req.contextTokens + req.decodeTokens);
            else
                next.emplace_back(req, gen);
        }
        active = std::move(next);
        admit();
    }

    if (seconds > 0.0) {
        out.tokensPerSecond =
            static_cast<double>(out.generatedTokens) / seconds;
        out.avgBatch = batch_time / seconds;
    }
    return out;
}

} // namespace pimphony
