/**
 * @file
 * A100 GPU serving baseline (Fig. 20): flash-decoding for the KV
 * scan, paged-attention for memory management, roofline GEMMs for
 * the FC stack. Memory-matched module counts follow the paper (two
 * A100-80GB for LLM-7B, eight for LLM-72B).
 */

#ifndef PIMPHONY_SYSTEM_GPU_SYSTEM_HH
#define PIMPHONY_SYSTEM_GPU_SYSTEM_HH

#include <vector>

#include "model/llm.hh"
#include "system/xpu.hh"
#include "workload/trace.hh"

namespace pimphony {

struct GpuSystemConfig
{
    GpuConfig gpu = GpuConfig::a100();
    unsigned nGpus = 2;

    Bytes
    totalMemory() const
    {
        return static_cast<Bytes>(nGpus) * gpu.memoryBytes;
    }
};

struct GpuRunResult
{
    double tokensPerSecond = 0.0;
    double avgBatch = 0.0;
    std::uint64_t generatedTokens = 0;
};

/**
 * Decode-serving simulation on the GPU baseline with continuous
 * batching and paged-attention admission.
 */
GpuRunResult runGpuServing(const GpuSystemConfig &config,
                           const LlmConfig &model,
                           const std::vector<Request> &requests);

} // namespace pimphony

#endif // PIMPHONY_SYSTEM_GPU_SYSTEM_HH
