#include "system/pim_module.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pimphony {

double
PimModuleConfig::internalBandwidth() const
{
    // Every channel moves one 512 B all-bank MAC's worth of weights
    // per tCCDS at peak.
    double per_channel =
        static_cast<double>(timing.macBytesPerCommand()) /
        (timing.tCcds * timing.secondsPerCycle());
    return per_channel * nChannels;
}

PimModuleModel::PimModuleModel(const PimModuleConfig &config,
                               const EnergyParams &energy)
    : config_(config), energyParams_(energy), cache_(config.timing),
      epu_()
{
    if (config_.nChannels == 0)
        fatal("PIM module needs at least one channel");
}

const ScheduleResult &
PimModuleModel::attentionKernel(KernelKind kind, Tokens tokens,
                                const LlmConfig &model)
{
    AttentionSpec spec;
    spec.tokens = bucketTokens(tokens);
    spec.headDim = model.headDim;
    spec.gqaGroup = model.gqaGroup;
    spec.rowReuse = config_.rowReuse();
    KernelRequest req = kind == KernelKind::Qkt
        ? KernelRequest::makeQkt(spec, config_.scheduler)
        : KernelRequest::makeSv(spec, config_.scheduler);
    return cache_.get(req);
}

PhaseResult
PimModuleModel::attentionLayer(const std::vector<AttentionJob> &jobs,
                               const LlmConfig &model)
{
    PhaseResult out;
    if (jobs.empty())
        return out;

    const double spc = config_.timing.secondsPerCycle();
    const unsigned n_ch = config_.nChannels;

    if (config_.partitioning == Partitioning::Tcp) {
        // Every channel processes a token slice of every job; the
        // module walks jobs one after another. The EPU (softmax and
        // the SV inter-channel reduction) runs pipelined with the
        // next job's channel work, so the module time is the larger
        // of the two streams (Sec. IV-C: aggregation overhead is
        // negligible).
        double kernel_cycles = 0.0;
        double epu_cycles = 0.0;
        for (const auto &job : jobs) {
            Tokens slice = tcpSliceTokens(job, n_ch);
            const auto &qkt =
                attentionKernel(KernelKind::Qkt, slice, model);
            const auto &sv = attentionKernel(KernelKind::Sv, slice, model);
            Cycle epu = epu_.softmaxCycles(job.tokens) *
                        model.gqaGroup;
            epu += epu_.reduceCycles(n_ch, static_cast<std::uint64_t>(
                                               model.headDim) *
                                               model.gqaGroup);
            kernel_cycles += static_cast<double>(qkt.makespan) +
                             static_cast<double>(sv.makespan);
            epu_cycles += static_cast<double>(epu);
            out.busyChannelCycles +=
                static_cast<double>(qkt.macBusyCycles + sv.macBusyCycles) *
                n_ch;
            out.energy += kernelEnergy(qkt, energyParams_).scaled(n_ch);
            out.energy += kernelEnergy(sv, energyParams_).scaled(n_ch);
        }
        double total_cycles = std::max(kernel_cycles, epu_cycles);
        out.seconds = total_cycles * spc;
        out.spanChannelCycles = total_cycles * n_ch;
        return out;
    }

    // HFP: whole jobs on single channels; module waits for the
    // slowest channel.
    auto assignment = assignHfp(jobs, n_ch);
    double max_cycles = 0.0;
    for (const auto &channel_jobs : assignment) {
        double ch_cycles = 0.0;
        for (const auto &job : channel_jobs) {
            const auto &qkt =
                attentionKernel(KernelKind::Qkt, job.tokens, model);
            const auto &sv =
                attentionKernel(KernelKind::Sv, job.tokens, model);
            Cycle epu =
                epu_.softmaxCycles(job.tokens) * model.gqaGroup;
            ch_cycles += static_cast<double>(qkt.makespan) +
                         static_cast<double>(sv.makespan) +
                         static_cast<double>(epu);
            out.busyChannelCycles +=
                static_cast<double>(qkt.macBusyCycles + sv.macBusyCycles);
            out.energy += kernelEnergy(qkt, energyParams_);
            out.energy += kernelEnergy(sv, energyParams_);
        }
        max_cycles = std::max(max_cycles, ch_cycles);
    }
    out.seconds = max_cycles * spc;
    out.spanChannelCycles = max_cycles * n_ch;
    // Idle channels still burn background power for the span.
    double busy_span = 0.0;
    for (const auto &channel_jobs : assignment) {
        double ch_cycles = 0.0;
        for (const auto &job : channel_jobs) {
            const auto &qkt =
                attentionKernel(KernelKind::Qkt, job.tokens, model);
            const auto &sv =
                attentionKernel(KernelKind::Sv, job.tokens, model);
            ch_cycles += static_cast<double>(qkt.makespan + sv.makespan);
        }
        busy_span += ch_cycles;
    }
    double idle = max_cycles * n_ch - busy_span;
    if (idle > 0)
        out.energy += backgroundEnergy(static_cast<Cycle>(idle), 1,
                                       energyParams_);
    return out;
}

PhaseResult
PimModuleModel::fcLayer(std::uint32_t batch, const LlmConfig &model,
                        unsigned tp)
{
    PhaseResult out;
    if (batch == 0)
        return out;
    const double spc = config_.timing.secondsPerCycle();
    const unsigned n_ch = config_.nChannels;
    const unsigned shard = n_ch * std::max(1u, tp);

    // The decoder layer's linear stack (Q, K, V, O, gate, up, down).
    std::uint64_t kv_dim =
        static_cast<std::uint64_t>(model.kvHeads()) * model.headDim;
    struct Op { std::uint64_t dout, din; };
    const Op ops[] = {
        {model.dModel, model.dModel},          // Q
        {kv_dim, model.dModel},                // K
        {kv_dim, model.dModel},                // V
        {model.dModel, model.dModel},          // O
        {model.dFfn, model.dModel},            // gate
        {model.dFfn, model.dModel},            // up
        {model.dModel, model.dFfn},            // down
    };

    double cycles_per_request = 0.0;
    double busy_per_request = 0.0;
    EnergyBreakdown energy_per_request;
    for (const auto &op : ops) {
        std::uint64_t dout_ch = std::max<std::uint64_t>(16,
                                                        op.dout / shard);
        GemvSpec spec = GemvSpec::fromDims(dout_ch, op.din);
        const auto &r = cache_.get(
            KernelRequest::makeGemv(spec, config_.scheduler));
        cycles_per_request += static_cast<double>(r.makespan);
        busy_per_request += static_cast<double>(r.macBusyCycles);
        energy_per_request += kernelEnergy(r, energyParams_);
    }

    out.seconds = cycles_per_request * batch * spc;
    out.busyChannelCycles = busy_per_request * batch * n_ch;
    out.spanChannelCycles = cycles_per_request * batch * n_ch;
    out.energy = energy_per_request.scaled(static_cast<double>(batch) *
                                           n_ch);
    return out;
}

} // namespace pimphony
