#include "system/pim_module.hh"

#include <algorithm>

#include "common/logging.hh"

namespace pimphony {

double
PimModuleConfig::internalBandwidth() const
{
    // Every channel moves one 512 B all-bank MAC's worth of weights
    // per tCCDS at peak.
    double per_channel =
        static_cast<double>(timing.macBytesPerCommand()) /
        (timing.tCcds * timing.secondsPerCycle());
    return per_channel * nChannels;
}

PimModuleModel::PimModuleModel(const PimModuleConfig &config,
                               const EnergyParams &energy)
    : config_(config), energyParams_(energy), cache_(config.timing),
      epu_()
{
    if (config_.nChannels == 0)
        fatal("PIM module needs at least one channel");
}

const ScheduleResult &
PimModuleModel::attentionKernel(KernelKind kind, Tokens tokens,
                                const LlmConfig &model)
{
    AttentionSpec spec;
    spec.tokens = bucketTokens(tokens);
    spec.headDim = model.headDim;
    spec.gqaGroup = model.gqaGroup;
    spec.rowReuse = config_.rowReuse();
    KernelRequest req = kind == KernelKind::Qkt
        ? KernelRequest::makeQkt(spec, config_.scheduler)
        : KernelRequest::makeSv(spec, config_.scheduler);
    return cache_.get(req);
}

const PimModuleModel::AttnJobCost &
PimModuleModel::attentionJobCost(Tokens bucketed, const LlmConfig &model)
{
    // One serving run reuses one model; a geometry change (different
    // LlmConfig against the same module model) drops the memo. The
    // kernel cache itself keys on the full descriptor and is
    // unaffected.
    if (attnMemoHeadDim_ != model.headDim ||
        attnMemoGqa_ != model.gqaGroup) {
        attnMemo_.clear();
        attnMemoHeadDim_ = model.headDim;
        attnMemoGqa_ = model.gqaGroup;
    }
    auto it = attnMemo_.find(bucketed);
    if (it != attnMemo_.end())
        return it->second;

    AttnJobCost cost;
    cost.qkt = &attentionKernel(KernelKind::Qkt, bucketed, model);
    cost.sv = &attentionKernel(KernelKind::Sv, bucketed, model);
    cost.qktEnergy = kernelEnergy(*cost.qkt, energyParams_);
    cost.svEnergy = kernelEnergy(*cost.sv, energyParams_);
    cost.qktEnergyCh = cost.qktEnergy.scaled(config_.nChannels);
    cost.svEnergyCh = cost.svEnergy.scaled(config_.nChannels);
    // Kernel-cache values live in node-based storage, so the
    // ScheduleResult pointers stay valid across rehashes.
    return attnMemo_.emplace(bucketed, cost).first->second;
}

PhaseResult
PimModuleModel::attentionLayer(const std::vector<AttentionJob> &jobs,
                               const LlmConfig &model)
{
    PhaseResult out;
    if (jobs.empty())
        return out;

    const double spc = config_.timing.secondsPerCycle();
    const unsigned n_ch = config_.nChannels;

    if (config_.partitioning == Partitioning::Tcp) {
        // Every channel processes a token slice of every job; the
        // module walks jobs one after another. The EPU (softmax and
        // the SV inter-channel reduction) runs pipelined with the
        // next job's channel work, so the module time is the larger
        // of the two streams (Sec. IV-C: aggregation overhead is
        // negligible).
        double kernel_cycles = 0.0;
        double epu_cycles = 0.0;
        // A batch expands each request into gqa-group jobs with the
        // same token count, so consecutive jobs usually repeat: a
        // last-value cache turns the per-job memo probe + EPU
        // formula into a comparison (accumulation stays per-job so
        // the sums round exactly as before).
        Tokens last_tokens = 0;
        const AttnJobCost *c = nullptr;
        double epu_cached = 0.0;
        for (const auto &job : jobs) {
            if (!c || job.tokens != last_tokens) {
                Tokens slice = tcpSliceTokens(job, n_ch);
                c = &attentionJobCost(bucketTokens(slice), model);
                Cycle epu = epu_.softmaxCycles(job.tokens) *
                            model.gqaGroup;
                epu += epu_.reduceCycles(
                    n_ch, static_cast<std::uint64_t>(model.headDim) *
                              model.gqaGroup);
                epu_cached = static_cast<double>(epu);
                last_tokens = job.tokens;
            }
            kernel_cycles += static_cast<double>(c->qkt->makespan) +
                             static_cast<double>(c->sv->makespan);
            epu_cycles += epu_cached;
            out.busyChannelCycles +=
                static_cast<double>(c->qkt->macBusyCycles +
                                    c->sv->macBusyCycles) *
                n_ch;
            out.energy += c->qktEnergyCh;
            out.energy += c->svEnergyCh;
        }
        double total_cycles = std::max(kernel_cycles, epu_cycles);
        out.seconds = total_cycles * spc;
        out.spanChannelCycles = total_cycles * n_ch;
        return out;
    }

    // HFP: whole jobs on single channels; module waits for the
    // slowest channel. One pass accumulates both the per-channel
    // makespans and the kernel-busy span the idle-background charge
    // needs (the memo makes each job one table probe).
    assignHfp(jobs, n_ch, hfpScratch_);
    double max_cycles = 0.0;
    double busy_span = 0.0;
    Tokens last_tokens = 0;
    const AttnJobCost *c = nullptr;
    double epu_cached = 0.0;
    for (const auto &channel_jobs : hfpScratch_) {
        double ch_cycles = 0.0;
        double ch_kernel_cycles = 0.0;
        for (const auto &job : channel_jobs) {
            if (!c || job.tokens != last_tokens) {
                c = &attentionJobCost(bucketTokens(job.tokens), model);
                epu_cached = static_cast<double>(
                    epu_.softmaxCycles(job.tokens) * model.gqaGroup);
                last_tokens = job.tokens;
            }
            ch_cycles += static_cast<double>(c->qkt->makespan) +
                         static_cast<double>(c->sv->makespan) +
                         epu_cached;
            ch_kernel_cycles += static_cast<double>(c->qkt->makespan +
                                                    c->sv->makespan);
            out.busyChannelCycles +=
                static_cast<double>(c->qkt->macBusyCycles +
                                    c->sv->macBusyCycles);
            out.energy += c->qktEnergy;
            out.energy += c->svEnergy;
        }
        max_cycles = std::max(max_cycles, ch_cycles);
        busy_span += ch_kernel_cycles;
    }
    out.seconds = max_cycles * spc;
    out.spanChannelCycles = max_cycles * n_ch;
    // Idle channels still burn background power for the span.
    double idle = max_cycles * n_ch - busy_span;
    if (idle > 0)
        out.energy += backgroundEnergy(static_cast<Cycle>(idle), 1,
                                       energyParams_);
    return out;
}

PhaseResult
PimModuleModel::fcLayer(std::uint32_t batch, const LlmConfig &model,
                        unsigned tp)
{
    PhaseResult out;
    if (batch == 0)
        return out;
    const double spc = config_.timing.secondsPerCycle();
    const unsigned n_ch = config_.nChannels;

    // The per-request linear-stack cost depends only on the model
    // dims and the TP shard, both fixed across a serving run: memoize
    // it so the per-cycle call is arithmetic on cached sums instead
    // of seven kernel-cache lookups (values identical bit for bit).
    if (!fcMemo_.valid || fcMemo_.dModel != model.dModel ||
        fcMemo_.dFfn != model.dFfn || fcMemo_.kvHeads != model.kvHeads() ||
        fcMemo_.headDim != model.headDim || fcMemo_.tp != tp) {
        const unsigned shard = n_ch * std::max(1u, tp);

        // The decoder layer's linear stack (Q, K, V, O, gate, up,
        // down).
        std::uint64_t kv_dim =
            static_cast<std::uint64_t>(model.kvHeads()) * model.headDim;
        struct Op { std::uint64_t dout, din; };
        const Op ops[] = {
            {model.dModel, model.dModel},          // Q
            {kv_dim, model.dModel},                // K
            {kv_dim, model.dModel},                // V
            {model.dModel, model.dModel},          // O
            {model.dFfn, model.dModel},            // gate
            {model.dFfn, model.dModel},            // up
            {model.dModel, model.dFfn},            // down
        };

        fcMemo_ = FcCost{};
        for (const auto &op : ops) {
            std::uint64_t dout_ch =
                std::max<std::uint64_t>(16, op.dout / shard);
            GemvSpec spec = GemvSpec::fromDims(dout_ch, op.din);
            const auto &r = cache_.get(
                KernelRequest::makeGemv(spec, config_.scheduler));
            fcMemo_.cyclesPerRequest += static_cast<double>(r.makespan);
            fcMemo_.busyPerRequest +=
                static_cast<double>(r.macBusyCycles);
            fcMemo_.energyPerRequest += kernelEnergy(r, energyParams_);
        }
        fcMemo_.valid = true;
        fcMemo_.dModel = model.dModel;
        fcMemo_.dFfn = model.dFfn;
        fcMemo_.kvHeads = model.kvHeads();
        fcMemo_.headDim = model.headDim;
        fcMemo_.tp = tp;
    }

    out.seconds = fcMemo_.cyclesPerRequest * batch * spc;
    out.busyChannelCycles = fcMemo_.busyPerRequest * batch * n_ch;
    out.spanChannelCycles = fcMemo_.cyclesPerRequest * batch * n_ch;
    out.energy = fcMemo_.energyPerRequest.scaled(
        static_cast<double>(batch) * n_ch);
    return out;
}

} // namespace pimphony
