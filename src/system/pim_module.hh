/**
 * @file
 * Module-level latency/energy composition: one PIM module executes
 * attention job sets (partitioned by HFP or TCP across its channels)
 * and, in PIM-only systems, the FC GEMVs of the decoder layers.
 */

#ifndef PIMPHONY_SYSTEM_PIM_MODULE_HH
#define PIMPHONY_SYSTEM_PIM_MODULE_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "dram/timing.hh"
#include "energy/energy.hh"
#include "hub/epu.hh"
#include "kernels/kernel_sim.hh"
#include "mapping/partition.hh"
#include "model/llm.hh"

namespace pimphony {

struct PimModuleConfig
{
    unsigned nChannels = 32;
    Bytes capacityBytes = 16_GiB;
    AimTimingParams timing;
    SchedulerKind scheduler = SchedulerKind::Static;
    Partitioning partitioning = Partitioning::Hfp;

    /**
     * GQA KV mapping. Row-reuse saves ACT/PRE but adds WR-INP swaps
     * that only DCS hides (Sec. V-C); each configuration uses the
     * mapping that suits its scheduler.
     */
    bool
    rowReuse() const
    {
        return scheduler == SchedulerKind::Dcs;
    }

    /** Internal bandwidth implied by the channel timing (B/s). */
    double internalBandwidth() const;
};

/** Latency + occupancy of a phase executed on one module. */
struct PhaseResult
{
    double seconds = 0.0;

    /** MAC-busy cycles accumulated over all channels. */
    double busyChannelCycles = 0.0;

    /** Channel-cycles the phase occupied (seconds x channels). */
    double spanChannelCycles = 0.0;

    EnergyBreakdown energy;
};

class PimModuleModel
{
  public:
    explicit PimModuleModel(const PimModuleConfig &config,
                            const EnergyParams &energy = {});

    /**
     * One decoder layer's attention for @p jobs (each job = the KV
     * scan of one (request, KV-head) with the model's GQA group).
     */
    PhaseResult attentionLayer(const std::vector<AttentionJob> &jobs,
                               const LlmConfig &model);

    /**
     * One decoder layer's FC stack (QKVO projections + FFN) for
     * @p batch requests, executed as PIM GEMVs on this module's
     * shard (1/tp of every output dimension).
     */
    PhaseResult fcLayer(std::uint32_t batch, const LlmConfig &model,
                        unsigned tp);

    const PimModuleConfig &config() const { return config_; }
    KernelCache &cache() { return cache_; }

  private:
    /** Channel-level result of one attention job at @p tokens. */
    const ScheduleResult &attentionKernel(KernelKind kind, Tokens tokens,
                                          const LlmConfig &model);

    /**
     * Memoized per-job attention contribution at one bucketed token
     * count: the QK^T/SV schedules plus their per-channel kernel
     * energies (and the nChannels-scaled copies the TCP path adds).
     * The serving engine resolves every (request, head) job of every
     * decode cycle through this table, turning the per-job cost into
     * one hash probe instead of two kernel-cache lookups plus two
     * energy recomputations. Values are pure functions of the
     * cached schedules, so the memo changes nothing bit-wise; it is
     * invalidated when a different model's head geometry shows up.
     */
    struct AttnJobCost
    {
        const ScheduleResult *qkt = nullptr;
        const ScheduleResult *sv = nullptr;
        EnergyBreakdown qktEnergy;   ///< kernelEnergy(qkt)
        EnergyBreakdown svEnergy;    ///< kernelEnergy(sv)
        EnergyBreakdown qktEnergyCh; ///< kernelEnergy(qkt).scaled(nCh)
        EnergyBreakdown svEnergyCh;  ///< kernelEnergy(sv).scaled(nCh)
    };

    /** Memo lookup for @p bucketed tokens (bucketTokens applied). */
    const AttnJobCost &attentionJobCost(Tokens bucketed,
                                        const LlmConfig &model);

    PimModuleConfig config_;
    EnergyParams energyParams_;
    KernelCache cache_;
    EpuModel epu_;

    std::unordered_map<Tokens, AttnJobCost> attnMemo_;
    unsigned attnMemoHeadDim_ = 0;
    unsigned attnMemoGqa_ = 0;

    struct FcCost
    {
        bool valid = false;
        std::uint64_t dModel = 0;
        std::uint64_t dFfn = 0;
        unsigned kvHeads = 0;
        unsigned headDim = 0;
        unsigned tp = 0;
        double cyclesPerRequest = 0.0;
        double busyPerRequest = 0.0;
        EnergyBreakdown energyPerRequest;
    };
    FcCost fcMemo_;

    /** Per-cycle scratch for the HFP channel assignment. */
    std::vector<std::vector<AttentionJob>> hfpScratch_;
};

} // namespace pimphony

#endif // PIMPHONY_SYSTEM_PIM_MODULE_HH
