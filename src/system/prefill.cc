#include "system/prefill.hh"

#include <algorithm>

namespace pimphony {

double
prefillFlops(const LlmConfig &model, Tokens tokens)
{
    double linear = 2.0 * static_cast<double>(model.paramCount()) *
                    static_cast<double>(tokens);
    // Causal attention: ~T^2/2 score+context pairs per head.
    double attn = 2.0 * model.nLayers * model.nHeads * model.headDim *
                  static_cast<double>(tokens) *
                  static_cast<double>(tokens);
    return linear + attn;
}

double
prefillSeconds(const LlmConfig &model, Tokens tokens,
               const XpuConfig &config, unsigned n_engines)
{
    if (tokens == 0)
        return 0.0;
    double engines = std::max(1u, n_engines);
    // Prefill GEMMs are large: assume near-saturated matrix units.
    double flops = prefillFlops(model, tokens);
    double compute = flops / (config.peakFlops * 0.8 * engines);
    double weights = static_cast<double>(model.weightBytes()) /
                     (config.memBandwidth * engines);
    return std::max(compute, weights);
}

} // namespace pimphony
