#include "system/prefill.hh"

#include <algorithm>

#include "common/units.hh"

namespace pimphony {

double
prefillFlops(const LlmConfig &model, Tokens tokens)
{
    double linear = 2.0 * static_cast<double>(model.paramCount()) *
                    static_cast<double>(tokens);
    // Causal attention: ~T^2/2 score+context pairs per head.
    double attn = 2.0 * model.nLayers * model.nHeads * model.headDim *
                  static_cast<double>(tokens) *
                  static_cast<double>(tokens);
    return linear + attn;
}

double
prefillSeconds(const LlmConfig &model, Tokens tokens,
               const XpuConfig &config, unsigned n_engines)
{
    if (tokens == 0)
        return 0.0;
    double engines = std::max(1u, n_engines);
    // Prefill GEMMs are large: assume near-saturated matrix units.
    double flops = prefillFlops(model, tokens);
    double compute = flops / (config.peakFlops * 0.8 * engines);
    double weights = static_cast<double>(model.weightBytes()) /
                     (config.memBandwidth * engines);
    return std::max(compute, weights);
}

std::vector<PrefillChunk>
prefillChunks(const LlmConfig &model, Tokens tokens, Tokens chunk_tokens)
{
    std::vector<PrefillChunk> out;
    if (tokens == 0)
        return out;
    if (chunk_tokens == 0)
        chunk_tokens = tokens;
    out.reserve(static_cast<std::size_t>(
        ceilDiv<Tokens>(tokens, chunk_tokens)));
    double linear_per_token =
        2.0 * static_cast<double>(model.paramCount());
    double attn_coeff = 2.0 * model.nLayers * model.nHeads * model.headDim;
    for (Tokens start = 0; start < tokens; start += chunk_tokens) {
        PrefillChunk c;
        c.firstToken = start;
        c.tokens = std::min<Tokens>(chunk_tokens, tokens - start);
        Tokens end = start + c.tokens;
        // Causal attention of the chunk's tokens against everything
        // before and inside the chunk: the e^2 - s^2 split telescopes
        // to the T^2 term of prefillFlops() across chunks.
        double pairs = static_cast<double>(end) * end -
                       static_cast<double>(start) * start;
        c.flops = linear_per_token * static_cast<double>(c.tokens) +
                  attn_coeff * pairs;
        out.push_back(c);
    }
    return out;
}

std::vector<double>
prefillChunkSeconds(const LlmConfig &model, Tokens tokens,
                    Tokens chunk_tokens, const XpuConfig &config,
                    unsigned n_engines)
{
    auto chunks = prefillChunks(model, tokens, chunk_tokens);
    std::vector<double> out;
    out.reserve(chunks.size());
    if (chunks.empty())
        return out;
    double total_flops = 0.0;
    for (const auto &c : chunks)
        total_flops += c.flops;
    double total_sec = prefillSeconds(model, tokens, config, n_engines);
    for (const auto &c : chunks)
        out.push_back(total_sec * c.flops / total_flops);
    return out;
}

double
prefillSecondsFrom(const LlmConfig &model, Tokens cached, Tokens total,
                   const XpuConfig &config, unsigned n_engines)
{
    if (cached >= total)
        return 0.0;
    // The difference form (not a rebuilt flops/bandwidth max over the
    // delta) guarantees warm + cached charges conserve the cold
    // charge exactly: prefillSecondsFrom(0, c) +
    // prefillSecondsFrom(c, t) == prefillSeconds(t).
    return prefillSeconds(model, total, config, n_engines) -
           prefillSeconds(model, cached, config, n_engines);
}

std::vector<PrefillChunk>
prefillChunksFrom(const LlmConfig &model, Tokens cached, Tokens total,
                  Tokens chunk_tokens)
{
    std::vector<PrefillChunk> out;
    if (cached >= total)
        return out;
    if (chunk_tokens == 0)
        chunk_tokens = total - cached;
    out.reserve(static_cast<std::size_t>(
        ceilDiv<Tokens>(total - cached, chunk_tokens)));
    double linear_per_token =
        2.0 * static_cast<double>(model.paramCount());
    double attn_coeff = 2.0 * model.nLayers * model.nHeads * model.headDim;
    for (Tokens start = cached; start < total; start += chunk_tokens) {
        PrefillChunk c;
        c.firstToken = start;
        c.tokens = std::min<Tokens>(chunk_tokens, total - start);
        Tokens end = start + c.tokens;
        double pairs = static_cast<double>(end) * end -
                       static_cast<double>(start) * start;
        c.flops = linear_per_token * static_cast<double>(c.tokens) +
                  attn_coeff * pairs;
        out.push_back(c);
    }
    return out;
}

std::vector<double>
prefillChunkSecondsFrom(const LlmConfig &model, Tokens cached,
                        Tokens total, Tokens chunk_tokens,
                        const XpuConfig &config, unsigned n_engines)
{
    auto chunks = prefillChunksFrom(model, cached, total, chunk_tokens);
    std::vector<double> out;
    out.reserve(chunks.size());
    if (chunks.empty())
        return out;
    double total_flops = 0.0;
    for (const auto &c : chunks)
        total_flops += c.flops;
    double total_sec =
        prefillSecondsFrom(model, cached, total, config, n_engines);
    for (const auto &c : chunks)
        out.push_back(total_sec * c.flops / total_flops);
    return out;
}

std::vector<double>
preemptionSlices(double chunk_seconds, double quantum)
{
    std::vector<double> out;
    if (chunk_seconds <= 0.0)
        return out;
    if (quantum <= 0.0) {
        out.push_back(chunk_seconds);
        return out;
    }
    double remaining = chunk_seconds;
    // Mirror the sim core's slice test (a hair of tolerance keeps an
    // exact multiple at exactly charge / quantum slices despite fp
    // subtraction drift).
    while (remaining > quantum * (1.0 + 1e-9)) {
        out.push_back(quantum);
        remaining -= quantum;
    }
    out.push_back(remaining);
    return out;
}

} // namespace pimphony
