/**
 * @file
 * Prefill latency model (extension beyond the paper's decode-focused
 * evaluation).
 *
 * Prefill is compute-bound GEMM work: 2 x params FLOPs per context
 * token for the linear stack plus the quadratic attention term. The
 * CENT-like system prefillls on its PNM (slow -- one of the reasons
 * PIM-only systems assume prefill elsewhere), the NeuPIMs-like system
 * on its NPUs, the GPU baseline on the GPUs.
 */

#ifndef PIMPHONY_SYSTEM_PREFILL_HH
#define PIMPHONY_SYSTEM_PREFILL_HH

#include "model/llm.hh"
#include "system/xpu.hh"

namespace pimphony {

/** Total FLOPs to prefill @p tokens of context. */
double prefillFlops(const LlmConfig &model, Tokens tokens);

/**
 * Seconds to prefill @p tokens on @p n_engines compute engines of
 * @p config (weights already resident; chunked prefill streams
 * activations).
 */
double prefillSeconds(const LlmConfig &model, Tokens tokens,
                      const XpuConfig &config, unsigned n_engines);

} // namespace pimphony

#endif // PIMPHONY_SYSTEM_PREFILL_HH
