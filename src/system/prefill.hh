/**
 * @file
 * Prefill latency model (extension beyond the paper's decode-focused
 * evaluation).
 *
 * Prefill is compute-bound GEMM work: 2 x params FLOPs per context
 * token for the linear stack plus the quadratic attention term. The
 * CENT-like system prefillls on its PNM (slow -- one of the reasons
 * PIM-only systems assume prefill elsewhere), the NeuPIMs-like system
 * on its NPUs, the GPU baseline on the GPUs.
 *
 * The chunk planner splits one request's prefill into fixed-size
 * token chunks for the event-driven engine: each chunk becomes a
 * pipeline work item on the xPU stage timelines, and the causal
 * attention term makes later chunks (which attend to everything
 * before them) more expensive. Per-chunk seconds apportion the
 * scalar prefillSeconds() charge by chunk FLOPs, so the chunked total
 * matches the unchunked charge exactly.
 */

#ifndef PIMPHONY_SYSTEM_PREFILL_HH
#define PIMPHONY_SYSTEM_PREFILL_HH

#include <vector>

#include "model/llm.hh"
#include "system/xpu.hh"

namespace pimphony {

/** Total FLOPs to prefill @p tokens of context. */
double prefillFlops(const LlmConfig &model, Tokens tokens);

/**
 * Seconds to prefill @p tokens on @p n_engines compute engines of
 * @p config (weights already resident; chunked prefill streams
 * activations).
 */
double prefillSeconds(const LlmConfig &model, Tokens tokens,
                      const XpuConfig &config, unsigned n_engines);

/** One chunk of a request's prefill. */
struct PrefillChunk
{
    /** Offset of the chunk's first context token. */
    Tokens firstToken = 0;

    /** Context tokens processed by this chunk. */
    Tokens tokens = 0;

    /**
     * FLOPs of this chunk: its share of the linear stack plus the
     * causal attention over every token before and inside it. Sums
     * to prefillFlops() across a request's chunks.
     */
    double flops = 0.0;
};

/**
 * Split @p tokens of context into chunks of at most @p chunk_tokens
 * (the last chunk takes the remainder; chunk_tokens == 0 means one
 * chunk). Returns an empty plan for an empty context.
 */
std::vector<PrefillChunk> prefillChunks(const LlmConfig &model,
                                        Tokens tokens,
                                        Tokens chunk_tokens);

/**
 * Per-chunk seconds for the plan prefillChunks() produces:
 * prefillSeconds(model, tokens, config, n_engines) apportioned by
 * chunk FLOPs, so the values sum exactly to the scalar charge.
 */
std::vector<double> prefillChunkSeconds(const LlmConfig &model,
                                        Tokens tokens,
                                        Tokens chunk_tokens,
                                        const XpuConfig &config,
                                        unsigned n_engines);

/**
 * Warm-prefix delta prefill: seconds to extend an already-prefilled
 * @p cached -token KV to @p total tokens — exactly
 * prefillSeconds(total) - prefillSeconds(cached), so skipping a
 * cached prefix skips precisely the cached share of the scalar
 * charge (and full-context and warm charges telescope across session
 * turns). cached == 0 reduces to prefillSeconds() bit for bit.
 */
double prefillSecondsFrom(const LlmConfig &model, Tokens cached,
                          Tokens total, const XpuConfig &config,
                          unsigned n_engines);

/**
 * Chunk plan for the delta prefill of [cached, total): the same
 * e^2 - s^2 causal-attention split as prefillChunks() applied to the
 * tail only — the delta tokens still attend to the cached prefix.
 * Chunk FLOPs sum to prefillFlops(total) - prefillFlops(cached);
 * cached == 0 reproduces prefillChunks() exactly.
 */
std::vector<PrefillChunk> prefillChunksFrom(const LlmConfig &model,
                                            Tokens cached, Tokens total,
                                            Tokens chunk_tokens);

/**
 * Per-chunk seconds for the delta plan: prefillSecondsFrom()
 * apportioned by chunk FLOPs, summing exactly to the scalar delta
 * charge (the warm analogue of prefillChunkSeconds()).
 */
std::vector<double> prefillChunkSecondsFrom(const LlmConfig &model,
                                            Tokens cached, Tokens total,
                                            Tokens chunk_tokens,
                                            const XpuConfig &config,
                                            unsigned n_engines);

/**
 * Preemption re-plan: the dispatch slices a quantum co-scheduling
 * policy (SchedPolicyKind::ChunkPreempt) serves one chunk's service
 * charge in — full quanta followed by the remainder, matching the
 * sim core's slice arithmetic. The slices sum exactly to
 * @p chunk_seconds: preempting a chunk relocates its remaining
 * charge in time but never loses any of it. A quantum <= 0 (or a
 * charge that fits one quantum) yields a single slice; a charge
 * <= 0 yields none.
 */
std::vector<double> preemptionSlices(double chunk_seconds,
                                     double quantum);

} // namespace pimphony

#endif // PIMPHONY_SYSTEM_PREFILL_HH
