#include "system/sched_policy.hh"

#include "common/logging.hh"

namespace pimphony {

std::string
schedPolicyName(SchedPolicyKind kind)
{
    switch (kind) {
      case SchedPolicyKind::Fifo:           return "fifo";
      case SchedPolicyKind::DecodePriority: return "decode-priority";
      case SchedPolicyKind::ChunkPreempt:   return "chunk-preempt";
      case SchedPolicyKind::SloAdmission:   return "slo-admission";
      case SchedPolicyKind::TierPriority:   return "tier-priority";
    }
    return "?";
}

bool
parseSchedPolicy(const std::string &name, SchedPolicyKind &out)
{
    for (SchedPolicyKind kind : allSchedPolicies()) {
        if (name == schedPolicyName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

std::vector<SchedPolicyKind>
allSchedPolicies()
{
    return {SchedPolicyKind::Fifo, SchedPolicyKind::DecodePriority,
            SchedPolicyKind::ChunkPreempt, SchedPolicyKind::SloAdmission,
            SchedPolicyKind::TierPriority};
}

std::size_t
DecodePriorityPolicy::pickNext(
    const std::vector<const sim::WorkItem *> &eligible) const
{
    // Earliest-queued decode share first; with none waiting, the
    // earliest-queued prefill chunk (plain FIFO among chunks, so a
    // preempted remainder resumes before later chunks).
    for (std::size_t i = 0; i < eligible.size(); ++i)
        if (eligible[i]->kind == sim::WorkItem::Kind::DecodeCycle)
            return i;
    return 0;
}

double
ChunkPreemptPolicy::sliceSeconds(const sim::WorkItem &item) const
{
    if (item.kind != sim::WorkItem::Kind::PrefillChunk)
        return 0.0;
    return config_.preemptQuantumSeconds;
}

bool
SloAdmissionPolicy::admitPrefillAt(double observed_p95_gap,
                                   std::size_t gap_samples,
                                   bool decode_in_flight,
                                   double target_gap) const
{
    // The gate can only bind while decode work is in flight: with
    // nothing decoding there is no SLO pressure, and a binding gate
    // would deadlock admission (no event could ever clear it).
    if (!decode_in_flight || gap_samples < config_.sloMinSamples)
        return true;
    return observed_p95_gap <= config_.sloHeadroom * target_gap;
}

std::size_t
TierPriorityPolicy::pickNext(
    const std::vector<const sim::WorkItem *> &eligible) const
{
    // Strict bands: (tier, kind) ascending with decode before chunks
    // inside one tier; FIFO (first occurrence) inside a band.
    std::size_t best = 0;
    auto band = [](const sim::WorkItem &w) {
        return (static_cast<std::uint64_t>(w.tier) << 1) |
               (w.kind == sim::WorkItem::Kind::PrefillChunk ? 1u : 0u);
    };
    std::uint64_t best_band = band(*eligible[0]);
    for (std::size_t i = 1; i < eligible.size(); ++i) {
        std::uint64_t b = band(*eligible[i]);
        if (b < best_band) {
            best_band = b;
            best = i;
        }
    }
    return best;
}

double
TierPriorityPolicy::sliceSeconds(const sim::WorkItem &item) const
{
    if (item.kind == sim::WorkItem::Kind::PrefillChunk)
        return config_.preemptQuantumSeconds;
    // Lower-tier in-flight decode work is preempted at the
    // tier-inversion bound; tier-0 decode always runs unsliced.
    if (item.tier > 0)
        return config_.tierPreemptQuantumSeconds;
    return 0.0;
}

std::unique_ptr<SchedPolicy>
makeSchedPolicy(const SchedPolicyConfig &config)
{
    switch (config.kind) {
      case SchedPolicyKind::Fifo:
        return std::make_unique<FifoPolicy>(config);
      case SchedPolicyKind::DecodePriority:
        return std::make_unique<DecodePriorityPolicy>(config);
      case SchedPolicyKind::ChunkPreempt:
        if (config.preemptQuantumSeconds <= 0.0)
            fatal("chunk-preempt needs a positive quantum (got %g s)",
                  config.preemptQuantumSeconds);
        return std::make_unique<ChunkPreemptPolicy>(config);
      case SchedPolicyKind::SloAdmission:
        if (config.sloTargetGapSeconds <= 0.0)
            fatal("slo-admission needs a positive gap target (got %g s)",
                  config.sloTargetGapSeconds);
        return std::make_unique<SloAdmissionPolicy>(config);
      case SchedPolicyKind::TierPriority:
        if (config.preemptQuantumSeconds <= 0.0)
            fatal("tier-priority needs a positive chunk quantum (got "
                  "%g s)",
                  config.preemptQuantumSeconds);
        return std::make_unique<TierPriorityPolicy>(config);
    }
    fatal("unknown scheduling policy");
}

} // namespace pimphony
