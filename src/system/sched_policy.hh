/**
 * @file
 * Pluggable prefill/decode co-scheduling policies for the serving
 * engine's per-stage xPU timelines.
 *
 * PR 2 made prefill chunks first-class work items that contend with
 * decode FC shares on every stage's compute (xPU) timeline, but left
 * the arbitration hard-FIFO. A SchedPolicy decides how that timeline
 * is shared — the policy space LoL-PIM / L3-style long-context
 * serving systems navigate to keep decode token-gap SLOs under
 * prefill bursts:
 *
 *  - Fifo: strict submission order (the PR 2 behavior, and the
 *    default). The timeline keeps the plain reservation arithmetic.
 *  - DecodePriority: decode FC shares overtake *queued* prefill
 *    chunks; an in-flight chunk still runs to completion, so the
 *    worst decode stall is one whole chunk.
 *  - ChunkPreempt: DecodePriority plus quantum slicing — an
 *    in-flight prefill chunk is preempted at a configurable service
 *    quantum and its remaining charge re-queued, so a waiting decode
 *    share starts within one quantum. Slices conserve the chunk's
 *    total charge exactly.
 *  - SloAdmission: FIFO on the timeline, but admission-time gating —
 *    new prefills are deferred while the observed p95 decode token
 *    gap (over a sliding window) exceeds a target, trading TTFT for
 *    a bounded decode SLO. With request classes attached (see
 *    workload/request_class.hh) the gate is per tier: each tier gets
 *    its own sliding window judged against its own target.
 *  - TierPriority: strict latency-tier bands — decode FC shares of a
 *    higher tier (lower number) overtake lower-tier decode items as
 *    well as prefill chunks, and in-flight lower-band work is
 *    quantum-sliced so a tier inversion is bounded
 *    (tierPreemptQuantumSeconds for decode, preemptQuantumSeconds
 *    for chunks).
 *
 * Policies are selected through EngineOptions::sched (and
 * OrchestratorConfig::sched); they act under the event-driven step
 * model only — the analytic model has no per-item timeline to
 * arbitrate and ignores them.
 */

#ifndef PIMPHONY_SYSTEM_SCHED_POLICY_HH
#define PIMPHONY_SYSTEM_SCHED_POLICY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/device.hh"

namespace pimphony {

enum class SchedPolicyKind : std::uint8_t {
    Fifo,
    DecodePriority,
    ChunkPreempt,
    SloAdmission,
    TierPriority,
};

std::string schedPolicyName(SchedPolicyKind kind);

/** Parse a policy name (as printed by schedPolicyName). @return
 *  false (leaving @p out untouched) on an unknown name. */
bool parseSchedPolicy(const std::string &name, SchedPolicyKind &out);

/** The four kinds, in declaration order (sweep helper). */
std::vector<SchedPolicyKind> allSchedPolicies();

struct SchedPolicyConfig
{
    SchedPolicyKind kind = SchedPolicyKind::Fifo;

    /**
     * ChunkPreempt: service quantum in seconds at which an in-flight
     * prefill chunk is preempted. Bounds the worst-case decode FC
     * stall behind prefill at one quantum.
     */
    double preemptQuantumSeconds = 2e-3;

    /**
     * SloAdmission: target p95 decode token gap in seconds. New
     * prefills are deferred while the observed windowed p95 exceeds
     * this.
     */
    double sloTargetGapSeconds = 50e-3;

    /** SloAdmission: sliding window of recent token gaps. */
    unsigned sloWindow = 64;

    /** SloAdmission: minimum gap samples before the gate can bind. */
    unsigned sloMinSamples = 8;

    /**
     * SloAdmission: control headroom. The gate defers while the
     * observed p95 exceeds headroom * target: the feedback loop only
     * reacts a window after gaps degrade, so gating exactly at the
     * target would let the tail converge *to* it instead of staying
     * under it.
     */
    double sloHeadroom = 0.7;

    /**
     * TierPriority: service quantum at which a *lower-tier in-flight
     * decode item* (tier > 0) is preempted, bounding how long a
     * higher tier can be inverted behind it — the decode-side
     * analogue of preemptQuantumSeconds (which keeps bounding
     * in-flight prefill chunks). Tier-0 decode work is never sliced;
     * <= 0 disables decode-side preemption (overtaking of *queued*
     * lower-tier work still applies).
     */
    double tierPreemptQuantumSeconds = 2e-3;
};

/**
 * Arbitration + admission policy. The QueueArbiter half (pickNext /
 * sliceSeconds) drives the per-stage xPU timelines when
 * reordersXpu() is true; the admission half gates new prefills at
 * the engine's admission point.
 */
class SchedPolicy : public sim::QueueArbiter
{
  public:
    explicit SchedPolicy(const SchedPolicyConfig &config)
        : config_(config)
    {
    }

    SchedPolicyKind kind() const { return config_.kind; }
    const SchedPolicyConfig &config() const { return config_; }
    std::string name() const { return schedPolicyName(config_.kind); }

    /**
     * True when the xPU timelines need queue-based arbitration
     * (non-FIFO pick order or quantum slicing). False keeps the
     * plain FIFO reservation timeline, bit-identical to PR 2.
     */
    virtual bool reordersXpu() const { return false; }

    /**
     * True when admitPrefill() steers on the observed gap p95, so
     * the engine only pays for the windowed percentile when a policy
     * consumes it.
     */
    virtual bool needsGapSignal() const { return false; }

    /**
     * Admission gate for a new prefill. @p observed_p95_gap is the
     * windowed p95 decode token gap over @p gap_samples recent
     * samples; @p decode_in_flight tells whether any cohort is
     * decoding (a gate must never bind with nothing decoding, or
     * admission could deadlock). @return false to defer.
     */
    virtual bool
    admitPrefill(double observed_p95_gap, std::size_t gap_samples,
                 bool decode_in_flight) const
    {
        return admitPrefillAt(observed_p95_gap, gap_samples,
                              decode_in_flight,
                              config_.sloTargetGapSeconds);
    }

    /**
     * Per-class admission gate: like admitPrefill(), but against an
     * explicit @p target_gap — the engine calls this once per tier
     * whose windowed p95 guards the candidate prefill, passing each
     * tier's own RequestClass::gapSloSeconds target. The base policy
     * never defers.
     */
    virtual bool
    admitPrefillAt(double observed_p95_gap, std::size_t gap_samples,
                   bool decode_in_flight, double target_gap) const
    {
        (void)observed_p95_gap;
        (void)gap_samples;
        (void)decode_in_flight;
        (void)target_gap;
        return true;
    }

  protected:
    SchedPolicyConfig config_;
};

/** Strict submission order (the PR 2 timeline, unchanged). */
class FifoPolicy : public SchedPolicy
{
  public:
    using SchedPolicy::SchedPolicy;
};

/** Decode FC shares overtake queued prefill chunks. */
class DecodePriorityPolicy : public SchedPolicy
{
  public:
    using SchedPolicy::SchedPolicy;

    bool reordersXpu() const override { return true; }

    std::size_t pickNext(
        const std::vector<const sim::WorkItem *> &eligible)
        const override;
};

/**
 * DecodePriority plus quantum preemption of in-flight prefill
 * chunks: a waiting decode share starts within one quantum.
 */
class ChunkPreemptPolicy : public DecodePriorityPolicy
{
  public:
    using DecodePriorityPolicy::DecodePriorityPolicy;

    double sliceSeconds(const sim::WorkItem &item) const override;
};

/**
 * FIFO timeline with SLO-aware admission: defer new prefills while
 * the observed p95 decode token gap exceeds the target.
 */
class SloAdmissionPolicy : public SchedPolicy
{
  public:
    using SchedPolicy::SchedPolicy;

    bool needsGapSignal() const override { return true; }

    bool admitPrefillAt(double observed_p95_gap,
                        std::size_t gap_samples,
                        bool decode_in_flight,
                        double target_gap) const override;
};

/**
 * Strict latency-tier bands on the xPU timelines: decode FC shares
 * of tier T overtake every queued item of tiers > T — lower-tier
 * *decode* items included, not just prefill chunks — and within one
 * tier decode precedes that tier's prefill chunks (FIFO inside a
 * band). In-flight work of a worse band is preempted by quantum
 * slicing so a tier inversion is bounded: prefill chunks at
 * preemptQuantumSeconds (any tier), lower-tier decode items at
 * tierPreemptQuantumSeconds. Tier-0 decode is never sliced. Slices
 * conserve each item's total charge exactly (the QueuedDevice /
 * preemptionSlices machinery, unchanged).
 */
class TierPriorityPolicy : public SchedPolicy
{
  public:
    using SchedPolicy::SchedPolicy;

    bool reordersXpu() const override { return true; }

    std::size_t pickNext(
        const std::vector<const sim::WorkItem *> &eligible)
        const override;

    double sliceSeconds(const sim::WorkItem &item) const override;
};

std::unique_ptr<SchedPolicy>
makeSchedPolicy(const SchedPolicyConfig &config);

} // namespace pimphony

#endif // PIMPHONY_SYSTEM_SCHED_POLICY_HH
