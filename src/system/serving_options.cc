#include "system/serving_options.hh"

namespace pimphony {

std::string
stepModelName(StepModel model)
{
    switch (model) {
      case StepModel::Analytic:    return "analytic";
      case StepModel::EventDriven: return "event-driven";
    }
    return "?";
}

} // namespace pimphony
