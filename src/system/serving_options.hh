/**
 * @file
 * Serving-time options shared by every front-end that drives the
 * engine.
 *
 * EngineOptions (the engine's own knob set) and OrchestratorConfig
 * (the library's top-level API) used to mirror these five fields by
 * hand, so every new serving knob had to be added — and copied at
 * runPlan time — in two places. Both now embed ServingOptions as a
 * base, and the orchestrator forwards the whole block with one slice
 * assignment; existing field accesses (`opts.stepModel`,
 * `config.sched`, ...) compile unchanged.
 */

#ifndef PIMPHONY_SYSTEM_SERVING_OPTIONS_HH
#define PIMPHONY_SYSTEM_SERVING_OPTIONS_HH

#include <string>
#include <vector>

#include "alloc/prefix_cache.hh"
#include "common/types.hh"
#include "system/sched_policy.hh"

namespace pimphony {

/** How the engine composes device time into serving time. */
enum class StepModel {
    /** Closed-form lockstep steps: stageBeats * max_stage_sec. */
    Analytic,

    /** Event-driven cohort pipeline on the sim core (default). */
    EventDriven,
};

std::string stepModelName(StepModel model);

/**
 * Admission budget of one tenant: a guaranteed share of the KV token
 * capacity. A tenant may always admit up to share * capacityTokens
 * of reserved decode trajectories; beyond that it *borrows* — and
 * borrowing is allowed only while no other tenant has an
 * under-budget ("entitled") request waiting, so a saturating tenant
 * can use an idle tenant's headroom (work conserving) but can never
 * hold an active tenant below its guarantee as admissions churn.
 * Tenants without a configured budget are borrow-only.
 */
struct TenantBudget
{
    unsigned tenant = 0;

    /** Guaranteed fraction of the KV token capacity, in [0, 1]. */
    double share = 0.0;
};

/**
 * The serving knobs common to EngineOptions and OrchestratorConfig.
 */
struct ServingOptions
{
    StepModel stepModel = StepModel::EventDriven;

    /**
     * Context tokens per prefill chunk. When > 0 under the
     * event-driven model, admitted requests prefill as chunked work
     * items on the xPU stage timelines (continuous prefill/decode
     * batching) instead of a scalar time charge; smaller chunks
     * interleave more finely with decode at the cost of more
     * hand-offs. Under the analytic model a positive value falls
     * back to the scalar charge (chargePrefill semantics) so the two
     * models stay comparable. 0 disables chunking.
     */
    Tokens prefillChunkTokens = 0;

    /**
     * Charge prefill compute time when a request is admitted
     * (extension; the paper's evaluation, like ours by default,
     * reports decode throughput).
     */
    bool chargePrefill = false;

    /**
     * Prefill/decode co-scheduling policy for the per-stage xPU
     * timelines (and the admission gate). Defaults to FIFO — the
     * PR 2 behavior, bit for bit. Policies act under the
     * event-driven model only; the analytic model has no per-item
     * timeline to arbitrate and ignores them.
     */
    SchedPolicyConfig sched;

    /**
     * Per-tenant admission budgets (token-capacity shares with
     * work-conserving borrowing; see TenantBudget). Empty — the
     * default — disables tenant accounting entirely: admission is
     * the plain FIFO queue, bit for bit. With budgets set, admission
     * scans past budget-blocked requests so one saturating tenant
     * cannot head-of-line block the others.
     */
    std::vector<TenantBudget> tenantBudgets;

    /**
     * Copy-on-write prefix sharing over the paged KV allocator (see
     * alloc/prefix_cache.hh): requests whose workload-declared
     * prefix — or retained session history — is cached skip the
     * cached share of their prefill charge and map the shared chunks
     * instead of reserving fresh ones. Disabled by default; off
     * reproduces the cache-less engine bit for bit. Requires the
     * event-driven model and the LazyChunk allocator.
     */
    PrefixCacheOptions prefixCache;
};

} // namespace pimphony

#endif // PIMPHONY_SYSTEM_SERVING_OPTIONS_HH
