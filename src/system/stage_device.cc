#include "system/stage_device.hh"

#include <algorithm>
#include <utility>

namespace pimphony {

PipelineStage::PipelineStage(std::string name, PimModuleModel &pim,
                             XpuModel *xpu,
                             const sim::QueueArbiter *arbiter)
    : sim::Device(name), arbiter_(arbiter), pim_(name + ".pim", pim)
{
    if (xpu)
        xpu_ = std::make_unique<XpuStageDevice>(name + ".xpu", *xpu,
                                                arbiter);
}

double
PipelineStage::submit(sim::EventQueue &queue, const sim::WorkItem &item,
                      double ready, CompletionFn done)
{
    if (item.kind == sim::WorkItem::Kind::PrefillChunk) {
        // Prefill chunks occupy the stage's compute timeline (the
        // xPU when one exists, else the serializing device), queueing
        // with decode FC shares under the attached arbitration.
        sim::Device &dev =
            xpu_ ? static_cast<sim::Device &>(*xpu_) : pim_;
        return dev.submit(queue, item, ready, std::move(done));
    }

    if (arbiter_ && xpu_ && item.fcSeconds > 0.0) {
        // Arbitrated path: the FC share's completion depends on
        // future arbitration, so the stage queues decode items and
        // joins the two timelines in event time.
        double estimate =
            std::max(ready, pim_.busyUntil()) + item.seconds;
        decodeQ_.push(DecodeEntry{item, ready, std::move(done)});
        pumpDecode(queue);
        return estimate;
    }

    double start = std::max(ready, pim_.busyUntil());
    sim::WorkItem main = item;
    if (xpu_ && item.fcSeconds > 0.0) {
        sim::WorkItem fc = item;
        fc.seconds = std::min(item.fcSeconds, item.seconds);
        fc.fcSeconds = 0.0;
        // The FC share queues on the xPU timeline from the moment
        // the composite item starts. With an idle xPU it shadows the
        // serializing timeline (fc <= seconds); behind queued prefill
        // chunks it completes late and gates the stage instead.
        double fc_done = xpu_->submit(queue, fc, start);
        // Reservation arithmetic is synchronous, so the queueing
        // delay is known here; record it to keep the decode-wait
        // metric comparable with arbitrated policies.
        xpu_->noteDecodeWait(fc_done - fc.seconds - start);
        if (fc_done > start + item.seconds)
            main.seconds = fc_done - start;
    }
    return pim_.submit(queue, main, ready, std::move(done));
}

void
PipelineStage::pumpDecode(sim::EventQueue &queue)
{
    if (decodeInFlight_ || decodeQ_.empty())
        return;
    // The arbiter picks among the queued decode items too, so a
    // tier-aware policy serves a higher tier's cohort first when two
    // cohorts queue at one stage. Policies that pick the first
    // decode item (DecodePriority, ChunkPreempt) reduce to the FIFO
    // pop exactly.
    std::size_t pick = 0;
    if (decodeQ_.size() > 1) {
        decodeEligible_.clear();
        for (std::size_t i = 0; i < decodeQ_.size(); ++i)
            decodeEligible_.push_back(&decodeQ_.at(i).item);
        pick = arbiter_->pickNext(decodeEligible_);
        if (pick >= decodeQ_.size())
            pick = 0;
    }
    DecodeEntry e = decodeQ_.takeAt(pick);
    decodeInFlight_ = true;
    decodeDone_ = std::move(e.done);

    double start = std::max(e.ready, pim_.busyUntil());
    sim::WorkItem att = e.item;
    att.fcSeconds = 0.0;
    // The attention charge reserves the serializing timeline now;
    // its end is exact (plain FIFO arithmetic, one item in flight).
    double att_end = pim_.submit(queue, att, e.ready);

    sim::WorkItem fc = e.item;
    fc.seconds = std::min(e.item.fcSeconds, e.item.seconds);
    fc.fcSeconds = 0.0;
    xpu_->submit(queue, fc, start,
                 [this, &queue, att_end](double fc_end) {
                     joinDecode(queue, att_end, fc_end);
                 });
}

void
PipelineStage::joinDecode(sim::EventQueue &queue, double att_end,
                          double fc_end)
{
    double completion = std::max(att_end, fc_end);
    if (fc_end > att_end) {
        // The FC share was gated behind prefill work: charge the
        // stall to the serializing timeline, as the FIFO path does
        // by extending the item's service, so the next decode item
        // cannot start under the stall.
        sim::WorkItem stall;
        stall.seconds = fc_end - att_end;
        pim_.submit(queue, stall, att_end);
    }
    queue.schedule(completion, [this, &queue](double t) {
        decodeInFlight_ = false;
        CompletionFn done = std::move(decodeDone_);
        decodeDone_ = nullptr;
        if (done)
            done(t);
        pumpDecode(queue);
    });
}

StageDeviceSet::StageDeviceSet(unsigned pp, PimModuleModel &pim,
                               XpuModel *xpu,
                               const sim::QueueArbiter *arbiter)
{
    std::vector<sim::Device *> devices;
    for (unsigned s = 0; s < pp; ++s) {
        stages_.push_back(std::make_unique<PipelineStage>(
            "stage" + std::to_string(s), pim, xpu, arbiter));
        devices.push_back(stages_.back().get());
    }
    pipeline_ = std::make_unique<sim::StagePipeline>(devices);
}

} // namespace pimphony
