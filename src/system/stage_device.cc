#include "system/stage_device.hh"

#include <algorithm>

namespace pimphony {

PipelineStage::PipelineStage(std::string name, PimModuleModel &pim,
                             XpuModel *xpu)
    : sim::Device(name), pim_(name + ".pim", pim)
{
    if (xpu)
        xpu_ = std::make_unique<XpuStageDevice>(name + ".xpu", *xpu);
}

double
PipelineStage::submit(sim::EventQueue &queue, const sim::WorkItem &item,
                      double ready, CompletionFn done)
{
    double completion = pim_.submit(queue, item, ready, std::move(done));
    if (xpu_ && item.fcSeconds > 0.0) {
        sim::WorkItem fc = item;
        fc.seconds = std::min(item.fcSeconds, item.seconds);
        fc.fcSeconds = 0.0;
        // Shadow submission: starts when the composite item does.
        xpu_->submit(queue, fc, completion - item.seconds);
    }
    return completion;
}

StageDeviceSet::StageDeviceSet(unsigned pp, PimModuleModel &pim,
                               XpuModel *xpu)
{
    std::vector<sim::Device *> devices;
    for (unsigned s = 0; s < pp; ++s) {
        stages_.push_back(std::make_unique<PipelineStage>(
            "stage" + std::to_string(s), pim, xpu));
        devices.push_back(stages_.back().get());
    }
    pipeline_ = std::make_unique<sim::StagePipeline>(devices);
}

} // namespace pimphony
