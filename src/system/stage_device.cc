#include "system/stage_device.hh"

#include <algorithm>

namespace pimphony {

PipelineStage::PipelineStage(std::string name, PimModuleModel &pim,
                             XpuModel *xpu)
    : sim::Device(name), pim_(name + ".pim", pim)
{
    if (xpu)
        xpu_ = std::make_unique<XpuStageDevice>(name + ".xpu", *xpu);
}

double
PipelineStage::submit(sim::EventQueue &queue, const sim::WorkItem &item,
                      double ready, CompletionFn done)
{
    if (item.kind == sim::WorkItem::Kind::PrefillChunk) {
        // Prefill chunks occupy the stage's compute timeline (the
        // xPU when one exists, else the serializing device), queueing
        // FIFO with decode FC shares submitted around them.
        sim::Device &dev =
            xpu_ ? static_cast<sim::Device &>(*xpu_) : pim_;
        return dev.submit(queue, item, ready, std::move(done));
    }

    double start = std::max(ready, pim_.busyUntil());
    sim::WorkItem main = item;
    if (xpu_ && item.fcSeconds > 0.0) {
        sim::WorkItem fc = item;
        fc.seconds = std::min(item.fcSeconds, item.seconds);
        fc.fcSeconds = 0.0;
        // The FC share queues on the xPU timeline from the moment
        // the composite item starts. With an idle xPU it shadows the
        // serializing timeline (fc <= seconds); behind queued prefill
        // chunks it completes late and gates the stage instead.
        double fc_done = xpu_->submit(queue, fc, start);
        if (fc_done > start + item.seconds)
            main.seconds = fc_done - start;
    }
    return pim_.submit(queue, main, ready, std::move(done));
}

StageDeviceSet::StageDeviceSet(unsigned pp, PimModuleModel &pim,
                               XpuModel *xpu)
{
    std::vector<sim::Device *> devices;
    for (unsigned s = 0; s < pp; ++s) {
        stages_.push_back(std::make_unique<PipelineStage>(
            "stage" + std::to_string(s), pim, xpu));
        devices.push_back(stages_.back().get());
    }
    pipeline_ = std::make_unique<sim::StagePipeline>(devices);
}

} // namespace pimphony
