/**
 * @file
 * Adapters that put the system's device models behind the sim core's
 * Device interface.
 *
 * One pipeline stage of the serving engine is a PipelineStage: its
 * serializing timeline is the PIM side (attention always runs
 * there), and in xPU+PIM systems an xPU timeline shadows the FC
 * share of each work item — FC of one cohort overlaps PIM attention
 * of the same (and, across stages, other) cohorts, which is the
 * overlap NeuPIMs-like systems are built around. The same xPU
 * timeline serves prefill chunks in FIFO order with the decode FC
 * shares, which is where prefill/decode interference appears in the
 * simulation.
 */

#ifndef PIMPHONY_SYSTEM_STAGE_DEVICE_HH
#define PIMPHONY_SYSTEM_STAGE_DEVICE_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/device.hh"
#include "sim/pipeline.hh"
#include "sim/ring_buffer.hh"
#include "system/pim_module.hh"
#include "system/xpu.hh"

namespace pimphony {

/** The PIM side of a stage: a FIFO timeline over a module model. */
class PimStageDevice : public sim::Device
{
  public:
    PimStageDevice(std::string name, PimModuleModel &model)
        : sim::Device(std::move(name)), model_(&model)
    {
    }

    PimModuleModel &model() { return *model_; }

  private:
    PimModuleModel *model_;
};

/**
 * The xPU side of a stage: a timeline over an xPU model. With a null
 * arbiter it is the PR 2 FIFO reservation timeline; with a
 * co-scheduling policy attached it arbitrates between queued prefill
 * chunks and decode FC shares (see system/sched_policy).
 */
class XpuStageDevice : public sim::QueuedDevice
{
  public:
    XpuStageDevice(std::string name, XpuModel &model,
                   const sim::QueueArbiter *arbiter = nullptr)
        : sim::QueuedDevice(std::move(name), arbiter), model_(&model)
    {
    }

    XpuModel &model() { return *model_; }

    /**
     * Prefill seconds actually served to completion on this
     * timeline. Policies relocate prefill work in time; none may
     * lose any of its charge (conservation is asserted against the
     * planner's apportioned totals).
     */
    double prefillBusySeconds() const { return prefillBusy_; }

  protected:
    void
    onComplete(const sim::WorkItem &item, double) override
    {
        if (item.kind == sim::WorkItem::Kind::PrefillChunk)
            prefillBusy_ += item.seconds;
    }

  private:
    XpuModel *model_;
    double prefillBusy_ = 0.0;
};

/**
 * One PP stage: serializes decode cohorts on the PIM timeline and,
 * when an xPU timeline is attached, runs each item's FC share there
 * together with prefill chunks. With an idle xPU the FC share (never
 * larger than the item's total service time) trails the PIM timeline
 * as a pure shadow; when prefill chunks congest the xPU the FC share
 * completes late and the stage is extended to cover the stall, so
 * prefill delays decode exactly as a shared compute engine would.
 * PrefillChunk items route to the xPU timeline (or the PIM timeline
 * when the stage has none).
 *
 * With a co-scheduling arbiter attached, the xPU timeline is
 * queue-arbitrated and an FC share's completion is unknown at submit
 * time (later decode work may overtake queued chunks), so the stage
 * serializes decode items through its own queue and joins the PIM
 * and xPU completions in event time: the stage completes at
 * max(attention end, FC end), and any FC stall is charged to the PIM
 * timeline to keep it serializing (as the FIFO path does by
 * extending the item). Without an arbiter the PR 2 synchronous path
 * is used unchanged.
 */
class PipelineStage : public sim::Device
{
  public:
    PipelineStage(std::string name, PimModuleModel &pim, XpuModel *xpu,
                  const sim::QueueArbiter *arbiter = nullptr);

    double submit(sim::EventQueue &queue, const sim::WorkItem &item,
                  double ready, CompletionFn done = nullptr) override;

    double busyUntil() const override { return pim_.busyUntil(); }
    double busySeconds() const override { return pim_.busySeconds(); }
    std::uint64_t completedItems() const override
    {
        return pim_.completedItems();
    }

    PimStageDevice &pim() { return pim_; }
    XpuStageDevice *xpu() { return xpu_ ? xpu_.get() : nullptr; }

  private:
    struct DecodeEntry
    {
        sim::WorkItem item;
        double ready = 0.0;
        CompletionFn done;
    };

    /** Start the next queued decode item (arbitrated path). */
    void pumpDecode(sim::EventQueue &queue);

    /** Join point: both attention and FC ends known. */
    void joinDecode(sim::EventQueue &queue, double att_end,
                    double fc_end);

    const sim::QueueArbiter *arbiter_ = nullptr;
    PimStageDevice pim_;
    std::unique_ptr<XpuStageDevice> xpu_;
    sim::RingQueue<DecodeEntry> decodeQ_;
    /** pumpDecode's arbitration scratch (reused, never re-entered). */
    std::vector<const sim::WorkItem *> decodeEligible_;
    bool decodeInFlight_ = false;
    CompletionFn decodeDone_;
};

/**
 * Build the per-stage devices for a PP-deep pipeline and a
 * StagePipeline view over them. @p arbiter (optional) attaches a
 * co-scheduling policy to every stage's xPU timeline.
 */
class StageDeviceSet
{
  public:
    StageDeviceSet(unsigned pp, PimModuleModel &pim, XpuModel *xpu,
                   const sim::QueueArbiter *arbiter = nullptr);

    sim::StagePipeline &pipeline() { return *pipeline_; }
    PipelineStage &stage(unsigned s) { return *stages_[s]; }
    unsigned count() const
    {
        return static_cast<unsigned>(stages_.size());
    }

  private:
    std::vector<std::unique_ptr<PipelineStage>> stages_;
    std::unique_ptr<sim::StagePipeline> pipeline_;
};

} // namespace pimphony

#endif // PIMPHONY_SYSTEM_STAGE_DEVICE_HH
