/**
 * @file
 * Adapters that put the system's device models behind the sim core's
 * Device interface.
 *
 * One pipeline stage of the serving engine is a PipelineStage: its
 * serializing timeline is the PIM side (attention always runs
 * there), and in xPU+PIM systems an xPU timeline shadows the FC
 * share of each work item — FC of one cohort overlaps PIM attention
 * of the same (and, across stages, other) cohorts, which is the
 * overlap NeuPIMs-like systems are built around. The same xPU
 * timeline serves prefill chunks in FIFO order with the decode FC
 * shares, which is where prefill/decode interference appears in the
 * simulation.
 */

#ifndef PIMPHONY_SYSTEM_STAGE_DEVICE_HH
#define PIMPHONY_SYSTEM_STAGE_DEVICE_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/device.hh"
#include "sim/pipeline.hh"
#include "system/pim_module.hh"
#include "system/xpu.hh"

namespace pimphony {

/** The PIM side of a stage: a FIFO timeline over a module model. */
class PimStageDevice : public sim::Device
{
  public:
    PimStageDevice(std::string name, PimModuleModel &model)
        : sim::Device(std::move(name)), model_(&model)
    {
    }

    PimModuleModel &model() { return *model_; }

  private:
    PimModuleModel *model_;
};

/** The xPU side of a stage: a FIFO timeline over an xPU model. */
class XpuStageDevice : public sim::Device
{
  public:
    XpuStageDevice(std::string name, XpuModel &model)
        : sim::Device(std::move(name)), model_(&model)
    {
    }

    XpuModel &model() { return *model_; }

  private:
    XpuModel *model_;
};

/**
 * One PP stage: serializes decode cohorts on the PIM timeline and,
 * when an xPU timeline is attached, runs each item's FC share there
 * in FIFO order with prefill chunks. With an idle xPU the FC share
 * (never larger than the item's total service time) trails the PIM
 * timeline as a pure shadow; when prefill chunks congest the xPU the
 * FC share completes late and the decode item is extended to cover
 * the stall, so prefill delays decode exactly as a shared compute
 * engine would. PrefillChunk items route to the xPU timeline (or the
 * PIM timeline when the stage has none).
 */
class PipelineStage : public sim::Device
{
  public:
    PipelineStage(std::string name, PimModuleModel &pim, XpuModel *xpu);

    double submit(sim::EventQueue &queue, const sim::WorkItem &item,
                  double ready, CompletionFn done = nullptr) override;

    double busyUntil() const override { return pim_.busyUntil(); }
    double busySeconds() const override { return pim_.busySeconds(); }
    std::uint64_t completedItems() const override
    {
        return pim_.completedItems();
    }

    PimStageDevice &pim() { return pim_; }
    XpuStageDevice *xpu() { return xpu_ ? xpu_.get() : nullptr; }

  private:
    PimStageDevice pim_;
    std::unique_ptr<XpuStageDevice> xpu_;
};

/**
 * Build the per-stage devices for a PP-deep pipeline and a
 * StagePipeline view over them.
 */
class StageDeviceSet
{
  public:
    StageDeviceSet(unsigned pp, PimModuleModel &pim, XpuModel *xpu);

    sim::StagePipeline &pipeline() { return *pipeline_; }
    PipelineStage &stage(unsigned s) { return *stages_[s]; }
    unsigned count() const
    {
        return static_cast<unsigned>(stages_.size());
    }

  private:
    std::vector<std::unique_ptr<PipelineStage>> stages_;
    std::unique_ptr<sim::StagePipeline> pipeline_;
};

} // namespace pimphony

#endif // PIMPHONY_SYSTEM_STAGE_DEVICE_HH
