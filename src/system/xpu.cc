#include "system/xpu.hh"

#include <algorithm>

namespace pimphony {

XpuConfig
XpuConfig::neupimsNpu()
{
    XpuConfig c;
    c.peakFlops = tflops(256); // 8 matrix units (Table IV)
    c.memBandwidth = tbPerSec(1.0);
    return c;
}

XpuConfig
XpuConfig::centPnm()
{
    XpuConfig c;
    c.peakFlops = tflops(3); // Table IV
    c.memBandwidth = tbPerSec(0.5);
    c.halfSaturationBatch = 4.0;
    return c;
}

double
XpuModel::gemmSeconds(double flops, Bytes weight_bytes,
                      std::uint32_t batch) const
{
    double b = std::max<std::uint32_t>(batch, 1);
    double efficiency = b / (b + config_.halfSaturationBatch);
    double compute = flops / (config_.peakFlops * efficiency);
    double memory = static_cast<double>(weight_bytes) /
                    config_.memBandwidth;
    return std::max(compute, memory);
}

GpuConfig
GpuConfig::a100()
{
    return GpuConfig{};
}

} // namespace pimphony
