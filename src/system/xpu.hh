/**
 * @file
 * Roofline models for the non-PIM compute engines: the NPU matrix
 * units of the NeuPIMs-like heterogeneous system, the PNM processor
 * of the CENT-like system, and the A100 GPU baseline of Fig. 20.
 */

#ifndef PIMPHONY_SYSTEM_XPU_HH
#define PIMPHONY_SYSTEM_XPU_HH

#include <cstdint>

#include "common/types.hh"
#include "common/units.hh"

namespace pimphony {

struct XpuConfig
{
    /** Peak FP16 throughput. */
    FlopsPerSecond peakFlops = tflops(256);

    /** Memory bandwidth available for weight/activation streaming. */
    BytesPerSecond memBandwidth = tbPerSec(1.0);

    /** Batch size at which GEMM efficiency reaches one half. */
    double halfSaturationBatch = 16.0;

    /** Table IV presets. */
    static XpuConfig neupimsNpu();
    static XpuConfig centPnm();
};

class XpuModel
{
  public:
    explicit XpuModel(const XpuConfig &config) : config_(config) {}

    /**
     * Seconds to run a batched GEMM: @p batch input rows against
     * @p weight_bytes of FP16 weights performing @p flops total
     * floating-point operations. Weights stream once per batch; the
     * matrix units saturate with batch size.
     */
    double gemmSeconds(double flops, Bytes weight_bytes,
                       std::uint32_t batch) const;

    const XpuConfig &config() const { return config_; }

  private:
    XpuConfig config_;
};

struct GpuConfig
{
    FlopsPerSecond peakFlops = tflops(312);
    BytesPerSecond hbmBandwidth = tbPerSec(2.0);
    Bytes memoryBytes = 80_GiB;

    /** Flash-decoding efficiency on the KV scan. */
    double flashDecodingEfficiency = 0.75;

    /** GEMM efficiency on decode-size batches. */
    double gemmEfficiency = 0.55;

    /** Paged-attention capacity efficiency (vs. raw capacity). */
    double pagedAttentionUtilization = 0.88;

    static GpuConfig a100();
};

} // namespace pimphony

#endif // PIMPHONY_SYSTEM_XPU_HH
