#include "workload/arrival.hh"

#include <algorithm>

#include "common/logging.hh"
#include "workload/arrival_process.hh"

namespace pimphony {

// The three generators are thin wrappers over their ArrivalProcess
// implementations (workload/arrival_process.hh) — same RNG draw
// order, bit-identical output, asserted in tests/workload_test.cc.

std::vector<TimedRequest>
poissonArrivals(const std::vector<Request> &requests,
                double rate_per_second, std::uint64_t seed)
{
    PoissonProcess process(rate_per_second);
    return attachArrivals(requests, process, seed);
}

std::vector<TimedRequest>
gammaArrivals(const std::vector<Request> &requests, double rate_per_second,
              double cv, std::uint64_t seed)
{
    GammaProcess process(rate_per_second, cv);
    return attachArrivals(requests, process, seed);
}

std::vector<TimedRequest>
onOffArrivals(const std::vector<Request> &requests,
              const OnOffTraffic &traffic, std::uint64_t seed)
{
    OnOffProcess process(traffic);
    return attachArrivals(requests, process, seed);
}

void
sortByArrival(std::vector<TimedRequest> &requests)
{
    std::stable_sort(requests.begin(), requests.end(),
                     [](const TimedRequest &a, const TimedRequest &b) {
                         return a.arrivalSeconds < b.arrivalSeconds;
                     });
}

void
requireSortedByArrival(const std::vector<TimedRequest> &requests,
                       const char *context)
{
    for (std::size_t i = 1; i < requests.size(); ++i)
        if (requests[i].arrivalSeconds <
            requests[i - 1].arrivalSeconds)
            fatal("%s: arrivals out of order at index %zu "
                  "(request %u at %.17g after request %u at %.17g); "
                  "sortByArrival() first",
                  context, i,
                  static_cast<unsigned>(requests[i].request.id),
                  requests[i].arrivalSeconds,
                  static_cast<unsigned>(requests[i - 1].request.id),
                  requests[i - 1].arrivalSeconds);
}

std::vector<TimedRequest>
immediateArrivals(const std::vector<Request> &requests)
{
    std::vector<TimedRequest> out;
    out.reserve(requests.size());
    for (const auto &r : requests)
        out.push_back({r, 0.0});
    return out;
}

} // namespace pimphony
