#include "workload/arrival.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pimphony {

std::vector<TimedRequest>
poissonArrivals(const std::vector<Request> &requests,
                double rate_per_second, std::uint64_t seed)
{
    if (rate_per_second <= 0.0)
        fatal("arrival rate must be positive");
    Rng rng(seed);
    std::vector<TimedRequest> out;
    out.reserve(requests.size());
    double t = 0.0;
    for (const auto &r : requests) {
        double u = rng.uniform();
        if (u <= 0.0)
            u = 1e-12;
        t += -std::log(u) / rate_per_second;
        out.push_back({r, t});
    }
    return out;
}

std::vector<TimedRequest>
gammaArrivals(const std::vector<Request> &requests, double rate_per_second,
              double cv, std::uint64_t seed)
{
    if (rate_per_second <= 0.0)
        fatal("arrival rate must be positive");
    if (cv <= 0.0)
        fatal("arrival CV must be positive");
    // Gamma(k, theta): mean = k * theta = 1 / rate, CV = 1 / sqrt(k).
    double shape = 1.0 / (cv * cv);
    double scale = cv * cv / rate_per_second;
    Rng rng(seed);
    std::gamma_distribution<double> gap(shape, scale);
    std::vector<TimedRequest> out;
    out.reserve(requests.size());
    double t = 0.0;
    for (const auto &r : requests) {
        t += gap(rng.engine());
        out.push_back({r, t});
    }
    return out;
}

std::vector<TimedRequest>
onOffArrivals(const std::vector<Request> &requests,
              const OnOffTraffic &traffic, std::uint64_t seed)
{
    if (traffic.onRate <= 0.0 && traffic.offRate <= 0.0)
        fatal("on/off arrivals need a positive rate in some state");
    if (traffic.meanOnSeconds <= 0.0 || traffic.meanOffSeconds <= 0.0)
        fatal("on/off sojourn times must be positive");
    Rng rng(seed);
    auto expDraw = [&rng](double mean) {
        double u = rng.uniform();
        if (u <= 0.0)
            u = 1e-12;
        return -std::log(u) * mean;
    };
    std::vector<TimedRequest> out;
    out.reserve(requests.size());
    double t = 0.0;
    bool on = true;
    double state_end = expDraw(traffic.meanOnSeconds);
    for (const auto &r : requests) {
        for (;;) {
            double rate = on ? traffic.onRate : traffic.offRate;
            // Memoryless in both dimensions: redrawing the arrival
            // gap after a state flip preserves the MMPP statistics.
            if (rate > 0.0) {
                double next = t + expDraw(1.0 / rate);
                if (next <= state_end) {
                    t = next;
                    break;
                }
            }
            t = state_end;
            on = !on;
            state_end = t + expDraw(on ? traffic.meanOnSeconds
                                       : traffic.meanOffSeconds);
        }
        out.push_back({r, t});
    }
    return out;
}

void
sortByArrival(std::vector<TimedRequest> &requests)
{
    std::stable_sort(requests.begin(), requests.end(),
                     [](const TimedRequest &a, const TimedRequest &b) {
                         return a.arrivalSeconds < b.arrivalSeconds;
                     });
}

std::vector<TimedRequest>
immediateArrivals(const std::vector<Request> &requests)
{
    std::vector<TimedRequest> out;
    out.reserve(requests.size());
    for (const auto &r : requests)
        out.push_back({r, 0.0});
    return out;
}

} // namespace pimphony
