#include "workload/arrival.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pimphony {

std::vector<TimedRequest>
poissonArrivals(const std::vector<Request> &requests,
                double rate_per_second, std::uint64_t seed)
{
    if (rate_per_second <= 0.0)
        fatal("arrival rate must be positive");
    Rng rng(seed);
    std::vector<TimedRequest> out;
    out.reserve(requests.size());
    double t = 0.0;
    for (const auto &r : requests) {
        double u = rng.uniform();
        if (u <= 0.0)
            u = 1e-12;
        t += -std::log(u) / rate_per_second;
        out.push_back({r, t});
    }
    return out;
}

void
sortByArrival(std::vector<TimedRequest> &requests)
{
    std::stable_sort(requests.begin(), requests.end(),
                     [](const TimedRequest &a, const TimedRequest &b) {
                         return a.arrivalSeconds < b.arrivalSeconds;
                     });
}

std::vector<TimedRequest>
immediateArrivals(const std::vector<Request> &requests)
{
    std::vector<TimedRequest> out;
    out.reserve(requests.size());
    for (const auto &r : requests)
        out.push_back({r, 0.0});
    return out;
}

} // namespace pimphony
