/**
 * @file
 * Open-loop arrival processes for online serving experiments.
 *
 * The paper's evaluation is closed-loop (a fixed request pool), but a
 * deployed long-context service sees requests arrive over time; the
 * Poisson process here lets the engine run open-loop and report
 * request latency percentiles in addition to throughput.
 */

#ifndef PIMPHONY_WORKLOAD_ARRIVAL_HH
#define PIMPHONY_WORKLOAD_ARRIVAL_HH

#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "workload/trace.hh"

namespace pimphony {

/** A request plus its arrival time on the serving clock. */
struct TimedRequest
{
    Request request;
    double arrivalSeconds = 0.0;
};

/**
 * Attach Poisson arrivals at @p rate_per_second to @p requests
 * (exponential inter-arrival times, deterministic per seed).
 */
std::vector<TimedRequest> poissonArrivals(const std::vector<Request> &requests,
                                          double rate_per_second,
                                          std::uint64_t seed);

/** All requests available at time zero (closed-loop). */
std::vector<TimedRequest>
immediateArrivals(const std::vector<Request> &requests);

/**
 * Stable-sort @p requests by arrival time. The serving engine's
 * admission queue and the event-driven core's arrival events both
 * assume nondecreasing arrival order; generators already satisfy it,
 * hand-built traces may not.
 */
void sortByArrival(std::vector<TimedRequest> &requests);

} // namespace pimphony

#endif // PIMPHONY_WORKLOAD_ARRIVAL_HH
