/**
 * @file
 * Open-loop arrival processes for online serving experiments.
 *
 * The paper's evaluation is closed-loop (a fixed request pool), but a
 * deployed long-context service sees requests arrive over time; the
 * Poisson process here lets the engine run open-loop and report
 * request latency percentiles in addition to throughput.
 *
 * Deprecation note: the free functions below are retained as thin,
 * bit-identical wrappers over the ArrivalProcess implementations in
 * workload/arrival_process.hh. New code should compose workloads
 * through WorkloadSpec / buildWorkload() (workload/spec.hh), which
 * also covers class mixes, sessions, and the diurnal rate curve the
 * free functions cannot express.
 */

#ifndef PIMPHONY_WORKLOAD_ARRIVAL_HH
#define PIMPHONY_WORKLOAD_ARRIVAL_HH

#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "workload/trace.hh"

namespace pimphony {

/** A request plus its arrival time on the serving clock. */
struct TimedRequest
{
    Request request;
    double arrivalSeconds = 0.0;
};

/**
 * Attach Poisson arrivals at @p rate_per_second to @p requests
 * (exponential inter-arrival times, deterministic per seed).
 */
std::vector<TimedRequest> poissonArrivals(const std::vector<Request> &requests,
                                          double rate_per_second,
                                          std::uint64_t seed);

/**
 * Bursty open-loop arrivals: gamma inter-arrival times with mean
 * 1 / @p rate_per_second and coefficient of variation @p cv.
 * cv == 1 recovers the Poisson process; cv > 1 clusters arrivals
 * (heavier bursts than Poisson); cv < 1 smooths them. Deterministic
 * per seed.
 */
std::vector<TimedRequest> gammaArrivals(const std::vector<Request> &requests,
                                        double rate_per_second, double cv,
                                        std::uint64_t seed);

/**
 * Two-state on/off (MMPP-like) burst process: the source alternates
 * between an ON state emitting Poisson arrivals at @ref onRate and
 * an OFF state at @ref offRate (0 = silent), with exponentially
 * distributed state sojourn times. Long-run average rate is
 * (onRate * meanOnSeconds + offRate * meanOffSeconds) /
 * (meanOnSeconds + meanOffSeconds).
 */
struct OnOffTraffic
{
    /** Arrival rate while ON (requests / second). */
    double onRate = 10.0;

    /** Arrival rate while OFF (0 = completely silent). */
    double offRate = 0.0;

    /** Mean sojourn seconds in the ON state. */
    double meanOnSeconds = 1.0;

    /** Mean sojourn seconds in the OFF state. */
    double meanOffSeconds = 1.0;
};

/** Attach on/off burst arrivals; deterministic per seed. */
std::vector<TimedRequest> onOffArrivals(const std::vector<Request> &requests,
                                        const OnOffTraffic &traffic,
                                        std::uint64_t seed);

/** All requests available at time zero (closed-loop). */
std::vector<TimedRequest>
immediateArrivals(const std::vector<Request> &requests);

/**
 * Stable-sort @p requests by arrival time. The serving engine's
 * admission queue and the event-driven core's arrival events both
 * assume nondecreasing arrival order; generators already satisfy it,
 * hand-built traces may not.
 */
void sortByArrival(std::vector<TimedRequest> &requests);

/**
 * Check the nondecreasing-arrival invariant sortByArrival
 * establishes and fatal() with @p context on the first violation —
 * the assert form of the sort, called where the serving engine
 * consumes a trace (declareWorkload / injectArrivals) so a
 * hand-built out-of-order trace fails loudly instead of silently
 * starving its early requests.
 */
void requireSortedByArrival(const std::vector<TimedRequest> &requests,
                            const char *context);

} // namespace pimphony

#endif // PIMPHONY_WORKLOAD_ARRIVAL_HH
