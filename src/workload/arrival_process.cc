#include "workload/arrival_process.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace pimphony {

void
ImmediateProcess::reset(std::uint64_t seed)
{
    (void)seed;
    armed_ = true;
}

double
ImmediateProcess::next()
{
    if (!armed_)
        fatal("ImmediateProcess::next() before reset()");
    return 0.0;
}

PoissonProcess::PoissonProcess(double rate_per_second)
    : rate_(rate_per_second)
{
    if (rate_ <= 0.0)
        fatal("arrival rate must be positive");
}

void
PoissonProcess::reset(std::uint64_t seed)
{
    rng_ = Rng(seed);
    t_ = 0.0;
    armed_ = true;
}

double
PoissonProcess::next()
{
    if (!armed_)
        fatal("PoissonProcess::next() before reset()");
    double u = rng_.uniform();
    if (u <= 0.0)
        u = 1e-12;
    t_ += -std::log(u) / rate_;
    return t_;
}

GammaProcess::GammaProcess(double rate_per_second, double cv)
{
    if (rate_per_second <= 0.0)
        fatal("arrival rate must be positive");
    if (cv <= 0.0)
        fatal("arrival CV must be positive");
    // Gamma(k, theta): mean = k * theta = 1 / rate, CV = 1 / sqrt(k).
    shape_ = 1.0 / (cv * cv);
    scale_ = cv * cv / rate_per_second;
}

void
GammaProcess::reset(std::uint64_t seed)
{
    rng_ = Rng(seed);
    // A fresh distribution per stream: gamma keeps internal state, so
    // reusing one across resets would break determinism per seed.
    gap_ = std::gamma_distribution<double>(shape_, scale_);
    t_ = 0.0;
    armed_ = true;
}

double
GammaProcess::next()
{
    if (!armed_)
        fatal("GammaProcess::next() before reset()");
    t_ += gap_(rng_.engine());
    return t_;
}

OnOffProcess::OnOffProcess(const OnOffTraffic &traffic)
    : traffic_(traffic)
{
    if (traffic_.onRate <= 0.0 && traffic_.offRate <= 0.0)
        fatal("on/off arrivals need a positive rate in some state");
    if (traffic_.meanOnSeconds <= 0.0 || traffic_.meanOffSeconds <= 0.0)
        fatal("on/off sojourn times must be positive");
}

double
OnOffProcess::expDraw(double mean)
{
    double u = rng_.uniform();
    if (u <= 0.0)
        u = 1e-12;
    return -std::log(u) * mean;
}

void
OnOffProcess::reset(std::uint64_t seed)
{
    rng_ = Rng(seed);
    t_ = 0.0;
    on_ = true;
    armed_ = true;
    stateEnd_ = expDraw(traffic_.meanOnSeconds);
}

double
OnOffProcess::next()
{
    if (!armed_)
        fatal("OnOffProcess::next() before reset()");
    for (;;) {
        double rate = on_ ? traffic_.onRate : traffic_.offRate;
        // Memoryless in both dimensions: redrawing the arrival
        // gap after a state flip preserves the MMPP statistics.
        if (rate > 0.0) {
            double next_t = t_ + expDraw(1.0 / rate);
            if (next_t <= stateEnd_) {
                t_ = next_t;
                return t_;
            }
        }
        t_ = stateEnd_;
        on_ = !on_;
        stateEnd_ = t_ + expDraw(on_ ? traffic_.meanOnSeconds
                                     : traffic_.meanOffSeconds);
    }
}

RateCurve
RateCurve::fromRates(const std::vector<double> &rates,
                     double segment_seconds)
{
    if (rates.empty())
        fatal("rate curve needs at least one rate");
    if (segment_seconds <= 0.0)
        fatal("rate curve segment length must be positive");
    RateCurve curve;
    curve.segments.reserve(rates.size());
    for (double r : rates)
        curve.segments.push_back({segment_seconds, r});
    return curve;
}

double
RateCurve::cycleSeconds() const
{
    double sum = 0.0;
    for (const auto &s : segments)
        sum += s.seconds;
    return sum;
}

double
RateCurve::meanRate() const
{
    double area = 0.0;
    for (const auto &s : segments)
        area += s.seconds * s.ratePerSecond;
    double cycle = cycleSeconds();
    return cycle > 0.0 ? area / cycle : 0.0;
}

PiecewiseRateCurve::PiecewiseRateCurve(const RateCurve &curve)
    : curve_(curve)
{
    if (curve_.segments.empty())
        fatal("rate curve needs at least one segment");
    bool any_positive = false;
    for (const auto &s : curve_.segments) {
        if (!(s.seconds > 0.0) || !std::isfinite(s.seconds))
            fatal("rate curve segment lengths must be positive");
        if (s.ratePerSecond < 0.0 || !std::isfinite(s.ratePerSecond))
            fatal("rate curve rates must be finite and nonnegative");
        any_positive = any_positive || s.ratePerSecond > 0.0;
    }
    if (!any_positive)
        fatal("rate curve needs a positive rate somewhere");
    if (!curve_.repeat &&
        curve_.segments.back().ratePerSecond <= 0.0)
        fatal("a non-repeating rate curve must end on a positive "
              "rate (the last segment extends forever)");
}

void
PiecewiseRateCurve::reset(std::uint64_t seed)
{
    rng_ = Rng(seed);
    t_ = 0.0;
    seg_ = 0;
    segStart_ = 0.0;
    armed_ = true;
}

double
PiecewiseRateCurve::segmentRate() const
{
    return curve_.segments[seg_].ratePerSecond;
}

double
PiecewiseRateCurve::segmentEnd() const
{
    return segStart_ + curve_.segments[seg_].seconds;
}

double
PiecewiseRateCurve::next()
{
    if (!armed_)
        fatal("PiecewiseRateCurve::next() before reset()");
    // Inversion: spend a unit-exponential area against the running
    // rate integral, walking segments as each one's area is used up.
    double u = rng_.uniform();
    if (u <= 0.0)
        u = 1e-12;
    double target = -std::log(u);
    for (;;) {
        double rate = segmentRate();
        bool tail = !curve_.repeat &&
                    seg_ + 1 == curve_.segments.size();
        double end = segmentEnd();
        if (rate > 0.0) {
            // The non-repeating tail extends its rate forever, so
            // its area is unbounded and always absorbs the target.
            double cap = tail ? std::numeric_limits<double>::infinity()
                              : rate * (end - t_);
            if (target <= cap) {
                t_ += target / rate;
                return t_;
            }
            target -= cap;
        } else if (tail) {
            fatal("rate curve exhausted with a zero tail rate");
        }
        t_ = end;
        segStart_ = end;
        seg_ = seg_ + 1 < curve_.segments.size() ? seg_ + 1 : 0;
    }
}

std::vector<TimedRequest>
attachArrivals(const std::vector<Request> &requests,
               ArrivalProcess &process, std::uint64_t seed)
{
    process.reset(seed);
    std::vector<TimedRequest> out;
    out.reserve(requests.size());
    for (const auto &r : requests)
        out.push_back({r, process.next()});
    return out;
}

} // namespace pimphony
