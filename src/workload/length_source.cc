#include "workload/length_source.hh"

#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>

#include "common/logging.hh"

namespace pimphony {

namespace {

/** Advance past spaces/tabs; true when a token remains. */
bool
skipBlank(const char *&p, const char *end)
{
    while (p < end && (*p == ' ' || *p == '\t'))
        ++p;
    return p < end;
}

} // namespace

void
LengthHistogram::add(Tokens prompt_tokens, Tokens decode_tokens,
                     double weight)
{
    if (!(weight > 0.0) || !std::isfinite(weight))
        fatal("length histogram weights must be positive");
    bins_.push_back({prompt_tokens, decode_tokens, weight});
    totalWeight_ += weight;
}

LengthHistogram
LengthHistogram::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open length histogram '%s'", path.c_str());
    LengthHistogram hist;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const char *p = line.data();
        const char *end = line.data() + line.size();
        if (!skipBlank(p, end) || *p == '#')
            continue;
        // "<prompt> <decode> [weight]" — std::from_chars keeps the
        // parse locale-independent.
        Tokens prompt = 0, decode = 0;
        auto r1 = std::from_chars(p, end, prompt);
        p = r1.ptr;
        if (r1.ec != std::errc{} || !skipBlank(p, end))
            fatal("%s:%zu: expected \"<prompt> <decode> [weight]\"",
                  path.c_str(), lineno);
        auto r2 = std::from_chars(p, end, decode);
        p = r2.ptr;
        if (r2.ec != std::errc{})
            fatal("%s:%zu: expected \"<prompt> <decode> [weight]\"",
                  path.c_str(), lineno);
        double weight = 1.0;
        if (skipBlank(p, end) && *p != '#') {
            auto r3 = std::from_chars(p, end, weight);
            p = r3.ptr;
            if (r3.ec != std::errc{})
                fatal("%s:%zu: bad weight", path.c_str(), lineno);
        }
        hist.add(prompt, decode, weight);
    }
    if (hist.empty())
        fatal("length histogram '%s' has no bins", path.c_str());
    return hist;
}

LengthPair
LengthHistogram::sample(Rng &rng) const
{
    if (bins_.empty())
        fatal("sampling an empty length histogram");
    double u = rng.uniform() * totalWeight_;
    double acc = 0.0;
    for (const auto &bin : bins_) {
        acc += bin.weight;
        if (u < acc)
            return {bin.promptTokens, bin.decodeTokens};
    }
    // FP accumulation can leave u a hair past the last edge.
    const Bin &last = bins_.back();
    return {last.promptTokens, last.decodeTokens};
}

} // namespace pimphony
