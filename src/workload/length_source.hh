/**
 * @file
 * Request-length sources for WorkloadSpec: explicit (prompt, output)
 * pairs and empirical histograms loaded from file.
 *
 * The Table II synthetic generator (workload/trace.hh) samples
 * context lengths from fitted distributions; real serving traces
 * instead come as measured (prompt, output) pairs, often aggregated
 * into a weighted histogram. These sources let a WorkloadSpec draw
 * lengths from either form — explicit pairs cycled in order
 * (deterministic, no RNG), or a histogram sampled by weight
 * (deterministic per seed).
 */

#ifndef PIMPHONY_WORKLOAD_LENGTH_SOURCE_HH
#define PIMPHONY_WORKLOAD_LENGTH_SOURCE_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace pimphony {

/** One measured (prompt, output) length pair. */
struct LengthPair
{
    /** Prompt (context) tokens prefilled before decoding starts. */
    Tokens promptTokens = 0;

    /** Output (decode) tokens generated before completion. */
    Tokens decodeTokens = 0;
};

/**
 * An empirical (prompt, output) length distribution: weighted bins
 * sampled by cumulative weight. Deterministic per Rng state.
 */
class LengthHistogram
{
  public:
    struct Bin
    {
        Tokens promptTokens = 0;
        Tokens decodeTokens = 0;
        double weight = 1.0;
    };

    /** Append a bin (weight must be positive). */
    void add(Tokens prompt_tokens, Tokens decode_tokens,
             double weight = 1.0);

    /**
     * Load a histogram from a text file: one bin per line as
     * "<prompt> <decode> [weight]" (weight defaults to 1), with
     * blank lines and '#' comments skipped. Fatal on parse errors
     * or an unreadable path.
     */
    static LengthHistogram fromFile(const std::string &path);

    bool empty() const { return bins_.empty(); }
    const std::vector<Bin> &bins() const { return bins_; }

    /** Draw one pair by weight; fatal on an empty histogram. */
    LengthPair sample(Rng &rng) const;

  private:
    std::vector<Bin> bins_;
    double totalWeight_ = 0.0;
};

} // namespace pimphony

#endif // PIMPHONY_WORKLOAD_LENGTH_SOURCE_HH
