#include "workload/replay.hh"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/logging.hh"

namespace pimphony {

namespace {

/** %.17g round-trips doubles exactly; the comma swap keeps the file
 *  locale-independent (same fix as bench JSON emission). */
std::string
numberToken(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    std::string s(buf);
    std::replace(s.begin(), s.end(), ',', '.');
    return s;
}

std::string
numberToken(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

void
appendRequestFields(std::string &out, const Request &r)
{
    out += "\"id\": " + numberToken(std::uint64_t{r.id});
    out += ", \"context\": " + numberToken(r.contextTokens);
    out += ", \"decode\": " + numberToken(r.decodeTokens);
    out += ", \"session\": " + numberToken(std::uint64_t{r.session});
    out += ", \"turn\": " + numberToken(std::uint64_t{r.turn});
    out += ", \"tier\": " + numberToken(std::uint64_t{r.cls.tier});
    out += ", \"gap_slo_s\": " + numberToken(r.cls.gapSloSeconds);
    out += ", \"tenant\": " + numberToken(std::uint64_t{r.cls.tenant});
    out += ", \"weight\": " + numberToken(r.cls.weight);
    // Only prefix-declaring requests carry the two extra keys, so
    // prefix-free traces stay byte-identical to the v1 files earlier
    // PRs committed. The hash is < 2^53 by construction (trace.hh),
    // so the all-numeric parser round-trips it exactly.
    if (r.prefixHash != 0) {
        out += ", \"prefix_hash\": " + numberToken(r.prefixHash);
        out += ", \"prefix_tokens\": " + numberToken(r.prefixTokens);
    }
}

/** Cursor over the loaded file for the minimal parser below. */
struct Cursor
{
    const char *begin;
    const char *p;
    const char *end;
    const char *path;
};

void
skipWs(Cursor &c)
{
    while (c.p < c.end && (*c.p == ' ' || *c.p == '\t' ||
                           *c.p == '\n' || *c.p == '\r'))
        ++c.p;
}

[[noreturn]] void
parseFail(const Cursor &c, const char *what)
{
    // Report the failure position as line:column (1-based, counted
    // from the bytes already consumed) alongside the raw byte
    // offset, so a malformed hand-edited trace is diagnosable from
    // the log line alone.
    std::size_t line = 1, column = 1;
    for (const char *q = c.begin; q < c.p; ++q) {
        if (*q == '\n') {
            ++line;
            column = 1;
        } else {
            ++column;
        }
    }
    fatal("%s:%zu:%zu: bad trace file: %s (at byte %zd)", c.path,
          line, column, what, c.p - c.begin);
}

bool
eat(Cursor &c, char ch)
{
    skipWs(c);
    if (c.p < c.end && *c.p == ch) {
        ++c.p;
        return true;
    }
    return false;
}

void
expect(Cursor &c, char ch, const char *what)
{
    if (!eat(c, ch))
        parseFail(c, what);
}

std::string
parseString(Cursor &c)
{
    expect(c, '"', "expected string");
    std::string out;
    while (c.p < c.end && *c.p != '"') {
        if (*c.p == '\\')
            parseFail(c, "escapes are not used in trace files");
        out += *c.p++;
    }
    expect(c, '"', "unterminated string");
    return out;
}

double
parseNumber(Cursor &c)
{
    skipWs(c);
    double v = 0.0;
    auto r = std::from_chars(c.p, c.end, v);
    if (r.ec != std::errc{})
        parseFail(c, "expected number");
    c.p = r.ptr;
    return v;
}

/** One flat all-numeric object: {"key": number, ...}. */
std::map<std::string, double>
parseNumberObject(Cursor &c)
{
    std::map<std::string, double> fields;
    expect(c, '{', "expected object");
    if (eat(c, '}'))
        return fields;
    for (;;) {
        std::string key = parseString(c);
        expect(c, ':', "expected ':'");
        fields[key] = parseNumber(c);
        if (eat(c, ','))
            continue;
        expect(c, '}', "expected '}'");
        return fields;
    }
}

double
fieldOr(const std::map<std::string, double> &fields, const char *key,
        double fallback)
{
    auto it = fields.find(key);
    return it == fields.end() ? fallback : it->second;
}

Request
requestFromFields(const std::map<std::string, double> &fields,
                  const Cursor &c)
{
    if (!fields.count("id") || !fields.count("context") ||
        !fields.count("decode"))
        parseFail(c, "request needs id/context/decode");
    Request r;
    r.id = static_cast<RequestId>(fields.at("id"));
    r.contextTokens = static_cast<Tokens>(fields.at("context"));
    r.decodeTokens = static_cast<Tokens>(fields.at("decode"));
    r.session = static_cast<SessionId>(fieldOr(fields, "session", 0.0));
    r.turn = static_cast<unsigned>(fieldOr(fields, "turn", 0.0));
    r.cls.tier = static_cast<unsigned>(fieldOr(fields, "tier", 0.0));
    r.cls.gapSloSeconds = fieldOr(fields, "gap_slo_s", 0.0);
    r.cls.tenant = static_cast<unsigned>(fieldOr(fields, "tenant", 0.0));
    r.cls.weight = fieldOr(fields, "weight", 1.0);
    r.prefixHash =
        static_cast<std::uint64_t>(fieldOr(fields, "prefix_hash", 0.0));
    r.prefixTokens =
        static_cast<Tokens>(fieldOr(fields, "prefix_tokens", 0.0));
    return r;
}

} // namespace

void
saveWorkload(const std::string &path, const BuiltWorkload &workload)
{
    std::string out;
    out += "{\n  \"format\": \"pimphony-trace-v1\",\n";
    out += "  \"requests\": [";
    for (std::size_t i = 0; i < workload.initial.size(); ++i) {
        const TimedRequest &timed = workload.initial[i];
        out += i ? ",\n    {" : "\n    {";
        appendRequestFields(out, timed.request);
        out += ", \"arrival_s\": " + numberToken(timed.arrivalSeconds);
        out += "}";
    }
    out += workload.initial.empty() ? "],\n" : "\n  ],\n";
    // Ascending predecessor order keeps the file byte-stable for a
    // given workload (the book itself is unordered).
    std::vector<RequestId> after;
    after.reserve(workload.sessions.size());
    for (const auto &kv : workload.sessions)
        after.push_back(kv.first);
    std::sort(after.begin(), after.end());
    out += "  \"successors\": [";
    for (std::size_t i = 0; i < after.size(); ++i) {
        const SessionTurn &turn = workload.sessions.at(after[i]);
        out += i ? ",\n    {" : "\n    {";
        out += "\"after\": " + numberToken(std::uint64_t{after[i]});
        out += ", \"think_s\": " + numberToken(turn.thinkSeconds);
        out += ", ";
        appendRequestFields(out, turn.request);
        out += "}";
    }
    out += after.empty() ? "]\n}\n" : "\n  ]\n}\n";

    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file)
        fatal("cannot write trace '%s'", path.c_str());
    file << out;
    file.flush();
    if (!file)
        fatal("write to trace '%s' failed", path.c_str());
}

BuiltWorkload
loadWorkload(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    if (!file)
        fatal("cannot open trace '%s'", path.c_str());
    std::ostringstream buf;
    buf << file.rdbuf();
    std::string text = buf.str();

    Cursor c{text.data(), text.data(), text.data() + text.size(),
             path.c_str()};
    BuiltWorkload out;
    bool format_seen = false;
    expect(c, '{', "expected top-level object");
    if (!eat(c, '}')) {
        for (;;) {
            std::string key = parseString(c);
            expect(c, ':', "expected ':'");
            if (key == "format") {
                if (parseString(c) != "pimphony-trace-v1")
                    parseFail(c, "unknown trace format");
                format_seen = true;
            } else if (key == "requests" || key == "successors") {
                expect(c, '[', "expected array");
                if (!eat(c, ']')) {
                    for (;;) {
                        auto fields = parseNumberObject(c);
                        Request r = requestFromFields(fields, c);
                        if (key == "requests") {
                            out.initial.push_back(
                                {r, fieldOr(fields, "arrival_s", 0.0)});
                        } else {
                            if (!fields.count("after"))
                                parseFail(c, "successor needs 'after'");
                            auto pred = static_cast<RequestId>(
                                fields.at("after"));
                            double think =
                                fieldOr(fields, "think_s", 0.0);
                            if (!out.sessions
                                     .emplace(pred,
                                              SessionTurn{r, think})
                                     .second)
                                parseFail(c,
                                          "duplicate successor key");
                        }
                        if (eat(c, ','))
                            continue;
                        expect(c, ']', "expected ']'");
                        break;
                    }
                }
            } else {
                parseFail(c, "unknown top-level key");
            }
            if (eat(c, ','))
                continue;
            expect(c, '}', "expected '}'");
            break;
        }
    }
    if (!format_seen)
        fatal("%s: not a pimphony trace (missing format tag)",
              path.c_str());
    // Saved files are arrival-ordered already; hand-edited ones may
    // not be, and every consumer requires the invariant.
    sortByArrival(out.initial);
    return out;
}

void
saveTrace(const std::string &path,
          const std::vector<TimedRequest> &trace)
{
    BuiltWorkload workload;
    workload.initial = trace;
    saveWorkload(path, workload);
}

std::vector<TimedRequest>
loadTrace(const std::string &path)
{
    BuiltWorkload workload = loadWorkload(path);
    if (!workload.sessions.empty())
        fatal("trace '%s' carries session successors; load it with "
              "loadWorkload()", path.c_str());
    return std::move(workload.initial);
}

} // namespace pimphony
