/**
 * @file
 * Workload trace replay: save/load built workloads as JSON so any
 * generated or hand-built workload is replayable bit for bit across
 * benches and fleet runs.
 *
 * Format ("pimphony-trace-v1"):
 *
 *   {
 *     "format": "pimphony-trace-v1",
 *     "requests": [ {"id": 0, "arrival_s": 0.125, "context": 13000,
 *                    "decode": 128, "session": 1, "turn": 0,
 *                    "tier": 0, "gap_slo_s": 0.05, "tenant": 0,
 *                    "weight": 1}, ... ],
 *     "successors": [ {"after": 0, "think_s": 2.5, "id": 1, ...same
 *                      request fields...}, ... ]
 *   }
 *
 * "requests" holds the open-loop arrivals (BuiltWorkload::initial,
 * arrival order); "successors" the closed-loop session turns keyed
 * by their predecessor ("after"), written in ascending key order so
 * the file is byte-stable for a given workload. All values are
 * numbers; doubles are written with %.17g (round-trip exact) and
 * parsed with std::from_chars, so a load reproduces the saved
 * workload bit for bit regardless of locale.
 */

#ifndef PIMPHONY_WORKLOAD_REPLAY_HH
#define PIMPHONY_WORKLOAD_REPLAY_HH

#include <string>
#include <vector>

#include "workload/arrival.hh"
#include "workload/spec.hh"

namespace pimphony {

/** Write @p workload to @p path (fatal on I/O failure). */
void saveWorkload(const std::string &path,
                  const BuiltWorkload &workload);

/** Read a workload saved by saveWorkload (fatal on parse errors). */
BuiltWorkload loadWorkload(const std::string &path);

/** Convenience: save a plain open-loop trace (no sessions). */
void saveTrace(const std::string &path,
               const std::vector<TimedRequest> &trace);

/** Convenience: load the open-loop arrivals of a saved workload. */
std::vector<TimedRequest> loadTrace(const std::string &path);

} // namespace pimphony

#endif // PIMPHONY_WORKLOAD_REPLAY_HH
