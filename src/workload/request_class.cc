#include "workload/request_class.hh"

#include <cstdio>

namespace pimphony {

std::string
requestClassLabel(const RequestClass &cls)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "tier=%u tenant=%u slo=%gms w=%g",
                  cls.tier, cls.tenant, cls.gapSloSeconds * 1e3,
                  cls.weight);
    return buf;
}

} // namespace pimphony
