/**
 * @file
 * Per-request service classes for multi-tenant serving.
 *
 * A deployed long-context service mixes request populations:
 * interactive chat next to batch summarization, several tenants
 * sharing one PIM deployment. A RequestClass captures what the
 * scheduling subsystem needs to tell them apart:
 *
 *  - tier: latency tier, 0 = most latency-sensitive. Tier-aware
 *    scheduling policies (SchedPolicyKind::TierPriority) serve lower
 *    tier numbers first and bound how long a higher tier can be
 *    inverted behind a lower one.
 *  - gapSloSeconds: the tier's decode token-gap SLO target. Under a
 *    gap-steered admission policy each tier is gated on its own
 *    windowed p95 against its own target (0 falls back to the
 *    policy-wide SchedPolicyConfig::sloTargetGapSeconds).
 *  - tenant: admission-budget domain. The engine can enforce
 *    per-tenant token-capacity shares (EngineOptions::tenantBudgets)
 *    with work-conserving borrowing.
 *  - weight: relative share hint inside one tier (reserved for
 *    weighted policies; carried through, not yet arbitrated on).
 *
 * The default-constructed class is the implicit class every request
 * had before tiers existed; an engine run in which every request
 * carries the default class and no budgets are configured behaves
 * bit-identically to a run without the subsystem.
 */

#ifndef PIMPHONY_WORKLOAD_REQUEST_CLASS_HH
#define PIMPHONY_WORKLOAD_REQUEST_CLASS_HH

#include <cstddef>
#include <string>
#include <vector>

namespace pimphony {

struct RequestClass
{
    /** Latency tier; 0 is served first by tier-aware policies. */
    unsigned tier = 0;

    /** Decode token-gap SLO target in seconds (0 = policy default). */
    double gapSloSeconds = 0.0;

    /** Tenant (admission-budget domain) the request bills to. */
    unsigned tenant = 0;

    /** Relative weight inside the tier (reserved; default 1). */
    double weight = 1.0;

    /** True for the implicit pre-tier class (strictly-additive path). */
    bool
    isDefault() const
    {
        return tier == 0 && gapSloSeconds == 0.0 && tenant == 0 &&
               weight == 1.0;
    }

    bool
    operator==(const RequestClass &o) const
    {
        return tier == o.tier && gapSloSeconds == o.gapSloSeconds &&
               tenant == o.tenant && weight == o.weight;
    }

    bool operator!=(const RequestClass &o) const { return !(*this == o); }
};

/** Human-readable "tier=0 tenant=1 slo=50ms w=1" form (logs, benches). */
std::string requestClassLabel(const RequestClass &cls);

} // namespace pimphony

#endif // PIMPHONY_WORKLOAD_REQUEST_CLASS_HH
