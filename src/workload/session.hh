/**
 * @file
 * Multi-turn session state for closed-loop serving workloads.
 *
 * A chat-style session is a chain of requests: the user reads turn
 * k's answer, thinks, and submits turn k+1 — whose prompt carries
 * the whole conversation so far. Two properties follow that an
 * open-loop trace cannot express:
 *
 *  - turn k+1 exists on the serving clock only after turn k
 *    completes (release time = completion + think time), and
 *  - turn k+1's context length includes the session history
 *    (sum of earlier prompts and answers).
 *
 * The workload layer encodes this as a SessionBook: successor turns
 * keyed by their predecessor's request id. buildWorkload()
 * (workload/spec.hh) emits the book alongside the turn-0 arrivals;
 * ServingEngine::declareSessionTurns() consumes it and releases each
 * successor from advanceMember's completion branch through the
 * engine's mid-run arrival machinery (the PR 7 injectArrivals feed
 * point). Requests carry their session identity (Request::session /
 * Request::turn), which FleetEngine's router uses to pin a session's
 * turns to one replica.
 */

#ifndef PIMPHONY_WORKLOAD_SESSION_HH
#define PIMPHONY_WORKLOAD_SESSION_HH

#include <unordered_map>

#include "common/types.hh"
#include "workload/trace.hh"

namespace pimphony {

/** One declared-but-unreleased successor turn of a session. */
struct SessionTurn
{
    /** The successor request (session/turn fields already stamped). */
    Request request;

    /**
     * User think time: seconds between the predecessor's completion
     * and this turn's arrival. Must be nonnegative.
     */
    double thinkSeconds = 0.0;
};

/**
 * Successor turns keyed by predecessor request id: book[i] is the
 * turn released when request i completes. A k-turn session
 * contributes k-1 entries chained by id.
 */
using SessionBook = std::unordered_map<RequestId, SessionTurn>;

} // namespace pimphony

#endif // PIMPHONY_WORKLOAD_SESSION_HH
