#include "workload/spec.hh"

#include <cmath>

#include "common/logging.hh"

namespace pimphony {

// Golden-ratio / xxhash odd constants: cheap, stable stream salts.
// The length stream keeps the build seed itself so a TableTask spec
// reproduces TraceGenerator(task, seed) exactly.
std::uint64_t
workloadLengthSeed(std::uint64_t build_seed)
{
    return build_seed;
}

std::uint64_t
workloadArrivalSeed(std::uint64_t build_seed)
{
    return build_seed ^ 0x9e3779b97f4a7c15ULL;
}

std::uint64_t
workloadSessionSeed(std::uint64_t build_seed)
{
    return build_seed ^ 0xc2b2ae3d27d4eb4fULL;
}

std::uint64_t
workloadPrefixSeed(std::uint64_t build_seed)
{
    return build_seed ^ 0xa0761d6478bd642fULL;
}

std::unique_ptr<ArrivalProcess>
makeArrivalProcess(const ArrivalSpec &arrival)
{
    switch (arrival.kind) {
      case ArrivalKind::Immediate:
        return std::make_unique<ImmediateProcess>();
      case ArrivalKind::Poisson:
        return std::make_unique<PoissonProcess>(arrival.ratePerSecond);
      case ArrivalKind::Gamma:
        return std::make_unique<GammaProcess>(arrival.ratePerSecond,
                                              arrival.cv);
      case ArrivalKind::OnOff:
        return std::make_unique<OnOffProcess>(arrival.onOff);
      case ArrivalKind::RateCurve:
        return std::make_unique<PiecewiseRateCurve>(arrival.curve);
    }
    fatal("unknown arrival kind");
}

namespace {

/**
 * Sequential (prompt, output) draws for one build: whichever source
 * the spec names, draws advance a single stream so session turns and
 * standalone requests consume lengths in generation order.
 */
class LengthDraws
{
  public:
    LengthDraws(const LengthSpec &spec, std::uint64_t length_seed)
        : spec_(spec), rng_(length_seed)
    {
        switch (spec_.kind) {
          case LengthSourceKind::TableTask:
            generator_ = std::make_unique<TraceGenerator>(spec_.task,
                                                          length_seed);
            break;
          case LengthSourceKind::Pairs:
            if (spec_.pairs.empty())
                fatal("WorkloadSpec: Pairs length source needs at "
                      "least one (prompt, output) pair");
            break;
          case LengthSourceKind::Histogram:
            if (spec_.histogram.empty())
                fatal("WorkloadSpec: Histogram length source needs "
                      "at least one bin");
            break;
        }
    }

    LengthPair
    next()
    {
        switch (spec_.kind) {
          case LengthSourceKind::TableTask: {
            // One-request batches replay generate(n)'s sample
            // sequence exactly (the generator draws per request).
            auto reqs = generator_->generate(1, spec_.decodeTokens);
            return {reqs[0].contextTokens, reqs[0].decodeTokens};
          }
          case LengthSourceKind::Pairs: {
            const LengthPair &p =
                spec_.pairs[nextPair_ % spec_.pairs.size()];
            ++nextPair_;
            return p;
          }
          case LengthSourceKind::Histogram:
            return spec_.histogram.sample(rng_);
        }
        fatal("unknown length source kind");
    }

  private:
    const LengthSpec &spec_;
    Rng rng_;
    std::unique_ptr<TraceGenerator> generator_;
    std::size_t nextPair_ = 0;
};

/**
 * Pooled shared-prefix draws. Inert (no randomness consumed, nothing
 * stamped) unless the spec declares prefixes, so prefix-free specs
 * keep building bit-identical workloads.
 */
class PrefixDraws
{
  public:
    PrefixDraws(const PrefixSpec &spec, std::uint64_t prefix_seed)
        : spec_(spec), rng_(prefix_seed),
          active_(spec.share > 0.0 && spec.tokens > 0)
    {
        if (active_ && spec_.pool == 0)
            fatal("WorkloadSpec: prefix pool must be >= 1");
    }

    /** Stamp @p r if it draws a pooled prefix its context can hold. */
    void
    stamp(Request &r)
    {
        if (!active_)
            return;
        double u = rng_.uniform();
        double v = rng_.uniform(); // always drawn: stable stream
        if (u >= spec_.share || r.contextTokens < spec_.tokens)
            return;
        auto idx = static_cast<std::uint64_t>(
            v * static_cast<double>(spec_.pool));
        if (idx >= spec_.pool)
            idx = spec_.pool - 1;
        // xxhash-style avalanche, masked to 53 bits so the hash
        // round-trips exactly through the numeric trace format.
        std::uint64_t h = (idx + 1) * 0xff51afd7ed558ccdULL;
        h ^= h >> 33;
        h *= 0xc4ceb9fe1a85ec53ULL;
        h ^= h >> 33;
        h &= (1ULL << 53) - 1;
        r.prefixHash = h ? h : 1;
        r.prefixTokens = spec_.tokens;
    }

  private:
    const PrefixSpec &spec_;
    Rng rng_;
    bool active_;
};

} // namespace

BuiltWorkload
buildWorkload(const WorkloadSpec &spec, std::uint64_t seed)
{
    if (spec.session.turns == 0)
        fatal("WorkloadSpec: session.turns must be >= 1");
    if (spec.session.thinkMeanSeconds < 0.0)
        fatal("WorkloadSpec: negative think time");

    LengthDraws lengths(spec.length, workloadLengthSeed(seed));
    PrefixDraws prefixes(spec.prefix, workloadPrefixSeed(seed));
    auto process = makeArrivalProcess(spec.arrival);
    process->reset(workloadArrivalSeed(seed));

    auto classOf = [&spec](std::size_t i) -> RequestClass {
        if (spec.classes.empty())
            return RequestClass{};
        return spec.classes[i % spec.classes.size()];
    };

    BuiltWorkload out;
    const unsigned turns = spec.session.turns;
    if (turns <= 1) {
        // Open-loop: one request per arrival, the legacy
        // generator-plus-arrivals composition bit for bit.
        out.initial.reserve(spec.count);
        for (std::size_t i = 0; i < spec.count; ++i) {
            LengthPair p = lengths.next();
            Request r(static_cast<RequestId>(i), p.promptTokens,
                      p.decodeTokens, classOf(i));
            prefixes.stamp(r);
            out.initial.push_back({r, process->next()});
        }
        sortByArrival(out.initial);
        return out;
    }

    // Sessions: count sessions of `turns` turns each. The arrival
    // process times the session openings (turn 0); later turns chain
    // closed-loop through the SessionBook with exponential think
    // times from their own stream.
    Rng think_rng(workloadSessionSeed(seed));
    out.initial.reserve(spec.count);
    out.sessions.reserve(spec.count * (turns - 1));
    for (std::size_t s = 0; s < spec.count; ++s) {
        double start = process->next();
        RequestClass cls = classOf(s);
        auto base = static_cast<RequestId>(s * turns);
        Tokens history = 0;
        for (unsigned k = 0; k < turns; ++k) {
            LengthPair p = lengths.next();
            Tokens ctx = spec.session.carryHistory
                             ? history + p.promptTokens
                             : p.promptTokens;
            Request r(base + k, ctx, p.decodeTokens, cls);
            r.session = static_cast<SessionId>(s + 1);
            r.turn = k;
            if (k == 0) {
                prefixes.stamp(r); // a prefix opens the session
                out.initial.push_back({r, start});
            } else {
                double think = 0.0;
                if (spec.session.thinkMeanSeconds > 0.0) {
                    double u = think_rng.uniform();
                    if (u <= 0.0)
                        u = 1e-12;
                    think = -std::log(u) *
                            spec.session.thinkMeanSeconds;
                }
                out.sessions.emplace(base + k - 1,
                                     SessionTurn{r, think});
            }
            history += p.promptTokens + p.decodeTokens;
        }
    }
    sortByArrival(out.initial);
    return out;
}

} // namespace pimphony
