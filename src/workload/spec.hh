/**
 * @file
 * Declarative workload composition: one WorkloadSpec describes what
 * the benches used to assemble by hand from TraceGenerator, the
 * arrival free functions, and assignRequestClass* — a length source,
 * an arrival process, a class/tenant mix, and an optional multi-turn
 * session model — and one buildWorkload(spec, seed) call turns it
 * into a sorted TimedRequest stream (plus the SessionBook of
 * closed-loop successor turns, when sessions are configured).
 *
 * Determinism contract: the build is a pure function of (spec,
 * seed). The three independent random streams (lengths, arrivals,
 * think times) are seeded by the public workload*Seed(seed) helpers,
 * so equivalence with the legacy composition is assertable bit for
 * bit: a default spec over a Table II task with Poisson arrivals
 * produces exactly
 *
 *   poissonArrivals(TraceGenerator(task, workloadLengthSeed(s))
 *                       .generate(n, decode),
 *                   rate, workloadArrivalSeed(s))
 *
 * — asserted in tests/workload_test.cc for all three wrapped
 * processes.
 */

#ifndef PIMPHONY_WORKLOAD_SPEC_HH
#define PIMPHONY_WORKLOAD_SPEC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "workload/arrival.hh"
#include "workload/arrival_process.hh"
#include "workload/length_source.hh"
#include "workload/request_class.hh"
#include "workload/session.hh"
#include "workload/trace.hh"

namespace pimphony {

/** Where a request's (prompt, output) lengths come from. */
enum class LengthSourceKind {
    /** Table II synthetic task (workload/trace.hh), the default. */
    TableTask,

    /** Explicit (prompt, output) pairs, cycled in order. */
    Pairs,

    /** Empirical weighted histogram, sampled per seed. */
    Histogram,
};

struct LengthSpec
{
    LengthSourceKind kind = LengthSourceKind::TableTask;

    /** TableTask: the Table II task and fixed decode length. */
    TraceTask task = TraceTask::QMSum;
    Tokens decodeTokens = 128;

    /** Pairs: request i draws pairs[i % pairs.size()]. */
    std::vector<LengthPair> pairs;

    /** Histogram: weighted-sampled per draw. */
    LengthHistogram histogram;
};

/** Which arrival process stamps the arrival times. */
enum class ArrivalKind {
    /** Everything at time zero (closed-loop). */
    Immediate,

    Poisson,
    Gamma,
    OnOff,

    /** Inhomogeneous Poisson over a RateCurve (diurnal replay). */
    RateCurve,
};

struct ArrivalSpec
{
    ArrivalKind kind = ArrivalKind::Poisson;

    /** Poisson / Gamma: mean arrival rate. */
    double ratePerSecond = 1.0;

    /** Gamma: coefficient of variation of the inter-arrival gaps. */
    double cv = 1.0;

    /** OnOff: the two-state burst parameters. */
    OnOffTraffic onOff;

    /** RateCurve: the piecewise-constant rate profile. */
    RateCurve curve;
};

/**
 * Optional multi-turn session model. With turns > 1 the spec's
 * count becomes a *session* count: each session opens with its
 * turn-0 request at an arrival-process time, and each later turn is
 * released closed-loop (predecessor completion + an exponential
 * think time) through the engine's session machinery. Turn k's
 * prompt length covers the session history: with carryHistory set
 * (the default), context_k = sum over j < k of (prompt_j +
 * output_j) + prompt_k.
 */
struct SessionSpec
{
    /** Turns per session; <= 1 disables the session model. */
    unsigned turns = 1;

    /** Mean exponential user think time between turns (0 = none). */
    double thinkMeanSeconds = 1.0;

    /** Grow each turn's context by the session history. */
    bool carryHistory = true;
};

/**
 * Optional shared-prefix declaration. With share > 0 and tokens > 0,
 * each request (each *session*, under the session model — a shared
 * prefix is a property of the opening prompt) draws from a pool of
 * `pool` distinct prefixes with probability `share` and is stamped
 * with that prefix's hash and length, declaring that its first
 * `tokens` context tokens are identical across the pool member —
 * the "millions of requests opening with the same system prompt"
 * pattern the prefix cache exploits. Requests whose context is
 * shorter than the declared prefix stay unstamped. The default
 * (share = 0) stamps nothing and consumes no randomness, so specs
 * without prefixes build bit-identical workloads to earlier PRs.
 */
struct PrefixSpec
{
    /** Probability a request/session opens with a pooled prefix. */
    double share = 0.0;

    /** Distinct prefixes in the pool. */
    unsigned pool = 1;

    /** Declared shared-prefix length in tokens. */
    Tokens tokens = 0;
};

struct WorkloadSpec
{
    /** Requests to build — or sessions, when session.turns > 1. */
    std::size_t count = 48;

    LengthSpec length;
    ArrivalSpec arrival;

    PrefixSpec prefix;

    /**
     * Class/tenant mix, assigned cyclically (request — or session —
     * i gets classes[i % classes.size()]; every turn of a session
     * shares its class). Empty = the default class everywhere.
     */
    std::vector<RequestClass> classes;

    SessionSpec session;
};

/** A built workload: the open-loop arrivals plus (with sessions)
 *  the closed-loop successor turns. */
struct BuiltWorkload
{
    /** Turn-0 / standalone requests, sorted by arrival. */
    std::vector<TimedRequest> initial;

    /** Successor turns for ServingEngine::declareSessionTurns /
     *  FleetEngine::setSessions; empty without sessions. */
    SessionBook sessions;
};

/**
 * Sub-seeds of the three independent random streams a build uses.
 * Public so tests (and replay tooling) can reproduce each stream
 * against the legacy free functions.
 */
std::uint64_t workloadLengthSeed(std::uint64_t build_seed);
std::uint64_t workloadArrivalSeed(std::uint64_t build_seed);
std::uint64_t workloadSessionSeed(std::uint64_t build_seed);
std::uint64_t workloadPrefixSeed(std::uint64_t build_seed);

/** Instantiate the ArrivalProcess a spec names. */
std::unique_ptr<ArrivalProcess> makeArrivalProcess(
    const ArrivalSpec &arrival);

/**
 * Build the workload a spec describes, deterministically from
 * @p seed. Request ids are dense from zero in generation order
 * (session s, turn k gets id s * turns + k).
 */
BuiltWorkload buildWorkload(const WorkloadSpec &spec,
                            std::uint64_t seed);

} // namespace pimphony

#endif // PIMPHONY_WORKLOAD_SPEC_HH
