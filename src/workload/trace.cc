#include "workload/trace.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pimphony {

namespace {

// Table II of the paper.
const TraceTaskStats kStats[] = {
    {"QMSum", "LongBench", 13966, 6182, 2651, 30456},
    {"Musique", "LongBench", 16362, 1651, 6820, 17917},
    {"multifieldqa", "LV-Eval", 60780, 31025, 20333, 119480},
    {"Loogle-SD", "LV-Eval", 50693, 26506, 13347, 109221},
};

} // namespace

const TraceTaskStats &
traceTaskStats(TraceTask task)
{
    return kStats[static_cast<int>(task)];
}

std::string
traceTaskName(TraceTask task)
{
    return traceTaskStats(task).name;
}

std::vector<TraceTask>
allTraceTasks()
{
    return {TraceTask::QMSum, TraceTask::Musique, TraceTask::MultifieldQa,
            TraceTask::LoogleSd};
}

TraceGenerator::TraceGenerator(TraceTask task, std::uint64_t seed)
    : task_(task), rng_(seed)
{
    const TraceTaskStats &s = traceTaskStats(task_);
    if (s.stddev > 0.4 * s.mean) {
        // Heavy-tailed LV-Eval-style tasks.
        lognormal_ = std::make_unique<TruncatedLognormal>(
            s.mean, s.stddev, s.min, s.max);
    } else {
        normal_ = std::make_unique<TruncatedNormal>(s.mean, s.stddev,
                                                    s.min, s.max);
    }
}

Tokens
TraceGenerator::sampleLength()
{
    double v = lognormal_ ? lognormal_->sample(rng_)
                          : normal_->sample(rng_);
    return static_cast<Tokens>(std::llround(v));
}

std::vector<Request>
TraceGenerator::generate(std::size_t n, Tokens decode_tokens)
{
    if (decode_tokens == 0)
        fatal("requests must decode at least one token");
    std::vector<Request> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Request r;
        r.id = next_++;
        r.contextTokens = sampleLength();
        r.decodeTokens = decode_tokens;
        r.cls = cls_;
        out.push_back(r);
    }
    return out;
}

void
assignRequestClass(std::vector<Request> &requests,
                   const RequestClass &cls)
{
    for (auto &r : requests)
        r.cls = cls;
}

void
assignRequestClassesRoundRobin(std::vector<Request> &requests,
                               const std::vector<RequestClass> &classes)
{
    if (classes.empty())
        return;
    for (std::size_t i = 0; i < requests.size(); ++i)
        requests[i].cls = classes[i % classes.size()];
}

std::vector<Request>
TraceGenerator::generateScaled(std::size_t n, Tokens target_mean,
                               Tokens decode_tokens)
{
    auto reqs = generate(n, decode_tokens);
    const TraceTaskStats &s = traceTaskStats(task_);
    double scale = static_cast<double>(target_mean) / s.mean;
    for (auto &r : reqs) {
        double scaled = static_cast<double>(r.contextTokens) * scale;
        r.contextTokens =
            std::max<Tokens>(16, static_cast<Tokens>(std::llround(scaled)));
    }
    return reqs;
}

} // namespace pimphony
