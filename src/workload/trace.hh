/**
 * @file
 * Synthetic long-context request traces matched to the paper's
 * Table II statistics (LongBench: QMSum, Musique; LV-Eval:
 * multifieldqa, Loogle-SD).
 *
 * We do not have the benchmark texts; the serving system reacts only
 * to the context-length distribution (channel imbalance, capacity
 * variance), so requests are synthesized from truncated distributions
 * whose mean/std/min/max match the published table.
 */

#ifndef PIMPHONY_WORKLOAD_TRACE_HH
#define PIMPHONY_WORKLOAD_TRACE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "workload/request_class.hh"

namespace pimphony {

enum class TraceTask {
    QMSum,        ///< LongBench, summarization
    Musique,      ///< LongBench, multi-hop QA
    MultifieldQa, ///< LV-Eval
    LoogleSd,     ///< LV-Eval
};

struct TraceTaskStats
{
    const char *name;
    const char *suite;
    double mean;
    double stddev;
    double min;
    double max;
};

/** Published Table II statistics for @p task. */
const TraceTaskStats &traceTaskStats(TraceTask task);

std::string traceTaskName(TraceTask task);

/** All four evaluated tasks, in paper order. */
std::vector<TraceTask> allTraceTasks();

struct Request
{
    Request() = default;
    Request(RequestId id_, Tokens context_tokens, Tokens decode_tokens,
            RequestClass cls_ = {})
        : id(id_), contextTokens(context_tokens),
          decodeTokens(decode_tokens), cls(cls_)
    {
    }

    RequestId id = 0;

    /** Prefilled context length when decoding starts. */
    Tokens contextTokens = 0;

    /** Tokens to generate before the request completes. */
    Tokens decodeTokens = 0;

    /**
     * Service class (latency tier, SLO target, tenant, weight). The
     * default class reproduces the pre-tier engine bit for bit; see
     * workload/request_class.hh.
     */
    RequestClass cls;

    /**
     * Multi-turn session this request belongs to (kNoSession = a
     * standalone request, the default). Session turns are released
     * closed-loop — see workload/session.hh — and fleet routing
     * pins a session's turns to one replica.
     */
    SessionId session = kNoSession;

    /** Zero-based turn index within the session. */
    unsigned turn = 0;

    /**
     * Workload-declared shared-prefix identity: requests carrying
     * the same nonzero hash open with the same prefixTokens-long
     * token prefix and may share its KV through the prefix cache
     * (0 = no declared prefix, the default). Kept below 2^53 so it
     * round-trips exactly through the numeric trace format.
     */
    std::uint64_t prefixHash = 0;

    /** Length of the declared shared prefix (<= contextTokens). */
    Tokens prefixTokens = 0;
};

/** Stamp every request in @p requests with @p cls. */
void assignRequestClass(std::vector<Request> &requests,
                        const RequestClass &cls);

/**
 * Stamp @p requests with @p classes cyclically (request i gets
 * classes[i % classes.size()]) — the quick way to build a tier/tenant
 * mix from one generated trace. No-op on an empty class list.
 */
void assignRequestClassesRoundRobin(std::vector<Request> &requests,
                                    const std::vector<RequestClass> &classes);

/**
 * Deterministic request generator for one task.
 */
class TraceGenerator
{
  public:
    TraceGenerator(TraceTask task, std::uint64_t seed);

    /** Generate @p n requests decoding @p decode_tokens each. */
    std::vector<Request> generate(std::size_t n,
                                  Tokens decode_tokens = 128);

    /**
     * Generate with context lengths scaled so their mean is
     * @p target_mean (used by the context-length sweeps of Fig. 17,
     * which keep Table II's shape but move the scale).
     */
    std::vector<Request> generateScaled(std::size_t n, Tokens target_mean,
                                        Tokens decode_tokens = 128);

    TraceTask task() const { return task_; }

    /** Service class stamped on every generated request (default:
     *  the implicit pre-tier class). */
    void setRequestClass(const RequestClass &cls) { cls_ = cls; }
    const RequestClass &requestClass() const { return cls_; }

  private:
    Tokens sampleLength();

    TraceTask task_;
    Rng rng_;
    RequestId next_ = 0;
    RequestClass cls_;

    /** Fitted once; sampling is then cheap. */
    std::unique_ptr<TruncatedNormal> normal_;
    std::unique_ptr<TruncatedLognormal> lognormal_;
};

} // namespace pimphony

#endif // PIMPHONY_WORKLOAD_TRACE_HH
