/**
 * @file
 * Allocator tests: static T_max reservations vs DPA lazy chunks --
 * admission, growth, fragmentation bounds, utilization accounting,
 * and host-interaction counting.
 */

#include <gtest/gtest.h>

#include "alloc/kv_allocator.hh"

namespace pimphony {
namespace {

constexpr Bytes kBpt = 512 * 1024; // 7B MHA: 512 KiB per token
constexpr Tokens kTmax = 32768;

TEST(StaticAllocator, ReservesTmaxRegardlessOfContext)
{
    StaticKvAllocator a(64_GiB, kBpt, kTmax);
    ASSERT_TRUE(a.tryAdmit(0, 1000));
    EXPECT_EQ(a.reservedBytes(), kBpt * kTmax); // 16 GiB
    EXPECT_EQ(a.usedBytes(), kBpt * 1000);
    EXPECT_LT(a.capacityUtilization(), 0.01);
}

TEST(StaticAllocator, AdmissionBoundedByWorstCase)
{
    StaticKvAllocator a(64_GiB, kBpt, kTmax);
    // 64 GiB / 16 GiB reservations = 4 requests, however short.
    for (RequestId id = 0; id < 4; ++id)
        EXPECT_TRUE(a.tryAdmit(id, 100));
    EXPECT_FALSE(a.tryAdmit(99, 100));
}

TEST(StaticAllocator, GrowNeverFailsWithinTmax)
{
    StaticKvAllocator a(64_GiB, kBpt, kTmax);
    ASSERT_TRUE(a.tryAdmit(0, 100));
    std::uint64_t host_before = a.hostInterventions();
    EXPECT_TRUE(a.grow(0, kTmax));
    EXPECT_FALSE(a.grow(0, kTmax + 1));
    // Growth inside the reservation involves no host message.
    EXPECT_EQ(a.hostInterventions(), host_before);
}

TEST(StaticAllocator, ReleaseReturnsReservation)
{
    StaticKvAllocator a(32_GiB, kBpt, kTmax);
    ASSERT_TRUE(a.tryAdmit(0, 100));
    ASSERT_TRUE(a.tryAdmit(1, 100));
    EXPECT_FALSE(a.tryAdmit(2, 100));
    a.release(0);
    EXPECT_TRUE(a.tryAdmit(2, 100));
}

TEST(StaticAllocator, RejectsBeyondTmax)
{
    StaticKvAllocator a(64_GiB, kBpt, kTmax);
    EXPECT_FALSE(a.tryAdmit(0, kTmax + 1));
}

TEST(LazyAllocator, AllocatesOnlyWhatIsNeeded)
{
    LazyChunkAllocator a(64_GiB, kBpt, kTmax);
    ASSERT_TRUE(a.tryAdmit(0, 1000));
    Bytes actual = kBpt * 1000;
    EXPECT_GE(a.reservedBytes(), actual);
    // Fragmentation bounded by one chunk.
    EXPECT_LT(a.reservedBytes(), actual + a.chunkBytes());
}

TEST(LazyAllocator, AdmitsManyMoreShortRequests)
{
    StaticKvAllocator st(64_GiB, kBpt, kTmax);
    LazyChunkAllocator lz(64_GiB, kBpt, kTmax);
    int st_admitted = 0, lz_admitted = 0;
    for (RequestId id = 0; id < 64; ++id) {
        if (st.tryAdmit(id, 2000))
            ++st_admitted;
        if (lz.tryAdmit(id, 2000))
            ++lz_admitted;
    }
    EXPECT_EQ(st_admitted, 4);
    EXPECT_EQ(lz_admitted, 64);
    EXPECT_GT(lz.capacityUtilization(), 0.9);
}

TEST(LazyAllocator, GrowAddsChunksOnDemand)
{
    LazyChunkAllocator a(64_GiB, kBpt, kTmax, 1_MiB);
    ASSERT_TRUE(a.tryAdmit(0, 2)); // 1 MiB exactly (2 x 512 KiB)
    EXPECT_EQ(a.chunksInUse(), 1u);
    std::uint64_t host = a.hostInterventions();
    EXPECT_TRUE(a.grow(0, 3)); // needs a second chunk
    EXPECT_EQ(a.chunksInUse(), 2u);
    EXPECT_EQ(a.hostInterventions(), host + 1);
    // Growth within the chunk: no host message.
    EXPECT_TRUE(a.grow(0, 4));
    EXPECT_EQ(a.hostInterventions(), host + 1);
}

TEST(LazyAllocator, GrowFailsWhenFull)
{
    LazyChunkAllocator a(2_MiB, kBpt, kTmax, 1_MiB);
    ASSERT_TRUE(a.tryAdmit(0, 2));
    ASSERT_TRUE(a.tryAdmit(1, 2));
    EXPECT_FALSE(a.grow(0, 3));
    a.release(1);
    EXPECT_TRUE(a.grow(0, 3));
}

TEST(LazyAllocator, FragmentationBoundOverManyRequests)
{
    LazyChunkAllocator a(64_GiB, kBpt, kTmax, 1_MiB);
    for (RequestId id = 0; id < 32; ++id)
        ASSERT_TRUE(a.tryAdmit(id, 1 + id * 7 % 50));
    // Internal fragmentation <= one chunk per request (paper claim).
    EXPECT_LE(a.reservedBytes() - a.usedBytes(), 32u * a.chunkBytes());
}

TEST(LazyAllocator, Va2PaBytesTrackChunks)
{
    LazyChunkAllocator a(64_GiB, kBpt, kTmax, 1_MiB);
    ASSERT_TRUE(a.tryAdmit(0, 64)); // 32 MiB -> 32 chunks
    EXPECT_EQ(a.va2paBytes(), 32u * 8u);
}

TEST(LazyAllocator, GrowExactlyAtChunkBoundary)
{
    LazyChunkAllocator a(64_GiB, kBpt, kTmax, 1_MiB);
    ASSERT_TRUE(a.tryAdmit(0, 2)); // 1 MiB: exactly one chunk
    EXPECT_EQ(a.chunksInUse(), 1u);
    EXPECT_EQ(a.reservedBytes(), a.usedBytes()); // zero fragmentation
    // Growing to exactly the next boundary adds exactly one chunk...
    EXPECT_TRUE(a.grow(0, 4)); // 2 MiB
    EXPECT_EQ(a.chunksInUse(), 2u);
    EXPECT_EQ(a.reservedBytes(), a.usedBytes());
    // ...and one byte past it would need a third.
    EXPECT_TRUE(a.grow(0, 5)); // 2.5 MiB
    EXPECT_EQ(a.chunksInUse(), 3u);
    EXPECT_EQ(a.reservedBytes() - a.usedBytes(), 512u * 1024u);
}

TEST(LazyAllocator, ReleaseThenReadmitAccounting)
{
    LazyChunkAllocator a(4_MiB, kBpt, kTmax, 1_MiB);
    ASSERT_TRUE(a.tryAdmit(0, 4)); // 2 chunks
    ASSERT_TRUE(a.tryAdmit(1, 4)); // 2 chunks; full
    EXPECT_EQ(a.chunksInUse(), 4u);
    EXPECT_FALSE(a.tryAdmit(2, 1));
    std::uint64_t host = a.hostInterventions();

    a.release(0);
    EXPECT_EQ(a.chunksInUse(), 2u);
    EXPECT_EQ(a.usedBytes(), kBpt * 4);
    EXPECT_EQ(a.hostInterventions(), host + 1);

    // The same id can re-enter (preemption-recompute path) and the
    // books balance back to full occupancy.
    ASSERT_TRUE(a.tryAdmit(0, 3)); // 1.5 MiB -> 2 chunks
    EXPECT_EQ(a.chunksInUse(), 4u);
    EXPECT_EQ(a.usedBytes(), kBpt * 7);
    EXPECT_EQ(a.hostInterventions(), host + 2);
    a.release(0);
    a.release(1);
    EXPECT_EQ(a.chunksInUse(), 0u);
    EXPECT_EQ(a.usedBytes(), 0u);
    EXPECT_EQ(a.reservedBytes(), 0u);
}

TEST(LazyAllocator, Va2PaBytesTrackChunksInUseThroughout)
{
    LazyChunkAllocator a(64_GiB, kBpt, kTmax, 1_MiB);
    EXPECT_EQ(a.va2paBytes(), 0u);
    ASSERT_TRUE(a.tryAdmit(0, 64)); // 32 chunks
    EXPECT_EQ(a.va2paBytes(), a.chunksInUse() * 8);
    ASSERT_TRUE(a.grow(0, 100)); // 50 chunks
    EXPECT_EQ(a.chunksInUse(), 50u);
    EXPECT_EQ(a.va2paBytes(), a.chunksInUse() * 8);
    ASSERT_TRUE(a.tryAdmit(1, 2));
    EXPECT_EQ(a.va2paBytes(), a.chunksInUse() * 8);
    a.release(0);
    EXPECT_EQ(a.chunksInUse(), 1u);
    EXPECT_EQ(a.va2paBytes(), 8u);
}

TEST(LazyAllocator, CapacityNotMultipleOfChunkSize)
{
    // 2.5 MiB of capacity holds only floor(2.5) = 2 whole chunks;
    // the 0.5 MiB tail is unmappable and must not admit work.
    LazyChunkAllocator a(2_MiB + 512 * 1024, kBpt, kTmax, 1_MiB);
    ASSERT_TRUE(a.tryAdmit(0, 2));
    ASSERT_TRUE(a.tryAdmit(1, 2));
    EXPECT_EQ(a.chunksInUse(), 2u);
    EXPECT_FALSE(a.tryAdmit(2, 1)); // tail is not a chunk
    EXPECT_FALSE(a.grow(0, 3));
    a.release(1);
    // A request needing 3 chunks can never fit in 2.
    EXPECT_FALSE(a.tryAdmit(3, 5));
    EXPECT_TRUE(a.tryAdmit(4, 2));
}

TEST(LazyAllocator, GrowPastCapacityRejectedWithoutSideEffects)
{
    LazyChunkAllocator a(2_MiB, kBpt, kTmax, 1_MiB);
    ASSERT_TRUE(a.tryAdmit(0, 4)); // both chunks
    Bytes reserved = a.reservedBytes();
    Bytes used = a.usedBytes();
    std::uint64_t host = a.hostInterventions();
    // A failed grow must leave every book untouched: the request
    // keeps its old token count and no chunk leaks.
    EXPECT_FALSE(a.grow(0, 5));
    EXPECT_EQ(a.reservedBytes(), reserved);
    EXPECT_EQ(a.usedBytes(), used);
    EXPECT_EQ(a.hostInterventions(), host);
    EXPECT_EQ(a.chunksInUse(), 2u);
    // And the request is still live and releasable afterwards.
    a.release(0);
    EXPECT_EQ(a.chunksInUse(), 0u);
}

TEST(LazyAllocator, DoubleReleasePanics)
{
    LazyChunkAllocator a(64_GiB, kBpt, kTmax, 1_MiB);
    ASSERT_TRUE(a.tryAdmit(0, 4));
    a.release(0);
    EXPECT_DEATH(a.release(0), "release on unknown request");
}

TEST(LazyAllocator, ChunksForRoundsAtChunkBoundaries)
{
    LazyChunkAllocator a(64_GiB, kBpt, kTmax, 1_MiB);
    // 512 KiB per token -> 2 tokens per 1 MiB chunk, exactly.
    EXPECT_EQ(a.chunksFor(0), 0u);
    EXPECT_EQ(a.chunksFor(1), 1u); // half a chunk still claims one
    EXPECT_EQ(a.chunksFor(2), 1u); // exactly one chunk
    EXPECT_EQ(a.chunksFor(3), 2u); // one byte over the boundary
    EXPECT_EQ(a.chunksFor(4), 2u);
    EXPECT_EQ(a.chunksFor(2047), 1024u);
    EXPECT_EQ(a.chunksFor(2048), 1024u);
    EXPECT_EQ(a.chunksFor(2049), 1025u);
}

TEST(LazyAllocator, ChunksForOddBytesPerToken)
{
    // 3 tokens never tile a 1 MiB chunk evenly (384 KiB per token):
    // the rounding must stay ceil(bytes / chunk), not tokens-based.
    LazyChunkAllocator a(64_GiB, 384 * 1024, kTmax, 1_MiB);
    EXPECT_EQ(a.chunksFor(1), 1u);
    EXPECT_EQ(a.chunksFor(2), 1u); // 768 KiB
    EXPECT_EQ(a.chunksFor(3), 2u); // 1.125 MiB
    EXPECT_EQ(a.chunksFor(8), 3u); // 3 MiB exactly
    EXPECT_EQ(a.chunksFor(9), 4u);
}

TEST(Allocator, FactoryAndNames)
{
    auto st = makeAllocator(AllocatorKind::Static, 1_GiB, kBpt, kTmax);
    auto lz = makeAllocator(AllocatorKind::LazyChunk, 1_GiB, kBpt, kTmax);
    EXPECT_TRUE(st->tryAdmit(0, 1) == false); // 16 GiB reservation > 1 GiB
    EXPECT_TRUE(lz->tryAdmit(0, 1));
    EXPECT_EQ(allocatorName(AllocatorKind::Static), "static");
    EXPECT_EQ(allocatorName(AllocatorKind::LazyChunk), "dpa-lazy");
}

} // namespace
} // namespace pimphony
