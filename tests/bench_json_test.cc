/**
 * @file
 * Tests for the bench harnesses' machine-readable row writer: the
 * documents CI diffs and gates on must stay valid JSON whatever the
 * row values contain — control characters in strings, full-precision
 * doubles, non-finite values — and numbers must survive a
 * write/parse round trip bit for bit.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "../bench/bench_util.hh"

namespace pimphony {
namespace {

std::string
writeAndRead(const bench::JsonRows &json)
{
    std::string path =
        ::testing::TempDir() + "bench_json_test_rows.json";
    EXPECT_TRUE(json.writeFile(path));
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    std::remove(path.c_str());
    return ss.str();
}

TEST(BenchJson, EscapesStringValues)
{
    bench::JsonRows json("escape\"me");
    json.beginRow();
    json.field("quoted", std::string("a\"b"));
    json.field("backslash", std::string("a\\b"));
    json.field("newline", std::string("a\nb"));
    json.field("tab", std::string("a\tb"));
    json.field("carriage", std::string("a\rb"));
    json.field("control", std::string("a\x01") + "b");
    std::string doc = writeAndRead(json);

    EXPECT_NE(doc.find("\"bench\": \"escape\\\"me\""), std::string::npos);
    EXPECT_NE(doc.find("\"quoted\": \"a\\\"b\""), std::string::npos);
    EXPECT_NE(doc.find("\"backslash\": \"a\\\\b\""), std::string::npos);
    EXPECT_NE(doc.find("\"newline\": \"a\\nb\""), std::string::npos);
    EXPECT_NE(doc.find("\"tab\": \"a\\tb\""), std::string::npos);
    EXPECT_NE(doc.find("\"carriage\": \"a\\rb\""), std::string::npos);
    EXPECT_NE(doc.find("\"control\": \"a\\u0001b\""), std::string::npos);
    // No raw control character may survive into the document.
    for (char c : doc)
        EXPECT_TRUE(c == '\n' || static_cast<unsigned char>(c) >= 0x20)
            << "raw control char in JSON output";
}

TEST(BenchJson, DoublesRoundTripThroughTheDocument)
{
    // Values with no short decimal form: %.17g must reproduce the
    // exact bits when parsed back.
    const double values[] = {1.0 / 3.0, 2997352.881286907,
                             0.52922050150400146, 1e-17, -0.0,
                             123456789.12345679};
    bench::JsonRows json("roundtrip");
    for (double v : values) {
        json.beginRow();
        json.field("v", v);
    }
    std::string doc = writeAndRead(json);

    std::size_t pos = 0;
    for (double v : values) {
        pos = doc.find("\"v\": ", pos);
        ASSERT_NE(pos, std::string::npos);
        pos += 5;
        double parsed = std::strtod(doc.c_str() + pos, nullptr);
        EXPECT_EQ(parsed, v);
        // The emitted token uses '.' regardless of locale.
        std::size_t end = doc.find_first_of(",}\n", pos);
        EXPECT_EQ(doc.substr(pos, end - pos).find(','),
                  std::string::npos);
    }
}

TEST(BenchJson, NonFiniteValuesDegradeToNull)
{
    bench::JsonRows json("nonfinite");
    json.beginRow();
    json.field("inf", std::numeric_limits<double>::infinity());
    json.field("ninf", -std::numeric_limits<double>::infinity());
    json.field("nan", std::numeric_limits<double>::quiet_NaN());
    std::string doc = writeAndRead(json);

    EXPECT_NE(doc.find("\"inf\": null"), std::string::npos);
    EXPECT_NE(doc.find("\"ninf\": null"), std::string::npos);
    EXPECT_NE(doc.find("\"nan\": null"), std::string::npos);
    EXPECT_EQ(doc.find("inf,"), std::string::npos);
    EXPECT_EQ(doc.find("nan,"), std::string::npos);
}

} // namespace
} // namespace pimphony
