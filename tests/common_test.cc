/**
 * @file
 * Unit tests for the common toolkit: statistics, RNG distributions,
 * units, and the table printer.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"

namespace pimphony {
namespace {

TEST(StatAccumulator, EmptyIsZero)
{
    StatAccumulator s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(StatAccumulator, KnownMoments)
{
    StatAccumulator s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0); // classic population-stddev example
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StatAccumulator, ResetClears)
{
    StatAccumulator s;
    s.add(42.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, BinningAndQuantile)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    EXPECT_EQ(h.totalSamples(), 10u);
    for (std::size_t b = 0; b < 10; ++b)
        EXPECT_EQ(h.binSamples(b), 1u);
    EXPECT_NEAR(h.quantile(0.5), 4.5, 1.0);
}

TEST(Histogram, OutOfRangeClamps)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-5.0);
    h.add(100.0);
    EXPECT_EQ(h.binSamples(0), 1u);
    EXPECT_EQ(h.binSamples(4), 1u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.uniformInt(3, 17);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 17u);
    }
}

TEST(TruncatedNormal, RespectsBoundsAndMoments)
{
    Rng rng(11);
    TruncatedNormal dist(100.0, 10.0, 50.0, 150.0);
    StatAccumulator s;
    for (int i = 0; i < 20000; ++i) {
        double v = dist.sample(rng);
        ASSERT_GE(v, 50.0);
        ASSERT_LE(v, 150.0);
        s.add(v);
    }
    EXPECT_NEAR(s.mean(), 100.0, 1.0);
    EXPECT_NEAR(s.stddev(), 10.0, 1.0);
}

TEST(TruncatedLognormal, RespectsBoundsAndMean)
{
    Rng rng(13);
    // LV-Eval multifieldqa-like parameters (Table II).
    TruncatedLognormal dist(60780, 31025, 20333, 119480);
    StatAccumulator s;
    for (int i = 0; i < 20000; ++i) {
        double v = dist.sample(rng);
        ASSERT_GE(v, 20333.0);
        ASSERT_LE(v, 119480.0);
        s.add(v);
    }
    // Truncation biases the mean; stay within 15%.
    EXPECT_NEAR(s.mean(), 60780.0, 60780.0 * 0.15);
}

TEST(TruncatedNormal, ZeroStddevClamps)
{
    Rng rng(3);
    TruncatedNormal dist(5.0, 0.0, 0.0, 10.0);
    EXPECT_DOUBLE_EQ(dist.sample(rng), 5.0);
    TruncatedNormal low(-5.0, 0.0, 0.0, 10.0);
    EXPECT_DOUBLE_EQ(low.sample(rng), 0.0);
}

TEST(Units, LiteralsAndHelpers)
{
    EXPECT_EQ(2_KiB, 2048u);
    EXPECT_EQ(1_MiB, 1048576u);
    EXPECT_EQ(1_GiB, 1073741824u);
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(roundUp(10, 8), 16);
    EXPECT_EQ(roundUp(16, 8), 16);
    EXPECT_DOUBLE_EQ(tbPerSec(2.0), 2e12);
    EXPECT_DOUBLE_EQ(tflops(312.0), 312e12);
}

TEST(Table, FormatsAlignedColumns)
{
    TablePrinter t({"name", "value"});
    t.addRow({"alpha", TablePrinter::fmt(1.5)});
    t.addRow({"b", TablePrinter::fmtInt(42)});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("1.50"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(Table, PercentFormatting)
{
    EXPECT_EQ(TablePrinter::fmtPercent(0.147), "14.7%");
    EXPECT_EQ(TablePrinter::fmtPercent(1.0, 0), "100%");
}

TEST(SafeRatio, GuardsZeroDenominator)
{
    EXPECT_DOUBLE_EQ(safeRatio(1.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(safeRatio(6.0, 3.0), 2.0);
}

// --- Streaming windowed quantile. ------------------------------------

/** Reference: sorted copy of the last min(window, n) samples. */
double
referenceWindowP95(const std::vector<double> &samples,
                   std::size_t window)
{
    std::size_t w = std::min(window, samples.size());
    if (w == 0)
        return 0.0;
    std::vector<double> recent(samples.end() -
                                   static_cast<std::ptrdiff_t>(w),
                               samples.end());
    std::sort(recent.begin(), recent.end());
    return nearestRankPercentile(recent, 95.0);
}

TEST(WindowedQuantile, MatchesSortedCopyOnRandomSequences)
{
    // Property: at every prefix (warm-up included), the streaming
    // p95 equals the copy+sort nearest-rank p95 the serving engine
    // used to compute — bit for bit.
    for (std::size_t window : {1u, 2u, 7u, 64u}) {
        Rng rng(91 + window);
        WindowedQuantile wq(window, 95.0);
        std::vector<double> samples;
        for (int i = 0; i < 500; ++i) {
            double v = rng.uniform();
            samples.push_back(v);
            wq.add(v);
            ASSERT_EQ(wq.size(),
                      std::min<std::size_t>(window, samples.size()));
            ASSERT_EQ(wq.value(), referenceWindowP95(samples, window))
                << "window " << window << " step " << i;
        }
    }
}

TEST(WindowedQuantile, MatchesSortedCopyWithDuplicates)
{
    // Duplicate gap values (identical completion deltas are the
    // common case in lockstep phases) stress the eviction rule: a
    // value equal to the low/high boundary may live in either
    // multiset.
    Rng rng(7);
    WindowedQuantile wq(16, 95.0);
    std::vector<double> samples;
    for (int i = 0; i < 400; ++i) {
        // Coarse quantization forces heavy duplication.
        double v = static_cast<double>(rng.uniformInt(0, 5)) * 0.25;
        samples.push_back(v);
        wq.add(v);
        ASSERT_EQ(wq.value(), referenceWindowP95(samples, 16))
            << "step " << i;
    }
}

TEST(WindowedQuantile, TracksOtherPercentiles)
{
    Rng rng(13);
    WindowedQuantile p50(32, 50.0);
    std::vector<double> samples;
    for (int i = 0; i < 200; ++i) {
        double v = rng.normal();
        samples.push_back(v);
        p50.add(v);
        std::size_t w = std::min<std::size_t>(32, samples.size());
        std::vector<double> recent(samples.end() -
                                       static_cast<std::ptrdiff_t>(w),
                                   samples.end());
        std::sort(recent.begin(), recent.end());
        ASSERT_EQ(p50.value(), nearestRankPercentile(recent, 50.0));
    }
}

TEST(WindowedQuantile, ResetEmptiesTheWindow)
{
    WindowedQuantile wq(4, 95.0);
    EXPECT_DOUBLE_EQ(wq.value(), 0.0);
    wq.add(3.0);
    wq.add(1.0);
    EXPECT_DOUBLE_EQ(wq.value(), 3.0);
    wq.reset();
    EXPECT_EQ(wq.size(), 0u);
    EXPECT_DOUBLE_EQ(wq.value(), 0.0);
    wq.add(2.0);
    EXPECT_DOUBLE_EQ(wq.value(), 2.0);
}

TEST(NearestRankInPlace, MatchesSortedNearestRank)
{
    Rng rng(29);
    for (int n : {1, 2, 19, 20, 100}) {
        std::vector<double> samples;
        for (int i = 0; i < n; ++i)
            samples.push_back(rng.uniform());
        for (double p : {5.0, 50.0, 95.0, 100.0}) {
            std::vector<double> sorted = samples;
            std::sort(sorted.begin(), sorted.end());
            std::vector<double> scratch = samples;
            EXPECT_EQ(nearestRankPercentileInPlace(scratch, p),
                      nearestRankPercentile(sorted, p))
                << "n " << n << " p " << p;
        }
    }
    std::vector<double> empty;
    EXPECT_DOUBLE_EQ(nearestRankPercentileInPlace(empty, 95.0), 0.0);
}

} // namespace
} // namespace pimphony
