/**
 * @file
 * Compiler tests: decoder-graph construction, pattern matching of
 * PIM-amenable kernels, lowering to static vs DPA programs, and the
 * Fig. 10 footprint scaling.
 */

#include <gtest/gtest.h>

#include "compiler/ir.hh"
#include "compiler/passes.hh"

namespace pimphony {
namespace {

TEST(Ir, DecoderLayerStructure)
{
    auto g = buildDecoderLayer(LlmConfig::llm7b(true));
    EXPECT_GT(g.size(), 20u);
    // The dump names every op; spot-check the attention core.
    std::string dump = g.dump();
    EXPECT_NE(dump.find("qkt"), std::string::npos);
    EXPECT_NE(dump.find("softmax"), std::string::npos);
    EXPECT_NE(dump.find("sv"), std::string::npos);
    EXPECT_NE(dump.find("k_cache"), std::string::npos);
}

TEST(Ir, UsersOfTracksEdges)
{
    auto g = buildDecoderLayer(LlmConfig::llm7b(false));
    for (const auto &n : g.nodes()) {
        if (n.name == "qkt") {
            auto users = g.usersOf(n.id);
            ASSERT_EQ(users.size(), 1u);
            EXPECT_EQ(g.node(users[0]).kind, OpKind::Softmax);
        }
    }
}

TEST(Patterns, FindsAllDecoderKernels)
{
    auto g = buildDecoderLayer(LlmConfig::llm7b(true));
    auto kernels = matchPimKernels(g);

    int qkt = 0, sv = 0, fc = 0;
    for (const auto &k : kernels) {
        switch (k.kernelClass) {
          case PimKernelClass::Qkt: ++qkt; break;
          case PimKernelClass::Sv:  ++sv; break;
          case PimKernelClass::Fc:  ++fc; break;
        }
    }
    EXPECT_EQ(qkt, 1);
    EXPECT_EQ(sv, 1);
    // Q, K, V, O, gate, up, down.
    EXPECT_EQ(fc, 7);
}

TEST(Patterns, QktHasTokenOutputSvHasTokenInput)
{
    auto g = buildDecoderLayer(LlmConfig::llm72b(true));
    for (const auto &k : matchPimKernels(g)) {
        if (k.kernelClass == PimKernelClass::Qkt) {
            EXPECT_TRUE(k.tokenDout);
            EXPECT_EQ(k.din, 128u);
        }
        if (k.kernelClass == PimKernelClass::Sv) {
            EXPECT_TRUE(k.tokenDin);
            EXPECT_EQ(k.dout, 128u);
        }
    }
}

TEST(Patterns, FcShapesMatchModel)
{
    auto model = LlmConfig::llm7b(false);
    auto g = buildDecoderLayer(model);
    bool saw_ffn_down = false;
    for (const auto &k : matchPimKernels(g)) {
        if (k.kernelClass == PimKernelClass::Fc &&
            k.din == model.dFfn) {
            saw_ffn_down = true;
            EXPECT_EQ(k.dout, model.dModel);
        }
    }
    EXPECT_TRUE(saw_ffn_down);
}

TEST(Lowering, StaticGrowsLinearlyDpaConstant)
{
    // Fig. 10(c): instruction footprint vs context length.
    auto g = buildDecoderLayer(LlmConfig::llm7b(true));
    AimTimingParams params = AimTimingParams::aimxWithObuf(16);
    MatchedKernel qkt;
    for (const auto &k : matchPimKernels(g))
        if (k.kernelClass == PimKernelClass::Qkt)
            qkt = k;

    auto at32k = lowerKernel(qkt, params, 32768);
    auto at128k = lowerKernel(qkt, params, 131072);
    EXPECT_NEAR(static_cast<double>(staticProgramBytes(at128k)),
                4.0 * static_cast<double>(staticProgramBytes(at32k)),
                0.05 * static_cast<double>(staticProgramBytes(at128k)));
    EXPECT_EQ(dpaProgramBytes(at32k), dpaProgramBytes(at128k));
    EXPECT_LT(dpaProgramBytes(at32k), 1024u);
}

TEST(Lowering, DpaExpansionMatchesTokenLength)
{
    auto g = buildDecoderLayer(LlmConfig::llm7b(false));
    AimTimingParams params = AimTimingParams::aimx();
    for (const auto &k : matchPimKernels(g)) {
        if (k.kernelClass != PimKernelClass::Qkt)
            continue;
        auto lowered = lowerKernel(k, params, 32768);
        auto i4k = lowered.dpaProgram.expand(4096);
        auto i8k = lowered.dpaProgram.expand(8192);
        // Twice the tokens -> twice the loop body emissions.
        EXPECT_EQ(i8k.size(), 2 * i4k.size() - 1);
    }
}

TEST(Lowering, FcIsContextIndependent)
{
    auto g = buildDecoderLayer(LlmConfig::llm7b(false));
    AimTimingParams params = AimTimingParams::aimx();
    for (const auto &k : matchPimKernels(g)) {
        if (k.kernelClass != PimKernelClass::Fc)
            continue;
        auto a = lowerKernel(k, params, 4096);
        auto b = lowerKernel(k, params, 131072);
        EXPECT_EQ(staticProgramBytes(a), staticProgramBytes(b));
    }
}

TEST(Lowering, NamesRoundTrip)
{
    EXPECT_EQ(pimKernelClassName(PimKernelClass::Qkt), "qkt");
    EXPECT_EQ(pimKernelClassName(PimKernelClass::Sv), "sv");
    EXPECT_EQ(pimKernelClassName(PimKernelClass::Fc), "fc");
    EXPECT_EQ(opKindName(OpKind::MatMul), "matmul");
}

} // namespace
} // namespace pimphony
