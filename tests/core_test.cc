/**
 * @file
 * Orchestrator tests: plan enumeration, auto-search, and end-to-end
 * evaluation through the public API.
 */

#include <gtest/gtest.h>

#include "core/orchestrator.hh"

namespace pimphony {
namespace {

TEST(Orchestrator, CandidatePlansCoverModuleGrid)
{
    OrchestratorConfig cfg;
    cfg.system = SystemKind::PimOnly;
    cfg.model = LlmConfig::llm7b(false); // 8 modules
    PimphonyOrchestrator orch(cfg);
    auto plans = orch.candidatePlans();
    ASSERT_EQ(plans.size(), 4u); // (1,8),(2,4),(4,2),(8,1)
    for (const auto &p : plans)
        EXPECT_EQ(p.modules(), 8u);
}

TEST(Orchestrator, ClusterFollowsOptions)
{
    OrchestratorConfig cfg;
    cfg.system = SystemKind::PimOnly;
    cfg.model = LlmConfig::llm7b(true);
    cfg.options = PimphonyOptions::all();
    PimphonyOrchestrator orch(cfg);
    auto c = orch.cluster();
    EXPECT_EQ(c.module.partitioning, Partitioning::Tcp);
    EXPECT_EQ(c.module.scheduler, SchedulerKind::Dcs);
}

TEST(Orchestrator, FixedPlanEvaluation)
{
    OrchestratorConfig cfg;
    cfg.system = SystemKind::PimOnly;
    cfg.model = LlmConfig::llm7b(true);
    cfg.options = PimphonyOptions::all();
    cfg.plan = ParallelPlan{8, 1};
    cfg.nRequests = 8;
    cfg.decodeTokens = 16;
    PimphonyOrchestrator orch(cfg);
    auto r = orch.evaluate(TraceTask::QMSum);
    EXPECT_EQ(r.plan.tp, 8u);
    EXPECT_GT(r.engine.tokensPerSecond, 0.0);
    EXPECT_EQ(r.label, "+TCP+DCS+DPA");
}

TEST(Orchestrator, AutoSearchPicksBestPlan)
{
    OrchestratorConfig cfg;
    cfg.system = SystemKind::PimOnly;
    cfg.model = LlmConfig::llm7b(true);
    cfg.options = PimphonyOptions::all();
    cfg.plan = ParallelPlan{0, 0}; // search
    cfg.nRequests = 6;
    cfg.decodeTokens = 8;
    PimphonyOrchestrator orch(cfg);
    auto best = orch.evaluate(TraceTask::Musique);

    // No fixed plan may beat the searched one (same seed/trace).
    for (const auto &plan : orch.candidatePlans()) {
        OrchestratorConfig fixed = cfg;
        fixed.plan = plan;
        PimphonyOrchestrator o2(fixed);
        auto r = o2.evaluate(TraceTask::Musique);
        EXPECT_LE(r.engine.tokensPerSecond,
                  best.engine.tokensPerSecond * 1.0001)
            << plan.toString();
    }
}

TEST(Orchestrator, DeterministicPerSeed)
{
    OrchestratorConfig cfg;
    cfg.system = SystemKind::PimOnly;
    cfg.model = LlmConfig::llm7b(true);
    cfg.options = PimphonyOptions::all();
    cfg.plan = ParallelPlan{8, 1};
    cfg.nRequests = 4;
    cfg.decodeTokens = 8;
    PimphonyOrchestrator a(cfg), b(cfg);
    auto ra = a.evaluate(TraceTask::LoogleSd);
    auto rb = b.evaluate(TraceTask::LoogleSd);
    EXPECT_DOUBLE_EQ(ra.engine.tokensPerSecond,
                     rb.engine.tokensPerSecond);
}

} // namespace
} // namespace pimphony
