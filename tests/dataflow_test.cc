/**
 * @file
 * Functional dataflow verification: the generated command streams
 * must compute exactly the products their kernels' mathematics
 * require -- every (input tile, weight tile) pair exactly once, each
 * accumulated into the right logical output, across all buffer
 * geometries and mappings.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "kernels/attention.hh"
#include "kernels/dataflow.hh"
#include "kernels/gemv.hh"

namespace pimphony {
namespace {

// --- QK^T ------------------------------------------------------------

class QktDataflow
    : public ::testing::TestWithParam<std::tuple<int, int, bool, int>>
{
};

TEST_P(QktDataflow, EveryScoreComputedExactlyOnce)
{
    auto [tokens, gqa, row_reuse, obuf] = GetParam();
    AimTimingParams params =
        AimTimingParams::aimxWithObuf(static_cast<unsigned>(obuf));
    AttentionSpec spec;
    spec.tokens = static_cast<Tokens>(tokens);
    spec.headDim = 128;
    spec.gqaGroup = static_cast<std::uint32_t>(gqa);
    spec.rowReuse = row_reuse;

    auto stream = buildQktStream(spec, params);
    auto drains = replayDataflow(stream, params);

    const unsigned q_tiles = 8;
    std::uint64_t token_groups = (spec.tokens + 15) / 16;

    // Every drain must be one complete score group: query q against
    // token group tg, i.e. products {(q*8+i, tg*8+i) : i in 0..7}.
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
    for (const auto &d : drains) {
        ASSERT_EQ(d.products.size(), q_tiles);
        std::uint64_t q = static_cast<std::uint64_t>(
            d.products[0].src / static_cast<int>(q_tiles));
        std::uint64_t tg = d.products[0].pos / q_tiles;
        for (unsigned i = 0; i < q_tiles; ++i) {
            EXPECT_EQ(d.products[i].src,
                      static_cast<std::int32_t>(q * q_tiles + i));
            EXPECT_EQ(d.products[i].pos, tg * q_tiles + i);
        }
        EXPECT_TRUE(seen.insert({q, tg}).second)
            << "score group (" << q << "," << tg << ") computed twice";
    }
    // All (query, token-group) pairs covered.
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(gqa) * token_groups);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QktDataflow,
    ::testing::Combine(::testing::Values(64, 1000, 4096),
                       ::testing::Values(1, 4, 8), ::testing::Bool(),
                       ::testing::Values(1, 16)));

// --- SV ---------------------------------------------------------------

class SvDataflow
    : public ::testing::TestWithParam<std::tuple<int, int, bool, int>>
{
};

TEST_P(SvDataflow, PartialsTileTheTokenAxisExactly)
{
    auto [tokens, gqa, row_reuse, obuf] = GetParam();
    AimTimingParams params =
        AimTimingParams::aimxWithObuf(static_cast<unsigned>(obuf));
    AttentionSpec spec;
    spec.tokens = static_cast<Tokens>(tokens);
    spec.headDim = 128;
    spec.gqaGroup = static_cast<std::uint32_t>(gqa);
    spec.rowReuse = row_reuse;

    auto stream = buildSvStream(spec, params);
    auto drains = replayDataflow(stream, params);

    const unsigned j_tiles = 8;
    std::uint64_t token_groups = (spec.tokens + 15) / 16;

    // Partial drains of logical output (q, j) must cover every token
    // group exactly once when unioned.
    std::map<std::pair<std::uint64_t, unsigned>,
             std::set<std::uint64_t>>
        coverage;
    for (const auto &d : drains) {
        ASSERT_FALSE(d.products.empty());
        unsigned j = static_cast<unsigned>(d.products[0].pos % j_tiles);
        std::uint64_t q = static_cast<std::uint64_t>(d.products[0].src) /
                          token_groups;
        auto &cov = coverage[{q, j}];
        for (const auto &p : d.products) {
            // Consistent output coordinates within one accumulation.
            EXPECT_EQ(p.pos % j_tiles, j);
            std::uint64_t tg_from_pos = p.pos / j_tiles;
            std::uint64_t tg_from_src =
                static_cast<std::uint64_t>(p.src) % token_groups;
            // The score tile and the V tile must belong to the same
            // token group -- the core SV dataflow invariant.
            EXPECT_EQ(tg_from_pos, tg_from_src);
            EXPECT_TRUE(cov.insert(tg_from_pos).second)
                << "token group accumulated twice into (q=" << q
                << ", j=" << j << ")";
        }
    }
    ASSERT_EQ(coverage.size(),
              static_cast<std::size_t>(gqa) * j_tiles);
    for (const auto &[key, cov] : coverage)
        EXPECT_EQ(cov.size(), token_groups)
            << "output (q=" << key.first << ", j=" << key.second
            << ") missing token groups";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvDataflow,
    ::testing::Combine(::testing::Values(64, 1000, 4096),
                       ::testing::Values(1, 2, 8), ::testing::Bool(),
                       ::testing::Values(1, 16)));

// --- GEMV --------------------------------------------------------------

class GemvDataflow
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GemvDataflow, EveryWeightTileUsedOnceWithItsInput)
{
    auto [dout, din, obuf] = GetParam();
    AimTimingParams params =
        AimTimingParams::aimxWithObuf(static_cast<unsigned>(obuf));
    auto spec = GemvSpec::fromDims(static_cast<std::uint64_t>(dout),
                                   static_cast<std::uint64_t>(din));
    auto stream = buildGemvStream(spec, params);
    auto drains = replayDataflow(stream, params);

    // Global invariants: each weight tile position read exactly once;
    // no accumulation multiplies the same input tile twice; totals
    // match doutGroups x dinTiles.
    std::set<std::uint64_t> positions;
    std::uint64_t total = 0;
    for (const auto &d : drains) {
        std::set<std::int32_t> srcs;
        for (const auto &p : d.products) {
            EXPECT_TRUE(positions.insert(p.pos).second)
                << "weight tile " << p.pos << " read twice";
            EXPECT_TRUE(srcs.insert(p.src).second)
                << "input tile " << p.src
                << " accumulated twice in one drain";
            EXPECT_LT(p.src, static_cast<std::int32_t>(spec.dinTiles));
        }
        total += d.products.size();
    }
    EXPECT_EQ(total, static_cast<std::uint64_t>(spec.doutGroups) *
                         spec.dinTiles);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemvDataflow,
    ::testing::Combine(::testing::Values(16, 128, 2048),
                       ::testing::Values(128, 1024, 4096),
                       ::testing::Values(1, 16)));

TEST(GemvDataflow, ResidentLayoutPairsInputWithItsColumn)
{
    // In the input-resident case, weight position g*dinTiles + k must
    // pair with input tile k -- the layout the row-reuse mapping
    // co-designs.
    AimTimingParams params = AimTimingParams::aimxWithObuf(16);
    auto spec = GemvSpec::fromDims(256, 512); // 32 tiles resident
    auto stream = buildGemvStream(spec, params);
    for (const auto &d : replayDataflow(stream, params)) {
        for (const auto &p : d.products)
            EXPECT_EQ(static_cast<std::uint64_t>(p.src),
                      p.pos % spec.dinTiles);
    }
}

TEST(Dataflow, ReplayRejectsUnwrittenReads)
{
    AimTimingParams params;
    CommandStream s;
    s.append(PimCommand::mac(0, 0, 0, 0));
    EXPECT_DEATH(replayDataflow(s, params), "before any WR-INP");
}

TEST(Dataflow, ReplayRejectsUndrainedEnd)
{
    AimTimingParams params;
    CommandStream s;
    auto w = PimCommand::wrInp(0);
    w.src = 0;
    s.append(w);
    s.append(PimCommand::mac(0, 0, 0, 0));
    EXPECT_DEATH(replayDataflow(s, params), "un-drained");
}

} // namespace
} // namespace pimphony
