/**
 * @file
 * Detailed DCS semantics: D-Table dependency assignment, S-Table
 * expiration behaviour, WAR protection on GBuf entries, OBuf
 * drain-before-reuse, out-of-order I/O vs compute issue, row-state
 * interaction, and refresh interference -- each pinned with exact
 * timeline assertions on hand-built streams.
 */

#include <gtest/gtest.h>

#include "pim/dcs_scheduler.hh"
#include "pim/scheduler.hh"

namespace pimphony {
namespace {

AimTimingParams
tinyParams()
{
    auto p = AimTimingParams::illustrative(); // 2/4/3/4, no refresh
    p.outputEntries = 4;
    return p;
}

PimCommand
tag(PimCommand c, std::int32_t group)
{
    c.group = group;
    return c;
}

TEST(DcsDetail, WarOnGbufWaitsForReaderCompletion)
{
    // W0(g0) M1(g0) W2(g0): the second write must wait until the MAC
    // has finished reading the entry.
    auto params = tinyParams();
    CommandStream s;
    s.append(tag(PimCommand::wrInp(0), 0));
    s.append(tag(PimCommand::mac(0, 0, 0, 0), 1));
    s.append(tag(PimCommand::wrInp(0), 2));
    auto r = makeScheduler(SchedulerKind::Dcs, params)->schedule(s, true);
    // M1 at tWrInp (4), completes 4+3=7; W2 >= 7.
    EXPECT_EQ(r.timeline[1].issue, 4u);
    EXPECT_GE(r.timeline[2].issue, r.timeline[1].complete);
}

TEST(DcsDetail, RdOutWaitsForLastMacOfTheChain)
{
    auto params = tinyParams();
    CommandStream s;
    s.append(tag(PimCommand::wrInp(0), 0));
    s.append(tag(PimCommand::wrInp(1), 0));
    s.append(tag(PimCommand::mac(0, 0, 0, 0), 1));
    s.append(tag(PimCommand::mac(1, 0, 0, 1), 2));
    s.append(tag(PimCommand::rdOut(0), 3));
    auto r = makeScheduler(SchedulerKind::Dcs, params)->schedule(s, true);
    const auto &m_last = r.timeline[3];
    const auto &rd = r.timeline[4];
    EXPECT_GE(rd.issue, m_last.complete);
}

TEST(DcsDetail, MacAfterDrainWaitsForDrainCompletion)
{
    auto params = tinyParams();
    CommandStream s;
    s.append(tag(PimCommand::wrInp(0), 0));
    s.append(tag(PimCommand::mac(0, 0, 0, 0), 1));
    s.append(tag(PimCommand::rdOut(0), 2));
    s.append(tag(PimCommand::mac(0, 0, 0, 1), 3)); // reuse entry 0
    auto r = makeScheduler(SchedulerKind::Dcs, params)->schedule(s, true);
    EXPECT_GE(r.timeline[3].issue, r.timeline[2].complete);
}

TEST(DcsDetail, IndependentIoOverlapsCompute)
{
    // While a long MAC chain runs on OBuf 0 from GBuf 0, writes to
    // other GBuf entries must proceed in the gaps (out-of-order
    // across queues).
    auto params = tinyParams();
    CommandStream s;
    s.append(tag(PimCommand::wrInp(0), 0));
    for (int i = 0; i < 6; ++i)
        s.append(tag(PimCommand::mac(0, 0, 0, i), 1 + i));
    s.append(tag(PimCommand::wrInp(1), 10));
    s.append(tag(PimCommand::wrInp(2), 10));
    auto r = makeScheduler(SchedulerKind::Dcs, params)->schedule(s, true);
    // The first prefetch write slips in before the chain saturates
    // the bus; once MACs issue back-to-back at tCCDS the remaining
    // writes rightly wait (no idle slots to fill).
    Cycle last_mac = r.timeline[6].issue;
    EXPECT_LT(r.timeline[7].issue, last_mac);
    EXPECT_LE(r.timeline[8].issue, last_mac + params.tCcds);
}

TEST(DcsDetail, ObufEntriesDecoupleGroups)
{
    // Two output groups on different OBuf entries: group 2's MACs
    // need not wait for group 1's RD-OUT (the I/O-aware buffering
    // win). With a single entry they must.
    CommandStream s;
    s.append(tag(PimCommand::wrInp(0), 0));
    s.append(tag(PimCommand::mac(0, 0, 0, 0), 1));
    s.append(tag(PimCommand::rdOut(0), 2));
    s.append(tag(PimCommand::mac(0, 1, 0, 1), 3));
    auto multi = tinyParams();
    auto r_multi =
        makeScheduler(SchedulerKind::Dcs, multi)->schedule(s, true);
    EXPECT_LT(r_multi.timeline[3].issue, r_multi.timeline[2].complete);

    CommandStream s1;
    s1.append(tag(PimCommand::wrInp(0), 0));
    s1.append(tag(PimCommand::mac(0, 0, 0, 0), 1));
    s1.append(tag(PimCommand::rdOut(0), 2));
    s1.append(tag(PimCommand::mac(0, 0, 0, 1), 3)); // same entry
    auto single = tinyParams();
    single.outputEntries = 1;
    auto r_single =
        makeScheduler(SchedulerKind::Dcs, single)->schedule(s1, true);
    EXPECT_GE(r_single.timeline[3].issue, r_single.timeline[2].complete);
}

TEST(DcsDetail, RowSwitchChargedOncePerRowRun)
{
    auto params = tinyParams();
    params.tRcdRd = 10;
    params.tRp = 10;
    CommandStream s;
    s.append(tag(PimCommand::wrInp(0), 0));
    // 4 MACs on row 0, then 4 on row 1.
    for (int i = 0; i < 4; ++i)
        s.append(tag(PimCommand::mac(0, 0, 0, i), 1));
    for (int i = 0; i < 4; ++i)
        s.append(tag(PimCommand::mac(0, 0, 1, i), 2));
    auto r = makeScheduler(SchedulerKind::Dcs, params)->schedule(s);
    EXPECT_EQ(r.activates, 2u);  // one cold, one switch
    EXPECT_EQ(r.precharges, 1u);
    EXPECT_EQ(r.breakdown.actPreCycles, 10u + 20u);
}

TEST(DcsDetail, RefreshStallsVisibleInBreakdown)
{
    auto params = tinyParams();
    params.tRefi = 50;
    params.tRfc = 25;
    CommandStream s;
    s.append(tag(PimCommand::wrInp(0), 0));
    for (int i = 0; i < 40; ++i)
        s.append(tag(PimCommand::mac(0, 0, 0, i), 1 + i));
    auto r = makeScheduler(SchedulerKind::Dcs, params)->schedule(s);
    EXPECT_GT(r.refreshes, 0u);
    EXPECT_GT(r.breakdown.refreshCycles, 0u);
    EXPECT_EQ(r.breakdown.total(), r.makespan);
}

TEST(DcsDetail, BusNeverDoubleBooked)
{
    auto params = tinyParams();
    CommandStream s;
    // Deliberately contended: many ready commands at once.
    for (int i = 0; i < 8; ++i)
        s.append(tag(PimCommand::wrInp(i), 0));
    for (int o = 0; o < 4; ++o)
        for (int i = 0; i < 8; ++i)
            s.append(tag(PimCommand::mac(i, o, 0, i), 1 + o));
    for (int o = 0; o < 4; ++o)
        s.append(tag(PimCommand::rdOut(o), 10));
    auto r = makeScheduler(SchedulerKind::Dcs, params)->schedule(s, true);
    std::vector<Cycle> issues;
    for (const auto &sc : r.timeline)
        issues.push_back(sc.issue);
    std::sort(issues.begin(), issues.end());
    for (std::size_t i = 1; i < issues.size(); ++i)
        EXPECT_GE(issues[i] - issues[i - 1], params.tCcds);
}

TEST(DcsDetail, ThroughputOnPureChainHitsPeak)
{
    // An unobstructed MAC chain must sustain one MAC per tCCDS.
    auto params = tinyParams();
    CommandStream s;
    s.append(tag(PimCommand::wrInp(0), 0));
    const int n = 64;
    for (int i = 0; i < n; ++i)
        s.append(tag(PimCommand::mac(0, 0, 0, i % 32), 1 + i));
    auto r = makeScheduler(SchedulerKind::Dcs, params)->schedule(s);
    Cycle ideal = params.tWrInp + n * params.tCcds + params.tMac;
    EXPECT_LE(r.makespan, ideal + 2);
    EXPECT_GT(r.macUtilization, 0.85);
}

TEST(DcsDetail, StaticMatchesDcsWhenNoOverlapExists)
{
    // A fully serial dependency chain leaves DCS nothing to reorder:
    // W -> M -> R -> W -> M -> R on one entry pair.
    auto params = tinyParams();
    params.outputEntries = 1;
    CommandStream s;
    for (int rep = 0; rep < 4; ++rep) {
        s.append(tag(PimCommand::wrInp(0), rep * 3));
        s.append(tag(PimCommand::mac(0, 0, 0, rep), rep * 3 + 1));
        s.append(tag(PimCommand::rdOut(0), rep * 3 + 2));
    }
    auto st = makeScheduler(SchedulerKind::Static, params)->schedule(s);
    auto dc = makeScheduler(SchedulerKind::Dcs, params)->schedule(s);
    EXPECT_LE(dc.makespan, st.makespan);
    // DCS can still overlap each drain with the next input write
    // (different buffers), but no more than that: the gain is bounded
    // by one RD-OUT per repetition.
    EXPECT_GE(dc.makespan + 4 * (params.tRdOut + params.tCcds),
              st.makespan);
}

} // namespace
} // namespace pimphony
