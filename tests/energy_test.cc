/**
 * @file
 * Energy-model tests: per-kernel attribution, conservation, the
 * background-dominance mechanism of Fig. 16.
 */

#include <gtest/gtest.h>

#include "energy/energy.hh"
#include "kernels/kernel_sim.hh"

namespace pimphony {
namespace {

TEST(Energy, BreakdownAddsAndScales)
{
    EnergyBreakdown a;
    a.mac = 10;
    a.io = 5;
    a.background = 20;
    EnergyBreakdown b = a.scaled(2.0);
    EXPECT_DOUBLE_EQ(b.total(), 70.0);
    b += a;
    EXPECT_DOUBLE_EQ(b.total(), 105.0);
}

TEST(Energy, KernelEnergyComponentsTrackCounts)
{
    AimTimingParams params = AimTimingParams::aimxWithObuf(16);
    AttentionSpec spec;
    spec.tokens = 8192;
    spec.headDim = 128;
    spec.gqaGroup = 2;
    spec.rowReuse = true;
    auto r = simulateKernel(KernelRequest::makeQkt(spec,
                                                   SchedulerKind::Dcs),
                            params);
    EnergyParams ep;
    auto e = kernelEnergy(r, ep);
    EXPECT_DOUBLE_EQ(e.mac, ep.macPerCommand * r.macCount);
    EXPECT_DOUBLE_EQ(e.io,
                     ep.ioPerCommand * (r.wrInpCount + r.rdOutCount));
    EXPECT_DOUBLE_EQ(e.background,
                     ep.backgroundPerCycle * r.makespan);
    EXPECT_GT(e.total(), 0.0);
}

TEST(Energy, BackgroundShareDropsWithUtilization)
{
    // The paper's key energy mechanism: the slow static schedule
    // stretches runtime, so background dominates; DCS compresses it.
    AimTimingParams base = AimTimingParams::aimx();
    AimTimingParams obuf = AimTimingParams::aimxWithObuf(16);
    AttentionSpec spec;
    spec.tokens = 16384;
    spec.headDim = 128;
    spec.gqaGroup = 4;
    spec.rowReuse = false;
    auto slow = simulateKernel(
        KernelRequest::makeQkt(spec, SchedulerKind::Static), base);
    spec.rowReuse = true;
    auto fast = simulateKernel(
        KernelRequest::makeQkt(spec, SchedulerKind::Dcs), obuf);

    EnergyParams ep;
    auto es = kernelEnergy(slow, ep);
    auto ef = kernelEnergy(fast, ep);
    double slow_bg = es.background / es.total();
    double fast_bg = ef.background / ef.total();
    EXPECT_GT(slow_bg, fast_bg);
    // MAC energy is identical work in both cases.
    EXPECT_DOUBLE_EQ(es.mac, ef.mac);
}

TEST(Energy, BackgroundHelper)
{
    EnergyParams ep;
    auto e = backgroundEnergy(1000, 32, ep);
    EXPECT_DOUBLE_EQ(e.background, ep.backgroundPerCycle * 1000 * 32);
    EXPECT_DOUBLE_EQ(e.mac, 0.0);
}

} // namespace
} // namespace pimphony
