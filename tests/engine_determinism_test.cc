/**
 * @file
 * Determinism anchors for the serving engine across the PR 4 hot-path
 * overhaul (allocation-free event core, memoized device models,
 * streaming SLO percentile, nth_element summaries).
 *
 * Two layers of protection:
 *
 *  - Golden metrics: seeded configurations pinned to the values the
 *    pre-overhaul engine produced (captured at hex-float precision).
 *    Every simulated quantity — event times, percentiles,
 *    throughput, policy counters — must match to double precision;
 *    the three avg* summary means are pinned to 1e-12 relative
 *    because finalizeResult now sums samples in production order
 *    instead of ascending order (same samples, same count; only the
 *    last-ulp rounding of the sum differs).
 *
 *  - Run-to-run: the same engine object graph run twice in one
 *    process must be bit-identical in every field, which is what the
 *    CI determinism job also checks across processes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "system/engine.hh"
#include "system/sched_policy.hh"
#include "workload/arrival.hh"

namespace pimphony {
namespace {

EngineResult
runConfigA()
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    cluster.plan = ParallelPlan{cluster.nModules / 4, 4};
    applyOptions(cluster, PimphonyOptions::all());
    std::vector<Request> reqs;
    for (RequestId i = 0; i < 64; ++i)
        reqs.push_back({i, (i % 4 == 0) ? Tokens(30000) : Tokens(2000),
                        24});
    auto timed = gammaArrivals(reqs, 4.0, 3.0, 17);
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::EventDriven;
    opts.prefillChunkTokens = 2048;
    return ServingEngine(cluster, model, timed, opts).run();
}

EngineResult
runConfigB()
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    cluster.plan = ParallelPlan{cluster.nModules / 2, 2};
    applyOptions(cluster, PimphonyOptions::all());
    std::vector<Request> reqs;
    for (RequestId i = 0; i < 32; ++i)
        reqs.push_back({i, 20000, 16});
    auto timed = poissonArrivals(reqs, 2.0, 7);
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::EventDriven;
    opts.prefillChunkTokens = 1024;
    opts.sched.kind = SchedPolicyKind::SloAdmission;
    return ServingEngine(cluster, model, timed, opts).run();
}

EngineResult
runConfigC()
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    applyOptions(cluster, PimphonyOptions::all());
    std::vector<Request> reqs;
    for (RequestId i = 0; i < 8; ++i)
        reqs.push_back({i, 20000 + 5000 * Tokens(i), 16});
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::Analytic;
    return ServingEngine(cluster, model, reqs, opts).run();
}

EngineResult
runConfigD()
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());
    std::vector<Request> reqs;
    for (RequestId i = 0; i < 16; ++i)
        reqs.push_back({i, 30000, 12});
    auto timed = poissonArrivals(reqs, 1.5, 17);
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::EventDriven;
    opts.prefillChunkTokens = 2048;
    opts.sched.kind = SchedPolicyKind::ChunkPreempt;
    return ServingEngine(cluster, model, timed, opts).run();
}

/** avg* fields: pinned to relative 1e-12 (summation-order change). */
void
expectAvgNear(double actual, double golden)
{
    EXPECT_NEAR(actual, golden, 1e-12 * std::abs(golden) + 1e-300);
}

TEST(EngineGolden, EventDrivenPp4FifoChunked)
{
    auto r = runConfigA();
    EXPECT_DOUBLE_EQ(r.tokensPerSecond, 0x1.0dc2950e6faffp+6);
    EXPECT_DOUBLE_EQ(r.simulatedSeconds, 0x1.6c69a64fde9b9p+4);
    EXPECT_EQ(r.generatedTokens, 1536u);
    EXPECT_EQ(r.completedRequests, 64u);
    EXPECT_DOUBLE_EQ(r.avgEffectiveBatch, 0x1.293396f5d0b5bp+3);
    EXPECT_DOUBLE_EQ(r.macUtilization, 0x1.3e78189cc649ap-3);
    EXPECT_DOUBLE_EQ(r.capacityUtilization, 0x1.06d349531cda7p-3);
    EXPECT_DOUBLE_EQ(r.attentionSeconds, 0x1.8e79c4abdad46p+1);
    EXPECT_DOUBLE_EQ(r.fcSeconds, 0x1.62d540ad09928p+2);
    EXPECT_DOUBLE_EQ(r.prefillSeconds, 0x1.ab40b5fda861dp+3);
    EXPECT_DOUBLE_EQ(r.p95RequestLatency, 0x1.9cee1d2c9a9bp+2);
    EXPECT_DOUBLE_EQ(r.p95FirstTokenSeconds, 0x1.4c6cd1a96e2ccp+2);
    EXPECT_DOUBLE_EQ(r.p95TokenGapSeconds, 0x1.f8ad03a9d52a8p-2);
    EXPECT_DOUBLE_EQ(r.maxDecodeXpuWaitSeconds, 0x1.8946b705d2885p-2);
    EXPECT_DOUBLE_EQ(r.xpuPrefillBusySeconds, 0x1.ab40b5fda8616p+5);
    expectAvgNear(r.avgRequestLatency, 0x1.289a62b4d8264p+2);
    expectAvgNear(r.avgFirstTokenSeconds, 0x1.a3b100f0cefa1p+0);
    expectAvgNear(r.avgTokenGapSeconds, 0x1.0aaf7ddf8090cp-3);
    EXPECT_EQ(r.preemptions, 0u);
    EXPECT_EQ(r.rejectedRequests, 0u);
    EXPECT_EQ(r.sloDeferrals, 0u);
    EXPECT_EQ(r.chunkSlices, 0u);
    EXPECT_EQ(r.decodeOvertakes, 0u);
}

TEST(EngineGolden, EventDrivenPp2SloAdmission)
{
    auto r = runConfigB();
    EXPECT_DOUBLE_EQ(r.tokensPerSecond, 0x1.c6221449dc69bp+4);
    EXPECT_DOUBLE_EQ(r.simulatedSeconds, 0x1.209ec681ab226p+4);
    EXPECT_EQ(r.generatedTokens, 512u);
    EXPECT_EQ(r.completedRequests, 32u);
    EXPECT_DOUBLE_EQ(r.p95RequestLatency, 0x1.6b67d7357f448p+2);
    EXPECT_DOUBLE_EQ(r.p95FirstTokenSeconds, 0x1.292e0105d1166p+2);
    EXPECT_DOUBLE_EQ(r.p95TokenGapSeconds, 0x1.fe72c208383cp-4);
    EXPECT_DOUBLE_EQ(r.prefillSeconds, 0x1.b7c5d48b072fep+3);
    EXPECT_DOUBLE_EQ(r.xpuPrefillBusySeconds, 0x1.b7c5d48b07303p+4);
    expectAvgNear(r.avgTokenGapSeconds, 0x1.1f3e419584d91p-5);
    // The SLO gate's deferral count is the sharpest witness that the
    // streaming windowed p95 reproduces the copy+sort signal: one
    // different percentile read would shift admissions.
    EXPECT_EQ(r.sloDeferrals, 73u);
}

TEST(EngineGolden, AnalyticPp1)
{
    auto r = runConfigC();
    EXPECT_DOUBLE_EQ(r.tokensPerSecond, 0x1.4499752e43138p+9);
    EXPECT_DOUBLE_EQ(r.simulatedSeconds, 0x1.93cbcf4bd81acp-3);
    EXPECT_EQ(r.generatedTokens, 128u);
    EXPECT_EQ(r.completedRequests, 8u);
    EXPECT_DOUBLE_EQ(r.avgEffectiveBatch, 0x1p+3);
    EXPECT_DOUBLE_EQ(r.macUtilization, 0x1.5921e0372e998p-2);
    EXPECT_DOUBLE_EQ(r.capacityUtilization, 0x1.41f3ea3258a45p-2);
    EXPECT_DOUBLE_EQ(r.attentionSeconds, 0x1.eb60136ea557bp-4);
    EXPECT_DOUBLE_EQ(r.fcSeconds, 0x1.b93da3cf7d811p-5);
    EXPECT_DOUBLE_EQ(r.p95RequestLatency, 0x1.93cbcf4bd81acp-3);
    EXPECT_DOUBLE_EQ(r.p95FirstTokenSeconds, 0x1.93ba17cf90b2ap-7);
    EXPECT_DOUBLE_EQ(r.p95TokenGapSeconds, 0x1.93d3dce16cedp-7);
    expectAvgNear(r.avgTokenGapSeconds, 0x1.93ccfda97677ep-7);
}

TEST(EngineGolden, EventDrivenChunkPreempt)
{
    auto r = runConfigD();
    EXPECT_DOUBLE_EQ(r.tokensPerSecond, 0x1.ac69c8d7c69eep+3);
    EXPECT_DOUBLE_EQ(r.simulatedSeconds, 0x1.caebe19eb91a8p+3);
    EXPECT_EQ(r.generatedTokens, 192u);
    EXPECT_EQ(r.completedRequests, 16u);
    EXPECT_DOUBLE_EQ(r.p95TokenGapSeconds, 0x1.4d61d3e51d8p-8);
    EXPECT_DOUBLE_EQ(r.maxDecodeXpuWaitSeconds, 0x1.0624dd2f1bp-9);
    EXPECT_DOUBLE_EQ(r.xpuPrefillBusySeconds, 0x1.7afb48e11a616p+3);
    // Quantum-slicing counters: preemption accounting is exact.
    EXPECT_EQ(r.chunkSlices, 5808u);
    EXPECT_EQ(r.decodeOvertakes, 168u);
}

TEST(EngineDeterminism, RepeatedRunsAreBitIdentical)
{
    for (int cfg = 0; cfg < 4; ++cfg) {
        EngineResult a, b;
        switch (cfg) {
          case 0: a = runConfigA(); b = runConfigA(); break;
          case 1: a = runConfigB(); b = runConfigB(); break;
          case 2: a = runConfigC(); b = runConfigC(); break;
          default: a = runConfigD(); b = runConfigD(); break;
        }
        EXPECT_EQ(a.tokensPerSecond, b.tokensPerSecond) << cfg;
        EXPECT_EQ(a.simulatedSeconds, b.simulatedSeconds) << cfg;
        EXPECT_EQ(a.generatedTokens, b.generatedTokens) << cfg;
        EXPECT_EQ(a.completedRequests, b.completedRequests) << cfg;
        EXPECT_EQ(a.avgEffectiveBatch, b.avgEffectiveBatch) << cfg;
        EXPECT_EQ(a.macUtilization, b.macUtilization) << cfg;
        EXPECT_EQ(a.capacityUtilization, b.capacityUtilization) << cfg;
        EXPECT_EQ(a.attentionSeconds, b.attentionSeconds) << cfg;
        EXPECT_EQ(a.fcSeconds, b.fcSeconds) << cfg;
        EXPECT_EQ(a.prefillSeconds, b.prefillSeconds) << cfg;
        EXPECT_EQ(a.avgRequestLatency, b.avgRequestLatency) << cfg;
        EXPECT_EQ(a.p95RequestLatency, b.p95RequestLatency) << cfg;
        EXPECT_EQ(a.avgFirstTokenSeconds, b.avgFirstTokenSeconds) << cfg;
        EXPECT_EQ(a.p95FirstTokenSeconds, b.p95FirstTokenSeconds) << cfg;
        EXPECT_EQ(a.avgTokenGapSeconds, b.avgTokenGapSeconds) << cfg;
        EXPECT_EQ(a.p95TokenGapSeconds, b.p95TokenGapSeconds) << cfg;
        EXPECT_EQ(a.sloDeferrals, b.sloDeferrals) << cfg;
        EXPECT_EQ(a.chunkSlices, b.chunkSlices) << cfg;
        EXPECT_EQ(a.decodeOvertakes, b.decodeOvertakes) << cfg;
        EXPECT_EQ(a.maxDecodeXpuWaitSeconds, b.maxDecodeXpuWaitSeconds)
            << cfg;
        EXPECT_EQ(a.xpuPrefillBusySeconds, b.xpuPrefillBusySeconds)
            << cfg;
        EXPECT_EQ(a.simEvents, b.simEvents) << cfg;
        EXPECT_EQ(a.preemptions, b.preemptions) << cfg;
        EXPECT_EQ(a.rejectedRequests, b.rejectedRequests) << cfg;
    }
}

} // namespace
} // namespace pimphony
