/**
 * @file
 * Fault-tolerance tests for the fleet: deterministic fault
 * schedules, replica drain/evacuation, retry-with-backoff failover
 * routing, and the fault metrics.
 *
 * The acceptance properties:
 *  (a) additivity — an empty FaultSchedule is bit-identical, field
 *      for field, to the pre-fault fleet, and a schedule whose
 *      faults never displace work (slowdown-1.0 brown-out) routes
 *      and serves bit-identically through the fault loop;
 *  (b) a T-thread fault run is bit-identical to a serial one, for
 *      both routing policies, fault metrics included;
 *  (c) accounting — every generated request is completed, lost, or
 *      rejected, exactly once, and generatedTokens decomposes into
 *      goodputTokens + lostTokens under crash-mid-decode failover;
 *  (d) drain evacuations, stranded session successors, availability
 *      and reload accounting behave as scripted.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "system/engine.hh"
#include "system/fault.hh"
#include "system/fleet.hh"
#include "workload/arrival.hh"
#include "workload/session.hh"
#include "workload/trace.hh"

namespace pimphony {
namespace {

LlmConfig
testModel()
{
    return LlmConfig::llm7b(true);
}

ClusterConfig
testCluster(const LlmConfig &model)
{
    auto cluster = ClusterConfig::neupimsLike(model);
    cluster.plan = ParallelPlan{cluster.nModules / 4, 4};
    applyOptions(cluster, PimphonyOptions::all());
    return cluster;
}

EngineOptions
testEngineOptions()
{
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::EventDriven;
    opts.prefillChunkTokens = 2048;
    return opts;
}

std::vector<TimedRequest>
testTrace(std::size_t n, double rate, std::uint64_t seed,
          Tokens decode = 16)
{
    std::vector<Request> reqs;
    for (RequestId i = 0; i < n; ++i)
        reqs.push_back({i, (i % 4 == 0) ? Tokens(20000) : Tokens(2000),
                        decode});
    return poissonArrivals(reqs, rate, seed);
}

/**
 * Field-by-field equality over the timing-independent EngineResult
 * metrics (the fleet_test comparison surface).
 */
void
expectSameResult(const EngineResult &a, const EngineResult &b)
{
    EXPECT_EQ(a.tokensPerSecond, b.tokensPerSecond);
    EXPECT_EQ(a.simulatedSeconds, b.simulatedSeconds);
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
    EXPECT_EQ(a.completedRequests, b.completedRequests);
    EXPECT_EQ(a.rejectedRequests, b.rejectedRequests);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.avgEffectiveBatch, b.avgEffectiveBatch);
    EXPECT_EQ(a.macUtilization, b.macUtilization);
    EXPECT_EQ(a.capacityUtilization, b.capacityUtilization);
    EXPECT_EQ(a.attentionSeconds, b.attentionSeconds);
    EXPECT_EQ(a.fcSeconds, b.fcSeconds);
    EXPECT_EQ(a.prefillSeconds, b.prefillSeconds);
    EXPECT_EQ(a.avgRequestLatency, b.avgRequestLatency);
    EXPECT_EQ(a.p95RequestLatency, b.p95RequestLatency);
    EXPECT_EQ(a.avgFirstTokenSeconds, b.avgFirstTokenSeconds);
    EXPECT_EQ(a.p95FirstTokenSeconds, b.p95FirstTokenSeconds);
    EXPECT_EQ(a.avgTokenGapSeconds, b.avgTokenGapSeconds);
    EXPECT_EQ(a.p95TokenGapSeconds, b.p95TokenGapSeconds);
    EXPECT_EQ(a.sloDeferrals, b.sloDeferrals);
    EXPECT_EQ(a.chunkSlices, b.chunkSlices);
    EXPECT_EQ(a.decodeOvertakes, b.decodeOvertakes);
    EXPECT_EQ(a.decodePreemptSlices, b.decodePreemptSlices);
    EXPECT_EQ(a.tierInversions, b.tierInversions);
    EXPECT_EQ(a.maxTierInversionWaitSeconds,
              b.maxTierInversionWaitSeconds);
    EXPECT_EQ(a.maxDecodeXpuWaitSeconds, b.maxDecodeXpuWaitSeconds);
    EXPECT_EQ(a.xpuPrefillBusySeconds, b.xpuPrefillBusySeconds);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.budgetDeferrals, b.budgetDeferrals);
    EXPECT_EQ(a.firstTokenLatency, b.firstTokenLatency);
}

/** Full fleet comparison: per-replica, aggregate, fault metrics. */
void
expectSameFleet(const FleetResult &a, const FleetResult &b)
{
    EXPECT_EQ(a.routedRequests, b.routedRequests);
    EXPECT_EQ(a.routedSessions, b.routedSessions);
    ASSERT_EQ(a.replicas.size(), b.replicas.size());
    for (std::size_t i = 0; i < a.replicas.size(); ++i)
        expectSameResult(a.replicas[i], b.replicas[i]);
    expectSameResult(a.aggregate, b.aggregate);
    EXPECT_EQ(a.availability, b.availability);
    EXPECT_EQ(a.goodputTokens, b.goodputTokens);
    EXPECT_EQ(a.goodputTokensPerSecond, b.goodputTokensPerSecond);
    EXPECT_EQ(a.evacuatedRequests, b.evacuatedRequests);
    EXPECT_EQ(a.retriedRequests, b.retriedRequests);
    EXPECT_EQ(a.lostRequests, b.lostRequests);
    EXPECT_EQ(a.lostTokens, b.lostTokens);
    EXPECT_EQ(a.reloadSeconds, b.reloadSeconds);
    // retryHistogram is compared by the callers that expect both
    // sides to have run the fault loop: the fault-free path reports
    // no histogram at all, a displacement-free fault run an all-zero
    // one.
}

// --- FaultSchedule: generation and validation. -------------------------

TEST(FaultSchedule, BuilderIsAPureFunctionOfSpecAndSeed)
{
    FaultSpec spec;
    spec.replicas = 4;
    spec.horizonSeconds = 1000.0;
    spec.mtbfSeconds = 40.0;
    spec.mttrSeconds = 5.0;
    spec.modelReloadSeconds = 2.0;
    spec.degradeProbability = 0.3;
    spec.drainSeconds = 1.0;

    auto a = buildFaultSchedule(spec, 7);
    auto b = buildFaultSchedule(spec, 7);
    ASSERT_EQ(a.replicas.size(), b.replicas.size());
    ASSERT_GT(a.eventCount(), 0u);
    for (std::size_t r = 0; r < a.replicas.size(); ++r) {
        ASSERT_EQ(a.replicas[r].size(), b.replicas[r].size());
        for (std::size_t i = 0; i < a.replicas[r].size(); ++i) {
            EXPECT_EQ(a.replicas[r][i].kind, b.replicas[r][i].kind);
            EXPECT_EQ(a.replicas[r][i].atSeconds,
                      b.replicas[r][i].atSeconds);
            EXPECT_EQ(a.replicas[r][i].durationSeconds,
                      b.replicas[r][i].durationSeconds);
        }
    }
    // A different seed draws a different history.
    auto c = buildFaultSchedule(spec, 8);
    bool differs = c.eventCount() != a.eventCount();
    for (std::size_t r = 0; !differs && r < a.replicas.size(); ++r)
        differs = a.replicas[r].size() != c.replicas[r].size() ||
                  (!a.replicas[r].empty() &&
                   a.replicas[r][0].atSeconds !=
                       c.replicas[r][0].atSeconds);
    EXPECT_TRUE(differs);
}

TEST(FaultSchedule, PerReplicaStreamsAreFleetSizeIndependent)
{
    FaultSpec small;
    small.replicas = 2;
    small.horizonSeconds = 500.0;
    small.mtbfSeconds = 30.0;
    FaultSpec big = small;
    big.replicas = 6;

    auto a = buildFaultSchedule(small, 11);
    auto b = buildFaultSchedule(big, 11);
    for (std::size_t r = 0; r < small.replicas; ++r) {
        ASSERT_EQ(a.replicas[r].size(), b.replicas[r].size());
        for (std::size_t i = 0; i < a.replicas[r].size(); ++i)
            EXPECT_EQ(a.replicas[r][i].atSeconds,
                      b.replicas[r][i].atSeconds);
    }
}

TEST(FaultSchedule, ValidateRejectsMalformedSchedules)
{
    FaultSchedule extra;
    extra.replicas.resize(3);
    extra.replicas[2].push_back(crashAt(1.0));
    EXPECT_DEATH(extra.validate(2), "replica 2 of a 2-replica fleet");

    FaultSchedule unsorted;
    unsorted.replicas.resize(1);
    unsorted.replicas[0].push_back(crashAt(5.0));
    unsorted.replicas[0].push_back(recoverAt(1.0, 0.0));
    EXPECT_DEATH(unsorted.validate(1), "out of order");

    FaultSchedule doublecrash;
    doublecrash.replicas.resize(1);
    doublecrash.replicas[0].push_back(crashAt(1.0));
    doublecrash.replicas[0].push_back(crashAt(2.0));
    EXPECT_DEATH(doublecrash.validate(1), "while still down");

    FaultSchedule orphan;
    orphan.replicas.resize(1);
    orphan.replicas[0].push_back(recoverAt(1.0, 0.0));
    EXPECT_DEATH(orphan.validate(1), "without a preceding crash");
}

// --- (a) Additivity. ---------------------------------------------------

TEST(FleetFaults, EmptyScheduleIsBitIdenticalToFaultFreeFleet)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto trace = testTrace(48, 32.0, 21);

    FleetOptions fopts;
    fopts.replicas = 3;
    fopts.policy = RoutePolicy::LeastLoaded;
    fopts.dispatchLatencySeconds = 0.004;
    fopts.engine = testEngineOptions();
    auto plain = FleetEngine(cluster, model, trace, fopts).run();

    // Replica slots with no events are still an empty schedule.
    fopts.faults.replicas.resize(3);
    auto faulty = FleetEngine(cluster, model, trace, fopts).run();

    EXPECT_EQ(plain.windows, faulty.windows);
    expectSameFleet(plain, faulty);
    // The fault metrics are trivial on both sides.
    EXPECT_EQ(faulty.availability, std::vector<double>(3, 1.0));
    EXPECT_EQ(faulty.evacuatedRequests, 0u);
    EXPECT_EQ(faulty.retriedRequests, 0u);
    EXPECT_EQ(faulty.lostRequests, 0u);
    EXPECT_EQ(faulty.lostTokens, 0u);
    EXPECT_TRUE(faulty.retryHistogram.empty());
    EXPECT_EQ(faulty.reloadSeconds, 0.0);
    EXPECT_EQ(faulty.aggregate.completedRequests, trace.size());
    // Everything completed, so goodput equals the decode total.
    std::uint64_t decode_total = 0;
    for (const auto &timed : trace)
        decode_total += timed.request.decodeTokens;
    EXPECT_EQ(faulty.goodputTokens, decode_total);
}

TEST(FleetFaults, NonDisplacingFaultTakesFaultLoopYetMatchesBitForBit)
{
    // A slowdown-1.0 brown-out after the last arrival exercises the
    // full fault state machine (transition barriers, stray sweeps,
    // service-rate scaling) without displacing any work — IEEE
    // multiplication by 1.0 is exact, so the run must still be
    // bit-identical to the fault-free fleet on every result field
    // (the sync-round count differs: transition barriers are real).
    auto model = testModel();
    auto cluster = testCluster(model);
    auto trace = testTrace(48, 32.0, 22);
    double after_last = trace.back().arrivalSeconds + 0.5;

    for (RoutePolicy policy :
         {RoutePolicy::RoundRobin, RoutePolicy::LeastLoaded}) {
        FleetOptions fopts;
        fopts.replicas = 3;
        fopts.policy = policy;
        fopts.dispatchLatencySeconds = 0.004;
        fopts.engine = testEngineOptions();
        auto plain = FleetEngine(cluster, model, trace, fopts).run();

        fopts.faults.replicas.resize(3);
        fopts.faults.replicas[1].push_back(
            degradeAt(after_last, 1.0, 1.0));
        auto benign = FleetEngine(cluster, model, trace, fopts).run();

        expectSameFleet(plain, benign);
        EXPECT_EQ(benign.availability,
                  std::vector<double>(3, 1.0));
        // The displacement-free run still reports its (empty)
        // retry histogram: one bucket per budget notch, all zero.
        ASSERT_EQ(benign.retryHistogram.size(),
                  std::size_t{fopts.retryBudget} + 1);
        for (std::uint64_t n : benign.retryHistogram)
            EXPECT_EQ(n, 0u);
    }
}

// --- (b) Parallel == serial under faults. ------------------------------

TEST(FleetFaults, ParallelFaultRunMatchesSerialBothPolicies)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto trace = testTrace(64, 48.0, 23, 64);

    FaultSchedule faults;
    faults.replicas.resize(4);
    faults.replicas[0].push_back(degradeAt(0.05, 3.0, 0.2));
    faults.replicas[1].push_back(crashAt(0.08));
    faults.replicas[1].push_back(recoverAt(0.3, 0.05));
    faults.replicas[2].push_back(crashAt(0.15, 0.1));
    faults.replicas[2].push_back(recoverAt(0.6, 0.02));

    for (RoutePolicy policy :
         {RoutePolicy::RoundRobin, RoutePolicy::LeastLoaded}) {
        FleetOptions fopts;
        fopts.replicas = 4;
        fopts.policy = policy;
        fopts.dispatchLatencySeconds = 0.004;
        fopts.engine = testEngineOptions();
        fopts.faults = faults;

        fopts.threads = 1;
        auto serial = FleetEngine(cluster, model, trace, fopts).run();
        fopts.threads = 4;
        auto parallel = FleetEngine(cluster, model, trace, fopts).run();

        EXPECT_EQ(serial.windows, parallel.windows);
        expectSameFleet(serial, parallel);
        EXPECT_EQ(serial.retryHistogram, parallel.retryHistogram);
        // The crashes must have actually displaced work, or the
        // comparison is vacuous.
        EXPECT_GT(serial.evacuatedRequests + serial.retriedRequests,
                  0u);
        EXPECT_EQ(serial.aggregate.completedRequests +
                      serial.lostRequests,
                  trace.size());
    }
}

// --- (c) Accounting identities. ----------------------------------------

TEST(FleetFaults, CrashMidDecodeFailsOverWithExactTokenAccounting)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    // Long decodes so the crash reliably lands mid-decode.
    auto trace = testTrace(24, 64.0, 24, 256);

    FleetOptions fopts;
    fopts.replicas = 2;
    fopts.policy = RoutePolicy::RoundRobin;
    fopts.dispatchLatencySeconds = 0.004;
    fopts.engine = testEngineOptions();
    fopts.faults.replicas.resize(2);
    fopts.faults.replicas[1].push_back(crashAt(0.5));
    auto fleet = FleetEngine(cluster, model, trace, fopts).run();

    // Replica 0 absorbs every failover: nothing is lost, every
    // request completes exactly once.
    EXPECT_EQ(fleet.lostRequests, 0u);
    EXPECT_EQ(fleet.aggregate.completedRequests, trace.size());
    std::size_t completions = 0;
    for (const auto &r : fleet.replicas)
        completions += r.completionSeconds.size();
    EXPECT_EQ(completions, trace.size());

    // The crash discarded in-flight decode progress...
    EXPECT_GT(fleet.lostTokens, 0u);
    EXPECT_GT(fleet.retriedRequests, 0u);
    // ...and the token ledger balances exactly: every generated
    // token was either delivered (goodput) or discarded by the kill.
    std::uint64_t decode_total = 0;
    for (const auto &timed : trace)
        decode_total += timed.request.decodeTokens;
    EXPECT_EQ(fleet.goodputTokens, decode_total);
    EXPECT_EQ(fleet.aggregate.generatedTokens,
              fleet.goodputTokens + fleet.lostTokens);
    EXPECT_LT(fleet.availability[1], 1.0);
    EXPECT_EQ(fleet.availability[0], 1.0);
}

TEST(FleetFaults, DeadFleetLosesTheRemainderExactly)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto trace = testTrace(32, 16.0, 25, 128);

    FleetOptions fopts;
    fopts.replicas = 2;
    fopts.policy = RoutePolicy::RoundRobin;
    fopts.dispatchLatencySeconds = 0.004;
    fopts.engine = testEngineOptions();
    // Both replicas die with no recovery scripted: whatever has not
    // completed by then is lost — and the ledger must account for
    // every single request.
    fopts.faults.replicas.resize(2);
    fopts.faults.replicas[0].push_back(crashAt(0.5));
    fopts.faults.replicas[1].push_back(crashAt(0.3));
    auto fleet = FleetEngine(cluster, model, trace, fopts).run();

    EXPECT_GT(fleet.lostRequests, 0u);
    EXPECT_EQ(fleet.aggregate.completedRequests + fleet.lostRequests +
                  fleet.aggregate.rejectedRequests,
              trace.size());
    EXPECT_EQ(fleet.aggregate.generatedTokens,
              fleet.goodputTokens + fleet.lostTokens);
    EXPECT_LT(fleet.availability[0], 1.0);
    EXPECT_LT(fleet.availability[1], 1.0);
}

TEST(FleetFaults, RetryBudgetExhaustionDropsAndHistogramsRequests)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto trace = testTrace(16, 32.0, 26, 128);

    FleetOptions fopts;
    fopts.replicas = 2;
    fopts.policy = RoutePolicy::RoundRobin;
    fopts.dispatchLatencySeconds = 0.004;
    fopts.engine = testEngineOptions();
    fopts.retryBudget = 0; // first displacement is fatal
    fopts.faults.replicas.resize(2);
    fopts.faults.replicas[1].push_back(crashAt(0.2));
    auto fleet = FleetEngine(cluster, model, trace, fopts).run();

    // With no retries allowed, every displaced request is lost and
    // lands in the budget-capped histogram bucket.
    EXPECT_GT(fleet.lostRequests, 0u);
    EXPECT_EQ(fleet.retriedRequests, 0u);
    ASSERT_EQ(fleet.retryHistogram.size(), 1u);
    EXPECT_EQ(fleet.retryHistogram[0], fleet.lostRequests);
    EXPECT_EQ(fleet.aggregate.completedRequests + fleet.lostRequests,
              trace.size());
}

// --- (d) Drain, sessions, availability. --------------------------------

TEST(FleetFaults, DrainEvacuatesQueuedWorkAndFinishesInFlight)
{
    // Memory-tight replicas (two requests fill the KV capacity, the
    // third queues unadmitted) so the draining replica holds a real
    // admission backlog to evacuate.
    auto model = testModel();
    auto cluster = ClusterConfig::centLike(model);
    cluster.nModules = 2;
    cluster.plan = ParallelPlan{2, 1};
    applyOptions(cluster, PimphonyOptions::all());
    Tokens cap = cluster.usableKvBytes(model) / model.kvBytesPerToken();
    Tokens per_req = cap / 2;

    std::vector<TimedRequest> trace;
    for (RequestId i = 0; i < 6; ++i)
        trace.push_back({Request(i, per_req - 64, 32),
                         0.001 * static_cast<double>(i)});

    FleetOptions fopts;
    fopts.replicas = 2;
    fopts.policy = RoutePolicy::RoundRobin;
    fopts.dispatchLatencySeconds = 0.01;
    fopts.engine = testEngineOptions();
    fopts.faults.replicas.resize(2);
    // Generous grace: in-flight work finishes, only queued work
    // migrates.
    fopts.faults.replicas[1].push_back(crashAt(0.05, 10000.0));
    auto fleet = FleetEngine(cluster, model, trace, fopts).run();

    EXPECT_GT(fleet.evacuatedRequests, 0u);
    EXPECT_EQ(fleet.lostRequests, 0u);
    EXPECT_EQ(fleet.lostTokens, 0u); // nothing was killed mid-flight
    EXPECT_EQ(fleet.aggregate.completedRequests, trace.size());
    // The drained replica finished what it had admitted.
    EXPECT_GT(fleet.replicas[1].completedRequests, 0u);
    EXPECT_LT(fleet.availability[1], 1.0);
}

TEST(FleetFaults, StrandedSessionSuccessorRePinsAfterCrash)
{
    auto model = testModel();
    auto cluster = testCluster(model);

    // One session whose turn 0 lands on replica 0 (round-robin) and
    // completes quickly; the successor releases after an 8 s think,
    // by which time replica 0 has crashed. The stray sweep must
    // migrate it and the session must re-pin to replica 1.
    Request turn0(0, 2000, 16);
    turn0.session = 1;
    turn0.turn = 0;
    Request filler(1, 2000, 16);
    Request turn1(2, 1000, 16);
    turn1.session = 1;
    turn1.turn = 1;
    std::vector<TimedRequest> trace = {{turn0, 0.0}, {filler, 0.0}};
    SessionBook sessions;
    sessions.emplace(turn0.id, SessionTurn{turn1, 8.0});

    FleetOptions fopts;
    fopts.replicas = 2;
    fopts.policy = RoutePolicy::RoundRobin;
    fopts.dispatchLatencySeconds = 0.004;
    fopts.engine = testEngineOptions();
    fopts.faults.replicas.resize(2);
    fopts.faults.replicas[0].push_back(crashAt(3.0));
    FleetEngine fleet_engine(cluster, model, trace, fopts);
    fleet_engine.setSessions(sessions);
    auto fleet = fleet_engine.run();

    EXPECT_EQ(fleet.aggregate.completedRequests, 3u);
    EXPECT_EQ(fleet.lostRequests, 0u);
    EXPECT_GE(fleet.evacuatedRequests, 1u);
    EXPECT_GE(fleet.retriedRequests, 1u);
    // The successor completed on the surviving replica, and the pin
    // followed it.
    EXPECT_EQ(fleet.replicas[1].completionSeconds.count(turn1.id), 1u);
    EXPECT_EQ(fleet.routedSessions[1], 1u);
    EXPECT_LT(fleet.availability[0], 1.0);
}

TEST(FleetFaults, AvailabilityAndReloadFollowTheScriptedOutage)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    // Long decodes keep the makespan past the recovery point.
    auto trace = testTrace(24, 16.0, 28, 512);

    FleetOptions fopts;
    fopts.replicas = 2;
    fopts.policy = RoutePolicy::RoundRobin;
    fopts.dispatchLatencySeconds = 0.004;
    fopts.engine = testEngineOptions();
    fopts.faults.replicas.resize(2);
    fopts.faults.replicas[1].push_back(crashAt(1.0));
    fopts.faults.replicas[1].push_back(recoverAt(2.0, 0.5));
    auto fleet = FleetEngine(cluster, model, trace, fopts).run();

    double makespan = fleet.aggregate.simulatedSeconds;
    ASSERT_GT(makespan, 2.5);
    // Down from the crash at 1.0 until the reload completes at 2.5.
    EXPECT_DOUBLE_EQ(fleet.availability[1], 1.0 - 1.5 / makespan);
    EXPECT_EQ(fleet.availability[0], 1.0);
    EXPECT_EQ(fleet.reloadSeconds, 0.5);
    // The recovered replica serves traffic again.
    EXPECT_EQ(fleet.aggregate.completedRequests + fleet.lostRequests,
              trace.size());
}

} // namespace
} // namespace pimphony
