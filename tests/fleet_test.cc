/**
 * @file
 * Tests for the fleet simulation: conservative-window replica
 * advancement behind a routing front-end.
 *
 * The acceptance properties:
 *  (a) a 1-replica fleet is bit-identical (field by field, over the
 *      timing-independent metrics) to a bare ServingEngine::run()
 *      fed the same arrivals — with zero dispatch latency directly,
 *      with positive latency after shifting every arrival by it;
 *  (b) an N-replica fleet advanced on T threads is bit-identical to
 *      the same fleet advanced serially, for both routing policies;
 *  (c) the zero-lookahead lockstep fallback is thread-count
 *      independent;
 *  (d) window-protocol edges hold: a replica idling across many
 *      windows stays correct, and an arrival landing exactly on a
 *      window barrier routes at that barrier (inclusive bound).
 */

#include <gtest/gtest.h>

#include <vector>

#include "system/engine.hh"
#include "system/fleet.hh"
#include "workload/arrival.hh"
#include "workload/trace.hh"

namespace pimphony {
namespace {

LlmConfig
testModel()
{
    return LlmConfig::llm7b(true);
}

ClusterConfig
testCluster(const LlmConfig &model)
{
    auto cluster = ClusterConfig::neupimsLike(model);
    cluster.plan = ParallelPlan{cluster.nModules / 4, 4};
    applyOptions(cluster, PimphonyOptions::all());
    return cluster;
}

EngineOptions
testEngineOptions()
{
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::EventDriven;
    opts.prefillChunkTokens = 2048;
    return opts;
}

std::vector<TimedRequest>
testTrace(std::size_t n, double rate, std::uint64_t seed)
{
    std::vector<Request> reqs;
    for (RequestId i = 0; i < n; ++i)
        reqs.push_back({i, (i % 4 == 0) ? Tokens(20000) : Tokens(2000),
                        16});
    return poissonArrivals(reqs, rate, seed);
}

/**
 * Field-by-field equality over the timing-independent EngineResult
 * metrics (the engine_determinism_test comparison surface).
 */
void
expectSameResult(const EngineResult &a, const EngineResult &b)
{
    EXPECT_EQ(a.tokensPerSecond, b.tokensPerSecond);
    EXPECT_EQ(a.simulatedSeconds, b.simulatedSeconds);
    EXPECT_EQ(a.generatedTokens, b.generatedTokens);
    EXPECT_EQ(a.completedRequests, b.completedRequests);
    EXPECT_EQ(a.rejectedRequests, b.rejectedRequests);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.avgEffectiveBatch, b.avgEffectiveBatch);
    EXPECT_EQ(a.macUtilization, b.macUtilization);
    EXPECT_EQ(a.capacityUtilization, b.capacityUtilization);
    EXPECT_EQ(a.attentionSeconds, b.attentionSeconds);
    EXPECT_EQ(a.fcSeconds, b.fcSeconds);
    EXPECT_EQ(a.prefillSeconds, b.prefillSeconds);
    EXPECT_EQ(a.avgRequestLatency, b.avgRequestLatency);
    EXPECT_EQ(a.p95RequestLatency, b.p95RequestLatency);
    EXPECT_EQ(a.avgFirstTokenSeconds, b.avgFirstTokenSeconds);
    EXPECT_EQ(a.p95FirstTokenSeconds, b.p95FirstTokenSeconds);
    EXPECT_EQ(a.avgTokenGapSeconds, b.avgTokenGapSeconds);
    EXPECT_EQ(a.p95TokenGapSeconds, b.p95TokenGapSeconds);
    EXPECT_EQ(a.sloDeferrals, b.sloDeferrals);
    EXPECT_EQ(a.chunkSlices, b.chunkSlices);
    EXPECT_EQ(a.decodeOvertakes, b.decodeOvertakes);
    EXPECT_EQ(a.decodePreemptSlices, b.decodePreemptSlices);
    EXPECT_EQ(a.tierInversions, b.tierInversions);
    EXPECT_EQ(a.maxTierInversionWaitSeconds,
              b.maxTierInversionWaitSeconds);
    EXPECT_EQ(a.maxDecodeXpuWaitSeconds, b.maxDecodeXpuWaitSeconds);
    EXPECT_EQ(a.xpuPrefillBusySeconds, b.xpuPrefillBusySeconds);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.budgetDeferrals, b.budgetDeferrals);
    EXPECT_EQ(a.firstTokenLatency, b.firstTokenLatency);
    ASSERT_EQ(a.classLatencies.size(), b.classLatencies.size());
    for (std::size_t i = 0; i < a.classLatencies.size(); ++i) {
        const auto &ca = a.classLatencies[i];
        const auto &cb = b.classLatencies[i];
        EXPECT_EQ(ca.tier, cb.tier);
        EXPECT_EQ(ca.requests, cb.requests);
        EXPECT_EQ(ca.completedRequests, cb.completedRequests);
        EXPECT_EQ(ca.avgFirstTokenSeconds, cb.avgFirstTokenSeconds);
        EXPECT_EQ(ca.p95TokenGapSeconds, cb.p95TokenGapSeconds);
    }
    ASSERT_EQ(a.tenantOccupancy.size(), b.tenantOccupancy.size());
    for (std::size_t i = 0; i < a.tenantOccupancy.size(); ++i) {
        const auto &ta = a.tenantOccupancy[i];
        const auto &tb = b.tenantOccupancy[i];
        EXPECT_EQ(ta.tenant, tb.tenant);
        EXPECT_EQ(ta.admittedRequests, tb.admittedRequests);
        EXPECT_EQ(ta.avgTokenShare, tb.avgTokenShare);
        EXPECT_EQ(ta.peakTokenShare, tb.peakTokenShare);
    }
}

// --- (a) 1-replica fleet == bare engine. -------------------------------

TEST(FleetEngine, OneReplicaZeroLookaheadMatchesBareEngine)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto trace = testTrace(48, 24.0, 11);

    auto bare =
        ServingEngine(cluster, model, trace, testEngineOptions()).run();

    FleetOptions fopts;
    fopts.replicas = 1;
    fopts.dispatchLatencySeconds = 0.0;
    fopts.engine = testEngineOptions();
    auto fleet = FleetEngine(cluster, model, trace, fopts).run();

    ASSERT_EQ(fleet.replicas.size(), 1u);
    EXPECT_EQ(fleet.routedRequests[0], trace.size());
    ASSERT_GT(bare.completedRequests, 0u);
    expectSameResult(fleet.replicas[0], bare);
    // With one replica the aggregate inherits the replica's metrics.
    expectSameResult(fleet.aggregate, bare);
}

TEST(FleetEngine, OneReplicaLookaheadMatchesShiftedBareEngine)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto trace = testTrace(48, 24.0, 12);
    const double d = 0.005;

    // The dispatch latency delays every arrival by d; a bare engine
    // fed the shifted trace must observe the identical simulation.
    auto shifted = trace;
    for (auto &t : shifted)
        t.arrivalSeconds += d;
    auto bare =
        ServingEngine(cluster, model, shifted, testEngineOptions())
            .run();

    FleetOptions fopts;
    fopts.replicas = 1;
    fopts.dispatchLatencySeconds = d;
    fopts.engine = testEngineOptions();
    auto fleet = FleetEngine(cluster, model, trace, fopts).run();

    ASSERT_EQ(fleet.replicas.size(), 1u);
    ASSERT_GT(bare.completedRequests, 0u);
    expectSameResult(fleet.replicas[0], bare);
}

// --- (b) Parallel == serial. -------------------------------------------

TEST(FleetEngine, ParallelAdvanceMatchesSerialBothPolicies)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto trace = testTrace(64, 48.0, 13);

    for (RoutePolicy policy :
         {RoutePolicy::RoundRobin, RoutePolicy::LeastLoaded}) {
        FleetOptions fopts;
        fopts.replicas = 4;
        fopts.policy = policy;
        fopts.dispatchLatencySeconds = 0.004;
        fopts.engine = testEngineOptions();

        fopts.threads = 1;
        auto serial = FleetEngine(cluster, model, trace, fopts).run();
        fopts.threads = 4;
        auto parallel = FleetEngine(cluster, model, trace, fopts).run();

        EXPECT_EQ(serial.windows, parallel.windows);
        EXPECT_EQ(serial.routedRequests, parallel.routedRequests);
        ASSERT_EQ(serial.replicas.size(), parallel.replicas.size());
        for (std::size_t i = 0; i < serial.replicas.size(); ++i)
            expectSameResult(serial.replicas[i], parallel.replicas[i]);
        expectSameResult(serial.aggregate, parallel.aggregate);
        EXPECT_EQ(serial.aggregate.completedRequests, trace.size());
    }
}

// --- (c) Zero-lookahead lockstep is thread-independent. ----------------

TEST(FleetEngine, ZeroLookaheadLockstepIgnoresThreadCount)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto trace = testTrace(32, 32.0, 14);

    FleetOptions fopts;
    fopts.replicas = 3;
    fopts.policy = RoutePolicy::LeastLoaded;
    fopts.dispatchLatencySeconds = 0.0;
    fopts.engine = testEngineOptions();

    fopts.threads = 1;
    auto serial = FleetEngine(cluster, model, trace, fopts).run();
    fopts.threads = 4;
    auto pooled = FleetEngine(cluster, model, trace, fopts).run();

    EXPECT_EQ(serial.windows, pooled.windows);
    EXPECT_EQ(serial.routedRequests, pooled.routedRequests);
    for (std::size_t i = 0; i < serial.replicas.size(); ++i)
        expectSameResult(serial.replicas[i], pooled.replicas[i]);
}

// --- (d) Window-protocol edges. ----------------------------------------

TEST(FleetEngine, ReplicaIdleAcrossManyWindowsStaysCorrect)
{
    auto model = testModel();
    auto cluster = testCluster(model);

    // Three requests spaced hundreds of windows apart under
    // round-robin: replica 1 receives one early request and then
    // idles across many barriers while replica 0 keeps working.
    std::vector<Request> reqs = {{0, 2000, 16}, {1, 2000, 16},
                                 {2, 2000, 16}};
    std::vector<TimedRequest> trace = {{reqs[0], 0.01},
                                       {reqs[1], 0.5},
                                       {reqs[2], 1.0}};

    FleetOptions fopts;
    fopts.replicas = 2;
    fopts.policy = RoutePolicy::RoundRobin;
    fopts.dispatchLatencySeconds = 0.002;
    fopts.engine = testEngineOptions();
    auto fleet = FleetEngine(cluster, model, trace, fopts).run();

    // Router-idle barriers between the spaced arrivals are skipped,
    // so the sync-round count is one per routing barrier plus the
    // final drain — not the ~500 barriers of simulated time the
    // last arrival crosses.
    EXPECT_GE(fleet.windows, 4u);
    EXPECT_LE(fleet.windows, 8u);
    EXPECT_EQ(fleet.aggregate.completedRequests, 3u);
    EXPECT_EQ(fleet.routedRequests[0], 2u);
    EXPECT_EQ(fleet.routedRequests[1], 1u);
    EXPECT_EQ(fleet.replicas[0].completedRequests, 2u);
    EXPECT_EQ(fleet.replicas[1].completedRequests, 1u);
}

TEST(FleetEngine, ArrivalExactlyOnWindowBoundaryRoutesInclusive)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    const double w = 0.25; // exactly representable: barriers are exact

    // Arrivals landing exactly on barrier times k * w. The routing
    // bound is inclusive (t <= B_j), so each routes at its own
    // barrier and is delivered at t + w — which a bare engine fed
    // the shifted trace reproduces exactly.
    std::vector<Request> reqs = {{0, 2000, 16}, {1, 2000, 16},
                                 {2, 2000, 16}};
    std::vector<TimedRequest> trace = {{reqs[0], 0.0},
                                       {reqs[1], w},
                                       {reqs[2], 2 * w}};

    auto shifted = trace;
    for (auto &t : shifted)
        t.arrivalSeconds += w;
    auto bare =
        ServingEngine(cluster, model, shifted, testEngineOptions())
            .run();

    FleetOptions fopts;
    fopts.replicas = 1;
    fopts.dispatchLatencySeconds = w;
    fopts.engine = testEngineOptions();
    auto fleet = FleetEngine(cluster, model, trace, fopts).run();

    EXPECT_EQ(fleet.aggregate.completedRequests, 3u);
    expectSameResult(fleet.replicas[0], bare);
}

// --- Roll-up sanity. ---------------------------------------------------

TEST(FleetEngine, AggregateSumsAndBoundsPerReplicaResults)
{
    auto model = testModel();
    auto cluster = testCluster(model);
    auto trace = testTrace(64, 48.0, 15);

    FleetOptions fopts;
    fopts.replicas = 4;
    fopts.policy = RoutePolicy::LeastLoaded;
    fopts.dispatchLatencySeconds = 0.004;
    fopts.engine = testEngineOptions();
    auto fleet = FleetEngine(cluster, model, trace, fopts).run();

    std::uint64_t tokens = 0, completed = 0, events = 0, routed = 0;
    double max_sec = 0.0;
    for (const auto &r : fleet.replicas) {
        tokens += r.generatedTokens;
        completed += r.completedRequests;
        events += r.simEvents;
        max_sec = std::max(max_sec, r.simulatedSeconds);
    }
    for (std::uint64_t n : fleet.routedRequests)
        routed += n;
    EXPECT_EQ(routed, trace.size());
    EXPECT_EQ(fleet.aggregate.generatedTokens, tokens);
    EXPECT_EQ(fleet.aggregate.completedRequests, completed);
    EXPECT_EQ(fleet.aggregate.simEvents, events);
    EXPECT_EQ(fleet.aggregate.simulatedSeconds, max_sec);
    ASSERT_GT(max_sec, 0.0);
    EXPECT_EQ(fleet.aggregate.tokensPerSecond,
              static_cast<double>(tokens) / max_sec);
    // Least-loaded routing spreads work: every replica serves some.
    for (std::uint64_t n : fleet.routedRequests)
        EXPECT_GT(n, 0u);
}

} // namespace
} // namespace pimphony
