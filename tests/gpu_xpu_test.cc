/**
 * @file
 * Focused tests for the roofline compute models: NPU/PNM presets,
 * batch-efficiency behaviour, and the A100 GPU serving baseline's
 * memory management and bottleneck structure.
 */

#include <gtest/gtest.h>

#include "system/gpu_system.hh"
#include "system/xpu.hh"

namespace pimphony {
namespace {

TEST(XpuPresets, TableIvRates)
{
    auto npu = XpuConfig::neupimsNpu();
    EXPECT_DOUBLE_EQ(npu.peakFlops, 256e12);
    auto pnm = XpuConfig::centPnm();
    EXPECT_DOUBLE_EQ(pnm.peakFlops, 3e12);
    EXPECT_GT(npu.memBandwidth, pnm.memBandwidth);
}

TEST(XpuModel, ComputeBoundAtLargeBatch)
{
    XpuModel npu(XpuConfig::neupimsNpu());
    // Huge FLOPs, small weights: compute-bound; time scales ~linearly
    // with FLOPs once efficiency saturates.
    double t1 = npu.gemmSeconds(1e12, 1_MiB, 256);
    double t2 = npu.gemmSeconds(2e12, 1_MiB, 256);
    EXPECT_NEAR(t2 / t1, 2.0, 0.01);
}

TEST(XpuModel, MemoryBoundFloorsLatency)
{
    XpuModel npu(XpuConfig::neupimsNpu());
    // Tiny FLOPs, big weights: the weight stream is the floor.
    double t = npu.gemmSeconds(1e6, 10_GiB, 1);
    EXPECT_GE(t, 10_GiB / npu.config().memBandwidth * 0.999);
}

TEST(XpuModel, BatchEfficiencyMonotone)
{
    XpuModel npu(XpuConfig::neupimsNpu());
    double prev = 1e9;
    for (std::uint32_t b : {1u, 4u, 16u, 64u, 256u}) {
        // Per-row time at fixed weights falls with batch.
        double t = npu.gemmSeconds(2e9 * b, 1_GiB, b) / b;
        EXPECT_LT(t, prev * 1.0001);
        prev = t;
    }
}

TEST(GpuSystem, MemoryMatchedCapacity)
{
    GpuSystemConfig cfg;
    cfg.nGpus = 2;
    EXPECT_EQ(cfg.totalMemory(), 160_GiB);
}

TEST(GpuSystem, PagedAttentionAdmitsMore)
{
    // The PA utilization factor gates admission: requests beyond the
    // effective capacity wait, shrinking average batch.
    auto model = LlmConfig::llm7b(false); // 512 KiB/token
    GpuSystemConfig cfg;
    cfg.nGpus = 2;
    std::vector<Request> many;
    for (RequestId i = 0; i < 40; ++i)
        many.push_back({i, 16000, 8});
    auto r = runGpuServing(cfg, model, many);
    EXPECT_EQ(r.generatedTokens, 40u * 8u);
    // ~8 GiB per request against ~130 GiB effective: batch ~16.
    EXPECT_GT(r.avgBatch, 8.0);
    EXPECT_LT(r.avgBatch, 20.0);
}

TEST(GpuSystem, UnservableRequestsDropped)
{
    auto model = LlmConfig::llm7b(true);
    GpuSystemConfig cfg;
    cfg.nGpus = 2;
    std::vector<Request> reqs = {{0, 2000000, 8}, {1, 10000, 8}};
    auto r = runGpuServing(cfg, model, reqs);
    EXPECT_EQ(r.generatedTokens, 8u); // only the feasible one
}

TEST(GpuSystem, GqaNarrowsTheAttentionCost)
{
    // With g=4 the KV scan shrinks 4x, so GQA raises GPU throughput
    // on identical contexts -- the Fig. 20 mechanism.
    GpuSystemConfig cfg;
    cfg.nGpus = 2;
    std::vector<Request> reqs;
    for (RequestId i = 0; i < 8; ++i)
        reqs.push_back({i, 30000, 8});
    auto mha = runGpuServing(cfg, LlmConfig::llm7b(false), reqs);
    auto gqa = runGpuServing(cfg, LlmConfig::llm7b(true), reqs);
    EXPECT_GT(gqa.tokensPerSecond, mha.tokensPerSecond);
}

} // namespace
} // namespace pimphony
