/**
 * @file
 * PIM HUB tests: EPU latency model, instruction sequencer capacity
 * and expansion, and the DPA on-module dispatcher (VA2PA translation,
 * host-message accounting, hardware-buffer fit).
 */

#include <gtest/gtest.h>

#include "hub/dispatcher.hh"
#include "hub/epu.hh"
#include "hub/sequencer.hh"

namespace pimphony {
namespace {

TEST(Epu, SoftmaxScalesWithElements)
{
    EpuModel epu;
    EXPECT_EQ(epu.softmaxCycles(0), 0u);
    Cycle small = epu.softmaxCycles(256);
    Cycle big = epu.softmaxCycles(65536);
    EXPECT_GT(big, small);
    // 3 passes over 65536/16 lanes + fixed.
    EXPECT_EQ(big, 32u + 3u * 4096u);
}

TEST(Epu, ReduceCosts)
{
    EpuModel epu;
    EXPECT_EQ(epu.reduceCycles(1, 1024), 0u);
    // 15 adds over 128/16 = 8-cycle vectors + fixed 32.
    EXPECT_EQ(epu.reduceCycles(16, 128), 32u + 15u * 8u);
}

TEST(Sequencer, CapacityAndRefills)
{
    SequencerParams p;
    p.bufferBytes = 1024; // 64 instructions
    InstructionSequencer seq(p);
    std::vector<PimInstruction> small(10,
                                      PimInstruction::wrInp(1, 1, 0, 0));
    EXPECT_TRUE(seq.fits(small));
    EXPECT_EQ(seq.refills(small), 0u);
    std::vector<PimInstruction> large(200,
                                      PimInstruction::wrInp(1, 1, 0, 0));
    EXPECT_FALSE(seq.fits(large));
    EXPECT_EQ(seq.refills(large), 3u); // 3200 B over 1024 B windows
}

TEST(Sequencer, ExpansionGroupsPerInstruction)
{
    InstructionSequencer seq;
    std::vector<PimInstruction> prog = {
        PimInstruction::wrInp(1, 4, 0, 0),
        PimInstruction::mac(1, 4, 0, 0, 0, 0),
        PimInstruction::rdOut(1, 1, 0, 0),
    };
    auto stream = seq.expandProgram(prog);
    ASSERT_EQ(stream.size(), 9u);
    EXPECT_EQ(stream[0].group, 0);
    EXPECT_EQ(stream[3].group, 0);
    EXPECT_EQ(stream[4].group, 1);
    EXPECT_EQ(stream[8].group, 2);
    EXPECT_EQ(stream.validate(64, 16), "");
}

TEST(Dispatcher, TokenProgressionIsHostFree)
{
    OnModuleDispatcher d;
    d.registerRequest(0, 1000);
    std::uint64_t host = d.hostMessages();
    for (int i = 0; i < 100; ++i)
        d.advanceToken(0);
    EXPECT_EQ(d.tokens(0), 1100u);
    EXPECT_EQ(d.hostMessages(), host); // no host round-trips
}

TEST(Dispatcher, TranslationFollowsChunkMap)
{
    DispatcherParams p;
    p.rowsPerChunk = 64;
    OnModuleDispatcher d(p);
    d.registerRequest(7, 0);
    d.mapChunk(7, 5);  // VA chunk 0 -> PA chunk 5
    d.mapChunk(7, 2);  // VA chunk 1 -> PA chunk 2 (non-contiguous)
    EXPECT_EQ(d.translate(7, 0), 5 * 64);
    EXPECT_EQ(d.translate(7, 63), 5 * 64 + 63);
    EXPECT_EQ(d.translate(7, 64), 2 * 64);
    EXPECT_EQ(d.translate(7, 100), 2 * 64 + 36);
}

TEST(Dispatcher, PerRequestTranslationsDiffer)
{
    // The paper's example: the same virtual address resolves to
    // different physical locations per request.
    OnModuleDispatcher d;
    d.registerRequest(1, 0);
    d.registerRequest(2, 0);
    d.mapChunk(1, 22 / d.params().rowsPerChunk + 1);
    d.mapChunk(2, 33 / d.params().rowsPerChunk + 2);
    EXPECT_NE(d.translate(1, 0), d.translate(2, 0));
}

TEST(Dispatcher, ExpandResolvesTokensAndRows)
{
    DispatcherParams p;
    p.rowsPerChunk = 4;
    OnModuleDispatcher d(p);
    d.registerRequest(0, 128); // 8 token groups
    d.mapChunk(0, 10);
    d.mapChunk(0, 20);

    DpaProgram prog;
    prog.pushDynLoop(LoopBound::TokensDiv, 0, 16);
    prog.pushInstr(PimInstruction::mac(0xFFFF, 8, 0, 0, 0, 0));
    prog.pushDynModi(ModiField::Row, 1);
    prog.pushEndLoop();

    auto instrs = d.expand(prog, 0);
    ASSERT_EQ(instrs.size(), 8u); // 128 tokens / 16
    EXPECT_EQ(instrs[0].row, 10 * 4);
    EXPECT_EQ(instrs[3].row, 10 * 4 + 3);
    EXPECT_EQ(instrs[4].row, 20 * 4); // crosses into chunk 2
}

TEST(Dispatcher, StateFitsHardwareBuffers)
{
    OnModuleDispatcher d;
    // 64 concurrent requests with 128 chunks each: 64 x (16 + 1024) B
    // must stay within the <200 KB the paper budgets.
    for (RequestId id = 0; id < 64; ++id) {
        d.registerRequest(id, 0);
        for (int c = 0; c < 128; ++c)
            d.mapChunk(id, static_cast<std::uint64_t>(id) * 128 + c);
    }
    EXPECT_TRUE(d.fitsHardware());
    EXPECT_LT(d.stateBytes(), 200u * 1024u);
    EXPECT_EQ(d.activeRequests(), 64u);
}

TEST(Dispatcher, ReleaseFreesState)
{
    OnModuleDispatcher d;
    d.registerRequest(0, 10);
    d.mapChunk(0, 1);
    Bytes before = d.stateBytes();
    EXPECT_GT(before, 0u);
    d.release(0);
    EXPECT_EQ(d.stateBytes(), 0u);
    EXPECT_EQ(d.activeRequests(), 0u);
}

} // namespace
} // namespace pimphony
