/**
 * @file
 * Cross-module integration tests: the compiler's lowered programs
 * flow through the sequencer into the channel schedulers; DPA
 * programs flow through the on-module dispatcher with VA2PA
 * translation into valid, schedulable command streams; the serving
 * engine's phase accounting stays self-consistent.
 */

#include <gtest/gtest.h>

#include <set>

#include "compiler/ir.hh"
#include "compiler/passes.hh"
#include "hub/dispatcher.hh"
#include "hub/sequencer.hh"
#include "pim/scheduler.hh"
#include "system/engine.hh"

namespace pimphony {
namespace {

TEST(CompilerToScheduler, StaticQktProgramSchedules)
{
    auto model = LlmConfig::llm7b(false);
    auto graph = buildDecoderLayer(model);
    AimTimingParams params = AimTimingParams::aimxWithObuf(16);

    for (const auto &match : matchPimKernels(graph)) {
        if (match.kernelClass != PimKernelClass::Qkt)
            continue;
        auto lowered = lowerKernel(match, params, 4096);
        InstructionSequencer seq;
        auto stream = seq.expandProgram(lowered.staticProgram);
        ASSERT_EQ(stream.validate(params.gbufEntries,
                                  params.outputEntries),
                  "");
        auto r = makeScheduler(SchedulerKind::Dcs, params)
                     ->schedule(stream);
        EXPECT_GT(r.makespan, 0u);
        // 4096 tokens -> 256 token groups x 8 accumulating MACs.
        EXPECT_EQ(r.macCount, 256u * 8u);
    }
}

TEST(DpaToScheduler, DispatcherExpansionSchedulesAtRuntimeLength)
{
    auto model = LlmConfig::llm7b(true);
    auto graph = buildDecoderLayer(model);
    AimTimingParams params = AimTimingParams::aimxWithObuf(16);

    MatchedKernel qkt;
    for (const auto &match : matchPimKernels(graph))
        if (match.kernelClass == PimKernelClass::Qkt)
            qkt = match;
    auto lowered = lowerKernel(qkt, params, model.contextWindow);

    // Host-side setup: one request with a growing KV cache spread
    // over non-contiguous chunks.
    DispatcherParams dp;
    dp.rowsPerChunk = 8;
    OnModuleDispatcher dispatcher(dp);
    dispatcher.registerRequest(0, 2048);
    for (std::uint64_t c = 0; c < 32; ++c)
        dispatcher.mapChunk(0, 100 + 3 * c); // deliberately scattered

    auto instrs = dispatcher.expand(lowered.dpaProgram, 0);
    InstructionSequencer seq;
    auto stream = seq.expandProgram(instrs);
    ASSERT_EQ(stream.validate(params.gbufEntries, params.outputEntries),
              "");

    // Every MAC row must land inside a mapped physical chunk.
    std::set<std::uint64_t> chunks;
    for (std::uint64_t c = 0; c < 32; ++c)
        chunks.insert(100 + 3 * c);
    for (const auto &cmd : stream.commands()) {
        if (cmd.kind != CommandKind::Mac)
            continue;
        std::uint64_t chunk =
            static_cast<std::uint64_t>(cmd.row) / dp.rowsPerChunk;
        EXPECT_TRUE(chunks.count(chunk))
            << "row " << cmd.row << " outside mapped chunks";
    }

    // 2048 tokens -> 128 token groups of 8 MACs.
    EXPECT_EQ(stream.countKind(CommandKind::Mac), 128u * 8u);

    // Token growth changes the expansion without recompilation.
    for (int i = 0; i < 512; ++i)
        dispatcher.advanceToken(0);
    auto grown = dispatcher.expand(lowered.dpaProgram, 0);
    EXPECT_GT(grown.size(), instrs.size());

    auto r = makeScheduler(SchedulerKind::Dcs, params)->schedule(stream);
    // Deliberately scattered chunks cost extra row activations, so
    // the bar is below a contiguous layout's utilization.
    EXPECT_GT(r.macUtilization, 0.15);
}

TEST(DpaVsStatic, SameWorkDifferentFootprint)
{
    // The two compilation paths must describe the same computation:
    // equal MAC counts at equal token lengths, wildly different
    // encoded sizes.
    auto model = LlmConfig::llm7b(true);
    auto graph = buildDecoderLayer(model);
    AimTimingParams params = AimTimingParams::aimxWithObuf(16);

    for (const auto &match : matchPimKernels(graph)) {
        if (match.kernelClass == PimKernelClass::Fc)
            continue;
        Tokens t = 65536;
        auto lowered = lowerKernel(match, params, t);
        auto static_cmds = expandedCommandCount(lowered.staticProgram);
        auto dpa_cmds =
            expandedCommandCount(lowered.dpaProgram.expand(t));
        EXPECT_EQ(static_cmds, dpa_cmds)
            << pimKernelClassName(match.kernelClass);
        EXPECT_GT(staticProgramBytes(lowered),
                  20 * dpaProgramBytes(lowered));
    }
}

TEST(Engine, PhaseSecondsAreConsistentWithThroughput)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    TraceGenerator gen(TraceTask::MultifieldQa, 3);
    auto requests = gen.generate(8, 16);
    auto r = runServing(cluster, model, requests, PimphonyOptions::all());

    EXPECT_GT(r.attentionSeconds, 0.0);
    EXPECT_GT(r.fcSeconds, 0.0);
    // Per-phase seconds count every layer of every step; with TP=8
    // they must be at least the wall-clock (phases serialize on the
    // PIM-only system) and bounded by wall-clock x layers.
    EXPECT_GE(r.attentionSeconds + r.fcSeconds,
              r.simulatedSeconds * 0.5);
    EXPECT_GT(r.attentionEnergy.total(), 0.0);
    EXPECT_GT(r.fcEnergy.total(), 0.0);
}

TEST(Engine, PreemptionRecoversWhenMemoryTightens)
{
    // A tiny two-module system where decode growth overruns memory:
    // the engine must preempt rather than deadlock and still finish.
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::centLike(model);
    cluster.nModules = 2;
    cluster.plan = ParallelPlan{2, 1};

    // Contexts chosen so both fit initially but not after growth.
    Bytes usable = cluster.usableKvBytes(model);
    Tokens per_req = usable / model.kvBytesPerToken() / 2;
    std::vector<Request> requests = {
        {0, per_req - 16, 4096},
        {1, per_req - 16, 4096},
    };
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    ServingEngine engine(cluster, model, requests, opts);
    auto r = engine.run();
    EXPECT_EQ(r.completedRequests + r.rejectedRequests, 2u);
    EXPECT_GT(r.generatedTokens, 0u);
}

TEST(Engine, SequenceSplitKeepsTpAboveKvHeadsSane)
{
    // tp > kvHeads: modules split the token range instead of
    // replicating whole heads; throughput must not degrade.
    auto model = LlmConfig::llm7b(true); // kvHeads = 8
    TraceGenerator gen(TraceTask::QMSum, 8);
    auto requests = gen.generate(8, 16);

    auto c8 = ClusterConfig::centLike(model);
    c8.nModules = 8;
    c8.plan = ParallelPlan{8, 1};
    auto c16 = ClusterConfig::centLike(model);
    c16.nModules = 16;
    c16.plan = ParallelPlan{16, 1};

    auto r8 = runServing(c8, model, requests, PimphonyOptions::all());
    auto r16 = runServing(c16, model, requests, PimphonyOptions::all());
    EXPECT_GT(r16.tokensPerSecond, r8.tokensPerSecond);
}

TEST(KernelCounts, QktMacWorkMatchesAnalyticFlops)
{
    // The command stream's MAC count must equal the analytic
    // token-group x dh-tile x GQA product the model layer predicts.
    auto model = LlmConfig::llm72b(true);
    AimTimingParams params = AimTimingParams::aimxWithObuf(16);
    AttentionSpec spec;
    spec.tokens = 4096;
    spec.headDim = model.headDim;
    spec.gqaGroup = model.gqaGroup;
    spec.rowReuse = true;
    auto stream = buildQktStream(spec, params);
    std::uint64_t macs = stream.countKind(CommandKind::Mac);
    // Each MAC covers 16 banks x a 16-element dot product = 512 FLOPs.
    double flops = static_cast<double>(macs) * 512.0;
    double analytic = 2.0 * 4096.0 * model.headDim * model.gqaGroup;
    EXPECT_NEAR(flops, analytic, analytic * 0.01);
}

} // namespace
} // namespace pimphony
