/**
 * @file
 * Unit tests for the PIM ISA layer: command validation, instruction
 * expansion semantics (Table III), and DPA programs (Dyn-Loop /
 * Dyn-Modi with runtime bounds and address translation).
 */

#include <gtest/gtest.h>

#include "isa/dpa.hh"
#include "isa/pim_command.hh"
#include "isa/pim_instruction.hh"

namespace pimphony {
namespace {

TEST(CommandStream, AssignsSequentialIds)
{
    CommandStream s;
    s.append(PimCommand::wrInp(0));
    s.append(PimCommand::mac(0, 0, 0, 0));
    s.append(PimCommand::rdOut(0));
    EXPECT_EQ(s[0].id, 0u);
    EXPECT_EQ(s[1].id, 1u);
    EXPECT_EQ(s[2].id, 2u);
    EXPECT_EQ(s.countKind(CommandKind::WrInp), 1u);
    EXPECT_EQ(s.countKind(CommandKind::Mac), 1u);
    EXPECT_EQ(s.countKind(CommandKind::RdOut), 1u);
}

TEST(CommandStream, ValidAccepted)
{
    CommandStream s;
    s.append(PimCommand::wrInp(0));
    s.append(PimCommand::wrInp(1));
    s.append(PimCommand::mac(0, 0, 0, 0));
    s.append(PimCommand::mac(1, 0, 0, 1));
    s.append(PimCommand::rdOut(0));
    EXPECT_EQ(s.validate(64, 16), "");
}

TEST(CommandStream, MacBeforeWriteRejected)
{
    CommandStream s;
    s.append(PimCommand::mac(0, 0, 0, 0));
    EXPECT_NE(s.validate(64, 16), "");
}

TEST(CommandStream, RdOutFromIdleEntryRejected)
{
    CommandStream s;
    s.append(PimCommand::rdOut(0));
    EXPECT_NE(s.validate(64, 16), "");
}

TEST(CommandStream, DoubleDrainRejected)
{
    CommandStream s;
    s.append(PimCommand::wrInp(0));
    s.append(PimCommand::mac(0, 0, 0, 0));
    s.append(PimCommand::rdOut(0));
    s.append(PimCommand::rdOut(0));
    EXPECT_NE(s.validate(64, 16), "");
}

TEST(CommandStream, OutOfRangeIndicesRejected)
{
    CommandStream a;
    a.append(PimCommand::wrInp(64));
    EXPECT_NE(a.validate(64, 16), "");

    CommandStream b;
    b.append(PimCommand::wrInp(0));
    b.append(PimCommand::mac(0, 16, 0, 0));
    EXPECT_NE(b.validate(64, 16), "");
}

TEST(Instruction, WrInpExpansionWalksGbuf)
{
    auto cmds = expandInstruction(PimInstruction::wrInp(0x1, 4, 0, 8));
    ASSERT_EQ(cmds.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(cmds[i].kind, CommandKind::WrInp);
        EXPECT_EQ(cmds[i].gbufIdx, 8 + i);
    }
}

TEST(Instruction, MacExpansionWalksGbufAndColumns)
{
    auto cmds =
        expandInstruction(PimInstruction::mac(0x1, 3, 0, 0, 5, 0, 32));
    ASSERT_EQ(cmds.size(), 3u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(cmds[i].gbufIdx, i);
        EXPECT_EQ(cmds[i].col, i);
        EXPECT_EQ(cmds[i].row, 5);
        EXPECT_EQ(cmds[i].outIdx, 0);
    }
}

TEST(Instruction, MacExpansionWrapsRows)
{
    auto cmds =
        expandInstruction(PimInstruction::mac(0x1, 5, 0, 0, 7, 30, 32));
    ASSERT_EQ(cmds.size(), 5u);
    EXPECT_EQ(cmds[0].row, 7);
    EXPECT_EQ(cmds[0].col, 30);
    EXPECT_EQ(cmds[1].col, 31);
    EXPECT_EQ(cmds[2].row, 8);
    EXPECT_EQ(cmds[2].col, 0);
    EXPECT_EQ(cmds[4].col, 2);
}

TEST(Instruction, ProgramByteAccounting)
{
    std::vector<PimInstruction> prog = {
        PimInstruction::wrInp(0x1, 8, 0, 0),
        PimInstruction::mac(0x1, 8, 0, 0, 0, 0),
        PimInstruction::rdOut(0x1, 1, 0, 0),
    };
    EXPECT_EQ(programBytes(prog), 3 * kInstructionBytes);
    EXPECT_EQ(expandedCommandCount(prog), 17u);
}

TEST(Dpa, ConstantLoopExpansion)
{
    DpaProgram p;
    p.pushDynLoop(LoopBound::Constant, 3);
    p.pushInstr(PimInstruction::mac(0x1, 2, 0, 0, 0, 0));
    p.pushDynModi(ModiField::Row, 4);
    p.pushEndLoop();

    auto instrs = p.expand(/*tokens=*/0);
    ASSERT_EQ(instrs.size(), 3u);
    EXPECT_EQ(instrs[0].row, 0);
    EXPECT_EQ(instrs[1].row, 4);
    EXPECT_EQ(instrs[2].row, 8);
}

TEST(Dpa, TokenBoundLoopScalesWithContext)
{
    DpaProgram p;
    p.pushDynLoop(LoopBound::TokensDiv, 0, /*divisor=*/256);
    p.pushInstr(PimInstruction::mac(0x1, 8, 0, 0, 0, 0));
    p.pushDynModi(ModiField::Row, 1);
    p.pushEndLoop();

    EXPECT_EQ(p.expand(256).size(), 1u);
    EXPECT_EQ(p.expand(1024).size(), 4u);
    EXPECT_EQ(p.expand(1025).size(), 5u); // ceil
    // Encoded size is context-independent.
    EXPECT_EQ(p.encodedBytes(), 4 * kInstructionBytes);
}

TEST(Dpa, ZeroTripLoopSkipsBody)
{
    DpaProgram p;
    p.pushDynLoop(LoopBound::Constant, 0);
    p.pushInstr(PimInstruction::mac(0x1, 1, 0, 0, 0, 0));
    p.pushEndLoop();
    p.pushInstr(PimInstruction::rdOut(0x1, 1, 0, 0));

    auto instrs = p.expand(0);
    ASSERT_EQ(instrs.size(), 1u);
    EXPECT_EQ(instrs[0].kind, CommandKind::RdOut);
}

TEST(Dpa, NestedLoops)
{
    DpaProgram p;
    p.pushDynLoop(LoopBound::Constant, 2); // e.g. layer loop
    p.pushDynLoop(LoopBound::Constant, 3); // e.g. head loop
    p.pushInstr(PimInstruction::mac(0x1, 1, 0, 0, 0, 0));
    p.pushDynModi(ModiField::Col, 1);
    p.pushEndLoop();
    p.pushDynModi(ModiField::Row, 10);
    p.pushEndLoop();

    auto instrs = p.expand(0);
    ASSERT_EQ(instrs.size(), 6u);
    EXPECT_EQ(instrs[0].row, 0);
    EXPECT_EQ(instrs[0].col, 0);
    EXPECT_EQ(instrs[2].col, 2);
    EXPECT_EQ(instrs[3].row, 10);
    EXPECT_EQ(instrs[3].col, 0);
    EXPECT_EQ(instrs[5].col, 2);
}

TEST(Dpa, TranslationMapsVirtualRows)
{
    DpaProgram p;
    p.pushDynLoop(LoopBound::Constant, 2);
    p.pushInstr(PimInstruction::mac(0x1, 1, 0, 0, 0, 0));
    p.pushDynModi(ModiField::Row, 1);
    p.pushEndLoop();

    // VA2PA: virtual row v -> physical row 100 + 2v (as the paper's
    // dispatcher resolves different requests to different chunks).
    auto instrs = p.expand(0, [](RowIndex v) { return 100 + 2 * v; });
    ASSERT_EQ(instrs.size(), 2u);
    EXPECT_EQ(instrs[0].row, 100);
    EXPECT_EQ(instrs[1].row, 102);
}

TEST(Dpa, StaticVsDpaFootprint)
{
    // Fig. 10(c): a static program for T tokens needs O(T)
    // instructions; the DPA encoding stays constant.
    auto static_program = [](Tokens t) {
        std::vector<PimInstruction> prog;
        for (Tokens tg = 0; tg < t / 16; ++tg)
            prog.push_back(PimInstruction::mac(
                0xFFFF, 8, 0, 0, static_cast<RowIndex>(tg), 0));
        return prog;
    };

    DpaProgram dpa;
    dpa.pushDynLoop(LoopBound::TokensDiv, 0, 16);
    dpa.pushInstr(PimInstruction::mac(0xFFFF, 8, 0, 0, 0, 0));
    dpa.pushDynModi(ModiField::Row, 1);
    dpa.pushEndLoop();

    Bytes s32k = programBytes(static_program(32768));
    Bytes s128k = programBytes(static_program(131072));
    EXPECT_EQ(s128k, 4 * s32k);
    EXPECT_EQ(dpa.encodedBytes(), 4 * kInstructionBytes);
    // Same command count when expanded.
    EXPECT_EQ(expandedCommandCount(dpa.expand(32768)),
              expandedCommandCount(static_program(32768)));
}

} // namespace
} // namespace pimphony
