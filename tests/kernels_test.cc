/**
 * @file
 * Kernel generator tests: structural validity of GEMV / QK^T / SV
 * streams across geometry sweeps, command-count accounting, reuse
 * behaviour, mapping effects on row activations, and the kernel
 * cache.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "kernels/attention.hh"
#include "kernels/gemv.hh"
#include "kernels/kernel_sim.hh"

namespace pimphony {
namespace {

AimTimingParams
baselineParams()
{
    return AimTimingParams::aimx(); // outputEntries = 1
}

AimTimingParams
pimphonyParams()
{
    return AimTimingParams::aimxWithObuf(16);
}

TEST(GemvSpec, FromDimsRoundsUp)
{
    auto s = GemvSpec::fromDims(100, 100);
    EXPECT_EQ(s.doutGroups, 7u);
    EXPECT_EQ(s.dinTiles, 7u);
}

TEST(GemvStream, ResidentCaseCounts)
{
    // din 1024 (64 tiles, exactly resident), dout 256 (16 groups).
    auto params = pimphonyParams();
    auto spec = GemvSpec::fromDims(256, 1024);
    auto s = buildGemvStream(spec, params);
    EXPECT_EQ(s.validate(params.gbufEntries, params.outputEntries), "");
    EXPECT_EQ(s.countKind(CommandKind::WrInp), 64u);       // once
    EXPECT_EQ(s.countKind(CommandKind::Mac), 64u * 16u);   // full
    EXPECT_EQ(s.countKind(CommandKind::RdOut), 16u);       // per group
    EXPECT_EQ(gemvPartialReductions(spec, params), 0u);
}

TEST(GemvStream, StreamingAccumulateInPlace)
{
    // din 4096 (256 tiles > GBuf), dout 128 (8 groups <= 16 OBuf):
    // inputs streamed once, outputs accumulate in place.
    auto params = pimphonyParams();
    auto spec = GemvSpec::fromDims(128, 4096);
    auto s = buildGemvStream(spec, params);
    EXPECT_EQ(s.validate(params.gbufEntries, params.outputEntries), "");
    EXPECT_EQ(s.countKind(CommandKind::WrInp), 256u);
    EXPECT_EQ(s.countKind(CommandKind::Mac), 256u * 8u);
    EXPECT_EQ(s.countKind(CommandKind::RdOut), 8u);
    EXPECT_EQ(gemvPartialReductions(spec, params), 0u);
}

TEST(GemvStream, PartialDrainWhenOutputsExceedObuf)
{
    // din 4096, dout 4096 (256 groups > OBuf): partial drains.
    auto params = pimphonyParams();
    auto spec = GemvSpec::fromDims(4096, 4096);
    auto s = buildGemvStream(spec, params);
    EXPECT_EQ(s.validate(params.gbufEntries, params.outputEntries), "");
    EXPECT_EQ(s.countKind(CommandKind::WrInp), 256u); // streamed once
    EXPECT_EQ(s.countKind(CommandKind::Mac), 256u * 256u);
    // 8 blocks x 256 groups partial drains.
    EXPECT_EQ(s.countKind(CommandKind::RdOut), 8u * 256u);
    EXPECT_EQ(gemvPartialReductions(spec, params), 7u * 256u);
}

class GemvGeometrySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>>
{
};

TEST_P(GemvGeometrySweep, StreamsAlwaysValid)
{
    auto [dout, din, obuf, pingpong] = GetParam();
    AimTimingParams params = AimTimingParams::aimxWithObuf(
        static_cast<unsigned>(obuf));
    auto spec = GemvSpec::fromDims(static_cast<std::uint64_t>(dout),
                                   static_cast<std::uint64_t>(din));
    auto s = buildGemvStream(spec, params, pingpong);
    ASSERT_EQ(s.validate(params.gbufEntries, params.outputEntries), "");
    // Exact MAC count: every (group, tile) pair exactly once.
    EXPECT_EQ(s.countKind(CommandKind::Mac),
              static_cast<std::uint64_t>(spec.doutGroups) * spec.dinTiles);
    if (pingpong) {
        for (const auto &c : s.commands())
            EXPECT_TRUE(c.region == 0 || c.region == 1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemvGeometrySweep,
    ::testing::Combine(::testing::Values(16, 128, 1024, 4096),
                       ::testing::Values(128, 1024, 4096),
                       ::testing::Values(1, 4, 16),
                       ::testing::Bool()));

TEST(QktStream, MacCountMatchesShape)
{
    auto params = pimphonyParams();
    AttentionSpec spec;
    spec.tokens = 4096;
    spec.headDim = 128;
    spec.gqaGroup = 4;
    for (bool row_reuse : {true, false}) {
        spec.rowReuse = row_reuse;
        auto s = buildQktStream(spec, params);
        ASSERT_EQ(s.validate(params.gbufEntries, params.outputEntries),
                  "");
        // (tokens/16) token groups x (dh/16) tiles x g queries.
        EXPECT_EQ(s.countKind(CommandKind::Mac), 256u * 8u * 4u);
        // One score group per (query, token group).
        EXPECT_EQ(s.countKind(CommandKind::RdOut), 256u * 4u);
    }
}

TEST(QktStream, ResidentQueriesWriteOnce)
{
    auto params = pimphonyParams();
    AttentionSpec spec;
    spec.tokens = 4096;
    spec.headDim = 128;
    spec.gqaGroup = 4; // 32 tiles <= half GBuf: resident
    spec.rowReuse = true;
    auto s = buildQktStream(spec, params);
    EXPECT_EQ(s.countKind(CommandKind::WrInp), 4u * 8u);
}

TEST(QktStream, LargeGqaSwapsQueriesPerRowChunk)
{
    auto params = pimphonyParams();
    AttentionSpec spec;
    spec.tokens = 4096;
    spec.headDim = 128;
    spec.gqaGroup = 8; // 64 tiles > half GBuf: swap per chunk
    spec.rowReuse = true;
    auto s = buildQktStream(spec, params);
    // Row chunks = (256 tg x 8 tiles) / 64 macs-per-row = 32; per
    // chunk all 8 queries re-stream 8 tiles each.
    EXPECT_EQ(s.countKind(CommandKind::WrInp), 32u * 8u * 8u);
    EXPECT_EQ(s.validate(params.gbufEntries, params.outputEntries), "");
}

TEST(QktStream, InputReuseReactivatesRowsPerQuery)
{
    auto params = pimphonyParams();
    AttentionSpec spec;
    spec.tokens = 8192;
    spec.headDim = 128;
    spec.gqaGroup = 8;

    spec.rowReuse = true;
    auto rr = simulateKernel(KernelRequest::makeQkt(spec,
                                                    SchedulerKind::Dcs),
                             params);
    spec.rowReuse = false;
    auto ir = simulateKernel(KernelRequest::makeQkt(spec,
                                                    SchedulerKind::Dcs),
                             params);
    // Input-reuse replays every row per query: ~g times the
    // activates of row-reuse.
    EXPECT_GE(ir.activates, rr.activates * 7);
    // Row-reuse instead pays WR-INP traffic.
    EXPECT_GT(rr.wrInpCount, ir.wrInpCount);
}

TEST(SvStream, CountsAndValidity)
{
    auto params = pimphonyParams();
    AttentionSpec spec;
    spec.tokens = 4096;
    spec.headDim = 128;
    spec.gqaGroup = 2;
    for (bool row_reuse : {true, false}) {
        spec.rowReuse = row_reuse;
        auto s = buildSvStream(spec, params);
        ASSERT_EQ(s.validate(params.gbufEntries, params.outputEntries),
                  "");
        EXPECT_EQ(s.countKind(CommandKind::Mac), 256u * 8u * 2u);
        EXPECT_GT(s.countKind(CommandKind::WrInp), 0u);
    }
}

TEST(SvStream, BaselineSingleOutRegDrainsEveryRun)
{
    auto params = baselineParams(); // outputEntries = 1
    AttentionSpec spec;
    spec.tokens = 1024;
    spec.headDim = 128;
    spec.gqaGroup = 1;
    spec.rowReuse = true;
    auto s = buildSvStream(spec, params);
    EXPECT_EQ(s.validate(params.gbufEntries, params.outputEntries), "");
    // Every (chunk, j) partial drains: chunks = 64 tg / 8 = 8, j = 8.
    EXPECT_EQ(s.countKind(CommandKind::RdOut), 8u * 8u);
}

class AttentionSweep
    : public ::testing::TestWithParam<
          std::tuple<int, int, bool, bool, int>>
{
};

TEST_P(AttentionSweep, AllStreamsValid)
{
    auto [tokens, gqa, row_reuse, pingpong, obuf] = GetParam();
    AimTimingParams params =
        AimTimingParams::aimxWithObuf(static_cast<unsigned>(obuf));
    AttentionSpec spec;
    spec.tokens = static_cast<Tokens>(tokens);
    spec.headDim = 128;
    spec.gqaGroup = static_cast<std::uint32_t>(gqa);
    spec.rowReuse = row_reuse;

    auto qkt = buildQktStream(spec, params, pingpong);
    ASSERT_EQ(qkt.validate(params.gbufEntries, params.outputEntries),
              "")
        << "qkt tokens=" << tokens << " g=" << gqa;
    auto sv = buildSvStream(spec, params, pingpong);
    ASSERT_EQ(sv.validate(params.gbufEntries, params.outputEntries), "")
        << "sv tokens=" << tokens << " g=" << gqa;

    std::uint64_t tg = ceilDiv<std::uint64_t>(
        static_cast<std::uint64_t>(tokens), 16);
    EXPECT_EQ(qkt.countKind(CommandKind::Mac),
              tg * 8u * static_cast<std::uint64_t>(gqa));
    EXPECT_EQ(sv.countKind(CommandKind::Mac),
              tg * 8u * static_cast<std::uint64_t>(gqa));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AttentionSweep,
    ::testing::Combine(::testing::Values(16, 100, 1024, 16384),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Bool(), ::testing::Bool(),
                       ::testing::Values(1, 16)));

TEST(KernelSim, DcsFasterThanStaticOnAttention)
{
    auto params = pimphonyParams();
    AttentionSpec spec;
    spec.tokens = 16384;
    spec.headDim = 128;
    spec.gqaGroup = 4;
    spec.rowReuse = true;
    auto st = simulateKernel(
        KernelRequest::makeQkt(spec, SchedulerKind::Static), params);
    auto dc = simulateKernel(
        KernelRequest::makeQkt(spec, SchedulerKind::Dcs), params);
    EXPECT_LT(dc.makespan, st.makespan);
    EXPECT_GT(dc.macUtilization, st.macUtilization);
}

TEST(KernelSim, LatencyMonotoneInTokens)
{
    auto params = pimphonyParams();
    AttentionSpec spec;
    spec.headDim = 128;
    spec.gqaGroup = 2;
    spec.rowReuse = true;
    Cycle prev = 0;
    for (Tokens t : {1024u, 2048u, 4096u, 8192u, 16384u}) {
        spec.tokens = t;
        auto r = simulateKernel(
            KernelRequest::makeSv(spec, SchedulerKind::Dcs), params);
        EXPECT_GT(r.makespan, prev) << "tokens " << t;
        prev = r.makespan;
    }
}

TEST(BucketTokens, MonotoneAndBounded)
{
    Tokens prev = 0;
    for (Tokens t = 1; t < 2000000; t = t * 3 / 2 + 7) {
        Tokens b = bucketTokens(t);
        EXPECT_GE(b, t);
        EXPECT_GE(b, prev); // monotone in t
        EXPECT_LE(static_cast<double>(b),
                  static_cast<double>(t) * 1.07 + 64.0);
        prev = b;
    }
}

TEST(KernelCache, HitsOnRepeatedRequests)
{
    auto params = pimphonyParams();
    KernelCache cache(params);
    AttentionSpec spec;
    spec.tokens = 2048;
    spec.headDim = 128;
    spec.gqaGroup = 2;
    auto req = KernelRequest::makeQkt(spec, SchedulerKind::Dcs);
    const auto &a = cache.get(req);
    const auto &b = cache.get(req);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_GT(a.makespan, 0u);
}

TEST(KernelCache, DistinguishesSchedulers)
{
    auto params = pimphonyParams();
    KernelCache cache(params);
    AttentionSpec spec;
    spec.tokens = 2048;
    spec.headDim = 128;
    auto st = cache.get(KernelRequest::makeQkt(spec,
                                               SchedulerKind::Static));
    auto dc = cache.get(KernelRequest::makeQkt(spec, SchedulerKind::Dcs));
    EXPECT_NE(st.makespan, dc.makespan);
    EXPECT_EQ(cache.entries(), 2u);
}

} // namespace
} // namespace pimphony
