/**
 * @file
 * Regression tests for the thread-safe log sink (common/logging):
 * concurrent writers from sweep-runner-style worker threads must
 * emit whole lines (no interleaving, no partial writes), threshold
 * changes are atomic with respect to concurrent logging, and
 * oversized messages survive the stack-buffer fallback intact.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace pimphony {
namespace {

/** Redirect stderr to a temp file for the object's lifetime. */
class CapturedStderr
{
  public:
    CapturedStderr()
    {
        path_ = ::testing::TempDir() + "logging_test_capture.txt";
        std::fflush(stderr);
        saved_ = ::dup(2);
        int fd = ::open(path_.c_str(), O_CREAT | O_TRUNC | O_WRONLY,
                        0600);
        ::dup2(fd, 2);
        ::close(fd);
    }

    ~CapturedStderr()
    {
        restore();
        std::remove(path_.c_str());
    }

    std::vector<std::string>
    lines()
    {
        restore();
        std::vector<std::string> out;
        std::ifstream is(path_);
        std::string line;
        while (std::getline(is, line))
            out.push_back(line);
        return out;
    }

  private:
    void
    restore()
    {
        if (saved_ < 0)
            return;
        std::fflush(stderr);
        ::dup2(saved_, 2);
        ::close(saved_);
        saved_ = -1;
    }

    std::string path_;
    int saved_ = -1;
};

TEST(Logging, ConcurrentWritersNeverInterleaveLines)
{
    constexpr unsigned n_threads = 8;
    constexpr unsigned n_messages = 200;
    LogLevel prev = logThreshold();
    setLogThreshold(LogLevel::Warn);

    const std::string filler(40, 'x');
    CapturedStderr capture;
    std::vector<std::thread> writers;
    for (unsigned t = 0; t < n_threads; ++t)
        writers.emplace_back([t, &filler]() {
            for (unsigned m = 0; m < n_messages; ++m)
                warn("writer %u message %u %s end", t, m,
                     filler.c_str());
        });
    for (auto &w : writers)
        w.join();

    auto lines = capture.lines();
    setLogThreshold(prev);

    ASSERT_EQ(lines.size(),
              static_cast<std::size_t>(n_threads) * n_messages);
    // Every line must be one complete message — parse the writer and
    // sequence number, rebuild the expected line, and require an
    // exact match; any interleaving or truncation breaks it.
    std::map<std::pair<unsigned, unsigned>, unsigned> seen;
    for (const auto &line : lines) {
        unsigned t = 0, m = 0;
        int matched = std::sscanf(line.c_str(),
                                  "[warn] writer %u message %u", &t,
                                  &m);
        ASSERT_EQ(matched, 2) << "mangled line: " << line;
        std::string expected = "[warn] writer " + std::to_string(t) +
                               " message " + std::to_string(m) + " " +
                               filler + " end";
        EXPECT_EQ(line, expected);
        ++seen[{t, m}];
    }
    EXPECT_EQ(seen.size(),
              static_cast<std::size_t>(n_threads) * n_messages);
    for (const auto &kv : seen)
        EXPECT_EQ(kv.second, 1u);
}

TEST(Logging, ThresholdSuppressesAndIsRestored)
{
    LogLevel prev = logThreshold();
    setLogThreshold(LogLevel::Warn);
    {
        CapturedStderr capture;
        inform("should be suppressed");
        warn("should appear");
        auto lines = capture.lines();
        ASSERT_EQ(lines.size(), 1u);
        EXPECT_EQ(lines[0], "[warn] should appear");
    }
    setLogThreshold(prev);
    EXPECT_EQ(logThreshold(), prev);
}

TEST(Logging, OversizedMessagesSurviveHeapFallback)
{
    LogLevel prev = logThreshold();
    setLogThreshold(LogLevel::Warn);
    // Larger than the sink's 512-byte stack buffer.
    std::string big(2000, 'a');
    {
        CapturedStderr capture;
        warn("%s tail", big.c_str());
        auto lines = capture.lines();
        ASSERT_EQ(lines.size(), 1u);
        EXPECT_EQ(lines[0], "[warn] " + big + " tail");
    }
    setLogThreshold(prev);
}

TEST(Logging, ConcurrentThresholdChangesAreSafe)
{
    LogLevel prev = logThreshold();
    setLogThreshold(LogLevel::Warn);
    CapturedStderr capture;
    std::thread flipper([]() {
        for (int i = 0; i < 500; ++i)
            setLogThreshold(i % 2 ? LogLevel::Warn
                                  : LogLevel::Fatal);
    });
    std::thread writer([]() {
        for (int i = 0; i < 500; ++i)
            warn("tick %d", i);
    });
    flipper.join();
    writer.join();
    setLogThreshold(prev);
    // No assertion beyond "no crash / no torn line": every emitted
    // line must still be complete.
    for (const auto &line : capture.lines())
        EXPECT_EQ(line.rfind("[warn] tick ", 0), 0u) << line;
}

} // namespace
} // namespace pimphony
