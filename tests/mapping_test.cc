/**
 * @file
 * Mapping tests: HFP assignment balance, TCP slicing, full-activation
 * thresholds, micro-batch planning, and all-reduce cost.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "mapping/parallel.hh"
#include "mapping/partition.hh"

namespace pimphony {
namespace {

std::vector<AttentionJob>
makeJobs(std::initializer_list<Tokens> tokens)
{
    std::vector<AttentionJob> jobs;
    RequestId id = 0;
    for (Tokens t : tokens)
        jobs.push_back({id++, 0, t});
    return jobs;
}

TEST(Hfp, FewerJobsThanChannelsLeavesIdle)
{
    auto assignment = assignHfp(makeJobs({1000, 2000}), 8);
    int active = 0;
    for (const auto &ch : assignment)
        if (!ch.empty())
            ++active;
    EXPECT_EQ(active, 2);
}

TEST(Hfp, ImbalancedJobsBoundTheMakespan)
{
    // One long request dominates; LPT cannot fix inherent imbalance.
    auto assignment = assignHfp(makeJobs({30000, 3000, 3000, 3000}), 4);
    Tokens max_load = 0, min_load = ~Tokens{0};
    for (const auto &ch : assignment) {
        Tokens load = 0;
        for (const auto &j : ch)
            load += j.tokens;
        max_load = std::max(max_load, load);
        min_load = std::min(min_load, load);
    }
    EXPECT_EQ(max_load, 30000u);
    EXPECT_EQ(min_load, 3000u);
}

TEST(Hfp, LptBalancesManyEqualJobs)
{
    std::vector<AttentionJob> jobs;
    for (int i = 0; i < 64; ++i)
        jobs.push_back({static_cast<RequestId>(i), 0, 4096});
    auto assignment = assignHfp(jobs, 16);
    for (const auto &ch : assignment)
        EXPECT_EQ(ch.size(), 4u);
}

TEST(Hfp, AllJobsAssignedExactlyOnce)
{
    auto jobs = makeJobs({5, 10, 15, 20, 25, 30, 35});
    auto assignment = assignHfp(jobs, 3);
    std::size_t total = 0;
    for (const auto &ch : assignment)
        total += ch.size();
    EXPECT_EQ(total, jobs.size());
}

TEST(Tcp, SliceIsCeilDivision)
{
    AttentionJob job{0, 0, 16384};
    EXPECT_EQ(tcpSliceTokens(job, 16), 1024u);
    job.tokens = 16385;
    EXPECT_EQ(tcpSliceTokens(job, 16), 1025u);
    job.tokens = 5;
    EXPECT_EQ(tcpSliceTokens(job, 16), 1u);
}

TEST(Tcp, FullActivationThresholdMatchesPaper)
{
    // "full channel activation once the token length exceeds 256 for
    //  QKT" on a 16-channel module.
    EXPECT_EQ(tcpFullActivationTokens(16), 256u);
}

TEST(MicroBatching, FullPipelineWhenBatchLarge)
{
    auto mb = planMicroBatches(32, 4);
    EXPECT_EQ(mb.count, 4u);
    EXPECT_EQ(mb.microBatchSize, 8u);
    EXPECT_EQ(mb.stageBeats, 4u);
    EXPECT_DOUBLE_EQ(mb.pipelineFill, 1.0);
}

TEST(MicroBatching, BubblesWhenBatchSmall)
{
    auto mb = planMicroBatches(2, 8);
    EXPECT_EQ(mb.count, 2u);
    EXPECT_EQ(mb.microBatchSize, 1u);
    EXPECT_EQ(mb.stageBeats, 8u);
    EXPECT_DOUBLE_EQ(mb.pipelineFill, 0.25);
}

TEST(MicroBatching, NoPipelineDegenerates)
{
    auto mb = planMicroBatches(10, 1);
    EXPECT_EQ(mb.count, 1u);
    EXPECT_EQ(mb.microBatchSize, 10u);
    EXPECT_EQ(mb.stageBeats, 1u);
}

TEST(MicroBatching, EmptyBatch)
{
    auto mb = planMicroBatches(0, 4);
    EXPECT_DOUBLE_EQ(mb.pipelineFill, 0.0);
}

TEST(AllReduce, ZeroForSingleModule)
{
    EXPECT_DOUBLE_EQ(allReduceSeconds(1_MiB, 1, 64e9, 1e-6), 0.0);
}

TEST(AllReduce, GrowsWithGroupAndBytes)
{
    double t2 = allReduceSeconds(1_MiB, 2, 64e9, 1e-6);
    double t8 = allReduceSeconds(1_MiB, 8, 64e9, 1e-6);
    EXPECT_GT(t8, t2);
    double big = allReduceSeconds(64_MiB, 8, 64e9, 1e-6);
    EXPECT_GT(big, t8);
}

TEST(Names, RoundTrip)
{
    EXPECT_EQ(partitioningName(Partitioning::Hfp), "hfp");
    EXPECT_EQ(partitioningName(Partitioning::Tcp), "tcp");
    EXPECT_EQ((ParallelPlan{4, 2}.toString()), "(TP=4,PP=2)");
    EXPECT_EQ((ParallelPlan{4, 2}.modules()), 8u);
}

} // namespace
} // namespace pimphony
