/**
 * @file
 * Model-config tests: Table I presets, KV-cache arithmetic, and the
 * Fig. 2 motivation quantities (compute intensity, memory footprint).
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "model/llm.hh"

namespace pimphony {
namespace {

TEST(LlmConfig, TableIPresets)
{
    auto m7 = LlmConfig::llm7b(false);
    EXPECT_EQ(m7.nLayers, 32u);
    EXPECT_EQ(m7.nHeads, 32u);
    EXPECT_EQ(m7.headDim, 128u);
    EXPECT_EQ(m7.gqaGroup, 1u);
    EXPECT_EQ(m7.kvHeads(), 32u);
    EXPECT_EQ(m7.contextWindow, 32768u);

    auto m7g = LlmConfig::llm7b(true);
    EXPECT_EQ(m7g.gqaGroup, 4u);
    EXPECT_EQ(m7g.kvHeads(), 8u);
    EXPECT_EQ(m7g.contextWindow, 131072u);

    auto m72 = LlmConfig::llm72b(true);
    EXPECT_EQ(m72.nLayers, 80u);
    EXPECT_EQ(m72.nHeads, 64u);
    EXPECT_EQ(m72.gqaGroup, 8u);
    EXPECT_EQ(m72.kvHeads(), 8u);
}

TEST(LlmConfig, ParamCountsLandNearNominalSizes)
{
    // "7B" and "72B" within 25%.
    auto m7 = LlmConfig::llm7b(false);
    EXPECT_NEAR(static_cast<double>(m7.paramCount()), 7e9, 7e9 * 0.25);
    auto m72 = LlmConfig::llm72b(false);
    EXPECT_NEAR(static_cast<double>(m72.paramCount()), 72e9, 72e9 * 0.25);
}

TEST(LlmConfig, KvBytesPerToken)
{
    auto m7 = LlmConfig::llm7b(false);
    // 2 (K,V) x 32 layers x 32 heads x 128 dims x 2 B = 512 KiB.
    EXPECT_EQ(m7.kvBytesPerToken(), 512_KiB);
    auto m7g = LlmConfig::llm7b(true);
    EXPECT_EQ(m7g.kvBytesPerToken(), 128_KiB); // 4x smaller with g=4
    EXPECT_EQ(m7g.kvBytes(1024), 128_MiB);
}

TEST(LlmConfig, GqaShrinksKvProjWeightsOnly)
{
    auto mha = LlmConfig::llm7b(false);
    auto gqa = LlmConfig::llm7b(true);
    EXPECT_LT(gqa.paramCount(), mha.paramCount());
    // FFN unchanged; reduction is bounded by the K/V projections
    // (2 d (d - kv_dim) per layer, ~12% for 7B at g=4).
    EXPECT_GT(static_cast<double>(gqa.paramCount()),
              0.85 * static_cast<double>(mha.paramCount()));
}

TEST(LlmConfig, ComputeIntensityDropsWithContext)
{
    // Fig. 2(a): FLOPs/byte decreases monotonically with context.
    auto m = LlmConfig::llm7b(true);
    double prev = 1e18;
    for (Tokens t : {1024u, 8192u, 65536u, 524288u, 1048576u}) {
        double ci = m.computeIntensity(t, 16);
        EXPECT_LT(ci, prev) << "context " << t;
        prev = ci;
    }
    // The asymptote is pinned near the GQA group size (g = 4):
    // memory-bound GEMV territory, far below GPU rooflines.
    EXPECT_LT(m.computeIntensity(1048576, 16), 6.0);
    EXPECT_GT(m.computeIntensity(1024, 16), 10.0);
}

TEST(LlmConfig, MemoryFootprintGrowsWithContextAndBatch)
{
    // Fig. 2(b): footprint crosses the A100-80GB line.
    auto m = LlmConfig::llm7b(true);
    Bytes a100 = 80_GiB;
    EXPECT_LT(m.memoryFootprint(4096, 1), a100);
    EXPECT_GT(m.memoryFootprint(1048576, 4), a100);
    EXPECT_GT(m.memoryFootprint(65536, 2), m.memoryFootprint(65536, 1));
    EXPECT_GT(m.memoryFootprint(131072, 2), m.memoryFootprint(65536, 2));
}

TEST(LlmConfig, WeightBytesIsTwiceParams)
{
    auto m = LlmConfig::llm72b(true);
    EXPECT_EQ(m.weightBytes(), m.paramCount() * 2);
}

} // namespace
} // namespace pimphony
