/**
 * @file
 * Paper-anchor integration tests: every headline *shape* claim of the
 * paper's evaluation, asserted end-to-end with generous bands. These
 * are the reproduction contract -- if one fails after a change, a
 * figure has drifted out of the paper's qualitative regime.
 */

#include <gtest/gtest.h>

#include "compiler/ir.hh"
#include "compiler/passes.hh"
#include "core/orchestrator.hh"
#include "pim/dcs_scheduler.hh"
#include "kernels/kernel_sim.hh"
#include "system/gpu_system.hh"

namespace pimphony {
namespace {

// --- Fig. 7: the worked example. -----------------------------------

TEST(PaperAnchors, Fig7StaticIs34Cycles)
{
    CommandStream s;
    auto push = [&s](PimCommand c, std::int32_t g) {
        c.group = g;
        s.append(c);
    };
    int g = 0;
    for (int i = 0; i < 3; ++i)
        push(PimCommand::wrInp(i), g);
    for (int out = 0; out < 2; ++out) {
        for (int i = 0; i < 3; ++i)
            push(PimCommand::mac(i, out, 0, out * 3 + i), ++g);
        push(PimCommand::rdOut(out), ++g);
    }
    auto params = AimTimingParams::illustrative();
    auto st = makeScheduler(SchedulerKind::Static, params)->schedule(s);
    auto dc = makeScheduler(SchedulerKind::Dcs, params)->schedule(s);
    EXPECT_EQ(st.makespan, 34u); // paper: 34
    EXPECT_LE(dc.makespan, 26u); // paper: 22; policy detail allows +-
    EXPECT_GE(dc.makespan, 20u);
}

// --- Fig. 8: small dims collapse static MAC utilization. ------------

TEST(PaperAnchors, Fig8SmallDimsCollapseUtilization)
{
    auto base = AimTimingParams::aimx();
    auto small = simulateKernel(
        KernelRequest::makeGemv(GemvSpec::fromDims(128, 128),
                                SchedulerKind::Static),
        base);
    auto large = simulateKernel(
        KernelRequest::makeGemv(GemvSpec::fromDims(4096, 4096),
                                SchedulerKind::Static),
        base);
    EXPECT_LT(small.macUtilization, 0.40); // paper: 14.7%
    EXPECT_GT(large.macUtilization / small.macUtilization, 1.5);
}

// --- Fig. 9: DCS unlocks row-reuse for GQA. --------------------------

TEST(PaperAnchors, Fig9RowReuseNeedsDcs)
{
    AttentionSpec spec;
    spec.tokens = 16384;
    spec.headDim = 128;
    spec.gqaGroup = 8;

    auto static_p = AimTimingParams::aimx();
    auto dcs_p = AimTimingParams::aimxWithObuf(16);

    spec.rowReuse = true;
    auto rr_static = simulateKernel(
        KernelRequest::makeQkt(spec, SchedulerKind::Static), static_p);
    auto rr_dcs = simulateKernel(
        KernelRequest::makeQkt(spec, SchedulerKind::Dcs), dcs_p);
    spec.rowReuse = false;
    auto ir_static = simulateKernel(
        KernelRequest::makeQkt(spec, SchedulerKind::Static), static_p);
    auto ir_dcs = simulateKernel(
        KernelRequest::makeQkt(spec, SchedulerKind::Dcs), dcs_p);

    // Under static scheduling, row-reuse's swap traffic makes it no
    // better (often worse); under DCS it wins.
    EXPECT_GE(static_cast<double>(rr_static.makespan),
              0.95 * static_cast<double>(ir_static.makespan));
    EXPECT_LT(rr_dcs.makespan, ir_dcs.makespan);
    // And DCS cuts QK^T latency by >= 2x (paper: ~3-4x).
    EXPECT_GT(static_cast<double>(rr_static.makespan) /
                  static_cast<double>(rr_dcs.makespan),
              2.0);
}

// --- Fig. 10: DPA keeps programs context-independent. ----------------

TEST(PaperAnchors, Fig10InstructionFootprint)
{
    auto model = LlmConfig::llm7b(true);
    auto graph = buildDecoderLayer(model);
    auto params = AimTimingParams::aimxWithObuf(16);
    for (const auto &m : matchPimKernels(graph)) {
        if (m.kernelClass == PimKernelClass::Fc)
            continue;
        auto a = lowerKernel(m, params, 32768);
        auto b = lowerKernel(m, params, 1048576);
        double growth =
            static_cast<double>(staticProgramBytes(b)) /
            static_cast<double>(staticProgramBytes(a));
        EXPECT_NEAR(growth, 32.0, 1.0); // linear in tokens
        EXPECT_EQ(dpaProgramBytes(a), dpaProgramBytes(b)); // constant
    }
}

// --- Figs. 13/4: cumulative technique ordering, long context. --------

TEST(PaperAnchors, CumulativeSpeedupOrderingGqaLongContext)
{
    OrchestratorConfig cfg;
    cfg.system = SystemKind::PimOnly;
    cfg.model = LlmConfig::llm7b(true);
    cfg.plan = ParallelPlan{8, 1};
    cfg.nRequests = 16;
    cfg.decodeTokens = 16;

    double prev = 0.0;
    double base = 0.0;
    for (auto opt :
         {PimphonyOptions::baseline(), PimphonyOptions{true, false, false},
          PimphonyOptions{true, true, false}, PimphonyOptions::all()}) {
        cfg.options = opt;
        PimphonyOrchestrator orch(cfg);
        auto r = orch.evaluate(TraceTask::MultifieldQa);
        EXPECT_GE(r.engine.tokensPerSecond, prev * 0.98)
            << opt.label();
        prev = r.engine.tokensPerSecond;
        if (base == 0.0)
            base = prev;
    }
    // Paper band for GQA long-context on PIM-only: >> 2x, up to 11.3x.
    EXPECT_GT(prev / base, 3.0);
    EXPECT_LT(prev / base, 25.0);
}

// --- Fig. 18: DCS beats ping-pong by a bounded factor. ---------------

TEST(PaperAnchors, Fig18DcsVsPingPongBand)
{
    auto params = AimTimingParams::aimxWithObuf(16);
    for (unsigned g : {2u, 4u, 8u}) {
        AttentionSpec spec;
        spec.tokens = 8192;
        spec.headDim = 128;
        spec.gqaGroup = g;
        spec.rowReuse = true;
        auto pp = simulateKernel(
            KernelRequest::makeQkt(spec, SchedulerKind::PingPong, true),
            params);
        auto dc = simulateKernel(
            KernelRequest::makeQkt(spec, SchedulerKind::Dcs), params);
        double gain = dc.macUtilization / pp.macUtilization;
        EXPECT_GT(gain, 1.1) << "g=" << g; // paper: up to 1.4x
        EXPECT_LT(gain, 2.5) << "g=" << g;
    }
}

// --- Fig. 19: DPA capacity-utilization band. -------------------------

TEST(PaperAnchors, Fig19CapacityUtilizationBand)
{
    auto model = LlmConfig::llm7b(false);
    auto cluster = ClusterConfig::centLike(model);
    TraceGenerator gen(TraceTask::QMSum, 19);
    auto requests = gen.generate(48, 64);
    auto st = runServing(cluster, model, requests,
                         PimphonyOptions{true, true, false});
    auto dp = runServing(cluster, model, requests,
                         PimphonyOptions::all());
    // Paper: static 31.0-40.5%, DPA ~75.6% (we land above).
    EXPECT_GT(st.capacityUtilization, 0.25);
    EXPECT_LT(st.capacityUtilization, 0.55);
    EXPECT_GT(dp.capacityUtilization, 0.70);
    EXPECT_GT(dp.capacityUtilization / st.capacityUtilization, 1.8);
}

// --- Fig. 17(b): baseline collapses at million-token contexts. -------

TEST(PaperAnchors, Fig17MillionTokenCollapse)
{
    auto model = LlmConfig::llm7b(true);
    model.contextWindow = 1310720; // ~1.25M compile-time max
    auto cluster = ClusterConfig::centLike(model);
    cluster.nModules = 32;
    cluster.plan = ParallelPlan{32, 1};
    TraceGenerator gen(TraceTask::MultifieldQa, 23);
    auto requests = gen.generateScaled(6, 524288, 8);

    auto base = runServing(cluster, model, requests,
                           PimphonyOptions::baseline());
    auto full = runServing(cluster, model, requests,
                           PimphonyOptions::all());
    // Paper: 12.7x at 512K mean context, 2% baseline utilization.
    EXPECT_GT(full.tokensPerSecond / base.tokensPerSecond, 5.0);
    EXPECT_LT(base.macUtilization, 0.08);
}

// --- Fig. 20: GPU crossover structure. -------------------------------

TEST(PaperAnchors, Fig20GpuCrossover)
{
    // Non-GQA 7B: PIM wins clearly. GQA narrows the gap.
    GpuSystemConfig gpu;
    gpu.nGpus = 2;

    auto run_pim = [](const LlmConfig &model, TraceTask task) {
        OrchestratorConfig cfg;
        cfg.system = SystemKind::PimOnly;
        cfg.model = model;
        cfg.options = PimphonyOptions::all();
        cfg.plan = ParallelPlan{8, 1};
        cfg.nRequests = 16;
        cfg.decodeTokens = 16;
        cfg.seed = 5;
        PimphonyOrchestrator orch(cfg);
        return orch.evaluate(task).engine.tokensPerSecond;
    };
    auto run_gpu = [&gpu](const LlmConfig &model, TraceTask task) {
        TraceGenerator gen(task, 5);
        return runGpuServing(gpu, model, gen.generate(16, 16))
            .tokensPerSecond;
    };

    auto mha = LlmConfig::llm7b(false);
    auto gqa = LlmConfig::llm7b(true);
    double ratio_mha = run_pim(mha, TraceTask::QMSum) /
                       run_gpu(mha, TraceTask::QMSum);
    double ratio_gqa = run_pim(gqa, TraceTask::MultifieldQa) /
                       run_gpu(gqa, TraceTask::MultifieldQa);
    EXPECT_GT(ratio_mha, 1.5); // PIM wins the bandwidth-bound case
    EXPECT_LT(ratio_gqa, ratio_mha); // GQA favors the GPU
}

// --- Sec. VII-C: hardware overhead orders of magnitude. ---------------

TEST(PaperAnchors, HardwareOverheadScales)
{
    DcsScheduler dcs(AimTimingParams::aimxWithObuf(16));
    EXPECT_LT(dcs.metadataBytes(), 1024u); // paper: 576 B
}

} // namespace
} // namespace pimphony
