/**
 * @file
 * Tests for the SweepRunner (common/parallel): the serial path at
 * threads == 1 is exactly the inline loop, a pooled run covers every
 * index once with results landing in submission order, exceptions
 * are captured per cell and rethrown first-in-submission-order, the
 * thread-count selection rules (explicit / 0 = hardware /
 * PIMPHONY_THREADS), and — the determinism contract the benches rely
 * on — a parallel engine sweep is bit-identical to the serial one.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.hh"
#include "system/engine.hh"
#include "workload/arrival.hh"

namespace pimphony {
namespace {

TEST(SweepRunner, SerialPathRunsInlineInSubmissionOrder)
{
    SweepRunner runner(1);
    EXPECT_EQ(runner.threads(), 1u);
    std::vector<std::size_t> order;
    auto caller = std::this_thread::get_id();
    runner.forEach(8, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 8u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(SweepRunner, SerialPathPropagatesExceptionsDirectly)
{
    SweepRunner runner(1);
    std::size_t ran = 0;
    EXPECT_THROW(runner.forEach(8,
                                [&](std::size_t i) {
                                    ++ran;
                                    if (i == 3)
                                        throw std::runtime_error("cell 3");
                                }),
                 std::runtime_error);
    // Serial semantics: the loop stops at the throwing cell.
    EXPECT_EQ(ran, 4u);
}

TEST(SweepRunner, PoolCoversEveryIndexExactlyOnce)
{
    SweepRunner runner(4);
    EXPECT_EQ(runner.threads(), 4u);
    constexpr std::size_t n = 257;
    std::vector<std::atomic<int>> hits(n);
    runner.forEach(n, [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(SweepRunner, PoolIsReusableAcrossCalls)
{
    SweepRunner runner(3);
    for (int round = 0; round < 5; ++round) {
        std::atomic<std::size_t> sum{0};
        runner.forEach(40, [&](std::size_t i) {
            sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
        EXPECT_EQ(sum.load(), 40u * 41u / 2u);
    }
}

TEST(SweepRunner, MapCollectsResultsInSubmissionOrder)
{
    // Early cells sleep longest, so completion order is roughly the
    // reverse of submission order — slots must still line up.
    SweepRunner runner(4);
    auto out = runner.map(12, [](std::size_t i) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(12 - i));
        return i * i;
    });
    ASSERT_EQ(out.size(), 12u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(SweepRunner, PoolRethrowsFirstExceptionInSubmissionOrder)
{
    SweepRunner runner(4);
    std::atomic<std::size_t> ran{0};
    try {
        runner.forEach(32, [&](std::size_t i) {
            ran.fetch_add(1, std::memory_order_relaxed);
            if (i % 2 == 1)
                throw std::runtime_error("cell " + std::to_string(i));
        });
        FAIL() << "expected the sweep to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "cell 1");
    }
    // A throwing cell never cancels its siblings.
    EXPECT_EQ(ran.load(), 32u);
}

TEST(SweepRunner, ZeroResolvesToHardwareThreads)
{
    EXPECT_GE(SweepRunner::hardwareThreads(), 1u);
    SweepRunner runner(0);
    EXPECT_EQ(runner.threads(), SweepRunner::hardwareThreads());
}

TEST(SweepRunner, DefaultThreadsFollowsEnvironment)
{
    ::unsetenv("PIMPHONY_THREADS");
    EXPECT_EQ(SweepRunner::defaultThreads(), 1u);
    ::setenv("PIMPHONY_THREADS", "3", 1);
    EXPECT_EQ(SweepRunner::defaultThreads(), 3u);
    ::setenv("PIMPHONY_THREADS", "0", 1);
    EXPECT_EQ(SweepRunner::defaultThreads(),
              SweepRunner::hardwareThreads());
    ::setenv("PIMPHONY_THREADS", "not-a-number", 1);
    EXPECT_EQ(SweepRunner::defaultThreads(), 1u);
    ::unsetenv("PIMPHONY_THREADS");
}

// --- The determinism contract the benches rely on. -------------------

EngineResult
runCell(Tokens ctx, double rate, std::uint64_t seed)
{
    auto model = LlmConfig::llm7b(true);
    auto cluster = ClusterConfig::neupimsLike(model);
    applyOptions(cluster, PimphonyOptions::all());
    std::vector<Request> reqs;
    for (RequestId i = 0; i < 8; ++i)
        reqs.push_back({i, ctx, 8});
    auto timed = gammaArrivals(reqs, rate, 3.0, seed);
    EngineOptions opts;
    opts.allocator = AllocatorKind::LazyChunk;
    opts.stepModel = StepModel::EventDriven;
    opts.prefillChunkTokens = 2048;
    return ServingEngine(cluster, model, timed, opts).run();
}

void
expectSameResult(const EngineResult &a, const EngineResult &b)
{
    // Bit-exact on the simulated (non-wall-clock) outputs.
    EXPECT_EQ(a.tokensPerSecond, b.tokensPerSecond);
    EXPECT_EQ(a.p95FirstTokenSeconds, b.p95FirstTokenSeconds);
    EXPECT_EQ(a.p95TokenGapSeconds, b.p95TokenGapSeconds);
    EXPECT_EQ(a.prefillSeconds, b.prefillSeconds);
    EXPECT_EQ(a.chunkSlices, b.chunkSlices);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.completedRequests, b.completedRequests);
}

TEST(SweepRunner, ParallelEngineSweepIsBitIdenticalToSerial)
{
    const std::vector<Tokens> contexts = {4000, 12000, 20000, 28000};

    SweepRunner serial(1);
    auto base = serial.map(contexts.size(), [&](std::size_t i) {
        return runCell(contexts[i], 1.5, 17 + i);
    });

    SweepRunner pool(4);
    auto par = pool.map(contexts.size(), [&](std::size_t i) {
        return runCell(contexts[i], 1.5, 17 + i);
    });

    ASSERT_EQ(base.size(), par.size());
    for (std::size_t i = 0; i < base.size(); ++i)
        expectSameResult(base[i], par[i]);

    // Sanity: the per-cell seed actually matters, so the equality
    // above is not vacuous.
    auto other = runCell(contexts[0], 1.5, 1234);
    EXPECT_NE(other.simEvents, base[0].simEvents);
}

} // namespace
} // namespace pimphony
